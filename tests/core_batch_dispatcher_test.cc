// Unit tests for the write-set batch dispatcher: chunking, adaptive sizing
// from observed replica lag, coalescing metrics, and equivalence of the
// chunked apply with a single-shot apply.

#include <string>
#include <vector>

#include "core/batch_dispatcher.h"
#include "kv/inmemory_node.h"
#include "kv/kv_store.h"
#include "obs/metrics.h"
#include "obs/names.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace txrep::core {
namespace {

/// In-memory store that records the size of every MultiWrite batch it sees.
class ChunkRecordingStore : public kv::InMemoryKvNode {
 public:
  Status MultiWrite(std::span<const kv::KvWrite> batch,
                    size_t* applied = nullptr) override {
    chunk_sizes.push_back(batch.size());
    return kv::InMemoryKvNode::MultiWrite(batch, applied);
  }

  std::vector<size_t> chunk_sizes;
};

kv::KvWriteBatch MakeWrites(int count) {
  kv::KvWriteBatch writes;
  for (int i = 0; i < count; ++i) {
    writes.push_back(kv::KvWrite::Put("k" + std::to_string(i), "v"));
  }
  return writes;
}

TEST(BatchDispatcherTest, ChunksAtConfiguredSize) {
  ChunkRecordingStore store;
  BatchDispatchOptions options;
  options.batch_size = 16;
  BatchDispatcher dispatcher(options);
  TXREP_ASSERT_OK(dispatcher.Dispatch(&store, MakeWrites(40)));
  EXPECT_EQ(store.chunk_sizes, (std::vector<size_t>{16, 16, 8}));
  EXPECT_EQ(store.Size(), 40u);
}

TEST(BatchDispatcherTest, EmptyWriteSetIsANoOp) {
  ChunkRecordingStore store;
  BatchDispatcher dispatcher;
  TXREP_ASSERT_OK(dispatcher.Dispatch(&store, {}));
  EXPECT_TRUE(store.chunk_sizes.empty());
}

TEST(BatchDispatcherTest, BatchSizeOneIsOpAtATime) {
  ChunkRecordingStore store;
  BatchDispatchOptions options;
  options.batch_size = 1;
  BatchDispatcher dispatcher(options);
  TXREP_ASSERT_OK(dispatcher.Dispatch(&store, MakeWrites(5)));
  EXPECT_EQ(store.chunk_sizes, (std::vector<size_t>{1, 1, 1, 1, 1}));
}

TEST(BatchDispatcherTest, ChunkedApplyMatchesSingleShot) {
  kv::KvWriteBatch writes = MakeWrites(100);
  for (int i = 0; i < 100; i += 7) {
    writes.push_back(kv::KvWrite::Delete("k" + std::to_string(i)));
  }

  kv::InMemoryKvNode chunked;
  BatchDispatchOptions options;
  options.batch_size = 9;
  BatchDispatcher dispatcher(options);
  TXREP_ASSERT_OK(dispatcher.Dispatch(&chunked, writes));

  kv::InMemoryKvNode single;
  TXREP_ASSERT_OK(single.MultiWrite(writes));
  txrep::testing::ExpectDumpsEqual(chunked, single);
}

TEST(BatchDispatcherTest, AdaptiveGrowsUnderLagAndShrinksWhenCaughtUp) {
  BatchDispatchOptions options;
  options.batch_size = 8;
  options.adaptive = true;
  options.min_batch_size = 2;
  options.max_batch_size = 32;
  options.lag_high_micros = 10'000;
  options.lag_low_micros = 1'000;
  BatchDispatcher dispatcher(options);
  EXPECT_EQ(dispatcher.current_batch_size(), 8);

  dispatcher.ObserveLag(50'000);  // Far behind: double.
  EXPECT_EQ(dispatcher.current_batch_size(), 16);
  dispatcher.ObserveLag(50'000);
  EXPECT_EQ(dispatcher.current_batch_size(), 32);
  dispatcher.ObserveLag(50'000);  // Clamped at max.
  EXPECT_EQ(dispatcher.current_batch_size(), 32);

  dispatcher.ObserveLag(5'000);  // In the dead band: hold.
  EXPECT_EQ(dispatcher.current_batch_size(), 32);

  dispatcher.ObserveLag(100);  // Caught up: halve.
  EXPECT_EQ(dispatcher.current_batch_size(), 16);
  dispatcher.ObserveLag(100);
  dispatcher.ObserveLag(100);
  dispatcher.ObserveLag(100);
  EXPECT_EQ(dispatcher.current_batch_size(), 2);  // Clamped at min.
}

TEST(BatchDispatcherTest, NonAdaptiveIgnoresLag) {
  BatchDispatchOptions options;
  options.batch_size = 8;
  BatchDispatcher dispatcher(options);
  dispatcher.ObserveLag(1'000'000);
  EXPECT_EQ(dispatcher.current_batch_size(), 8);
}

TEST(BatchDispatcherTest, InitialSizeIsClamped) {
  BatchDispatchOptions options;
  options.batch_size = 1000;
  options.max_batch_size = 64;
  BatchDispatcher capped(options);
  EXPECT_EQ(capped.current_batch_size(), 64);

  options.batch_size = 0;
  options.min_batch_size = 1;
  BatchDispatcher floored(options);
  EXPECT_EQ(floored.current_batch_size(), 1);
}

TEST(BatchDispatcherTest, RecordsCoalescingMetrics) {
  obs::MetricsRegistry registry;
  kv::InMemoryKvNode store;
  BatchDispatchOptions options;
  options.batch_size = 16;
  BatchDispatcher dispatcher(options, &registry);

  TXREP_ASSERT_OK(dispatcher.Dispatch(&store, MakeWrites(40)));
  dispatcher.ObserveLag(1234);

  // 40 ops in 3 chunks: 37 round trips saved.
  EXPECT_EQ(registry.GetCounter(obs::kApplyCoalescedOps)->Value(), 37);
  EXPECT_EQ(registry.GetHistogram(obs::kApplyBatchSize)->count(), 3);
  EXPECT_EQ(registry.GetGauge(obs::kReplicaLag)->Value(), 1234);
}

TEST(BatchDispatcherTest, PropagatesStoreError) {
  kv::KvNodeOptions node_options;
  node_options.failure_rate = 1.0;
  kv::InMemoryKvNode store(node_options);
  BatchDispatcher dispatcher;
  Status status = dispatcher.Dispatch(&store, MakeWrites(4));
  EXPECT_TRUE(status.IsUnavailable()) << status.ToString();
}

}  // namespace
}  // namespace txrep::core
