// Model-based property test: a TxnBuffer over a base store must behave
// exactly like "a map overlaying a frozen base" for any random op sequence,
// and ApplyTo must make the base equal the overlay view.

#include <map>
#include <optional>

#include "common/random.h"
#include "core/txn_buffer.h"
#include "gtest/gtest.h"
#include "kv/inmemory_node.h"
#include "test_util.h"

namespace txrep::core {
namespace {

class BufferModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BufferModelTest, MatchesReferenceModel) {
  Random rng(GetParam());

  // Base store with some pre-existing keys.
  kv::InMemoryKvNode base;
  std::map<std::string, std::string> base_model;
  for (int i = 0; i < 30; ++i) {
    const std::string key = "k" + std::to_string(rng.Uniform(50));
    const std::string value = "base" + std::to_string(i);
    TXREP_ASSERT_OK(base.Put(key, value));
    base_model[key] = value;
  }

  TxnBuffer buffer(&base, rng.Bernoulli(0.5));
  // Overlay model: nullopt = tombstone.
  std::map<std::string, std::optional<std::string>> overlay;

  auto model_get = [&](const std::string& key) -> std::optional<std::string> {
    auto o = overlay.find(key);
    if (o != overlay.end()) return o->second;
    auto b = base_model.find(key);
    if (b != base_model.end()) return b->second;
    return std::nullopt;
  };

  for (int step = 0; step < 1000; ++step) {
    const std::string key = "k" + std::to_string(rng.Uniform(50));
    switch (rng.Uniform(3)) {
      case 0: {  // Get.
        Result<kv::Value> got = buffer.Get(key);
        std::optional<std::string> expected = model_get(key);
        if (expected.has_value()) {
          ASSERT_TRUE(got.ok()) << "step " << step << " key " << key;
          ASSERT_EQ(*got, *expected);
        } else {
          ASSERT_TRUE(got.status().IsNotFound());
        }
        ASSERT_EQ(buffer.Contains(key), expected.has_value());
        break;
      }
      case 1: {  // Put.
        const std::string value = "v" + std::to_string(step);
        TXREP_ASSERT_OK(buffer.Put(key, value));
        overlay[key] = value;
        break;
      }
      case 2: {  // Delete.
        TXREP_ASSERT_OK(buffer.Delete(key));
        overlay[key] = std::nullopt;
        break;
      }
    }
  }

  // Write set == overlay keys; read set only ever contains probed keys that
  // were not own-writes first.
  ASSERT_EQ(buffer.write_set().size(), overlay.size());
  for (const auto& [key, v] : overlay) {
    ASSERT_TRUE(buffer.write_set().contains(key));
  }

  // Dump of the buffer == model view.
  kv::StoreDump dump = buffer.Dump();
  std::map<std::string, std::string> view;
  for (const auto& [k, v] : base_model) view[k] = v;
  for (const auto& [k, v] : overlay) {
    if (v.has_value()) {
      view[k] = *v;
    } else {
      view.erase(k);
    }
  }
  ASSERT_EQ(dump.size(), view.size());
  size_t i = 0;
  for (const auto& [k, v] : view) {
    ASSERT_EQ(dump[i].first, k);
    ASSERT_EQ(dump[i].second, v);
    ++i;
  }

  // ApplyTo publishes exactly the view.
  TXREP_ASSERT_OK(buffer.ApplyTo(&base));
  kv::StoreDump base_dump = base.Dump();
  ASSERT_EQ(base_dump.size(), view.size());
  i = 0;
  for (const auto& [k, v] : view) {
    ASSERT_EQ(base_dump[i].first, k);
    ASSERT_EQ(base_dump[i].second, v);
    ++i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferModelTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace txrep::core
