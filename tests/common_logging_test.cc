// Logger unit tests: level filtering happens before the sink, the sink
// replaces stderr, and the line format carries level + location.

#include "common/logging.h"

#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace txrep {
namespace {

/// Restores the global level and sink even when an assertion fails.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = GetLogLevel();
    SetLogSink([this](LogLevel level, const std::string& line) {
      lines_.emplace_back(level, line);
    });
  }

  void TearDown() override {
    SetLogSink(nullptr);
    SetLogLevel(saved_level_);
  }

  std::vector<std::pair<LogLevel, std::string>> lines_;

 private:
  LogLevel saved_level_;
};

TEST_F(LoggingTest, LevelFilteringDropsBelowThreshold) {
  SetLogLevel(LogLevel::kWarn);
  TXREP_LOG(kDebug) << "debug line";
  TXREP_LOG(kInfo) << "info line";
  TXREP_LOG(kWarn) << "warn line";
  TXREP_LOG(kError) << "error line";
  ASSERT_EQ(lines_.size(), 2u);
  EXPECT_EQ(lines_[0].first, LogLevel::kWarn);
  EXPECT_NE(lines_[0].second.find("warn line"), std::string::npos);
  EXPECT_EQ(lines_[1].first, LogLevel::kError);
  EXPECT_NE(lines_[1].second.find("error line"), std::string::npos);
}

TEST_F(LoggingTest, DefaultThresholdPassesInfo) {
  SetLogLevel(LogLevel::kInfo);
  TXREP_LOG(kDebug) << "hidden";
  TXREP_LOG(kInfo) << "visible";
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0].first, LogLevel::kInfo);
}

TEST_F(LoggingTest, LineCarriesLevelNameAndLocation) {
  SetLogLevel(LogLevel::kInfo);
  TXREP_LOG(kError) << "boom " << 42;
  ASSERT_EQ(lines_.size(), 1u);
  const std::string& line = lines_[0].second;
  EXPECT_NE(line.find("[ERROR "), std::string::npos);
  EXPECT_NE(line.find("common_logging_test.cc:"), std::string::npos);
  EXPECT_NE(line.find("boom 42"), std::string::npos);
}

TEST_F(LoggingTest, GetLogLevelReflectsSetLogLevel) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST(LogLevelNameTest, AllLevelsNamed) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace txrep
