#include "kv/kv_cluster.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "obs/names.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace txrep::kv {
namespace {

TEST(KvClusterTest, DelegatesBasicOps) {
  KvClusterOptions options;
  options.num_nodes = 5;
  KvCluster cluster(options);
  TXREP_ASSERT_OK(cluster.Put("k", "v"));
  EXPECT_EQ(*cluster.Get("k"), "v");
  EXPECT_TRUE(cluster.Contains("k"));
  TXREP_ASSERT_OK(cluster.Delete("k"));
  EXPECT_TRUE(cluster.Get("k").status().IsNotFound());
}

TEST(KvClusterTest, PartitioningIsStable) {
  KvCluster cluster(KvClusterOptions{.num_nodes = 7, .node = {}});
  for (int i = 0; i < 100; ++i) {
    const std::string key = "key" + std::to_string(i);
    EXPECT_EQ(cluster.NodeIndexFor(key), cluster.NodeIndexFor(key));
    EXPECT_LT(cluster.NodeIndexFor(key), 7);
  }
}

TEST(KvClusterTest, KeysSpreadAcrossNodes) {
  KvCluster cluster(KvClusterOptions{.num_nodes = 5, .node = {}});
  std::set<int> used;
  for (int i = 0; i < 200; ++i) {
    used.insert(cluster.NodeIndexFor("key" + std::to_string(i)));
  }
  EXPECT_EQ(used.size(), 5u) << "hash partitioning left nodes unused";
}

TEST(KvClusterTest, EachKeyLivesOnExactlyOneNode) {
  KvCluster cluster(KvClusterOptions{.num_nodes = 4, .node = {}});
  for (int i = 0; i < 50; ++i) {
    TXREP_ASSERT_OK(cluster.Put("key" + std::to_string(i), "v"));
  }
  size_t total = 0;
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    total += cluster.node(n).Size();
  }
  EXPECT_EQ(total, 50u);
  EXPECT_EQ(cluster.Size(), 50u);
}

TEST(KvClusterTest, DumpMergesSorted) {
  KvCluster cluster(KvClusterOptions{.num_nodes = 3, .node = {}});
  for (int i = 9; i >= 0; --i) {
    TXREP_ASSERT_OK(cluster.Put("k" + std::to_string(i), std::to_string(i)));
  }
  StoreDump dump = cluster.Dump();
  ASSERT_EQ(dump.size(), 10u);
  for (size_t i = 1; i < dump.size(); ++i) {
    EXPECT_LT(dump[i - 1].first, dump[i].first);
  }
}

TEST(KvClusterTest, TotalStatsAggregates) {
  KvCluster cluster(KvClusterOptions{.num_nodes = 3, .node = {}});
  for (int i = 0; i < 30; ++i) {
    (void)cluster.Put("k" + std::to_string(i), "v");
    (void)cluster.Get("k" + std::to_string(i));
  }
  KvStoreStats stats = cluster.TotalStats();
  EXPECT_EQ(stats.puts, 30);
  EXPECT_EQ(stats.gets, 30);
}

TEST(KvClusterTest, SingleNodeClusterWorks) {
  KvCluster cluster(KvClusterOptions{.num_nodes = 1, .node = {}});
  TXREP_ASSERT_OK(cluster.Put("a", "1"));
  EXPECT_EQ(cluster.NodeIndexFor("anything"), 0);
  EXPECT_EQ(cluster.Size(), 1u);
}

TEST(KvClusterTest, ZeroNodesClampedToOne) {
  KvCluster cluster(KvClusterOptions{.num_nodes = 0, .node = {}});
  EXPECT_EQ(cluster.num_nodes(), 1);
}

class DiskBackendClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "txrep_disk_cluster_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
  }
  void TearDown() override {
    for (int i = 0; i < 8; ++i) {
      std::remove((dir_ + "/node-" + std::to_string(i) + ".log").c_str());
    }
    ::rmdir(dir_.c_str());
  }

  KvClusterOptions DiskOptions(int nodes) {
    KvClusterOptions options;
    options.num_nodes = nodes;
    options.backend = KvBackend::kDisk;
    options.disk_dir = dir_;
    return options;
  }

  size_t LogBytes(int node) {
    std::ifstream in(dir_ + "/node-" + std::to_string(node) + ".log",
                     std::ios::binary | std::ios::ate);
    return in.good() ? static_cast<size_t>(in.tellg()) : 0;
  }

  std::string dir_;
};

TEST_F(DiskBackendClusterTest, RoutesAndPersistsAcrossReopen) {
  StoreDump expected;
  {
    KvCluster cluster(DiskOptions(3));
    TXREP_ASSERT_OK(cluster.init_status());
    EXPECT_EQ(cluster.backend(), KvBackend::kDisk);
    for (int i = 0; i < 60; ++i) {
      TXREP_ASSERT_OK(cluster.Put("key" + std::to_string(i), "v" + std::to_string(i)));
    }
    TXREP_ASSERT_OK(cluster.Delete("key7"));
    TXREP_ASSERT_OK(cluster.SyncAll());
    expected = cluster.Dump();
  }
  KvCluster cluster(DiskOptions(3));
  TXREP_ASSERT_OK(cluster.init_status());
  EXPECT_EQ(cluster.Dump(), expected);
  EXPECT_EQ(cluster.Size(), 59u);
  // Keys land on the same nodes again (same hash partitioning).
  EXPECT_TRUE(cluster.Get("key12").ok());
}

TEST_F(DiskBackendClusterTest, TypedNodeAccessors) {
  KvCluster cluster(DiskOptions(2));
  TXREP_ASSERT_OK(cluster.init_status());
  EXPECT_NE(cluster.disk_node(0), nullptr);
  EXPECT_EQ(cluster.memory_node(0), nullptr);

  KvCluster memory(KvClusterOptions{.num_nodes = 2, .node = {}});
  EXPECT_NE(memory.memory_node(1), nullptr);
  EXPECT_EQ(memory.disk_node(1), nullptr);
}

TEST_F(DiskBackendClusterTest, CompactAllShrinksDeadHistory) {
  KvCluster cluster(DiskOptions(2));
  TXREP_ASSERT_OK(cluster.init_status());
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 10; ++i) {
      TXREP_ASSERT_OK(cluster.Put("k" + std::to_string(i),
                                  "round" + std::to_string(round)));
    }
  }
  TXREP_ASSERT_OK(cluster.SyncAll());
  size_t before = 0;
  for (int i = 0; i < cluster.num_nodes(); ++i) before += LogBytes(i);
  TXREP_ASSERT_OK(cluster.CompactAll());
  size_t after = 0;
  for (int i = 0; i < cluster.num_nodes(); ++i) after += LogBytes(i);
  EXPECT_LT(after, before);
  EXPECT_EQ(cluster.Size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(*cluster.Get("k" + std::to_string(i)), "round19");
  }
}

TEST_F(DiskBackendClusterTest, ClearTruncatesEveryNode) {
  KvCluster cluster(DiskOptions(3));
  TXREP_ASSERT_OK(cluster.init_status());
  for (int i = 0; i < 30; ++i) {
    TXREP_ASSERT_OK(cluster.Put("k" + std::to_string(i), "v"));
  }
  TXREP_ASSERT_OK(cluster.Clear());
  EXPECT_EQ(cluster.Size(), 0u);
  // Cleared state is durable too: a reopen sees an empty cluster.
  TXREP_ASSERT_OK(cluster.SyncAll());
  KvCluster reopened(DiskOptions(3));
  TXREP_ASSERT_OK(reopened.init_status());
  EXPECT_EQ(reopened.Size(), 0u);
}

TEST_F(DiskBackendClusterTest, DiskNodesReportPerOpMetrics) {
  // Regression guard for the metrics gap: disk nodes must report the same
  // per-op counters and latency/batch histograms as in-memory nodes.
  obs::MetricsRegistry registry;
  KvCluster cluster(DiskOptions(2), &registry);
  TXREP_ASSERT_OK(cluster.init_status());

  for (int i = 0; i < 20; ++i) {
    TXREP_ASSERT_OK(cluster.Put("key" + std::to_string(i), "v"));
  }
  TXREP_ASSERT_OK(cluster.Delete("key0"));
  EXPECT_EQ(*cluster.Get("key1"), "v");
  EXPECT_TRUE(cluster.Get("absent").status().IsNotFound());
  KvWriteBatch batch = {KvWrite::Put("batched", "b"), KvWrite::Delete("key2")};
  TXREP_ASSERT_OK(cluster.MultiWrite(batch));

  int64_t puts = 0, gets = 0, deletes = 0, misses = 0;
  int64_t latency_samples = 0, batch_samples = 0, dispatch_samples = 0;
  for (int node = 0; node < 2; ++node) {
    obs::Labels node_label = {{"node", std::to_string(node)}};
    auto op_labels = [&](const char* op) {
      obs::Labels labels = node_label;
      labels.emplace_back("op", op);
      return labels;
    };
    puts += registry.GetCounter(obs::kKvOps, op_labels("put"))->Value();
    gets += registry.GetCounter(obs::kKvOps, op_labels("get"))->Value();
    deletes += registry.GetCounter(obs::kKvOps, op_labels("delete"))->Value();
    misses += registry.GetCounter(obs::kKvOps, op_labels("get_miss"))->Value();
    latency_samples +=
        registry.GetHistogram(obs::kKvOpLatency, node_label)->count();
    batch_samples +=
        registry.GetHistogram(obs::kKvBatchSize, node_label)->count();
    dispatch_samples +=
        registry.GetHistogram(obs::kKvDispatchLatency, node_label)->count();
  }
  EXPECT_EQ(puts, 21);     // 20 singles + 1 batched put.
  EXPECT_EQ(gets, 2);      // Hits and misses both count as get ops.
  EXPECT_EQ(deletes, 2);   // 1 single + 1 batched tombstone.
  EXPECT_EQ(misses, 1);
  EXPECT_GT(latency_samples, 0);
  EXPECT_GT(batch_samples, 0);
  EXPECT_GT(dispatch_samples, 0);

  // And the aggregate stats view covers the disk backend too.
  const KvStoreStats stats = cluster.TotalStats();
  EXPECT_EQ(stats.puts, 21);
  EXPECT_EQ(stats.deletes, 2);
  EXPECT_GE(stats.batches, 1);
}

TEST(DiskBackendOptionsTest, MissingDiskDirIsInitError) {
  KvClusterOptions options;
  options.backend = KvBackend::kDisk;  // No disk_dir.
  KvCluster cluster(options);
  EXPECT_TRUE(cluster.init_status().IsInvalidArgument());
}

}  // namespace
}  // namespace txrep::kv
