#include "kv/kv_cluster.h"

#include <set>

#include "gtest/gtest.h"
#include "test_util.h"

namespace txrep::kv {
namespace {

TEST(KvClusterTest, DelegatesBasicOps) {
  KvClusterOptions options;
  options.num_nodes = 5;
  KvCluster cluster(options);
  TXREP_ASSERT_OK(cluster.Put("k", "v"));
  EXPECT_EQ(*cluster.Get("k"), "v");
  EXPECT_TRUE(cluster.Contains("k"));
  TXREP_ASSERT_OK(cluster.Delete("k"));
  EXPECT_TRUE(cluster.Get("k").status().IsNotFound());
}

TEST(KvClusterTest, PartitioningIsStable) {
  KvCluster cluster(KvClusterOptions{.num_nodes = 7, .node = {}});
  for (int i = 0; i < 100; ++i) {
    const std::string key = "key" + std::to_string(i);
    EXPECT_EQ(cluster.NodeIndexFor(key), cluster.NodeIndexFor(key));
    EXPECT_LT(cluster.NodeIndexFor(key), 7);
  }
}

TEST(KvClusterTest, KeysSpreadAcrossNodes) {
  KvCluster cluster(KvClusterOptions{.num_nodes = 5, .node = {}});
  std::set<int> used;
  for (int i = 0; i < 200; ++i) {
    used.insert(cluster.NodeIndexFor("key" + std::to_string(i)));
  }
  EXPECT_EQ(used.size(), 5u) << "hash partitioning left nodes unused";
}

TEST(KvClusterTest, EachKeyLivesOnExactlyOneNode) {
  KvCluster cluster(KvClusterOptions{.num_nodes = 4, .node = {}});
  for (int i = 0; i < 50; ++i) {
    TXREP_ASSERT_OK(cluster.Put("key" + std::to_string(i), "v"));
  }
  size_t total = 0;
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    total += cluster.node(n).Size();
  }
  EXPECT_EQ(total, 50u);
  EXPECT_EQ(cluster.Size(), 50u);
}

TEST(KvClusterTest, DumpMergesSorted) {
  KvCluster cluster(KvClusterOptions{.num_nodes = 3, .node = {}});
  for (int i = 9; i >= 0; --i) {
    TXREP_ASSERT_OK(cluster.Put("k" + std::to_string(i), std::to_string(i)));
  }
  StoreDump dump = cluster.Dump();
  ASSERT_EQ(dump.size(), 10u);
  for (size_t i = 1; i < dump.size(); ++i) {
    EXPECT_LT(dump[i - 1].first, dump[i].first);
  }
}

TEST(KvClusterTest, TotalStatsAggregates) {
  KvCluster cluster(KvClusterOptions{.num_nodes = 3, .node = {}});
  for (int i = 0; i < 30; ++i) {
    (void)cluster.Put("k" + std::to_string(i), "v");
    (void)cluster.Get("k" + std::to_string(i));
  }
  KvStoreStats stats = cluster.TotalStats();
  EXPECT_EQ(stats.puts, 30);
  EXPECT_EQ(stats.gets, 30);
}

TEST(KvClusterTest, SingleNodeClusterWorks) {
  KvCluster cluster(KvClusterOptions{.num_nodes = 1, .node = {}});
  TXREP_ASSERT_OK(cluster.Put("a", "1"));
  EXPECT_EQ(cluster.NodeIndexFor("anything"), 0);
  EXPECT_EQ(cluster.Size(), 1u);
}

TEST(KvClusterTest, ZeroNodesClampedToOne) {
  KvCluster cluster(KvClusterOptions{.num_nodes = 0, .node = {}});
  EXPECT_EQ(cluster.num_nodes(), 1);
}

}  // namespace
}  // namespace txrep::kv
