// Flight-recorder tests: bounded memory under wraparound, self-consistent
// dumps under concurrent writers (the seqlock must never surface a torn
// span), and exact recorded/dropped accounting. The concurrent cases are the
// ones the tsan leg of `ci.sh --matrix` is after.

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "trace/recorder.h"

namespace txrep::trace {
namespace {

SpanEvent MakeEvent(uint64_t id, SpanStage stage = SpanStage::kApply) {
  SpanEvent event;
  event.trace_id = id;
  event.lsn = id;
  event.stage = stage;
  // Encode the identity into every payload field so a torn read (fields of
  // two different writes mixed) is detectable below.
  event.start_micros = static_cast<int64_t>(id) * 1000;
  event.end_micros = static_cast<int64_t>(id) * 1000 + 10;
  event.queue_micros = 3;
  return event;
}

TEST(TraceRecorderTest, RecordAndDump) {
  FlightRecorder recorder({.capacity = 64, .shards = 1});
  EXPECT_EQ(recorder.capacity(), 64u);
  for (uint64_t i = 1; i <= 10; ++i) {
    EXPECT_TRUE(recorder.Record(MakeEvent(i)));
  }
  const std::vector<SpanEvent> dump = recorder.Dump();
  ASSERT_EQ(dump.size(), 10u);
  // Dump is ordered by start time.
  for (size_t i = 0; i < dump.size(); ++i) {
    EXPECT_EQ(dump[i].trace_id, i + 1);
    EXPECT_EQ(dump[i].duration_micros(), 10);
    EXPECT_EQ(dump[i].service_micros(), 7);
  }
  EXPECT_EQ(recorder.recorded(), 10);
  EXPECT_EQ(recorder.dropped(), 0);
}

TEST(TraceRecorderTest, WraparoundKeepsNewestAndBoundsMemory) {
  FlightRecorder recorder({.capacity = 16, .shards = 1});
  const uint64_t total = 100;
  for (uint64_t i = 1; i <= total; ++i) {
    EXPECT_TRUE(recorder.Record(MakeEvent(i)));
  }
  const std::vector<SpanEvent> dump = recorder.Dump();
  ASSERT_EQ(dump.size(), 16u);  // Never more than capacity.
  // Single-threaded wraparound keeps exactly the newest window.
  for (const SpanEvent& event : dump) {
    EXPECT_GT(event.trace_id, total - 16);
    EXPECT_LE(event.trace_id, total);
  }
  EXPECT_EQ(recorder.recorded(), static_cast<int64_t>(total));
}

TEST(TraceRecorderTest, ConcurrentWritersNeverTearAndAccountExactly) {
  FlightRecorder recorder({.capacity = 128, .shards = 4});
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 5000;
  std::atomic<int64_t> accepted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, &accepted, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t id = static_cast<uint64_t>(t) * kPerThread + i + 1;
        if (recorder.Record(MakeEvent(id))) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
        if (i % 64 == 0) {
          // Concurrent dumps must observe only whole spans (checked below on
          // this thread's own view too).
          for (const SpanEvent& event : recorder.Dump()) {
            ASSERT_EQ(event.start_micros,
                      static_cast<int64_t>(event.trace_id) * 1000);
            ASSERT_EQ(event.end_micros, event.start_micros + 10);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Every attempt is either recorded or dropped, nothing double-counted.
  EXPECT_EQ(recorder.recorded() + recorder.dropped(),
            static_cast<int64_t>(kThreads * kPerThread));
  EXPECT_EQ(recorder.recorded(), accepted.load());

  // The final dump is whole, unique and within capacity.
  const std::vector<SpanEvent> dump = recorder.Dump();
  EXPECT_LE(dump.size(), recorder.capacity());
  std::set<uint64_t> ids;
  for (const SpanEvent& event : dump) {
    EXPECT_EQ(event.start_micros,
              static_cast<int64_t>(event.trace_id) * 1000);
    EXPECT_EQ(event.end_micros, event.start_micros + 10);
    EXPECT_EQ(event.queue_micros, 3);
    EXPECT_TRUE(ids.insert(event.trace_id).second)
        << "trace " << event.trace_id << " appeared twice";
  }
}

TEST(TraceRecorderTest, CapacityRoundsUpToShardMultiple) {
  FlightRecorder recorder({.capacity = 10, .shards = 3});  // Shards -> 4.
  EXPECT_GE(recorder.capacity(), 10u);
  EXPECT_EQ(recorder.capacity() % 4, 0u);
}

TEST(TraceRecorderTest, InvalidStageSkippedOnDump) {
  FlightRecorder recorder({.capacity = 8, .shards = 1});
  SpanEvent event = MakeEvent(1);
  EXPECT_TRUE(recorder.Record(event));
  // A stage from a newer/corrupt writer must not crash the exporter path.
  event.trace_id = 2;
  event.stage = static_cast<SpanStage>(250);
  EXPECT_TRUE(recorder.Record(event));
  const std::vector<SpanEvent> dump = recorder.Dump();
  ASSERT_EQ(dump.size(), 1u);
  EXPECT_EQ(dump[0].trace_id, 1u);
}

}  // namespace
}  // namespace txrep::trace
