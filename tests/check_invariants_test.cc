// The invariant checkers must pass on healthy structures and actually fire
// on corrupted ones — a checker that never fails checks nothing.

#include "check/invariants.h"

#include "codec/kv_keys.h"
#include "core/transaction_manager.h"
#include "gtest/gtest.h"
#include "kv/inmemory_node.h"
#include "qt/query_translator.h"
#include "rel/database.h"
#include "test_util.h"

namespace txrep::check {
namespace {

using rel::Value;

/// Small insert/update/delete workload with hash + range index maintenance.
void BuildWorkload(rel::Database& db, int rows, int txns) {
  Result<rel::TableSchema> schema =
      rel::TableSchema::Create("R",
                               {{"ID", rel::ValueType::kInt64},
                                {"VAL", rel::ValueType::kInt64}},
                               "ID");
  TXREP_ASSERT_OK(schema.status());
  TXREP_ASSERT_OK(db.CreateTable(*schema));
  TXREP_ASSERT_OK(db.CreateHashIndex("R", "VAL"));
  TXREP_ASSERT_OK(db.CreateRangeIndex("R", "VAL"));
  for (int i = 1; i <= rows; ++i) {
    TXREP_ASSERT_OK(
        db.ExecuteTransaction(
              {rel::InsertStatement{
                  "R", {}, {Value::Int(i), Value::Int(i * 10)}}})
            .status());
  }
  for (int t = 0; t < txns; ++t) {
    const int64_t id = 1 + t % rows;
    TXREP_ASSERT_OK(
        db.ExecuteTransaction(
              {rel::UpdateStatement{
                  "R",
                  {{"VAL", Value::Int(t)}},
                  {rel::Predicate{"ID", rel::PredicateOp::kEq, Value::Int(id),
                                  {}}}}})
            .status());
  }
}

TEST(TmInvariantsTest, HoldOnIdleTm) {
  rel::Database db;
  BuildWorkload(db, 1, 0);
  qt::QueryTranslator translator(&db.catalog(), {});
  kv::InMemoryKvNode store;
  core::TransactionManager tm(&store, &translator, {});
  TXREP_EXPECT_OK(tm.CheckInvariants());
}

TEST(TmInvariantsTest, HoldAfterConcurrentReplay) {
  rel::Database db;
  BuildWorkload(db, 5, 120);
  qt::QueryTranslator translator(&db.catalog(), {});
  kv::InMemoryKvNode store;
  TXREP_ASSERT_OK(translator.InitializeIndexes(&store));

  core::TmOptions options;
  options.top_threads = 4;
  options.bottom_threads = 4;
  options.completed_gc_threshold = 8;  // Exercise GC alongside commits.
  core::TransactionManager tm(&store, &translator, options);
  for (rel::LogTransaction& txn : db.log().ReadSince(0)) {
    tm.SubmitUpdate(std::move(txn));
  }
  TXREP_ASSERT_OK(tm.WaitIdle());
  TXREP_EXPECT_OK(tm.CheckInvariants());
}

TEST(BlinkInvariantsTest, HoldOnPopulatedTree) {
  kv::InMemoryKvNode store;
  blink::BlinkTree tree(&store, "T", "C", {.max_node_keys = 4});
  TXREP_ASSERT_OK(tree.Init());
  for (int i = 0; i < 200; ++i) {
    TXREP_ASSERT_OK(
        tree.Insert(Value::Int(i), "row" + std::to_string(i)));
  }
  TXREP_EXPECT_OK(CheckBlinkTreeInvariants(tree));
}

TEST(ReplicaEquivalenceTest, HoldsAfterSerialReplay) {
  rel::Database db;
  BuildWorkload(db, 8, 60);
  qt::QueryTranslator translator(&db.catalog(), {});
  kv::InMemoryKvNode store;
  TXREP_ASSERT_OK(testing::ReplaySerial(db, translator, &store));
  TXREP_EXPECT_OK(CheckReplicaEquivalence(store, db, translator));
}

TEST(ReplicaEquivalenceTest, FlagsStrayObject) {
  rel::Database db;
  BuildWorkload(db, 4, 10);
  qt::QueryTranslator translator(&db.catalog(), {});
  kv::InMemoryKvNode store;
  TXREP_ASSERT_OK(testing::ReplaySerial(db, translator, &store));
  TXREP_ASSERT_OK(store.Put(codec::RowKey("R", Value::Int(9999)), "stray"));
  Status status = CheckReplicaEquivalence(store, db, translator);
  EXPECT_FALSE(status.ok());
}

TEST(ReplicaEquivalenceTest, FlagsCorruptedRow) {
  rel::Database db;
  BuildWorkload(db, 4, 10);
  qt::QueryTranslator translator(&db.catalog(), {});
  kv::InMemoryKvNode store;
  TXREP_ASSERT_OK(testing::ReplaySerial(db, translator, &store));
  TXREP_ASSERT_OK(store.Put(codec::RowKey("R", Value::Int(1)), "garbage"));
  Status status = CheckReplicaEquivalence(store, db, translator);
  EXPECT_FALSE(status.ok());
}

TEST(ReplicaEquivalenceTest, FlagsMissingRow) {
  rel::Database db;
  BuildWorkload(db, 4, 10);
  qt::QueryTranslator translator(&db.catalog(), {});
  kv::InMemoryKvNode store;
  TXREP_ASSERT_OK(testing::ReplaySerial(db, translator, &store));
  TXREP_ASSERT_OK(store.Delete(codec::RowKey("R", Value::Int(2))));
  Status status = CheckReplicaEquivalence(store, db, translator);
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace txrep::check
