#include "core/transaction_manager.h"

#include "codec/kv_keys.h"
#include "codec/row_codec.h"
#include "gtest/gtest.h"
#include "kv/inmemory_node.h"
#include "test_util.h"

namespace txrep::core {
namespace {

using rel::Value;

class TmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<rel::TableSchema> schema =
        rel::TableSchema::Create("T",
                                 {{"ID", rel::ValueType::kInt64},
                                  {"V", rel::ValueType::kInt64}},
                                 "ID");
    ASSERT_TRUE(schema.ok());
    TXREP_ASSERT_OK(catalog_.AddTable(*schema));
    translator_ = std::make_unique<qt::QueryTranslator>(&catalog_);
  }

  rel::LogTransaction InsertTxn(int64_t id, int64_t v) {
    rel::LogTransaction txn;
    txn.ops.push_back(rel::LogOp{rel::LogOpType::kInsert, "T", Value::Int(id),
                                 {Value::Int(id), Value::Int(v)}});
    return txn;
  }
  rel::LogTransaction UpdateTxn(int64_t id, int64_t v) {
    rel::LogTransaction txn;
    txn.ops.push_back(rel::LogOp{rel::LogOpType::kUpdate, "T", Value::Int(id),
                                 {Value::Int(id), Value::Int(v)}});
    return txn;
  }

  int64_t ReadV(kv::KvStore& store, int64_t id) {
    Result<kv::Value> bytes = store.Get(codec::RowKey("T", Value::Int(id)));
    if (!bytes.ok()) return -1;
    return (*codec::DecodeRow(*bytes))[1].AsInt();
  }

  rel::Catalog catalog_;
  std::unique_ptr<qt::QueryTranslator> translator_;
};

TEST_F(TmTest, SingleTransactionApplies) {
  kv::InMemoryKvNode store;
  TransactionManager tm(&store, translator_.get(), {});
  auto handle = tm.SubmitUpdate(InsertTxn(1, 10));
  TXREP_ASSERT_OK(handle->Wait());
  EXPECT_EQ(ReadV(store, 1), 10);
  EXPECT_EQ(handle->state, TxnState::kCompleted);
}

TEST_F(TmTest, ManyIndependentTransactions) {
  kv::InMemoryKvNode store;
  TmOptions options;
  options.top_threads = 8;
  options.bottom_threads = 8;
  TransactionManager tm(&store, translator_.get(), options);
  for (int i = 1; i <= 200; ++i) {
    tm.SubmitUpdate(InsertTxn(i, i * 2));
  }
  TXREP_ASSERT_OK(tm.WaitIdle());
  for (int i = 1; i <= 200; ++i) {
    ASSERT_EQ(ReadV(store, i), i * 2);
  }
  TmStats stats = tm.stats();
  EXPECT_EQ(stats.submitted, 200);
  EXPECT_EQ(stats.completed, 200);
}

TEST_F(TmTest, WriteWriteChainKeepsOrder) {
  kv::InMemoryKvNode store;
  TransactionManager tm(&store, translator_.get(), {});
  tm.SubmitUpdate(InsertTxn(1, 0));
  for (int v = 1; v <= 50; ++v) {
    tm.SubmitUpdate(UpdateTxn(1, v));  // All conflict on row T_1.
  }
  TXREP_ASSERT_OK(tm.WaitIdle());
  EXPECT_EQ(ReadV(store, 1), 50);  // Last sequence wins — order respected.
}

TEST_F(TmTest, ConflictsAreCountedOnHotKeys) {
  kv::KvNodeOptions node_options;
  node_options.service_time_micros = 500;  // Widen the race window.
  kv::InMemoryKvNode store(node_options);
  TmOptions options;
  options.top_threads = 8;
  options.bottom_threads = 8;
  TransactionManager tm(&store, translator_.get(), options);
  tm.SubmitUpdate(InsertTxn(1, 0));
  for (int v = 1; v <= 30; ++v) {
    tm.SubmitUpdate(UpdateTxn(1, v));
  }
  TXREP_ASSERT_OK(tm.WaitIdle());
  TmStats stats = tm.stats();
  EXPECT_GT(stats.conflicts, 0);
  EXPECT_EQ(stats.restarts, stats.conflicts);  // No transient errors here.
  EXPECT_EQ(ReadV(store, 1), 30);
}

TEST_F(TmTest, ReadOnlyTransactionSeesSequencePointState) {
  kv::InMemoryKvNode store;
  TransactionManager tm(&store, translator_.get(), {});
  tm.SubmitUpdate(InsertTxn(1, 111));
  auto read_value = std::make_shared<int64_t>(-1);
  auto ro = tm.SubmitReadOnly([read_value](kv::KvStore* view) {
    Result<kv::Value> bytes = view->Get("T_1");
    if (!bytes.ok()) return bytes.status();
    TXREP_ASSIGN_OR_RETURN(rel::Row row, codec::DecodeRow(*bytes));
    *read_value = row[1].AsInt();
    return Status::OK();
  });
  TXREP_ASSERT_OK(ro->Wait());
  EXPECT_EQ(*read_value, 111);  // The seq-1 insert is visible at seq 2.
  EXPECT_EQ(tm.stats().read_only_submitted, 1);
}

TEST_F(TmTest, ReadOnlyNeverBlocksPipeline) {
  kv::InMemoryKvNode store;
  TransactionManager tm(&store, translator_.get(), {});
  tm.SubmitUpdate(InsertTxn(1, 1));
  for (int i = 0; i < 20; ++i) {
    tm.SubmitReadOnly([](kv::KvStore* view) {
      (void)view->Get("T_1");
      return Status::OK();
    });
    tm.SubmitUpdate(UpdateTxn(1, i));
  }
  TXREP_ASSERT_OK(tm.WaitIdle());
  EXPECT_EQ(tm.stats().completed, 41);
}

TEST_F(TmTest, CorruptReplayFailsTheManager) {
  kv::InMemoryKvNode store;
  TransactionManager tm(&store, translator_.get(), {});
  // Update of a row that never existed: unexplained by any conflict.
  auto handle = tm.SubmitUpdate(UpdateTxn(42, 1));
  Status s = handle->Wait();
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(tm.health().ok());
  // Subsequent submissions fail fast.
  auto next = tm.SubmitUpdate(InsertTxn(1, 1));
  EXPECT_FALSE(next->Wait().ok());
}

TEST_F(TmTest, WaitIdleOnEmptyManagerReturns) {
  kv::InMemoryKvNode store;
  TransactionManager tm(&store, translator_.get(), {});
  TXREP_ASSERT_OK(tm.WaitIdle());
}

TEST_F(TmTest, StatsTrackCommitAndCompleteCounts) {
  kv::InMemoryKvNode store;
  TransactionManager tm(&store, translator_.get(), {});
  for (int i = 1; i <= 10; ++i) tm.SubmitUpdate(InsertTxn(i, i));
  TXREP_ASSERT_OK(tm.WaitIdle());
  TmStats stats = tm.stats();
  EXPECT_EQ(stats.committed, 10);
  EXPECT_EQ(stats.completed, 10);
  EXPECT_EQ(stats.submitted, 10);
}

TEST_F(TmTest, RestartCountVisibleOnHandle) {
  kv::KvNodeOptions node_options;
  node_options.service_time_micros = 1000;
  kv::InMemoryKvNode store(node_options);
  TmOptions options;
  options.top_threads = 4;
  options.bottom_threads = 4;
  TransactionManager tm(&store, translator_.get(), options);
  tm.SubmitUpdate(InsertTxn(1, 0));
  auto h1 = tm.SubmitUpdate(UpdateTxn(1, 1));
  auto h2 = tm.SubmitUpdate(UpdateTxn(1, 2));
  TXREP_ASSERT_OK(tm.WaitIdle());
  // At least one of the chained updates must have restarted (they all race
  // on T_1 while the predecessor's buffer is unapplied).
  EXPECT_GE(h1->restarts() + h2->restarts(), 1);
}

}  // namespace
}  // namespace txrep::core
