// FrameTransport over a socketpair: full-duplex framed delivery in order,
// partial-write handling for large frames, corrupt-stream detection, and
// clean teardown semantics.

#include "net/transport.h"

#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "gtest/gtest.h"
#include "net/frame.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "test_util.h"

namespace txrep::net {
namespace {

std::pair<Socket, Socket> MustCreatePair() {
  Result<std::pair<Socket, Socket>> pair = Socket::CreatePair();
  EXPECT_TRUE(pair.ok()) << pair.status().ToString();
  return std::move(*pair);
}

TEST(NetTransportTest, DeliversFramesInOrderBothDirections) {
  auto [left, right] = MustCreatePair();
  FrameTransport a(std::move(left));
  FrameTransport b(std::move(right));

  const int kFrames = 200;
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(a.Send(MakeCreditFrame({static_cast<uint64_t>(i)})));
    ASSERT_TRUE(b.Send(MakeByeFrame("r" + std::to_string(i))));
  }
  for (int i = 0; i < kFrames; ++i) {
    std::optional<Frame> from_a = b.Receive();
    ASSERT_TRUE(from_a.has_value()) << "frame " << i;
    Result<CreditGrant> grant = ParseCredit(*from_a);
    TXREP_ASSERT_OK(grant.status());
    EXPECT_EQ(grant->credits, static_cast<uint64_t>(i));

    std::optional<Frame> from_b = a.Receive();
    ASSERT_TRUE(from_b.has_value()) << "frame " << i;
    Result<std::string> reason = ParseBye(*from_b);
    TXREP_ASSERT_OK(reason.status());
    EXPECT_EQ(*reason, "r" + std::to_string(i));
  }
  EXPECT_GE(a.frames_sent(), static_cast<int64_t>(kFrames));
  EXPECT_GE(b.frames_received(), static_cast<int64_t>(kFrames));
  TXREP_EXPECT_OK(a.health());
  TXREP_EXPECT_OK(b.health());
  a.Close();
  b.Close();
}

TEST(NetTransportTest, LargeFramesSurvivePartialWrites) {
  // Multi-megabyte bodies cannot fit a socket buffer: the writer must loop
  // over partial sends and the reader must reassemble across many reads.
  auto [left, right] = MustCreatePair();
  FrameTransport sender(std::move(left));
  FrameTransport receiver(std::move(right));

  std::vector<std::string> bodies;
  for (int i = 0; i < 4; ++i) {
    bodies.push_back(std::string(2'000'000 + i * 1000,
                                 static_cast<char>('a' + i)));
  }
  std::thread producer([&] {
    for (const std::string& body : bodies) {
      BatchPayload payload;
      payload.min_lsn = 1;
      payload.max_lsn = 1;
      payload.txn_count = 1;
      payload.batch_bytes = body;
      ASSERT_TRUE(sender.Send(MakeBatchFrame(payload)));
    }
  });
  for (const std::string& body : bodies) {
    std::optional<Frame> frame = receiver.Receive();
    ASSERT_TRUE(frame.has_value());
    Result<BatchPayload> payload = ParseBatch(*frame);
    TXREP_ASSERT_OK(payload.status());
    EXPECT_EQ(payload->batch_bytes, body);
  }
  producer.join();
  sender.Close();
  receiver.Close();
}

TEST(NetTransportTest, GarbageOnTheWireIsStickyCorruption) {
  auto [left, right] = MustCreatePair();
  FrameTransport receiver(std::move(right));
  // Write raw garbage (valid-looking start, then trash) from the bare socket.
  const std::string garbage = "TRash-not-a-frame-stream";
  std::string_view remaining = garbage;
  while (!remaining.empty()) {
    Result<size_t> sent = left.Send(remaining);
    ASSERT_TRUE(sent.ok()) << sent.status().ToString();
    remaining.remove_prefix(*sent);
  }
  std::optional<Frame> frame = receiver.Receive();
  EXPECT_FALSE(frame.has_value());
  EXPECT_TRUE(receiver.health().IsCorruption())
      << receiver.health().ToString();
  // Sticky: later receives keep failing rather than resyncing silently.
  EXPECT_FALSE(receiver.Receive().has_value());
  left.Close();
  receiver.Close();
}

TEST(NetTransportTest, PeerCloseEndsReceiveWithOkHealthIntact) {
  auto [left, right] = MustCreatePair();
  auto sender = std::make_unique<FrameTransport>(std::move(left));
  FrameTransport receiver(std::move(right));
  ASSERT_TRUE(sender->Send(MakeByeFrame("last")));
  std::optional<Frame> frame = receiver.Receive();
  ASSERT_TRUE(frame.has_value());
  sender->Close();
  sender.reset();
  // EOF: stream ends, but nothing was corrupt.
  EXPECT_FALSE(receiver.Receive().has_value());
  EXPECT_FALSE(receiver.health().IsCorruption());
  receiver.Close();
}

TEST(NetTransportTest, AbortUnblocksPendingReceive) {
  auto [left, right] = MustCreatePair();
  FrameTransport idle_peer(std::move(left));
  FrameTransport receiver(std::move(right));
  std::thread waiter([&] {
    // Blocks until Abort — no frame ever arrives.
    EXPECT_FALSE(receiver.Receive().has_value());
  });
  SleepForMicros(20'000);
  receiver.Abort();
  waiter.join();
  EXPECT_FALSE(receiver.health().ok());
  idle_peer.Close();
}

TEST(NetTransportTest, MetricsCountFramesAndBytes) {
  obs::MetricsRegistry registry;
  auto [left, right] = MustCreatePair();
  FrameTransport client(std::move(left), {}, &registry, "client");
  FrameTransport server(std::move(right), {}, &registry, "server");
  ASSERT_TRUE(client.Send(MakeCreditFrame({5})));
  ASSERT_TRUE(server.Receive().has_value());

  obs::Counter* sent =
      registry.GetCounter(obs::kNetFramesSent, {{"role", "client"}});
  obs::Counter* received =
      registry.GetCounter(obs::kNetFramesReceived, {{"role", "server"}});
  obs::Counter* bytes =
      registry.GetCounter(obs::kNetBytesSent, {{"role", "client"}});
  EXPECT_EQ(sent->Value(), 1);
  EXPECT_EQ(received->Value(), 1);
  EXPECT_GT(bytes->Value(), 0);
  client.Close();
  server.Close();
}

}  // namespace
}  // namespace txrep::net
