// Wire-frame codec: round-trips for every frame type, incremental decoding,
// and the corruption properties the transport relies on — every single-bit
// flip is rejected (never silently accepted) and every truncation offset
// reads as "incomplete", completing cleanly once the rest arrives.

#include "net/frame.h"

#include <string>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace txrep::net {
namespace {

TEST(NetFrameTest, ControlPayloadRoundTrips) {
  SubscribeRequest request;
  request.topic = "txrep.log";
  request.resume_after_lsn = 41;
  request.initial_credits = 7;
  Result<SubscribeRequest> req2 = ParseSubscribe(MakeSubscribeFrame(request));
  TXREP_ASSERT_OK(req2.status());
  EXPECT_EQ(req2->topic, request.topic);
  EXPECT_EQ(req2->resume_after_lsn, request.resume_after_lsn);
  EXPECT_EQ(req2->initial_credits, request.initial_credits);
  EXPECT_EQ(req2->protocol_version, kProtocolVersion);

  SubscribeAck ack;
  ack.retained_floor_lsn = 12;
  ack.last_published_lsn = 99;
  ack.catalog = std::string("catalog\x00ureau", 13);  // Embedded NUL.
  Result<SubscribeAck> ack2 = ParseSubscribeAck(MakeSubscribeAckFrame(ack));
  TXREP_ASSERT_OK(ack2.status());
  EXPECT_EQ(ack2->retained_floor_lsn, ack.retained_floor_lsn);
  EXPECT_EQ(ack2->last_published_lsn, ack.last_published_lsn);
  EXPECT_EQ(ack2->catalog, ack.catalog);

  BatchPayload batch;
  batch.min_lsn = 5;
  batch.max_lsn = 9;
  batch.txn_count = 5;
  batch.publish_micros = -123456789;  // Signed micros survive.
  batch.batch_bytes = std::string(300, '\xab');
  Result<BatchPayload> batch2 = ParseBatch(MakeBatchFrame(batch));
  TXREP_ASSERT_OK(batch2.status());
  EXPECT_EQ(batch2->min_lsn, batch.min_lsn);
  EXPECT_EQ(batch2->max_lsn, batch.max_lsn);
  EXPECT_EQ(batch2->txn_count, batch.txn_count);
  EXPECT_EQ(batch2->publish_micros, batch.publish_micros);
  EXPECT_EQ(batch2->batch_bytes, batch.batch_bytes);

  Result<CreditGrant> credit = ParseCredit(MakeCreditFrame({17}));
  TXREP_ASSERT_OK(credit.status());
  EXPECT_EQ(credit->credits, 17u);
}

TEST(NetFrameTest, ParserRejectsWrongFrameType) {
  EXPECT_TRUE(ParseSubscribe(MakeCreditFrame({1})).status().IsInvalidArgument());
  EXPECT_TRUE(ParseBatch(MakeByeFrame("x")).status().IsInvalidArgument());
  EXPECT_TRUE(ParseCredit(MakeBatchFrame({})).status().IsInvalidArgument());
}

TEST(NetFrameTest, DecoderHandlesOneByteAtATime) {
  std::vector<Frame> frames = {
      MakeSubscribeFrame({kProtocolVersion, "t", 3, 4}),
      MakeCreditFrame({9}),
      MakeByeFrame("done"),
  };
  std::string stream;
  for (const Frame& frame : frames) stream += EncodeFrame(frame);

  FrameDecoder decoder;
  std::vector<Frame> decoded;
  for (char byte : stream) {
    decoder.Feed(std::string_view(&byte, 1));
    for (;;) {
      Result<std::optional<Frame>> next = decoder.Next();
      TXREP_ASSERT_OK(next.status());
      if (!next->has_value()) break;
      decoded.push_back(std::move(**next));
    }
  }
  ASSERT_EQ(decoded.size(), frames.size());
  for (size_t i = 0; i < frames.size(); ++i) {
    EXPECT_TRUE(decoded[i] == frames[i]) << "frame " << i;
  }
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(NetFrameTest, DecoderDrainsMultipleFramesFromOneFeed) {
  std::string stream;
  const int kFrames = 50;
  for (int i = 0; i < kFrames; ++i) {
    stream += EncodeFrame(MakeCreditFrame({static_cast<uint64_t>(i)}));
  }
  FrameDecoder decoder;
  decoder.Feed(stream);
  for (int i = 0; i < kFrames; ++i) {
    Result<std::optional<Frame>> next = decoder.Next();
    TXREP_ASSERT_OK(next.status());
    ASSERT_TRUE(next->has_value());
    Result<CreditGrant> grant = ParseCredit(**next);
    TXREP_ASSERT_OK(grant.status());
    EXPECT_EQ(grant->credits, static_cast<uint64_t>(i));
  }
  Result<std::optional<Frame>> done = decoder.Next();
  TXREP_ASSERT_OK(done.status());
  EXPECT_FALSE(done->has_value());
}

// Satellite property: flipping ANY single bit of an encoded frame must never
// let the decoder hand back the original frame as valid. Flips outside the
// length field must be hard Corruption (with a follow-up frame present so the
// decoder never just sits waiting for bytes); flips inside the length field
// may instead leave the decoder waiting (it cannot know bytes are missing),
// but must never produce a frame.
TEST(NetFrameTest, EveryByteFlipIsRejected) {
  BatchPayload payload;
  payload.min_lsn = 1;
  payload.max_lsn = 4;
  payload.txn_count = 4;
  payload.publish_micros = 777;
  payload.batch_bytes = "0123456789abcdef0123456789abcdef";
  const Frame original = MakeBatchFrame(payload);
  const std::string wire = EncodeFrame(original);
  const std::string sentinel = EncodeFrame(MakeCreditFrame({1}));

  for (size_t offset = 0; offset < wire.size(); ++offset) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupted = wire;
      corrupted[offset] = static_cast<char>(
          static_cast<unsigned char>(corrupted[offset]) ^ (1u << bit));
      FrameDecoder decoder;
      decoder.Feed(corrupted);
      decoder.Feed(sentinel);
      Result<std::optional<Frame>> next = decoder.Next();
      const bool in_length_field = offset >= 4 && offset < 8;
      if (!next.ok()) {
        EXPECT_TRUE(next.status().IsCorruption())
            << "offset " << offset << " bit " << bit << ": "
            << next.status().ToString();
        // Sticky: the stream is dead for good.
        EXPECT_FALSE(decoder.Next().ok());
        continue;
      }
      if (in_length_field) {
        // A longer claimed body can only read as "incomplete" — but never as
        // a successfully decoded frame.
        EXPECT_FALSE(next->has_value())
            << "offset " << offset << " bit " << bit
            << ": corrupted length field yielded a frame";
        continue;
      }
      FAIL() << "offset " << offset << " bit " << bit
             << ": single-bit flip was not detected";
    }
  }
}

// Satellite property: every truncation offset reads as "incomplete" (no
// frame, no error), and feeding the remainder later completes the frame
// intact — the transport's partial-read path in miniature.
TEST(NetFrameTest, EveryTruncationOffsetIsIncompleteThenResumes) {
  SubscribeAck ack;
  ack.retained_floor_lsn = 3;
  ack.last_published_lsn = 8;
  ack.catalog = std::string(100, 'c');
  const Frame original = MakeSubscribeAckFrame(ack);
  const std::string wire = EncodeFrame(original);

  for (size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Feed(std::string_view(wire).substr(0, cut));
    Result<std::optional<Frame>> next = decoder.Next();
    TXREP_ASSERT_OK(next.status());
    ASSERT_FALSE(next->has_value()) << "cut " << cut << " yielded a frame";

    decoder.Feed(std::string_view(wire).substr(cut));
    next = decoder.Next();
    TXREP_ASSERT_OK(next.status());
    ASSERT_TRUE(next->has_value()) << "cut " << cut;
    EXPECT_TRUE(**next == original) << "cut " << cut;
  }
}

TEST(NetFrameTest, MaxSizeBodyRoundTrips) {
  // Exactly the cap: must encode and decode byte-identically.
  Frame frame;
  frame.type = FrameType::kBatch;
  frame.body.resize(kMaxFrameBody);
  Random rng(20260809);
  for (size_t i = 0; i < frame.body.size(); i += 4096) {
    frame.body[i] = static_cast<char>(rng.Uniform(256));
  }
  FrameDecoder decoder;
  decoder.Feed(EncodeFrame(frame));
  Result<std::optional<Frame>> next = decoder.Next();
  TXREP_ASSERT_OK(next.status());
  ASSERT_TRUE(next->has_value());
  EXPECT_TRUE(**next == frame);
}

TEST(NetFrameTest, OversizedBodyIsRejectedBeforeBuffering) {
  // Hand-build a header claiming kMaxFrameBody + 1 bytes; the decoder must
  // refuse from the header alone instead of waiting to allocate 64 MiB.
  Frame frame;
  frame.type = FrameType::kBye;
  frame.body = "tiny";
  std::string wire = EncodeFrame(frame);
  const uint32_t huge = static_cast<uint32_t>(kMaxFrameBody + 1);
  wire[4] = static_cast<char>(huge & 0xff);
  wire[5] = static_cast<char>((huge >> 8) & 0xff);
  wire[6] = static_cast<char>((huge >> 16) & 0xff);
  wire[7] = static_cast<char>((huge >> 24) & 0xff);
  FrameDecoder decoder;
  decoder.Feed(wire);
  Result<std::optional<Frame>> next = decoder.Next();
  EXPECT_TRUE(next.status().IsCorruption());
}

TEST(NetFrameTest, BadMagicAndVersionAreRejected) {
  const std::string wire = EncodeFrame(MakeByeFrame("x"));
  {
    std::string bad = wire;
    bad[0] = 'X';
    FrameDecoder decoder;
    decoder.Feed(bad);
    EXPECT_TRUE(decoder.Next().status().IsCorruption());
  }
  {
    std::string bad = wire;
    bad[2] = static_cast<char>(kProtocolVersion + 1);
    FrameDecoder decoder;
    decoder.Feed(bad);
    EXPECT_TRUE(decoder.Next().status().IsCorruption());
  }
  {
    std::string bad = wire;
    bad[3] = 0;  // No frame type 0.
    FrameDecoder decoder;
    decoder.Feed(bad);
    EXPECT_TRUE(decoder.Next().status().IsCorruption());
  }
}

}  // namespace
}  // namespace txrep::net
