// Regression: after a transport drop, the reconnect path re-delivers
// already-consumed batches (the endpoint replays retention from the resume
// point at batch granularity). SubscriberAgent must dedup against BOTH its
// snapshot resume point and its own high-water mark — the original code only
// checked the former, so duplicates arriving after a reconnect were applied
// twice.

#include <mutex>
#include <vector>

#include "codec/log_codec.h"
#include "common/blocking_queue.h"
#include "common/clock.h"
#include "gtest/gtest.h"
#include "mw/message_source.h"
#include "mw/subscriber.h"
#include "rel/txlog.h"
#include "test_util.h"

namespace txrep::mw {
namespace {

rel::LogOp MakeOp(int64_t pk) {
  return rel::LogOp{rel::LogOpType::kInsert, "T", rel::Value::Int(pk),
                    {rel::Value::Int(pk)}};
}

/// A scripted MessageSource: hands out exactly the batches a flaky transport
/// would — including re-delivered ones after a "reconnect".
class ScriptedSource : public MessageSource {
 public:
  void Deliver(const std::vector<rel::LogTransaction>& batch) {
    Message message;
    message.topic = "t";
    message.payload = codec::EncodeLogBatch(batch);
    message.publish_micros = NowMicros();
    message.deliver_micros = NowMicros();
    queue_.Push(std::move(message));
  }

  std::optional<Message> Pop() override { return queue_.Pop(); }
  std::optional<Message> TryPop() override { return queue_.TryPop(); }
  void Close() override { queue_.Close(); }
  size_t Pending() const override { return queue_.size(); }

 private:
  BlockingQueue<Message> queue_;
};

std::vector<rel::LogTransaction> Slice(rel::TxLog& log, uint64_t after,
                                       uint64_t up_to) {
  return log.ReadSince(after, up_to);
}

TEST(SubscriberDedupTest, RedeliveredBatchAfterDropIsNotReapplied) {
  rel::TxLog log;
  for (int i = 1; i <= 15; ++i) log.Append({MakeOp(i)});

  std::vector<uint64_t> applied;
  std::mutex mu;
  ScriptedSource source;
  SubscriberAgent agent(&source, [&](rel::LogTransaction txn) {
    std::lock_guard<std::mutex> lock(mu);
    applied.push_back(txn.lsn);
    return Status::OK();
  });

  // Normal stream: LSNs 1-10 in two batches.
  source.Deliver(Slice(log, 0, 5));
  source.Deliver(Slice(log, 5, 10));
  ASSERT_TRUE(agent.WaitForLsn(10));

  // "Transport drop": the reconnect replays retention from the resume
  // point — batch [6,10] again, then the live tail.
  source.Deliver(Slice(log, 5, 10));
  source.Deliver(Slice(log, 10, 15));
  ASSERT_TRUE(agent.WaitForLsn(15));
  source.Close();
  agent.Stop();

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(applied.size(), 15u) << "duplicate batch was re-applied";
  for (size_t i = 0; i < applied.size(); ++i) {
    EXPECT_EQ(applied[i], i + 1);
  }
}

TEST(SubscriberDedupTest, BatchStraddlingHighWaterAppliesOnlyTheTail) {
  rel::TxLog log;
  for (int i = 1; i <= 12; ++i) log.Append({MakeOp(i)});

  std::vector<uint64_t> applied;
  std::mutex mu;
  ScriptedSource source;
  SubscriberAgent agent(&source, [&](rel::LogTransaction txn) {
    std::lock_guard<std::mutex> lock(mu);
    applied.push_back(txn.lsn);
    return Status::OK();
  });

  source.Deliver(Slice(log, 0, 8));
  ASSERT_TRUE(agent.WaitForLsn(8));
  // Reconnect with a batch straddling the high-water mark: [5,12] — the
  // wire sends retained batches whole; 5-8 are duplicates, 9-12 are new.
  source.Deliver(Slice(log, 4, 12));
  ASSERT_TRUE(agent.WaitForLsn(12));
  source.Close();
  agent.Stop();

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(applied.size(), 12u);
  for (size_t i = 0; i < applied.size(); ++i) {
    EXPECT_EQ(applied[i], i + 1);
  }
}

TEST(SubscriberDedupTest, SnapshotResumeAndDropDedupCompose) {
  rel::TxLog log;
  for (int i = 1; i <= 20; ++i) log.Append({MakeOp(i)});

  std::vector<uint64_t> applied;
  std::mutex mu;
  SubscriberOptions options;
  options.resume_after_lsn = 5;  // Snapshot already covers 1-5.
  ScriptedSource source;
  SubscriberAgent agent(
      &source,
      [&](rel::LogTransaction txn) {
        std::lock_guard<std::mutex> lock(mu);
        applied.push_back(txn.lsn);
        return Status::OK();
      },
      /*metrics=*/nullptr, options);

  source.Deliver(Slice(log, 0, 10));   // 1-5 skipped (snapshot), 6-10 applied.
  ASSERT_TRUE(agent.WaitForLsn(10));
  source.Deliver(Slice(log, 5, 15));   // 6-10 skipped (high-water), 11-15 new.
  source.Deliver(Slice(log, 15, 20));
  ASSERT_TRUE(agent.WaitForLsn(20));
  source.Close();
  agent.Stop();

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(applied.size(), 15u);
  for (size_t i = 0; i < applied.size(); ++i) {
    EXPECT_EQ(applied[i], i + 6);
  }
}

}  // namespace
}  // namespace txrep::mw
