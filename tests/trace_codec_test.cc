// Wire-format tests for the trace context in the log codec: the trace
// identity must round-trip exactly, reserved flag bits must be rejected, and
// the batch checksum must catch every single-byte flip, every truncation and
// trailing junk (the recov manifest's corruption bar, applied to replication
// messages).

#include <string>
#include <vector>

#include "codec/log_codec.h"
#include "gtest/gtest.h"
#include "rel/txlog.h"
#include "trace/context.h"

namespace txrep::codec {
namespace {

using rel::Value;

rel::LogTransaction MakeTxn(uint64_t lsn, int64_t commit_micros,
                            uint64_t trace_id, bool sampled) {
  rel::LogTransaction txn;
  txn.lsn = lsn;
  txn.commit_micros = commit_micros;
  txn.trace.trace_id = trace_id;
  txn.trace.sampled = sampled;
  txn.ops.push_back(rel::LogOp{rel::LogOpType::kInsert, "ITEM", Value::Int(1),
                               {Value::Int(1), Value::Str("a")}});
  txn.ops.push_back(rel::LogOp{rel::LogOpType::kDelete, "ITEM", Value::Int(2),
                               {}});
  return txn;
}

TEST(TraceCodecTest, TraceContextRoundTrip) {
  const std::vector<rel::LogTransaction> batch = {
      MakeTxn(1, 111, 1, true),
      MakeTxn(2, -5, 0, false),            // Unsampled, zero id.
      MakeTxn(3, 222, 1ULL << 62, true),   // Large trace id (varint width).
      MakeTxn(4, 333, 77, false),          // Id without the sampled bit.
  };
  Result<std::vector<rel::LogTransaction>> decoded =
      DecodeLogBatch(EncodeLogBatch(batch));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ((*decoded)[i].lsn, batch[i].lsn);
    EXPECT_EQ((*decoded)[i].commit_micros, batch[i].commit_micros);
    EXPECT_EQ((*decoded)[i].trace.trace_id, batch[i].trace.trace_id)
        << "txn " << i;
    EXPECT_EQ((*decoded)[i].trace.sampled, batch[i].trace.sampled)
        << "txn " << i;
  }
}

TEST(TraceCodecTest, ReservedFlagBitsRejected) {
  // Encode a single unsampled transaction, find its flag byte (right after
  // the trace_id varint) and set a reserved bit: decode must fail rather
  // than silently carry unknown semantics forward.
  rel::LogTransaction txn = MakeTxn(9, 42, 5, false);
  std::string one;
  AppendLogTransaction(one, txn);
  // Layout: varint lsn (1 byte for 9), zigzag commit (1 byte for 42),
  // varint trace_id (1 byte for 5), then the flag byte.
  ASSERT_GT(one.size(), 3u);
  one[3] = static_cast<char>(0x80);
  std::string_view view = one;
  Result<rel::LogTransaction> decoded = GetLogTransaction(&view);
  EXPECT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption())
      << decoded.status().ToString();
}

TEST(TraceCodecTest, BatchChecksumCatchesEverything) {
  const std::string encoded =
      EncodeLogBatch({MakeTxn(1, 100, 1, true), MakeTxn(2, 200, 2, false)});

  ASSERT_TRUE(DecodeLogBatch(encoded).ok());

  // Any single-byte flip must be detected.
  for (size_t i = 0; i < encoded.size(); ++i) {
    std::string bad = encoded;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    EXPECT_FALSE(DecodeLogBatch(bad).ok())
        << "flip at offset " << i << " went undetected";
  }
  // Truncation at every offset must be detected.
  for (size_t i = 0; i < encoded.size(); ++i) {
    EXPECT_FALSE(DecodeLogBatch(std::string_view(encoded).substr(0, i)).ok())
        << "truncation to " << i << " bytes went undetected";
  }
  // Trailing junk must be detected too.
  EXPECT_FALSE(DecodeLogBatch(encoded + "x").ok());
}

TEST(TraceCodecTest, EmptyBatchRoundTripsAndIsChecksummed) {
  const std::string encoded = EncodeLogBatch({});
  Result<std::vector<rel::LogTransaction>> decoded = DecodeLogBatch(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
  for (size_t i = 0; i < encoded.size(); ++i) {
    std::string bad = encoded;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    EXPECT_FALSE(DecodeLogBatch(bad).ok()) << "flip at offset " << i;
  }
}

}  // namespace
}  // namespace txrep::codec
