// Full-stack equivalence on TPC-W: the richest workload in the repo —
// multi-table transactions, hash-index maintenance and B-link range-index
// maintenance (price changes) all flowing through the concurrent TM.

#include "core/transaction_manager.h"
#include "gtest/gtest.h"
#include "kv/kv_cluster.h"
#include "qt/query_translator.h"
#include "rel/database.h"
#include "test_util.h"
#include "workload/tpcw.h"

namespace txrep::core {
namespace {

struct TpcwCase {
  workload::TpcwMix mix;
  int interactions;
  int threads;
  uint64_t seed;
  const char* name;
};

std::ostream& operator<<(std::ostream& os, const TpcwCase& c) {
  return os << c.name;
}

class TpcwEquivalenceTest : public ::testing::TestWithParam<TpcwCase> {};

TEST_P(TpcwEquivalenceTest, ConcurrentReplayEqualsSerialAndDatabase) {
  const TpcwCase& c = GetParam();
  rel::Database db;
  workload::TpcwScale scale;
  scale.items = 200;
  scale.customers = 100;
  scale.addresses = 200;
  scale.initial_orders = 50;
  workload::TpcwWorkload tpcw(scale, c.seed);
  TXREP_ASSERT_OK(tpcw.CreateSchema(db));
  TXREP_ASSERT_OK(tpcw.Populate(db));
  int writes = 0;
  for (int i = 0; i < c.interactions; ++i) {
    workload::TpcwWorkload::TxnSpec spec = tpcw.NextTransaction(c.mix);
    if (!spec.is_write) continue;  // Read mix covered by other tests.
    TXREP_ASSERT_OK(db.ExecuteTransaction(spec.statements).status());
    ++writes;
  }
  ASSERT_GT(writes, 0);

  qt::QueryTranslator translator(&db.catalog(), {.max_node_keys = 16});
  kv::InMemoryKvNode serial_store;
  TXREP_ASSERT_OK(testing::ReplaySerial(db, translator, &serial_store));

  kv::KvCluster cluster({.num_nodes = 3, .node = {}});
  TmOptions options;
  options.top_threads = c.threads;
  options.bottom_threads = c.threads;
  TmStats stats;
  TXREP_ASSERT_OK(
      testing::ReplayConcurrent(db, translator, &cluster, options, &stats));

  testing::ExpectDumpsEqual(serial_store, cluster);
  testing::VerifyReplicaMatchesDatabase(cluster, db, translator);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, TpcwEquivalenceTest,
    ::testing::Values(
        TpcwCase{workload::TpcwMix::kBrowsing, 600, 8, 61, "browsing_t8"},
        TpcwCase{workload::TpcwMix::kShopping, 400, 8, 62, "shopping_t8"},
        TpcwCase{workload::TpcwMix::kOrdering, 300, 8, 63, "ordering_t8"},
        TpcwCase{workload::TpcwMix::kOrdering, 300, 20, 64, "ordering_t20"},
        TpcwCase{workload::TpcwMix::kOrdering, 300, 2, 65, "ordering_t2"}),
    [](const ::testing::TestParamInfo<TpcwCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace txrep::core
