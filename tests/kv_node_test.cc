#include "kv/inmemory_node.h"

#include <thread>
#include <vector>

#include "common/clock.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace txrep::kv {
namespace {

TEST(InMemoryKvNodeTest, PutGetRoundTrip) {
  InMemoryKvNode node;
  TXREP_ASSERT_OK(node.Put("k", "v"));
  Result<Value> v = node.Get("k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "v");
}

TEST(InMemoryKvNodeTest, GetMissingIsNotFound) {
  InMemoryKvNode node;
  EXPECT_TRUE(node.Get("nope").status().IsNotFound());
}

TEST(InMemoryKvNodeTest, PutOverwrites) {
  InMemoryKvNode node;
  TXREP_ASSERT_OK(node.Put("k", "v1"));
  TXREP_ASSERT_OK(node.Put("k", "v2"));
  EXPECT_EQ(*node.Get("k"), "v2");
  EXPECT_EQ(node.Size(), 1u);
}

TEST(InMemoryKvNodeTest, DeleteRemovesAndIsIdempotent) {
  InMemoryKvNode node;
  TXREP_ASSERT_OK(node.Put("k", "v"));
  TXREP_ASSERT_OK(node.Delete("k"));
  EXPECT_TRUE(node.Get("k").status().IsNotFound());
  TXREP_ASSERT_OK(node.Delete("k"));  // Absent delete is OK.
}

TEST(InMemoryKvNodeTest, ContainsAndSize) {
  InMemoryKvNode node;
  EXPECT_FALSE(node.Contains("a"));
  TXREP_ASSERT_OK(node.Put("a", "1"));
  TXREP_ASSERT_OK(node.Put("b", "2"));
  EXPECT_TRUE(node.Contains("a"));
  EXPECT_EQ(node.Size(), 2u);
}

TEST(InMemoryKvNodeTest, BinarySafeKeysAndValues) {
  InMemoryKvNode node;
  const std::string key("\x00\x01\xff k", 5);
  const std::string value("\x00\xfe\x7f", 3);
  TXREP_ASSERT_OK(node.Put(key, value));
  EXPECT_EQ(*node.Get(key), value);
}

TEST(InMemoryKvNodeTest, DumpIsSortedAndComplete) {
  InMemoryKvNode node;
  TXREP_ASSERT_OK(node.Put("c", "3"));
  TXREP_ASSERT_OK(node.Put("a", "1"));
  TXREP_ASSERT_OK(node.Put("b", "2"));
  StoreDump dump = node.Dump();
  ASSERT_EQ(dump.size(), 3u);
  EXPECT_EQ(dump[0].first, "a");
  EXPECT_EQ(dump[1].first, "b");
  EXPECT_EQ(dump[2].first, "c");
}

TEST(InMemoryKvNodeTest, StatsCountOperations) {
  InMemoryKvNode node;
  (void)node.Put("a", "1");
  (void)node.Get("a");
  (void)node.Get("missing");
  (void)node.Delete("a");
  KvStoreStats stats = node.stats();
  EXPECT_EQ(stats.puts, 1);
  EXPECT_EQ(stats.gets, 2);
  EXPECT_EQ(stats.get_misses, 1);
  EXPECT_EQ(stats.deletes, 1);
}

TEST(InMemoryKvNodeTest, FailureInjectionRate) {
  KvNodeOptions options;
  options.failure_rate = 0.3;
  options.failure_seed = 1;
  InMemoryKvNode node(options);
  int failures = 0;
  for (int i = 0; i < 1000; ++i) {
    if (!node.Put("k" + std::to_string(i), "v").ok()) ++failures;
  }
  EXPECT_GT(failures, 200);
  EXPECT_LT(failures, 400);
  EXPECT_EQ(node.stats().injected_failures, failures);
}

TEST(InMemoryKvNodeTest, ServiceTimeIsCharged) {
  KvNodeOptions options;
  options.service_time_micros = 2000;
  InMemoryKvNode node(options);
  Stopwatch sw;
  TXREP_ASSERT_OK(node.Put("k", "v"));
  EXPECT_GE(sw.ElapsedMicros(), 2000);
}

TEST(InMemoryKvNodeTest, ServiceSlotsSerializeOps) {
  // One slot, 4 threads x 1 op of 5ms -> at least ~20ms wall clock.
  KvNodeOptions options;
  options.service_time_micros = 5000;
  options.service_slots = 1;
  InMemoryKvNode node(options);
  Stopwatch sw;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back(
        [&node, t] { (void)node.Put("k" + std::to_string(t), "v"); });
  }
  for (auto& t : threads) t.join();
  EXPECT_GE(sw.ElapsedMicros(), 4 * 5000);
}

TEST(InMemoryKvNodeTest, ConcurrentReadersWritersKeepValuesAtomic) {
  InMemoryKvNode node;
  TXREP_ASSERT_OK(node.Put("k", std::string(100, 'a')));
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    char c = 'b';
    while (!stop) {
      (void)node.Put("k", std::string(100, c));
      c = c == 'z' ? 'a' : c + 1;
    }
  });
  for (int i = 0; i < 2000; ++i) {
    Result<Value> v = node.Get("k");
    ASSERT_TRUE(v.ok());
    ASSERT_EQ(v->size(), 100u);
    // Atomic visibility: the value is never a mix of two writes.
    for (char c : *v) ASSERT_EQ(c, (*v)[0]);
  }
  stop = true;
  writer.join();
}

}  // namespace
}  // namespace txrep::kv
