#include "blink/opt_latch.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace txrep::blink {
namespace {

TEST(OptLatchTest, FreshWordIsUnlockedAndLive) {
  OptLatch latch;
  const uint64_t word = latch.RawVersionWord();
  EXPECT_FALSE(OptLatch::IsLocked(word));
  EXPECT_FALSE(OptLatch::IsObsolete(word));
  EXPECT_EQ(word, 0u);
}

TEST(OptLatchTest, UnlockBumpsVersionAndClearsLock) {
  OptLatch latch;
  latch.Lock();
  EXPECT_TRUE(OptLatch::IsLocked(latch.RawVersionWord()));
  latch.Unlock();
  const uint64_t word = latch.RawVersionWord();
  EXPECT_FALSE(OptLatch::IsLocked(word));
  EXPECT_EQ(word, OptLatch::kVersionStep);  // Exactly one version bump.
}

TEST(OptLatchTest, UnlockNoBumpPreservesVersion) {
  OptLatch latch;
  const uint64_t before = latch.RawVersionWord();
  latch.Lock();
  latch.UnlockNoBump();
  EXPECT_EQ(latch.RawVersionWord(), before);
}

TEST(OptLatchTest, TryLockFailsWhileHeld) {
  OptLatch latch;
  ASSERT_TRUE(latch.TryLock());
  EXPECT_FALSE(latch.TryLock());
  latch.Unlock();
  EXPECT_TRUE(latch.TryLock());
  latch.UnlockNoBump();
}

TEST(OptLatchTest, ReadValidateFailsAcrossPublishedWrite) {
  OptLatch latch;
  const uint64_t snapshot = latch.ReadBegin();
  EXPECT_TRUE(latch.ReadValidate(snapshot));
  latch.Lock();
  latch.Unlock();  // Published modification.
  EXPECT_FALSE(latch.ReadValidate(snapshot));
}

TEST(OptLatchTest, ReadValidateSurvivesNoBumpRelease) {
  OptLatch latch;
  const uint64_t snapshot = latch.ReadBegin();
  latch.Lock();
  latch.UnlockNoBump();  // Nothing modified.
  EXPECT_TRUE(latch.ReadValidate(snapshot));
}

TEST(OptLatchTest, ObsoleteIsStickyAndReturnedImmediately) {
  OptLatch latch;
  latch.Lock();
  latch.UnlockObsolete();
  int spins = 0;
  const uint64_t word = latch.ReadBegin(&spins);
  EXPECT_TRUE(OptLatch::IsObsolete(word));
  EXPECT_EQ(spins, 0);  // No point waiting on a dead node.
  EXPECT_FALSE(latch.ReadValidate(word - OptLatch::kObsoleteBit));
}

TEST(OptLatchTest, ReadBeginWaitsOutWriter) {
  OptLatch latch;
  latch.Lock();
  std::atomic<bool> entering{false};
  std::atomic<int> reader_spins{0};
  std::atomic<uint64_t> observed{~uint64_t{0}};
  std::thread reader([&] {
    int spins = 0;
    entering.store(true, std::memory_order_release);
    observed.store(latch.ReadBegin(&spins), std::memory_order_release);
    reader_spins.store(spins, std::memory_order_release);
  });
  // The reader cannot publish anything until we unlock (ReadBegin blocks on
  // the lock bit), so wait for its entry flag, give it long enough to reach
  // the spin loop, then publish; it must come back with the unlocked word.
  while (!entering.load(std::memory_order_acquire)) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  latch.Unlock();
  reader.join();
  const uint64_t word = observed.load(std::memory_order_acquire);
  EXPECT_FALSE(OptLatch::IsLocked(word));
  EXPECT_EQ(word, OptLatch::kVersionStep);
  EXPECT_GT(reader_spins.load(std::memory_order_acquire), 0);
}

TEST(OptLatchTableTest, ConstructionAllocatesNothing) {
  OptLatchTable table;
  EXPECT_EQ(table.AllocatedSegments(), 0u);
}

TEST(OptLatchTableTest, StableIdentityPerIdAcrossSegments) {
  OptLatchTable table;
  // Segment boundaries for kBlockBits=9: segment 0 covers [0, 512),
  // segment 1 covers [512, 1536), segment 2 covers [1536, 3584).
  const std::vector<uint64_t> ids = {0, 1, 511, 512, 1535, 1536, 3583, 3584};
  std::vector<OptLatch*> first;
  for (uint64_t id : ids) first.push_back(&table.Get(id));
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(&table.Get(ids[i]), first[i]) << "id " << ids[i];
    for (size_t j = i + 1; j < ids.size(); ++j) {
      EXPECT_NE(first[i], &table.Get(ids[j]))
          << "ids " << ids[i] << " and " << ids[j] << " aliased";
    }
  }
  EXPECT_EQ(table.AllocatedSegments(), 4u);  // Segments 0..3 touched.
}

TEST(OptLatchTableTest, LatchStateSurvivesSegmentGrowth) {
  OptLatchTable table;
  table.Get(7).Lock();
  table.Get(7).Unlock();
  const uint64_t word = table.Get(7).RawVersionWord();
  // Touching far ids grows new segments but never moves existing latches.
  table.Get(OptLatchTable::kCapacity - 1);
  EXPECT_EQ(table.Get(7).RawVersionWord(), word);
}

TEST(OptLatchTableTest, ConcurrentGetAgreesOnIdentity) {
  OptLatchTable table;
  constexpr int kThreads = 4;
  std::vector<OptLatch*> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] { seen[t] = &table.Get(600); });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
}

}  // namespace
}  // namespace txrep::blink
