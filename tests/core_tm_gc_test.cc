// Algorithm 2: asynchronous trimming of the CompletedTransactionList.

#include "core/transaction_manager.h"

#include "gtest/gtest.h"
#include "kv/inmemory_node.h"
#include "qt/query_translator.h"
#include "rel/database.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace txrep::core {
namespace {

using rel::Value;

class GcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<rel::TableSchema> schema =
        rel::TableSchema::Create("T",
                                 {{"ID", rel::ValueType::kInt64},
                                  {"V", rel::ValueType::kInt64}},
                                 "ID");
    ASSERT_TRUE(schema.ok());
    TXREP_ASSERT_OK(catalog_.AddTable(*schema));
    translator_ = std::make_unique<qt::QueryTranslator>(&catalog_);
  }

  rel::LogTransaction Insert(int64_t id) {
    rel::LogTransaction txn;
    txn.ops.push_back(rel::LogOp{rel::LogOpType::kInsert, "T", Value::Int(id),
                                 {Value::Int(id), Value::Int(0)}});
    return txn;
  }

  rel::Catalog catalog_;
  std::unique_ptr<qt::QueryTranslator> translator_;
};

TEST_F(GcTest, CompletedListBoundedByGc) {
  kv::InMemoryKvNode store;
  TmOptions options;
  options.completed_gc_threshold = 16;
  TransactionManager tm(&store, translator_.get(), options);
  // Waves with idle points between them: every wave-N transaction starts
  // strictly after all wave-(N-1) completions, so Algorithm 2's condition
  // makes the earlier waves' entries removable by any pass triggered during
  // the next wave — a deterministic GC opportunity regardless of scheduling.
  int next_id = 1;
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 200; ++i) {
      tm.SubmitUpdate(Insert(next_id++));
    }
    TXREP_ASSERT_OK(tm.WaitIdle());
  }
  TmStats stats = tm.stats();
  EXPECT_GT(stats.gc_runs, 0);
  EXPECT_GT(stats.gc_removed, 0);
  EXPECT_LT(tm.CompletedListSize(), 600u);
}

TEST_F(GcTest, NoGcBelowThreshold) {
  kv::InMemoryKvNode store;
  TmOptions options;
  options.completed_gc_threshold = 10000;
  TransactionManager tm(&store, translator_.get(), options);
  for (int i = 1; i <= 100; ++i) tm.SubmitUpdate(Insert(i));
  TXREP_ASSERT_OK(tm.WaitIdle());
  EXPECT_EQ(tm.stats().gc_runs, 0);
  EXPECT_EQ(tm.CompletedListSize(), 100u);
}

TEST_F(GcTest, AggressiveGcPreservesCorrectness) {
  // Threshold 1: the completed list is trimmed constantly while conflicting
  // transactions race — Algorithm 2's "no active transaction started before
  // completion" condition is what keeps the conflict checks sound.
  rel::Database db;
  workload::SyntheticWorkload workload(
      {.num_items = 50, .hot_range = 4, .seed = 21});
  TXREP_ASSERT_OK(workload.CreateSchema(db));
  TXREP_ASSERT_OK(workload.Populate(db));
  TXREP_ASSERT_OK(workload.Run(db, 300));

  qt::QueryTranslator translator(&db.catalog(), {});
  kv::InMemoryKvNode serial_store;
  TXREP_ASSERT_OK(testing::ReplaySerial(db, translator, &serial_store));

  kv::InMemoryKvNode concurrent_store;
  TmOptions options;
  options.top_threads = 8;
  options.bottom_threads = 8;
  options.completed_gc_threshold = 1;
  TmStats stats;
  TXREP_ASSERT_OK(testing::ReplayConcurrent(db, translator, &concurrent_store,
                                            options, &stats));
  EXPECT_GT(stats.gc_runs, 0);
  testing::ExpectDumpsEqual(serial_store, concurrent_store);
}

}  // namespace
}  // namespace txrep::core
