// Exporter tests: Chrome trace-event JSON structural validity, summary
// folding (coverage, completeness, dominant-hop attribution), the text
// timeline, the critical-path report and tracer exemplar retention.

#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "trace/export.h"
#include "trace/names.h"
#include "trace/tracer.h"

namespace txrep::trace {
namespace {

SpanEvent MakeSpan(uint64_t trace_id, SpanStage stage, int64_t start,
                   int64_t end, int64_t queue = 0) {
  SpanEvent event;
  event.trace_id = trace_id;
  event.lsn = trace_id;
  event.stage = stage;
  event.start_micros = start;
  event.end_micros = end;
  event.queue_micros = queue;
  return event;
}

// One fully-traced transaction: contiguous hops covering [t0, t0+100], with
// the broker hop dominating (60 of 100 µs).
std::vector<SpanEvent> FullTrace(uint64_t id, int64_t t0) {
  return {
      MakeSpan(id, SpanStage::kPublish, t0, t0 + 10),
      MakeSpan(id, SpanStage::kBroker, t0 + 10, t0 + 70, /*queue=*/50),
      MakeSpan(id, SpanStage::kReceive, t0 + 70, t0 + 80),
      MakeSpan(id, SpanStage::kCommitEval, t0 + 80, t0 + 90),
      MakeSpan(id, SpanStage::kApply, t0 + 90, t0 + 100),
      MakeSpan(id, SpanStage::kE2e, t0, t0 + 100),
  };
}

// A lightweight structural check: balanced braces/brackets outside strings,
// no trailing commas before closers. Catches the classic hand-rolled-JSON
// bugs without needing a JSON library in the test image.
void ExpectStructurallyValidJson(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  char prev_significant = '\0';
  for (char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
        prev_significant = '"';
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        ++depth;
        prev_significant = c;
        break;
      case '}':
      case ']':
        ASSERT_NE(prev_significant, ',') << "trailing comma before " << c;
        --depth;
        ASSERT_GE(depth, 0) << "unbalanced closer";
        prev_significant = c;
        break;
      default:
        if (c != ' ' && c != '\n' && c != '\t') prev_significant = c;
        break;
    }
  }
  EXPECT_FALSE(in_string) << "unterminated string";
  EXPECT_EQ(depth, 0) << "unbalanced braces/brackets";
}

TEST(TraceExportTest, ChromeTraceJsonIsStructurallyValid) {
  std::vector<SpanEvent> events = FullTrace(10, 1000);
  const std::vector<SpanEvent> second = FullTrace(20, 2000);
  events.insert(events.end(), second.begin(), second.end());

  const std::string json = ToChromeTraceJson(events);
  ExpectStructurallyValidJson(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Stage display names come from names.h, without the "span." prefix.
  EXPECT_NE(json.find(SpanStageDisplay(SpanStage::kBroker)), std::string::npos);
  EXPECT_NE(json.find("\"lsn\""), std::string::npos);
  // Both transactions exported.
  EXPECT_NE(json.find("10"), std::string::npos);
  EXPECT_NE(json.find("20"), std::string::npos);
}

TEST(TraceExportTest, EmptyDumpStillValidJson) {
  const std::string json = ToChromeTraceJson({});
  ExpectStructurallyValidJson(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(TraceExportTest, SummariesFoldCoverageAndDominantHop) {
  const std::vector<TraceSummary> summaries =
      BuildTraceSummaries(FullTrace(7, 500));
  ASSERT_EQ(summaries.size(), 1u);
  const TraceSummary& s = summaries[0];
  EXPECT_EQ(s.trace_id, 7u);
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(s.e2e_micros, 100);
  EXPECT_EQ(s.covered_micros, 100);  // Hops are contiguous -> full coverage.
  EXPECT_DOUBLE_EQ(s.coverage(), 1.0);
  EXPECT_EQ(s.dominant, SpanStage::kBroker);
}

TEST(TraceExportTest, IncompleteTraceReportsPartialCoverage) {
  // Only publish + e2e recorded: 10 of 100 µs attributed.
  const std::vector<SpanEvent> events = {
      MakeSpan(3, SpanStage::kPublish, 0, 10),
      MakeSpan(3, SpanStage::kE2e, 0, 100),
  };
  const std::vector<TraceSummary> summaries = BuildTraceSummaries(events);
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_FALSE(summaries[0].complete());
  EXPECT_EQ(summaries[0].e2e_micros, 100);
  EXPECT_EQ(summaries[0].covered_micros, 10);
  EXPECT_DOUBLE_EQ(summaries[0].coverage(), 0.1);
  EXPECT_EQ(summaries[0].dominant, SpanStage::kPublish);
}

TEST(TraceExportTest, SummariesOrderedByStartAndSplitByTrace) {
  std::vector<SpanEvent> events = FullTrace(2, 5000);  // Later transaction.
  const std::vector<SpanEvent> first = FullTrace(1, 1000);
  events.insert(events.end(), first.begin(), first.end());
  const std::vector<TraceSummary> summaries = BuildTraceSummaries(events);
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries[0].trace_id, 1u);
  EXPECT_EQ(summaries[1].trace_id, 2u);
}

TEST(TraceExportTest, CriticalPathReportNamesDominantHop) {
  std::vector<SpanEvent> events;
  for (uint64_t id = 1; id <= 5; ++id) {
    const std::vector<SpanEvent> t = FullTrace(id, static_cast<int64_t>(id) * 1000);
    events.insert(events.end(), t.begin(), t.end());
  }
  const std::string report =
      CriticalPathReport(BuildTraceSummaries(events), /*slowest=*/3);
  // Every transaction's critical path is the broker hop.
  EXPECT_NE(report.find(SpanStageDisplay(SpanStage::kBroker)),
            std::string::npos);
  EXPECT_NE(report.find("5"), std::string::npos);  // Trace count shows up.
}

TEST(TraceExportTest, TextTimelineCapsTraces) {
  std::vector<SpanEvent> events;
  for (uint64_t id = 1; id <= 10; ++id) {
    const std::vector<SpanEvent> t = FullTrace(id, static_cast<int64_t>(id) * 1000);
    events.insert(events.end(), t.begin(), t.end());
  }
  const std::string timeline = ToTextTimeline(events, /*max_traces=*/2);
  // Exactly two transactions rendered: count per-transaction header lines.
  size_t count = 0;
  const std::string needle = "\ntrace ";
  for (size_t pos = timeline.find(needle); pos != std::string::npos;
       pos = timeline.find(needle, pos + needle.size())) {
    ++count;
  }
  EXPECT_EQ(count, 2u);
  EXPECT_FALSE(ToTextTimeline({}).empty());  // Says "no traces", not crash.
}

TEST(TraceExportTest, TracerRetainsSlowestExemplars) {
  TracerOptions options;
  options.sample_every = 1;
  options.exemplars_per_stage = 2;
  Tracer tracer(options);
  for (uint64_t lsn = 1; lsn <= 6; ++lsn) {
    const TraceContext ctx = tracer.Mint(lsn);
    // Durations 10, 20, ..., 60 µs.
    tracer.RecordSpan(ctx, lsn, SpanStage::kApply, 0,
                      static_cast<int64_t>(lsn) * 10);
  }
  const std::vector<SpanEvent> exemplars = tracer.Exemplars(SpanStage::kApply);
  ASSERT_EQ(exemplars.size(), 2u);
  EXPECT_EQ(exemplars[0].duration_micros(), 60);  // Slowest first.
  EXPECT_EQ(exemplars[1].duration_micros(), 50);
  EXPECT_TRUE(tracer.Exemplars(SpanStage::kBroker).empty());
}

}  // namespace
}  // namespace txrep::trace
