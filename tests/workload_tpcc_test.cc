#include "workload/tpcc.h"

#include <map>
#include <string>

#include "gtest/gtest.h"
#include "rel/database.h"
#include "rel/statement.h"
#include "test_util.h"

namespace txrep::workload {
namespace {

using rel::PredicateOp;
using rel::Value;

rel::Predicate Eq(std::string column, Value v) {
  return rel::Predicate{std::move(column), PredicateOp::kEq, std::move(v), {}};
}

TEST(TpccTest, SchemaCreatesAllNineTables) {
  rel::Database db;
  TpccWorkload workload;
  TXREP_ASSERT_OK(workload.CreateSchema(db));
  EXPECT_EQ(db.catalog().size(), 9u);
  for (const char* table : {"WAREHOUSE", "DISTRICT", "CUSTOMER", "ITEM",
                            "STOCK", "ORDERS", "ORDER_LINE", "NEW_ORDER",
                            "HISTORY"}) {
    EXPECT_TRUE(db.catalog().HasTable(table)) << table;
  }
  // The churning S_QUANTITY range index is what feeds B-link maintenance.
  const rel::TableSchema& stock = **db.catalog().GetTable("STOCK");
  EXPECT_FALSE(stock.range_index_columns().empty());
}

TEST(TpccTest, PopulateMatchesScale) {
  rel::Database db;
  TpccOptions options;
  options.scale.warehouses = 3;
  options.scale.districts_per_warehouse = 4;
  options.scale.customers_per_district = 10;
  options.scale.items = 50;
  options.scale.initial_orders_per_district = 6;
  TpccWorkload workload(options);
  TXREP_ASSERT_OK(workload.CreateSchema(db));
  TXREP_ASSERT_OK(workload.Populate(db));

  const size_t districts = 3u * 4u;
  EXPECT_EQ(*db.TableSize("WAREHOUSE"), 3u);
  EXPECT_EQ(*db.TableSize("DISTRICT"), districts);
  EXPECT_EQ(*db.TableSize("CUSTOMER"), districts * 10u);
  EXPECT_EQ(*db.TableSize("ITEM"), 50u);
  EXPECT_EQ(*db.TableSize("STOCK"), 3u * 50u);
  EXPECT_EQ(*db.TableSize("ORDERS"), districts * 6u);
  EXPECT_GE(*db.TableSize("ORDER_LINE"), districts * 6u);
  EXPECT_EQ(*db.TableSize("HISTORY"), districts * 10u);
  // The undelivered tail: orders above 2/3 of the initial count per district.
  const size_t queued_per_district = 6u - (2u * 6u) / 3u;
  EXPECT_EQ(*db.TableSize("NEW_ORDER"), districts * queued_per_district);

  // Every district's next_o_id starts one past the initial orders, on both
  // sides of the generator's mirror.
  Result<std::vector<rel::Row>> rows = db.Query(rel::SelectStatement{
      "DISTRICT",
      {},
      {Eq("D_KEY", Value::Int(TpccWorkload::DistrictKey(2, 3)))}});
  TXREP_ASSERT_OK(rows.status());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][3].AsInt(), 7);
  EXPECT_EQ(workload.next_o_id(2, 3), 7);
}

std::string RenderStream(TpccWorkload& workload, int txns) {
  std::string out;
  for (int i = 0; i < txns; ++i) {
    TpccWorkload::TxnSpec spec = workload.NextTransaction();
    out += TpccTxnTypeName(spec.type);
    out += '|';
    for (const rel::Statement& stmt : spec.statements) {
      out += rel::StatementToString(stmt);
      out += ';';
    }
    if (!spec.is_write) {
      out += rel::StatementToString(rel::Statement{spec.read_query});
    }
    out += '\n';
  }
  return out;
}

TEST(TpccTest, SameSeedProducesByteIdenticalStatementStream) {
  TpccOptions options;
  options.seed = 99;
  options.scale.warehouses = 3;
  options.warehouse_zipf_theta = 0.8;
  TpccWorkload a(options);
  TpccWorkload b(options);
  EXPECT_EQ(RenderStream(a, 300), RenderStream(b, 300));
}

TEST(TpccTest, DifferentSeedsDiverge) {
  TpccOptions options;
  options.seed = 99;
  TpccWorkload a(options);
  options.seed = 100;
  TpccWorkload b(options);
  EXPECT_NE(RenderStream(a, 50), RenderStream(b, 50));
}

TEST(TpccTest, PopulationIsDeterministicPerSeed) {
  TpccOptions options;
  options.seed = 123;
  rel::Database db_a;
  rel::Database db_b;
  TpccWorkload a(options);
  TpccWorkload b(options);
  TXREP_ASSERT_OK(a.CreateSchema(db_a));
  TXREP_ASSERT_OK(a.Populate(db_a));
  TXREP_ASSERT_OK(b.CreateSchema(db_b));
  TXREP_ASSERT_OK(b.Populate(db_b));
  const std::vector<rel::LogTransaction> log_a = db_a.log().ReadSince(0);
  const std::vector<rel::LogTransaction> log_b = db_b.log().ReadSince(0);
  ASSERT_EQ(log_a.size(), log_b.size());
  for (size_t i = 0; i < log_a.size(); ++i) {
    ASSERT_EQ(log_a[i].ops.size(), log_b[i].ops.size()) << "lsn " << i;
    for (size_t op = 0; op < log_a[i].ops.size(); ++op) {
      EXPECT_TRUE(log_a[i].ops[op] == log_b[i].ops[op])
          << "lsn " << i << " op " << op << ": "
          << log_a[i].ops[op].DebugString() << " vs "
          << log_b[i].ops[op].DebugString();
    }
  }
}

TEST(TpccTest, MixRatiosWithinTolerance) {
  TpccOptions options;
  options.seed = 7;
  TpccWorkload workload(options);
  std::map<TpccTxnType, int> counts;
  const int kTxns = 4000;
  for (int i = 0; i < kTxns; ++i) {
    ++counts[workload.NextTransaction().type];
  }
  // Configured deck: 45/43/6/6. Allow +-3 percentage points at n=4000.
  auto fraction = [&](TpccTxnType t) {
    return static_cast<double>(counts[t]) / kTxns;
  };
  EXPECT_NEAR(fraction(TpccTxnType::kNewOrder), 0.45, 0.03);
  EXPECT_NEAR(fraction(TpccTxnType::kPayment), 0.43, 0.03);
  EXPECT_NEAR(fraction(TpccTxnType::kOrderStatus), 0.06, 0.02);
  EXPECT_NEAR(fraction(TpccTxnType::kStockLevel), 0.06, 0.02);
  EXPECT_NEAR(workload.WriteFraction(), 0.88, 1e-9);
}

TEST(TpccTest, ContendedCounterAdvancesOncePerNewOrder) {
  TpccOptions options;
  options.seed = 21;
  options.scale.warehouses = 1;
  options.scale.districts_per_warehouse = 1;
  options.scale.initial_orders_per_district = 4;
  TpccWorkload workload(options);
  EXPECT_EQ(workload.next_o_id(1, 1), 5);
  int new_orders = 0;
  for (int i = 0; i < 100; ++i) {
    if (workload.NextWriteTransaction().type == TpccTxnType::kNewOrder) {
      ++new_orders;
    }
  }
  ASSERT_GT(new_orders, 0);
  EXPECT_EQ(workload.next_o_id(1, 1), 5 + new_orders);
}

TEST(TpccTest, GeneratorMirrorsDatabaseState) {
  // After executing the generated stream, the DB's district counters and
  // warehouse/customer balances must equal the generator's tracked mirrors —
  // the property that makes after-image replication deterministic.
  rel::Database db;
  TpccOptions options;
  options.seed = 31;
  options.scale.warehouses = 2;
  TpccWorkload workload(options);
  TXREP_ASSERT_OK(workload.CreateSchema(db));
  TXREP_ASSERT_OK(workload.Populate(db));
  TXREP_ASSERT_OK(workload.RunWrites(db, 200));

  for (int64_t w = 1; w <= options.scale.warehouses; ++w) {
    for (int64_t d = 1; d <= options.scale.districts_per_warehouse; ++d) {
      Result<std::vector<rel::Row>> rows = db.Query(rel::SelectStatement{
          "DISTRICT",
          {},
          {Eq("D_KEY", Value::Int(TpccWorkload::DistrictKey(w, d)))}});
      TXREP_ASSERT_OK(rows.status());
      ASSERT_EQ(rows->size(), 1u);
      EXPECT_EQ((*rows)[0][3].AsInt(), workload.next_o_id(w, d))
          << "district " << w << "/" << d;
    }
  }
}

TEST(TpccTest, ZipfSkewConcentratesOnWarehouseOne) {
  TpccOptions options;
  options.seed = 41;
  options.scale.warehouses = 8;
  options.warehouse_zipf_theta = 0.9;
  TpccWorkload workload(options);
  rel::Database db;
  TXREP_ASSERT_OK(workload.CreateSchema(db));
  TXREP_ASSERT_OK(workload.Populate(db));
  // Count NewOrder ORDERS inserts per warehouse via the district counters.
  TXREP_ASSERT_OK(workload.RunWrites(db, 400));
  int64_t hot = 0;
  int64_t total = 0;
  for (int64_t w = 1; w <= options.scale.warehouses; ++w) {
    for (int64_t d = 1; d <= options.scale.districts_per_warehouse; ++d) {
      const int64_t orders = workload.next_o_id(w, d) -
                             (options.scale.initial_orders_per_district + 1);
      total += orders;
      if (w == 1) hot += orders;
    }
  }
  ASSERT_GT(total, 0);
  // Uniform would give 1/8 = 12.5%; Zipf(0.9) concentrates far more.
  EXPECT_GT(static_cast<double>(hot) / static_cast<double>(total), 0.3);
}

TEST(TpccTest, KeyPackingIsInjective) {
  EXPECT_NE(TpccWorkload::CustomerKey(1, 2, 3), TpccWorkload::CustomerKey(1, 3, 2));
  EXPECT_NE(TpccWorkload::OrderKey(1, 1, 100), TpccWorkload::OrderKey(1, 2, 100));
  EXPECT_NE(TpccWorkload::OrderLineKey(1, 1, 1, 2),
            TpccWorkload::OrderLineKey(1, 1, 2, 1));
  EXPECT_NE(TpccWorkload::StockKey(2, 1), TpccWorkload::StockKey(1, 2));
  EXPECT_STREQ(TpccTxnTypeName(TpccTxnType::kNewOrder), "NewOrder");
}

}  // namespace
}  // namespace txrep::workload
