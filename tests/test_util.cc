#include "test_util.h"

#include <map>

#include "core/serial_applier.h"
#include "qt/consistency_checker.h"

namespace txrep::testing {

Status ReplaySerial(rel::Database& db, const qt::QueryTranslator& translator,
                    kv::KvStore* store) {
  TXREP_RETURN_IF_ERROR(translator.InitializeIndexes(store));
  core::SerialApplier applier(store, &translator);
  return applier.ApplyBatch(db.log().ReadSince(0));
}

Status ReplayConcurrent(rel::Database& db,
                        const qt::QueryTranslator& translator,
                        kv::KvStore* store, core::TmOptions options,
                        core::TmStats* stats_out) {
  TXREP_RETURN_IF_ERROR(translator.InitializeIndexes(store));
  core::TransactionManager tm(store, &translator, options);
  for (rel::LogTransaction& txn : db.log().ReadSince(0)) {
    tm.SubmitUpdate(std::move(txn));
  }
  Status status = tm.WaitIdle();
  if (stats_out != nullptr) *stats_out = tm.stats();
  return status;
}

void ExpectDumpsEqual(kv::KvStore& a, kv::KvStore& b) {
  kv::StoreDump da = a.Dump();
  kv::StoreDump db_dump = b.Dump();
  if (da.size() != db_dump.size()) {
    std::map<std::string, int> tally;
    for (const auto& [key, value] : da) ++tally[key];
    for (const auto& [key, value] : db_dump) --tally[key];
    std::string diff;
    for (const auto& [key, count] : tally) {
      if (count != 0) {
        diff += "\n  " + std::string(count > 0 ? "only in a: " : "only in b: ") +
                key;
      }
    }
    FAIL() << "stores hold different numbers of keys (" << da.size() << " vs "
           << db_dump.size() << ")" << diff;
  }
  for (size_t i = 0; i < da.size(); ++i) {
    ASSERT_EQ(da[i].first, db_dump[i].first) << "key mismatch at index " << i;
    ASSERT_EQ(da[i].second, db_dump[i].second)
        << "value mismatch for key \"" << da[i].first << "\"";
  }
}

void VerifyReplicaMatchesDatabase(kv::KvStore& store, rel::Database& db,
                                  const qt::QueryTranslator& translator) {
  Result<qt::ConsistencyReport> report =
      qt::CheckReplicaConsistency(store, db, translator);
  TXREP_ASSERT_OK(report.status());
  std::string details;
  for (const std::string& violation : report->violations) {
    details += "\n  " + violation;
  }
  ASSERT_TRUE(report->consistent())
      << report->Summary() << details;
}

}  // namespace txrep::testing
