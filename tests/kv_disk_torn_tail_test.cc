// Torn-tail recovery drill for DiskKvNode under sync_every_write = false:
// simulate a crash truncating the log at EVERY byte offset inside the final
// record. Reopening must always succeed, recover exactly the fully-written
// record prefix, drop the torn tail, and leave the node appendable.

#include <cstdio>
#include <fstream>
#include <string>

#include "gtest/gtest.h"
#include "kv/disk_node.h"
#include "test_util.h"

namespace txrep::kv {
namespace {

class DiskTornTailTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "txrep_torn_tail_" +
            std::to_string(reinterpret_cast<uintptr_t>(this));
    path_ = base_ + ".log";
    crash_path_ = base_ + ".crash.log";
    std::remove(path_.c_str());
    std::remove(crash_path_.c_str());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove(crash_path_.c_str());
  }

  std::string ReadLog() {
    std::ifstream in(path_, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  void WriteCrashCopy(const std::string& contents, size_t length) {
    std::ofstream out(crash_path_, std::ios::binary | std::ios::trunc);
    out.write(contents.data(), static_cast<std::streamsize>(length));
    ASSERT_TRUE(out.good());
  }

  std::string base_, path_, crash_path_;
};

TEST_F(DiskTornTailTest, EveryTruncationOffsetOfFinalRecordRecovers) {
  DiskKvNodeOptions options;
  options.sync_every_write = false;  // The mode where torn tails happen.

  // N-1 durable records, then capture the log length, then one final record
  // whose bytes we will tear.
  constexpr int kRecords = 12;
  size_t prefix_bytes = 0;
  {
    auto node = DiskKvNode::Open(path_, options);
    ASSERT_TRUE(node.ok()) << node.status().ToString();
    for (int i = 0; i < kRecords - 1; ++i) {
      TXREP_ASSERT_OK((*node)->Put("key" + std::to_string(i),
                                   "value-" + std::to_string(i * i)));
    }
    TXREP_ASSERT_OK((*node)->Sync());
    prefix_bytes = ReadLog().size();
    TXREP_ASSERT_OK(
        (*node)->Put("key" + std::to_string(kRecords - 1), "final-value"));
    TXREP_ASSERT_OK((*node)->Sync());
  }
  const std::string full_log = ReadLog();
  ASSERT_GT(full_log.size(), prefix_bytes);

  // Crash at every byte offset inside the final record: [prefix, full).
  for (size_t cut = prefix_bytes; cut < full_log.size(); ++cut) {
    SCOPED_TRACE("log truncated to " + std::to_string(cut) + " of " +
                 std::to_string(full_log.size()) + " bytes");
    WriteCrashCopy(full_log, cut);

    auto node = DiskKvNode::Open(crash_path_, options);
    ASSERT_TRUE(node.ok()) << node.status().ToString();
    // Exactly the durable prefix survives; the torn final record is gone.
    EXPECT_EQ((*node)->Size(), static_cast<size_t>(kRecords - 1));
    EXPECT_EQ((*node)->replayed_records(), static_cast<size_t>(kRecords - 1));
    EXPECT_EQ((*node)->recovered_truncated_bytes(), cut - prefix_bytes);
    EXPECT_FALSE((*node)->Contains("key" + std::to_string(kRecords - 1)));
    for (int i = 0; i < kRecords - 1; ++i) {
      Result<Value> value = (*node)->Get("key" + std::to_string(i));
      ASSERT_TRUE(value.ok()) << value.status().ToString();
      EXPECT_EQ(*value, "value-" + std::to_string(i * i));
    }

    // The recovered node stays fully usable: the torn bytes were truncated
    // away, so a new append lands on a clean record boundary.
    TXREP_ASSERT_OK((*node)->Put("post-crash", "appended"));
    TXREP_ASSERT_OK((*node)->Sync());
  }

  // The post-crash append above must itself survive a clean reopen.
  auto node = DiskKvNode::Open(crash_path_, options);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(*(*node)->Get("post-crash"), "appended");
  EXPECT_EQ((*node)->Size(), static_cast<size_t>(kRecords));
}

TEST_F(DiskTornTailTest, TornDeleteRecordAlsoRecovers) {
  DiskKvNodeOptions options;
  options.sync_every_write = false;

  size_t prefix_bytes = 0;
  {
    auto node = DiskKvNode::Open(path_, options);
    ASSERT_TRUE(node.ok());
    TXREP_ASSERT_OK((*node)->Put("a", "1"));
    TXREP_ASSERT_OK((*node)->Put("b", "2"));
    TXREP_ASSERT_OK((*node)->Sync());
    prefix_bytes = ReadLog().size();
    TXREP_ASSERT_OK((*node)->Delete("a"));
    TXREP_ASSERT_OK((*node)->Sync());
  }
  const std::string full_log = ReadLog();

  for (size_t cut = prefix_bytes; cut < full_log.size(); ++cut) {
    SCOPED_TRACE("log truncated to " + std::to_string(cut) + " bytes");
    WriteCrashCopy(full_log, cut);
    auto node = DiskKvNode::Open(crash_path_, options);
    ASSERT_TRUE(node.ok()) << node.status().ToString();
    // The torn tombstone never applied: "a" is still visible.
    EXPECT_EQ(*(*node)->Get("a"), "1");
    EXPECT_EQ(*(*node)->Get("b"), "2");
  }

  // The complete log (no tear) applies the tombstone.
  WriteCrashCopy(full_log, full_log.size());
  auto node = DiskKvNode::Open(crash_path_, options);
  ASSERT_TRUE(node.ok());
  EXPECT_TRUE((*node)->Get("a").status().IsNotFound());
  EXPECT_EQ((*node)->Size(), 1u);
}

}  // namespace
}  // namespace txrep::kv
