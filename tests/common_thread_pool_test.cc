#include "common/thread_pool.h"

#include <atomic>
#include <chrono>

#include "gtest/gtest.h"

namespace txrep {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4, "test");
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&] { counter++; }));
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0, "test");
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, WaitCoversTasksSubmittedByTasks) {
  ThreadPool pool(2, "test");
  std::atomic<int> counter{0};
  pool.Submit([&] {
    counter++;
    pool.Submit([&] {
      counter++;
      pool.Submit([&] { counter++; });
    });
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, ShutdownDrainsPendingTasks) {
  ThreadPool pool(1, "test");
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      counter++;
    });
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(1, "test");
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, ParallelismOverlapsSleeps) {
  // With 8 workers, 8 sleeping tasks of 30ms should finish far faster than
  // the serial 240ms (they only hold a sleeping thread, not the CPU).
  ThreadPool pool(8, "test");
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 8; ++i) {
    pool.Submit(
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(30)); });
  }
  pool.Wait();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_LT(elapsed, 160);
}

TEST(ThreadPoolTest, UrgentTasksJumpTheQueue) {
  ThreadPool pool(1, "test");
  std::mutex mu;
  std::vector<int> order;
  std::atomic<bool> release{false};
  // Occupy the single worker so subsequent submissions queue up.
  pool.Submit([&] {
    while (!release) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  for (int i = 0; i < 3; ++i) {
    pool.Submit([&, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    });
  }
  pool.SubmitUrgent([&] {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(99);
  });
  release = true;
  pool.Wait();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 99);  // Urgent ran before the earlier-queued tasks.
  EXPECT_EQ(order[1], 0);
  EXPECT_EQ(order[2], 1);
  EXPECT_EQ(order[3], 2);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2, "test");
  pool.Wait();  // Must not hang.
  SUCCEED();
}

TEST(ThreadPoolTest, DoubleShutdownIsSafe) {
  ThreadPool pool(2, "test");
  pool.Submit([] {});
  pool.Shutdown();
  pool.Shutdown();
  SUCCEED();
}

TEST(ThreadPoolTest, ShutdownWithIdleWorkersDoesNotHang) {
  // Workers blocked in Pop() on an empty queue must be woken by shutdown's
  // queue close — the classic wakeup-after-close hang.
  ThreadPool pool(4, "test");
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  pool.Shutdown();  // Must return; a hang here fails via test timeout.
  SUCCEED();
}

TEST(ThreadPoolTest, ShutdownDrainsDeepQueueAcrossWorkers) {
  ThreadPool pool(3, "test");
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(pool.Submit([&] { counter++; }));
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 200);
  EXPECT_EQ(pool.QueueDepth(), 0u);
}

TEST(ThreadPoolTest, DestructionDrainsQueuedWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2, "test");
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        counter++;
      });
    }
  }  // ~ThreadPool: drain-then-stop.
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, SubmitUrgentAfterShutdownFails) {
  ThreadPool pool(1, "test");
  pool.Shutdown();
  EXPECT_FALSE(pool.SubmitUrgent([] {}));
}

TEST(ThreadPoolTest, WaitAfterShutdownReturnsImmediately) {
  ThreadPool pool(2, "test");
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) pool.Submit([&] { counter++; });
  pool.Shutdown();
  pool.Wait();  // All work is done; must not block.
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace txrep
