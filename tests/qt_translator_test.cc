#include "qt/query_translator.h"

#include "blink/blink_tree.h"
#include "codec/kv_keys.h"
#include "codec/row_codec.h"
#include "gtest/gtest.h"
#include "kv/inmemory_node.h"
#include "test_util.h"

namespace txrep::qt {
namespace {

using rel::Value;

class QueryTranslatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<rel::TableSchema> item =
        rel::TableSchema::Create("ITEM",
                                 {{"I_ID", rel::ValueType::kInt64},
                                  {"I_TITLE", rel::ValueType::kString},
                                  {"I_COST", rel::ValueType::kDouble}},
                                 "I_ID");
    ASSERT_TRUE(item.ok());
    TXREP_ASSERT_OK(item->AddHashIndex("I_COST"));
    TXREP_ASSERT_OK(item->AddRangeIndex("I_COST"));
    TXREP_ASSERT_OK(catalog_.AddTable(*item));
    translator_ =
        std::make_unique<QueryTranslator>(&catalog_, blink::BlinkTreeOptions{});
    TXREP_ASSERT_OK(translator_->InitializeIndexes(&store_));
  }

  rel::LogOp Insert(int64_t id, const std::string& title, double cost) {
    return rel::LogOp{rel::LogOpType::kInsert, "ITEM", Value::Int(id),
                      {Value::Int(id), Value::Str(title), Value::Real(cost)}};
  }
  rel::LogOp Update(int64_t id, const std::string& title, double cost) {
    return rel::LogOp{rel::LogOpType::kUpdate, "ITEM", Value::Int(id),
                      {Value::Int(id), Value::Str(title), Value::Real(cost)}};
  }
  rel::LogOp Delete(int64_t id) {
    return rel::LogOp{rel::LogOpType::kDelete, "ITEM", Value::Int(id), {}};
  }

  std::vector<std::string> Postings(double cost) {
    Result<kv::Value> bytes =
        store_.Get(codec::HashIndexKey("ITEM", "I_COST", Value::Real(cost)));
    if (!bytes.ok()) return {};
    return *codec::DecodePostings(*bytes);
  }

  rel::Catalog catalog_;
  kv::InMemoryKvNode store_;
  std::unique_ptr<QueryTranslator> translator_;
};

TEST_F(QueryTranslatorTest, InsertWritesRowObject) {
  TXREP_ASSERT_OK(translator_->ApplyLogOp(&store_, Insert(1, "a", 10.0)));
  Result<kv::Value> bytes = store_.Get("ITEM_1");
  ASSERT_TRUE(bytes.ok());
  Result<rel::Row> row = codec::DecodeRow(*bytes);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].AsString(), "a");
}

TEST_F(QueryTranslatorTest, InsertMaintainsHashIndex) {
  TXREP_ASSERT_OK(translator_->ApplyLogOp(&store_, Insert(1, "a", 10.0)));
  TXREP_ASSERT_OK(translator_->ApplyLogOp(&store_, Insert(7, "b", 10.0)));
  EXPECT_EQ(Postings(10.0), (std::vector<std::string>{"ITEM_1", "ITEM_7"}));
}

TEST_F(QueryTranslatorTest, InsertMaintainsRangeIndex) {
  TXREP_ASSERT_OK(translator_->ApplyLogOp(&store_, Insert(1, "a", 10.0)));
  TXREP_ASSERT_OK(translator_->ApplyLogOp(&store_, Insert(2, "b", 20.0)));
  blink::BlinkTree tree(&store_, "ITEM", "I_COST", {});
  Result<std::vector<blink::EntryKey>> entries =
      tree.RangeScan(Value::Real(5.0), Value::Real(15.0));
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].row_key, "ITEM_1");
}

TEST_F(QueryTranslatorTest, UpdateMovesIndexEntries) {
  TXREP_ASSERT_OK(translator_->ApplyLogOp(&store_, Insert(1, "a", 10.0)));
  TXREP_ASSERT_OK(translator_->ApplyLogOp(&store_, Update(1, "a", 99.0)));
  EXPECT_TRUE(Postings(10.0).empty());
  EXPECT_EQ(Postings(99.0), (std::vector<std::string>{"ITEM_1"}));
  blink::BlinkTree tree(&store_, "ITEM", "I_COST", {});
  EXPECT_FALSE(*tree.Contains(Value::Real(10.0), "ITEM_1"));
  EXPECT_TRUE(*tree.Contains(Value::Real(99.0), "ITEM_1"));
}

TEST_F(QueryTranslatorTest, UpdateWithoutIndexChangeLeavesIndexesAlone) {
  TXREP_ASSERT_OK(translator_->ApplyLogOp(&store_, Insert(1, "a", 10.0)));
  TXREP_ASSERT_OK(translator_->ApplyLogOp(&store_, Update(1, "new", 10.0)));
  EXPECT_EQ(Postings(10.0), (std::vector<std::string>{"ITEM_1"}));
  Result<rel::Row> row = codec::DecodeRow(*store_.Get("ITEM_1"));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].AsString(), "new");
}

TEST_F(QueryTranslatorTest, DeleteRemovesEverything) {
  TXREP_ASSERT_OK(translator_->ApplyLogOp(&store_, Insert(1, "a", 10.0)));
  TXREP_ASSERT_OK(translator_->ApplyLogOp(&store_, Delete(1)));
  EXPECT_TRUE(store_.Get("ITEM_1").status().IsNotFound());
  EXPECT_TRUE(Postings(10.0).empty());  // Posting object deleted entirely.
  EXPECT_FALSE(store_.Contains(
      codec::HashIndexKey("ITEM", "I_COST", Value::Real(10.0))));
  blink::BlinkTree tree(&store_, "ITEM", "I_COST", {});
  EXPECT_EQ(*tree.EntryCount(), 0u);
}

TEST_F(QueryTranslatorTest, SharedPostingShrinksOnDelete) {
  TXREP_ASSERT_OK(translator_->ApplyLogOp(&store_, Insert(1, "a", 10.0)));
  TXREP_ASSERT_OK(translator_->ApplyLogOp(&store_, Insert(2, "b", 10.0)));
  TXREP_ASSERT_OK(translator_->ApplyLogOp(&store_, Delete(1)));
  EXPECT_EQ(Postings(10.0), (std::vector<std::string>{"ITEM_2"}));
}

TEST_F(QueryTranslatorTest, UpdateOfMissingRowFails) {
  Status s = translator_->ApplyLogOp(&store_, Update(42, "x", 1.0));
  EXPECT_TRUE(s.IsNotFound());
}

TEST_F(QueryTranslatorTest, DeleteOfMissingRowFails) {
  EXPECT_TRUE(translator_->ApplyLogOp(&store_, Delete(42)).IsNotFound());
}

TEST_F(QueryTranslatorTest, NullIndexedValuesSkipped) {
  rel::LogOp op{rel::LogOpType::kInsert, "ITEM", Value::Int(5),
                {Value::Int(5), Value::Str("n"), Value::Null()}};
  TXREP_ASSERT_OK(translator_->ApplyLogOp(&store_, op));
  blink::BlinkTree tree(&store_, "ITEM", "I_COST", {});
  EXPECT_EQ(*tree.EntryCount(), 0u);
}

TEST_F(QueryTranslatorTest, UnknownTableErrors) {
  rel::LogOp op{rel::LogOpType::kInsert, "NOPE", Value::Int(1),
                {Value::Int(1)}};
  EXPECT_TRUE(translator_->ApplyLogOp(&store_, op).IsNotFound());
}

TEST_F(QueryTranslatorTest, ApplyTransactionAppliesAllOps) {
  rel::LogTransaction txn;
  txn.lsn = 1;
  txn.ops = {Insert(1, "a", 1.0), Insert(2, "b", 2.0), Update(1, "a", 3.0)};
  TXREP_ASSERT_OK(translator_->ApplyTransaction(&store_, txn));
  EXPECT_TRUE(store_.Contains("ITEM_1"));
  EXPECT_TRUE(store_.Contains("ITEM_2"));
  EXPECT_EQ(Postings(3.0), (std::vector<std::string>{"ITEM_1"}));
}

TEST_F(QueryTranslatorTest, LoadSnapshotMatchesDatabase) {
  rel::Database db;
  Result<rel::TableSchema> item =
      rel::TableSchema::Create("ITEM",
                               {{"I_ID", rel::ValueType::kInt64},
                                {"I_TITLE", rel::ValueType::kString},
                                {"I_COST", rel::ValueType::kDouble}},
                               "I_ID");
  ASSERT_TRUE(item.ok());
  TXREP_ASSERT_OK(db.CreateTable(*item));
  TXREP_ASSERT_OK(db.CreateHashIndex("ITEM", "I_COST"));
  TXREP_ASSERT_OK(db.CreateRangeIndex("ITEM", "I_COST"));
  for (int i = 1; i <= 20; ++i) {
    TXREP_ASSERT_OK(
        db.ExecuteTransaction(
              {rel::InsertStatement{"ITEM",
                                    {},
                                    {Value::Int(i), Value::Str("t"),
                                     Value::Real(i * 1.5)}}})
            .status());
  }
  QueryTranslator translator(&db.catalog(), {});
  kv::InMemoryKvNode snapshot_store;
  TXREP_ASSERT_OK(translator.LoadSnapshot(&snapshot_store, db));
  testing::VerifyReplicaMatchesDatabase(snapshot_store, db, translator);
}

}  // namespace
}  // namespace txrep::qt
