#include "sql/interpreter.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace txrep::sql {
namespace {

TEST(InterpreterTest, EndToEndScript) {
  rel::Database db;
  Result<ScriptResult> result = ExecuteSql(db, R"sql(
    CREATE TABLE ITEM (I_ID INT PRIMARY KEY, I_TITLE VARCHAR(40),
                       I_COST DOUBLE);
    CREATE INDEX ON ITEM (I_TITLE);
    CREATE RANGE INDEX ON ITEM (I_COST);
    INSERT INTO ITEM VALUES (1, 'Item1', 100.0);
    INSERT INTO ITEM VALUES (2, 'Item2', 50.0);
    UPDATE ITEM SET I_COST = 75.0 WHERE I_ID = 2;
    SELECT I_TITLE FROM ITEM WHERE I_COST > 60.0;
  )sql");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->select_results.size(), 1u);
  ASSERT_EQ(result->select_results[0].size(), 2u);
  EXPECT_GT(result->last_lsn, 0u);
  // Each DML ran as its own transaction: 3 write transactions logged.
  EXPECT_EQ(db.log().size(), 3u);
}

TEST(InterpreterTest, DeleteWorks) {
  rel::Database db;
  TXREP_ASSERT_OK(ExecuteSql(db, R"sql(
    CREATE TABLE T (A INT PRIMARY KEY, B INT);
    INSERT INTO T VALUES (1, 10);
    INSERT INTO T VALUES (2, 20);
    DELETE FROM T WHERE B >= 15;
  )sql").status());
  EXPECT_EQ(*db.TableSize("T"), 1u);
}

TEST(InterpreterTest, StopsAtFirstError) {
  rel::Database db;
  Result<ScriptResult> result = ExecuteSql(db, R"sql(
    CREATE TABLE T (A INT PRIMARY KEY);
    INSERT INTO T VALUES (1);
    INSERT INTO T VALUES (1);
    INSERT INTO T VALUES (2);
  )sql");
  EXPECT_TRUE(result.status().IsAlreadyExists());
  EXPECT_EQ(*db.TableSize("T"), 1u);  // Third insert never ran.
}

TEST(InterpreterTest, SqlTransactionIsAtomic) {
  rel::Database db;
  TXREP_ASSERT_OK(
      ExecuteSql(db, "CREATE TABLE T (A INT PRIMARY KEY)").status());
  Result<rel::CommitInfo> info = ExecuteSqlTransaction(
      db, {"INSERT INTO T VALUES (1)", "INSERT INTO T VALUES (2)"});
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(db.log().size(), 1u);  // One commit for both inserts.

  // A failing statement rolls back the whole transaction.
  Result<rel::CommitInfo> bad = ExecuteSqlTransaction(
      db, {"INSERT INTO T VALUES (3)", "INSERT INTO T VALUES (1)"});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(*db.TableSize("T"), 2u);
}

TEST(InterpreterTest, BeginCommitBlockIsOneTransaction) {
  rel::Database db;
  TXREP_ASSERT_OK(ExecuteSql(db, R"sql(
    CREATE TABLE T (A INT PRIMARY KEY, B INT);
    BEGIN;
    INSERT INTO T VALUES (1, 10);
    INSERT INTO T VALUES (2, 20);
    UPDATE T SET B = 11 WHERE A = 1;
    COMMIT;
  )sql").status());
  EXPECT_EQ(db.log().size(), 1u);  // One atomic commit.
  EXPECT_EQ(db.log().ReadSince(0)[0].ops.size(), 3u);
}

TEST(InterpreterTest, BeginBlockRollsBackAtomicallyOnError) {
  rel::Database db;
  Result<ScriptResult> result = ExecuteSql(db, R"sql(
    CREATE TABLE T (A INT PRIMARY KEY);
    INSERT INTO T VALUES (1);
    BEGIN;
    INSERT INTO T VALUES (2);
    INSERT INTO T VALUES (1);
    COMMIT;
  )sql");
  EXPECT_TRUE(result.status().IsAlreadyExists());
  EXPECT_EQ(*db.TableSize("T"), 1u);  // Block fully rolled back.
}

TEST(InterpreterTest, RollbackDiscardsBlock) {
  rel::Database db;
  TXREP_ASSERT_OK(ExecuteSql(db, R"sql(
    CREATE TABLE T (A INT PRIMARY KEY);
    BEGIN TRANSACTION;
    INSERT INTO T VALUES (1);
    ROLLBACK;
    INSERT INTO T VALUES (2);
  )sql").status());
  EXPECT_EQ(*db.TableSize("T"), 1u);  // Only the post-rollback insert.
  Result<std::vector<rel::Row>> rows = db.Query(
      rel::SelectStatement{"T", {}, {}});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0][0], rel::Value::Int(2));
}

TEST(InterpreterTest, BlockMisuseIsRejected) {
  rel::Database db;
  TXREP_ASSERT_OK(
      ExecuteSql(db, "CREATE TABLE T (A INT PRIMARY KEY)").status());
  EXPECT_TRUE(ExecuteSql(db, "COMMIT").status().IsInvalidArgument());
  EXPECT_TRUE(ExecuteSql(db, "ROLLBACK").status().IsInvalidArgument());
  EXPECT_TRUE(ExecuteSql(db, "BEGIN; BEGIN; COMMIT; COMMIT")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ExecuteSql(db, "BEGIN; INSERT INTO T VALUES (1)")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      ExecuteSql(db, "BEGIN; CREATE TABLE U (A INT PRIMARY KEY); COMMIT")
          .status()
          .IsInvalidArgument());
}

TEST(InterpreterTest, ParseErrorSurfaces) {
  rel::Database db;
  EXPECT_TRUE(ExecuteSql(db, "FROBNICATE").status().IsInvalidArgument());
}

TEST(InterpreterTest, TypeErrorsSurface) {
  rel::Database db;
  Result<ScriptResult> result = ExecuteSql(db, R"sql(
    CREATE TABLE T (A INT PRIMARY KEY, B VARCHAR(10));
    INSERT INTO T VALUES (1, 2);
  )sql");
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

}  // namespace
}  // namespace txrep::sql
