// Online replica bootstrap: attach a brand-new replica to a live deployment
// while writes keep flowing, install the latest checkpoint (or replay from
// scratch), catch up via the log tail, and admit reads only once the
// catch-up gate opens. Convergence bar: the bootstrapped replica must
// byte-equal the primary replica after both drain.

#include "txrep/bootstrap.h"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "gtest/gtest.h"
#include "kv/inmemory_node.h"
#include "obs/names.h"
#include "recov/io.h"
#include "sql/interpreter.h"
#include "test_util.h"

namespace txrep {
namespace {

constexpr const char* kSchemaSql = R"sql(
  CREATE TABLE EVT (E_ID INT PRIMARY KEY, E_KIND VARCHAR(8), E_SCORE DOUBLE);
  CREATE INDEX ON EVT (E_KIND);
  CREATE RANGE INDEX ON EVT (E_SCORE);
)sql";

void CommitEvent(rel::Database& db, int i) {
  std::vector<rel::Statement> statements;
  statements.push_back(rel::InsertStatement{
      "EVT",
      {},
      {rel::Value::Int(i), rel::Value::Str("k" + std::to_string(i % 5)),
       rel::Value::Real(i * 0.25)}});
  if (i % 4 == 0 && i > 0) {
    statements.push_back(rel::UpdateStatement{
        "EVT",
        {{"E_SCORE", rel::Value::Real(i * 2.0)}},
        {rel::Predicate{"E_ID", rel::PredicateOp::kEq, rel::Value::Int(i - 1),
                        {}}}});
  }
  TXREP_ASSERT_OK(db.ExecuteTransaction(statements).status());
}

/// Polls until the bootstrapped replica applied everything the primary's
/// log holds (true), or `timeout_micros` elapsed (false).
bool WaitForReplicaLsn(BootstrappedReplica& replica, TxRepSystem& sys,
                       int64_t timeout_micros) {
  const int64_t deadline = NowMicros() + timeout_micros;
  while (NowMicros() < deadline) {
    if (replica.replica_lsn() >= sys.database().log().LastLsn()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return replica.replica_lsn() >= sys.database().log().LastLsn();
}

class RecovBootstrapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "txrep_recov_boot_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    TXREP_ASSERT_OK(recov::RemoveDirRecursive(dir_));
  }
  void TearDown() override { TXREP_ASSERT_OK(recov::RemoveDirRecursive(dir_)); }

  std::string dir_;
};

TEST_F(RecovBootstrapTest, AttachWhileWritesFlowAndConverge) {
  TxRepOptions options;
  options.cluster.num_nodes = 3;
  TxRepSystem sys(options);
  TXREP_ASSERT_OK(sql::ExecuteSql(sys.database(), kSchemaSql).status());
  for (int i = 0; i < 200; ++i) CommitEvent(sys.database(), i);
  TXREP_ASSERT_OK(sys.Start());

  // A writer commits 1200 more transactions concurrently with the whole
  // bootstrap handoff (tail replay chases a moving log end).
  std::thread writer([&] {
    for (int i = 200; i < 1400; ++i) CommitEvent(sys.database(), i);
  });

  BootstrapOptions boot;
  boot.cluster.num_nodes = 2;  // A different shape than the primary replica.
  boot.cluster.node.service_time_micros = 50;  // Slow node: real catch-up lag.
  boot.max_admission_lag = 0;
  Result<std::unique_ptr<BootstrappedReplica>> attached =
      BootstrappedReplica::Attach(&sys, boot);
  ASSERT_TRUE(attached.ok()) << attached.status().ToString();
  BootstrappedReplica& replica = **attached;
  EXPECT_FALSE(replica.installed_checkpoint());

  // While the gate is closed, reads must be refused. (Whether we observe
  // the closed window depends on timing — the gate may open between the
  // caught_up() probe and the Query — but a non-OK answer here can only
  // legally be the gate's FailedPrecondition. The gate semantics themselves
  // are covered deterministically in recov_checkpoint_test.)
  if (!replica.caught_up()) {
    Result<std::vector<rel::Row>> early = replica.Query(rel::SelectStatement{
        "EVT",
        {},
        {rel::Predicate{"E_ID", rel::PredicateOp::kEq, rel::Value::Int(1),
                        {}}}});
    if (!early.ok()) {
      EXPECT_TRUE(early.status().IsFailedPrecondition())
          << early.status().ToString();
    }
  }

  writer.join();
  ASSERT_GE(sys.database().log().LastLsn(), 1400u);

  EXPECT_TRUE(replica.WaitUntilCaughtUp(30'000'000));
  ASSERT_TRUE(WaitForReplicaLsn(replica, sys, 30'000'000));
  TXREP_ASSERT_OK(sys.SyncToLatest());

  // Convergence bar: the bootstrapped replica byte-equals a serial replay
  // of the complete log (ground truth), and both replicas are logically
  // consistent with the database. The two replicas are NOT compared
  // byte-for-byte against each other: the concurrent TM on the primary may
  // split B-link index nodes along a different history than strict serial
  // order — identical entries, different tree shape.
  kv::InMemoryKvNode reference;
  TXREP_ASSERT_OK(
      testing::ReplaySerial(sys.database(), sys.translator(), &reference));
  testing::ExpectDumpsEqual(reference, replica.cluster());
  testing::VerifyReplicaMatchesDatabase(replica.cluster(), sys.database(),
                                        sys.translator());
  testing::VerifyReplicaMatchesDatabase(sys.replica(), sys.database(),
                                        sys.translator());

  // Gated reads now succeed and see current data.
  Result<std::vector<rel::Row>> rows = replica.Query(rel::SelectStatement{
      "EVT",
      {},
      {rel::Predicate{"E_ID", rel::PredicateOp::kEq, rel::Value::Int(42),
                      {}}}});
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);

  replica.Detach();
}

TEST_F(RecovBootstrapTest, BootstrapFromCheckpointReplaysOnlyTail) {
  TxRepOptions options;
  options.cluster.num_nodes = 3;
  options.recovery.checkpoint_dir = dir_ + "/checkpoints";
  TxRepSystem sys(options);
  TXREP_ASSERT_OK(sql::ExecuteSql(sys.database(), kSchemaSql).status());
  for (int i = 0; i < 100; ++i) CommitEvent(sys.database(), i);
  TXREP_ASSERT_OK(sys.Start());
  for (int i = 100; i < 700; ++i) CommitEvent(sys.database(), i);
  TXREP_ASSERT_OK(sys.SyncToLatest());

  Result<recov::CheckpointStats> stats = sys.Checkpoint();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const uint64_t epoch = stats->epoch;

  for (int i = 700; i < 1100; ++i) CommitEvent(sys.database(), i);
  TXREP_ASSERT_OK(sys.SyncToLatest());

  BootstrapOptions boot;
  boot.cluster.num_nodes = 3;  // Same shape: direct per-shard install.
  boot.checkpoint_dir = dir_ + "/checkpoints";
  boot.max_admission_lag = 4;
  Result<std::unique_ptr<BootstrappedReplica>> attached =
      BootstrappedReplica::Attach(&sys, boot);
  ASSERT_TRUE(attached.ok()) << attached.status().ToString();
  BootstrappedReplica& replica = **attached;

  EXPECT_TRUE(replica.installed_checkpoint());
  EXPECT_EQ(replica.bootstrap_lsn(), sys.database().log().LastLsn());
  // Only the tail past the snapshot epoch was replayed directly.
  EXPECT_EQ(
      replica.metrics().GetCounter(obs::kRecovTailTxns)->Value(),
      static_cast<int64_t>(sys.database().log().LastLsn() - epoch));

  EXPECT_TRUE(replica.WaitUntilCaughtUp(10'000'000));
  testing::ExpectDumpsEqual(sys.replica(), replica.cluster());

  // Live replication keeps flowing after the bootstrap.
  for (int i = 1100; i < 1150; ++i) CommitEvent(sys.database(), i);
  TXREP_ASSERT_OK(sys.SyncToLatest());
  ASSERT_TRUE(WaitForReplicaLsn(replica, sys, 10'000'000));
  testing::ExpectDumpsEqual(sys.replica(), replica.cluster());
}

TEST_F(RecovBootstrapTest, DiskBackedBootstrapSurvivesReopen) {
  TxRepOptions options;
  options.cluster.num_nodes = 2;
  TxRepSystem sys(options);
  TXREP_ASSERT_OK(sql::ExecuteSql(sys.database(), kSchemaSql).status());
  for (int i = 0; i < 50; ++i) CommitEvent(sys.database(), i);
  TXREP_ASSERT_OK(sys.Start());
  for (int i = 50; i < 150; ++i) CommitEvent(sys.database(), i);
  TXREP_ASSERT_OK(sys.SyncToLatest());

  kv::StoreDump expected;
  {
    BootstrapOptions boot;
    boot.cluster.num_nodes = 2;
    boot.cluster.backend = kv::KvBackend::kDisk;
    boot.cluster.disk_dir = dir_ + "/boot-nodes";
    Result<std::unique_ptr<BootstrappedReplica>> attached =
        BootstrappedReplica::Attach(&sys, boot);
    ASSERT_TRUE(attached.ok()) << attached.status().ToString();
    ASSERT_TRUE((*attached)->WaitUntilCaughtUp(10'000'000));
    ASSERT_TRUE(WaitForReplicaLsn(**attached, sys, 10'000'000));
    testing::ExpectDumpsEqual(sys.replica(), (*attached)->cluster());
    TXREP_ASSERT_OK((*attached)->cluster().SyncAll());
    expected = (*attached)->cluster().Dump();
    (*attached)->Detach();
  }

  // The bootstrapped state is durable: reopening the node logs recovers it.
  kv::KvClusterOptions reopen;
  reopen.num_nodes = 2;
  reopen.backend = kv::KvBackend::kDisk;
  reopen.disk_dir = dir_ + "/boot-nodes";
  kv::KvCluster recovered(reopen);
  TXREP_ASSERT_OK(recovered.init_status());
  EXPECT_EQ(recovered.Dump(), expected);
}

TEST_F(RecovBootstrapTest, AttachRequiresStartedSystem) {
  TxRepSystem sys((TxRepOptions()));
  BootstrapOptions boot;
  EXPECT_TRUE(BootstrappedReplica::Attach(&sys, boot)
                  .status()
                  .IsFailedPrecondition());
  EXPECT_TRUE(BootstrappedReplica::Attach(nullptr, boot)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace txrep
