#include "workload/loadgen.h"

#include <atomic>
#include <map>

#include "common/random.h"
#include "gtest/gtest.h"
#include "obs/names.h"
#include "test_util.h"

namespace txrep::workload {
namespace {

TEST(ArrivalScheduleTest, DeterministicPerSeed) {
  LoadGenOptions options;
  options.base_rate_per_sec = 5000.0;
  options.duration_micros = 500'000;
  options.seed = 17;
  ArrivalSchedule a(options);
  ArrivalSchedule b(options);
  ASSERT_FALSE(a.offsets().empty());
  EXPECT_EQ(a.offsets(), b.offsets());

  options.seed = 18;
  ArrivalSchedule c(options);
  EXPECT_NE(a.offsets(), c.offsets());
}

TEST(ArrivalScheduleTest, OffsetsAreOrderedAndBounded) {
  LoadGenOptions options;
  options.base_rate_per_sec = 3000.0;
  options.duration_micros = 400'000;
  ArrivalSchedule schedule(options);
  int64_t prev = -1;
  for (const int64_t offset : schedule.offsets()) {
    EXPECT_GT(offset, prev);
    EXPECT_LT(offset, options.duration_micros);
    prev = offset;
  }
  // ~3000/s over 0.4 s => ~1200 arrivals; Poisson spread stays well inside
  // a factor of two at this n.
  EXPECT_GT(schedule.offsets().size(), 900u);
  EXPECT_LT(schedule.offsets().size(), 1500u);
}

TEST(ArrivalScheduleTest, RateStepsLandAtConfiguredOffsets) {
  LoadGenOptions options;
  options.base_rate_per_sec = 1000.0;
  options.duration_micros = 900'000;
  options.rate_steps = {{300'000, 4000.0}, {600'000, 1000.0}};
  options.seed = 23;

  EXPECT_DOUBLE_EQ(ArrivalSchedule::RateAt(options, 0), 1000.0);
  EXPECT_DOUBLE_EQ(ArrivalSchedule::RateAt(options, 299'999), 1000.0);
  EXPECT_DOUBLE_EQ(ArrivalSchedule::RateAt(options, 300'000), 4000.0);
  EXPECT_DOUBLE_EQ(ArrivalSchedule::RateAt(options, 599'999), 4000.0);
  EXPECT_DOUBLE_EQ(ArrivalSchedule::RateAt(options, 600'000), 1000.0);

  ArrivalSchedule schedule(options);
  int64_t before = 0;
  int64_t burst = 0;
  int64_t after = 0;
  for (const int64_t offset : schedule.offsets()) {
    if (offset < 300'000) {
      ++before;
    } else if (offset < 600'000) {
      ++burst;
    } else {
      ++after;
    }
  }
  // The middle third carries ~4x the arrivals of the outer thirds.
  EXPECT_GT(burst, 2 * before);
  EXPECT_GT(burst, 2 * after);
  EXPECT_GT(before, 0);
  EXPECT_GT(after, 0);
}

TEST(ArrivalScheduleTest, EvenPacingWithoutPoisson) {
  LoadGenOptions options;
  options.base_rate_per_sec = 1000.0;  // 1000 µs gaps.
  options.duration_micros = 100'000;
  options.poisson = false;
  ArrivalSchedule schedule(options);
  ASSERT_GT(schedule.offsets().size(), 90u);
  for (size_t i = 1; i < schedule.offsets().size(); ++i) {
    EXPECT_EQ(schedule.offsets()[i] - schedule.offsets()[i - 1], 1001);
  }
}

TEST(ZipfSamplerTest, MatchesExpectedFrequencyRanks) {
  // Rank 0 must be the hottest, frequencies monotonically non-increasing in
  // rank (with slack for sampling noise), and visibly heavier than uniform.
  ZipfGenerator zipf(8, 0.9, 12345);
  std::map<uint64_t, int> counts;
  const int kSamples = 40000;
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t v = zipf.Next();
    ASSERT_LT(v, 8u);
    ++counts[v];
  }
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[3]);
  EXPECT_GT(counts[3], counts[7]);
  // Uniform would give 12.5% to rank 0; Zipf(0.9) over n=8 gives ~36%.
  EXPECT_GT(static_cast<double>(counts[0]) / kSamples, 0.25);
}

TEST(OpenLoopRunnerTest, RunsScheduleAndDrains) {
  LoadGenOptions options;
  options.base_rate_per_sec = 2000.0;
  options.duration_micros = 100'000;
  options.seed = 31;
  OpenLoopRunner runner(options);

  // Instant service: every submit is applied immediately.
  std::atomic<uint64_t> lsn{0};
  OpenLoopRunner::Hooks hooks;
  hooks.submit = [&]() -> Result<uint64_t> { return ++lsn; };
  hooks.applied_lsn = [&]() -> uint64_t { return lsn.load(); };

  const LoadReport report = runner.Run(hooks);
  const ArrivalSchedule schedule(options);
  EXPECT_EQ(report.arrivals,
            static_cast<int64_t>(schedule.offsets().size()));
  EXPECT_EQ(report.submitted, report.arrivals);
  EXPECT_EQ(report.applied, report.submitted);
  EXPECT_EQ(report.shed, 0);
  EXPECT_EQ(report.submit_failures, 0);
  EXPECT_TRUE(report.drained);
  EXPECT_EQ(report.lag.count, report.applied);
  EXPECT_FALSE(report.ToString().empty());
}

TEST(OpenLoopRunnerTest, BacklogCapShedsUnderStalledReplica) {
  LoadGenOptions options;
  options.base_rate_per_sec = 5000.0;
  options.duration_micros = 50'000;
  options.seed = 37;
  options.max_backlog = 20;
  options.drain_timeout_micros = 50'000;  // The replica never applies.
  OpenLoopRunner runner(options);

  std::atomic<uint64_t> lsn{0};
  OpenLoopRunner::Hooks hooks;
  hooks.submit = [&]() -> Result<uint64_t> { return ++lsn; };
  hooks.applied_lsn = []() -> uint64_t { return 0; };

  const LoadReport report = runner.Run(hooks);
  EXPECT_EQ(report.peak_backlog, 20);
  EXPECT_GT(report.shed, 0);
  EXPECT_FALSE(report.drained);
  EXPECT_EQ(report.applied, 0);
}

TEST(OpenLoopRunnerTest, PublishesMetricsAndFeedsWatchdog) {
  LoadGenOptions options;
  options.base_rate_per_sec = 2000.0;
  options.duration_micros = 50'000;
  options.seed = 41;

  obs::MetricsRegistry metrics;
  trace::SloOptions slo_options;
  slo_options.enabled = true;
  slo_options.start_thread = false;
  // Violations fire on lag > objective; -1 makes every observation (lag >= 0)
  // a violation regardless of how fast the instant-service hooks complete.
  slo_options.lag_objective_micros = -1;
  trace::SloWatchdog watchdog(slo_options);
  OpenLoopRunner runner(options, &metrics, &watchdog);

  std::atomic<uint64_t> lsn{0};
  OpenLoopRunner::Hooks hooks;
  hooks.submit = [&]() -> Result<uint64_t> { return ++lsn; };
  hooks.applied_lsn = [&]() -> uint64_t { return lsn.load(); };
  const LoadReport report = runner.Run(hooks);
  ASSERT_GT(report.applied, 0);

  EXPECT_EQ(metrics.GetCounter(obs::kLoadgenArrivals)->Value(),
            report.arrivals);
  EXPECT_EQ(metrics.GetHistogram(obs::kLoadgenLag)->count(), report.applied);
  const trace::SloStatus status = watchdog.Snapshot();
  EXPECT_EQ(status.observations, report.applied);
  EXPECT_EQ(status.violations, report.applied);
}

TEST(ScenarioLibraryTest, ScenariosAreWellFormed) {
  const std::vector<LoadScenario> scenarios = StandardScenarios();
  ASSERT_EQ(scenarios.size(), 3u);
  for (const LoadScenario& s : scenarios) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_GT(s.load.base_rate_per_sec, 0.0);
    EXPECT_GT(s.load.duration_micros, 0);
  }
  EXPECT_GT(HotWarehouseScenario().tpcc.warehouse_zipf_theta, 0.5);
  EXPECT_FALSE(FlashCrowdScenario().load.rate_steps.empty());
  EXPECT_DOUBLE_EQ(SustainedOverloadScenario(9000.0).load.base_rate_per_sec,
                   9000.0);
}

}  // namespace
}  // namespace txrep::workload
