// Crash-recovery drill for the full deployment: a TxRepSystem checkpoints,
// "crashes" (is destroyed), and a process-equivalent restarts against the
// same checkpoint directory. The recovered replica must byte-equal a serial
// replay of the complete transaction log — under the concurrent TM, the
// serial baseline, disk-backed clusters, and checkpoint crashes injected at
// every protocol step.

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "kv/inmemory_node.h"
#include "recov/io.h"
#include "sql/interpreter.h"
#include "test_util.h"
#include "txrep/system.h"

namespace txrep {
namespace {

constexpr const char* kSchemaSql = R"sql(
  CREATE TABLE ACCT (A_ID INT PRIMARY KEY, A_OWNER VARCHAR(16),
                     A_BALANCE DOUBLE);
  CREATE INDEX ON ACCT (A_OWNER);
  CREATE RANGE INDEX ON ACCT (A_BALANCE);
)sql";

/// Deterministic workload: re-running it into a fresh database reproduces
/// the identical transaction log (same statements, same commit order, same
/// dense LSNs) — exactly what a surviving database provides to a restarted
/// replica. The update/delete guards depend only on `i`, never on `from`,
/// so splitting the same range across multiple calls yields the same log
/// as one contiguous call.
void RunWorkload(rel::Database& db, int from, int to) {
  for (int i = from; i < to; ++i) {
    std::vector<rel::Statement> statements;
    statements.push_back(rel::InsertStatement{
        "ACCT",
        {},
        {rel::Value::Int(i), rel::Value::Str("o" + std::to_string(i % 7)),
         rel::Value::Real(i * 1.5)}});
    if (i % 3 == 0 && i > 0) {
      statements.push_back(rel::UpdateStatement{
          "ACCT",
          {{"A_BALANCE", rel::Value::Real(i * 2.5)}},
          {rel::Predicate{"A_ID", rel::PredicateOp::kEq,
                          rel::Value::Int(i - 1),
                          {}}}});
    }
    if (i % 11 == 0 && i > 1) {
      statements.push_back(rel::DeleteStatement{
          "ACCT",
          {rel::Predicate{"A_ID", rel::PredicateOp::kEq,
                          rel::Value::Int(i - 2),
                          {}}}});
    }
    TXREP_ASSERT_OK(db.ExecuteTransaction(statements).status());
  }
}

void SetupSchema(rel::Database& db) {
  TXREP_ASSERT_OK(sql::ExecuteSql(db, kSchemaSql).status());
}

/// Byte-equality reference: serial replay of the database's complete log
/// into a single fresh store.
void ExpectMatchesSerialReplay(TxRepSystem& sys) {
  kv::InMemoryKvNode reference;
  TXREP_ASSERT_OK(
      testing::ReplaySerial(sys.database(), sys.translator(), &reference));
  testing::ExpectDumpsEqual(reference, sys.replica());
  testing::VerifyReplicaMatchesDatabase(sys.replica(), sys.database(),
                                        sys.translator());
}

class RecovRestartTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "txrep_recov_restart_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    TXREP_ASSERT_OK(recov::RemoveDirRecursive(dir_));
  }
  void TearDown() override { TXREP_ASSERT_OK(recov::RemoveDirRecursive(dir_)); }

  TxRepOptions Options(bool concurrent) {
    TxRepOptions options;
    options.cluster.num_nodes = 3;
    options.concurrent_replication = concurrent;
    options.recovery.checkpoint_dir = dir_ + "/checkpoints";
    return options;
  }

  TxRepOptions DiskOptions(bool concurrent) {
    TxRepOptions options = Options(concurrent);
    options.cluster.backend = kv::KvBackend::kDisk;
    options.cluster.disk_dir = dir_ + "/nodes";
    return options;
  }

  std::string dir_;
};

TEST_F(RecovRestartTest, ResumeFromCheckpointUnderTm) {
  uint64_t epoch = 0;
  {
    TxRepSystem sys(Options(/*concurrent=*/true));
    SetupSchema(sys.database());
    RunWorkload(sys.database(), 0, 40);
    TXREP_ASSERT_OK(sys.Start());
    RunWorkload(sys.database(), 40, 120);
    TXREP_ASSERT_OK(sys.SyncToLatest());

    Result<recov::CheckpointStats> stats = sys.Checkpoint();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    epoch = stats->epoch;
    EXPECT_EQ(epoch, sys.database().log().LastLsn());

    // More commits after the checkpoint: the restart below must replay
    // exactly this tail on top of the installed snapshot.
    RunWorkload(sys.database(), 120, 160);
    TXREP_ASSERT_OK(sys.SyncToLatest());
    ExpectMatchesSerialReplay(sys);
  }  // <- crash.

  TxRepSystem sys(Options(/*concurrent=*/true));
  SetupSchema(sys.database());
  RunWorkload(sys.database(), 0, 160);  // The database survived the crash.
  TXREP_ASSERT_OK(sys.Start());
  EXPECT_TRUE(sys.resumed_from_checkpoint());
  TXREP_ASSERT_OK(sys.SyncToLatest());
  EXPECT_EQ(sys.replica_lsn(), sys.database().log().LastLsn());
  ExpectMatchesSerialReplay(sys);
}

TEST_F(RecovRestartTest, ResumeFromCheckpointUnderSerialBaseline) {
  {
    TxRepSystem sys(Options(/*concurrent=*/false));
    SetupSchema(sys.database());
    RunWorkload(sys.database(), 0, 30);
    TXREP_ASSERT_OK(sys.Start());
    RunWorkload(sys.database(), 30, 90);
    TXREP_ASSERT_OK(sys.SyncToLatest());
    ASSERT_TRUE(sys.Checkpoint().ok());
    RunWorkload(sys.database(), 90, 110);
    TXREP_ASSERT_OK(sys.SyncToLatest());
  }

  TxRepSystem sys(Options(/*concurrent=*/false));
  SetupSchema(sys.database());
  RunWorkload(sys.database(), 0, 110);
  TXREP_ASSERT_OK(sys.Start());
  EXPECT_TRUE(sys.resumed_from_checkpoint());
  TXREP_ASSERT_OK(sys.SyncToLatest());
  ExpectMatchesSerialReplay(sys);
}

TEST_F(RecovRestartTest, DiskClusterResumesAndCompacts) {
  {
    TxRepSystem sys(DiskOptions(/*concurrent=*/true));
    SetupSchema(sys.database());
    RunWorkload(sys.database(), 0, 50);
    TXREP_ASSERT_OK(sys.Start());
    RunWorkload(sys.database(), 50, 100);
    TXREP_ASSERT_OK(sys.SyncToLatest());
    ASSERT_TRUE(sys.Checkpoint().ok());
    RunWorkload(sys.database(), 100, 130);
    TXREP_ASSERT_OK(sys.SyncToLatest());
  }

  TxRepSystem sys(DiskOptions(/*concurrent=*/true));
  SetupSchema(sys.database());
  RunWorkload(sys.database(), 0, 130);
  TXREP_ASSERT_OK(sys.Start());
  EXPECT_TRUE(sys.resumed_from_checkpoint());
  TXREP_ASSERT_OK(sys.SyncToLatest());
  ExpectMatchesSerialReplay(sys);
}

TEST_F(RecovRestartTest, ColdStartClearsStaleDiskState) {
  {
    TxRepSystem sys(DiskOptions(/*concurrent=*/true));
    SetupSchema(sys.database());
    RunWorkload(sys.database(), 0, 40);
    TXREP_ASSERT_OK(sys.Start());
    TXREP_ASSERT_OK(sys.SyncToLatest());
  }  // Crash WITHOUT any checkpoint: the node logs hold stale state.

  TxRepOptions options = DiskOptions(/*concurrent=*/true);
  options.recovery.resume_from_checkpoint = false;
  TxRepSystem sys(options);
  SetupSchema(sys.database());
  RunWorkload(sys.database(), 0, 60);
  TXREP_ASSERT_OK(sys.Start());
  EXPECT_FALSE(sys.resumed_from_checkpoint());
  TXREP_ASSERT_OK(sys.SyncToLatest());
  ExpectMatchesSerialReplay(sys);
}

TEST_F(RecovRestartTest, CrashMidCheckpointRecoversFromLastGoodOne) {
  uint64_t good_epoch = 0;
  {
    TxRepSystem sys(Options(/*concurrent=*/true));
    SetupSchema(sys.database());
    RunWorkload(sys.database(), 0, 20);
    TXREP_ASSERT_OK(sys.Start());
    RunWorkload(sys.database(), 20, 60);
    TXREP_ASSERT_OK(sys.SyncToLatest());

    // First checkpoint attempt dies mid-snapshot-files.
    recov::CheckpointFaults faults;
    faults.fail_after_files = 1;
    sys.set_checkpoint_faults(faults);
    EXPECT_FALSE(sys.Checkpoint().ok());
    // The pipeline keeps working after a failed checkpoint (the quiescent
    // barrier released).
    RunWorkload(sys.database(), 60, 70);
    TXREP_ASSERT_OK(sys.SyncToLatest());

    // Clean checkpoint succeeds.
    sys.set_checkpoint_faults(recov::CheckpointFaults{});
    Result<recov::CheckpointStats> stats = sys.Checkpoint();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    good_epoch = stats->epoch;

    // A later checkpoint attempt tears its manifest mid-write.
    RunWorkload(sys.database(), 70, 90);
    TXREP_ASSERT_OK(sys.SyncToLatest());
    faults = recov::CheckpointFaults{};
    faults.tear_manifest = true;
    sys.set_checkpoint_faults(faults);
    EXPECT_FALSE(sys.Checkpoint().ok());
  }  // <- crash with a torn newest manifest on disk.

  TxRepSystem sys(Options(/*concurrent=*/true));
  SetupSchema(sys.database());
  RunWorkload(sys.database(), 0, 90);
  TXREP_ASSERT_OK(sys.Start());
  EXPECT_TRUE(sys.resumed_from_checkpoint());
  TXREP_ASSERT_OK(sys.SyncToLatest());
  ExpectMatchesSerialReplay(sys);

  // It resumed from the last GOOD epoch (the torn one was rejected), then
  // caught up past it via the log.
  EXPECT_GE(sys.replica_lsn(), good_epoch);
}

TEST_F(RecovRestartTest, StaleCursorStillResumesFromNewestManifest) {
  {
    TxRepSystem sys(Options(/*concurrent=*/true));
    SetupSchema(sys.database());
    RunWorkload(sys.database(), 0, 30);
    TXREP_ASSERT_OK(sys.Start());
    RunWorkload(sys.database(), 30, 50);
    TXREP_ASSERT_OK(sys.SyncToLatest());
    ASSERT_TRUE(sys.Checkpoint().ok());

    RunWorkload(sys.database(), 50, 80);
    TXREP_ASSERT_OK(sys.SyncToLatest());
    // Crash after the manifest commit but before the cursor advance: the
    // newest checkpoint is durable, the cursor still points at the old one.
    recov::CheckpointFaults faults;
    faults.skip_cursor = true;
    sys.set_checkpoint_faults(faults);
    EXPECT_FALSE(sys.Checkpoint().ok());
  }

  TxRepSystem sys(Options(/*concurrent=*/true));
  SetupSchema(sys.database());
  RunWorkload(sys.database(), 0, 80);
  TXREP_ASSERT_OK(sys.Start());
  EXPECT_TRUE(sys.resumed_from_checkpoint());
  TXREP_ASSERT_OK(sys.SyncToLatest());
  ExpectMatchesSerialReplay(sys);
}

TEST_F(RecovRestartTest, TruncatedLogPastEpochIsCorruption) {
  uint64_t epoch = 0;
  {
    TxRepSystem sys(Options(/*concurrent=*/true));
    SetupSchema(sys.database());
    RunWorkload(sys.database(), 0, 20);
    TXREP_ASSERT_OK(sys.Start());
    RunWorkload(sys.database(), 20, 50);
    TXREP_ASSERT_OK(sys.SyncToLatest());
    Result<recov::CheckpointStats> stats = sys.Checkpoint();
    ASSERT_TRUE(stats.ok());
    epoch = stats->epoch;
  }

  // The restarted database lost (truncated) log entries beyond epoch + 1:
  // dense-LSN gap detection must refuse to resume rather than silently skip
  // transactions.
  TxRepSystem sys(Options(/*concurrent=*/true));
  SetupSchema(sys.database());
  RunWorkload(sys.database(), 0, 70);
  ASSERT_GT(sys.database().log().LastLsn(), epoch + 2);
  sys.database().log().TruncateUpTo(epoch + 2);
  EXPECT_TRUE(sys.Start().IsCorruption());
}

TEST_F(RecovRestartTest, CheckpointWhileWritesKeepFlowing) {
  TxRepSystem sys(Options(/*concurrent=*/true));
  SetupSchema(sys.database());
  RunWorkload(sys.database(), 0, 10);
  TXREP_ASSERT_OK(sys.Start());

  // Interleave commits and checkpoints without ever draining the pipeline
  // first: Checkpoint() quiesces the replica internally, writes keep
  // landing on the database side.
  std::thread writer([&sys] { RunWorkload(sys.database(), 10, 210); });
  int checkpoints_taken = 0;
  uint64_t last_epoch = 0;
  for (int i = 0; i < 8; ++i) {
    Result<recov::CheckpointStats> stats = sys.Checkpoint();
    if (stats.ok()) {
      EXPECT_GT(stats->epoch, last_epoch);
      last_epoch = stats->epoch;
      ++checkpoints_taken;
    } else {
      // Two checkpoints with no transaction applied in between land on the
      // same epoch; the writer correctly refuses the duplicate.
      EXPECT_TRUE(stats.status().IsInvalidArgument())
          << stats.status().ToString();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  writer.join();
  EXPECT_GE(checkpoints_taken, 1);
  TXREP_ASSERT_OK(sys.SyncToLatest());
  ExpectMatchesSerialReplay(sys);
}

}  // namespace
}  // namespace txrep
