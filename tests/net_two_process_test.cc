// The acceptance deployment: a primary process (TxRepSystem +
// ServeReplication over real TCP) and a replica process (net_replica_helper,
// fork/exec'd) replaying a >= 1000-transaction workload — with one forced
// disconnect injected mid-stream — and ending with the remote dump
// byte-identical to the in-process replica.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/clock.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "rel/statement.h"
#include "test_util.h"
#include "txrep/system.h"

#ifndef TXREP_REPLICA_HELPER_PATH
#error "TXREP_REPLICA_HELPER_PATH must point at the net_replica_helper binary"
#endif

namespace txrep {
namespace {

using rel::Value;

std::string ToHex(const std::string& bytes) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

void RunTxn(TxRepSystem& sys, int i) {
  std::vector<rel::Statement> statements;
  statements.push_back(rel::InsertStatement{
      "S", {}, {Value::Int(i), Value::Int(i % 13)}});
  if (i % 4 == 1) {
    statements.push_back(rel::UpdateStatement{
        "S",
        {{"VAL", Value::Int(i % 17)}},
        {rel::Predicate{"ID", rel::PredicateOp::kEq, Value::Int(i / 2), {}}}});
  }
  if (i % 9 == 8) {
    statements.push_back(rel::DeleteStatement{
        "S",
        {rel::Predicate{"ID", rel::PredicateOp::kEq, Value::Int(i / 3), {}}}});
  }
  TXREP_ASSERT_OK(sys.database().ExecuteTransaction(statements).status());
}

TEST(NetTwoProcessTest, RemoteReplicaMatchesInProcessReplicaAcrossAKill) {
  constexpr int kTxns = 1200;
  constexpr int kBeforeSpawn = 500;   // Backlog the child replays on attach.
  constexpr int kBeforeKill = 300;    // Live stream before the forced kill.

  TxRepOptions options;
  // The serial baseline keeps the in-process replica the ground truth the
  // explorer already proved the TM equivalent to.
  options.concurrent_replication = false;
  TxRepSystem sys(options);
  // Schema before Start(): the catalog snapshot ships in the handshake.
  auto schema = rel::TableSchema::Create("S",
                                         {{"ID", rel::ValueType::kInt64},
                                          {"VAL", rel::ValueType::kInt64}},
                                         "ID");
  TXREP_ASSERT_OK(schema.status());
  TXREP_ASSERT_OK(sys.database().CreateTable(std::move(*schema)));
  TXREP_ASSERT_OK(sys.database().CreateHashIndex("S", "VAL"));
  TXREP_ASSERT_OK(sys.database().CreateRangeIndex("S", "VAL"));
  TXREP_ASSERT_OK(sys.Start());
  TXREP_ASSERT_OK(sys.ServeReplication(0));  // Ephemeral port.
  const uint16_t port = sys.net_endpoint()->port();
  ASSERT_GT(port, 0);

  int txn = 0;
  for (; txn < kBeforeSpawn; ++txn) RunTxn(sys, txn);

  const std::string dump_path =
      ::testing::TempDir() + "net_two_process_dump.txt";
  std::remove(dump_path.c_str());
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    execl(TXREP_REPLICA_HELPER_PATH, TXREP_REPLICA_HELPER_PATH, "127.0.0.1",
          std::to_string(port).c_str(), std::to_string(kTxns).c_str(),
          dump_path.c_str(), static_cast<char*>(nullptr));
    _exit(127);  // exec failed.
  }

  // Wait until the child has not just connected but finished its handshake
  // and applied at least one batch: the server counts the SUBSCRIBE frame
  // plus the credit top-ups the client sends only after its queue accepts a
  // batch. Killing any earlier races the ack — the client would retry the
  // handshake as transient and never count the first connection.
  obs::Counter* server_received = sys.metrics().GetCounter(
      obs::kNetFramesReceived, {{"role", "server"}});
  for (int i = 0; server_received->Value() < 2 && i < 10000; ++i) {
    SleepForMicros(1000);
  }
  ASSERT_GE(server_received->Value(), 2)
      << "replica process never streamed a batch";
  ASSERT_GE(sys.net_endpoint()->live_sessions(), 1u);
  for (; txn < kBeforeSpawn + kBeforeKill; ++txn) RunTxn(sys, txn);
  sys.net_endpoint()->DropSessions();

  for (; txn < kTxns; ++txn) RunTxn(sys, txn);
  TXREP_ASSERT_OK(sys.SyncToLatest());
  EXPECT_EQ(sys.replica_lsn(), static_cast<uint64_t>(kTxns));

  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), 0) << "replica process failed";

  std::ifstream in(dump_path);
  ASSERT_TRUE(in.good()) << "no dump at " << dump_path;
  std::string word;
  long long connects = 0;
  in >> word >> connects;
  ASSERT_EQ(word, "connects");
  EXPECT_GE(connects, 2) << "the forced disconnect never happened";

  std::vector<std::pair<std::string, std::string>> remote;
  std::string key_hex;
  std::string value_hex;
  while (in >> key_hex >> value_hex) remote.emplace_back(key_hex, value_hex);

  const kv::StoreDump local = sys.replica().Dump();
  ASSERT_EQ(remote.size(), local.size());
  for (size_t i = 0; i < local.size(); ++i) {
    ASSERT_EQ(remote[i].first, ToHex(local[i].first)) << "key " << i;
    ASSERT_EQ(remote[i].second, ToHex(local[i].second)) << "value " << i;
  }
  std::remove(dump_path.c_str());
}

}  // namespace
}  // namespace txrep
