#include "rel/value.h"

#include "gtest/gtest.h"

namespace txrep::rel {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
}

TEST(ValueTest, TypedConstructionAndAccess) {
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Real(3.5).AsDouble(), 3.5);
  EXPECT_EQ(Value::Str("abc").AsString(), "abc");
}

TEST(ValueTest, AsNumericWidensInt) {
  EXPECT_DOUBLE_EQ(Value::Int(7).AsNumeric(), 7.0);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).AsNumeric(), 2.5);
}

TEST(ValueTest, EqualitySameTypeOnly) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_NE(Value::Int(1), Value::Int(2));
  EXPECT_NE(Value::Int(1), Value::Real(1.0));  // Types distinguish.
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_EQ(Value::Str("a"), Value::Str("a"));
}

TEST(ValueTest, OrderingWithinType) {
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::Real(1.5), Value::Real(2.5));
  EXPECT_LT(Value::Str("a"), Value::Str("b"));
  EXPECT_LE(Value::Int(2), Value::Int(2));
  EXPECT_GT(Value::Int(3), Value::Int(2));
}

TEST(ValueTest, OrderingAcrossTypesByTag) {
  // NULL < INT < DOUBLE < STRING (variant index order) — total, stable.
  EXPECT_LT(Value::Null(), Value::Int(-100));
  EXPECT_LT(Value::Int(1000), Value::Real(-5.0));
  EXPECT_LT(Value::Real(1e9), Value::Str(""));
}

TEST(ValueTest, NegativeIntsOrdered) {
  EXPECT_LT(Value::Int(-5), Value::Int(-1));
  EXPECT_LT(Value::Int(-1), Value::Int(0));
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-7).ToString(), "-7");
  EXPECT_EQ(Value::Str("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::Real(2.5).ToString(), "2.5");
}

TEST(ValueTest, RowToStringFormats) {
  Row row = {Value::Int(1), Value::Str("x"), Value::Null()};
  EXPECT_EQ(RowToString(row), "(1, 'x', NULL)");
}

TEST(ValueTest, TypeNames) {
  EXPECT_STREQ(ValueTypeName(ValueType::kNull), "NULL");
  EXPECT_STREQ(ValueTypeName(ValueType::kInt64), "INT");
  EXPECT_STREQ(ValueTypeName(ValueType::kDouble), "DOUBLE");
  EXPECT_STREQ(ValueTypeName(ValueType::kString), "STRING");
}

}  // namespace
}  // namespace txrep::rel
