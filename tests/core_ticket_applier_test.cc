// The ticket-ordered 2PL baseline (Polyzois & García-Molina, paper §2).

#include "core/ticket_applier.h"

#include "common/clock.h"
#include "common/random.h"
#include "core/serial_applier.h"
#include "gtest/gtest.h"
#include "kv/inmemory_node.h"
#include "qt/query_translator.h"
#include "rel/database.h"
#include "test_util.h"
#include "workload/synthetic.h"
#include "workload/tpcw.h"

namespace txrep::core {
namespace {

using rel::Value;

class TicketApplierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* name : {"T1", "T2", "T3"}) {
      Result<rel::TableSchema> schema = rel::TableSchema::Create(
          name,
          {{"ID", rel::ValueType::kInt64}, {"V", rel::ValueType::kInt64}},
          "ID");
      ASSERT_TRUE(schema.ok());
      TXREP_ASSERT_OK(catalog_.AddTable(*schema));
    }
    translator_ = std::make_unique<qt::QueryTranslator>(&catalog_);
  }

  rel::LogTransaction Insert(const char* table, int64_t id, int64_t v) {
    rel::LogTransaction txn;
    txn.ops.push_back(rel::LogOp{rel::LogOpType::kInsert, table,
                                 Value::Int(id),
                                 {Value::Int(id), Value::Int(v)}});
    return txn;
  }
  rel::LogTransaction Update(const char* table, int64_t id, int64_t v) {
    rel::LogTransaction txn;
    txn.ops.push_back(rel::LogOp{rel::LogOpType::kUpdate, table,
                                 Value::Int(id),
                                 {Value::Int(id), Value::Int(v)}});
    return txn;
  }

  rel::Catalog catalog_;
  std::unique_ptr<qt::QueryTranslator> translator_;
};

TEST_F(TicketApplierTest, AppliesSingleTransaction) {
  kv::InMemoryKvNode store;
  TicketApplier applier(&store, translator_.get(), {});
  applier.Submit(Insert("T1", 1, 10));
  TXREP_ASSERT_OK(applier.WaitIdle());
  EXPECT_TRUE(store.Contains("T1_1"));
  EXPECT_EQ(applier.stats().completed, 1);
}

TEST_F(TicketApplierTest, SameTableChainRespectsTicketOrder) {
  // Per-op service time keeps each apply busy long enough that successive
  // tickets genuinely queue on the table lock.
  kv::KvNodeOptions node_options;
  node_options.service_time_micros = 500;
  kv::InMemoryKvNode store(node_options);
  TicketApplier applier(&store, translator_.get(), {.threads = 8});
  applier.Submit(Insert("T1", 1, 0));
  for (int v = 1; v <= 60; ++v) {
    applier.Submit(Update("T1", 1, v));
  }
  TXREP_ASSERT_OK(applier.WaitIdle());
  Result<kv::Value> bytes = store.Get("T1_1");
  ASSERT_TRUE(bytes.ok());
  // Final value must be the last ticket's (strict ticket order).
  // Decode via the row codec indirectly: replay serially and compare.
  kv::InMemoryKvNode reference;
  SerialApplier serial(&reference, translator_.get());
  TXREP_ASSERT_OK(serial.Apply(Insert("T1", 1, 0)));
  for (int v = 1; v <= 60; ++v) {
    TXREP_ASSERT_OK(serial.Apply(Update("T1", 1, v)));
  }
  testing::ExpectDumpsEqual(reference, store);
  EXPECT_GT(applier.stats().lock_waits, 0);
}

TEST_F(TicketApplierTest, DisjointTablesRunConcurrently) {
  // With a per-op service time, three disjoint-table streams must finish
  // much faster than 3x one stream's serial time.
  kv::KvNodeOptions node_options;
  node_options.service_time_micros = 2000;
  kv::InMemoryKvNode store(node_options);
  TicketApplier applier(&store, translator_.get(), {.threads = 8});
  Stopwatch sw;
  for (int i = 0; i < 8; ++i) {
    applier.Submit(Insert("T1", i, 0));
    applier.Submit(Insert("T2", i, 0));
    applier.Submit(Insert("T3", i, 0));
  }
  TXREP_ASSERT_OK(applier.WaitIdle());
  // 24 inserts x ~2ms service: serial would be >= 48ms; three concurrent
  // streams should land well under 40ms even with overheads.
  EXPECT_LT(sw.ElapsedMicros(), 40000) << "no cross-table concurrency";
}

TEST_F(TicketApplierTest, EquivalentToSerialOnRandomMultiTableLoad) {
  rel::Database db;
  for (const char* name : {"T1", "T2", "T3"}) {
    Result<rel::TableSchema> schema = rel::TableSchema::Create(
        name, {{"ID", rel::ValueType::kInt64}, {"V", rel::ValueType::kInt64}},
        "ID");
    ASSERT_TRUE(schema.ok());
    TXREP_ASSERT_OK(db.CreateTable(*schema));
  }
  Random rng(5);
  const char* tables[] = {"T1", "T2", "T3"};
  for (int t = 0; t < 3; ++t) {
    for (int i = 1; i <= 20; ++i) {
      TXREP_ASSERT_OK(
          db.ExecuteTransaction(
                {rel::InsertStatement{
                    tables[t], {}, {Value::Int(i), Value::Int(0)}}})
              .status());
    }
  }
  for (int i = 0; i < 300; ++i) {
    const char* table = tables[rng.Uniform(3)];
    TXREP_ASSERT_OK(
        db.ExecuteTransaction(
              {rel::UpdateStatement{
                  table,
                  {{"V", Value::Int(static_cast<int64_t>(rng.Uniform(100)))}},
                  {rel::Predicate{"ID", rel::PredicateOp::kEq,
                                  Value::Int(1 + static_cast<int64_t>(
                                                     rng.Uniform(20))),
                                  {}}}}})
            .status());
  }
  qt::QueryTranslator translator(&db.catalog(), {});
  kv::InMemoryKvNode reference, ticket_store;
  TXREP_ASSERT_OK(testing::ReplaySerial(db, translator, &reference));
  {
    TXREP_ASSERT_OK(translator.InitializeIndexes(&ticket_store));
    TicketApplier applier(&ticket_store, &translator, {.threads = 8});
    for (rel::LogTransaction& txn : db.log().ReadSince(0)) {
      applier.Submit(std::move(txn));
    }
    TXREP_ASSERT_OK(applier.WaitIdle());
    EXPECT_EQ(applier.stats().completed,
              static_cast<int64_t>(db.log().size()));
  }
  testing::ExpectDumpsEqual(reference, ticket_store);
}

TEST_F(TicketApplierTest, FailurePropagatesViaWaitIdle) {
  kv::InMemoryKvNode store;
  TicketApplier applier(&store, translator_.get(), {});
  applier.Submit(Update("T1", 42, 1));  // Row never existed.
  EXPECT_FALSE(applier.WaitIdle().ok());
}

TEST_F(TicketApplierTest, WaitIdleOnEmptyReturns) {
  kv::InMemoryKvNode store;
  TicketApplier applier(&store, translator_.get(), {});
  TXREP_ASSERT_OK(applier.WaitIdle());
}

}  // namespace
}  // namespace txrep::core
