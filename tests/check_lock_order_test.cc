// The lock-order registry must flag an inverted acquisition order the first
// time it is *attempted*, not the first time it actually deadlocks — and must
// keep the per-thread held chain truthful through acquire/release.

#include "check/lock_order.h"

#include <thread>

#include "check/mutex.h"
#include "gtest/gtest.h"

namespace txrep::check {
namespace {

/// Registers the edges of acquiring (id, name) and pushes it on the chain,
/// like Mutex::Lock does in TXREP_DEBUG_CHECKS builds.
std::optional<std::string> Acquire(const void* id, const char* name) {
  auto violation = LockOrderRegistry::Instance().NoteAcquire(id, name);
  if (!violation.has_value()) {
    LockOrderRegistry::Instance().NoteAcquired(id, name);
  }
  return violation;
}

void Release(const void* id) {
  LockOrderRegistry::Instance().NoteReleased(id);
}

class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override { LockOrderRegistry::Instance().ClearEdges(); }
  void TearDown() override { LockOrderRegistry::Instance().ClearEdges(); }

  // Distinct instance ids; the addresses are all that matters.
  int a_ = 0, b_ = 0, c_ = 0, a2_ = 0;
};

TEST_F(LockOrderTest, ConsistentOrderIsClean) {
  EXPECT_FALSE(Acquire(&a_, "test.A").has_value());
  EXPECT_FALSE(Acquire(&b_, "test.B").has_value());
  Release(&b_);
  Release(&a_);
  // Same order again: still clean.
  EXPECT_FALSE(Acquire(&a_, "test.A").has_value());
  EXPECT_FALSE(Acquire(&b_, "test.B").has_value());
  Release(&b_);
  Release(&a_);
  EXPECT_EQ(LockOrderRegistry::Instance().EdgeCount(), 1u);  // A -> B once.
}

TEST_F(LockOrderTest, InversionIsReportedBeforeAnyDeadlock) {
  // Establish A -> B on this thread...
  ASSERT_FALSE(Acquire(&a_, "test.A").has_value());
  ASSERT_FALSE(Acquire(&b_, "test.B").has_value());
  Release(&b_);
  Release(&a_);
  // ...then merely *attempt* B -> A: no second thread, no deadlock, but the
  // inversion must be flagged right here.
  ASSERT_FALSE(Acquire(&b_, "test.B").has_value());
  auto violation = LockOrderRegistry::Instance().NoteAcquire(&a_, "test.A");
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("test.A"), std::string::npos);
  EXPECT_NE(violation->find("test.B"), std::string::npos);
  Release(&b_);
}

TEST_F(LockOrderTest, OffendingEdgeKeepsReporting) {
  ASSERT_FALSE(Acquire(&a_, "test.A").has_value());
  ASSERT_FALSE(Acquire(&b_, "test.B").has_value());
  Release(&b_);
  Release(&a_);
  ASSERT_FALSE(Acquire(&b_, "test.B").has_value());
  // The bad edge is not added to the graph, so a second attempt from the
  // same (or another) call site reports again instead of going quiet.
  EXPECT_TRUE(
      LockOrderRegistry::Instance().NoteAcquire(&a_, "test.A").has_value());
  EXPECT_TRUE(
      LockOrderRegistry::Instance().NoteAcquire(&a_, "test.A").has_value());
  Release(&b_);
}

TEST_F(LockOrderTest, TransitiveCycleIsDetected) {
  // A -> B and B -> C established...
  ASSERT_FALSE(Acquire(&a_, "test.A").has_value());
  ASSERT_FALSE(Acquire(&b_, "test.B").has_value());
  Release(&b_);
  Release(&a_);
  ASSERT_FALSE(Acquire(&b_, "test.B").has_value());
  ASSERT_FALSE(Acquire(&c_, "test.C").has_value());
  Release(&c_);
  Release(&b_);
  // ...so holding C while acquiring A closes a 3-cycle via reachability.
  ASSERT_FALSE(Acquire(&c_, "test.C").has_value());
  EXPECT_TRUE(
      LockOrderRegistry::Instance().NoteAcquire(&a_, "test.A").has_value());
  Release(&c_);
}

TEST_F(LockOrderTest, SameNameNestingIsAViolation) {
  // Two instances behind one name have no defined order between themselves.
  ASSERT_FALSE(Acquire(&a_, "test.A").has_value());
  auto violation = LockOrderRegistry::Instance().NoteAcquire(&a2_, "test.A");
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("same name"), std::string::npos);
  Release(&a_);
}

TEST_F(LockOrderTest, HeldChainTracksOutermostFirst) {
  EXPECT_TRUE(LockOrderRegistry::Instance().HeldByThisThread().empty());
  ASSERT_FALSE(Acquire(&a_, "test.A").has_value());
  ASSERT_FALSE(Acquire(&b_, "test.B").has_value());
  EXPECT_EQ(LockOrderRegistry::Instance().HeldByThisThread(),
            (std::vector<std::string>{"test.A", "test.B"}));
  // Out-of-order release is legal and removes the right instance.
  Release(&a_);
  EXPECT_EQ(LockOrderRegistry::Instance().HeldByThisThread(),
            (std::vector<std::string>{"test.B"}));
  Release(&b_);
  EXPECT_TRUE(LockOrderRegistry::Instance().HeldByThisThread().empty());
}

TEST_F(LockOrderTest, ChainsArePerThread) {
  ASSERT_FALSE(Acquire(&a_, "test.A").has_value());
  std::thread other([&] {
    // This thread holds nothing, so acquiring B records no A -> B edge.
    EXPECT_TRUE(LockOrderRegistry::Instance().HeldByThisThread().empty());
    EXPECT_FALSE(Acquire(&b_, "test.B").has_value());
    Release(&b_);
  });
  other.join();
  Release(&a_);
  EXPECT_EQ(LockOrderRegistry::Instance().EdgeCount(), 0u);
}

TEST_F(LockOrderTest, UnnamedLocksStayOutsideTheGraph) {
  ASSERT_FALSE(Acquire(&a_, "test.A").has_value());
  // nullptr name = opted out: no edge, no chain entry, no violation.
  EXPECT_FALSE(
      LockOrderRegistry::Instance().NoteAcquire(&b_, nullptr).has_value());
  LockOrderRegistry::Instance().NoteAcquired(&b_, nullptr);
  EXPECT_EQ(LockOrderRegistry::Instance().HeldByThisThread().size(), 1u);
  Release(&a_);
  EXPECT_EQ(LockOrderRegistry::Instance().EdgeCount(), 0u);
}

#ifdef TXREP_DEBUG_CHECKS
TEST_F(LockOrderTest, MutexHooksMaintainTheChain) {
  // In debug-checks builds the wrapper feeds the registry automatically.
  Mutex mu("test.hooked");
  mu.Lock();
  EXPECT_EQ(LockOrderRegistry::Instance().HeldByThisThread(),
            (std::vector<std::string>{"test.hooked"}));
  mu.Unlock();
  EXPECT_TRUE(LockOrderRegistry::Instance().HeldByThisThread().empty());
}

TEST_F(LockOrderTest, CondVarWaitKeepsChainTruthful) {
  // While blocked in CondVar::Wait the mutex is NOT held; the chain must say
  // so, or every lock taken by the waking thread would order against it.
  Mutex mu("test.cv_mu");
  CondVar cv(&mu);
  std::vector<std::string> seen_during_wait;
  std::thread waker([&] {
    mu.Lock();
    cv.NotifyAll();
    mu.Unlock();
  });
  mu.Lock();
  // Single timed wait: whether it times out or is notified, the chain must
  // be restored to exactly [test.cv_mu] afterwards.
  cv.WaitForMicros(50 * 1000);
  EXPECT_EQ(LockOrderRegistry::Instance().HeldByThisThread(),
            (std::vector<std::string>{"test.cv_mu"}));
  mu.Unlock();
  waker.join();
}
#endif  // TXREP_DEBUG_CHECKS

}  // namespace
}  // namespace txrep::check
