// Replica-process half of the two-process replication test: dials a
// TxRepSystem's ServeReplication endpoint over TCP, replays the stream into
// its own RemoteReplica (catalog over the wire), waits for the target LSN —
// riding out any connection kills the parent injects — and writes its store
// dump (hex) plus its connect count to a file for the parent to compare.
//
//   net_replica_helper <host> <port> <target_lsn> <dump_path>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "kv/kv_store.h"
#include "txrep/remote_replica.h"

namespace {

std::string ToHex(const std::string& bytes) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 5) {
    std::fprintf(stderr,
                 "usage: %s <host> <port> <target_lsn> <dump_path>\n",
                 argv[0]);
    return 2;
  }
  const std::string host = argv[1];
  const int port = std::atoi(argv[2]);
  const uint64_t target_lsn = std::strtoull(argv[3], nullptr, 10);
  const std::string dump_path = argv[4];

  txrep::RemoteReplicaOptions options;
  options.host = host;
  options.port = static_cast<uint16_t>(port);
  options.subscription.reconnect_backoff_micros = 10'000;
  options.subscription.max_connect_attempts = 500;  // ~5 s of dialing.
  txrep::RemoteReplica replica(std::move(options));

  txrep::Status started = replica.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "replica start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  if (!replica.WaitForLsn(target_lsn)) {
    std::fprintf(stderr, "replica stopped at LSN %llu of %llu: %s\n",
                 static_cast<unsigned long long>(replica.applied_lsn()),
                 static_cast<unsigned long long>(target_lsn),
                 replica.health().ToString().c_str());
    return 1;
  }
  const int64_t connects = replica.subscription()->connects();
  const txrep::kv::StoreDump dump = replica.cluster().Dump();
  replica.Stop();

  std::FILE* out = std::fopen(dump_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", dump_path.c_str());
    return 1;
  }
  std::fprintf(out, "connects %lld\n", static_cast<long long>(connects));
  for (const auto& [key, value] : dump) {
    std::fprintf(out, "%s %s\n", ToHex(key).c_str(), ToHex(value).c_str());
  }
  std::fclose(out);
  return 0;
}
