#include "workload/synthetic.h"

#include <set>

#include "gtest/gtest.h"
#include "test_util.h"

namespace txrep::workload {
namespace {

TEST(SyntheticTest, SchemaAndPopulation) {
  rel::Database db;
  SyntheticWorkload workload({.num_items = 123, .hot_range = 123, .seed = 1});
  TXREP_ASSERT_OK(workload.CreateSchema(db));
  TXREP_ASSERT_OK(workload.Populate(db));
  EXPECT_EQ(*db.TableSize("QTY_ITEM"), 123u);
}

TEST(SyntheticTest, UpdatesStayInHotRange) {
  rel::Database db;
  SyntheticWorkload workload({.num_items = 100, .hot_range = 7, .seed = 2});
  TXREP_ASSERT_OK(workload.CreateSchema(db));
  TXREP_ASSERT_OK(workload.Populate(db));
  std::set<int64_t> touched;
  for (int i = 0; i < 300; ++i) {
    rel::Statement stmt = workload.NextUpdate();
    const auto& update = std::get<rel::UpdateStatement>(stmt);
    ASSERT_EQ(update.where.size(), 1u);
    const int64_t id = update.where[0].operand.AsInt();
    EXPECT_GE(id, 1);
    EXPECT_LE(id, 7);
    touched.insert(id);
  }
  EXPECT_EQ(touched.size(), 7u);  // Full hot range exercised.
}

TEST(SyntheticTest, RunCommitsEveryUpdate) {
  rel::Database db;
  SyntheticWorkload workload({.num_items = 50, .hot_range = 50, .seed = 3});
  TXREP_ASSERT_OK(workload.CreateSchema(db));
  TXREP_ASSERT_OK(workload.Populate(db));
  const uint64_t before = db.log().LastLsn();
  TXREP_ASSERT_OK(workload.Run(db, 75));
  EXPECT_EQ(db.log().LastLsn(), before + 75);
}

TEST(SyntheticTest, NarrowerRangeMeansMoreRepeats) {
  SyntheticWorkload narrow({.num_items = 1000, .hot_range = 2, .seed = 4});
  SyntheticWorkload wide({.num_items = 1000, .hot_range = 1000, .seed = 4});
  auto distinct = [](SyntheticWorkload& w) {
    std::set<int64_t> ids;
    for (int i = 0; i < 200; ++i) {
      ids.insert(std::get<rel::UpdateStatement>(w.NextUpdate())
                     .where[0]
                     .operand.AsInt());
    }
    return ids.size();
  };
  EXPECT_LT(distinct(narrow), 3u);
  EXPECT_GT(distinct(wide), 100u);
}

}  // namespace
}  // namespace txrep::workload
