// The replica audit tool: clean replicas report consistent; every class of
// injected corruption is detected and described.

#include "qt/consistency_checker.h"

#include "codec/kv_keys.h"
#include "codec/row_codec.h"
#include "gtest/gtest.h"
#include "kv/inmemory_node.h"
#include "sql/interpreter.h"
#include "test_util.h"

namespace txrep::qt {
namespace {

using rel::Value;

class ConsistencyCheckerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TXREP_ASSERT_OK(sql::ExecuteSql(db_, R"sql(
      CREATE TABLE ITEM (I_ID INT PRIMARY KEY, I_TITLE VARCHAR(40),
                         I_COST DOUBLE);
      CREATE INDEX ON ITEM (I_TITLE);
      CREATE RANGE INDEX ON ITEM (I_COST);
      INSERT INTO ITEM VALUES (1, 'a', 10.0);
      INSERT INTO ITEM VALUES (2, 'b', 20.0);
      INSERT INTO ITEM VALUES (3, 'a', 30.0);
    )sql").status());
    translator_ = std::make_unique<QueryTranslator>(&db_.catalog(), blink_);
    TXREP_ASSERT_OK(translator_->LoadSnapshot(&store_, db_));
  }

  Result<ConsistencyReport> Check() {
    return CheckReplicaConsistency(store_, db_, *translator_);
  }

  blink::BlinkTreeOptions blink_;
  rel::Database db_;
  kv::InMemoryKvNode store_;
  std::unique_ptr<QueryTranslator> translator_;
};

TEST_F(ConsistencyCheckerTest, CleanReplicaIsConsistent) {
  Result<ConsistencyReport> report = Check();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->consistent());
  EXPECT_EQ(report->rows_checked, 3);
  EXPECT_GT(report->hash_postings_checked, 0);
  EXPECT_EQ(report->range_entries_checked, 3);
  EXPECT_NE(report->Summary().find("CONSISTENT"), std::string::npos);
}

TEST_F(ConsistencyCheckerTest, DetectsMissingRow) {
  TXREP_ASSERT_OK(store_.Delete("ITEM_2"));
  Result<ConsistencyReport> report = Check();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->consistent());
  EXPECT_NE(report->violations[0].find("missing row object ITEM_2"),
            std::string::npos);
}

TEST_F(ConsistencyCheckerTest, DetectsRowValueDrift) {
  rel::Row wrong = {Value::Int(2), Value::Str("tampered"), Value::Real(20.0)};
  TXREP_ASSERT_OK(store_.Put("ITEM_2", codec::EncodeRow(wrong)));
  Result<ConsistencyReport> report = Check();
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->consistent());
  EXPECT_NE(report->violations[0].find("row mismatch"), std::string::npos);
}

TEST_F(ConsistencyCheckerTest, DetectsCorruptRowBytes) {
  TXREP_ASSERT_OK(store_.Put("ITEM_1", "garbage"));
  Result<ConsistencyReport> report = Check();
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->consistent());
  EXPECT_NE(report->violations[0].find("undecodable row object"),
            std::string::npos);
}

TEST_F(ConsistencyCheckerTest, DetectsPostingDrift) {
  // Drop ITEM_3 from the 'a' posting list.
  const kv::Key index_key =
      codec::HashIndexKey("ITEM", "I_TITLE", Value::Str("a"));
  TXREP_ASSERT_OK(
      store_.Put(index_key, codec::EncodePostings({"ITEM_1"})));
  Result<ConsistencyReport> report = Check();
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->consistent());
  EXPECT_NE(report->violations[0].find("postings mismatch"),
            std::string::npos);
}

TEST_F(ConsistencyCheckerTest, DetectsMissingPostingObject) {
  TXREP_ASSERT_OK(store_.Delete(
      codec::HashIndexKey("ITEM", "I_TITLE", Value::Str("b"))));
  Result<ConsistencyReport> report = Check();
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->consistent());
  EXPECT_NE(report->violations[0].find("missing posting object"),
            std::string::npos);
}

TEST_F(ConsistencyCheckerTest, DetectsRangeIndexDrift) {
  blink::BlinkTree tree(&store_, "ITEM", "I_COST", blink_);
  TXREP_ASSERT_OK(tree.Remove(Value::Real(20.0), "ITEM_2"));
  Result<ConsistencyReport> report = Check();
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->consistent());
  EXPECT_NE(report->violations[0].find("range index"), std::string::npos);
}

TEST_F(ConsistencyCheckerTest, DetectsStrayObjects) {
  TXREP_ASSERT_OK(store_.Put("ITEM_999", codec::EncodeRow(
      {Value::Int(999), Value::Str("ghost"), Value::Real(1.0)})));
  Result<ConsistencyReport> report = Check();
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->consistent());
  // A stray row-shaped object decodes as neither a known row nor a valid
  // posting list -> flagged.
  bool found = false;
  for (const std::string& v : report->violations) {
    if (v.find("stray") != std::string::npos ||
        v.find("references unknown row") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace txrep::qt
