// Publisher agent + subscriber agent end-to-end over the broker.

#include <atomic>

#include "gtest/gtest.h"
#include "mw/broker.h"
#include "mw/publisher.h"
#include "mw/subscriber.h"
#include "rel/txlog.h"
#include "test_util.h"

namespace txrep::mw {
namespace {

rel::LogOp MakeOp(int64_t pk) {
  return rel::LogOp{rel::LogOpType::kInsert, "T", rel::Value::Int(pk),
                    {rel::Value::Int(pk)}};
}

TEST(PublisherTest, PumpOnceBatchesUpToLimit) {
  rel::TxLog log;
  for (int i = 0; i < 25; ++i) log.Append({MakeOp(i)});
  Broker broker;
  Broker::Subscription* sub = broker.Subscribe("txrep.log");
  PublisherAgent publisher(&log, &broker, {.topic = "txrep.log",
                                           .batch_size = 10,
                                           .poll_interval_micros = 100,
                                           .start_after_lsn = 0});
  EXPECT_EQ(*publisher.PumpOnce(), 10u);
  EXPECT_EQ(*publisher.PumpOnce(), 10u);
  EXPECT_EQ(*publisher.PumpOnce(), 5u);
  EXPECT_EQ(*publisher.PumpOnce(), 0u);
  EXPECT_EQ(publisher.shipped_lsn(), 25u);
  EXPECT_EQ(publisher.messages_published(), 3);
  broker.Flush();
  EXPECT_EQ(sub->Pending(), 3u);
}

TEST(PublisherTest, StartAfterLsnSkipsSnapshot) {
  rel::TxLog log;
  for (int i = 0; i < 10; ++i) log.Append({MakeOp(i)});
  Broker broker;
  PublisherAgent publisher(&log, &broker, {.topic = "t",
                                           .batch_size = 100,
                                           .poll_interval_micros = 100,
                                           .start_after_lsn = 7});
  EXPECT_EQ(*publisher.PumpOnce(), 3u);
}

TEST(PublisherTest, PumpAllShipsEverything) {
  rel::TxLog log;
  for (int i = 0; i < 37; ++i) log.Append({MakeOp(i)});
  Broker broker;
  PublisherAgent publisher(&log, &broker,
                           {.topic = "t", .batch_size = 5,
                            .poll_interval_micros = 100,
                            .start_after_lsn = 0});
  TXREP_ASSERT_OK(publisher.PumpAll());
  EXPECT_EQ(publisher.shipped_lsn(), 37u);
  EXPECT_EQ(publisher.messages_published(), 8);  // ceil(37/5).
}

TEST(SubscriberTest, ReceivesTransactionsInLsnOrder) {
  rel::TxLog log;
  for (int i = 1; i <= 50; ++i) log.Append({MakeOp(i)});
  Broker broker;
  std::vector<uint64_t> received;
  std::mutex mu;
  SubscriberAgent subscriber(&broker, "t",
                             [&](rel::LogTransaction txn) {
                               std::lock_guard<std::mutex> lock(mu);
                               received.push_back(txn.lsn);
                               return Status::OK();
                             });
  PublisherAgent publisher(&log, &broker,
                           {.topic = "t", .batch_size = 7,
                            .poll_interval_micros = 100,
                            .start_after_lsn = 0});
  TXREP_ASSERT_OK(publisher.PumpAll());
  ASSERT_TRUE(subscriber.WaitForLsn(50));
  broker.Shutdown();
  subscriber.Stop();
  ASSERT_EQ(received.size(), 50u);
  for (size_t i = 0; i < received.size(); ++i) {
    EXPECT_EQ(received[i], i + 1);
  }
  EXPECT_EQ(subscriber.applied_lsn(), 50u);
  TXREP_ASSERT_OK(subscriber.health());
}

TEST(SubscriberTest, SinkErrorTurnsUnhealthy) {
  rel::TxLog log;
  log.Append({MakeOp(1)});
  Broker broker;
  SubscriberAgent subscriber(&broker, "t", [](rel::LogTransaction) {
    return Status::Corruption("sink rejects");
  });
  PublisherAgent publisher(&log, &broker,
                           {.topic = "t", .batch_size = 10,
                            .poll_interval_micros = 100,
                            .start_after_lsn = 0});
  TXREP_ASSERT_OK(publisher.PumpAll());
  EXPECT_FALSE(subscriber.WaitForLsn(1));
  EXPECT_TRUE(subscriber.health().IsCorruption());
  broker.Shutdown();
}

TEST(SubscriberTest, MalformedPayloadTurnsUnhealthy) {
  Broker broker;
  SubscriberAgent subscriber(&broker, "t", [](rel::LogTransaction) {
    return Status::OK();
  });
  TXREP_ASSERT_OK(broker.Publish("t", "this is not a log batch"));
  EXPECT_FALSE(subscriber.WaitForLsn(1));
  EXPECT_TRUE(subscriber.health().IsCorruption());
  broker.Shutdown();
}

TEST(PublisherTest, BackgroundPumpShipsNewCommits) {
  rel::TxLog log;
  Broker broker;
  std::atomic<int> received{0};
  SubscriberAgent subscriber(&broker, "t", [&](rel::LogTransaction) {
    ++received;
    return Status::OK();
  });
  PublisherAgent publisher(&log, &broker,
                           {.topic = "t", .batch_size = 10,
                            .poll_interval_micros = 500,
                            .start_after_lsn = 0});
  publisher.Start();
  for (int i = 0; i < 20; ++i) log.Append({MakeOp(i)});
  ASSERT_TRUE(subscriber.WaitForLsn(20));
  publisher.Stop();
  broker.Shutdown();
  EXPECT_EQ(received.load(), 20);
}

}  // namespace
}  // namespace txrep::mw
