// Schedule exploration: for every seed, concurrent replay through the TM
// must byte-equal serial replay. The default sweep runs 200 seeds (override
// with TXREP_SCHEDULE_SEEDS for quick local runs or deeper soaks).

#include "check/schedule_explorer.h"

#include <cstdlib>

#include "gtest/gtest.h"
#include "test_util.h"

namespace txrep::check {
namespace {

int SeedsFromEnv(int fallback) {
  const char* env = std::getenv("TXREP_SCHEDULE_SEEDS");
  if (env == nullptr) return fallback;
  const int value = std::atoi(env);
  return value > 0 ? value : fallback;
}

TEST(ScheduleExplorerTest, SweepFindsNoDivergence) {
  ScheduleExplorerOptions options;
  options.base_seed = 1;
  options.schedules = SeedsFromEnv(200);
  options.txns_per_schedule = 30;
  options.audit_every = 8;

  ScheduleExplorer explorer(options);
  ScheduleReport report = explorer.Run();
  SCOPED_TRACE(report.Summary());

  EXPECT_EQ(report.schedules_run, options.schedules);
  std::string details;
  for (const ScheduleFailure& failure : report.failures) {
    details +=
        "\n  seed " + std::to_string(failure.seed) + ": " + failure.detail;
  }
  EXPECT_TRUE(report.ok()) << "diverging schedules:" << details;
  // The sweep must actually generate contention — a conflict-free sweep
  // would pass vacuously no matter how broken Algorithm 1 were.
  EXPECT_GT(report.conflicts + report.restarts, 0);
}

TEST(ScheduleExplorerTest, CrashRestartSweepFindsNoDivergence) {
  ScheduleExplorerOptions options;
  options.base_seed = 1;
  options.schedules = SeedsFromEnv(200);
  options.txns_per_schedule = 20;
  options.audit_every = 0;  // The plain sweep above covers the deep audit.
  options.crash_restart = true;
  options.scratch_dir = ::testing::TempDir() + "txrep_crash_sweep";

  ScheduleExplorer explorer(options);
  ScheduleReport report = explorer.Run();
  SCOPED_TRACE(report.Summary());

  EXPECT_EQ(report.schedules_run, options.schedules);
  std::string details;
  for (const ScheduleFailure& failure : report.failures) {
    details +=
        "\n  seed " + std::to_string(failure.seed) + ": " + failure.detail;
  }
  EXPECT_TRUE(report.ok()) << "diverging crash-restart schedules:" << details;
}

TEST(ScheduleExplorerTest, BatchedApplySweepFindsNoDivergence) {
  // Batched-apply mode: the concurrent replica is a seed-derived KvCluster
  // and the TM dispatches coalesced write sets in seed-derived chunks
  // (adaptive on some seeds). Concurrent batched replay must still byte-
  // equal op-at-a-time serial replay on every seed.
  ScheduleExplorerOptions options;
  options.base_seed = 1;
  options.schedules = SeedsFromEnv(200);
  options.txns_per_schedule = 30;
  options.audit_every = 8;
  options.batched_apply = true;

  ScheduleExplorer explorer(options);
  ScheduleReport report = explorer.Run();
  SCOPED_TRACE(report.Summary());

  EXPECT_EQ(report.schedules_run, options.schedules);
  std::string details;
  for (const ScheduleFailure& failure : report.failures) {
    details +=
        "\n  seed " + std::to_string(failure.seed) + ": " + failure.detail;
  }
  EXPECT_TRUE(report.ok()) << "diverging batched schedules:" << details;
  EXPECT_GT(report.conflicts + report.restarts, 0);
}

TEST(ScheduleExplorerTest, BatchedCrashRestartSweepFindsNoDivergence) {
  // Crash + recovery with batching on both the crashing TM and the tail
  // replay applier: recovery must land byte-identical regardless of how the
  // write sets were chunked before and after the crash.
  ScheduleExplorerOptions options;
  options.base_seed = 1;
  options.schedules = SeedsFromEnv(200);
  options.txns_per_schedule = 20;
  options.audit_every = 0;
  options.crash_restart = true;
  options.batched_apply = true;
  options.scratch_dir = ::testing::TempDir() + "txrep_batched_crash_sweep";

  ScheduleExplorer explorer(options);
  ScheduleReport report = explorer.Run();
  SCOPED_TRACE(report.Summary());

  EXPECT_EQ(report.schedules_run, options.schedules);
  std::string details;
  for (const ScheduleFailure& failure : report.failures) {
    details +=
        "\n  seed " + std::to_string(failure.seed) + ": " + failure.detail;
  }
  EXPECT_TRUE(report.ok())
      << "diverging batched crash-restart schedules:" << details;
}

TEST(ScheduleExplorerTest, TracedSweepStaysByteIdentical) {
  // Acceptance bar for the tracing tentpole: turning the tracer on (with a
  // seed-derived sampling period) must not perturb replication — concurrent
  // replay still byte-equals serial replay on every seed. The explorer also
  // fails any sampled schedule whose flight recorder stayed empty, so this
  // cannot pass by tracing silently never engaging.
  ScheduleExplorerOptions options;
  options.base_seed = 1;
  options.schedules = SeedsFromEnv(200);
  options.txns_per_schedule = 30;
  options.audit_every = 8;
  options.traced = true;

  ScheduleExplorer explorer(options);
  ScheduleReport report = explorer.Run();
  SCOPED_TRACE(report.Summary());

  EXPECT_EQ(report.schedules_run, options.schedules);
  std::string details;
  for (const ScheduleFailure& failure : report.failures) {
    details +=
        "\n  seed " + std::to_string(failure.seed) + ": " + failure.detail;
  }
  EXPECT_TRUE(report.ok()) << "diverging traced schedules:" << details;
  EXPECT_GT(report.conflicts + report.restarts, 0);
}

TEST(ScheduleExplorerTest, BatchedSeedIsReproducible) {
  ScheduleExplorer explorer({.schedules = 0, .batched_apply = true});
  TXREP_EXPECT_OK(explorer.RunOne(42));
  TXREP_EXPECT_OK(explorer.RunOne(42));
}

TEST(ScheduleExplorerTest, CrashRestartRequiresScratchDir) {
  ScheduleExplorerOptions options;
  options.schedules = 1;
  options.crash_restart = true;  // But no scratch_dir.
  ScheduleExplorer explorer(options);
  EXPECT_TRUE(explorer.RunOne(1).IsInvalidArgument());
}

TEST(ScheduleExplorerTest, OptLatchSweepFindsNoDivergence) {
  // Acceptance bar for the optimistic version-latch tentpole: with opt_latch
  // mode on, (a) interleaved B-link index probes run full scans over their
  // torn buffered views (byte-equivalence oracle unchanged — so optimistic
  // reads may not perturb replay), and (b) each schedule's scratch-store
  // hammer races readers against tree writers plus a BatchDispatcher. The
  // blink_read_events counter must be nonzero — the protocol engaging is
  // part of the contract, not a nice-to-have.
  ScheduleExplorerOptions options;
  options.base_seed = 1;
  options.schedules = SeedsFromEnv(200);
  options.txns_per_schedule = 30;
  options.audit_every = 8;
  options.batched_apply = true;
  options.opt_latch = true;

  ScheduleExplorer explorer(options);
  ScheduleReport report = explorer.Run();
  SCOPED_TRACE(report.Summary());

  EXPECT_EQ(report.schedules_run, options.schedules);
  std::string details;
  for (const ScheduleFailure& failure : report.failures) {
    details +=
        "\n  seed " + std::to_string(failure.seed) + ": " + failure.detail;
  }
  EXPECT_TRUE(report.ok()) << "diverging opt-latch schedules:" << details;
  EXPECT_GT(report.conflicts + report.restarts, 0);
  EXPECT_GT(report.blink_read_events, 0);
}

TEST(ScheduleExplorerTest, SingleSeedIsReproducible) {
  ScheduleExplorer explorer({.base_seed = 0, .schedules = 0});
  TXREP_EXPECT_OK(explorer.RunOne(42));
  TXREP_EXPECT_OK(explorer.RunOne(42));  // No state leaks between runs.
}

TEST(ScheduleExplorerTest, SummaryMentionsAllCounters) {
  ScheduleReport report;
  report.schedules_run = 3;
  report.transactions_replayed = 90;
  report.failures.push_back({7, "boom"});
  const std::string summary = report.Summary();
  EXPECT_NE(summary.find("schedules=3"), std::string::npos);
  EXPECT_NE(summary.find("txns=90"), std::string::npos);
  EXPECT_NE(summary.find("failures=1"), std::string::npos);
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace txrep::check
