// Parameterized structural sweep of the B-link tree: fanouts from minimal to
// huge, insertion orders from friendly to hostile, with and without heavy
// value duplication; invariants and scan contents must hold everywhere.

#include <algorithm>
#include <set>
#include <vector>

#include "blink/blink_tree.h"
#include "common/random.h"
#include "gtest/gtest.h"
#include "kv/inmemory_node.h"
#include "test_util.h"

namespace txrep::blink {
namespace {

using rel::Value;

enum class InsertOrder { kSequential, kReverse, kShuffled, kDuplicateHeavy };

struct FanoutCase {
  size_t max_node_keys;
  InsertOrder order;
  int entries;
  const char* name;
};

std::ostream& operator<<(std::ostream& os, const FanoutCase& c) {
  return os << c.name;
}

class BlinkFanoutTest : public ::testing::TestWithParam<FanoutCase> {};

TEST_P(BlinkFanoutTest, InvariantsAndContentAcrossShapes) {
  const FanoutCase& c = GetParam();
  kv::InMemoryKvNode store;
  BlinkTree tree(&store, "T", "C", {.max_node_keys = c.max_node_keys});
  TXREP_ASSERT_OK(tree.Init());

  // Build (value, row_key) pairs per the case's order.
  std::vector<std::pair<int64_t, std::string>> entries;
  entries.reserve(c.entries);
  for (int i = 0; i < c.entries; ++i) {
    if (c.order == InsertOrder::kDuplicateHeavy) {
      entries.emplace_back(i % 10, "r" + std::to_string(i));
    } else {
      entries.emplace_back(i, "r" + std::to_string(i));
    }
  }
  switch (c.order) {
    case InsertOrder::kSequential:
    case InsertOrder::kDuplicateHeavy:
      break;
    case InsertOrder::kReverse:
      std::reverse(entries.begin(), entries.end());
      break;
    case InsertOrder::kShuffled: {
      Random rng(c.max_node_keys * 7919 + c.entries);
      rng.Shuffle(entries);
      break;
    }
  }

  for (const auto& [value, row_key] : entries) {
    TXREP_ASSERT_OK(tree.Insert(Value::Int(value), row_key));
  }
  TXREP_ASSERT_OK(tree.Validate());
  ASSERT_EQ(*tree.EntryCount(), static_cast<size_t>(c.entries));

  // Full scan returns everything in composite-key order.
  Result<std::vector<EntryKey>> all =
      tree.RangeScanBounds(std::nullopt, std::nullopt);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), static_cast<size_t>(c.entries));
  for (size_t i = 1; i < all->size(); ++i) {
    ASSERT_LT((*all)[i - 1], (*all)[i]) << "scan output unsorted at " << i;
  }

  // Point membership for a sample.
  for (int i = 0; i < c.entries; i += std::max(1, c.entries / 37)) {
    const auto& [value, row_key] = entries[i];
    ASSERT_TRUE(*tree.Contains(Value::Int(value), row_key));
  }

  // Remove a deterministic half, re-validate, re-check membership.
  std::set<size_t> removed;
  for (size_t i = 0; i < entries.size(); i += 2) {
    const auto& [value, row_key] = entries[i];
    TXREP_ASSERT_OK(tree.Remove(Value::Int(value), row_key));
    removed.insert(i);
  }
  TXREP_ASSERT_OK(tree.Validate());
  ASSERT_EQ(*tree.EntryCount(), entries.size() - removed.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    const auto& [value, row_key] = entries[i];
    ASSERT_EQ(*tree.Contains(Value::Int(value), row_key),
              !removed.contains(i));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlinkFanoutTest,
    ::testing::Values(
        FanoutCase{3, InsertOrder::kSequential, 300, "fanout3_sequential"},
        FanoutCase{3, InsertOrder::kReverse, 300, "fanout3_reverse"},
        FanoutCase{3, InsertOrder::kShuffled, 300, "fanout3_shuffled"},
        FanoutCase{4, InsertOrder::kDuplicateHeavy, 400, "fanout4_dupes"},
        FanoutCase{8, InsertOrder::kShuffled, 800, "fanout8_shuffled"},
        FanoutCase{8, InsertOrder::kReverse, 800, "fanout8_reverse"},
        FanoutCase{32, InsertOrder::kShuffled, 2000, "fanout32_shuffled"},
        FanoutCase{128, InsertOrder::kSequential, 1000, "fanout128_seq"},
        FanoutCase{128, InsertOrder::kDuplicateHeavy, 1500, "fanout128_dupes"}),
    [](const ::testing::TestParamInfo<FanoutCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace txrep::blink
