#include "common/blocking_queue.h"

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace txrep {
namespace {

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q;
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.Push(i));
  for (int i = 0; i < 10; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BlockingQueueTest, TryPopEmptyReturnsNothing) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BlockingQueueTest, CloseDrainsThenEnds) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_FALSE(q.Push(3));
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, BoundedTryPushRespectsCapacity) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  q.Pop();
  EXPECT_TRUE(q.TryPush(3));
}

TEST(BlockingQueueTest, BoundedPushBlocksUntilSpace) {
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.Push(2);  // Blocks until consumer pops.
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(*q.Pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(*q.Pop(), 2);
}

TEST(BlockingQueueTest, PopBlocksUntilPush) {
  BlockingQueue<int> q;
  std::thread consumer([&] {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 99);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Push(99);
  consumer.join();
}

TEST(BlockingQueueTest, CloseWakesBlockedPop) {
  BlockingQueue<int> q;
  std::thread consumer([&] { EXPECT_FALSE(q.Pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  consumer.join();
}

TEST(BlockingQueueTest, MpmcNoLossNoDuplication) {
  BlockingQueue<int> q(64);
  constexpr int kProducers = 4, kPerProducer = 500;
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.Push(p * kPerProducer + i);
    });
  }
  std::atomic<int> total{0};
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        auto v = q.Pop();
        if (!v.has_value()) return;
        seen[*v]++;
        total++;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.Close();
  for (size_t i = kProducers; i < threads.size(); ++i) threads[i].join();
  EXPECT_EQ(total.load(), kProducers * kPerProducer);
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

}  // namespace
}  // namespace txrep
