#include "common/blocking_queue.h"

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace txrep {
namespace {

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q;
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.Push(i));
  for (int i = 0; i < 10; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BlockingQueueTest, TryPopEmptyReturnsNothing) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BlockingQueueTest, CloseDrainsThenEnds) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_FALSE(q.Push(3));
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, BoundedTryPushRespectsCapacity) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  q.Pop();
  EXPECT_TRUE(q.TryPush(3));
}

TEST(BlockingQueueTest, BoundedPushBlocksUntilSpace) {
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.Push(2);  // Blocks until consumer pops.
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(*q.Pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(*q.Pop(), 2);
}

TEST(BlockingQueueTest, PopBlocksUntilPush) {
  BlockingQueue<int> q;
  std::thread consumer([&] {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 99);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Push(99);
  consumer.join();
}

TEST(BlockingQueueTest, CloseWakesBlockedPop) {
  BlockingQueue<int> q;
  std::thread consumer([&] { EXPECT_FALSE(q.Pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  consumer.join();
}

TEST(BlockingQueueTest, CloseWakesBlockedBoundedPush) {
  // A producer blocked on a full bounded queue must not hang across
  // shutdown: Close() has to wake it and make the push fail.
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> push_returned{false};
  std::atomic<bool> push_result{true};
  std::thread producer([&] {
    push_result = q.Push(2);  // Blocks: queue is full.
    push_returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(push_returned.load());
  q.Close();
  producer.join();
  EXPECT_TRUE(push_returned.load());
  EXPECT_FALSE(push_result.load());  // The blocked push failed, item dropped.
  EXPECT_EQ(*q.Pop(), 1);            // Pre-close item still drains.
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, CloseWakesAllBlockedConsumers) {
  BlockingQueue<int> q;
  std::atomic<int> ended{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 4; ++i) {
    consumers.emplace_back([&] {
      EXPECT_FALSE(q.Pop().has_value());
      ended++;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(ended.load(), 4);
}

TEST(BlockingQueueTest, CloseIsIdempotent) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Close();
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, PushVariantsAllFailAfterClose) {
  BlockingQueue<int> q;
  q.Close();
  EXPECT_FALSE(q.Push(1));
  EXPECT_FALSE(q.TryPush(2));
  EXPECT_FALSE(q.PushFront(3));
  EXPECT_EQ(q.size(), 0u);  // Nothing leaked into a closed queue.
}

TEST(BlockingQueueTest, PushFrontJumpsTheLine) {
  BlockingQueue<int> q;
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  ASSERT_TRUE(q.PushFront(99));
  EXPECT_EQ(*q.Pop(), 99);
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
}

TEST(BlockingQueueTest, MpmcNoLossNoDuplication) {
  BlockingQueue<int> q(64);
  constexpr int kProducers = 4, kPerProducer = 500;
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.Push(p * kPerProducer + i);
    });
  }
  std::atomic<int> total{0};
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        auto v = q.Pop();
        if (!v.has_value()) return;
        seen[*v]++;
        total++;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.Close();
  for (size_t i = kProducers; i < threads.size(); ++i) threads[i].join();
  EXPECT_EQ(total.load(), kProducers * kPerProducer);
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

}  // namespace
}  // namespace txrep
