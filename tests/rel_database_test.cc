#include "rel/database.h"

#include <thread>

#include "gtest/gtest.h"
#include "test_util.h"

namespace txrep::rel {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<TableSchema> item =
        TableSchema::Create("ITEM",
                            {{"I_ID", ValueType::kInt64},
                             {"I_TITLE", ValueType::kString},
                             {"I_COST", ValueType::kDouble}},
                            "I_ID");
    ASSERT_TRUE(item.ok());
    TXREP_ASSERT_OK(db_.CreateTable(*item));
  }

  InsertStatement Insert(int64_t id, const std::string& title, double cost) {
    return InsertStatement{
        "ITEM", {}, {Value::Int(id), Value::Str(title), Value::Real(cost)}};
  }

  Database db_;
};

TEST_F(DatabaseTest, InsertCommitsAndLogs) {
  Result<CommitInfo> info = db_.ExecuteTransaction({Insert(1, "a", 10.0)});
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->lsn, 1u);
  std::vector<LogTransaction> log = db_.log().ReadSince(0);
  ASSERT_EQ(log.size(), 1u);
  ASSERT_EQ(log[0].ops.size(), 1u);
  EXPECT_EQ(log[0].ops[0].type, LogOpType::kInsert);
  EXPECT_EQ(log[0].ops[0].table, "ITEM");
  EXPECT_EQ(log[0].ops[0].pk, Value::Int(1));
}

TEST_F(DatabaseTest, UpdateLogsAfterImage) {
  TXREP_ASSERT_OK(db_.ExecuteTransaction({Insert(1, "a", 10.0)}).status());
  UpdateStatement update{
      "ITEM",
      {{"I_COST", Value::Real(99.0)}},
      {Predicate{"I_ID", PredicateOp::kEq, Value::Int(1), {}}}};
  TXREP_ASSERT_OK(db_.ExecuteTransaction({update}).status());
  std::vector<LogTransaction> log = db_.log().ReadSince(1);
  ASSERT_EQ(log.size(), 1u);
  ASSERT_EQ(log[0].ops.size(), 1u);
  EXPECT_EQ(log[0].ops[0].type, LogOpType::kUpdate);
  EXPECT_DOUBLE_EQ(log[0].ops[0].after[2].AsDouble(), 99.0);
  EXPECT_EQ(log[0].ops[0].after[1].AsString(), "a");  // Full after-image.
}

TEST_F(DatabaseTest, DeleteLogsPkOnly) {
  TXREP_ASSERT_OK(db_.ExecuteTransaction({Insert(1, "a", 10.0)}).status());
  DeleteStatement del{
      "ITEM", {Predicate{"I_ID", PredicateOp::kEq, Value::Int(1), {}}}};
  TXREP_ASSERT_OK(db_.ExecuteTransaction({del}).status());
  std::vector<LogTransaction> log = db_.log().ReadSince(1);
  ASSERT_EQ(log[0].ops.size(), 1u);
  EXPECT_EQ(log[0].ops[0].type, LogOpType::kDelete);
  EXPECT_TRUE(log[0].ops[0].after.empty());
}

TEST_F(DatabaseTest, MultiStatementTransactionIsOneLogEntry) {
  Result<CommitInfo> info = db_.ExecuteTransaction(
      {Insert(1, "a", 1.0), Insert(2, "b", 2.0), Insert(3, "c", 3.0)});
  ASSERT_TRUE(info.ok());
  std::vector<LogTransaction> log = db_.log().ReadSince(0);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].ops.size(), 3u);
}

TEST_F(DatabaseTest, FailedTransactionRollsBackCompletely) {
  TXREP_ASSERT_OK(db_.ExecuteTransaction({Insert(1, "a", 1.0)}).status());
  // Second statement fails (duplicate PK): the first must be undone.
  Result<CommitInfo> info =
      db_.ExecuteTransaction({Insert(2, "b", 2.0), Insert(1, "dup", 0.0)});
  EXPECT_TRUE(info.status().IsAlreadyExists());
  EXPECT_EQ(*db_.TableSize("ITEM"), 1u);
  EXPECT_EQ(db_.log().size(), 1u);  // No log entry for the failed txn.
}

TEST_F(DatabaseTest, RollbackRestoresUpdatesAndDeletes) {
  TXREP_ASSERT_OK(
      db_.ExecuteTransaction({Insert(1, "a", 1.0), Insert(2, "b", 2.0)})
          .status());
  UpdateStatement update{
      "ITEM",
      {{"I_TITLE", Value::Str("changed")}},
      {Predicate{"I_ID", PredicateOp::kEq, Value::Int(1), {}}}};
  DeleteStatement del{
      "ITEM", {Predicate{"I_ID", PredicateOp::kEq, Value::Int(2), {}}}};
  Result<CommitInfo> info =
      db_.ExecuteTransaction({update, del, Insert(1, "dup", 0.0)});
  EXPECT_FALSE(info.ok());
  // Original state restored.
  Result<std::vector<Row>> rows = db_.Query(SelectStatement{"ITEM", {}, {}});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][1].AsString(), "a");
}

TEST_F(DatabaseTest, SelectInsideTransactionSeesEarlierWrites) {
  Result<CommitInfo> info = db_.ExecuteTransaction(
      {Insert(1, "a", 1.0), SelectStatement{"ITEM", {}, {}}});
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info->select_results.size(), 1u);
  EXPECT_EQ(info->select_results[0].size(), 1u);
}

TEST_F(DatabaseTest, QueryWithProjection) {
  TXREP_ASSERT_OK(db_.ExecuteTransaction({Insert(1, "a", 7.5)}).status());
  Result<std::vector<Row>> rows = db_.Query(SelectStatement{
      "ITEM",
      {"I_COST", "I_ID"},
      {Predicate{"I_ID", PredicateOp::kEq, Value::Int(1), {}}}});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_DOUBLE_EQ((*rows)[0][0].AsDouble(), 7.5);
  EXPECT_EQ((*rows)[0][1].AsInt(), 1);
}

TEST_F(DatabaseTest, ReadOnlyTransactionNotLogged) {
  TXREP_ASSERT_OK(db_.ExecuteTransaction({Insert(1, "a", 1.0)}).status());
  Result<CommitInfo> info =
      db_.ExecuteTransaction({SelectStatement{"ITEM", {}, {}}});
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->lsn, 0u);
  EXPECT_EQ(db_.log().size(), 1u);
}

TEST_F(DatabaseTest, InsertWithColumnListFillsNulls) {
  InsertStatement partial{"ITEM",
                          {"I_ID", "I_COST"},
                          {Value::Int(5), Value::Real(3.0)}};
  TXREP_ASSERT_OK(db_.ExecuteTransaction({partial}).status());
  Result<Row> row = db_.Query(SelectStatement{
      "ITEM", {}, {Predicate{"I_ID", PredicateOp::kEq, Value::Int(5), {}}}})
                        .value()[0];
  EXPECT_TRUE((*row)[1].is_null());
}

TEST_F(DatabaseTest, UpdateByNonKeyPredicateTouchesAllMatches) {
  TXREP_ASSERT_OK(
      db_.ExecuteTransaction({Insert(1, "x", 5.0), Insert(2, "x", 5.0),
                              Insert(3, "y", 5.0)})
          .status());
  UpdateStatement update{
      "ITEM",
      {{"I_COST", Value::Real(9.0)}},
      {Predicate{"I_TITLE", PredicateOp::kEq, Value::Str("x"), {}}}};
  Result<CommitInfo> info = db_.ExecuteTransaction({update});
  ASSERT_TRUE(info.ok());
  std::vector<LogTransaction> log = db_.log().ReadSince(1);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].ops.size(), 2u);  // One log op per updated row.
}

TEST_F(DatabaseTest, UnknownTableErrors) {
  Result<CommitInfo> info = db_.ExecuteTransaction(
      {InsertStatement{"NOPE", {}, {Value::Int(1)}}});
  EXPECT_TRUE(info.status().IsNotFound());
}

TEST_F(DatabaseTest, CreateIndexesOnPopulatedTable) {
  TXREP_ASSERT_OK(db_.ExecuteTransaction({Insert(1, "a", 4.0)}).status());
  TXREP_ASSERT_OK(db_.CreateHashIndex("ITEM", "I_TITLE"));
  TXREP_ASSERT_OK(db_.CreateRangeIndex("ITEM", "I_COST"));
  const TableSchema& schema = **db_.catalog().GetTable("ITEM");
  EXPECT_TRUE(schema.HasHashIndexOn(1));
  EXPECT_TRUE(schema.HasRangeIndexOn(2));
  // The backfilled hash index serves queries.
  Result<std::vector<Row>> rows = db_.Query(SelectStatement{
      "ITEM", {}, {Predicate{"I_TITLE", PredicateOp::kEq, Value::Str("a"), {}}}});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST_F(DatabaseTest, ConcurrentClientsSerializeCleanly) {
  // Multiple client threads hammer the database; every commit must appear in
  // the log exactly once, in a dense LSN sequence, and the final state must
  // reflect all inserts.
  constexpr int kThreads = 4, kPerThread = 100;
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([this, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int64_t id = t * kPerThread + i + 1000;
        Result<CommitInfo> info = db_.ExecuteTransaction(
            {Insert(id, "c" + std::to_string(t), 1.0)});
        ASSERT_TRUE(info.ok());
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(*db_.TableSize("ITEM"), kThreads * kPerThread);
  std::vector<LogTransaction> log = db_.log().ReadSince(0);
  ASSERT_EQ(log.size(), static_cast<size_t>(kThreads * kPerThread));
  for (size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log[i].lsn, i + 1);
  }
}

TEST_F(DatabaseTest, DumpAllReflectsState) {
  TXREP_ASSERT_OK(
      db_.ExecuteTransaction({Insert(2, "b", 2.0), Insert(1, "a", 1.0)})
          .status());
  auto dump = db_.DumpAll();
  ASSERT_EQ(dump.size(), 1u);
  ASSERT_EQ(dump["ITEM"].size(), 2u);
  EXPECT_EQ(dump["ITEM"][0][0].AsInt(), 1);  // PK order.
}

}  // namespace
}  // namespace txrep::rel
