#include <limits>

#include "codec/encoding.h"
#include "codec/kv_keys.h"
#include "codec/log_codec.h"
#include "codec/row_codec.h"
#include "codec/value_codec.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace txrep::codec {
namespace {

using rel::Value;

TEST(EncodingTest, Varint64RoundTrip) {
  for (uint64_t v : std::initializer_list<uint64_t>{
           0, 1, 127, 128, 300, uint64_t{1} << 32,
           std::numeric_limits<uint64_t>::max()}) {
    std::string buf;
    AppendVarint64(buf, v);
    std::string_view view = buf;
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(&view, &decoded));
    EXPECT_EQ(decoded, v);
    EXPECT_TRUE(view.empty());
  }
}

TEST(EncodingTest, VarintUnderflowFails) {
  std::string buf;
  AppendVarint64(buf, 1ULL << 40);
  buf.pop_back();
  std::string_view view = buf;
  uint64_t v;
  EXPECT_FALSE(GetVarint64(&view, &v));
}

TEST(EncodingTest, Fixed64AndDouble) {
  std::string buf;
  AppendFixed64(buf, 0xDEADBEEFCAFEF00DULL);
  AppendDouble(buf, -123.456);
  std::string_view view = buf;
  uint64_t u;
  double d;
  ASSERT_TRUE(GetFixed64(&view, &u));
  ASSERT_TRUE(GetDouble(&view, &d));
  EXPECT_EQ(u, 0xDEADBEEFCAFEF00DULL);
  EXPECT_DOUBLE_EQ(d, -123.456);
}

TEST(EncodingTest, LengthPrefixedBinarySafe) {
  std::string payload("\x00\x01\xff", 3);
  std::string buf;
  AppendLengthPrefixed(buf, payload);
  std::string_view view = buf;
  std::string_view out;
  ASSERT_TRUE(GetLengthPrefixed(&view, &out));
  EXPECT_EQ(out, payload);
}

TEST(EncodingTest, ZigZag) {
  for (int64_t v : std::initializer_list<int64_t>{
           0, 1, -1, 63, -64, std::numeric_limits<int64_t>::max(),
           std::numeric_limits<int64_t>::min()}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
}

TEST(ValueCodecTest, RoundTripAllTypes) {
  for (const Value& v :
       {Value::Null(), Value::Int(-42), Value::Int(1LL << 60),
        Value::Real(3.14159), Value::Real(-0.0), Value::Str(""),
        Value::Str("hello _%! world")}) {
    std::string buf;
    AppendValue(buf, v);
    std::string_view view = buf;
    Value decoded;
    ASSERT_TRUE(GetValue(&view, &decoded));
    EXPECT_EQ(decoded, v) << v.ToString();
    EXPECT_TRUE(view.empty());
  }
}

TEST(ValueCodecTest, RejectsBadTag) {
  std::string buf = "\x09";
  std::string_view view = buf;
  Value v;
  EXPECT_FALSE(GetValue(&view, &v));
}

TEST(ValueCodecTest, KeyEncodeIntIsDecimal) {
  EXPECT_EQ(KeyEncodeValue(Value::Int(100)), "100");
  EXPECT_EQ(KeyEncodeValue(Value::Int(-7)), "-7");
}

TEST(ValueCodecTest, KeyEncodeStringEscapesSeparators) {
  const std::string enc = KeyEncodeValue(Value::Str("a_b c!"));
  EXPECT_EQ(enc.find('_'), std::string::npos);
  EXPECT_EQ(enc.find(' '), std::string::npos);
  EXPECT_EQ(enc.find('!'), std::string::npos);
  EXPECT_EQ(enc, "a%5Fb%20c%21");
}

TEST(ValueCodecTest, KeyEncodeInjectivePerType) {
  EXPECT_NE(KeyEncodeValue(Value::Str("a_b")), KeyEncodeValue(Value::Str("a%5Fb")));
  EXPECT_NE(KeyEncodeValue(Value::Real(1.0)), KeyEncodeValue(Value::Real(1.0000001)));
}

TEST(KvKeysTest, PaperLayout) {
  EXPECT_EQ(RowKey("ITEM", Value::Int(1)), "ITEM_1");
  EXPECT_EQ(HashIndexKey("ITEM", "COST", Value::Int(100)), "ITEM_COST_100");
}

TEST(KvKeysTest, UnderscoredIdentifiersCannotCollide) {
  // ORDER_LINE.QTY vs ORDER.LINE_QTY must produce distinct keys.
  EXPECT_NE(HashIndexKey("ORDER_LINE", "QTY", Value::Int(1)),
            HashIndexKey("ORDER", "LINE_QTY", Value::Int(1)));
  // Row key of table "T" pk "A_1" (string) vs hash key of T.A value 1.
  EXPECT_NE(RowKey("T", Value::Str("A_1")),
            HashIndexKey("T", "A", Value::Int(1)));
}

TEST(KvKeysTest, BlinkKeysUseReservedPrefix) {
  EXPECT_EQ(BlinkNodeKey("ITEM", "I_COST", 7), "!b_ITEM_I%5FCOST_7");
  EXPECT_EQ(BlinkMetaKey("ITEM", "I_COST"), "!bmeta_ITEM_I%5FCOST");
}

TEST(RowCodecTest, RoundTrip) {
  rel::Row row = {Value::Int(1), Value::Str("x"), Value::Null(),
                  Value::Real(2.5)};
  Result<rel::Row> decoded = DecodeRow(EncodeRow(row));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, row);
}

TEST(RowCodecTest, EmptyRow) {
  Result<rel::Row> decoded = DecodeRow(EncodeRow({}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(RowCodecTest, TrailingBytesAreCorruption) {
  std::string bytes = EncodeRow({Value::Int(1)});
  bytes.push_back('x');
  EXPECT_TRUE(DecodeRow(bytes).status().IsCorruption());
}

TEST(RowCodecTest, TruncationIsCorruption) {
  std::string bytes = EncodeRow({Value::Str("hello")});
  EXPECT_TRUE(DecodeRow(std::string_view(bytes).substr(0, bytes.size() - 2))
                  .status()
                  .IsCorruption());
}

TEST(PostingsCodecTest, SortsAndDedupes) {
  std::string bytes = EncodePostings({"b", "a", "b", "c"});
  Result<std::vector<std::string>> decoded = DecodePostings(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(PostingsCodecTest, EmptyList) {
  Result<std::vector<std::string>> decoded = DecodePostings(EncodePostings({}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(LogCodecTest, BatchRoundTrip) {
  rel::LogTransaction t1;
  t1.lsn = 5;
  t1.commit_micros = 123456789;
  t1.ops.push_back(rel::LogOp{rel::LogOpType::kInsert, "ITEM", Value::Int(1),
                              {Value::Int(1), Value::Str("a")}});
  t1.ops.push_back(rel::LogOp{rel::LogOpType::kDelete, "ITEM", Value::Int(2),
                              {}});
  rel::LogTransaction t2;
  t2.lsn = 6;
  t2.ops.push_back(rel::LogOp{rel::LogOpType::kUpdate, "B", Value::Str("k"),
                              {Value::Str("k"), Value::Real(2.0)}});

  Result<std::vector<rel::LogTransaction>> decoded =
      DecodeLogBatch(EncodeLogBatch({t1, t2}));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].lsn, 5u);
  EXPECT_EQ((*decoded)[0].commit_micros, 123456789);
  ASSERT_EQ((*decoded)[0].ops.size(), 2u);
  EXPECT_EQ((*decoded)[0].ops[0], t1.ops[0]);
  EXPECT_EQ((*decoded)[0].ops[1], t1.ops[1]);
  EXPECT_EQ((*decoded)[1].ops[0], t2.ops[0]);
}

TEST(LogCodecTest, CorruptionDetected) {
  rel::LogTransaction t;
  t.lsn = 1;
  t.ops.push_back(rel::LogOp{rel::LogOpType::kInsert, "T", Value::Int(1),
                             {Value::Int(1)}});
  std::string bytes = EncodeLogBatch({t});
  bytes.push_back('x');
  EXPECT_TRUE(DecodeLogBatch(bytes).status().IsCorruption());
  EXPECT_TRUE(DecodeLogBatch(std::string_view(bytes).substr(0, 3))
                  .status()
                  .IsCorruption());
}

}  // namespace
}  // namespace txrep::codec
