#include "common/histogram.h"

#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace txrep {
namespace {

TEST(HistogramTest, EmptyReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int64_t v : {10, 20, 30, 40, 50}) h.Record(v);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.min(), 10);
  EXPECT_EQ(h.max(), 50);
  EXPECT_DOUBLE_EQ(h.Mean(), 30.0);
}

TEST(HistogramTest, PercentileMonotoneAndBounded) {
  Histogram h;
  for (int64_t v = 1; v <= 1000; ++v) h.Record(v);
  double prev = 0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    double p = h.Percentile(q);
    EXPECT_GE(p, prev);
    EXPECT_LE(p, 1000.0);
    prev = p;
  }
  // Median of 1..1000 lands within the right power-of-two bucket.
  EXPECT_GT(h.Percentile(0.5), 250.0);
  EXPECT_LT(h.Percentile(0.5), 800.0);
}

TEST(HistogramTest, NegativeClampsToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 0);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, ToStringMentionsCount) {
  Histogram h;
  h.Record(7);
  EXPECT_NE(h.ToString().find("count=1"), std::string::npos);
}

TEST(HistogramTest, ConcurrentRecordsAllCounted) {
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 1000; ++i) h.Record(i);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), 4000);
}

}  // namespace
}  // namespace txrep
