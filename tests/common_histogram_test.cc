#include "common/histogram.h"

#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace txrep {
namespace {

TEST(HistogramTest, EmptyReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int64_t v : {10, 20, 30, 40, 50}) h.Record(v);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.min(), 10);
  EXPECT_EQ(h.max(), 50);
  EXPECT_DOUBLE_EQ(h.Mean(), 30.0);
}

TEST(HistogramTest, PercentileMonotoneAndBounded) {
  Histogram h;
  for (int64_t v = 1; v <= 1000; ++v) h.Record(v);
  double prev = 0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    double p = h.Percentile(q);
    EXPECT_GE(p, prev);
    EXPECT_LE(p, 1000.0);
    prev = p;
  }
  // Median of 1..1000 lands within the right power-of-two bucket.
  EXPECT_GT(h.Percentile(0.5), 250.0);
  EXPECT_LT(h.Percentile(0.5), 800.0);
}

TEST(HistogramTest, NegativeClampsToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 0);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, P999TracksTail) {
  Histogram h;
  for (int i = 0; i < 998; ++i) h.Record(10);
  h.Record(100000);
  h.Record(100000);
  // The outliers dominate the 99.9th percentile but not the median.
  EXPECT_GT(h.P999(), 1000.0);
  EXPECT_LT(h.Percentile(0.5), 20.0);
  EXPECT_LE(h.P999(), 100000.0);
}

TEST(HistogramTest, SnapshotIsConsistent) {
  Histogram h;
  for (int64_t v : {10, 20, 30, 40, 50}) h.Record(v);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 5);
  EXPECT_EQ(s.min, 10);
  EXPECT_EQ(s.max, 50);
  EXPECT_EQ(s.sum, 150);
  EXPECT_DOUBLE_EQ(s.mean, 30.0);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.p999);
  EXPECT_LE(s.p999, static_cast<double>(s.max));
}

TEST(HistogramTest, EmptySnapshotAllZero) {
  HistogramSnapshot s = Histogram().Snapshot();
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 0);
  EXPECT_EQ(s.sum, 0);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.p999, 0.0);
}

TEST(HistogramTest, ToJsonSingleSampleAtBucketBoundary) {
  // 4 is a bucket lower bound, so interpolation caps every percentile at the
  // sample itself and the JSON is fully deterministic.
  Histogram h;
  h.Record(4);
  EXPECT_EQ(h.ToJson(),
            "{\"count\":1,\"min\":4,\"max\":4,\"sum\":4,\"mean\":4,"
            "\"p50\":4,\"p90\":4,\"p95\":4,\"p99\":4,\"p999\":4}");
}

TEST(HistogramTest, ToStringMentionsCount) {
  Histogram h;
  h.Record(7);
  EXPECT_NE(h.ToString().find("count=1"), std::string::npos);
}

TEST(HistogramTest, ConcurrentRecordsAllCounted) {
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 1000; ++i) h.Record(i);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), 4000);
}

}  // namespace
}  // namespace txrep
