// The transaction-classes conflict pre-filter (paper §7 future work).

#include "core/class_signature.h"

#include "codec/kv_keys.h"
#include "core/transaction_manager.h"
#include "gtest/gtest.h"
#include "kv/inmemory_node.h"
#include "qt/query_translator.h"
#include "rel/database.h"
#include "test_util.h"

namespace txrep::core {
namespace {

using rel::Value;

TEST(TableComponentTest, ExtractsFromEveryKeyShape) {
  EXPECT_EQ(codec::TableComponentOfKey("ITEM_1"), "ITEM");
  EXPECT_EQ(codec::TableComponentOfKey("ITEM_I%5FCOST_100"), "ITEM");
  EXPECT_EQ(codec::TableComponentOfKey("!b_ITEM_I%5FCOST_7"), "ITEM");
  EXPECT_EQ(codec::TableComponentOfKey("!bmeta_ITEM_I%5FCOST"), "ITEM");
  // Escaped underscore in the table name stays inside the component.
  EXPECT_EQ(codec::TableComponentOfKey(
                codec::RowKey("ORDER_LINE", Value::Int(5))),
            "ORDER%5FLINE");
}

TEST(ClassSignatureTest, DisjointTablesDontOverlap) {
  ClassSignature a, b;
  a.AddKey("ITEM_1");
  a.AddKey("ITEM_I%5FCOST_10");
  b.AddKey("CUSTOMER_7");
  // Note: 64-bit Bloom could theoretically collide; these two table names
  // hash to different bits on every mainstream libstdc++ — and a collision
  // would only cost an extra exact check, never correctness.
  if (!a.MayOverlap(b)) {
    SUCCEED();
  } else {
    GTEST_SKIP() << "hash collision between ITEM and CUSTOMER bits";
  }
}

TEST(ClassSignatureTest, SameTableOverlaps) {
  ClassSignature a, b;
  a.AddKey("ITEM_1");
  b.AddKey("ITEM_2");  // Different rows, same table.
  EXPECT_TRUE(a.MayOverlap(b));
}

TEST(ClassSignatureTest, BlinkKeysJoinTheTableClass) {
  ClassSignature row, blink;
  row.AddKey("ITEM_1");
  blink.AddKey("!b_ITEM_I%5FCOST_3");
  EXPECT_TRUE(row.MayOverlap(blink));
}

TEST(ClassSignatureTest, EmptySignatureNeverOverlaps) {
  ClassSignature empty, full;
  full.AddKey("ITEM_1");
  EXPECT_FALSE(empty.MayOverlap(full));
  EXPECT_FALSE(full.MayOverlap(empty));
  EXPECT_TRUE(empty.empty());
}

TEST(ClassSignatureTest, AddKeysCoversWholeSets) {
  ClassSignature sig;
  sig.AddKeys({"A_1", "B_2", "C_3"});
  ClassSignature probe;
  probe.AddKey("B_9");
  EXPECT_TRUE(sig.MayOverlap(probe));
}

// --- End-to-end: the filter must change performance counters, never state.

class ClassFilterTmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two unrelated tables: transactions on T1 never touch T2.
    for (const char* name : {"T1", "T2"}) {
      Result<rel::TableSchema> schema = rel::TableSchema::Create(
          name,
          {{"ID", rel::ValueType::kInt64}, {"V", rel::ValueType::kInt64}},
          "ID");
      ASSERT_TRUE(schema.ok());
      TXREP_ASSERT_OK(db_.CreateTable(*schema));
    }
    // Populate + interleaved update stream alternating between the tables,
    // always on row 1 (heavy intra-table conflicts, zero inter-table).
    for (const char* name : {"T1", "T2"}) {
      TXREP_ASSERT_OK(
          db_.ExecuteTransaction(
                {rel::InsertStatement{
                    name, {}, {Value::Int(1), Value::Int(0)}}})
              .status());
    }
    for (int i = 0; i < 100; ++i) {
      const char* name = i % 2 == 0 ? "T1" : "T2";
      TXREP_ASSERT_OK(
          db_.ExecuteTransaction(
                {rel::UpdateStatement{
                    name,
                    {{"V", Value::Int(i)}},
                    {rel::Predicate{"ID", rel::PredicateOp::kEq,
                                    Value::Int(1), {}}}}})
              .status());
    }
  }

  rel::Database db_;
};

TEST_F(ClassFilterTmTest, FilterSkipsCrossTableChecksAndPreservesState) {
  qt::QueryTranslator translator(&db_.catalog(), {});

  kv::InMemoryKvNode with_filter, without_filter;
  TmOptions on;
  on.top_threads = 8;
  on.bottom_threads = 8;
  on.enable_class_filter = true;
  TmOptions off = on;
  off.enable_class_filter = false;

  TmStats stats_on, stats_off;
  TXREP_ASSERT_OK(testing::ReplayConcurrent(db_, translator, &with_filter, on,
                                            &stats_on));
  TXREP_ASSERT_OK(testing::ReplayConcurrent(db_, translator, &without_filter,
                                            off, &stats_off));

  testing::ExpectDumpsEqual(with_filter, without_filter);
  EXPECT_GT(stats_on.class_filter_skips, 0)
      << "cross-table pairs should be filtered";
  EXPECT_EQ(stats_off.class_filter_skips, 0);
  // The filter never suppresses real conflicts: same-table chains still
  // restart in both configurations.
  EXPECT_GT(stats_on.conflicts, 0);
  EXPECT_GT(stats_off.conflicts, 0);
}

TEST_F(ClassFilterTmTest, FilterKeepsEquivalenceWithSerial) {
  qt::QueryTranslator translator(&db_.catalog(), {});
  kv::InMemoryKvNode serial_store, filtered_store;
  TXREP_ASSERT_OK(testing::ReplaySerial(db_, translator, &serial_store));
  TmOptions options;
  options.top_threads = 16;
  options.bottom_threads = 16;
  options.enable_class_filter = true;
  TXREP_ASSERT_OK(
      testing::ReplayConcurrent(db_, translator, &filtered_store, options));
  testing::ExpectDumpsEqual(serial_store, filtered_store);
}

}  // namespace
}  // namespace txrep::core
