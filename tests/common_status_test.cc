#include "common/status.h"

#include <string>

#include "common/result.h"
#include "gtest/gtest.h"

namespace txrep {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
  EXPECT_EQ(Status::NotFound("missing key").message(), "missing key");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("key k").ToString(), "NotFound: key k");
  EXPECT_EQ(Status::Internal("").ToString(), "Internal");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Aborted("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "Ok");
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted),
            "ResourceExhausted");
  EXPECT_EQ(StatusCodeName(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  TXREP_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_TRUE(Chain(-1).IsInvalidArgument());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello world");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello world");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  TXREP_ASSIGN_OR_RETURN(int half, Half(x));
  return Half(half);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());  // 6/2=3 is odd.
  EXPECT_TRUE(Quarter(5).status().IsInvalidArgument());
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace txrep
