#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "blink/blink_tree.h"
#include "common/random.h"
#include "gtest/gtest.h"
#include "kv/inmemory_node.h"
#include "test_util.h"

namespace txrep::blink {
namespace {

using rel::Value;

TEST(BlinkTreeConcurrentTest, ParallelDisjointInserts) {
  kv::InMemoryKvNode store;
  BlinkTree tree(&store, "T", "C", {.max_node_keys = 8});
  TXREP_ASSERT_OK(tree.Init());

  constexpr int kThreads = 4, kPerThread = 250;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int64_t v = t * kPerThread + i;
        if (!tree.Insert(Value::Int(v), "r" + std::to_string(v)).ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  TXREP_ASSERT_OK(tree.Validate());
  EXPECT_EQ(*tree.EntryCount(), kThreads * kPerThread);
  for (int v = 0; v < kThreads * kPerThread; ++v) {
    ASSERT_TRUE(*tree.Contains(Value::Int(v), "r" + std::to_string(v)))
        << "lost entry " << v;
  }
}

TEST(BlinkTreeConcurrentTest, OverlappingValuesDistinctRowKeys) {
  kv::InMemoryKvNode store;
  BlinkTree tree(&store, "T", "C", {.max_node_keys = 6});
  TXREP_ASSERT_OK(tree.Init());

  constexpr int kThreads = 4, kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Heavy duplication on values: only 20 distinct values.
        TXREP_ASSERT_OK(tree.Insert(
            Value::Int(i % 20), "t" + std::to_string(t) + "_" +
                                     std::to_string(i)));
      }
    });
  }
  for (auto& t : threads) t.join();
  TXREP_ASSERT_OK(tree.Validate());
  EXPECT_EQ(*tree.EntryCount(), kThreads * kPerThread);
}

TEST(BlinkTreeConcurrentTest, ReadersNeverBlockOrMisreadDuringInserts) {
  kv::InMemoryKvNode store;
  BlinkTree tree(&store, "T", "C", {.max_node_keys = 4});
  TXREP_ASSERT_OK(tree.Init());
  // Pre-populate even numbers; they must stay visible throughout.
  for (int i = 0; i < 200; i += 2) {
    TXREP_ASSERT_OK(tree.Insert(Value::Int(i), "r"));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> scan_errors{0};
  std::thread reader([&] {
    while (!stop) {
      Result<std::vector<EntryKey>> entries =
          tree.RangeScan(Value::Int(0), Value::Int(199));
      if (!entries.ok()) {
        ++scan_errors;
        continue;
      }
      // All pre-populated evens must always be present, in order.
      std::set<int64_t> seen;
      for (const EntryKey& e : *entries) seen.insert(e.value.AsInt());
      for (int i = 0; i < 200; i += 2) {
        if (!seen.contains(i)) {
          ++scan_errors;
          return;
        }
      }
    }
  });

  // Writer inserts odd numbers, forcing splits under the reader's feet.
  for (int i = 1; i < 200; i += 2) {
    TXREP_ASSERT_OK(tree.Insert(Value::Int(i), "r"));
  }
  stop = true;
  reader.join();
  EXPECT_EQ(scan_errors.load(), 0);
  TXREP_ASSERT_OK(tree.Validate());
  EXPECT_EQ(*tree.EntryCount(), 200u);
}

TEST(BlinkTreeConcurrentTest, DeepTreeCascadingSplitsUnderContention) {
  // Minimal fanout + interleaved key ranges: splits cascade several levels
  // while sibling propagations are in flight — the regression scenario for
  // the key-ordered parent insertion (see InsertIntoParent).
  kv::InMemoryKvNode store;
  BlinkTree tree(&store, "T", "C", {.max_node_keys = 3});
  TXREP_ASSERT_OK(tree.Init());
  constexpr int kThreads = 6, kPerThread = 300;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Interleave: consecutive values belong to different threads, so
        // every leaf is contended by all threads.
        const int64_t v = i * kThreads + t;
        if (!tree.Insert(Value::Int(v), "r").ok()) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  TXREP_ASSERT_OK(tree.Validate());
  EXPECT_EQ(*tree.EntryCount(), kThreads * kPerThread);
  Result<std::vector<EntryKey>> all =
      tree.RangeScanBounds(std::nullopt, std::nullopt);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), static_cast<size_t>(kThreads * kPerThread));
  for (int v = 0; v < kThreads * kPerThread; ++v) {
    ASSERT_EQ((*all)[v].value, Value::Int(v));
  }
}

TEST(BlinkTreeConcurrentTest, MixedInsertRemoveHammer) {
  kv::InMemoryKvNode store;
  BlinkTree tree(&store, "T", "C", {.max_node_keys = 8});
  TXREP_ASSERT_OK(tree.Init());
  // Each thread owns a disjoint key space and inserts/removes randomly;
  // final membership must match each thread's local bookkeeping.
  constexpr int kThreads = 4, kOps = 600, kSpace = 100;
  std::vector<std::set<int>> local(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(100 + t);
      for (int i = 0; i < kOps; ++i) {
        const int v = t * kSpace + static_cast<int>(rng.Uniform(kSpace));
        const std::string rk = "r" + std::to_string(v);
        if (local[t].contains(v)) {
          TXREP_ASSERT_OK(tree.Remove(Value::Int(v), rk));
          local[t].erase(v);
        } else {
          TXREP_ASSERT_OK(tree.Insert(Value::Int(v), rk));
          local[t].insert(v);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  TXREP_ASSERT_OK(tree.Validate());
  size_t expected = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected += local[t].size();
    for (int v : local[t]) {
      ASSERT_TRUE(*tree.Contains(Value::Int(v), "r" + std::to_string(v)));
    }
  }
  EXPECT_EQ(*tree.EntryCount(), expected);
}

}  // namespace
}  // namespace txrep::blink
