#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "blink/blink_tree.h"
#include "check/invariants.h"
#include "common/random.h"
#include "core/batch_dispatcher.h"
#include "gtest/gtest.h"
#include "kv/inmemory_node.h"
#include "kv/kv_types.h"
#include "test_util.h"

namespace txrep::blink {
namespace {

using rel::Value;

TEST(BlinkTreeConcurrentTest, ParallelDisjointInserts) {
  kv::InMemoryKvNode store;
  BlinkTree tree(&store, "T", "C", {.max_node_keys = 8});
  TXREP_ASSERT_OK(tree.Init());

  constexpr int kThreads = 4, kPerThread = 250;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int64_t v = t * kPerThread + i;
        if (!tree.Insert(Value::Int(v), "r" + std::to_string(v)).ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  TXREP_ASSERT_OK(tree.Validate());
  EXPECT_EQ(*tree.EntryCount(), kThreads * kPerThread);
  for (int v = 0; v < kThreads * kPerThread; ++v) {
    ASSERT_TRUE(*tree.Contains(Value::Int(v), "r" + std::to_string(v)))
        << "lost entry " << v;
  }
}

TEST(BlinkTreeConcurrentTest, OverlappingValuesDistinctRowKeys) {
  kv::InMemoryKvNode store;
  BlinkTree tree(&store, "T", "C", {.max_node_keys = 6});
  TXREP_ASSERT_OK(tree.Init());

  constexpr int kThreads = 4, kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Heavy duplication on values: only 20 distinct values.
        TXREP_ASSERT_OK(tree.Insert(
            Value::Int(i % 20), "t" + std::to_string(t) + "_" +
                                     std::to_string(i)));
      }
    });
  }
  for (auto& t : threads) t.join();
  TXREP_ASSERT_OK(tree.Validate());
  EXPECT_EQ(*tree.EntryCount(), kThreads * kPerThread);
}

TEST(BlinkTreeConcurrentTest, ReadersNeverBlockOrMisreadDuringInserts) {
  kv::InMemoryKvNode store;
  BlinkTree tree(&store, "T", "C", {.max_node_keys = 4});
  TXREP_ASSERT_OK(tree.Init());
  // Pre-populate even numbers; they must stay visible throughout.
  for (int i = 0; i < 200; i += 2) {
    TXREP_ASSERT_OK(tree.Insert(Value::Int(i), "r"));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> scan_errors{0};
  std::thread reader([&] {
    while (!stop) {
      Result<std::vector<EntryKey>> entries =
          tree.RangeScan(Value::Int(0), Value::Int(199));
      if (!entries.ok()) {
        ++scan_errors;
        continue;
      }
      // All pre-populated evens must always be present, in order.
      std::set<int64_t> seen;
      for (const EntryKey& e : *entries) seen.insert(e.value.AsInt());
      for (int i = 0; i < 200; i += 2) {
        if (!seen.contains(i)) {
          ++scan_errors;
          return;
        }
      }
    }
  });

  // Writer inserts odd numbers, forcing splits under the reader's feet.
  for (int i = 1; i < 200; i += 2) {
    TXREP_ASSERT_OK(tree.Insert(Value::Int(i), "r"));
  }
  stop = true;
  reader.join();
  EXPECT_EQ(scan_errors.load(), 0);
  TXREP_ASSERT_OK(tree.Validate());
  EXPECT_EQ(*tree.EntryCount(), 200u);
}

TEST(BlinkTreeConcurrentTest, DeepTreeCascadingSplitsUnderContention) {
  // Minimal fanout + interleaved key ranges: splits cascade several levels
  // while sibling propagations are in flight — the regression scenario for
  // the key-ordered parent insertion (see InsertIntoParent).
  kv::InMemoryKvNode store;
  BlinkTree tree(&store, "T", "C", {.max_node_keys = 3});
  TXREP_ASSERT_OK(tree.Init());
  constexpr int kThreads = 6, kPerThread = 300;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Interleave: consecutive values belong to different threads, so
        // every leaf is contended by all threads.
        const int64_t v = i * kThreads + t;
        if (!tree.Insert(Value::Int(v), "r").ok()) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  TXREP_ASSERT_OK(tree.Validate());
  EXPECT_EQ(*tree.EntryCount(), kThreads * kPerThread);
  Result<std::vector<EntryKey>> all =
      tree.RangeScanBounds(std::nullopt, std::nullopt);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), static_cast<size_t>(kThreads * kPerThread));
  for (int v = 0; v < kThreads * kPerThread; ++v) {
    ASSERT_EQ((*all)[v].value, Value::Int(v));
  }
}

TEST(BlinkTreeConcurrentTest, MixedInsertRemoveHammer) {
  kv::InMemoryKvNode store;
  BlinkTree tree(&store, "T", "C", {.max_node_keys = 8});
  TXREP_ASSERT_OK(tree.Init());
  // Each thread owns a disjoint key space and inserts/removes randomly;
  // final membership must match each thread's local bookkeeping.
  constexpr int kThreads = 4, kOps = 600, kSpace = 100;
  std::vector<std::set<int>> local(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(100 + t);
      for (int i = 0; i < kOps; ++i) {
        const int v = t * kSpace + static_cast<int>(rng.Uniform(kSpace));
        const std::string rk = "r" + std::to_string(v);
        if (local[t].contains(v)) {
          TXREP_ASSERT_OK(tree.Remove(Value::Int(v), rk));
          local[t].erase(v);
        } else {
          TXREP_ASSERT_OK(tree.Insert(Value::Int(v), rk));
          local[t].insert(v);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  TXREP_ASSERT_OK(tree.Validate());
  size_t expected = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected += local[t].size();
    for (int v : local[t]) {
      ASSERT_TRUE(*tree.Contains(Value::Int(v), "r" + std::to_string(v)));
    }
  }
  EXPECT_EQ(*tree.EntryCount(), expected);
}

TEST(BlinkTreeConcurrentTest, ReadersVersusBatchDispatcherHammer) {
  // The replica-side steady state: optimistic readers scanning the index
  // while writers both mutate the tree and push row noise through the
  // batched apply path into the same store. Runs in rounds; after each
  // round the quiesced tree must pass the structural *and* latch audits
  // (a leaked lock bit or a wrongly-obsoleted node fails here).
  kv::KvNodeOptions node_options;
  node_options.service_time_micros = 10;  // Forces reader/writer overlap.
  kv::InMemoryKvNode store(node_options);
  BlinkTree tree(&store, "T", "C", {.max_node_keys = 4});
  TXREP_ASSERT_OK(tree.Init());

  constexpr int kReaders = 8, kWriters = 2, kRounds = 3, kPerRound = 30;
  constexpr int kSeedEntries = 40;
  for (int i = 0; i < kSeedEntries; ++i) {
    TXREP_ASSERT_OK(tree.Insert(Value::Int(i * 1000), "seed"));
  }

  core::BatchDispatcher dispatcher;
  int inserted = 0;
  for (int round = 0; round < kRounds; ++round) {
    std::atomic<int> writers_live{kWriters};
    std::atomic<int> reader_errors{0};
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&, w] {
        for (int i = 0; i < kPerRound; ++i) {
          const int64_t v =
              (round * kWriters + w) * kPerRound + i + 1;  // Never *1000.
          TXREP_ASSERT_OK(tree.Insert(Value::Int(v * 7 + 3), "r"));
          if (i % 5 == 0) {
            std::vector<kv::KvWrite> noise;
            for (int n = 0; n < 4; ++n) {
              noise.push_back(kv::KvWrite::Put(
                  "row/" + std::to_string(w) + "/" + std::to_string(i + n),
                  "payload"));
            }
            TXREP_ASSERT_OK(dispatcher.Dispatch(&store, noise));
          }
        }
        writers_live.fetch_sub(1);
      });
    }
    for (int r = 0; r < kReaders; ++r) {
      threads.emplace_back([&] {
        do {
          Result<std::vector<EntryKey>> scan =
              tree.RangeScanBounds(std::nullopt, std::nullopt);
          if (!scan.ok()) {
            ++reader_errors;
            return;
          }
          for (size_t i = 0; i + 1 < scan->size(); ++i) {
            if (!((*scan)[i] < (*scan)[i + 1])) {
              ++reader_errors;
              return;
            }
          }
          Result<bool> present = tree.Contains(Value::Int(0), "seed");
          if (!present.ok() || !*present) {
            ++reader_errors;
            return;
          }
        } while (writers_live.load() > 0);
      });
    }
    for (auto& t : threads) t.join();
    inserted += kWriters * kPerRound;
    EXPECT_EQ(reader_errors.load(), 0) << "round " << round;
    TXREP_ASSERT_OK(tree.Validate());
    TXREP_ASSERT_OK(check::CheckBlinkTreeInvariants(tree));
    EXPECT_EQ(*tree.EntryCount(),
              static_cast<size_t>(kSeedEntries + inserted));
  }
  const BlinkTreeStats stats = tree.stats();
  // Contention totals are timing-dependent, but the counters must at least
  // be wired (a permanently-zero read path means validation never ran).
  EXPECT_GE(stats.read_retries + stats.read_spins + stats.move_rights +
                stats.read_restarts,
            0);
}

TEST(BlinkTreeConcurrentTest, EntryCountIsSandwichedDuringInserts) {
  // Split-safe counting under fire (the EntryCount double-count fix): every
  // concurrent count must land between the inserts committed before it
  // began and those started before it finished — a split mid-walk may
  // neither double-count migrating entries nor drop them.
  kv::KvNodeOptions node_options;
  node_options.service_time_micros = 5;
  kv::InMemoryKvNode store(node_options);
  BlinkTree tree(&store, "T", "C", {.max_node_keys = 4});
  TXREP_ASSERT_OK(tree.Init());
  constexpr int kSeed = 25, kInserts = 120;
  for (int i = 0; i < kSeed; ++i) {
    TXREP_ASSERT_OK(tree.Insert(Value::Int(-i - 1), "seed"));
  }

  std::atomic<int> started{0}, committed{0};
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::thread counter([&] {
    while (!done.load()) {
      const int before = committed.load();
      Result<size_t> count = tree.EntryCount();
      const int after = started.load();
      if (!count.ok()) {
        ++violations;
        return;
      }
      const size_t lo = static_cast<size_t>(kSeed + before);
      const size_t hi = static_cast<size_t>(kSeed + after);
      if (*count < lo || *count > hi) {
        ADD_FAILURE() << "count " << *count << " outside [" << lo << ", "
                      << hi << "]";
        ++violations;
        return;
      }
    }
  });
  for (int i = 0; i < kInserts; ++i) {
    started.fetch_add(1);
    TXREP_ASSERT_OK(tree.Insert(Value::Int(i), "r"));
    committed.fetch_add(1);
  }
  done = true;
  counter.join();
  EXPECT_EQ(violations.load(), 0);
  TXREP_ASSERT_OK(check::CheckBlinkTreeInvariants(tree));
  EXPECT_EQ(*tree.EntryCount(), static_cast<size_t>(kSeed + kInserts));
}

TEST(BlinkTreeConcurrentTest, ReadersSurviveRootChurnFromEmpty) {
  // Minimal fanout from an empty tree: the root id changes several times in
  // quick succession while readers are mid-descent — the shrunk/regrown
  // root scenario DescendToLevel must absorb without surfacing errors.
  kv::InMemoryKvNode store;
  BlinkTree tree(&store, "T", "C", {.max_node_keys = 2});
  TXREP_ASSERT_OK(tree.Init());

  std::atomic<bool> stop{false};
  std::atomic<int> reader_errors{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        Result<std::vector<EntryKey>> scan =
            tree.RangeScanBounds(std::nullopt, std::nullopt);
        if (!scan.ok()) ++reader_errors;
        Result<size_t> count = tree.EntryCount();
        if (!count.ok()) ++reader_errors;
      }
    });
  }
  constexpr int kInserts = 200;
  for (int i = 0; i < kInserts; ++i) {
    TXREP_ASSERT_OK(tree.Insert(Value::Int(i), "r"));
  }
  stop = true;
  for (auto& t : readers) t.join();
  EXPECT_EQ(reader_errors.load(), 0);
  TXREP_ASSERT_OK(check::CheckBlinkTreeInvariants(tree));
  EXPECT_EQ(*tree.EntryCount(), static_cast<size_t>(kInserts));
}

}  // namespace
}  // namespace txrep::blink
