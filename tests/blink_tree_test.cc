#include "blink/blink_tree.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "codec/kv_keys.h"
#include "common/clock.h"
#include "common/random.h"
#include "gtest/gtest.h"
#include "kv/inmemory_node.h"
#include "test_util.h"

namespace txrep::blink {

/// Test-only window into BlinkTree's private traversal (declared friend).
struct BlinkTreeTestPeer {
  static Result<uint64_t> DescendToLevel(BlinkTree& tree, const EntryKey& key,
                                         uint32_t target_level) {
    return tree.DescendToLevel(key, target_level);
  }
};

namespace {

using rel::Value;

class BlinkTreeTest : public ::testing::Test {
 protected:
  BlinkTreeTest() : tree_(&store_, "ITEM", "I_COST", {.max_node_keys = 4}) {
    // Tiny fanout so splits happen constantly.
  }

  void SetUp() override { TXREP_ASSERT_OK(tree_.Init()); }

  kv::InMemoryKvNode store_;
  BlinkTree tree_;
};

TEST_F(BlinkTreeTest, InitIsIdempotent) {
  TXREP_ASSERT_OK(tree_.Init());
  TXREP_ASSERT_OK(tree_.Insert(Value::Int(1), "r1"));
  TXREP_ASSERT_OK(tree_.Init());  // Must not wipe existing data.
  EXPECT_EQ(*tree_.EntryCount(), 1u);
}

TEST_F(BlinkTreeTest, InsertAndContains) {
  TXREP_ASSERT_OK(tree_.Insert(Value::Int(5), "r5"));
  EXPECT_TRUE(*tree_.Contains(Value::Int(5), "r5"));
  EXPECT_FALSE(*tree_.Contains(Value::Int(5), "other"));
  EXPECT_FALSE(*tree_.Contains(Value::Int(6), "r5"));
}

TEST_F(BlinkTreeTest, DuplicateInsertRejected) {
  TXREP_ASSERT_OK(tree_.Insert(Value::Int(5), "r5"));
  EXPECT_TRUE(tree_.Insert(Value::Int(5), "r5").IsAlreadyExists());
}

TEST_F(BlinkTreeTest, DuplicateValuesDistinctRowKeys) {
  TXREP_ASSERT_OK(tree_.Insert(Value::Int(5), "a"));
  TXREP_ASSERT_OK(tree_.Insert(Value::Int(5), "b"));
  TXREP_ASSERT_OK(tree_.Insert(Value::Int(5), "c"));
  Result<std::vector<EntryKey>> entries =
      tree_.RangeScan(Value::Int(5), Value::Int(5));
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 3u);
}

TEST_F(BlinkTreeTest, ManyInsertsSplitAndStayValid) {
  for (int i = 0; i < 200; ++i) {
    TXREP_ASSERT_OK(tree_.Insert(Value::Int(i), "r" + std::to_string(i)));
  }
  TXREP_ASSERT_OK(tree_.Validate());
  EXPECT_EQ(*tree_.EntryCount(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(*tree_.Contains(Value::Int(i), "r" + std::to_string(i)))
        << "missing " << i;
  }
}

TEST_F(BlinkTreeTest, ReverseAndShuffledInsertOrders) {
  Random rng(3);
  std::vector<int> ids(300);
  for (int i = 0; i < 300; ++i) ids[i] = i;
  rng.Shuffle(ids);
  for (int id : ids) {
    TXREP_ASSERT_OK(tree_.Insert(Value::Int(id), "r" + std::to_string(id)));
  }
  TXREP_ASSERT_OK(tree_.Validate());
  Result<std::vector<EntryKey>> all =
      tree_.RangeScanBounds(std::nullopt, std::nullopt);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 300u);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ((*all)[i].value, Value::Int(i));  // Sorted output.
  }
}

TEST_F(BlinkTreeTest, RangeScanBoundsInclusive) {
  for (int i = 0; i < 50; ++i) {
    TXREP_ASSERT_OK(tree_.Insert(Value::Int(i * 2), "r" + std::to_string(i)));
  }
  Result<std::vector<EntryKey>> entries =
      tree_.RangeScan(Value::Int(10), Value::Int(20));
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 6u);  // 10,12,14,16,18,20.
  EXPECT_EQ(entries->front().value, Value::Int(10));
  EXPECT_EQ(entries->back().value, Value::Int(20));
}

TEST_F(BlinkTreeTest, RangeScanOpenBounds) {
  for (int i = 1; i <= 30; ++i) {
    TXREP_ASSERT_OK(tree_.Insert(Value::Int(i), "r" + std::to_string(i)));
  }
  EXPECT_EQ(tree_.RangeScanBounds(std::nullopt, Value::Int(10))->size(), 10u);
  EXPECT_EQ(tree_.RangeScanBounds(Value::Int(21), std::nullopt)->size(), 10u);
  EXPECT_EQ(tree_.RangeScanBounds(std::nullopt, std::nullopt)->size(), 30u);
}

TEST_F(BlinkTreeTest, EmptyRangeAndInvertedBounds) {
  TXREP_ASSERT_OK(tree_.Insert(Value::Int(5), "r"));
  EXPECT_TRUE(tree_.RangeScan(Value::Int(10), Value::Int(20))->empty());
  EXPECT_TRUE(tree_.RangeScan(Value::Int(20), Value::Int(10))->empty());
}

TEST_F(BlinkTreeTest, RemoveAndRescan) {
  for (int i = 0; i < 100; ++i) {
    TXREP_ASSERT_OK(tree_.Insert(Value::Int(i), "r" + std::to_string(i)));
  }
  for (int i = 0; i < 100; i += 2) {
    TXREP_ASSERT_OK(tree_.Remove(Value::Int(i), "r" + std::to_string(i)));
  }
  TXREP_ASSERT_OK(tree_.Validate());
  EXPECT_EQ(*tree_.EntryCount(), 50u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(*tree_.Contains(Value::Int(i), "r" + std::to_string(i)),
              i % 2 == 1);
  }
}

TEST_F(BlinkTreeTest, RemoveMissingIsNotFound) {
  EXPECT_TRUE(tree_.Remove(Value::Int(1), "r").IsNotFound());
  TXREP_ASSERT_OK(tree_.Insert(Value::Int(1), "r"));
  EXPECT_TRUE(tree_.Remove(Value::Int(1), "other").IsNotFound());
}

TEST_F(BlinkTreeTest, DrainToEmptyAndRefill) {
  for (int i = 0; i < 60; ++i) {
    TXREP_ASSERT_OK(tree_.Insert(Value::Int(i), "r"));
  }
  for (int i = 0; i < 60; ++i) {
    TXREP_ASSERT_OK(tree_.Remove(Value::Int(i), "r"));
  }
  EXPECT_EQ(*tree_.EntryCount(), 0u);
  TXREP_ASSERT_OK(tree_.Validate());
  // Empty leaves remain (no merging); scans must skip them.
  EXPECT_TRUE(tree_.RangeScanBounds(std::nullopt, std::nullopt)->empty());
  // Refill through the hollowed structure.
  for (int i = 0; i < 60; ++i) {
    TXREP_ASSERT_OK(tree_.Insert(Value::Int(i), "r"));
  }
  EXPECT_EQ(*tree_.EntryCount(), 60u);
  TXREP_ASSERT_OK(tree_.Validate());
}

TEST_F(BlinkTreeTest, StringValues) {
  BlinkTree tree(&store_, "CUSTOMER", "C_UNAME", {.max_node_keys = 4});
  TXREP_ASSERT_OK(tree.Init());
  for (int i = 0; i < 50; ++i) {
    TXREP_ASSERT_OK(
        tree.Insert(Value::Str("user" + std::to_string(i)), "rk"));
  }
  TXREP_ASSERT_OK(tree.Validate());
  Result<std::vector<EntryKey>> entries =
      tree.RangeScan(Value::Str("user10"), Value::Str("user19"));
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 10u);  // user10..user19 lexicographically.
}

TEST_F(BlinkTreeTest, TwoTreesOnOneStoreAreIsolated) {
  BlinkTree other(&store_, "ITEM", "I_STOCK", {.max_node_keys = 4});
  TXREP_ASSERT_OK(other.Init());
  TXREP_ASSERT_OK(tree_.Insert(Value::Int(1), "a"));
  TXREP_ASSERT_OK(other.Insert(Value::Int(99), "b"));
  EXPECT_EQ(*tree_.EntryCount(), 1u);
  EXPECT_EQ(*other.EntryCount(), 1u);
  EXPECT_FALSE(*tree_.Contains(Value::Int(99), "b"));
}

TEST_F(BlinkTreeTest, LargeFanoutSingleNodePath) {
  BlinkTree big(&store_, "T", "C", {.max_node_keys = 1000});
  TXREP_ASSERT_OK(big.Init());
  for (int i = 0; i < 500; ++i) {
    TXREP_ASSERT_OK(big.Insert(Value::Int(i), "r"));
  }
  TXREP_ASSERT_OK(big.Validate());
  EXPECT_EQ(*big.EntryCount(), 500u);
}

// --- bugfix regressions ------------------------------------------------------

/// Plants a hand-crafted tree image directly into `store` (bypassing the
/// tree's write path) so tests can replay exact torn/wedged snapshots.
void PlantNode(kv::InMemoryKvNode& store, const std::string& table,
               const std::string& column, uint64_t id, const BlinkNode& node) {
  TXREP_ASSERT_OK(
      store.Put(codec::BlinkNodeKey(table, column, id), EncodeBlinkNode(node)));
}

void PlantMeta(kv::InMemoryKvNode& store, const std::string& table,
               const std::string& column, const BlinkMeta& meta) {
  TXREP_ASSERT_OK(
      store.Put(codec::BlinkMetaKey(table, column), EncodeBlinkMeta(meta)));
}

TEST(BlinkTreeWedgedSnapshotTest, SplitAgainstMissingParentLevelAborts) {
  // A stale buffered snapshot caught mid-root-grow: the leaf level already
  // has two nodes but no parent level exists, and — reads being cached —
  // none can ever appear from this snapshot's point of view. A split that
  // needs the parent must give up with Aborted naming the node (so the TM's
  // restart machinery re-executes against fresher state), not hang in the
  // parent-location retry loop.
  kv::InMemoryKvNode store;
  PlantMeta(store, "T", "C", BlinkMeta{.root_id = 1, .next_id = 4});
  BlinkNode left;
  left.has_high_key = true;
  left.high_key = EntryKey{Value::Int(20), ""};
  left.right_id = 2;
  left.entries = {EntryKey{Value::Int(10), "r10"}};
  PlantNode(store, "T", "C", 1, left);
  BlinkNode right;  // Rightmost leaf, already at max_node_keys.
  right.entries = {EntryKey{Value::Int(30), "r30"},
                   EntryKey{Value::Int(50), "r50"},
                   EntryKey{Value::Int(70), "r70"}};
  PlantNode(store, "T", "C", 2, right);

  BlinkTreeOptions options;
  options.max_node_keys = 3;
  options.max_parent_retries = 4;  // Keep the bounded wait short.
  BlinkTree tree(&store, "T", "C", options);

  const Status status = tree.Insert(Value::Int(40), "r40");
  EXPECT_TRUE(status.IsAborted()) << status.ToString();
  EXPECT_NE(status.ToString().find("parent of node 2"), std::string::npos)
      << status.ToString();
  // The split itself landed before the propagation wedged; a retry on a
  // fresh snapshot would repair the parent level. The entry must be there.
  EXPECT_TRUE(*tree.Contains(Value::Int(40), "r40"));
}

TEST(BlinkTreeTornImageTest, EntryCountIgnoresEntriesAboveHighKey) {
  // A split-torn leaf image: the left node still holds its pre-split entry
  // list, but its high key and right link already point at the sibling that
  // owns the tail. Entries 6..10 appear in both nodes; the count must
  // attribute each entry to exactly one owner (15 = the double-count bug).
  kv::InMemoryKvNode store;
  PlantMeta(store, "T", "C", BlinkMeta{.root_id = 1, .next_id = 3});
  BlinkNode left;
  left.has_high_key = true;
  left.high_key = EntryKey{Value::Int(5), "r5"};
  left.right_id = 2;
  for (int i = 1; i <= 10; ++i) {
    left.entries.push_back(EntryKey{Value::Int(i), "r" + std::to_string(i)});
  }
  PlantNode(store, "T", "C", 1, left);
  BlinkNode right;
  for (int i = 6; i <= 10; ++i) {
    right.entries.push_back(EntryKey{Value::Int(i), "r" + std::to_string(i)});
  }
  PlantNode(store, "T", "C", 2, right);

  BlinkTree tree(&store, "T", "C", {.max_node_keys = 32});
  EXPECT_EQ(*tree.EntryCount(), 10u);
  // The scan applies the same ownership rule: 10 strictly ascending entries,
  // none emitted twice.
  Result<std::vector<EntryKey>> all =
      tree.RangeScanBounds(std::nullopt, std::nullopt);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 10u);
  for (size_t i = 0; i + 1 < all->size(); ++i) {
    EXPECT_TRUE((*all)[i] < (*all)[i + 1]) << "duplicate at index " << i;
  }
}

TEST(BlinkTreeRootGrowthTest, DescendToLevelWaitsForRootGrowth) {
  // A writer needs the parent level of a node whose split outran the root's
  // growth: DescendToLevel starts while the root is still a lone leaf and
  // must absorb the wait internally (bounded) instead of erroring out —
  // the pre-fix code returned Internal the moment it saw a too-shallow root.
  kv::InMemoryKvNode store;
  BlinkTree tree(&store, "T", "C", {.max_node_keys = 2});
  TXREP_ASSERT_OK(tree.Init());

  std::thread grower([&] {
    SleepForMicros(2000);  // Guarantee the descent starts against a leaf root.
    for (int i = 0; i <= 20; ++i) {
      TXREP_ASSERT_OK(tree.Insert(Value::Int(i), "r"));
    }
  });
  Result<uint64_t> parent = BlinkTreeTestPeer::DescendToLevel(
      tree, EntryKey{Value::Int(10), "r"}, 1);
  grower.join();
  TXREP_ASSERT_OK(parent.status());
  TXREP_ASSERT_OK(tree.Validate());
  EXPECT_EQ(*tree.EntryCount(), 21u);
}

}  // namespace
}  // namespace txrep::blink
