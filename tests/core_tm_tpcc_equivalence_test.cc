// Full-stack equivalence on TPC-C-lite: cross-table multi-statement commits
// (NewOrder spans DISTRICT/ORDERS/NEW_ORDER/ORDER_LINE/STOCK), contended
// district counters, Zipf-skewed warehouses — concurrent TM replay must stay
// byte-identical to serial replay, including under injected KV failures and
// across a crash-restart through the checkpoint machinery.

#include <memory>
#include <vector>

#include "core/serial_applier.h"
#include "core/transaction_manager.h"
#include "gtest/gtest.h"
#include "kv/inmemory_node.h"
#include "kv/kv_cluster.h"
#include "qt/query_translator.h"
#include "recov/checkpoint.h"
#include "recov/io.h"
#include "rel/database.h"
#include "test_util.h"
#include "workload/tpcc.h"

namespace txrep::core {
namespace {

struct TpccCase {
  int warehouses;
  double zipf_theta;
  int txns;
  int threads;
  uint64_t seed;
  const char* name;
};

std::ostream& operator<<(std::ostream& os, const TpccCase& c) {
  return os << c.name;
}

/// Builds the deployment and runs `txns` write transactions on the DB.
workload::TpccWorkload BuildWorkload(rel::Database& db, const TpccCase& c) {
  workload::TpccOptions options;
  options.seed = c.seed;
  options.scale.warehouses = c.warehouses;
  options.warehouse_zipf_theta = c.zipf_theta;
  workload::TpccWorkload tpcc(options);
  TXREP_EXPECT_OK(tpcc.CreateSchema(db));
  TXREP_EXPECT_OK(tpcc.Populate(db));
  TXREP_EXPECT_OK(tpcc.RunWrites(db, c.txns));
  return tpcc;
}

class TpccEquivalenceTest : public ::testing::TestWithParam<TpccCase> {};

TEST_P(TpccEquivalenceTest, ConcurrentReplayEqualsSerialAndDatabase) {
  const TpccCase& c = GetParam();
  rel::Database db;
  BuildWorkload(db, c);

  qt::QueryTranslator translator(&db.catalog(), {.max_node_keys = 16});
  kv::InMemoryKvNode serial_store;
  TXREP_ASSERT_OK(testing::ReplaySerial(db, translator, &serial_store));

  kv::KvCluster cluster({.num_nodes = 3, .node = {}});
  TmOptions options;
  options.top_threads = c.threads;
  options.bottom_threads = c.threads;
  TmStats stats;
  TXREP_ASSERT_OK(
      testing::ReplayConcurrent(db, translator, &cluster, options, &stats));
  EXPECT_GT(stats.completed, 0);

  testing::ExpectDumpsEqual(serial_store, cluster);
  testing::VerifyReplicaMatchesDatabase(cluster, db, translator);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, TpccEquivalenceTest,
    ::testing::Values(
        TpccCase{1, 0.0, 250, 8, 71, "one_warehouse_t8"},
        TpccCase{2, 0.0, 250, 8, 72, "two_warehouses_t8"},
        TpccCase{4, 0.9, 250, 8, 73, "zipf_hot_warehouse_t8"},
        TpccCase{2, 0.0, 200, 20, 74, "two_warehouses_t20"},
        TpccCase{2, 0.0, 200, 2, 75, "two_warehouses_t2"}),
    [](const ::testing::TestParamInfo<TpccCase>& info) {
      return info.param.name;
    });

TEST(TpccEquivalenceFailureTest, InjectedKvFailuresStillConverge) {
  rel::Database db;
  workload::TpccOptions w_options;
  w_options.seed = 81;
  w_options.scale.warehouses = 2;
  w_options.warehouse_zipf_theta = 0.5;
  workload::TpccWorkload tpcc(w_options);
  TXREP_ASSERT_OK(tpcc.CreateSchema(db));
  TXREP_ASSERT_OK(tpcc.Populate(db));
  const uint64_t population_lsn = db.log().LastLsn();
  TXREP_ASSERT_OK(tpcc.RunWrites(db, 250));

  qt::QueryTranslator translator(&db.catalog(), {.max_node_keys = 16});
  kv::InMemoryKvNode serial_store;
  TXREP_ASSERT_OK(testing::ReplaySerial(db, translator, &serial_store));

  kv::KvCluster cluster({.num_nodes = 3, .node = {}});
  TXREP_ASSERT_OK(translator.InitializeIndexes(&cluster));
  // Generous budgets: a TPC-C transaction touches ~15+ keys, so a 2% per-op
  // failure rate fails nearly half the apply attempts outright
  // (cf. failure_injection_test).
  TmOptions options;
  options.top_threads = 8;
  options.bottom_threads = 8;
  options.max_apply_retries = 64;
  options.max_execution_retries = 256;
  TmStats stats;
  {
    TransactionManager tm(&cluster, &translator, options);
    // The bulk-population prefix replays clean — its 200-row batches carry
    // hundreds of KV ops each, enough to exhaust any retry budget under
    // per-op failures. The failure window covers the NewOrder/Payment
    // stream: the retry/restart path must re-execute against fresh state
    // and still converge byte-identically.
    for (rel::LogTransaction& txn : db.log().ReadSince(0, population_lsn)) {
      tm.SubmitUpdate(std::move(txn));
    }
    TXREP_ASSERT_OK(tm.WaitIdle());
    cluster.SetFailureRate(0.02);
    for (rel::LogTransaction& txn : db.log().ReadSince(population_lsn)) {
      tm.SubmitUpdate(std::move(txn));
    }
    TXREP_ASSERT_OK(tm.WaitIdle());
    cluster.SetFailureRate(0.0);
    TXREP_ASSERT_OK(tm.CheckInvariants());
    stats = tm.stats();
  }
  EXPECT_GT(stats.apply_retries + stats.restarts, 0)
      << "failure injection never fired";

  testing::ExpectDumpsEqual(serial_store, cluster);
  testing::VerifyReplicaMatchesDatabase(cluster, db, translator);
}

TEST(TpccEquivalenceCrashTest, CrashRestartRecoveryMatchesSerial) {
  const std::string dir = ::testing::TempDir() + "txrep_tpcc_crash";
  TXREP_ASSERT_OK(recov::RemoveDirRecursive(dir));
  TXREP_ASSERT_OK(recov::EnsureDir(dir));

  rel::Database db;
  BuildWorkload(db, TpccCase{2, 0.0, 200, 4, 91, "crash"});
  const uint64_t last_lsn = db.log().LastLsn();
  ASSERT_GT(last_lsn, 10u);

  qt::QueryTranslator translator(&db.catalog(), {.max_node_keys = 16});
  kv::InMemoryKvNode serial_store;
  TXREP_ASSERT_OK(testing::ReplaySerial(db, translator, &serial_store));

  // The TM applies a prefix, checkpoints, and then the replica "crashes".
  const uint64_t crash_lsn = last_lsn / 2;
  {
    kv::InMemoryKvNode store;
    TXREP_ASSERT_OK(translator.InitializeIndexes(&store));
    TmOptions options;
    options.top_threads = 4;
    options.bottom_threads = 4;
    TransactionManager tm(&store, &translator, options);
    for (rel::LogTransaction& txn : db.log().ReadSince(0, crash_lsn)) {
      tm.SubmitUpdate(std::move(txn));
    }
    TXREP_ASSERT_OK(tm.WaitIdle());
    ASSERT_EQ(tm.last_applied_lsn(), crash_lsn);
    recov::CheckpointWriter writer(dir);
    TXREP_ASSERT_OK(
        writer.Write(crash_lsn, std::vector<kv::KvStore*>{&store}).status());
  }  // <- crash: only `dir` survives.

  // A process-equivalent recovers from the checkpoint + log tail.
  Result<recov::LoadedCheckpoint> checkpoint =
      recov::LoadLatestCheckpoint(dir, nullptr);
  TXREP_ASSERT_OK(checkpoint.status());
  ASSERT_EQ(checkpoint->manifest.snapshot_epoch, crash_lsn);
  kv::InMemoryKvNode recovered;
  TXREP_ASSERT_OK(recov::InstallCheckpoint(
      *checkpoint, std::vector<kv::KvStore*>{&recovered}));
  core::SerialApplier tail_applier(&recovered, &translator);
  TXREP_ASSERT_OK(tail_applier.ApplyBatch(db.log().ReadSince(crash_lsn)));

  testing::ExpectDumpsEqual(serial_store, recovered);
  testing::VerifyReplicaMatchesDatabase(recovered, db, translator);
  TXREP_ASSERT_OK(recov::RemoveDirRecursive(dir));
}

}  // namespace
}  // namespace txrep::core
