#include "rel/txlog.h"

#include <thread>

#include "gtest/gtest.h"

namespace txrep::rel {
namespace {

LogOp MakeOp(int64_t pk) {
  return LogOp{LogOpType::kInsert, "T", Value::Int(pk),
               {Value::Int(pk), Value::Str("v")}};
}

TEST(TxLogTest, AppendAssignsDenseLsns) {
  TxLog log;
  EXPECT_EQ(log.Append({MakeOp(1)}), 1u);
  EXPECT_EQ(log.Append({MakeOp(2)}), 2u);
  EXPECT_EQ(log.Append({MakeOp(3)}), 3u);
  EXPECT_EQ(log.LastLsn(), 3u);
  EXPECT_EQ(log.size(), 3u);
}

TEST(TxLogTest, EmptyOpsNotLogged) {
  TxLog log;
  EXPECT_EQ(log.Append({}), 0u);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.LastLsn(), 0u);
}

TEST(TxLogTest, ReadSinceFiltersAndLimits) {
  TxLog log;
  for (int i = 1; i <= 10; ++i) log.Append({MakeOp(i)});
  std::vector<LogTransaction> all = log.ReadSince(0);
  EXPECT_EQ(all.size(), 10u);
  std::vector<LogTransaction> tail = log.ReadSince(7);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].lsn, 8u);
  std::vector<LogTransaction> limited = log.ReadSince(2, 4);
  ASSERT_EQ(limited.size(), 4u);
  EXPECT_EQ(limited[0].lsn, 3u);
  EXPECT_EQ(limited[3].lsn, 6u);
}

TEST(TxLogTest, CommitMicrosStamped) {
  TxLog log;
  log.Append({MakeOp(1)});
  EXPECT_GT(log.ReadSince(0)[0].commit_micros, 0);
}

TEST(TxLogTest, TruncateDropsPrefix) {
  TxLog log;
  for (int i = 1; i <= 5; ++i) log.Append({MakeOp(i)});
  log.TruncateUpTo(3);
  std::vector<LogTransaction> rest = log.ReadSince(0);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].lsn, 4u);
  EXPECT_EQ(log.LastLsn(), 5u);  // LSNs keep advancing after truncation.
  log.Append({MakeOp(6)});
  EXPECT_EQ(log.LastLsn(), 6u);
}

TEST(TxLogTest, ConcurrentAppendsGetUniqueLsns) {
  TxLog log;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&log] {
      for (int i = 0; i < 250; ++i) log.Append({MakeOp(i)});
    });
  }
  for (auto& t : threads) t.join();
  std::vector<LogTransaction> all = log.ReadSince(0);
  ASSERT_EQ(all.size(), 1000u);
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].lsn, i + 1);
  }
}

TEST(TxLogTest, DebugStringsRender) {
  LogOp insert = MakeOp(7);
  EXPECT_NE(insert.DebugString().find("INSERT"), std::string::npos);
  LogOp del{LogOpType::kDelete, "T", Value::Int(7), {}};
  EXPECT_NE(del.DebugString().find("DELETE"), std::string::npos);
  EXPECT_EQ(del.DebugString().find("after"), std::string::npos);
}

}  // namespace
}  // namespace txrep::rel
