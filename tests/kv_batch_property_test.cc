// Property suite for the batched KV apply pipeline: Multi* calls must be
// byte-equivalent to the same ops applied one at a time — including under
// injected node failures, where the batch path consumes the failure-RNG
// stream exactly like the op-at-a-time path — and the partial-batch failure
// contract of every backend is pinned down here.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "kv/disk_node.h"
#include "kv/inmemory_node.h"
#include "kv/kv_cluster.h"
#include "kv/kv_store.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace txrep::kv {
namespace {

/// Random op stream over a small keyspace (collisions are the interesting
/// part: overwrites, delete-then-put, put-then-delete).
KvWriteBatch RandomOps(Random& rng, int count, int keyspace) {
  KvWriteBatch ops;
  ops.reserve(count);
  for (int i = 0; i < count; ++i) {
    Key key = "k" + std::to_string(rng.Uniform(keyspace));
    if (rng.Bernoulli(0.3)) {
      ops.push_back(KvWrite::Delete(std::move(key)));
    } else {
      ops.push_back(KvWrite::Put(std::move(key), "v" + std::to_string(i)));
    }
  }
  return ops;
}

/// Applies `ops` one at a time through Put/Delete, ignoring per-op failures
/// (the failure-injection comparison needs both sides to keep going).
void ApplySequential(KvStore& store, const KvWriteBatch& ops) {
  for (const KvWrite& w : ops) {
    if (w.tombstone) {
      (void)store.Delete(w.key);
    } else {
      (void)store.Put(w.key, w.value);
    }
  }
}

/// Applies `ops` as MultiWrite batches of random sizes drawn from `rng`.
void ApplyBatched(KvStore& store, const KvWriteBatch& ops, Random& rng) {
  size_t offset = 0;
  while (offset < ops.size()) {
    const size_t chunk = 1 + rng.Uniform(16);
    const size_t end = std::min(offset + chunk, ops.size());
    (void)store.MultiWrite(
        std::span<const KvWrite>(ops.data() + offset, end - offset));
    offset = end;
  }
}

TEST(KvBatchPropertyTest, NodeBatchMatchesSequential) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Random rng(seed);
    const KvWriteBatch ops = RandomOps(rng, 200, 24);
    InMemoryKvNode sequential;
    InMemoryKvNode batched;
    ApplySequential(sequential, ops);
    Random chunk_rng(seed ^ 0xabcdefULL);
    ApplyBatched(batched, ops, chunk_rng);
    txrep::testing::ExpectDumpsEqual(sequential, batched);
  }
}

TEST(KvBatchPropertyTest, NodeBatchMatchesSequentialUnderFailures) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Random rng(seed);
    const KvWriteBatch ops = RandomOps(rng, 200, 24);
    // Same failure seed + rate on both sides: the batch path rolls the dice
    // once per entry in batch order, so both replicas see the same injected
    // failures on the same ops and must end up byte-identical.
    KvNodeOptions options;
    options.failure_rate = 0.3;
    options.failure_seed = seed * 31;
    InMemoryKvNode sequential(options);
    InMemoryKvNode batched(options);
    ApplySequential(sequential, ops);
    Random chunk_rng(seed ^ 0xabcdefULL);
    ApplyBatched(batched, ops, chunk_rng);
    txrep::testing::ExpectDumpsEqual(sequential, batched);
    EXPECT_EQ(sequential.stats().injected_failures,
              batched.stats().injected_failures);
  }
}

TEST(KvBatchPropertyTest, InMemoryPartialBatchAttemptsEveryEntry) {
  // Pinned contract: InMemoryKvNode attempts every entry; an injected
  // failure skips just that entry and the first error is returned.
  KvNodeOptions options;
  options.failure_rate = 1.0;
  InMemoryKvNode node(options);
  const KvWriteBatch batch = {KvWrite::Put("a", "1"), KvWrite::Put("b", "2")};
  size_t applied = 99;
  Status status = node.MultiWrite(batch, &applied);
  EXPECT_TRUE(status.IsUnavailable()) << status.ToString();
  EXPECT_EQ(applied, 0u);
  EXPECT_EQ(node.Size(), 0u);

  node.set_failure_rate(0.0);
  TXREP_ASSERT_OK(node.MultiWrite(batch, &applied));
  EXPECT_EQ(applied, 2u);
  EXPECT_EQ(node.Size(), 2u);
}

/// Minimal store that fails Put for one poisoned key — exercises the base
/// class's default MultiWrite, which must stop at the first error.
class PoisonedStore : public KvStore {
 public:
  explicit PoisonedStore(Key poisoned) : poisoned_(std::move(poisoned)) {}

  Status Put(const Key& key, const Value& value) override {
    if (key == poisoned_) return Status::Unavailable("poisoned key");
    map_[key] = value;
    return Status::OK();
  }
  Result<Value> Get(const Key& key) override {
    auto it = map_.find(key);
    if (it == map_.end()) return Status::NotFound("absent");
    return it->second;
  }
  Status Delete(const Key& key) override {
    map_.erase(key);
    return Status::OK();
  }
  bool Contains(const Key& key) override { return map_.contains(key); }
  size_t Size() override { return map_.size(); }
  StoreDump Dump() override {
    StoreDump dump(map_.begin(), map_.end());
    std::sort(dump.begin(), dump.end());
    return dump;
  }

 private:
  const Key poisoned_;
  std::map<Key, Value> map_;
};

TEST(KvBatchPropertyTest, DefaultMultiWriteStopsAtFirstError) {
  // Pinned contract: the KvStore default implementation applies a prefix.
  PoisonedStore store("bad");
  const KvWriteBatch batch = {KvWrite::Put("a", "1"), KvWrite::Put("b", "2"),
                              KvWrite::Put("bad", "x"), KvWrite::Put("c", "3")};
  size_t applied = 99;
  Status status = store.MultiWrite(batch, &applied);
  EXPECT_TRUE(status.IsUnavailable());
  EXPECT_EQ(applied, 2u);  // "a" and "b" — the prefix before the error.
  EXPECT_TRUE(store.Contains("a"));
  EXPECT_TRUE(store.Contains("b"));
  EXPECT_FALSE(store.Contains("c"));
}

TEST(KvBatchPropertyTest, MultiPutMultiDeleteMatchPerOp) {
  Random rng(7);
  std::vector<std::pair<Key, Value>> entries;
  std::vector<Key> doomed;
  for (int i = 0; i < 60; ++i) {
    entries.emplace_back("k" + std::to_string(rng.Uniform(30)),
                         "v" + std::to_string(i));
  }
  for (int i = 0; i < 20; ++i) {
    doomed.push_back("k" + std::to_string(rng.Uniform(30)));
  }

  InMemoryKvNode batched;
  size_t applied = 0;
  TXREP_ASSERT_OK(batched.MultiPut(entries, &applied));
  EXPECT_EQ(applied, entries.size());
  TXREP_ASSERT_OK(batched.MultiDelete(doomed, &applied));
  EXPECT_EQ(applied, doomed.size());

  InMemoryKvNode sequential;
  for (const auto& [key, value] : entries) {
    TXREP_ASSERT_OK(sequential.Put(key, value));
  }
  for (const Key& key : doomed) TXREP_ASSERT_OK(sequential.Delete(key));

  txrep::testing::ExpectDumpsEqual(sequential, batched);
}

TEST(KvBatchPropertyTest, MultiGetIsPositional) {
  InMemoryKvNode node;
  TXREP_ASSERT_OK(node.Put("a", "1"));
  TXREP_ASSERT_OK(node.Put("c", "3"));
  const std::vector<Key> keys = {"a", "missing", "c", "a"};
  std::vector<Result<Value>> results = node.MultiGet(keys);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(*results[0], "1");
  EXPECT_TRUE(results[1].status().IsNotFound());
  EXPECT_EQ(*results[2], "3");
  EXPECT_EQ(*results[3], "1");

  // Under total failure injection every entry fails individually; the batch
  // itself still returns positionally.
  KvNodeOptions options;
  options.failure_rate = 1.0;
  InMemoryKvNode failing(options);
  results = failing.MultiGet(keys);
  ASSERT_EQ(results.size(), 4u);
  for (const Result<Value>& r : results) {
    EXPECT_TRUE(r.status().IsUnavailable());
  }
}

TEST(KvBatchPropertyTest, SameKeyOrderWithinBatch) {
  // Entries for one key resolve in batch order, exactly like op-at-a-time.
  InMemoryKvNode node;
  const KvWriteBatch batch = {
      KvWrite::Put("k", "first"), KvWrite::Delete("k"),
      KvWrite::Put("k", "last"),  KvWrite::Put("gone", "x"),
      KvWrite::Delete("gone"),
  };
  TXREP_ASSERT_OK(node.MultiWrite(batch));
  EXPECT_EQ(*node.Get("k"), "last");
  EXPECT_FALSE(node.Contains("gone"));
}

TEST(KvBatchPropertyTest, ClusterBatchMatchesSequential) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Random rng(seed);
    const KvWriteBatch ops = RandomOps(rng, 300, 40);
    KvClusterOptions options;
    options.num_nodes = 5;
    KvCluster sequential(options);
    KvCluster batched(options);
    ApplySequential(sequential, ops);
    Random chunk_rng(seed ^ 0xabcdefULL);
    ApplyBatched(batched, ops, chunk_rng);
    txrep::testing::ExpectDumpsEqual(sequential, batched);
  }
}

TEST(KvBatchPropertyTest, ClusterBatchMatchesSequentialUnderFailures) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Random rng(seed);
    const KvWriteBatch ops = RandomOps(rng, 300, 40);
    // Same per-node failure seeds on both clusters; sub-batch routing is
    // stable and order-preserving, so each node consumes its failure stream
    // identically on both sides.
    KvClusterOptions options;
    options.num_nodes = 5;
    options.node.failure_rate = 0.25;
    options.node.failure_seed = seed * 131;
    KvCluster sequential(options);
    KvCluster batched(options);
    ApplySequential(sequential, ops);
    Random chunk_rng(seed ^ 0xabcdefULL);
    ApplyBatched(batched, ops, chunk_rng);
    txrep::testing::ExpectDumpsEqual(sequential, batched);
  }
}

TEST(KvBatchPropertyTest, ClusterPartialFailureIsPerNode) {
  // Pinned contract: each node applies its sub-batch per its own contract;
  // a fully failing node loses only the entries routed to it, and the call
  // reports the failure while the other nodes' entries landed.
  KvClusterOptions options;
  options.num_nodes = 4;
  KvCluster cluster(options);

  KvWriteBatch batch;
  for (int i = 0; i < 40; ++i) {
    batch.push_back(KvWrite::Put("k" + std::to_string(i), "v"));
  }
  const int dead = cluster.NodeIndexFor(batch[0].key);
  ASSERT_NE(cluster.memory_node(dead), nullptr);
  cluster.memory_node(dead)->set_failure_rate(1.0);

  size_t expected_alive = 0;
  for (const KvWrite& w : batch) {
    if (cluster.NodeIndexFor(w.key) != dead) ++expected_alive;
  }
  ASSERT_GT(expected_alive, 0u);
  ASSERT_LT(expected_alive, batch.size());

  size_t applied = 0;
  Status status = cluster.MultiWrite(batch, &applied);
  EXPECT_TRUE(status.IsUnavailable()) << status.ToString();
  EXPECT_EQ(applied, expected_alive);
  for (const KvWrite& w : batch) {
    EXPECT_EQ(cluster.Contains(w.key), cluster.NodeIndexFor(w.key) != dead);
  }

  // Recovery: the dead node heals and the idempotent retry completes.
  cluster.memory_node(dead)->set_failure_rate(0.0);
  TXREP_ASSERT_OK(cluster.MultiWrite(batch, &applied));
  EXPECT_EQ(applied, batch.size());
  EXPECT_EQ(cluster.Size(), batch.size());
}

TEST(KvBatchPropertyTest, ClusterMultiGetReassemblesPositionally) {
  KvClusterOptions options;
  options.num_nodes = 3;
  KvCluster cluster(options);
  std::vector<Key> keys;
  for (int i = 0; i < 30; ++i) {
    const Key key = "k" + std::to_string(i);
    keys.push_back(key);
    if (i % 3 != 0) TXREP_ASSERT_OK(cluster.Put(key, "v" + std::to_string(i)));
  }
  std::vector<Result<Value>> results = cluster.MultiGet(keys);
  ASSERT_EQ(results.size(), keys.size());
  for (int i = 0; i < 30; ++i) {
    if (i % 3 == 0) {
      EXPECT_TRUE(results[i].status().IsNotFound()) << "key " << keys[i];
    } else {
      EXPECT_EQ(*results[i], "v" + std::to_string(i)) << "key " << keys[i];
    }
  }
}

TEST(KvBatchPropertyTest, DiskNodeBatchAppliesPrefixAndPersists) {
  const std::string path =
      ::testing::TempDir() + "/kv_batch_disk_node_" +
      std::to_string(::getpid()) + ".log";
  std::remove(path.c_str());
  {
    Result<std::unique_ptr<DiskKvNode>> node = DiskKvNode::Open(path);
    TXREP_ASSERT_OK(node.status());
    const KvWriteBatch batch = {
        KvWrite::Put("a", "1"), KvWrite::Put("b", "2"), KvWrite::Delete("a"),
        KvWrite::Put("c", "3"),
    };
    size_t applied = 0;
    TXREP_ASSERT_OK((*node)->MultiWrite(batch, &applied));
    EXPECT_EQ(applied, batch.size());
    EXPECT_FALSE((*node)->Contains("a"));
    EXPECT_EQ(*(*node)->Get("b"), "2");
    std::vector<Result<Value>> results =
        (*node)->MultiGet(std::vector<Key>{"a", "b", "c"});
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].status().IsNotFound());
    EXPECT_EQ(*results[1], "2");
    EXPECT_EQ(*results[2], "3");
    EXPECT_GE((*node)->stats().batches, 2);
  }
  // Reopen: batched writes went through the same durable log.
  Result<std::unique_ptr<DiskKvNode>> reopened = DiskKvNode::Open(path);
  TXREP_ASSERT_OK(reopened.status());
  EXPECT_FALSE((*reopened)->Contains("a"));
  EXPECT_EQ(*(*reopened)->Get("b"), "2");
  EXPECT_EQ(*(*reopened)->Get("c"), "3");
  std::remove(path.c_str());
}

TEST(KvBatchPropertyTest, DiskNodeBatchMatchesSequential) {
  const std::string base =
      ::testing::TempDir() + "/kv_batch_disk_eq_" + std::to_string(::getpid());
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Random rng(seed);
    const KvWriteBatch ops = RandomOps(rng, 120, 16);
    const std::string seq_path = base + "_s.log";
    const std::string batch_path = base + "_b.log";
    std::remove(seq_path.c_str());
    std::remove(batch_path.c_str());
    Result<std::unique_ptr<DiskKvNode>> sequential = DiskKvNode::Open(seq_path);
    Result<std::unique_ptr<DiskKvNode>> batched = DiskKvNode::Open(batch_path);
    TXREP_ASSERT_OK(sequential.status());
    TXREP_ASSERT_OK(batched.status());
    ApplySequential(**sequential, ops);
    Random chunk_rng(seed ^ 0xabcdefULL);
    ApplyBatched(**batched, ops, chunk_rng);
    txrep::testing::ExpectDumpsEqual(**sequential, **batched);
    std::remove(seq_path.c_str());
    std::remove(batch_path.c_str());
  }
}

}  // namespace
}  // namespace txrep::kv
