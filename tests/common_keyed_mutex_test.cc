#include "common/keyed_mutex.h"

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace txrep {
namespace {

TEST(KeyedMutexTest, LockUnlockSingleKey) {
  KeyedMutex mu;
  mu.Lock("a");
  mu.Unlock("a");
  EXPECT_EQ(mu.ActiveKeys(), 0u);
}

TEST(KeyedMutexTest, GuardReleasesOnDestruction) {
  KeyedMutex mu;
  {
    KeyedMutex::Guard guard(mu, "k");
    EXPECT_EQ(mu.ActiveKeys(), 1u);
  }
  EXPECT_EQ(mu.ActiveKeys(), 0u);
}

TEST(KeyedMutexTest, DistinctKeysDoNotBlock) {
  KeyedMutex mu;
  mu.Lock("a");
  std::atomic<bool> got_b{false};
  std::thread t([&] {
    mu.Lock("b");  // Must not block on "a".
    got_b = true;
    mu.Unlock("b");
  });
  t.join();
  EXPECT_TRUE(got_b.load());
  mu.Unlock("a");
}

TEST(KeyedMutexTest, SameKeyExcludes) {
  KeyedMutex mu;
  mu.Lock("k");
  std::atomic<bool> acquired{false};
  std::thread t([&] {
    mu.Lock("k");
    acquired = true;
    mu.Unlock("k");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  mu.Unlock("k");
  t.join();
  EXPECT_TRUE(acquired.load());
}

TEST(KeyedMutexTest, GuardMoveToSwitchesKeys) {
  KeyedMutex mu;
  KeyedMutex::Guard guard(mu, "a");
  guard.MoveTo("b");
  EXPECT_EQ(guard.key(), "b");
  // "a" must now be free.
  std::thread t([&] {
    KeyedMutex::Guard g2(mu, "a");
  });
  t.join();
  guard.Release();
  EXPECT_EQ(mu.ActiveKeys(), 0u);
}

TEST(KeyedMutexTest, MovedGuardDoesNotDoubleUnlock) {
  KeyedMutex mu;
  KeyedMutex::Guard a(mu, "x");
  KeyedMutex::Guard b(std::move(a));
  EXPECT_EQ(mu.ActiveKeys(), 1u);
  b.Release();
  EXPECT_EQ(mu.ActiveKeys(), 0u);
}

TEST(KeyedMutexTest, MutualExclusionUnderContention) {
  KeyedMutex mu;
  int counter = 0;  // Unsynchronized on purpose: the lock must protect it.
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        KeyedMutex::Guard guard(mu, "counter");
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 4000);
  EXPECT_EQ(mu.ActiveKeys(), 0u);
}

TEST(KeyedMutexTest, ManyKeysNoLeak) {
  KeyedMutex mu;
  for (int i = 0; i < 100; ++i) {
    KeyedMutex::Guard guard(mu, "key" + std::to_string(i));
  }
  EXPECT_EQ(mu.ActiveKeys(), 0u);
}

}  // namespace
}  // namespace txrep
