#include "common/keyed_mutex.h"

#include <array>
#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace txrep {
namespace {

TEST(KeyedMutexTest, LockUnlockSingleKey) {
  KeyedMutex mu;
  mu.Lock("a");
  mu.Unlock("a");
  EXPECT_EQ(mu.ActiveKeys(), 0u);
}

TEST(KeyedMutexTest, GuardReleasesOnDestruction) {
  KeyedMutex mu;
  {
    KeyedMutex::Guard guard(mu, "k");
    EXPECT_EQ(mu.ActiveKeys(), 1u);
  }
  EXPECT_EQ(mu.ActiveKeys(), 0u);
}

TEST(KeyedMutexTest, DistinctKeysDoNotBlock) {
  KeyedMutex mu;
  mu.Lock("a");
  std::atomic<bool> got_b{false};
  std::thread t([&] {
    mu.Lock("b");  // Must not block on "a".
    got_b = true;
    mu.Unlock("b");
  });
  t.join();
  EXPECT_TRUE(got_b.load());
  mu.Unlock("a");
}

TEST(KeyedMutexTest, SameKeyExcludes) {
  KeyedMutex mu;
  mu.Lock("k");
  std::atomic<bool> acquired{false};
  std::thread t([&] {
    mu.Lock("k");
    acquired = true;
    mu.Unlock("k");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  mu.Unlock("k");
  t.join();
  EXPECT_TRUE(acquired.load());
}

TEST(KeyedMutexTest, GuardMoveToSwitchesKeys) {
  KeyedMutex mu;
  KeyedMutex::Guard guard(mu, "a");
  guard.MoveTo("b");
  EXPECT_EQ(guard.key(), "b");
  // "a" must now be free.
  std::thread t([&] {
    KeyedMutex::Guard g2(mu, "a");
  });
  t.join();
  guard.Release();
  EXPECT_EQ(mu.ActiveKeys(), 0u);
}

TEST(KeyedMutexTest, MovedGuardDoesNotDoubleUnlock) {
  KeyedMutex mu;
  KeyedMutex::Guard a(mu, "x");
  KeyedMutex::Guard b(std::move(a));
  EXPECT_EQ(mu.ActiveKeys(), 1u);
  b.Release();
  EXPECT_EQ(mu.ActiveKeys(), 0u);
}

TEST(KeyedMutexTest, MutualExclusionUnderContention) {
  KeyedMutex mu;
  int counter = 0;  // Unsynchronized on purpose: the lock must protect it.
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        KeyedMutex::Guard guard(mu, "counter");
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 4000);
  EXPECT_EQ(mu.ActiveKeys(), 0u);
}

TEST(KeyedMutexTest, ManyKeysNoLeak) {
  KeyedMutex mu;
  for (int i = 0; i < 100; ++i) {
    KeyedMutex::Guard guard(mu, "key" + std::to_string(i));
  }
  EXPECT_EQ(mu.ActiveKeys(), 0u);
}

TEST(KeyedMutexTest, UnlockWakesExactlyTheBlockedWaiters) {
  // Several threads pile up on one key; each release must hand the key to
  // exactly one waiter until all have held it.
  KeyedMutex mu;
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      KeyedMutex::Guard guard(mu, "hot");
      const int now = ++inside;
      int expected = max_inside.load();
      while (now > expected && !max_inside.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      --inside;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(max_inside.load(), 1);  // Never two holders of "hot" at once.
  EXPECT_EQ(mu.ActiveKeys(), 0u);   // All entries reclaimed after release.
}

TEST(KeyedMutexTest, HandOverHandChainUnderContention) {
  // The B-link "move right" pattern: each thread walks key0 -> key1 -> ...
  // hand-over-hand. Distinct keys may be held by distinct threads at once,
  // but per key there is only ever one holder.
  KeyedMutex mu;
  constexpr int kKeys = 5;
  std::array<int, kKeys> counters{};  // Unsynchronized: the latches protect.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 50; ++round) {
        KeyedMutex::Guard guard(mu, "key0");
        counters[0]++;
        for (int k = 1; k < kKeys; ++k) {
          guard.MoveTo("key" + std::to_string(k));
          counters[k]++;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int k = 0; k < kKeys; ++k) EXPECT_EQ(counters[k], 200);
  EXPECT_EQ(mu.ActiveKeys(), 0u);
}

TEST(KeyedMutexTest, ReleaseIsIdempotent) {
  KeyedMutex mu;
  KeyedMutex::Guard guard(mu, "k");
  guard.Release();
  guard.Release();  // Second release must be a no-op, not a double unlock.
  EXPECT_EQ(mu.ActiveKeys(), 0u);
}

}  // namespace
}  // namespace txrep
