// End-to-end tracing test (the issue's acceptance bar): drive a TPC-W-lite
// write workload through a full TxRep deployment with tracing on and assert
// that (a) sampled transactions leave complete traces whose per-hop spans sum
// to the observed end-to-end lag within 5% in aggregate, (b) critical-path
// attribution names a real dominant hop, (c) the Chrome trace export is
// structurally valid JSON, (d) sampling is deterministic in the LSN, and
// (e) tracing leaves replica consistency untouched.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "test_util.h"
#include "trace/export.h"
#include "trace/names.h"
#include "txrep/system.h"
#include "workload/tpcw.h"

namespace txrep {
namespace {

using trace::SpanEvent;
using trace::SpanStage;
using trace::TraceSummary;

struct TracedRun {
  std::unique_ptr<TxRepSystem> sys;
  std::unique_ptr<workload::TpcwWorkload> workload;
  int writes = 0;
};

// Populates a small TPC-W-lite deployment and runs `writes` write
// interactions through the pipeline. The workload rides AFTER Start(), so
// every transaction flows publisher -> broker -> subscriber -> applier.
TracedRun RunTracedWorkload(uint64_t sample_every, bool concurrent,
                            int writes = 60, bool slo = false) {
  TracedRun run;
  TxRepOptions options;
  options.concurrent_replication = concurrent;
  options.trace.sample_every = sample_every;
  options.slo.enabled = slo;
  options.slo.start_thread = false;  // Tests poll by hand.
  run.sys = std::make_unique<TxRepSystem>(options);

  workload::TpcwScale scale;
  scale.items = 100;
  scale.customers = 50;
  scale.addresses = 100;
  scale.initial_orders = 20;
  scale.shopping_carts = 20;
  run.workload = std::make_unique<workload::TpcwWorkload>(scale, /*seed=*/211);
  TXREP_EXPECT_OK(run.workload->CreateSchema(run.sys->database()));
  TXREP_EXPECT_OK(run.workload->Populate(run.sys->database()));
  TXREP_EXPECT_OK(run.sys->Start());
  for (int i = 0; i < writes; ++i) {
    const workload::TpcwWorkload::TxnSpec spec =
        run.workload->NextWriteTransaction();
    TXREP_EXPECT_OK(
        run.sys->database().ExecuteTransaction(spec.statements).status());
  }
  TXREP_EXPECT_OK(run.sys->SyncToLatest());
  run.writes = writes;
  return run;
}

TEST(TracePipelineTest, CompleteTracesSumToE2eLag) {
  TracedRun run = RunTracedWorkload(/*sample_every=*/1, /*concurrent=*/true);
  ASSERT_NE(run.sys->tracer(), nullptr);
  const std::vector<SpanEvent> events = run.sys->tracer()->Dump();
  ASSERT_FALSE(events.empty());

  const std::vector<TraceSummary> summaries =
      trace::BuildTraceSummaries(events);
  int complete = 0;
  int64_t covered_total = 0;
  int64_t e2e_total = 0;
  for (const TraceSummary& s : summaries) {
    if (!s.complete()) continue;
    ++complete;
    covered_total += s.covered_micros;
    e2e_total += s.e2e_micros;
    // Per trace: the hops are contiguous intervals of the e2e window, so
    // coverage stays near 1 (loose per-trace bound; the 5% bar is aggregate).
    EXPECT_GT(s.coverage(), 0.5) << "trace " << s.trace_id;
    EXPECT_LT(s.coverage(), 1.5) << "trace " << s.trace_id;
    EXPECT_GT(s.e2e_micros, 0);
  }
  // Every post-Start write transaction was sampled and fully traced.
  EXPECT_GE(complete, run.writes);
  // Acceptance bar: per-txn spans sum to within 5% of the e2e lag.
  ASSERT_GT(e2e_total, 0);
  const double ratio =
      static_cast<double>(covered_total) / static_cast<double>(e2e_total);
  EXPECT_GT(ratio, 0.95) << covered_total << " of " << e2e_total;
  EXPECT_LT(ratio, 1.05) << covered_total << " of " << e2e_total;
}

TEST(TracePipelineTest, CriticalPathNamesDominantHop) {
  TracedRun run = RunTracedWorkload(/*sample_every=*/1, /*concurrent=*/true);
  const std::vector<TraceSummary> summaries =
      trace::BuildTraceSummaries(run.sys->tracer()->Dump());
  ASSERT_FALSE(summaries.empty());
  // Every complete summary attributes a real (non-e2e) hop.
  for (const TraceSummary& s : summaries) {
    if (!s.complete()) continue;
    EXPECT_NE(s.dominant, SpanStage::kE2e);
    EXPECT_TRUE(s.has[static_cast<int>(s.dominant)]);
  }
  const std::string report = trace::CriticalPathReport(summaries);
  bool names_a_hop = false;
  for (SpanStage stage : {SpanStage::kPublish, SpanStage::kBroker,
                          SpanStage::kReceive, SpanStage::kCommitEval,
                          SpanStage::kApply}) {
    if (report.find(trace::SpanStageDisplay(stage)) != std::string::npos) {
      names_a_hop = true;
    }
  }
  EXPECT_TRUE(names_a_hop) << report;
}

TEST(TracePipelineTest, ChromeTraceExportIsValidAndReplicaConsistent) {
  TracedRun run = RunTracedWorkload(/*sample_every=*/1, /*concurrent=*/true);
  const std::string json =
      trace::ToChromeTraceJson(run.sys->tracer()->Dump());
  // Structural sanity of the hand-rolled JSON (the exporter unit test does
  // the deep check; here we assert the integration output).
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);

  // Tracing must not perturb replication: full consistency audit.
  auto report = run.sys->AuditReplica();
  TXREP_ASSERT_OK(report.status());
  EXPECT_TRUE(report->consistent()) << report->Summary();
}

TEST(TracePipelineTest, SamplingIsDeterministicInLsn) {
  const uint64_t period = 10;
  TracedRun run = RunTracedWorkload(period, /*concurrent=*/true);
  const std::vector<SpanEvent> events = run.sys->tracer()->Dump();
  ASSERT_FALSE(events.empty());
  for (const SpanEvent& event : events) {
    EXPECT_EQ(event.lsn % period, 0u) << "unsampled lsn " << event.lsn
                                      << " left a span";
    EXPECT_EQ(event.trace_id, event.lsn);  // Trace id is the log position.
  }
}

TEST(TracePipelineTest, NothingSampledMeansNoSpans) {
  // A period far beyond the run's last LSN: no transaction samples, the
  // recorder stays empty, and the pipeline still replicates correctly.
  TracedRun run = RunTracedWorkload(/*sample_every=*/1'000'000'000,
                                    /*concurrent=*/true, /*writes=*/20);
  EXPECT_TRUE(run.sys->tracer()->Dump().empty());
  EXPECT_EQ(run.sys->tracer()->recorder().recorded(), 0);
  auto report = run.sys->AuditReplica();
  TXREP_ASSERT_OK(report.status());
  EXPECT_TRUE(report->consistent());
}

TEST(TracePipelineTest, SerialBaselineTracesWithoutCommitEval) {
  TracedRun run = RunTracedWorkload(/*sample_every=*/1, /*concurrent=*/false);
  const std::vector<TraceSummary> summaries =
      trace::BuildTraceSummaries(run.sys->tracer()->Dump());
  ASSERT_FALSE(summaries.empty());
  int complete = 0;
  for (const TraceSummary& s : summaries) {
    // The serial baseline has no TM, so no commit-eval span — complete()
    // already treats that hop as optional.
    EXPECT_FALSE(s.has[static_cast<int>(SpanStage::kCommitEval)]);
    if (s.complete()) ++complete;
  }
  EXPECT_GE(complete, run.writes);
}

TEST(TracePipelineTest, SloWatchdogObservesAppliedLag) {
  TracedRun run = RunTracedWorkload(/*sample_every=*/1, /*concurrent=*/true,
                                    /*writes=*/30, /*slo=*/true);
  ASSERT_NE(run.sys->slo(), nullptr);
  run.sys->slo()->Poll();  // start_thread=false: evaluate by hand.
  const trace::SloStatus status = run.sys->slo()->Snapshot();
  // Every applied write fed ObserveLag (snapshot-loaded rows do not).
  EXPECT_GE(status.observations, run.writes);
  EXPECT_EQ(status.stalls, 0);  // A drained pipeline is not a stall.
  EXPECT_NE(run.sys->slo()->Report().find("slo:"), std::string::npos);
}

TEST(TracePipelineTest, ExemplarsRetainedPerStage) {
  TracedRun run = RunTracedWorkload(/*sample_every=*/1, /*concurrent=*/true);
  const std::vector<SpanEvent> exemplars =
      run.sys->tracer()->Exemplars(SpanStage::kE2e);
  ASSERT_FALSE(exemplars.empty());
  EXPECT_LE(exemplars.size(),
            run.sys->tracer()->options().exemplars_per_stage);
  // Slowest first, and genuinely the stage asked for.
  for (size_t i = 1; i < exemplars.size(); ++i) {
    EXPECT_GE(exemplars[i - 1].duration_micros(),
              exemplars[i].duration_micros());
  }
  for (const SpanEvent& event : exemplars) {
    EXPECT_EQ(event.stage, SpanStage::kE2e);
  }
}

}  // namespace
}  // namespace txrep
