#include "blink/node.h"

#include "gtest/gtest.h"

namespace txrep::blink {
namespace {

using rel::Value;

EntryKey Key(int64_t v, const std::string& rk) {
  return EntryKey{Value::Int(v), rk};
}

TEST(EntryKeyTest, OrderingByValueThenRowKey) {
  EXPECT_LT(Key(1, "z"), Key(2, "a"));
  EXPECT_LT(Key(1, "a"), Key(1, "b"));
  EXPECT_EQ(Key(1, "a"), Key(1, "a"));
  EXPECT_LE(Key(1, "a"), Key(1, "a"));
  EXPECT_GT(Key(2, "a"), Key(1, "z"));
}

TEST(BlinkNodeTest, LeafRoundTrip) {
  BlinkNode node;
  node.level = 0;
  node.has_high_key = true;
  node.high_key = Key(10, "T_10");
  node.right_id = 42;
  node.entries = {Key(1, "T_1"), Key(5, "T_5"), Key(10, "T_10")};

  Result<BlinkNode> decoded = DecodeBlinkNode(EncodeBlinkNode(node));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->is_leaf());
  EXPECT_EQ(decoded->level, 0u);
  EXPECT_TRUE(decoded->has_high_key);
  EXPECT_EQ(decoded->high_key, node.high_key);
  EXPECT_EQ(decoded->right_id, 42u);
  EXPECT_EQ(decoded->entries, node.entries);
  EXPECT_TRUE(decoded->separators.empty());
  EXPECT_TRUE(decoded->children.empty());
}

TEST(BlinkNodeTest, InternalRoundTrip) {
  BlinkNode node;
  node.level = 2;
  node.right_id = 0;
  node.separators = {Key(10, "a"), Key(20, "b")};
  node.children = {100, 200, 300};

  Result<BlinkNode> decoded = DecodeBlinkNode(EncodeBlinkNode(node));
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->is_leaf());
  EXPECT_EQ(decoded->level, 2u);
  EXPECT_FALSE(decoded->has_high_key);
  EXPECT_EQ(decoded->separators, node.separators);
  EXPECT_EQ(decoded->children, node.children);
}

TEST(BlinkNodeTest, EmptyLeafRoundTrip) {
  BlinkNode node;
  Result<BlinkNode> decoded = DecodeBlinkNode(EncodeBlinkNode(node));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->entries.empty());
  EXPECT_EQ(decoded->right_id, 0u);
}

TEST(BlinkNodeTest, StringAndDoubleValues) {
  BlinkNode node;
  node.entries = {EntryKey{Value::Str("abc"), "T_s"},
                  EntryKey{Value::Real(2.5), "T_d"}};
  Result<BlinkNode> decoded = DecodeBlinkNode(EncodeBlinkNode(node));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->entries, node.entries);
}

TEST(BlinkNodeTest, CorruptionDetected) {
  BlinkNode node;
  node.entries = {Key(1, "x")};
  std::string bytes = EncodeBlinkNode(node);
  EXPECT_TRUE(DecodeBlinkNode(bytes + "x").status().IsCorruption());
  EXPECT_TRUE(DecodeBlinkNode(std::string_view(bytes).substr(0, 2))
                  .status()
                  .IsCorruption());
  EXPECT_TRUE(DecodeBlinkNode("").status().IsCorruption());
}

TEST(BlinkNodeTest, KeyCountDispatchesOnKind) {
  BlinkNode leaf;
  leaf.entries = {Key(1, "a"), Key(2, "b")};
  EXPECT_EQ(leaf.KeyCount(), 2u);
  BlinkNode internal;
  internal.level = 1;
  internal.separators = {Key(1, "a")};
  internal.children = {1, 2};
  EXPECT_EQ(internal.KeyCount(), 1u);
}

TEST(BlinkMetaTest, RoundTrip) {
  BlinkMeta meta;
  meta.root_id = 17;
  meta.next_id = 99;
  Result<BlinkMeta> decoded = DecodeBlinkMeta(EncodeBlinkMeta(meta));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->root_id, 17u);
  EXPECT_EQ(decoded->next_id, 99u);
  EXPECT_TRUE(DecodeBlinkMeta("\x01").status().IsCorruption());
}

TEST(BlinkNodeTest, DebugStringsRender) {
  BlinkNode node;
  node.entries = {Key(1, "a")};
  EXPECT_NE(node.DebugString().find("leaf"), std::string::npos);
  EXPECT_NE(node.DebugString().find("+inf"), std::string::npos);
}

}  // namespace
}  // namespace txrep::blink
