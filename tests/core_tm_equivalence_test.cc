// The golden invariant of the paper: concurrent replay through the
// Transaction Manager must produce a replica state *byte-identical* to serial
// replay in the execution-defined order, for any workload, thread count and
// conflict level — and that state must logically match the database.

#include <set>

#include "common/random.h"
#include "core/transaction_manager.h"
#include "gtest/gtest.h"
#include "kv/inmemory_node.h"
#include "kv/kv_cluster.h"
#include "qt/query_translator.h"
#include "rel/database.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace txrep::core {
namespace {

using rel::Value;

struct EquivalenceCase {
  uint64_t seed;
  int threads;
  int hot_rows;     // Updates/deletes concentrate on this many rows.
  int txns;
  int64_t service_micros;
  const char* name;
};

std::ostream& operator<<(std::ostream& os, const EquivalenceCase& c) {
  return os << c.name;
}

class EquivalenceTest : public ::testing::TestWithParam<EquivalenceCase> {};

/// Runs a randomized insert/update/delete workload (with hash + range index
/// maintenance) against the database.
void RunRandomWorkload(rel::Database& db, uint64_t seed, int hot_rows,
                       int txns) {
  Result<rel::TableSchema> schema =
      rel::TableSchema::Create("R",
                               {{"ID", rel::ValueType::kInt64},
                                {"VAL", rel::ValueType::kInt64},
                                {"COST", rel::ValueType::kDouble}},
                               "ID");
  TXREP_ASSERT_OK(schema.status());
  TXREP_ASSERT_OK(db.CreateTable(*schema));
  TXREP_ASSERT_OK(db.CreateHashIndex("R", "COST"));
  TXREP_ASSERT_OK(db.CreateRangeIndex("R", "COST"));

  Random rng(seed);
  std::set<int64_t> live;
  int64_t next_id = 1;

  // Seed population.
  for (int i = 0; i < hot_rows; ++i) {
    const int64_t id = next_id++;
    TXREP_ASSERT_OK(
        db.ExecuteTransaction(
              {rel::InsertStatement{
                  "R",
                  {},
                  {Value::Int(id), Value::Int(0),
                   Value::Real(static_cast<double>(rng.Uniform(10)))}}})
            .status());
    live.insert(id);
  }

  auto random_live = [&]() -> int64_t {
    auto it = live.lower_bound(static_cast<int64_t>(
        rng.Uniform(static_cast<uint64_t>(next_id))));
    if (it == live.end()) it = live.begin();
    return *it;
  };

  for (int t = 0; t < txns; ++t) {
    std::vector<rel::Statement> stmts;
    const int ops = 1 + static_cast<int>(rng.Uniform(3));
    for (int o = 0; o < ops; ++o) {
      const uint64_t pick = rng.Uniform(10);
      if (pick < 3 || live.empty()) {
        const int64_t id = next_id++;
        stmts.push_back(rel::InsertStatement{
            "R",
            {},
            {Value::Int(id), Value::Int(static_cast<int64_t>(t)),
             Value::Real(static_cast<double>(rng.Uniform(10)))}});
        live.insert(id);
      } else if (pick < 8) {
        stmts.push_back(rel::UpdateStatement{
            "R",
            {{"VAL", Value::Int(static_cast<int64_t>(rng.Uniform(1000)))},
             {"COST", Value::Real(static_cast<double>(rng.Uniform(10)))}},
            {rel::Predicate{"ID", rel::PredicateOp::kEq,
                            Value::Int(random_live()), {}}}});
      } else {
        const int64_t id = random_live();
        stmts.push_back(rel::DeleteStatement{
            "R", {rel::Predicate{"ID", rel::PredicateOp::kEq, Value::Int(id),
                                 {}}}});
        live.erase(id);
      }
    }
    TXREP_ASSERT_OK(db.ExecuteTransaction(stmts).status());
  }
}

TEST_P(EquivalenceTest, ConcurrentReplayEqualsSerialReplay) {
  const EquivalenceCase& c = GetParam();
  rel::Database db;
  RunRandomWorkload(db, c.seed, c.hot_rows, c.txns);

  qt::QueryTranslator translator(&db.catalog(), {.max_node_keys = 8});

  kv::KvNodeOptions node_options;
  node_options.service_time_micros = c.service_micros;
  kv::InMemoryKvNode serial_store(node_options);
  TXREP_ASSERT_OK(
      testing::ReplaySerial(db, translator, &serial_store));

  kv::InMemoryKvNode concurrent_store(node_options);
  TmOptions tm_options;
  tm_options.top_threads = c.threads;
  tm_options.bottom_threads = c.threads;
  TmStats stats;
  TXREP_ASSERT_OK(testing::ReplayConcurrent(db, translator, &concurrent_store,
                                            tm_options, &stats));

  testing::ExpectDumpsEqual(serial_store, concurrent_store);
  testing::VerifyReplicaMatchesDatabase(concurrent_store, db, translator);
  EXPECT_EQ(stats.completed, static_cast<int64_t>(db.log().size()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EquivalenceTest,
    ::testing::Values(
        EquivalenceCase{1, 4, 50, 200, 0, "seed1_t4_lowconflict"},
        EquivalenceCase{2, 8, 50, 200, 0, "seed2_t8_lowconflict"},
        EquivalenceCase{3, 20, 50, 200, 0, "seed3_t20_lowconflict"},
        EquivalenceCase{4, 4, 3, 200, 0, "seed4_t4_hotrows"},
        EquivalenceCase{5, 8, 3, 200, 0, "seed5_t8_hotrows"},
        EquivalenceCase{6, 20, 3, 200, 0, "seed6_t20_hotrows"},
        EquivalenceCase{7, 8, 1, 150, 0, "seed7_t8_singlehot"},
        EquivalenceCase{8, 8, 20, 150, 100, "seed8_t8_slowstore"},
        EquivalenceCase{9, 16, 5, 150, 50, "seed9_t16_hot_slowstore"},
        EquivalenceCase{10, 2, 10, 150, 0, "seed10_t2_narrow"}),
    [](const ::testing::TestParamInfo<EquivalenceCase>& info) {
      return info.param.name;
    });

TEST(EquivalenceSyntheticTest, PaperSyntheticWorkloadEquivalence) {
  // The paper's own synthetic conflict workload at a hostile setting.
  rel::Database db;
  workload::SyntheticWorkload workload(
      {.num_items = 100, .hot_range = 5, .seed = 77});
  TXREP_ASSERT_OK(workload.CreateSchema(db));
  TXREP_ASSERT_OK(workload.Populate(db));
  TXREP_ASSERT_OK(workload.Run(db, 400));

  qt::QueryTranslator translator(&db.catalog(), {});
  kv::InMemoryKvNode serial_store;
  TXREP_ASSERT_OK(testing::ReplaySerial(db, translator, &serial_store));

  kv::KvCluster cluster({.num_nodes = 5, .node = {}});
  TmOptions options;
  options.top_threads = 20;
  options.bottom_threads = 20;
  TXREP_ASSERT_OK(
      testing::ReplayConcurrent(db, translator, &cluster, options, nullptr));
  testing::ExpectDumpsEqual(serial_store, cluster);
  testing::VerifyReplicaMatchesDatabase(cluster, db, translator);
}

TEST(EquivalenceSyntheticTest, RepeatedReplayIsDeterministic) {
  rel::Database db;
  workload::SyntheticWorkload workload(
      {.num_items = 50, .hot_range = 10, .seed = 5});
  TXREP_ASSERT_OK(workload.CreateSchema(db));
  TXREP_ASSERT_OK(workload.Populate(db));
  TXREP_ASSERT_OK(workload.Run(db, 200));

  qt::QueryTranslator translator(&db.catalog(), {});
  kv::InMemoryKvNode a, b;
  TmOptions options;
  options.top_threads = 8;
  options.bottom_threads = 8;
  TXREP_ASSERT_OK(testing::ReplayConcurrent(db, translator, &a, options));
  TXREP_ASSERT_OK(testing::ReplayConcurrent(db, translator, &b, options));
  testing::ExpectDumpsEqual(a, b);
}

}  // namespace
}  // namespace txrep::core
