// TPC-C-lite schedule exploration: every seed derives a whole TPC-C-lite
// deployment (warehouse count, scale, warehouse Zipf skew, NewOrder/Payment
// mix, remote-line fraction) and the concurrent TM's replay of its log must
// byte-equal serial replay — plain and across a crash-restart. The default
// sweep runs 200 seeds (override with TXREP_SCHEDULE_SEEDS).

#include "check/schedule_explorer.h"

#include <cstdlib>

#include "gtest/gtest.h"
#include "test_util.h"

namespace txrep::check {
namespace {

int SeedsFromEnv(int fallback) {
  const char* env = std::getenv("TXREP_SCHEDULE_SEEDS");
  if (env == nullptr) return fallback;
  const int value = std::atoi(env);
  return value > 0 ? value : fallback;
}

std::string FailureDetails(const ScheduleReport& report) {
  std::string details;
  for (const ScheduleFailure& failure : report.failures) {
    details +=
        "\n  seed " + std::to_string(failure.seed) + ": " + failure.detail;
  }
  return details;
}

TEST(ScheduleExplorerTpccTest, TpccSweepFindsNoDivergence) {
  ScheduleExplorerOptions options;
  options.base_seed = 1;
  options.schedules = SeedsFromEnv(200);
  options.txns_per_schedule = 25;
  options.audit_every = 8;
  options.tpcc = true;

  ScheduleExplorer explorer(options);
  ScheduleReport report = explorer.Run();
  SCOPED_TRACE(report.Summary());

  EXPECT_EQ(report.schedules_run, options.schedules);
  EXPECT_TRUE(report.ok()) << "diverging TPC-C schedules:"
                           << FailureDetails(report);
  // The contended district counters must actually collide — a conflict-free
  // sweep would pass vacuously no matter how broken Algorithm 1 were.
  EXPECT_GT(report.conflicts + report.restarts, 0);
}

TEST(ScheduleExplorerTpccTest, TpccCrashRestartSweepFindsNoDivergence) {
  ScheduleExplorerOptions options;
  options.base_seed = 1;
  options.schedules = SeedsFromEnv(200);
  options.txns_per_schedule = 15;
  options.audit_every = 0;  // The plain sweep above covers the deep audit.
  options.tpcc = true;
  options.crash_restart = true;
  options.scratch_dir = ::testing::TempDir() + "txrep_tpcc_crash_sweep";

  ScheduleExplorer explorer(options);
  ScheduleReport report = explorer.Run();
  SCOPED_TRACE(report.Summary());

  EXPECT_EQ(report.schedules_run, options.schedules);
  EXPECT_TRUE(report.ok()) << "diverging TPC-C crash-restart schedules:"
                           << FailureDetails(report);
}

TEST(ScheduleExplorerTpccTest, TpccBatchedApplySweepFindsNoDivergence) {
  // Multi-table TPC-C write sets through the coalescing MultiWrite path:
  // seed-derived cluster topology and chunk sizes on top of the seed-derived
  // workload shape.
  ScheduleExplorerOptions options;
  options.base_seed = 1;
  options.schedules = SeedsFromEnv(200);
  options.txns_per_schedule = 20;
  options.audit_every = 8;
  options.tpcc = true;
  options.batched_apply = true;

  ScheduleExplorer explorer(options);
  ScheduleReport report = explorer.Run();
  SCOPED_TRACE(report.Summary());

  EXPECT_EQ(report.schedules_run, options.schedules);
  EXPECT_TRUE(report.ok()) << "diverging TPC-C batched schedules:"
                           << FailureDetails(report);
  EXPECT_GT(report.conflicts + report.restarts, 0);
}

TEST(ScheduleExplorerTpccTest, TpccSeedIsReproducible) {
  ScheduleExplorer explorer({.schedules = 0, .tpcc = true});
  TXREP_EXPECT_OK(explorer.RunOne(42));
  TXREP_EXPECT_OK(explorer.RunOne(42));  // No state leaks between runs.
}

}  // namespace
}  // namespace txrep::check
