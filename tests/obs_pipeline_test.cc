// Integration test for the observability tentpole: drive a full TxRep
// deployment, then assert that every pipeline stage of Fig. 3 left latency
// samples in the registry, that the queue gauges and per-node KV counters
// exist, and that TransactionManager::stats() agrees exactly with the
// registry-backed counters it is derived from.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/names.h"
#include "sql/interpreter.h"
#include "test_util.h"
#include "txrep/system.h"

namespace txrep {
namespace {

using obs::HistogramPoint;
using obs::Labels;
using obs::MetricPoint;
using obs::MetricsSnapshot;

constexpr const char* kSchemaSql = R"sql(
  CREATE TABLE ITEM (I_ID INT PRIMARY KEY, I_TITLE VARCHAR(40),
                     I_COST DOUBLE);
  CREATE INDEX ON ITEM (I_TITLE);
  CREATE RANGE INDEX ON ITEM (I_COST);
)sql";

const HistogramPoint* FindHistogram(const MetricsSnapshot& snapshot,
                                    const std::string& name,
                                    const Labels& labels) {
  for (const HistogramPoint& h : snapshot.histograms) {
    if (h.name == name && h.labels == labels) return &h;
  }
  return nullptr;
}

const MetricPoint* FindCounter(const MetricsSnapshot& snapshot,
                               const std::string& name,
                               const Labels& labels = {}) {
  for (const MetricPoint& c : snapshot.counters) {
    if (c.name == name && c.labels == labels) return &c;
  }
  return nullptr;
}

const MetricPoint* FindGauge(const MetricsSnapshot& snapshot,
                             const std::string& name, const Labels& labels) {
  for (const MetricPoint& g : snapshot.gauges) {
    if (g.name == name && g.labels == labels) return &g;
  }
  return nullptr;
}

int64_t StageCount(const MetricsSnapshot& snapshot, const char* stage) {
  const HistogramPoint* h =
      FindHistogram(snapshot, obs::kStageLatency, {{"stage", stage}});
  return h == nullptr ? -1 : h->snapshot.count;
}

void RunWriteWorkload(TxRepSystem& sys, int inserts) {
  for (int i = 1; i <= inserts; ++i) {
    TXREP_ASSERT_OK(
        sql::ExecuteSql(sys.database(),
                        "INSERT INTO ITEM VALUES (" + std::to_string(i) +
                            ", 't" + std::to_string(i % 3) + "', " +
                            std::to_string(i * 2.0) + ");")
            .status());
  }
  TXREP_ASSERT_OK(
      sql::ExecuteSql(sys.database(),
                      "UPDATE ITEM SET I_COST = 999.0 WHERE I_ID = 1;"
                      "DELETE FROM ITEM WHERE I_ID = 2;")
          .status());
}

TEST(ObsPipelineTest, ConcurrentPipelineRecordsEveryStage) {
  TxRepOptions options;
  options.cluster.num_nodes = 3;
  TxRepSystem sys(options);
  TXREP_ASSERT_OK(sql::ExecuteSql(sys.database(), kSchemaSql).status());
  TXREP_ASSERT_OK(sys.Start());
  RunWriteWorkload(sys, 15);
  TXREP_ASSERT_OK(sys.SyncToLatest());

  // One replica read so the read path instruments have samples too.
  auto rows = sys.QueryReplica(rel::SelectStatement{
      "ITEM",
      {},
      {rel::Predicate{"I_ID", rel::PredicateOp::kEq, rel::Value::Int(1)}}});
  TXREP_ASSERT_OK(rows.status());

  const MetricsSnapshot snapshot = sys.metrics().Snapshot();

  // All seven Fig. 3 stages left latency samples (issue floor: >= 5).
  for (const char* stage :
       {obs::kStagePublish, obs::kStageBroker, obs::kStageReceive,
        obs::kStageExecute, obs::kStageCommitEval, obs::kStageApply,
        obs::kStageE2e}) {
    EXPECT_GT(StageCount(snapshot, stage), 0) << "stage " << stage;
  }

  // Queue-depth gauges exist for every backlog in the pipeline; after a full
  // drain they must read as empty or better-than-empty never negative.
  for (const char* queue :
       {obs::kQueueCommitReqPq, obs::kQueueBroker, obs::kQueueTmTop,
        obs::kQueueTmBottom}) {
    const MetricPoint* g =
        FindGauge(snapshot, obs::kQueueDepth, {{"queue", queue}});
    ASSERT_NE(g, nullptr) << "queue " << queue;
    EXPECT_GE(g->value, 0) << "queue " << queue;
  }

  // Per-node KV op counters: every node served at least one put (snapshot
  // load + replication both write through the cluster).
  int64_t total_puts = 0;
  for (int node = 0; node < options.cluster.num_nodes; ++node) {
    const MetricPoint* c = FindCounter(
        snapshot, obs::kKvOps,
        {{"node", std::to_string(node)}, {"op", "put"}});
    ASSERT_NE(c, nullptr) << "node " << node;
    total_puts += c->value;
  }
  EXPECT_GT(total_puts, 0);

  // Database-side instruments saw the write workload.
  const MetricPoint* commits = FindCounter(snapshot, obs::kDbCommits);
  ASSERT_NE(commits, nullptr);
  EXPECT_EQ(commits->value, 17);  // Schema DDL does not commit via the log.
  const MetricPoint* published =
      FindCounter(snapshot, obs::kMwMessagesPublished);
  const MetricPoint* delivered =
      FindCounter(snapshot, obs::kMwMessagesDelivered);
  ASSERT_NE(published, nullptr);
  ASSERT_NE(delivered, nullptr);
  EXPECT_GT(published->value, 0);
  EXPECT_EQ(published->value, delivered->value);

  // Replica read path.
  const HistogramPoint* readonly =
      FindHistogram(snapshot, obs::kReadOnlyLatency, {});
  ASSERT_NE(readonly, nullptr);
  EXPECT_GE(readonly->snapshot.count, 1);
  const MetricPoint* pk_selects =
      FindCounter(snapshot, obs::kQtSelects, {{"plan", "pk"}});
  ASSERT_NE(pk_selects, nullptr);
  EXPECT_GE(pk_selects->value, 1);
}

TEST(ObsPipelineTest, TmStatsMatchesRegistryCounters) {
  TxRepOptions options;
  TxRepSystem sys(options);
  TXREP_ASSERT_OK(sql::ExecuteSql(sys.database(), kSchemaSql).status());
  TXREP_ASSERT_OK(sys.Start());
  RunWriteWorkload(sys, 10);
  TXREP_ASSERT_OK(sys.SyncToLatest());

  const core::TmStats stats = sys.tm_stats();
  const MetricsSnapshot snapshot = sys.metrics().Snapshot();
  const auto counter = [&snapshot](const char* name) {
    const MetricPoint* c = FindCounter(snapshot, name);
    return c == nullptr ? int64_t{-1} : c->value;
  };
  EXPECT_EQ(stats.submitted, counter(obs::kTmSubmitted));
  EXPECT_EQ(stats.committed, counter(obs::kTmCommitted));
  EXPECT_EQ(stats.completed, counter(obs::kTmCompleted));
  EXPECT_EQ(stats.conflicts, counter(obs::kTmConflicts));
  EXPECT_EQ(stats.restarts, counter(obs::kTmRestarts));
  EXPECT_GT(stats.submitted, 0);
  EXPECT_EQ(stats.submitted, stats.completed);
}

TEST(ObsPipelineTest, SerialBaselineRecordsApplyAndLagStages) {
  TxRepOptions options;
  options.concurrent_replication = false;
  TxRepSystem sys(options);
  TXREP_ASSERT_OK(sql::ExecuteSql(sys.database(), kSchemaSql).status());
  TXREP_ASSERT_OK(sys.Start());
  RunWriteWorkload(sys, 10);
  TXREP_ASSERT_OK(sys.SyncToLatest());

  const MetricsSnapshot snapshot = sys.metrics().Snapshot();
  // The serial applier still reports the replica-side stages...
  EXPECT_GT(StageCount(snapshot, obs::kStageApply), 0);
  EXPECT_GT(StageCount(snapshot, obs::kStageE2e), 0);
  // ...and the middleware stages are applier-independent.
  EXPECT_GT(StageCount(snapshot, obs::kStagePublish), 0);
  EXPECT_GT(StageCount(snapshot, obs::kStageBroker), 0);
  // No TM in this configuration, so no execute/commit-eval samples.
  EXPECT_LE(StageCount(snapshot, obs::kStageExecute), 0);
}

TEST(ObsPipelineTest, PeriodicReporterWiredThroughOptions) {
  std::atomic<int> reports{0};
  TxRepOptions options;
  options.metrics_report_interval_micros = 1000;
  options.metrics_report_sink = [&reports](const obs::MetricsSnapshot&) {
    reports.fetch_add(1);
  };
  TxRepSystem sys(options);
  TXREP_ASSERT_OK(sql::ExecuteSql(sys.database(), kSchemaSql).status());
  TXREP_ASSERT_OK(sys.Start());
  RunWriteWorkload(sys, 5);
  TXREP_ASSERT_OK(sys.SyncToLatest());
  while (reports.load() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  SUCCEED();
}

}  // namespace
}  // namespace txrep
