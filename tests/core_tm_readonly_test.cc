// Read-only transactions interleave with replication (paper requirement 3)
// and must observe replica states consistent with the execution-defined
// order. The classic probe: writers move money between two accounts keeping
// the total constant; interleaved read-only transactions must always see the
// constant total.

#include <atomic>

#include "codec/kv_keys.h"
#include "codec/row_codec.h"
#include "core/transaction_manager.h"
#include "gtest/gtest.h"
#include "kv/inmemory_node.h"
#include "qt/query_translator.h"
#include "test_util.h"

namespace txrep::core {
namespace {

using rel::Value;

class ReadOnlyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<rel::TableSchema> schema = rel::TableSchema::Create(
        "ACCT",
        {{"A_ID", rel::ValueType::kInt64}, {"BAL", rel::ValueType::kInt64}},
        "A_ID");
    ASSERT_TRUE(schema.ok());
    TXREP_ASSERT_OK(catalog_.AddTable(*schema));
    translator_ = std::make_unique<qt::QueryTranslator>(&catalog_);
  }

  rel::LogTransaction Insert(int64_t id, int64_t bal) {
    rel::LogTransaction txn;
    txn.ops.push_back(rel::LogOp{rel::LogOpType::kInsert, "ACCT",
                                 Value::Int(id),
                                 {Value::Int(id), Value::Int(bal)}});
    return txn;
  }

  /// One transfer: both accounts rewritten, total preserved.
  rel::LogTransaction Transfer(int64_t bal_a, int64_t bal_b) {
    rel::LogTransaction txn;
    txn.ops.push_back(rel::LogOp{rel::LogOpType::kUpdate, "ACCT",
                                 Value::Int(1),
                                 {Value::Int(1), Value::Int(bal_a)}});
    txn.ops.push_back(rel::LogOp{rel::LogOpType::kUpdate, "ACCT",
                                 Value::Int(2),
                                 {Value::Int(2), Value::Int(bal_b)}});
    return txn;
  }

  static Result<int64_t> Balance(kv::KvStore* view, int64_t id) {
    TXREP_ASSIGN_OR_RETURN(kv::Value bytes,
                           view->Get(codec::RowKey("ACCT", Value::Int(id))));
    TXREP_ASSIGN_OR_RETURN(rel::Row row, codec::DecodeRow(bytes));
    return row[1].AsInt();
  }

  rel::Catalog catalog_;
  std::unique_ptr<qt::QueryTranslator> translator_;
};

TEST_F(ReadOnlyTest, InterleavedReadersAlwaysSeeInvariantTotal) {
  kv::KvNodeOptions node_options;
  node_options.service_time_micros = 200;  // Widen the race windows.
  kv::InMemoryKvNode store(node_options);
  TmOptions options;
  options.top_threads = 8;
  options.bottom_threads = 8;
  TransactionManager tm(&store, translator_.get(), options);

  tm.SubmitUpdate(Insert(1, 500));
  tm.SubmitUpdate(Insert(2, 500));

  // Each reader records the totals it saw; a restarted reader overwrites its
  // slot, so after completion every slot holds the observation of the final
  // (committed) execution — the one the algorithm vouches for. Intermediate
  // aborted attempts may legitimately observe torn states; they restart.
  std::vector<std::shared_ptr<Transaction>> handles;
  std::vector<std::shared_ptr<std::atomic<int64_t>>> observed_totals;
  int64_t a = 500, b = 500;
  Random rng(13);
  for (int i = 0; i < 120; ++i) {
    const int64_t delta = static_cast<int64_t>(rng.Uniform(100)) - 50;
    a += delta;
    b -= delta;
    handles.push_back(tm.SubmitUpdate(Transfer(a, b)));
    if (i % 3 == 0) {
      auto slot = std::make_shared<std::atomic<int64_t>>(-1);
      observed_totals.push_back(slot);
      handles.push_back(
          tm.SubmitReadOnly([slot](kv::KvStore* view) -> Status {
            TXREP_ASSIGN_OR_RETURN(int64_t bal_a, Balance(view, 1));
            TXREP_ASSIGN_OR_RETURN(int64_t bal_b, Balance(view, 2));
            slot->store(bal_a + bal_b);
            return Status::OK();
          }));
    }
  }
  TXREP_ASSERT_OK(tm.WaitIdle());
  for (auto& h : handles) TXREP_EXPECT_OK(h->Wait());
  ASSERT_EQ(observed_totals.size(), 40u);
  for (size_t i = 0; i < observed_totals.size(); ++i) {
    EXPECT_EQ(observed_totals[i]->load(), 1000)
        << "committed reader " << i << " observed a torn transfer";
  }
  // Final state is the last transfer.
  EXPECT_EQ(*Balance(&store, 1), a);
  EXPECT_EQ(*Balance(&store, 2), b);
}

TEST_F(ReadOnlyTest, ReaderAtSequencePointSeesExactPrefix) {
  kv::InMemoryKvNode store;
  TransactionManager tm(&store, translator_.get(), {});
  tm.SubmitUpdate(Insert(1, 0));
  tm.SubmitUpdate(Insert(2, 0));
  // Three transfers; a reader interleaved after the second must see exactly
  // the second state (100/-100), never the third.
  tm.SubmitUpdate(Transfer(50, -50));
  tm.SubmitUpdate(Transfer(100, -100));
  auto seen = std::make_shared<std::pair<int64_t, int64_t>>();
  auto reader = tm.SubmitReadOnly([seen](kv::KvStore* view) -> Status {
    TXREP_ASSIGN_OR_RETURN(seen->first, Balance(view, 1));
    TXREP_ASSIGN_OR_RETURN(seen->second, Balance(view, 2));
    return Status::OK();
  });
  tm.SubmitUpdate(Transfer(900, -900));
  TXREP_ASSERT_OK(tm.WaitIdle());
  TXREP_ASSERT_OK(reader->Wait());
  EXPECT_EQ(seen->first, 100);
  EXPECT_EQ(seen->second, -100);
}

TEST_F(ReadOnlyTest, ReadOnlyFailureFailsOnlyItself) {
  kv::InMemoryKvNode store;
  TransactionManager tm(&store, translator_.get(), {});
  tm.SubmitUpdate(Insert(1, 5));
  auto bad = tm.SubmitReadOnly([](kv::KvStore* view) -> Status {
    (void)view;
    return Status::FailedPrecondition("bad query plan");
  });
  // The failed reader surfaces its own error...
  Status s = bad->Wait();
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  // ...but cannot corrupt anything, so the pipeline stays healthy and keeps
  // applying update transactions past the failed sequence slot.
  auto after = tm.SubmitUpdate(Insert(2, 6));
  TXREP_ASSERT_OK(after->Wait());
  TXREP_ASSERT_OK(tm.WaitIdle());
  TXREP_ASSERT_OK(tm.health());
  EXPECT_TRUE(store.Contains("ACCT_2"));
}

TEST_F(ReadOnlyTest, ManyFailedReadersNeverStallThePipeline) {
  kv::InMemoryKvNode store;
  TransactionManager tm(&store, translator_.get(), {});
  tm.SubmitUpdate(Insert(1, 0));
  tm.SubmitUpdate(Insert(2, 0));
  for (int i = 0; i < 30; ++i) {
    tm.SubmitReadOnly([](kv::KvStore*) -> Status {
      return Status::InvalidArgument("nope");
    });
    tm.SubmitUpdate(Transfer(i, -i));
  }
  TXREP_ASSERT_OK(tm.WaitIdle());
  TXREP_ASSERT_OK(tm.health());
  EXPECT_EQ(tm.stats().completed, 62);
}

}  // namespace
}  // namespace txrep::core
