// MetricsRegistry unit tests: get-or-create identity, label
// canonicalization, snapshot determinism, and exact counting under
// concurrent writers (the property the sharded counters exist for).

#include "obs/metrics.h"

#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace txrep::obs {
namespace {

TEST(MetricsRegistryTest, GetOrCreateReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("ops_total", {{"node", "0"}});
  Counter* b = registry.GetCounter("ops_total", {{"node", "0"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, registry.GetCounter("ops_total", {{"node", "1"}}));
  EXPECT_NE(a, registry.GetCounter("other_total", {{"node", "0"}}));
  EXPECT_EQ(registry.InstrumentCount(), 3u);
}

TEST(MetricsRegistryTest, LabelOrderDoesNotDistinguishInstruments) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("ops", {{"op", "put"}, {"node", "2"}});
  Counter* b = registry.GetCounter("ops", {{"node", "2"}, {"op", "put"}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.InstrumentCount(), 1u);
}

TEST(MetricsRegistryTest, KindsAreIndependentNamespaces) {
  MetricsRegistry registry;
  registry.GetCounter("x");
  registry.GetGauge("x");
  registry.GetHistogram("x");
  EXPECT_EQ(registry.InstrumentCount(), 3u);
}

TEST(MetricsRegistryTest, GaugeSetAddValue) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("depth");
  EXPECT_EQ(g->Value(), 0);
  g->Set(7);
  EXPECT_EQ(g->Value(), 7);
  g->Add(-3);
  EXPECT_EQ(g->Value(), 4);
}

TEST(MetricsRegistryTest, CounterExactUnderConcurrentIncrements) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("hits_total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), int64_t{kThreads} * kPerThread);
}

TEST(MetricsRegistryTest, ConcurrentGetOrCreateAndIncrementIsExact) {
  // Threads race on instrument *creation* as well as on increments; every
  // thread must land on the same instrument per (name, label) pair.
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      const std::string node = std::to_string(t % 2);
      for (int i = 0; i < kPerThread; ++i) {
        registry.GetCounter("ops_total", {{"node", node}})->Increment();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.InstrumentCount(), 2u);
  const int64_t total =
      registry.GetCounter("ops_total", {{"node", "0"}})->Value() +
      registry.GetCounter("ops_total", {{"node", "1"}})->Value();
  EXPECT_EQ(total, int64_t{kThreads} * kPerThread);
}

TEST(MetricsRegistryTest, SnapshotIsDeterministicallyOrdered) {
  MetricsRegistry registry;
  registry.GetCounter("b_total")->Increment(2);
  registry.GetCounter("a_total", {{"node", "1"}})->Increment(1);
  registry.GetCounter("a_total", {{"node", "0"}})->Increment(3);
  registry.GetGauge("depth")->Set(5);
  registry.GetHistogram("lat_us")->Record(4);

  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].name, "a_total");
  ASSERT_EQ(snapshot.counters[0].labels.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].labels[0].second, "0");
  EXPECT_EQ(snapshot.counters[0].value, 3);
  EXPECT_EQ(snapshot.counters[1].labels[0].second, "1");
  EXPECT_EQ(snapshot.counters[2].name, "b_total");
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].value, 5);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].snapshot.count, 1);
}

TEST(MetricsRegistryTest, SnapshotStoresCanonicalSortedLabels) {
  MetricsRegistry registry;
  registry.GetCounter("ops", {{"zz", "1"}, {"aa", "2"}})->Increment();
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  ASSERT_EQ(snapshot.counters[0].labels.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].labels[0].first, "aa");
  EXPECT_EQ(snapshot.counters[0].labels[1].first, "zz");
}

TEST(MetricsRegistryTest, DefaultRegistryIsAProcessSingleton) {
  EXPECT_EQ(&MetricsRegistry::Default(), &MetricsRegistry::Default());
}

}  // namespace
}  // namespace txrep::obs
