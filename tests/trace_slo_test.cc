// SLO watchdog tests: burn-rate math over the bucketed sliding window,
// window expiry, stall detection via the progress probe (one dump per stall
// episode, re-armed by progress), and the dump sink receiving the flight
// recorder's spans. All tests run with start_thread=false and drive Poll()
// by hand, so timing is controlled by explicit sleeps against tiny windows.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "trace/slo.h"
#include "trace/tracer.h"

namespace txrep::trace {
namespace {

void SleepMillis(int64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

SloOptions ManualOptions() {
  SloOptions options;
  options.enabled = true;
  options.start_thread = false;
  options.lag_objective_micros = 100;
  options.target_fraction = 0.99;  // Error budget: 1%.
  return options;
}

TEST(TraceSloTest, BurnRateOverWindow) {
  SloWatchdog watchdog(ManualOptions());
  // 95 good, 5 violating -> violation fraction 5%, budget 1% -> burn 5.0.
  for (int i = 0; i < 95; ++i) watchdog.ObserveLag(50);
  for (int i = 0; i < 5; ++i) watchdog.ObserveLag(500);
  watchdog.Poll();
  const SloStatus status = watchdog.Snapshot();
  EXPECT_EQ(status.observations, 100);
  EXPECT_EQ(status.violations, 5);
  EXPECT_EQ(status.window_observations, 100);
  EXPECT_EQ(status.window_violations, 5);
  EXPECT_NEAR(status.burn_rate, 5.0, 1e-9);
  EXPECT_EQ(status.stalls, 0);
  EXPECT_EQ(status.dumps, 0);
  // Report mentions the objective.
  EXPECT_NE(watchdog.Report().find("objective"), std::string::npos);
}

TEST(TraceSloTest, LagAtObjectiveIsNotAViolation) {
  SloWatchdog watchdog(ManualOptions());
  watchdog.ObserveLag(100);  // Exactly the objective: good.
  watchdog.ObserveLag(101);  // One past it: violation.
  const SloStatus status = watchdog.Snapshot();
  EXPECT_EQ(status.observations, 2);
  EXPECT_EQ(status.violations, 1);
}

TEST(TraceSloTest, WindowExpiresOldObservations) {
  SloOptions options = ManualOptions();
  options.window_micros = 80'000;  // 4 buckets x 20ms.
  options.window_buckets = 4;
  SloWatchdog watchdog(options);
  for (int i = 0; i < 10; ++i) watchdog.ObserveLag(500);
  SloStatus status = watchdog.Snapshot();
  EXPECT_EQ(status.window_observations, 10);
  // After the whole window has rotated past, the window is clean but the
  // lifetime counters keep the history.
  SleepMillis(120);
  status = watchdog.Snapshot();
  EXPECT_EQ(status.window_observations, 0);
  EXPECT_EQ(status.window_violations, 0);
  EXPECT_DOUBLE_EQ(status.burn_rate, 0.0);
  EXPECT_EQ(status.observations, 10);
  EXPECT_EQ(status.violations, 10);
}

TEST(TraceSloTest, StallTriggersOneDumpPerEpisode) {
  SloOptions options = ManualOptions();
  options.stall_timeout_micros = 30'000;
  SloWatchdog watchdog(options);

  std::atomic<uint64_t> applied{7};
  std::atomic<int64_t> backlog{5};
  watchdog.SetProgressProbe([&applied, &backlog] {
    SloProbe probe;
    probe.applied_lsn = applied.load();
    probe.backlog = backlog.load();
    return probe;
  });
  std::vector<std::string> reasons;
  watchdog.SetDumpSink(
      [&reasons](const std::string& reason, const std::vector<SpanEvent>&) {
        reasons.push_back(reason);
      });

  // Progress moved once: arms the progress clock.
  watchdog.Poll();
  EXPECT_EQ(watchdog.Snapshot().stalls, 0);

  // No progress past the timeout with a backlog -> exactly one stall+dump,
  // even across repeated polls.
  SleepMillis(50);
  watchdog.Poll();
  watchdog.Poll();
  SloStatus status = watchdog.Snapshot();
  EXPECT_EQ(status.stalls, 1);
  EXPECT_EQ(status.dumps, 1);
  ASSERT_EQ(reasons.size(), 1u);
  EXPECT_NE(reasons[0].find("stalled"), std::string::npos);
  EXPECT_NE(reasons[0].find("lsn 7"), std::string::npos);

  // Progress resumes -> the stall re-arms; a second stall dumps again.
  applied.store(8);
  watchdog.Poll();
  SleepMillis(50);
  watchdog.Poll();
  status = watchdog.Snapshot();
  EXPECT_EQ(status.stalls, 2);
  EXPECT_EQ(status.dumps, 2);
}

TEST(TraceSloTest, EmptyBacklogNeverStalls) {
  SloOptions options = ManualOptions();
  options.stall_timeout_micros = 10'000;
  SloWatchdog watchdog(options);
  watchdog.SetProgressProbe([] {
    SloProbe probe;
    probe.applied_lsn = 42;
    probe.backlog = 0;  // Caught up: a quiescent replica is not a stall.
    return probe;
  });
  watchdog.Poll();
  SleepMillis(30);
  watchdog.Poll();
  EXPECT_EQ(watchdog.Snapshot().stalls, 0);
}

TEST(TraceSloTest, DumpSinkReceivesFlightRecorderSpans) {
  TracerOptions tracer_options;
  tracer_options.sample_every = 1;
  Tracer tracer(tracer_options);
  const TraceContext ctx = tracer.Mint(1);
  tracer.RecordSpan(ctx, 1, SpanStage::kApply, 100, 200);

  SloOptions options = ManualOptions();
  options.stall_timeout_micros = 10'000;
  SloWatchdog watchdog(options, /*metrics=*/nullptr, &tracer);
  watchdog.SetProgressProbe([] {
    SloProbe probe;
    probe.applied_lsn = 1;
    probe.backlog = 3;
    return probe;
  });
  std::vector<SpanEvent> dumped;
  watchdog.SetDumpSink(
      [&dumped](const std::string&, const std::vector<SpanEvent>& events) {
        dumped = events;
      });
  watchdog.Poll();  // Arms the progress clock (lsn 0 -> 1 is progress).
  SleepMillis(30);
  watchdog.Poll();
  ASSERT_EQ(watchdog.Snapshot().dumps, 1);
  ASSERT_EQ(dumped.size(), 1u);
  EXPECT_EQ(dumped[0].lsn, 1u);
  EXPECT_EQ(dumped[0].stage, SpanStage::kApply);
}

TEST(TraceSloTest, BackgroundThreadStartsAndStops) {
  SloOptions options = ManualOptions();
  options.start_thread = true;
  options.poll_interval_micros = 5'000;
  SloWatchdog watchdog(options);
  watchdog.Start();
  for (int i = 0; i < 50; ++i) watchdog.ObserveLag(500);
  SleepMillis(20);  // Let the poller run at least once.
  watchdog.Stop();
  watchdog.Stop();  // Idempotent.
  EXPECT_EQ(watchdog.Snapshot().observations, 50);
}

}  // namespace
}  // namespace txrep::trace
