#include "sql/lexer.h"

#include "gtest/gtest.h"

namespace txrep::sql {
namespace {

TEST(LexerTest, EmptyInputYieldsEnd) {
  Result<std::vector<Token>> tokens = Lex("");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 1u);
  EXPECT_EQ((*tokens)[0].type, TokenType::kEnd);
}

TEST(LexerTest, IdentifiersAndKeywords) {
  Result<std::vector<Token>> tokens = Lex("SELECT foo _bar Baz9");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 5u);
  EXPECT_TRUE((*tokens)[0].IsKeyword("select"));
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_EQ((*tokens)[1].text, "foo");
  EXPECT_EQ((*tokens)[2].text, "_bar");
  EXPECT_EQ((*tokens)[3].text, "Baz9");
}

TEST(LexerTest, IntegerAndFloatLiterals) {
  Result<std::vector<Token>> tokens = Lex("42 3.5 0.25 1e3 2E-2 7.");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kInteger);
  EXPECT_EQ((*tokens)[0].int_value, 42);
  EXPECT_EQ((*tokens)[1].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ((*tokens)[1].float_value, 3.5);
  EXPECT_DOUBLE_EQ((*tokens)[2].float_value, 0.25);
  EXPECT_DOUBLE_EQ((*tokens)[3].float_value, 1000.0);
  EXPECT_DOUBLE_EQ((*tokens)[4].float_value, 0.02);
  EXPECT_EQ((*tokens)[5].type, TokenType::kFloat);  // "7." is a float.
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  Result<std::vector<Token>> tokens = Lex("'hello' 'it''s' ''");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "hello");
  EXPECT_EQ((*tokens)[1].text, "it's");
  EXPECT_EQ((*tokens)[2].text, "");
}

TEST(LexerTest, UnterminatedStringErrors) {
  EXPECT_TRUE(Lex("'oops").status().IsInvalidArgument());
}

TEST(LexerTest, SymbolsIncludingTwoChar) {
  Result<std::vector<Token>> tokens = Lex("( ) , ; * = < <= > >= - +");
  ASSERT_TRUE(tokens.ok());
  const char* expected[] = {"(", ")", ",", ";", "*", "=",
                            "<", "<=", ">", ">=", "-", "+"};
  for (size_t i = 0; i < 12; ++i) {
    EXPECT_TRUE((*tokens)[i].IsSymbol(expected[i]))
        << "token " << i << " is \"" << (*tokens)[i].text << "\"";
  }
}

TEST(LexerTest, LineCommentsSkipped) {
  Result<std::vector<Token>> tokens = Lex("a -- comment here\nb");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);
  EXPECT_EQ((*tokens)[0].text, "a");
  EXPECT_EQ((*tokens)[1].text, "b");
}

TEST(LexerTest, UnexpectedCharacterErrors) {
  EXPECT_TRUE(Lex("SELECT @").status().IsInvalidArgument());
}

TEST(LexerTest, IntegerOverflowErrors) {
  EXPECT_TRUE(Lex("999999999999999999999999").status().IsInvalidArgument());
}

TEST(LexerTest, OffsetsRecorded) {
  Result<std::vector<Token>> tokens = Lex("ab  cd");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].offset, 0u);
  EXPECT_EQ((*tokens)[1].offset, 4u);
}

}  // namespace
}  // namespace txrep::sql
