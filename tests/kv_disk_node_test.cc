#include "kv/disk_node.h"

#include <cstdio>
#include <fstream>

#include "core/transaction_manager.h"
#include "kv/inmemory_node.h"
#include "gtest/gtest.h"
#include "qt/query_translator.h"
#include "rel/database.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace txrep::kv {
namespace {

class DiskKvNodeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "txrep_disk_node_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".log";
    std::remove(path_.c_str());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".compact").c_str());
  }

  size_t FileSize() {
    std::ifstream in(path_, std::ios::binary | std::ios::ate);
    return in.good() ? static_cast<size_t>(in.tellg()) : 0;
  }

  std::string path_;
};

TEST_F(DiskKvNodeTest, BasicOps) {
  auto node = DiskKvNode::Open(path_);
  ASSERT_TRUE(node.ok()) << node.status().ToString();
  TXREP_ASSERT_OK((*node)->Put("k", "v"));
  EXPECT_EQ(*(*node)->Get("k"), "v");
  EXPECT_TRUE((*node)->Contains("k"));
  TXREP_ASSERT_OK((*node)->Delete("k"));
  EXPECT_TRUE((*node)->Get("k").status().IsNotFound());
  EXPECT_EQ((*node)->Size(), 0u);
}

TEST_F(DiskKvNodeTest, StateSurvivesReopen) {
  {
    auto node = DiskKvNode::Open(path_);
    ASSERT_TRUE(node.ok());
    for (int i = 0; i < 50; ++i) {
      TXREP_ASSERT_OK(
          (*node)->Put("key" + std::to_string(i), "value" + std::to_string(i)));
    }
    TXREP_ASSERT_OK((*node)->Delete("key7"));
    TXREP_ASSERT_OK((*node)->Put("key9", "overwritten"));
    TXREP_ASSERT_OK((*node)->Sync());
  }
  auto node = DiskKvNode::Open(path_);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ((*node)->Size(), 49u);
  EXPECT_TRUE((*node)->Get("key7").status().IsNotFound());
  EXPECT_EQ(*(*node)->Get("key9"), "overwritten");
  EXPECT_EQ(*(*node)->Get("key0"), "value0");
  EXPECT_EQ((*node)->replayed_records(), 52u);  // 50 puts + delete + rewrite.
  EXPECT_EQ((*node)->recovered_truncated_bytes(), 0u);
}

TEST_F(DiskKvNodeTest, BinarySafeKeysAndValues) {
  const std::string key("\x00\x01_\xff", 4);
  const std::string value("\x00val\xfe", 5);
  {
    auto node = DiskKvNode::Open(path_);
    ASSERT_TRUE(node.ok());
    TXREP_ASSERT_OK((*node)->Put(key, value));
  }
  auto node = DiskKvNode::Open(path_);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(*(*node)->Get(key), value);
}

TEST_F(DiskKvNodeTest, TornTailIsTruncatedOnRecovery) {
  {
    auto node = DiskKvNode::Open(path_);
    ASSERT_TRUE(node.ok());
    TXREP_ASSERT_OK((*node)->Put("a", "1"));
    TXREP_ASSERT_OK((*node)->Put("b", "2"));
    TXREP_ASSERT_OK((*node)->Sync());
  }
  // Simulate a crash mid-append: write half a record.
  {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out << "\x20partial";
  }
  const size_t corrupted_size = FileSize();
  auto node = DiskKvNode::Open(path_);
  ASSERT_TRUE(node.ok()) << node.status().ToString();
  EXPECT_EQ((*node)->Size(), 2u);
  EXPECT_EQ(*(*node)->Get("b"), "2");
  EXPECT_GT((*node)->recovered_truncated_bytes(), 0u);
  EXPECT_LT(FileSize(), corrupted_size);  // Tail physically removed.
  // And the node keeps working after recovery.
  TXREP_ASSERT_OK((*node)->Put("c", "3"));
}

TEST_F(DiskKvNodeTest, ChecksumCatchesBitrot) {
  {
    auto node = DiskKvNode::Open(path_);
    ASSERT_TRUE(node.ok());
    TXREP_ASSERT_OK((*node)->Put("a", "1"));
    TXREP_ASSERT_OK((*node)->Put("b", "2"));
  }
  // Flip a byte inside the *second* record's body.
  {
    std::fstream file(path_, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(-3, std::ios::end);
    file.put('X');
  }
  auto node = DiskKvNode::Open(path_);
  ASSERT_TRUE(node.ok());
  // The corrupt record and everything after it is dropped; the prefix lives.
  EXPECT_EQ((*node)->Size(), 1u);
  EXPECT_EQ(*(*node)->Get("a"), "1");
}

TEST_F(DiskKvNodeTest, CompactShrinksLogAndPreservesState) {
  {
    auto node = DiskKvNode::Open(path_);
    ASSERT_TRUE(node.ok());
    for (int round = 0; round < 20; ++round) {
      for (int i = 0; i < 10; ++i) {
        TXREP_ASSERT_OK((*node)->Put("key" + std::to_string(i),
                                     "round" + std::to_string(round)));
      }
    }
    const size_t before = FileSize();
    TXREP_ASSERT_OK((*node)->Compact());
    TXREP_ASSERT_OK((*node)->Sync());
    EXPECT_LT(FileSize(), before / 5);
    EXPECT_EQ((*node)->Size(), 10u);
    // Node still writable after compaction.
    TXREP_ASSERT_OK((*node)->Put("post", "compact"));
  }
  auto node = DiskKvNode::Open(path_);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ((*node)->Size(), 11u);
  EXPECT_EQ(*(*node)->Get("key3"), "round19");
  EXPECT_EQ(*(*node)->Get("post"), "compact");
}

TEST_F(DiskKvNodeTest, DumpSorted) {
  auto node = DiskKvNode::Open(path_);
  ASSERT_TRUE(node.ok());
  TXREP_ASSERT_OK((*node)->Put("c", "3"));
  TXREP_ASSERT_OK((*node)->Put("a", "1"));
  StoreDump dump = (*node)->Dump();
  ASSERT_EQ(dump.size(), 2u);
  EXPECT_EQ(dump[0].first, "a");
}

TEST_F(DiskKvNodeTest, WorksAsReplicationTarget) {
  // End to end: the TM replays a synthetic log onto the disk node; after a
  // "crash" (close) and reopen, the replica state is intact and equals the
  // in-memory replay.
  rel::Database db;
  workload::SyntheticWorkload workload(
      {.num_items = 40, .hot_range = 10, .seed = 23});
  TXREP_ASSERT_OK(workload.CreateSchema(db));
  TXREP_ASSERT_OK(workload.Populate(db));
  TXREP_ASSERT_OK(workload.Run(db, 150));

  qt::QueryTranslator translator(&db.catalog(), {});
  InMemoryKvNode reference;
  TXREP_ASSERT_OK(testing::ReplaySerial(db, translator, &reference));

  {
    auto node = DiskKvNode::Open(path_);
    ASSERT_TRUE(node.ok());
    core::TmOptions options;
    options.top_threads = 4;
    options.bottom_threads = 4;
    TXREP_ASSERT_OK(translator.InitializeIndexes(node->get()));
    core::TransactionManager tm(node->get(), &translator, options);
    for (rel::LogTransaction& txn : db.log().ReadSince(0)) {
      tm.SubmitUpdate(std::move(txn));
    }
    TXREP_ASSERT_OK(tm.WaitIdle());
    TXREP_ASSERT_OK((*node)->Sync());
  }
  auto reopened = DiskKvNode::Open(path_);
  ASSERT_TRUE(reopened.ok());
  testing::ExpectDumpsEqual(reference, **reopened);
}

}  // namespace
}  // namespace txrep::kv
