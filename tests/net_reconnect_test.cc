// Kill-and-reconnect across the wire: a RemoteReplica fed over socketpairs
// survives a hard connection loss mid-stream — server-side (DropSessions)
// or client-side (InjectDisconnect) — reconnects, resumes from its
// high-water LSN, dedups the replayed retention, and ends byte-identical to
// serial replay.

#include <memory>
#include <string>
#include <utility>

#include "common/clock.h"
#include "gtest/gtest.h"
#include "kv/inmemory_node.h"
#include "mw/broker.h"
#include "mw/publisher.h"
#include "net/endpoint.h"
#include "net/socket.h"
#include "codec/schema_codec.h"
#include "qt/query_translator.h"
#include "rel/database.h"
#include "rel/statement.h"
#include "test_util.h"
#include "txrep/remote_replica.h"

namespace txrep {
namespace {

using rel::Value;

/// Table + hash/range indexes + a mixed insert/update/delete workload, so
/// index maintenance rides every replicated transaction.
void BuildWorkload(rel::Database& db, int txns) {
  auto schema = rel::TableSchema::Create("S",
                                         {{"ID", rel::ValueType::kInt64},
                                          {"VAL", rel::ValueType::kInt64}},
                                         "ID");
  TXREP_ASSERT_OK(schema.status());
  TXREP_ASSERT_OK(db.CreateTable(std::move(*schema)));
  TXREP_ASSERT_OK(db.CreateHashIndex("S", "VAL"));
  TXREP_ASSERT_OK(db.CreateRangeIndex("S", "VAL"));
  for (int i = 0; i < txns; ++i) {
    std::vector<rel::Statement> statements;
    statements.push_back(rel::InsertStatement{
        "S", {}, {Value::Int(i), Value::Int(i % 7)}});
    if (i % 3 == 1) {
      statements.push_back(rel::UpdateStatement{
          "S",
          {{"VAL", Value::Int(i % 11)}},
          {rel::Predicate{"ID", rel::PredicateOp::kEq, Value::Int(i / 2),
                          {}}}});
    }
    if (i % 5 == 4) {
      statements.push_back(rel::DeleteStatement{
          "S",
          {rel::Predicate{"ID", rel::PredicateOp::kEq, Value::Int(i / 3),
                          {}}}});
    }
    TXREP_ASSERT_OK(db.ExecuteTransaction(statements).status());
  }
}

enum class KillSide { kServer, kClient };

void RunKillAndReconnect(KillSide side) {
  rel::Database db;
  const int kTxns = 60;
  BuildWorkload(db, kTxns);
  const uint64_t last_lsn = db.log().LastLsn();
  ASSERT_GE(last_lsn, static_cast<uint64_t>(kTxns));

  // Serial ground truth.
  qt::QueryTranslator translator(&db.catalog());
  kv::InMemoryKvNode serial_store;
  TXREP_ASSERT_OK(testing::ReplaySerial(db, translator, &serial_store));

  mw::Broker broker;
  net::EndpointOptions endpoint_options;
  endpoint_options.retention_capacity = 4096;
  net::NetEndpoint endpoint(&broker, endpoint_options);
  endpoint.SetCatalog(codec::EncodeCatalog(db.catalog()));
  struct Teardown {
    net::NetEndpoint* endpoint;
    mw::Broker* broker;
    ~Teardown() {
      endpoint->Stop();
      broker->Shutdown();
    }
  } teardown{&endpoint, &broker};

  RemoteReplicaOptions replica_options;
  replica_options.socket_factory = [&endpoint]() -> Result<net::Socket> {
    TXREP_ASSIGN_OR_RETURN(auto pair, net::Socket::CreatePair());
    TXREP_RETURN_IF_ERROR(endpoint.ServeSocket(std::move(pair.first)));
    return std::move(pair.second);
  };
  replica_options.subscription.reconnect_backoff_micros = 1000;
  RemoteReplica replica(std::move(replica_options));
  TXREP_ASSERT_OK(replica.Start());

  // The catalog crossed the wire, not the address space.
  EXPECT_EQ(replica.catalog().TableNames(), db.catalog().TableNames());

  mw::PublisherAgent publisher(&db.log(), &broker,
                               {.topic = "txrep.log", .batch_size = 4,
                                .poll_interval_micros = 100,
                                .start_after_lsn = 0});

  // Ship half, wait for it to apply, then pull the plug.
  const uint64_t kill_lsn = last_lsn / 2;
  while (publisher.shipped_lsn() < kill_lsn) {
    TXREP_ASSERT_OK(publisher.PumpOnce().status());
  }
  ASSERT_TRUE(replica.WaitForLsn(kill_lsn)) << replica.health().ToString();
  if (side == KillSide::kServer) {
    endpoint.DropSessions();
  } else {
    replica.subscription()->InjectDisconnect();
  }

  // Ship the rest; the replica must reconnect and catch up.
  TXREP_ASSERT_OK(publisher.PumpAll());
  ASSERT_TRUE(replica.WaitForLsn(last_lsn)) << replica.health().ToString();
  for (int i = 0; replica.subscription()->connects() < 2 && i < 5000; ++i) {
    SleepForMicros(1000);
  }
  EXPECT_GE(replica.subscription()->connects(), 2)
      << "connection was never killed and re-established";
  TXREP_ASSERT_OK(replica.health());

  testing::ExpectDumpsEqual(serial_store, replica.cluster());
  replica.Stop();
}

TEST(NetReconnectTest, SurvivesServerSideKill) {
  RunKillAndReconnect(KillSide::kServer);
}

TEST(NetReconnectTest, SurvivesClientSideKill) {
  RunKillAndReconnect(KillSide::kClient);
}

TEST(NetReconnectTest, FreshSubscriberAfterEvictionMustBootstrap) {
  // Retention window of 2 batches, 40 txns: by the time a fresh replica
  // dials, the early batches are gone — the endpoint must refuse rather
  // than serve a stream with a silent gap.
  rel::Database db;
  BuildWorkload(db, 40);

  mw::Broker broker;
  net::EndpointOptions endpoint_options;
  endpoint_options.retention_capacity = 2;
  net::NetEndpoint endpoint(&broker, endpoint_options);
  endpoint.SetCatalog(codec::EncodeCatalog(db.catalog()));
  struct Teardown {
    net::NetEndpoint* endpoint;
    mw::Broker* broker;
    ~Teardown() {
      endpoint->Stop();
      broker->Shutdown();
    }
  } teardown{&endpoint, &broker};

  mw::PublisherAgent publisher(&db.log(), &broker,
                               {.topic = "txrep.log", .batch_size = 4,
                                .poll_interval_micros = 100,
                                .start_after_lsn = 0});
  TXREP_ASSERT_OK(publisher.PumpAll());
  broker.Flush();
  for (int i = 0; endpoint.retained_floor_lsn() == 0 && i < 5000; ++i) {
    SleepForMicros(1000);
  }
  ASSERT_GT(endpoint.retained_floor_lsn(), 0u);

  RemoteReplicaOptions replica_options;
  replica_options.socket_factory = [&endpoint]() -> Result<net::Socket> {
    TXREP_ASSIGN_OR_RETURN(auto pair, net::Socket::CreatePair());
    TXREP_RETURN_IF_ERROR(endpoint.ServeSocket(std::move(pair.first)));
    return std::move(pair.second);
  };
  RemoteReplica replica(std::move(replica_options));
  Status status = replica.Start();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("bootstrap required"), std::string::npos)
      << status.ToString();
}

}  // namespace
}  // namespace txrep
