// Paper Appendix A: "we can add more subscriber agents to provide multiple
// replicas without putting any extra load on the publisher agent". Two
// independent replica stacks (subscriber + TM + cluster) hang off one
// broker topic; both must converge to the same state as serial replay.

#include "core/transaction_manager.h"
#include "gtest/gtest.h"
#include "kv/inmemory_node.h"
#include "mw/broker.h"
#include "mw/publisher.h"
#include "mw/subscriber.h"
#include "qt/query_translator.h"
#include "rel/database.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace txrep::mw {
namespace {

/// One replica-side stack: cluster + TM + subscriber agent.
struct ReplicaStack {
  ReplicaStack(Broker* broker, const std::string& topic,
               const qt::QueryTranslator* translator)
      : tm(&store, translator,
           core::TmOptions{.top_threads = 6, .bottom_threads = 6}),
        subscriber(broker, topic, [this](rel::LogTransaction txn) {
          tm.SubmitUpdate(std::move(txn));
          return tm.health();
        }) {}

  kv::InMemoryKvNode store;
  core::TransactionManager tm;
  SubscriberAgent subscriber;
};

TEST(MultiReplicaTest, TwoReplicasConvergeIdentically) {
  rel::Database db;
  workload::SyntheticWorkload workload(
      {.num_items = 60, .hot_range = 15, .seed = 41});
  TXREP_ASSERT_OK(workload.CreateSchema(db));
  TXREP_ASSERT_OK(workload.Populate(db));

  qt::QueryTranslator translator(&db.catalog(), {});
  Broker broker;
  auto replica_a = std::make_unique<ReplicaStack>(&broker, "log", &translator);
  auto replica_b = std::make_unique<ReplicaStack>(&broker, "log", &translator);
  TXREP_ASSERT_OK(translator.InitializeIndexes(&replica_a->store));
  TXREP_ASSERT_OK(translator.InitializeIndexes(&replica_b->store));

  // Run the update stream and ship it.
  TXREP_ASSERT_OK(workload.Run(db, 250));
  PublisherAgent publisher(&db.log(), &broker,
                           {.topic = "log", .batch_size = 20,
                            .poll_interval_micros = 200,
                            .start_after_lsn = 0});
  TXREP_ASSERT_OK(publisher.PumpAll());
  broker.Flush();
  const uint64_t target = db.log().LastLsn();
  ASSERT_TRUE(replica_a->subscriber.WaitForLsn(target));
  ASSERT_TRUE(replica_b->subscriber.WaitForLsn(target));
  TXREP_ASSERT_OK(replica_a->tm.WaitIdle());
  TXREP_ASSERT_OK(replica_b->tm.WaitIdle());

  // Reference: serial replay (population commits included — the replicas
  // consumed the full log from LSN 0 too).
  kv::InMemoryKvNode reference;
  TXREP_ASSERT_OK(testing::ReplaySerial(db, translator, &reference));

  testing::ExpectDumpsEqual(reference, replica_a->store);
  testing::ExpectDumpsEqual(replica_a->store, replica_b->store);

  // Publisher shipped each message once, regardless of subscriber count.
  EXPECT_EQ(broker.published(), publisher.messages_published());

  broker.Shutdown();
  replica_a->subscriber.Stop();
  replica_b->subscriber.Stop();
}

TEST(MultiReplicaTest, LateSubscriberMissesEarlierMessages) {
  // Topic semantics (not a queue): a subscriber only sees messages published
  // after it subscribed — late replicas must bootstrap from a snapshot, which
  // is exactly why TxRepSystem does snapshot-then-ship.
  rel::Database db;
  workload::SyntheticWorkload workload(
      {.num_items = 10, .hot_range = 10, .seed = 1});
  TXREP_ASSERT_OK(workload.CreateSchema(db));
  TXREP_ASSERT_OK(workload.Populate(db));
  TXREP_ASSERT_OK(workload.Run(db, 10));

  Broker broker;
  PublisherAgent publisher(&db.log(), &broker,
                           {.topic = "log", .batch_size = 100,
                            .poll_interval_micros = 200,
                            .start_after_lsn = 0});
  TXREP_ASSERT_OK(publisher.PumpAll());
  broker.Flush();

  int received = 0;
  SubscriberAgent late(&broker, "log", [&](rel::LogTransaction) {
    ++received;
    return Status::OK();
  });
  TXREP_ASSERT_OK(workload.Run(db, 5));
  TXREP_ASSERT_OK(publisher.PumpAll());
  broker.Flush();
  ASSERT_TRUE(late.WaitForLsn(db.log().LastLsn()));
  EXPECT_EQ(received, 5);  // Only the post-subscription stream.
  broker.Shutdown();
  late.Stop();
}

}  // namespace
}  // namespace txrep::mw
