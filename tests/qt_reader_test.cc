#include "qt/replica_reader.h"

#include "gtest/gtest.h"
#include "kv/inmemory_node.h"
#include "qt/query_translator.h"
#include "rel/database.h"
#include "test_util.h"

namespace txrep::qt {
namespace {

using rel::Predicate;
using rel::PredicateOp;
using rel::SelectStatement;
using rel::Value;

class ReplicaReaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<rel::TableSchema> item =
        rel::TableSchema::Create("ITEM",
                                 {{"I_ID", rel::ValueType::kInt64},
                                  {"I_TITLE", rel::ValueType::kString},
                                  {"I_COST", rel::ValueType::kDouble},
                                  {"I_STOCK", rel::ValueType::kInt64}},
                                 "I_ID");
    ASSERT_TRUE(item.ok());
    TXREP_ASSERT_OK(db_.CreateTable(*item));
    TXREP_ASSERT_OK(db_.CreateHashIndex("ITEM", "I_TITLE"));
    TXREP_ASSERT_OK(db_.CreateRangeIndex("ITEM", "I_COST"));
    for (int i = 1; i <= 30; ++i) {
      TXREP_ASSERT_OK(
          db_.ExecuteTransaction(
                {rel::InsertStatement{
                    "ITEM",
                    {},
                    {Value::Int(i), Value::Str("title" + std::to_string(i % 5)),
                     Value::Real(i * 10.0), Value::Int(i)}}})
              .status());
    }
    translator_ = std::make_unique<QueryTranslator>(&db_.catalog(), blink_);
    reader_ = std::make_unique<ReplicaReader>(&db_.catalog(), blink_);
    TXREP_ASSERT_OK(translator_->LoadSnapshot(&store_, db_));
  }

  blink::BlinkTreeOptions blink_;
  rel::Database db_;
  kv::InMemoryKvNode store_;
  std::unique_ptr<QueryTranslator> translator_;
  std::unique_ptr<ReplicaReader> reader_;
};

TEST_F(ReplicaReaderTest, GetByPk) {
  Result<rel::Row> row = reader_->GetByPk(&store_, "ITEM", Value::Int(7));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0].AsInt(), 7);
  EXPECT_TRUE(
      reader_->GetByPk(&store_, "ITEM", Value::Int(999)).status().IsNotFound());
}

TEST_F(ReplicaReaderTest, GetByAttributeViaHashIndex) {
  Result<std::vector<rel::Row>> rows =
      reader_->GetByAttribute(&store_, "ITEM", "I_TITLE", Value::Str("title2"));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 6u);  // 2,7,12,17,22,27.
  for (const rel::Row& row : *rows) {
    EXPECT_EQ(row[1].AsString(), "title2");
  }
}

TEST_F(ReplicaReaderTest, GetByAttributeMissValueReturnsEmpty) {
  Result<std::vector<rel::Row>> rows =
      reader_->GetByAttribute(&store_, "ITEM", "I_TITLE", Value::Str("nope"));
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(ReplicaReaderTest, GetByAttributeWithoutIndexFails) {
  EXPECT_TRUE(
      reader_->GetByAttribute(&store_, "ITEM", "I_STOCK", Value::Int(1))
          .status()
          .code() == StatusCode::kFailedPrecondition);
}

TEST_F(ReplicaReaderTest, RangeQueryViaBlink) {
  Result<std::vector<rel::Row>> rows = reader_->RangeQuery(
      &store_, "ITEM", "I_COST", Value::Real(95.0), Value::Real(135.0));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);  // 100,110,120,130.
}

TEST_F(ReplicaReaderTest, RangeQueryOpenBounds) {
  Result<std::vector<rel::Row>> rows = reader_->RangeQuery(
      &store_, "ITEM", "I_COST", std::nullopt, Value::Real(30.0));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
}

TEST_F(ReplicaReaderTest, SelectPlansPkEquality) {
  Result<std::vector<rel::Row>> rows = reader_->Select(
      &store_, SelectStatement{
                   "ITEM", {}, {Predicate{"I_ID", PredicateOp::kEq,
                                          Value::Int(3), {}}}});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
}

TEST_F(ReplicaReaderTest, SelectPlansHashEqualityWithResidual) {
  Result<std::vector<rel::Row>> rows = reader_->Select(
      &store_,
      SelectStatement{
          "ITEM",
          {},
          {Predicate{"I_TITLE", PredicateOp::kEq, Value::Str("title2"), {}},
           Predicate{"I_COST", PredicateOp::kGt, Value::Real(100.0), {}}}});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);  // 12,17,22,27.
}

TEST_F(ReplicaReaderTest, SelectPlansRangeBetween) {
  Result<std::vector<rel::Row>> rows = reader_->Select(
      &store_, SelectStatement{"ITEM",
                               {},
                               {Predicate{"I_COST", PredicateOp::kBetween,
                                          Value::Real(50.0),
                                          Value::Real(80.0)}}});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);  // 50,60,70,80.
}

TEST_F(ReplicaReaderTest, SelectRangeBoundaryTrimmedByResidual) {
  // kGt uses the index with an inclusive bound, residual filter trims it.
  Result<std::vector<rel::Row>> rows = reader_->Select(
      &store_, SelectStatement{"ITEM",
                               {},
                               {Predicate{"I_COST", PredicateOp::kGt,
                                          Value::Real(280.0), {}}}});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);  // 290, 300 — not 280 itself.
}

TEST_F(ReplicaReaderTest, SelectProjection) {
  Result<std::vector<rel::Row>> rows = reader_->Select(
      &store_, SelectStatement{"ITEM",
                               {"I_COST", "I_ID"},
                               {Predicate{"I_ID", PredicateOp::kEq,
                                          Value::Int(4), {}}}});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  ASSERT_EQ((*rows)[0].size(), 2u);
  EXPECT_DOUBLE_EQ((*rows)[0][0].AsDouble(), 40.0);
  EXPECT_EQ((*rows)[0][1].AsInt(), 4);
}

TEST_F(ReplicaReaderTest, SelectWithoutIndexableConjunctFails) {
  Result<std::vector<rel::Row>> rows = reader_->Select(
      &store_, SelectStatement{"ITEM",
                               {},
                               {Predicate{"I_STOCK", PredicateOp::kGt,
                                          Value::Int(5), {}}}});
  EXPECT_EQ(rows.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ReplicaReaderTest, SelectFromUnknownTableFails) {
  EXPECT_TRUE(reader_->Select(&store_, SelectStatement{"NOPE", {}, {}})
                  .status()
                  .IsNotFound());
}

}  // namespace
}  // namespace txrep::qt
