#ifndef TXREP_TESTS_TEST_UTIL_H_
#define TXREP_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "core/transaction_manager.h"
#include "kv/kv_store.h"
#include "qt/query_translator.h"
#include "rel/database.h"
#include "rel/txlog.h"

#include "gtest/gtest.h"

namespace txrep::testing {

/// Gtest helper: asserts a Status is OK, printing it otherwise.
#define TXREP_ASSERT_OK(expr)                                \
  do {                                                       \
    ::txrep::Status _s = (expr);                             \
    ASSERT_TRUE(_s.ok()) << "status: " << _s.ToString();     \
  } while (0)

#define TXREP_EXPECT_OK(expr)                                \
  do {                                                       \
    ::txrep::Status _s = (expr);                             \
    EXPECT_TRUE(_s.ok()) << "status: " << _s.ToString();     \
  } while (0)

/// Replays the full transaction log of `db` serially into `store`
/// (snapshot-free: the store must start empty; indexes are initialized).
Status ReplaySerial(rel::Database& db, const qt::QueryTranslator& translator,
                    kv::KvStore* store);

/// Replays the full transaction log of `db` through a TransactionManager
/// with the given options. Returns the TM stats through `stats_out` if
/// non-null.
Status ReplayConcurrent(rel::Database& db,
                        const qt::QueryTranslator& translator,
                        kv::KvStore* store, core::TmOptions options,
                        core::TmStats* stats_out = nullptr);

/// Asserts two store dumps are byte-identical; on mismatch prints the first
/// differing key.
void ExpectDumpsEqual(kv::KvStore& a, kv::KvStore& b);

/// Verifies the replica's *logical* content matches the database: every row
/// present and equal, row-object count consistent, hash-index postings
/// exactly the matching row keys, every B-link range index containing
/// exactly the expected (value, row key) entries and passing structural
/// validation.
void VerifyReplicaMatchesDatabase(kv::KvStore& store, rel::Database& db,
                                  const qt::QueryTranslator& translator);

}  // namespace txrep::testing

#endif  // TXREP_TESTS_TEST_UTIL_H_
