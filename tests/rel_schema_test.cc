#include "rel/schema.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace txrep::rel {
namespace {

Result<TableSchema> ItemSchema() {
  return TableSchema::Create("ITEM",
                             {{"I_ID", ValueType::kInt64},
                              {"I_TITLE", ValueType::kString},
                              {"I_COST", ValueType::kDouble}},
                             "I_ID");
}

TEST(TableSchemaTest, CreateBasics) {
  Result<TableSchema> schema = ItemSchema();
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->table_name(), "ITEM");
  EXPECT_EQ(schema->num_columns(), 3u);
  EXPECT_EQ(schema->pk_index(), 0u);
  EXPECT_EQ(schema->pk_column(), "I_ID");
}

TEST(TableSchemaTest, RejectsBadDefinitions) {
  EXPECT_TRUE(TableSchema::Create("", {{"a", ValueType::kInt64}}, "a")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(TableSchema::Create("T", {}, "a").status().IsInvalidArgument());
  EXPECT_TRUE(TableSchema::Create(
                  "T", {{"a", ValueType::kInt64}, {"a", ValueType::kInt64}},
                  "a")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(TableSchema::Create("T", {{"a", ValueType::kInt64}}, "zzz")
                  .status()
                  .IsInvalidArgument());
  // DOUBLE primary keys are rejected.
  EXPECT_TRUE(TableSchema::Create("T", {{"a", ValueType::kDouble}}, "a")
                  .status()
                  .IsInvalidArgument());
}

TEST(TableSchemaTest, ColumnIndexLookup) {
  TableSchema schema = *ItemSchema();
  EXPECT_EQ(*schema.ColumnIndex("I_COST"), 2u);
  EXPECT_TRUE(schema.ColumnIndex("NOPE").status().IsNotFound());
}

TEST(TableSchemaTest, IndexDeclarations) {
  TableSchema schema = *ItemSchema();
  TXREP_ASSERT_OK(schema.AddHashIndex("I_TITLE"));
  TXREP_ASSERT_OK(schema.AddRangeIndex("I_COST"));
  EXPECT_TRUE(schema.HasHashIndexOn(1));
  EXPECT_FALSE(schema.HasHashIndexOn(2));
  EXPECT_TRUE(schema.HasRangeIndexOn(2));
  EXPECT_TRUE(schema.AddHashIndex("I_TITLE").IsAlreadyExists());
  EXPECT_TRUE(schema.AddHashIndex("NOPE").IsNotFound());
}

TEST(TableSchemaTest, ValidateAndCoerceRow) {
  TableSchema schema = *ItemSchema();
  Row good = {Value::Int(1), Value::Str("x"), Value::Real(9.5)};
  TXREP_ASSERT_OK(schema.ValidateAndCoerceRow(good));

  Row coerce = {Value::Int(1), Value::Str("x"), Value::Int(9)};
  TXREP_ASSERT_OK(schema.ValidateAndCoerceRow(coerce));
  EXPECT_EQ(coerce[2].type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(coerce[2].AsDouble(), 9.0);

  Row bad_arity = {Value::Int(1)};
  EXPECT_TRUE(schema.ValidateAndCoerceRow(bad_arity).IsInvalidArgument());

  Row null_pk = {Value::Null(), Value::Str("x"), Value::Real(1.0)};
  EXPECT_TRUE(schema.ValidateAndCoerceRow(null_pk).IsInvalidArgument());

  Row type_mismatch = {Value::Int(1), Value::Int(5), Value::Real(1.0)};
  EXPECT_TRUE(schema.ValidateAndCoerceRow(type_mismatch).IsInvalidArgument());

  Row nullable = {Value::Int(1), Value::Null(), Value::Null()};
  TXREP_ASSERT_OK(schema.ValidateAndCoerceRow(nullable));
}

TEST(TableSchemaTest, ToStringMentionsPk) {
  TableSchema schema = *ItemSchema();
  EXPECT_NE(schema.ToString().find("I_ID INT PRIMARY KEY"), std::string::npos);
}

TEST(CatalogTest, AddAndLookup) {
  Catalog catalog;
  TXREP_ASSERT_OK(catalog.AddTable(*ItemSchema()));
  EXPECT_TRUE(catalog.HasTable("ITEM"));
  EXPECT_EQ((*catalog.GetTable("ITEM"))->table_name(), "ITEM");
  EXPECT_TRUE(catalog.GetTable("NOPE").status().IsNotFound());
  EXPECT_TRUE(catalog.AddTable(*ItemSchema()).IsAlreadyExists());
  EXPECT_EQ(catalog.TableNames(), std::vector<std::string>{"ITEM"});
}

TEST(CatalogTest, MutableAccess) {
  Catalog catalog;
  TXREP_ASSERT_OK(catalog.AddTable(*ItemSchema()));
  Result<TableSchema*> schema = catalog.GetMutableTable("ITEM");
  ASSERT_TRUE(schema.ok());
  TXREP_ASSERT_OK((*schema)->AddHashIndex("I_TITLE"));
  EXPECT_TRUE((*catalog.GetTable("ITEM"))->HasHashIndexOn(1));
}

}  // namespace
}  // namespace txrep::rel
