// Aggregates, ORDER BY and LIMIT — shared evaluator semantics on both the
// database side and the replica side, plus parser coverage.

#include "rel/select_eval.h"

#include "gtest/gtest.h"
#include "kv/inmemory_node.h"
#include "qt/query_translator.h"
#include "qt/replica_reader.h"
#include "rel/database.h"
#include "sql/interpreter.h"
#include "sql/parser.h"
#include "test_util.h"

namespace txrep::rel {
namespace {

class SelectEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TXREP_ASSERT_OK(sql::ExecuteSql(db_, R"sql(
      CREATE TABLE ITEM (I_ID INT PRIMARY KEY, I_TITLE VARCHAR(40),
                         I_COST DOUBLE, I_STOCK INT);
      CREATE INDEX ON ITEM (I_TITLE);
      CREATE RANGE INDEX ON ITEM (I_COST);
      INSERT INTO ITEM VALUES (1, 'a', 10.0, 5);
      INSERT INTO ITEM VALUES (2, 'b', 20.0, NULL);
      INSERT INTO ITEM VALUES (3, 'a', 30.0, 15);
      INSERT INTO ITEM VALUES (4, 'b', 40.0, 20);
      INSERT INTO ITEM VALUES (5, 'a', 50.0, 25);
    )sql").status());
  }

  std::vector<Row> Run(const std::string& sql) {
    Result<sql::ScriptResult> result = sql::ExecuteSql(db_, sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok() || result->select_results.empty()) return {};
    return result->select_results[0];
  }

  Database db_;
};

TEST_F(SelectEvalTest, CountStarAndCountColumn) {
  std::vector<Row> rows = Run("SELECT COUNT(*) FROM ITEM");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int(5));
  // COUNT(col) skips NULLs.
  rows = Run("SELECT COUNT(I_STOCK) FROM ITEM");
  EXPECT_EQ(rows[0][0], Value::Int(4));
}

TEST_F(SelectEvalTest, SumMinMaxAvg) {
  std::vector<Row> rows =
      Run("SELECT SUM(I_COST), MIN(I_COST), MAX(I_COST), AVG(I_COST) "
          "FROM ITEM");
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 4u);
  EXPECT_EQ(rows[0][0], Value::Real(150.0));
  EXPECT_EQ(rows[0][1], Value::Real(10.0));
  EXPECT_EQ(rows[0][2], Value::Real(50.0));
  EXPECT_EQ(rows[0][3], Value::Real(30.0));
}

TEST_F(SelectEvalTest, IntegerSumKeepsIntType) {
  std::vector<Row> rows = Run("SELECT SUM(I_STOCK) FROM ITEM");
  EXPECT_EQ(rows[0][0], Value::Int(65));  // NULL skipped.
}

TEST_F(SelectEvalTest, AggregatesWithWhere) {
  std::vector<Row> rows =
      Run("SELECT COUNT(*), SUM(I_COST) FROM ITEM WHERE I_TITLE = 'a'");
  EXPECT_EQ(rows[0][0], Value::Int(3));
  EXPECT_EQ(rows[0][1], Value::Real(90.0));
}

TEST_F(SelectEvalTest, AggregateOverEmptySet) {
  std::vector<Row> rows = Run(
      "SELECT COUNT(*), SUM(I_COST), MIN(I_COST), AVG(I_COST) FROM ITEM "
      "WHERE I_COST > 1000.0");
  EXPECT_EQ(rows[0][0], Value::Int(0));
  EXPECT_TRUE(rows[0][1].is_null());
  EXPECT_TRUE(rows[0][2].is_null());
  EXPECT_TRUE(rows[0][3].is_null());
}

TEST_F(SelectEvalTest, SumOfStringColumnRejected) {
  Result<sql::ScriptResult> result =
      sql::ExecuteSql(db_, "SELECT SUM(I_TITLE) FROM ITEM");
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(SelectEvalTest, MinMaxOnStrings) {
  std::vector<Row> rows = Run("SELECT MIN(I_TITLE), MAX(I_TITLE) FROM ITEM");
  EXPECT_EQ(rows[0][0], Value::Str("a"));
  EXPECT_EQ(rows[0][1], Value::Str("b"));
}

TEST_F(SelectEvalTest, OrderByAscDescAndLimit) {
  std::vector<Row> rows = Run("SELECT I_ID FROM ITEM ORDER BY I_COST DESC");
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0][0], Value::Int(5));
  EXPECT_EQ(rows[4][0], Value::Int(1));

  rows = Run("SELECT I_ID FROM ITEM ORDER BY I_COST ASC LIMIT 2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Int(1));
  EXPECT_EQ(rows[1][0], Value::Int(2));
}

TEST_F(SelectEvalTest, LimitWithoutOrder) {
  EXPECT_EQ(Run("SELECT * FROM ITEM LIMIT 3").size(), 3u);
  EXPECT_EQ(Run("SELECT * FROM ITEM LIMIT 99").size(), 5u);
}

TEST_F(SelectEvalTest, OrderByUnknownColumnFails) {
  EXPECT_TRUE(sql::ExecuteSql(db_, "SELECT * FROM ITEM ORDER BY NOPE")
                  .status()
                  .IsNotFound());
}

TEST_F(SelectEvalTest, ParserRejectsMixedAggregatesAndColumns) {
  EXPECT_FALSE(sql::ParseCommand("SELECT I_ID, COUNT(*) FROM ITEM").ok());
  EXPECT_FALSE(sql::ParseCommand("SELECT SUM(*) FROM ITEM").ok());
  EXPECT_FALSE(sql::ParseCommand("SELECT * FROM ITEM LIMIT -1").ok());
}

TEST_F(SelectEvalTest, ParserAcceptsAggregateNamedColumns) {
  // MIN/MAX/etc. are not reserved words: a plain column named like one must
  // still parse when not followed by '('.
  rel::Database db;
  TXREP_ASSERT_OK(sql::ExecuteSql(db, R"sql(
    CREATE TABLE T (MIN INT PRIMARY KEY);
    INSERT INTO T VALUES (7);
  )sql").status());
  Result<sql::ScriptResult> result = sql::ExecuteSql(db, "SELECT MIN FROM T");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->select_results[0][0][0], Value::Int(7));
}

TEST_F(SelectEvalTest, IntLiteralsCoerceAgainstDoubleColumns) {
  // `I_COST > 20` with an integer literal must behave like `> 20.0`.
  std::vector<Row> rows = Run("SELECT I_ID FROM ITEM WHERE I_COST > 20");
  EXPECT_EQ(rows.size(), 3u);  // 30, 40, 50.
  rows = Run("SELECT I_ID FROM ITEM WHERE I_COST = 30");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int(3));
  rows = Run("SELECT I_ID FROM ITEM WHERE I_COST BETWEEN 15 AND 35");
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(SelectEvalTest, IntegralDoubleLiteralNarrowsToIntColumn) {
  std::vector<Row> rows = Run("SELECT I_ID FROM ITEM WHERE I_STOCK = 15.0");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int(3));
  // Fractional literal against INT column is an explicit error.
  EXPECT_TRUE(sql::ExecuteSql(db_, "SELECT * FROM ITEM WHERE I_STOCK = 1.5")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(SelectEvalTest, TypeMismatchedLiteralIsAnError) {
  EXPECT_TRUE(sql::ExecuteSql(db_, "SELECT * FROM ITEM WHERE I_TITLE = 3")
                  .status()
                  .IsInvalidArgument());
  // Coercion also applies to UPDATE/DELETE predicates.
  EXPECT_TRUE(
      sql::ExecuteSql(db_, "DELETE FROM ITEM WHERE I_TITLE = 3")
          .status()
          .IsInvalidArgument());
  TXREP_ASSERT_OK(
      sql::ExecuteSql(db_, "UPDATE ITEM SET I_STOCK = 1 WHERE I_COST = 10")
          .status());
  std::vector<Row> rows = Run("SELECT I_STOCK FROM ITEM WHERE I_ID = 1");
  EXPECT_EQ(rows[0][0], Value::Int(1));
}

TEST_F(SelectEvalTest, CoercedLiteralsWorkThroughReplicaIndexes) {
  qt::QueryTranslator translator(&db_.catalog(), {});
  qt::ReplicaReader reader(&db_.catalog(), {});
  kv::InMemoryKvNode replica;
  TXREP_ASSERT_OK(translator.LoadSnapshot(&replica, db_));
  // Range plan through the B-link tree keyed on DOUBLE with int bounds.
  auto cmd = sql::ParseCommand(
      "SELECT I_ID FROM ITEM WHERE I_COST BETWEEN 15 AND 35");
  ASSERT_TRUE(cmd.ok());
  Result<std::vector<Row>> rows =
      reader.Select(&replica, std::get<SelectStatement>(*cmd));
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 2u);
}

TEST_F(SelectEvalTest, SameSemanticsOnReplica) {
  // Ship the data to a replica and run identical queries through the
  // ReplicaReader: aggregates, order and limit must agree with the DB.
  qt::QueryTranslator translator(&db_.catalog(), {});
  qt::ReplicaReader reader(&db_.catalog(), {});
  kv::InMemoryKvNode replica;
  TXREP_ASSERT_OK(translator.LoadSnapshot(&replica, db_));

  auto parse_select = [](const std::string& sql) {
    auto cmd = sql::ParseCommand(sql);
    EXPECT_TRUE(cmd.ok());
    return std::get<SelectStatement>(*cmd);
  };

  for (const char* sql : {
           "SELECT COUNT(*), SUM(I_COST) FROM ITEM WHERE I_TITLE = 'a'",
           "SELECT AVG(I_COST) FROM ITEM WHERE I_COST BETWEEN 15.0 AND 45.0",
           "SELECT I_ID, I_COST FROM ITEM WHERE I_TITLE = 'b' "
           "ORDER BY I_COST DESC LIMIT 1",
       }) {
    SelectStatement stmt = parse_select(sql);
    Result<std::vector<Row>> db_rows = db_.Query(stmt);
    Result<std::vector<Row>> replica_rows = reader.Select(&replica, stmt);
    ASSERT_TRUE(db_rows.ok()) << sql;
    ASSERT_TRUE(replica_rows.ok()) << sql << ": "
                                   << replica_rows.status().ToString();
    EXPECT_EQ(*db_rows, *replica_rows) << sql;
  }
}

}  // namespace
}  // namespace txrep::rel
