// Checkpoint protocol unit tests: file formats, the write/load/install
// cycle, crash injection at every protocol step, pruning and the catch-up
// gate. The crash-ordering invariant under test: a checkpoint exists iff its
// manifest is durable; the cursor is only ever a hint.

#include "recov/checkpoint.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "kv/inmemory_node.h"
#include "kv/kv_cluster.h"
#include "recov/catchup_gate.h"
#include "recov/cursor.h"
#include "recov/io.h"
#include "recov/manifest.h"
#include "test_util.h"

namespace txrep::recov {
namespace {

class RecovCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "txrep_recov_chk_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    TXREP_ASSERT_OK(RemoveDirRecursive(dir_));
    TXREP_ASSERT_OK(EnsureDir(dir_));
  }
  void TearDown() override { TXREP_ASSERT_OK(RemoveDirRecursive(dir_)); }

  std::string dir_;
};

void Fill(kv::KvStore& store, int salt, int keys) {
  for (int i = 0; i < keys; ++i) {
    EXPECT_TRUE(store
                    .Put("k" + std::to_string(salt) + "-" + std::to_string(i),
                         "v" + std::to_string(i * salt))
                    .ok());
  }
}

TEST_F(RecovCheckpointTest, ManifestRoundTrip) {
  CheckpointManifest manifest;
  manifest.snapshot_epoch = 42;
  manifest.files.push_back(SnapshotFileInfo{"chk-a", 100, 7, 0xdeadbeef});
  manifest.files.push_back(SnapshotFileInfo{"chk-b", 0, 0, 0});

  const std::string encoded = manifest.Encode();
  Result<CheckpointManifest> decoded = CheckpointManifest::Decode(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->snapshot_epoch, 42u);
  ASSERT_EQ(decoded->files.size(), 2u);
  EXPECT_EQ(decoded->files[0].name, "chk-a");
  EXPECT_EQ(decoded->files[0].bytes, 100u);
  EXPECT_EQ(decoded->files[0].records, 7u);
  EXPECT_EQ(decoded->files[0].checksum, 0xdeadbeefu);

  // Any single-byte flip must be detected.
  for (size_t i = 0; i < encoded.size(); ++i) {
    std::string bad = encoded;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    EXPECT_FALSE(CheckpointManifest::Decode(bad).ok())
        << "flip at offset " << i << " went undetected";
  }
  // Truncation at every offset must be detected.
  for (size_t i = 0; i < encoded.size(); ++i) {
    EXPECT_FALSE(CheckpointManifest::Decode(encoded.substr(0, i)).ok())
        << "truncation to " << i << " bytes went undetected";
  }
  // Trailing junk must be detected too.
  EXPECT_FALSE(CheckpointManifest::Decode(encoded + "x").ok());
}

TEST_F(RecovCheckpointTest, FileNames) {
  const std::string name = ManifestFileName(7);
  uint64_t epoch = 0;
  EXPECT_TRUE(ParseManifestFileName(name, &epoch));
  EXPECT_EQ(epoch, 7u);
  EXPECT_FALSE(ParseManifestFileName("MANIFEST-xyz", &epoch));
  EXPECT_FALSE(ParseManifestFileName("CURSOR", &epoch));
  // Zero-padded → lexicographic order equals epoch order.
  EXPECT_LT(ManifestFileName(9), ManifestFileName(10));
  EXPECT_LT(SnapshotFileName(9, 0), SnapshotFileName(10, 0));
}

TEST_F(RecovCheckpointTest, CursorRoundTripAndTorn) {
  EXPECT_TRUE(LoadCursor(dir_).status().IsNotFound());
  TXREP_ASSERT_OK(StoreCursor(dir_, CursorState{9, ManifestFileName(9)}));
  Result<CursorState> cursor = LoadCursor(dir_);
  ASSERT_TRUE(cursor.ok());
  EXPECT_EQ(cursor->epoch, 9u);
  EXPECT_EQ(cursor->manifest_file, ManifestFileName(9));

  // A torn cursor is corruption, not silently LSN 0.
  TXREP_ASSERT_OK(WriteFileRaw(dir_ + "/" + CursorFileName(), "torn"));
  EXPECT_TRUE(LoadCursor(dir_).status().IsCorruption());
}

TEST_F(RecovCheckpointTest, WriteLoadInstallRoundTrip) {
  kv::InMemoryKvNode a;
  Fill(a, 1, 20);
  kv::InMemoryKvNode b;
  Fill(b, 2, 0);  // One shard empty.
  CheckpointWriter writer(dir_);
  Result<CheckpointStats> stats =
      writer.Write(5, std::vector<kv::KvStore*>{&a, &b});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->epoch, 5u);
  EXPECT_EQ(stats->total_records, 20u);

  Result<LoadedCheckpoint> loaded = LoadLatestCheckpoint(dir_, nullptr);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->manifest.snapshot_epoch, 5u);
  EXPECT_TRUE(loaded->cursor_matched);

  kv::InMemoryKvNode ra, rb;
  // Pre-pollute one target: install must clear before loading.
  TXREP_ASSERT_OK(ra.Put("stale", "junk"));
  TXREP_ASSERT_OK(
      InstallCheckpoint(*loaded, std::vector<kv::KvStore*>{&ra, &rb}));
  testing::ExpectDumpsEqual(a, ra);
  testing::ExpectDumpsEqual(b, rb);

  // Re-writing an existing epoch is an error.
  EXPECT_TRUE(writer.Write(5, std::vector<kv::KvStore*>{&a, &b})
                  .status()
                  .IsInvalidArgument());
}

TEST_F(RecovCheckpointTest, LatestUsableCheckpointWinsAndPrune) {
  kv::InMemoryKvNode v1;
  Fill(v1, 1, 5);
  kv::InMemoryKvNode v2;
  Fill(v2, 1, 12);
  CheckpointWriter writer(dir_);
  ASSERT_TRUE(writer.Write(3, std::vector<kv::KvStore*>{&v1}).ok());
  ASSERT_TRUE(writer.Write(8, std::vector<kv::KvStore*>{&v2}).ok());

  Result<LoadedCheckpoint> loaded = LoadLatestCheckpoint(dir_, nullptr);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->manifest.snapshot_epoch, 8u);

  TXREP_ASSERT_OK(writer.Prune(8));
  Result<std::vector<std::string>> names = ListDir(dir_);
  ASSERT_TRUE(names.ok());
  for (const std::string& name : *names) {
    EXPECT_EQ(name.find(ManifestFileName(3)), std::string::npos);
    EXPECT_EQ(name.find(SnapshotFileName(3, 0)), std::string::npos);
  }
  // Epoch 8 must still load after pruning.
  EXPECT_TRUE(LoadLatestCheckpoint(dir_, nullptr).ok());
}

TEST_F(RecovCheckpointTest, CrashBetweenSnapshotFilesLeavesNoCheckpoint) {
  kv::InMemoryKvNode a;
  Fill(a, 1, 4);
  kv::InMemoryKvNode b;
  Fill(b, 2, 4);
  CheckpointWriter writer(dir_);
  CheckpointFaults faults;
  faults.fail_after_files = 1;  // Crash after shard 0, before shard 1.
  writer.set_faults(faults);
  EXPECT_FALSE(writer.Write(6, std::vector<kv::KvStore*>{&a, &b}).ok());

  // No manifest → no checkpoint, regardless of orphan .snap debris.
  EXPECT_TRUE(LoadLatestCheckpoint(dir_, nullptr).status().IsNotFound());

  // The same epoch can be retried once the fault clears.
  writer.set_faults(CheckpointFaults{});
  ASSERT_TRUE(writer.Write(6, std::vector<kv::KvStore*>{&a, &b}).ok());
  EXPECT_TRUE(LoadLatestCheckpoint(dir_, nullptr).ok());
}

TEST_F(RecovCheckpointTest, TornManifestFallsBackToPreviousCheckpoint) {
  kv::InMemoryKvNode v1;
  Fill(v1, 1, 6);
  kv::InMemoryKvNode v2;
  Fill(v2, 1, 9);
  CheckpointWriter writer(dir_);
  ASSERT_TRUE(writer.Write(4, std::vector<kv::KvStore*>{&v1}).ok());

  CheckpointFaults faults;
  faults.tear_manifest = true;
  writer.set_faults(faults);
  EXPECT_FALSE(writer.Write(9, std::vector<kv::KvStore*>{&v2}).ok());

  // The torn epoch-9 manifest must be rejected; epoch 4 is still the truth.
  Result<LoadedCheckpoint> loaded = LoadLatestCheckpoint(dir_, nullptr);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->manifest.snapshot_epoch, 4u);

  kv::InMemoryKvNode restored;
  TXREP_ASSERT_OK(
      InstallCheckpoint(*loaded, std::vector<kv::KvStore*>{&restored}));
  testing::ExpectDumpsEqual(v1, restored);
}

TEST_F(RecovCheckpointTest, StaleCursorIsOnlyAHint) {
  kv::InMemoryKvNode v1;
  Fill(v1, 1, 3);
  kv::InMemoryKvNode v2;
  Fill(v2, 1, 7);
  CheckpointWriter writer(dir_);
  ASSERT_TRUE(writer.Write(2, std::vector<kv::KvStore*>{&v1}).ok());

  // Crash after the manifest committed but before the cursor advanced: the
  // epoch-5 checkpoint EXISTS (its manifest is durable) even though the
  // cursor still points at epoch 2.
  CheckpointFaults faults;
  faults.skip_cursor = true;
  writer.set_faults(faults);
  EXPECT_FALSE(writer.Write(5, std::vector<kv::KvStore*>{&v2}).ok());

  Result<CursorState> cursor = LoadCursor(dir_);
  ASSERT_TRUE(cursor.ok());
  EXPECT_EQ(cursor->epoch, 2u);

  Result<LoadedCheckpoint> loaded = LoadLatestCheckpoint(dir_, nullptr);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->manifest.snapshot_epoch, 5u);
  EXPECT_FALSE(loaded->cursor_matched);
}

TEST_F(RecovCheckpointTest, CorruptSnapshotFileRejectsThatCheckpoint) {
  kv::InMemoryKvNode v1;
  Fill(v1, 1, 6);
  kv::InMemoryKvNode v2;
  Fill(v2, 1, 11);
  CheckpointWriter writer(dir_);
  ASSERT_TRUE(writer.Write(1, std::vector<kv::KvStore*>{&v1}).ok());
  ASSERT_TRUE(writer.Write(2, std::vector<kv::KvStore*>{&v2}).ok());

  // Flip one byte in the newest snapshot file: recovery must fall back to
  // epoch 1 rather than trust a corrupt epoch 2.
  const std::string victim = dir_ + "/" + SnapshotFileName(2, 0);
  Result<std::string> contents = ReadFileToString(victim);
  ASSERT_TRUE(contents.ok());
  (*contents)[contents->size() / 2] ^= 0x01;
  TXREP_ASSERT_OK(WriteFileRaw(victim, *contents));

  Result<LoadedCheckpoint> loaded = LoadLatestCheckpoint(dir_, nullptr);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->manifest.snapshot_epoch, 1u);
}

TEST_F(RecovCheckpointTest, InstallReshardsOnNodeCountChange) {
  kv::KvClusterOptions three;
  three.num_nodes = 3;
  kv::KvCluster source(three);
  for (int i = 0; i < 40; ++i) {
    TXREP_ASSERT_OK(source.Put("key" + std::to_string(i), "v"));
  }
  CheckpointWriter writer(dir_);
  ASSERT_TRUE(writer.Write(1, source).ok());

  Result<LoadedCheckpoint> loaded = LoadLatestCheckpoint(dir_, nullptr);
  ASSERT_TRUE(loaded.ok());

  kv::KvClusterOptions two;
  two.num_nodes = 2;
  kv::KvCluster target(two);
  TXREP_ASSERT_OK(InstallCheckpoint(*loaded, target));
  testing::ExpectDumpsEqual(source, target);

  // Shard-count mismatch on the raw-store overload is an error, not a
  // silent partial install.
  kv::InMemoryKvNode lone;
  EXPECT_TRUE(InstallCheckpoint(*loaded, std::vector<kv::KvStore*>{&lone})
                  .IsInvalidArgument());
}

TEST(CatchupGateTest, OpensOncePermanentlyAtThreshold) {
  CatchupGate gate(5);
  EXPECT_FALSE(gate.IsOpen());
  EXPECT_TRUE(gate.CheckReadAdmissible().IsFailedPrecondition());

  gate.Update(10, 100);  // Lag 90: stays closed.
  EXPECT_FALSE(gate.IsOpen());
  EXPECT_TRUE(gate.CheckReadAdmissible().IsFailedPrecondition());
  EXPECT_EQ(gate.lag(), 90u);

  gate.Update(96, 100);  // Lag 4 <= 5: opens.
  EXPECT_TRUE(gate.IsOpen());
  TXREP_EXPECT_OK(gate.CheckReadAdmissible());

  gate.Update(96, 1000);  // Lag grows again, but the gate stays open.
  EXPECT_TRUE(gate.IsOpen());
  TXREP_EXPECT_OK(gate.CheckReadAdmissible());
  EXPECT_TRUE(gate.WaitUntilOpenFor(0));
}

TEST(CatchupGateTest, ZeroLagThresholdNeedsExactCatchup) {
  CatchupGate gate(0);
  gate.Update(99, 100);
  EXPECT_FALSE(gate.IsOpen());
  EXPECT_FALSE(gate.WaitUntilOpenFor(1000));
  gate.Update(100, 100);
  EXPECT_TRUE(gate.IsOpen());
}

}  // namespace
}  // namespace txrep::recov
