#include "core/txn_buffer.h"

#include "gtest/gtest.h"
#include "kv/inmemory_node.h"
#include "test_util.h"

namespace txrep::core {
namespace {

class TxnBufferTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TXREP_ASSERT_OK(base_.Put("existing", "base-value"));
    TXREP_ASSERT_OK(base_.Put("other", "other-value"));
  }
  kv::InMemoryKvNode base_;
};

TEST_F(TxnBufferTest, ReadThroughRecordsReadSet) {
  TxnBuffer buffer(&base_);
  EXPECT_EQ(*buffer.Get("existing"), "base-value");
  EXPECT_TRUE(buffer.read_set().contains("existing"));
  EXPECT_TRUE(buffer.write_set().empty());
}

TEST_F(TxnBufferTest, NotFoundReadsAreStillReads) {
  TxnBuffer buffer(&base_);
  EXPECT_TRUE(buffer.Get("missing").status().IsNotFound());
  EXPECT_TRUE(buffer.read_set().contains("missing"));
}

TEST_F(TxnBufferTest, ReadCachePreventsSecondBaseAccess) {
  TxnBuffer buffer(&base_);
  (void)buffer.Get("existing");
  (void)buffer.Get("existing");
  (void)buffer.Get("missing");
  (void)buffer.Get("missing");
  EXPECT_EQ(base_.stats().gets, 2);  // One per distinct key.
}

TEST_F(TxnBufferTest, DisabledCacheRereadsBase) {
  TxnBuffer buffer(&base_, /*read_cache=*/false);
  (void)buffer.Get("existing");
  (void)buffer.Get("existing");
  EXPECT_EQ(base_.stats().gets, 2);
  EXPECT_TRUE(buffer.read_set().contains("existing"));
}

TEST_F(TxnBufferTest, WritesStayBuffered) {
  TxnBuffer buffer(&base_);
  TXREP_ASSERT_OK(buffer.Put("new", "v"));
  EXPECT_FALSE(base_.Contains("new"));  // Paper: buffer until commit.
  EXPECT_EQ(*buffer.Get("new"), "v");   // Own writes visible.
  EXPECT_TRUE(buffer.write_set().contains("new"));
  EXPECT_FALSE(buffer.read_set().contains("new"));  // Own-write read ≠ read.
}

TEST_F(TxnBufferTest, OverwriteOfBaseKeyShadows) {
  TxnBuffer buffer(&base_);
  TXREP_ASSERT_OK(buffer.Put("existing", "shadow"));
  EXPECT_EQ(*buffer.Get("existing"), "shadow");
  EXPECT_EQ(*base_.Get("existing"), "base-value");
}

TEST_F(TxnBufferTest, TombstoneHidesBaseKey) {
  TxnBuffer buffer(&base_);
  TXREP_ASSERT_OK(buffer.Delete("existing"));
  EXPECT_TRUE(buffer.Get("existing").status().IsNotFound());
  EXPECT_FALSE(buffer.Contains("existing"));
  EXPECT_TRUE(base_.Contains("existing"));
  EXPECT_TRUE(buffer.write_set().contains("existing"));
}

TEST_F(TxnBufferTest, PutAfterDeleteResurrects) {
  TxnBuffer buffer(&base_);
  TXREP_ASSERT_OK(buffer.Delete("existing"));
  TXREP_ASSERT_OK(buffer.Put("existing", "back"));
  EXPECT_EQ(*buffer.Get("existing"), "back");
}

TEST_F(TxnBufferTest, ApplyToPublishesFinalState) {
  TxnBuffer buffer(&base_);
  TXREP_ASSERT_OK(buffer.Put("a", "1"));
  TXREP_ASSERT_OK(buffer.Put("a", "2"));       // Final value wins.
  TXREP_ASSERT_OK(buffer.Delete("existing"));
  TXREP_ASSERT_OK(buffer.Put("b", "3"));
  TXREP_ASSERT_OK(buffer.ApplyTo(&base_));
  EXPECT_EQ(*base_.Get("a"), "2");
  EXPECT_EQ(*base_.Get("b"), "3");
  EXPECT_FALSE(base_.Contains("existing"));
  EXPECT_EQ(buffer.WriteCount(), 3u);
}

TEST_F(TxnBufferTest, ApplyToIsIdempotent) {
  TxnBuffer buffer(&base_);
  TXREP_ASSERT_OK(buffer.Put("a", "1"));
  TXREP_ASSERT_OK(buffer.Delete("other"));
  TXREP_ASSERT_OK(buffer.ApplyTo(&base_));
  TXREP_ASSERT_OK(buffer.ApplyTo(&base_));
  EXPECT_EQ(*base_.Get("a"), "1");
  EXPECT_FALSE(base_.Contains("other"));
}

TEST_F(TxnBufferTest, DumpMergesOverlay) {
  TxnBuffer buffer(&base_);
  TXREP_ASSERT_OK(buffer.Put("aaa", "new"));       // Before "existing".
  TXREP_ASSERT_OK(buffer.Put("existing", "mod"));  // Overwrites.
  TXREP_ASSERT_OK(buffer.Delete("other"));         // Hides.
  TXREP_ASSERT_OK(buffer.Put("zzz", "tail"));      // After everything.
  kv::StoreDump dump = buffer.Dump();
  ASSERT_EQ(dump.size(), 3u);
  EXPECT_EQ(dump[0], (std::pair<kv::Key, kv::Value>{"aaa", "new"}));
  EXPECT_EQ(dump[1], (std::pair<kv::Key, kv::Value>{"existing", "mod"}));
  EXPECT_EQ(dump[2], (std::pair<kv::Key, kv::Value>{"zzz", "tail"}));
}

TEST_F(TxnBufferTest, SizeAccountsForOverlay) {
  TxnBuffer buffer(&base_);
  EXPECT_EQ(buffer.Size(), 2u);
  TXREP_ASSERT_OK(buffer.Put("new", "v"));
  EXPECT_EQ(buffer.Size(), 3u);
  TXREP_ASSERT_OK(buffer.Delete("existing"));
  EXPECT_EQ(buffer.Size(), 2u);
}

TEST_F(TxnBufferTest, ErrorsFromBasePropagate) {
  kv::KvNodeOptions options;
  options.failure_rate = 1.0;
  kv::InMemoryKvNode failing(options);
  TxnBuffer buffer(&failing);
  EXPECT_TRUE(buffer.Get("k").status().IsUnavailable());
  // But buffered writes never touch the base.
  TXREP_ASSERT_OK(buffer.Put("k", "v"));
  EXPECT_TRUE(buffer.ApplyTo(&failing).IsUnavailable());
}

}  // namespace
}  // namespace txrep::core
