// Schedule-explorer wire mode: for every seed, replay over the wire boundary
// (publisher -> broker -> NetEndpoint -> socketpair frames -> NetSubscription
// -> remote replica) with a seed-derived mid-stream connection kill, and
// require the reconnected replica to be byte-identical to serial replay.

#include "check/schedule_explorer.h"

#include <cstdlib>

#include "gtest/gtest.h"
#include "test_util.h"

namespace txrep::check {
namespace {

int SeedsFromEnv(int fallback) {
  const char* env = std::getenv("TXREP_SCHEDULE_SEEDS");
  if (env == nullptr) return fallback;
  const int value = std::atoi(env);
  return value > 0 ? value : fallback;
}

TEST(NetWireModeTest, SweepFindsNoDivergenceAcrossTheWire) {
  ScheduleExplorerOptions options;
  options.base_seed = 1;
  options.schedules = SeedsFromEnv(200);
  options.txns_per_schedule = 20;
  options.audit_every = 0;  // The plain sweep covers the deep audit.
  options.wire = true;

  ScheduleExplorer explorer(options);
  ScheduleReport report = explorer.Run();
  SCOPED_TRACE(report.Summary());

  EXPECT_EQ(report.schedules_run, options.schedules);
  std::string details;
  for (const ScheduleFailure& failure : report.failures) {
    details +=
        "\n  seed " + std::to_string(failure.seed) + ": " + failure.detail;
  }
  EXPECT_TRUE(report.ok()) << "diverging schedules:" << details;
}

TEST(NetWireModeTest, SingleSeedReproduces) {
  // RunOne(seed) must reproduce the sweep's result for that seed — the
  // debugging entry point when the sweep reports a failure.
  ScheduleExplorerOptions options;
  options.txns_per_schedule = 20;
  options.audit_every = 0;
  options.wire = true;
  ScheduleExplorer explorer(options);
  TXREP_EXPECT_OK(explorer.RunOne(7));
  TXREP_EXPECT_OK(explorer.RunOne(42));
}

}  // namespace
}  // namespace txrep::check
