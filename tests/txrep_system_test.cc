// End-to-end facade tests: database -> middleware -> TM/serial -> replica.

#include "txrep/system.h"

#include "common/clock.h"

#include "gtest/gtest.h"
#include "sql/interpreter.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace txrep {
namespace {

using rel::Predicate;
using rel::PredicateOp;
using rel::SelectStatement;
using rel::Value;

constexpr const char* kSchemaSql = R"sql(
  CREATE TABLE ITEM (I_ID INT PRIMARY KEY, I_TITLE VARCHAR(40),
                     I_COST DOUBLE);
  CREATE INDEX ON ITEM (I_TITLE);
  CREATE RANGE INDEX ON ITEM (I_COST);
)sql";

void PopulateItems(rel::Database& db, int n) {
  for (int i = 1; i <= n; ++i) {
    TXREP_ASSERT_OK(
        db.ExecuteTransaction(
              {rel::InsertStatement{
                  "ITEM",
                  {},
                  {Value::Int(i), Value::Str("t" + std::to_string(i % 3)),
                   Value::Real(i * 2.0)}}})
            .status());
  }
}

TEST(TxRepSystemTest, SnapshotThenIncrementalReplication) {
  TxRepOptions options;
  options.cluster.num_nodes = 3;
  TxRepSystem sys(options);
  TXREP_ASSERT_OK(sql::ExecuteSql(sys.database(), kSchemaSql).status());
  PopulateItems(sys.database(), 20);
  TXREP_ASSERT_OK(sys.Start());
  // Snapshot is there already.
  testing::VerifyReplicaMatchesDatabase(sys.replica(), sys.database(),
                                        sys.translator());
  // New commits flow through the pipeline.
  PopulateItems(sys.database(), 0);
  TXREP_ASSERT_OK(
      sql::ExecuteSql(sys.database(),
                      "UPDATE ITEM SET I_COST = 999.0 WHERE I_ID = 5;"
                      "INSERT INTO ITEM VALUES (21, 'fresh', 3.5);"
                      "DELETE FROM ITEM WHERE I_ID = 7;")
          .status());
  TXREP_ASSERT_OK(sys.SyncToLatest());
  testing::VerifyReplicaMatchesDatabase(sys.replica(), sys.database(),
                                        sys.translator());
  EXPECT_EQ(sys.replica_lsn(), sys.database().log().LastLsn());
}

TEST(TxRepSystemTest, TransactionalReplicaQueries) {
  TxRepSystem sys((TxRepOptions()));
  TXREP_ASSERT_OK(sql::ExecuteSql(sys.database(), kSchemaSql).status());
  PopulateItems(sys.database(), 30);
  TXREP_ASSERT_OK(sys.Start());
  TXREP_ASSERT_OK(sys.SyncToLatest());

  // Point query.
  Result<std::vector<rel::Row>> by_pk = sys.QueryReplica(SelectStatement{
      "ITEM", {}, {Predicate{"I_ID", PredicateOp::kEq, Value::Int(3), {}}}});
  ASSERT_TRUE(by_pk.ok()) << by_pk.status().ToString();
  ASSERT_EQ(by_pk->size(), 1u);

  // Hash-index query.
  Result<std::vector<rel::Row>> by_title = sys.QueryReplica(SelectStatement{
      "ITEM",
      {},
      {Predicate{"I_TITLE", PredicateOp::kEq, Value::Str("t1"), {}}}});
  ASSERT_TRUE(by_title.ok());
  EXPECT_EQ(by_title->size(), 10u);

  // Range query via the B-link tree.
  Result<std::vector<rel::Row>> by_cost = sys.QueryReplica(SelectStatement{
      "ITEM",
      {},
      {Predicate{"I_COST", PredicateOp::kBetween, Value::Real(10.0),
                 Value::Real(20.0)}}});
  ASSERT_TRUE(by_cost.ok());
  EXPECT_EQ(by_cost->size(), 6u);  // 10,12,14,16,18,20.

  // Non-transactional access works too.
  Result<std::vector<rel::Row>> direct =
      sys.QueryReplicaNonTransactional(SelectStatement{
          "ITEM",
          {},
          {Predicate{"I_ID", PredicateOp::kEq, Value::Int(3), {}}}});
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct->size(), 1u);
}

TEST(TxRepSystemTest, SerialBaselineProducesSameReplica) {
  auto build = [](bool concurrent) {
    TxRepOptions options;
    options.concurrent_replication = concurrent;
    auto sys = std::make_unique<TxRepSystem>(options);
    TXREP_EXPECT_OK(sql::ExecuteSql(sys->database(), kSchemaSql).status());
    PopulateItems(sys->database(), 10);
    TXREP_EXPECT_OK(sys->Start());
    TXREP_EXPECT_OK(
        sql::ExecuteSql(sys->database(),
                        "UPDATE ITEM SET I_COST = 1.0 WHERE I_TITLE = 't1';"
                        "DELETE FROM ITEM WHERE I_ID = 4;")
            .status());
    TXREP_EXPECT_OK(sys->SyncToLatest());
    return sys;
  };
  auto concurrent = build(true);
  auto serial = build(false);
  testing::ExpectDumpsEqual(concurrent->replica(), serial->replica());
  EXPECT_EQ(serial->tm_stats().submitted, 0);  // Serial path has no TM.
}

TEST(TxRepSystemTest, LagMeasurement) {
  TxRepOptions options;
  options.measure_lag = true;
  options.broker.delivery_delay_micros = 1000;
  TxRepSystem sys(options);
  TXREP_ASSERT_OK(sql::ExecuteSql(sys.database(), kSchemaSql).status());
  TXREP_ASSERT_OK(sys.Start());
  PopulateItems(sys.database(), 10);
  TXREP_ASSERT_OK(sys.SyncToLatest());
  // Lag recording is asynchronous; wait for all probes briefly.
  for (int i = 0; i < 100 && sys.lag_histogram().count() < 10; ++i) {
    txrep::SleepForMicros(5000);
  }
  EXPECT_EQ(sys.lag_histogram().count(), 10);
  EXPECT_GE(sys.lag_histogram().min(), 1000);  // At least the broker delay.
}

TEST(TxRepSystemTest, StartTwiceFails) {
  TxRepSystem sys((TxRepOptions()));
  TXREP_ASSERT_OK(sql::ExecuteSql(sys.database(), kSchemaSql).status());
  TXREP_ASSERT_OK(sys.Start());
  EXPECT_EQ(sys.Start().code(), StatusCode::kFailedPrecondition);
}

TEST(TxRepSystemTest, QueryBeforeStartFails) {
  TxRepSystem sys((TxRepOptions()));
  EXPECT_EQ(sys.QueryReplica(SelectStatement{"ITEM", {}, {}}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(TxRepSystemTest, TruncateReplicatedLogKeepsPipelineWorking) {
  TxRepSystem sys((TxRepOptions()));
  TXREP_ASSERT_OK(sql::ExecuteSql(sys.database(), kSchemaSql).status());
  PopulateItems(sys.database(), 5);
  TXREP_ASSERT_OK(sys.Start());
  TXREP_ASSERT_OK(
      sql::ExecuteSql(sys.database(),
                      "UPDATE ITEM SET I_COST = 1.0 WHERE I_ID = 1;")
          .status());
  TXREP_ASSERT_OK(sys.SyncToLatest());

  const uint64_t watermark = sys.TruncateReplicatedLog();
  EXPECT_EQ(watermark, sys.database().log().LastLsn());
  EXPECT_EQ(sys.database().log().size(), 0u);

  // Pipeline keeps working after truncation.
  TXREP_ASSERT_OK(
      sql::ExecuteSql(sys.database(), "INSERT INTO ITEM VALUES (6, 'x', 2.0);")
          .status());
  TXREP_ASSERT_OK(sys.SyncToLatest());
  testing::VerifyReplicaMatchesDatabase(sys.replica(), sys.database(),
                                        sys.translator());
}

TEST(TxRepSystemTest, AggregateQueriesOnReplica) {
  TxRepSystem sys((TxRepOptions()));
  TXREP_ASSERT_OK(sql::ExecuteSql(sys.database(), kSchemaSql).status());
  PopulateItems(sys.database(), 12);
  TXREP_ASSERT_OK(sys.Start());
  TXREP_ASSERT_OK(sys.SyncToLatest());
  SelectStatement stmt;
  stmt.table = "ITEM";
  stmt.aggregates = {
      rel::AggregateItem{rel::AggregateFn::kCount, ""},
      rel::AggregateItem{rel::AggregateFn::kMax, "I_COST"}};
  stmt.where = {Predicate{"I_TITLE", PredicateOp::kEq, Value::Str("t1"), {}}};
  Result<std::vector<rel::Row>> rows = sys.QueryReplica(stmt);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], Value::Int(4));           // Items 1,4,7,10.
  EXPECT_EQ((*rows)[0][1], Value::Real(20.0));       // Max cost = 10*2.0.
}

TEST(TxRepSystemTest, SyntheticWorkloadEndToEnd) {
  TxRepOptions options;
  options.cluster.num_nodes = 5;
  options.tm.top_threads = 10;
  options.tm.bottom_threads = 10;
  TxRepSystem sys(options);
  workload::SyntheticWorkload workload(
      {.num_items = 100, .hot_range = 10, .seed = 3});
  TXREP_ASSERT_OK(workload.CreateSchema(sys.database()));
  TXREP_ASSERT_OK(workload.Populate(sys.database()));
  TXREP_ASSERT_OK(sys.Start());
  TXREP_ASSERT_OK(workload.Run(sys.database(), 300));
  TXREP_ASSERT_OK(sys.SyncToLatest());
  testing::VerifyReplicaMatchesDatabase(sys.replica(), sys.database(),
                                        sys.translator());
  EXPECT_EQ(sys.tm_stats().completed, 300);
}

}  // namespace
}  // namespace txrep
