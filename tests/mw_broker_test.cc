#include "mw/broker.h"

#include <thread>

#include "gtest/gtest.h"
#include "test_util.h"

namespace txrep::mw {
namespace {

TEST(BrokerTest, DeliversToSubscriber) {
  Broker broker;
  Broker::Subscription* sub = broker.Subscribe("t");
  TXREP_ASSERT_OK(broker.Publish("t", "hello"));
  std::optional<Message> m = sub->Pop();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->topic, "t");
  EXPECT_EQ(m->payload, "hello");
  EXPECT_GT(m->publish_micros, 0);
}

TEST(BrokerTest, PerTopicOrderingPreserved) {
  Broker broker;
  Broker::Subscription* sub = broker.Subscribe("t");
  for (int i = 0; i < 100; ++i) {
    TXREP_ASSERT_OK(broker.Publish("t", std::to_string(i)));
  }
  broker.Flush();
  for (int i = 0; i < 100; ++i) {
    std::optional<Message> m = sub->Pop();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->payload, std::to_string(i));
  }
}

TEST(BrokerTest, TopicsAreIsolated) {
  Broker broker;
  Broker::Subscription* a = broker.Subscribe("a");
  Broker::Subscription* b = broker.Subscribe("b");
  TXREP_ASSERT_OK(broker.Publish("a", "for-a"));
  TXREP_ASSERT_OK(broker.Publish("b", "for-b"));
  broker.Flush();
  EXPECT_EQ(a->Pop()->payload, "for-a");
  EXPECT_EQ(b->Pop()->payload, "for-b");
  EXPECT_FALSE(a->TryPop().has_value());
}

TEST(BrokerTest, FanOutToMultipleSubscribers) {
  Broker broker;
  Broker::Subscription* s1 = broker.Subscribe("t");
  Broker::Subscription* s2 = broker.Subscribe("t");
  TXREP_ASSERT_OK(broker.Publish("t", "x"));
  broker.Flush();
  EXPECT_EQ(s1->Pop()->payload, "x");
  EXPECT_EQ(s2->Pop()->payload, "x");
}

TEST(BrokerTest, MessagesToUnsubscribedTopicDropped) {
  Broker broker;
  TXREP_ASSERT_OK(broker.Publish("nowhere", "x"));
  broker.Flush();
  EXPECT_EQ(broker.published(), 1);
  EXPECT_EQ(broker.delivered(), 1);
}

TEST(BrokerTest, FlushWaitsForDelivery) {
  Broker broker({.delivery_delay_micros = 2000, .subscriber_queue_capacity = 0});
  Broker::Subscription* sub = broker.Subscribe("t");
  for (int i = 0; i < 5; ++i) TXREP_ASSERT_OK(broker.Publish("t", "m"));
  broker.Flush();
  EXPECT_EQ(broker.delivered(), 5);
  EXPECT_EQ(sub->Pending(), 5u);
}

TEST(BrokerTest, PublishAfterShutdownFails) {
  Broker broker;
  broker.Shutdown();
  EXPECT_TRUE(broker.Publish("t", "x").IsUnavailable());
}

TEST(BrokerTest, ShutdownEndsSubscriberStreams) {
  Broker broker;
  Broker::Subscription* sub = broker.Subscribe("t");
  std::thread consumer([&] {
    // Blocks until shutdown closes the queue.
    EXPECT_FALSE(sub->Pop().has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  broker.Shutdown();
  consumer.join();
}

TEST(BrokerTest, ShutdownDrainsPendingFirst) {
  Broker broker;
  Broker::Subscription* sub = broker.Subscribe("t");
  for (int i = 0; i < 10; ++i) TXREP_ASSERT_OK(broker.Publish("t", "m"));
  broker.Flush();
  broker.Shutdown();
  int received = 0;
  while (sub->Pop().has_value()) ++received;
  EXPECT_EQ(received, 10);
}

}  // namespace
}  // namespace txrep::mw
