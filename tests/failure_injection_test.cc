// Transient key-value node failures must be retried (apply path) or
// restarted (execution path) without ever corrupting the replica.

#include "core/serial_applier.h"
#include "core/transaction_manager.h"
#include "gtest/gtest.h"
#include "kv/inmemory_node.h"
#include "kv/kv_cluster.h"
#include "qt/query_translator.h"
#include "rel/database.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace txrep::core {
namespace {

TEST(FailureInjectionTest, TmSurvivesTransientNodeFailures) {
  rel::Database db;
  workload::SyntheticWorkload workload(
      {.num_items = 80, .hot_range = 80, .seed = 31});
  TXREP_ASSERT_OK(workload.CreateSchema(db));
  TXREP_ASSERT_OK(workload.Populate(db));
  TXREP_ASSERT_OK(workload.Run(db, 200));

  qt::QueryTranslator translator(&db.catalog(), {});

  // Healthy store for the reference state.
  kv::InMemoryKvNode reference;
  TXREP_ASSERT_OK(testing::ReplaySerial(db, translator, &reference));

  // Flaky cluster: 2% of ops fail with Unavailable.
  kv::KvClusterOptions cluster_options;
  cluster_options.num_nodes = 3;
  cluster_options.node.failure_rate = 0.02;
  cluster_options.node.failure_seed = 9;
  kv::KvCluster flaky(cluster_options);

  // Note: InitializeIndexes/snapshot must succeed, so replay it through the
  // TM itself, which retries.
  TmOptions options;
  options.top_threads = 8;
  options.bottom_threads = 8;
  options.max_apply_retries = 64;
  options.max_execution_retries = 256;
  TmStats stats;
  // InitializeIndexes hits the store directly; retry it around injected
  // failures.
  Status init = Status::OK();
  for (int attempt = 0; attempt < 100; ++attempt) {
    init = translator.InitializeIndexes(&flaky);
    if (init.ok()) break;
  }
  TXREP_ASSERT_OK(init);
  {
    TransactionManager tm(&flaky, &translator, options);
    for (rel::LogTransaction& txn : db.log().ReadSince(0)) {
      tm.SubmitUpdate(std::move(txn));
    }
    TXREP_ASSERT_OK(tm.WaitIdle());
    stats = tm.stats();
  }
  EXPECT_GT(stats.apply_retries + stats.restarts, 0)
      << "failure injection produced no observable retries";
  testing::ExpectDumpsEqual(reference, flaky);
  // The logical verification reads through Get(), which would keep hitting
  // injected failures — verify against a healthy copy of the final state.
  kv::InMemoryKvNode final_state;
  for (const auto& [key, value] : flaky.Dump()) {
    TXREP_ASSERT_OK(final_state.Put(key, value));
  }
  testing::VerifyReplicaMatchesDatabase(final_state, db, translator);
}

TEST(FailureInjectionTest, ReadOnlyTransactionsRetryTransientFailures) {
  rel::Database db;
  Result<rel::TableSchema> schema = rel::TableSchema::Create(
      "T", {{"ID", rel::ValueType::kInt64}, {"V", rel::ValueType::kInt64}},
      "ID");
  ASSERT_TRUE(schema.ok());
  TXREP_ASSERT_OK(db.CreateTable(*schema));

  kv::KvNodeOptions node_options;
  node_options.failure_rate = 0.2;  // Every ~5th op fails.
  node_options.failure_seed = 77;
  kv::InMemoryKvNode flaky(node_options);

  qt::QueryTranslator translator(&db.catalog(), {});
  TmOptions options;
  options.max_apply_retries = 64;
  options.max_execution_retries = 256;
  TransactionManager tm(&flaky, &translator, options);

  rel::LogTransaction insert;
  insert.ops.push_back(rel::LogOp{rel::LogOpType::kInsert, "T",
                                  rel::Value::Int(1),
                                  {rel::Value::Int(1), rel::Value::Int(42)}});
  TXREP_ASSERT_OK(tm.SubmitUpdate(std::move(insert))->Wait());

  // 50 read-only transactions against the flaky store: each must eventually
  // succeed (transient read failures restart the transaction).
  int got = 0;
  for (int i = 0; i < 50; ++i) {
    auto handle = tm.SubmitReadOnly([&got](kv::KvStore* view) {
      TXREP_ASSIGN_OR_RETURN(kv::Value bytes, view->Get("T_1"));
      (void)bytes;
      ++got;
      return Status::OK();
    });
    TXREP_ASSERT_OK(handle->Wait());
  }
  EXPECT_GE(got, 50);  // >= because restarted attempts also increment.
  TXREP_ASSERT_OK(tm.health());
}

TEST(FailureInjectionTest, PersistentFailureSurfacesCleanly) {
  rel::Database db;
  Result<rel::TableSchema> schema = rel::TableSchema::Create(
      "T", {{"ID", rel::ValueType::kInt64}}, "ID");
  ASSERT_TRUE(schema.ok());
  TXREP_ASSERT_OK(db.CreateTable(*schema));

  kv::KvNodeOptions node_options;
  node_options.failure_rate = 1.0;  // Store is down hard.
  kv::InMemoryKvNode dead(node_options);

  qt::QueryTranslator translator(&db.catalog(), {});
  TmOptions options;
  options.max_apply_retries = 2;
  options.max_execution_retries = 3;
  options.apply_retry_backoff_micros = 10;
  TransactionManager tm(&dead, &translator, options);
  rel::LogTransaction txn;
  txn.ops.push_back(rel::LogOp{rel::LogOpType::kInsert, "T",
                               rel::Value::Int(1), {rel::Value::Int(1)}});
  auto handle = tm.SubmitUpdate(std::move(txn));
  Status s = handle->Wait();
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(tm.health().ok());
}

TEST(FailureInjectionTest, SerialApplierPropagatesFailures) {
  rel::Database db;
  Result<rel::TableSchema> schema = rel::TableSchema::Create(
      "T", {{"ID", rel::ValueType::kInt64}}, "ID");
  ASSERT_TRUE(schema.ok());
  TXREP_ASSERT_OK(db.CreateTable(*schema));
  kv::KvNodeOptions node_options;
  node_options.failure_rate = 1.0;
  kv::InMemoryKvNode dead(node_options);
  qt::QueryTranslator translator(&db.catalog(), {});
  SerialApplier applier(&dead, &translator);
  rel::LogTransaction txn;
  txn.ops.push_back(rel::LogOp{rel::LogOpType::kInsert, "T",
                               rel::Value::Int(1), {rel::Value::Int(1)}});
  EXPECT_TRUE(applier.Apply(txn).IsUnavailable());
  EXPECT_EQ(applier.applied(), 0);
}

}  // namespace
}  // namespace txrep::core
