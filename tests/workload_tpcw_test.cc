#include "workload/tpcw.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace txrep::workload {
namespace {

TEST(TpcwTest, MixWriteFractions) {
  EXPECT_DOUBLE_EQ(WriteFraction(TpcwMix::kBrowsing), 0.05);
  EXPECT_DOUBLE_EQ(WriteFraction(TpcwMix::kShopping), 0.20);
  EXPECT_DOUBLE_EQ(WriteFraction(TpcwMix::kOrdering), 0.50);
  EXPECT_STREQ(TpcwMixName(TpcwMix::kOrdering), "Ordering");
}

TEST(TpcwTest, SchemaCreatesAllTenTables) {
  rel::Database db;
  TpcwWorkload workload({}, 1);
  TXREP_ASSERT_OK(workload.CreateSchema(db));
  EXPECT_EQ(db.catalog().size(), 10u);
  for (const char* table :
       {"COUNTRY", "AUTHOR", "ADDRESS", "CUSTOMER", "ITEM", "ORDERS",
        "ORDER_LINE", "CREDIT_INFO", "SHOPPING_CART", "SHOPPING_CART_LINE"}) {
    EXPECT_TRUE(db.catalog().HasTable(table)) << table;
  }
  const rel::TableSchema& item = **db.catalog().GetTable("ITEM");
  EXPECT_FALSE(item.range_index_columns().empty());
}

TEST(TpcwTest, PopulateMatchesScale) {
  rel::Database db;
  TpcwScale scale;
  scale.items = 100;
  scale.customers = 50;
  scale.authors = 10;
  scale.addresses = 80;
  scale.countries = 20;
  scale.initial_orders = 30;
  scale.shopping_carts = 15;
  TpcwWorkload workload(scale, 2);
  TXREP_ASSERT_OK(workload.CreateSchema(db));
  TXREP_ASSERT_OK(workload.Populate(db));
  EXPECT_EQ(*db.TableSize("ITEM"), 100u);
  EXPECT_EQ(*db.TableSize("CUSTOMER"), 50u);
  EXPECT_EQ(*db.TableSize("AUTHOR"), 10u);
  EXPECT_EQ(*db.TableSize("ADDRESS"), 80u);
  EXPECT_EQ(*db.TableSize("COUNTRY"), 20u);
  EXPECT_EQ(*db.TableSize("ORDERS"), 30u);
  EXPECT_EQ(*db.TableSize("CREDIT_INFO"), 30u);
  EXPECT_EQ(*db.TableSize("SHOPPING_CART"), 15u);
  EXPECT_GE(*db.TableSize("ORDER_LINE"), 30u);
}

TEST(TpcwTest, GeneratedWriteTransactionsExecute) {
  rel::Database db;
  TpcwScale scale;
  scale.items = 50;
  scale.customers = 20;
  scale.addresses = 40;
  scale.initial_orders = 10;
  scale.shopping_carts = 5;
  TpcwWorkload workload(scale, 3);
  TXREP_ASSERT_OK(workload.CreateSchema(db));
  TXREP_ASSERT_OK(workload.Populate(db));
  const uint64_t before = db.log().LastLsn();
  for (int i = 0; i < 100; ++i) {
    TpcwWorkload::TxnSpec spec = workload.NextWriteTransaction();
    ASSERT_TRUE(spec.is_write);
    ASSERT_FALSE(spec.statements.empty());
    TXREP_ASSERT_OK(db.ExecuteTransaction(spec.statements).status());
  }
  EXPECT_EQ(db.log().LastLsn(), before + 100);
}

TEST(TpcwTest, MixRatioApproximatelyHonored) {
  rel::Database db;
  TpcwScale scale;
  scale.items = 50;
  scale.customers = 20;
  scale.addresses = 40;
  TpcwWorkload workload(scale, 4);
  TXREP_ASSERT_OK(workload.CreateSchema(db));
  TXREP_ASSERT_OK(workload.Populate(db));
  int writes = 0;
  constexpr int kN = 2000;
  for (int i = 0; i < kN; ++i) {
    if (workload.NextTransaction(TpcwMix::kShopping).is_write) ++writes;
  }
  EXPECT_NEAR(static_cast<double>(writes) / kN, 0.20, 0.03);
}

TEST(TpcwTest, ReadTransactionsCarryIndexablePredicates) {
  rel::Database db;
  TpcwWorkload workload({}, 5);
  TXREP_ASSERT_OK(workload.CreateSchema(db));
  for (int i = 0; i < 50; ++i) {
    TpcwWorkload::TxnSpec spec = workload.NextTransaction(TpcwMix::kBrowsing);
    if (spec.is_write) continue;
    EXPECT_FALSE(spec.read_query.table.empty());
    EXPECT_FALSE(spec.read_query.where.empty());
  }
}

TEST(TpcwTest, DeterministicForSeed) {
  rel::Database db1, db2;
  TpcwWorkload w1({}, 9), w2({}, 9);
  TXREP_ASSERT_OK(w1.CreateSchema(db1));
  TXREP_ASSERT_OK(w2.CreateSchema(db2));
  TXREP_ASSERT_OK(w1.Populate(db1));
  TXREP_ASSERT_OK(w2.Populate(db2));
  for (int i = 0; i < 20; ++i) {
    TpcwWorkload::TxnSpec s1 = w1.NextTransaction(TpcwMix::kOrdering);
    TpcwWorkload::TxnSpec s2 = w2.NextTransaction(TpcwMix::kOrdering);
    EXPECT_EQ(s1.is_write, s2.is_write);
    EXPECT_EQ(s1.statements.size(), s2.statements.size());
  }
}

}  // namespace
}  // namespace txrep::workload
