// Randomized round-trip properties for every codec, parameterized by seed.

#include <vector>

#include "blink/node.h"
#include "codec/encoding.h"
#include "codec/log_codec.h"
#include "codec/row_codec.h"
#include "codec/value_codec.h"
#include "common/random.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace txrep::codec {
namespace {

using rel::Value;

class CodecPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  Value RandomValue(Random& rng) {
    switch (rng.Uniform(4)) {
      case 0:
        return Value::Null();
      case 1:
        return Value::Int(static_cast<int64_t>(rng.NextUint64()));
      case 2:
        return Value::Real(rng.NextDouble() * 1e9 - 5e8);
      default:
        return Value::Str(RandomBytes(rng, rng.Uniform(40)));
    }
  }

  std::string RandomBytes(Random& rng, size_t len) {
    std::string out;
    out.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      out.push_back(static_cast<char>(rng.Uniform(256)));
    }
    return out;
  }
};

TEST_P(CodecPropertyTest, VarintRoundTrips) {
  Random rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    // Bias towards boundary-ish magnitudes.
    const uint64_t v = rng.NextUint64() >> rng.Uniform(64);
    std::string buf;
    AppendVarint64(buf, v);
    std::string_view view = buf;
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(&view, &decoded));
    ASSERT_EQ(decoded, v);
    ASSERT_TRUE(view.empty());
  }
}

TEST_P(CodecPropertyTest, ValueRoundTrips) {
  Random rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    const Value v = RandomValue(rng);
    std::string buf;
    AppendValue(buf, v);
    std::string_view view = buf;
    Value decoded;
    ASSERT_TRUE(GetValue(&view, &decoded)) << v.ToString();
    ASSERT_EQ(decoded, v);
  }
}

TEST_P(CodecPropertyTest, RowRoundTrips) {
  Random rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    rel::Row row;
    const size_t arity = rng.Uniform(12);
    for (size_t c = 0; c < arity; ++c) row.push_back(RandomValue(rng));
    Result<rel::Row> decoded = DecodeRow(EncodeRow(row));
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(*decoded, row);
  }
}

TEST_P(CodecPropertyTest, PostingsRoundTripSortedUnique) {
  Random rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    std::vector<std::string> keys;
    const size_t n = rng.Uniform(30);
    for (size_t k = 0; k < n; ++k) {
      keys.push_back("T_" + std::to_string(rng.Uniform(40)));
    }
    Result<std::vector<std::string>> decoded =
        DecodePostings(EncodePostings(keys));
    ASSERT_TRUE(decoded.ok());
    for (size_t k = 1; k < decoded->size(); ++k) {
      ASSERT_LT((*decoded)[k - 1], (*decoded)[k]);
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    ASSERT_EQ(*decoded, keys);
  }
}

TEST_P(CodecPropertyTest, LogBatchRoundTrips) {
  Random rng(GetParam());
  std::vector<rel::LogTransaction> batch;
  for (int t = 0; t < 50; ++t) {
    rel::LogTransaction txn;
    txn.lsn = t + 1;
    txn.commit_micros = static_cast<int64_t>(rng.NextUint64() >> 20);
    const size_t ops = 1 + rng.Uniform(4);
    for (size_t o = 0; o < ops; ++o) {
      rel::LogOp op;
      op.type = static_cast<rel::LogOpType>(rng.Uniform(3));
      op.table = "T" + std::to_string(rng.Uniform(5));
      op.pk = Value::Int(static_cast<int64_t>(rng.Uniform(1000)));
      if (op.type != rel::LogOpType::kDelete) {
        const size_t arity = 1 + rng.Uniform(5);
        for (size_t c = 0; c < arity; ++c) {
          op.after.push_back(RandomValue(rng));
        }
      }
      txn.ops.push_back(std::move(op));
    }
    batch.push_back(std::move(txn));
  }
  Result<std::vector<rel::LogTransaction>> decoded =
      DecodeLogBatch(EncodeLogBatch(batch));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), batch.size());
  for (size_t t = 0; t < batch.size(); ++t) {
    ASSERT_EQ((*decoded)[t].lsn, batch[t].lsn);
    ASSERT_EQ((*decoded)[t].commit_micros, batch[t].commit_micros);
    ASSERT_EQ((*decoded)[t].ops.size(), batch[t].ops.size());
    for (size_t o = 0; o < batch[t].ops.size(); ++o) {
      ASSERT_EQ((*decoded)[t].ops[o], batch[t].ops[o]);
    }
  }
}

TEST_P(CodecPropertyTest, BlinkNodeRoundTrips) {
  Random rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    blink::BlinkNode node;
    node.level = static_cast<uint32_t>(rng.Uniform(4));
    node.right_id = rng.Uniform(1000);
    node.has_high_key = rng.Bernoulli(0.7);
    if (node.has_high_key) {
      node.high_key = {RandomValue(rng), RandomBytes(rng, 8)};
    }
    const size_t keys = rng.Uniform(20);
    if (node.is_leaf()) {
      for (size_t k = 0; k < keys; ++k) {
        node.entries.push_back({RandomValue(rng), RandomBytes(rng, 6)});
      }
    } else {
      for (size_t k = 0; k < keys; ++k) {
        node.separators.push_back({RandomValue(rng), RandomBytes(rng, 6)});
      }
      for (size_t k = 0; k < keys + 1; ++k) {
        node.children.push_back(rng.Uniform(10000));
      }
    }
    Result<blink::BlinkNode> decoded =
        blink::DecodeBlinkNode(blink::EncodeBlinkNode(node));
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded->level, node.level);
    ASSERT_EQ(decoded->right_id, node.right_id);
    ASSERT_EQ(decoded->has_high_key, node.has_high_key);
    if (node.has_high_key) {
      ASSERT_EQ(decoded->high_key, node.high_key);
    }
    ASSERT_EQ(decoded->entries, node.entries);
    ASSERT_EQ(decoded->separators, node.separators);
    ASSERT_EQ(decoded->children, node.children);
  }
}

TEST_P(CodecPropertyTest, TruncationAlwaysDetected) {
  Random rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    rel::Row row;
    const size_t arity = 1 + rng.Uniform(6);
    for (size_t c = 0; c < arity; ++c) row.push_back(RandomValue(rng));
    std::string bytes = EncodeRow(row);
    if (bytes.size() < 2) continue;
    const size_t cut = 1 + rng.Uniform(bytes.size() - 1);
    Result<rel::Row> decoded =
        DecodeRow(std::string_view(bytes).substr(0, cut));
    // Either corruption is detected or — never — a wrong success.
    if (decoded.ok()) {
      ASSERT_EQ(*decoded, row) << "truncated decode fabricated a row";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace txrep::codec
