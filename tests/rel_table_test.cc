#include "rel/table.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace txrep::rel {
namespace {

class TableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<TableSchema> schema =
        TableSchema::Create("ITEM",
                            {{"I_ID", ValueType::kInt64},
                             {"I_TITLE", ValueType::kString},
                             {"I_COST", ValueType::kDouble}},
                            "I_ID");
    ASSERT_TRUE(schema.ok());
    schema_ = *schema;
    TXREP_ASSERT_OK(schema_.AddHashIndex("I_COST"));
    table_ = std::make_unique<Table>(&schema_);
  }

  Row MakeRow(int64_t id, const std::string& title, double cost) {
    return {Value::Int(id), Value::Str(title), Value::Real(cost)};
  }

  TableSchema schema_;
  std::unique_ptr<Table> table_;
};

TEST_F(TableTest, InsertAndLookup) {
  TXREP_ASSERT_OK(table_->Insert(MakeRow(1, "a", 10.0)));
  Result<Row> row = table_->Lookup(Value::Int(1));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].AsString(), "a");
  EXPECT_EQ(table_->size(), 1u);
}

TEST_F(TableTest, DuplicatePkRejected) {
  TXREP_ASSERT_OK(table_->Insert(MakeRow(1, "a", 10.0)));
  EXPECT_TRUE(table_->Insert(MakeRow(1, "b", 20.0)).IsAlreadyExists());
}

TEST_F(TableTest, UpdateReplacesRowAndIndexes) {
  TXREP_ASSERT_OK(table_->Insert(MakeRow(1, "a", 10.0)));
  TXREP_ASSERT_OK(table_->Update(Value::Int(1), MakeRow(1, "a2", 20.0)));
  EXPECT_EQ((*table_->Lookup(Value::Int(1)))[2].AsDouble(), 20.0);

  // Old index entry must be gone, new one present.
  Result<std::vector<Value>> old_keys = table_->ScanKeys(
      {Predicate{"I_COST", PredicateOp::kEq, Value::Real(10.0), {}}});
  ASSERT_TRUE(old_keys.ok());
  EXPECT_TRUE(old_keys->empty());
  Result<std::vector<Value>> new_keys = table_->ScanKeys(
      {Predicate{"I_COST", PredicateOp::kEq, Value::Real(20.0), {}}});
  ASSERT_TRUE(new_keys.ok());
  EXPECT_EQ(new_keys->size(), 1u);
}

TEST_F(TableTest, UpdateMissingIsNotFound) {
  EXPECT_TRUE(table_->Update(Value::Int(9), MakeRow(9, "x", 1.0)).IsNotFound());
}

TEST_F(TableTest, UpdateCannotChangePk) {
  TXREP_ASSERT_OK(table_->Insert(MakeRow(1, "a", 10.0)));
  EXPECT_TRUE(table_->Update(Value::Int(1), MakeRow(2, "a", 10.0))
                  .IsInvalidArgument());
}

TEST_F(TableTest, DeleteRemovesRowAndIndex) {
  TXREP_ASSERT_OK(table_->Insert(MakeRow(1, "a", 10.0)));
  TXREP_ASSERT_OK(table_->Delete(Value::Int(1)));
  EXPECT_TRUE(table_->Lookup(Value::Int(1)).status().IsNotFound());
  EXPECT_TRUE(table_->Delete(Value::Int(1)).IsNotFound());
  Result<std::vector<Value>> keys = table_->ScanKeys(
      {Predicate{"I_COST", PredicateOp::kEq, Value::Real(10.0), {}}});
  ASSERT_TRUE(keys.ok());
  EXPECT_TRUE(keys->empty());
}

TEST_F(TableTest, ScanByPkEquality) {
  for (int i = 1; i <= 5; ++i) {
    TXREP_ASSERT_OK(table_->Insert(MakeRow(i, "t", i * 1.0)));
  }
  Result<std::vector<Row>> rows =
      table_->Scan({Predicate{"I_ID", PredicateOp::kEq, Value::Int(3), {}}});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].AsInt(), 3);
}

TEST_F(TableTest, ScanByIndexedEqualitySharedValues) {
  TXREP_ASSERT_OK(table_->Insert(MakeRow(1, "a", 100.0)));
  TXREP_ASSERT_OK(table_->Insert(MakeRow(7, "b", 100.0)));
  TXREP_ASSERT_OK(table_->Insert(MakeRow(3, "c", 50.0)));
  Result<std::vector<Row>> rows = table_->Scan(
      {Predicate{"I_COST", PredicateOp::kEq, Value::Real(100.0), {}}});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][0].AsInt(), 1);  // PK order.
  EXPECT_EQ((*rows)[1][0].AsInt(), 7);
}

TEST_F(TableTest, FullScanWithRangePredicate) {
  for (int i = 1; i <= 10; ++i) {
    TXREP_ASSERT_OK(table_->Insert(MakeRow(i, "t", i * 10.0)));
  }
  Result<std::vector<Row>> rows = table_->Scan({Predicate{
      "I_COST", PredicateOp::kBetween, Value::Real(25.0), Value::Real(55.0)}});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);  // 30, 40, 50.
}

TEST_F(TableTest, ConjunctionFiltersAll) {
  TXREP_ASSERT_OK(table_->Insert(MakeRow(1, "a", 10.0)));
  TXREP_ASSERT_OK(table_->Insert(MakeRow(2, "a", 20.0)));
  Result<std::vector<Row>> rows = table_->Scan(
      {Predicate{"I_TITLE", PredicateOp::kEq, Value::Str("a"), {}},
       Predicate{"I_COST", PredicateOp::kGt, Value::Real(15.0), {}}});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].AsInt(), 2);
}

TEST_F(TableTest, UnknownPredicateColumnErrors) {
  EXPECT_TRUE(
      table_->Scan({Predicate{"NOPE", PredicateOp::kEq, Value::Int(1), {}}})
          .status()
          .IsNotFound());
}

TEST_F(TableTest, NullIndexedValuesNotIndexed) {
  TXREP_ASSERT_OK(
      table_->Insert({Value::Int(1), Value::Str("a"), Value::Null()}));
  Result<std::vector<Row>> rows = table_->Scan(
      {Predicate{"I_COST", PredicateOp::kEq, Value::Real(0.0), {}}});
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(TableTest, RebuildIndexesBackfills) {
  TXREP_ASSERT_OK(table_->Insert(MakeRow(1, "alpha", 10.0)));
  TXREP_ASSERT_OK(schema_.AddHashIndex("I_TITLE"));
  table_->RebuildIndexes();
  Result<std::vector<Row>> rows = table_->Scan(
      {Predicate{"I_TITLE", PredicateOp::kEq, Value::Str("alpha"), {}}});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST_F(TableTest, ScanAllInPkOrder) {
  TXREP_ASSERT_OK(table_->Insert(MakeRow(5, "e", 1.0)));
  TXREP_ASSERT_OK(table_->Insert(MakeRow(1, "a", 1.0)));
  TXREP_ASSERT_OK(table_->Insert(MakeRow(3, "c", 1.0)));
  std::vector<Row> all = table_->ScanAll();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0][0].AsInt(), 1);
  EXPECT_EQ(all[1][0].AsInt(), 3);
  EXPECT_EQ(all[2][0].AsInt(), 5);
}

}  // namespace
}  // namespace txrep::rel
