#include "common/random.h"

#include <algorithm>
#include <map>
#include <vector>

#include "gtest/gtest.h"

namespace txrep {
namespace {

TEST(RandomTest, DeterministicForSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
  }
}

TEST(RandomTest, UniformCoversRange) {
  Random rng(7);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 10000; ++i) ++counts[rng.Uniform(10)];
  ASSERT_EQ(counts.size(), 10u);
  for (const auto& [v, c] : counts) {
    EXPECT_GT(c, 700) << "value " << v << " badly under-represented";
    EXPECT_LT(c, 1300) << "value " << v << " badly over-represented";
  }
}

TEST(RandomTest, UniformRangeInclusive) {
  Random rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RandomTest, BernoulliMatchesProbability) {
  Random rng(3);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.2)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.2, 0.02);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RandomTest, NextStringLengthAndCharset) {
  Random rng(4);
  std::string s = rng.NextString(64);
  ASSERT_EQ(s.size(), 64u);
  for (char c : s) {
    EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)));
  }
}

TEST(RandomTest, ShufflePermutes) {
  Random rng(6);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  std::vector<int> original = v;
  rng.Shuffle(v);
  EXPECT_NE(v, original);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(ZipfTest, StaysInRangeAndSkewed) {
  ZipfGenerator zipf(1000, 0.9, 42);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = zipf.Next();
    ASSERT_LT(v, 1000u);
    ++counts[v];
  }
  // Rank 0 must dominate any mid-range rank under strong skew.
  EXPECT_GT(counts[0], 20 * std::max(1, counts[500]));
}

TEST(ZipfTest, Deterministic) {
  ZipfGenerator a(100, 0.5, 9), b(100, 0.5, 9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

}  // namespace
}  // namespace txrep
