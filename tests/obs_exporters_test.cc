// Exporter golden-output tests. The fixture registry is built so every
// number is deterministic: a single histogram sample whose value is a bucket
// lower bound reports that value for min/max/mean and all percentiles
// (interpolation is capped at max), so the rendered strings are exact.

#include "obs/exporters.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "gtest/gtest.h"
#include "obs/metrics.h"

namespace txrep::obs {
namespace {

MetricsSnapshot FixtureSnapshot() {
  MetricsRegistry registry;
  registry.GetCounter("txrep_test_ops_total", {{"op", "put"}, {"node", "0"}})
      ->Increment(3);
  registry.GetGauge("txrep_test_depth")->Set(7);
  registry.GetHistogram("txrep_test_latency_us", {{"stage", "apply"}})
      ->Record(4);
  return registry.Snapshot();
}

TEST(ExportersTest, TextGolden) {
  EXPECT_EQ(ToText(FixtureSnapshot()),
            "counter txrep_test_ops_total{node=\"0\",op=\"put\"} 3\n"
            "gauge txrep_test_depth{} 7\n"
            "histogram txrep_test_latency_us{stage=\"apply\"} count=1 min=4 "
            "max=4 mean=4 p50=4 p90=4 p95=4 p99=4 p999=4\n");
}

TEST(ExportersTest, JsonGolden) {
  EXPECT_EQ(
      ToJson(FixtureSnapshot()),
      "{\n"
      "  \"counters\": [\n"
      "    {\"name\":\"txrep_test_ops_total\","
      "\"labels\":{\"node\":\"0\",\"op\":\"put\"},\"value\":3}\n"
      "  ],\n"
      "  \"gauges\": [\n"
      "    {\"name\":\"txrep_test_depth\",\"labels\":{},\"value\":7}\n"
      "  ],\n"
      "  \"histograms\": [\n"
      "    {\"name\":\"txrep_test_latency_us\","
      "\"labels\":{\"stage\":\"apply\"},"
      "\"value\":{\"count\":1,\"min\":4,\"max\":4,\"sum\":4,\"mean\":4,"
      "\"p50\":4,\"p90\":4,\"p95\":4,\"p99\":4,\"p999\":4}}\n"
      "  ]\n"
      "}\n");
}

TEST(ExportersTest, PrometheusGolden) {
  EXPECT_EQ(ToPrometheus(FixtureSnapshot()),
            "# TYPE txrep_test_ops_total counter\n"
            "txrep_test_ops_total{node=\"0\",op=\"put\"} 3\n"
            "# TYPE txrep_test_depth gauge\n"
            "txrep_test_depth 7\n"
            "# TYPE txrep_test_latency_us summary\n"
            "txrep_test_latency_us{stage=\"apply\",quantile=\"0.5\"} 4\n"
            "txrep_test_latency_us{stage=\"apply\",quantile=\"0.9\"} 4\n"
            "txrep_test_latency_us{stage=\"apply\",quantile=\"0.99\"} 4\n"
            "txrep_test_latency_us{stage=\"apply\",quantile=\"0.999\"} 4\n"
            "txrep_test_latency_us_sum{stage=\"apply\"} 4\n"
            "txrep_test_latency_us_count{stage=\"apply\"} 1\n");
}

TEST(ExportersTest, EmptySnapshotRenders) {
  const MetricsSnapshot empty;
  EXPECT_EQ(ToText(empty), "");
  EXPECT_EQ(ToJson(empty),
            "{\n  \"counters\": [],\n  \"gauges\": [],\n"
            "  \"histograms\": []\n}\n");
  EXPECT_EQ(ToPrometheus(empty), "");
}

TEST(ExportersTest, PrometheusEmitsTypeHeaderOncePerName) {
  MetricsRegistry registry;
  registry.GetCounter("ops_total", {{"node", "0"}})->Increment();
  registry.GetCounter("ops_total", {{"node", "1"}})->Increment();
  const std::string out = ToPrometheus(registry.Snapshot());
  size_t first = out.find("# TYPE ops_total counter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(out.find("# TYPE ops_total counter", first + 1),
            std::string::npos);
}

TEST(ExportersTest, EscapesQuotesAndBackslashesInLabelValues) {
  MetricsRegistry registry;
  registry.GetCounter("c_total", {{"k", "a\"b\\c"}})->Increment();
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_NE(ToText(snapshot).find("k=\"a\\\"b\\\\c\""), std::string::npos);
  EXPECT_NE(ToJson(snapshot).find("\"k\":\"a\\\"b\\\\c\""),
            std::string::npos);
}

TEST(PeriodicReporterTest, InvokesSinkRepeatedlyAndStops) {
  MetricsRegistry registry;
  registry.GetCounter("ticks_total")->Increment();
  std::atomic<int> calls{0};
  {
    PeriodicReporter reporter(&registry, /*interval_micros=*/1000,
                              [&calls](const MetricsSnapshot& snapshot) {
                                EXPECT_EQ(snapshot.counters.size(), 1u);
                                calls.fetch_add(1);
                              });
    while (calls.load() < 3) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    reporter.Stop();
    reporter.Stop();  // Idempotent.
  }
  const int after_stop = calls.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(calls.load(), after_stop);
}

}  // namespace
}  // namespace txrep::obs
