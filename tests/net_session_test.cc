// NetEndpoint <-> NetSubscription sessions over socketpairs: handshake with
// catalog hand-off, subscription rejection paths, credit-based backpressure
// bounding in-flight batches, and orderly server shutdown.

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "gtest/gtest.h"
#include "mw/broker.h"
#include "mw/publisher.h"
#include "mw/subscriber.h"
#include "net/endpoint.h"
#include "net/socket.h"
#include "net/subscription.h"
#include "rel/txlog.h"
#include "test_util.h"

namespace txrep::net {
namespace {

rel::LogOp MakeOp(int64_t pk) {
  return rel::LogOp{rel::LogOpType::kInsert, "T", rel::Value::Int(pk),
                    {rel::Value::Int(pk)}};
}

/// Broker + endpoint with teardown in the only safe order: sessions first,
/// then the broker's delivery thread (it calls into the endpoint's fanout).
struct WireRig {
  mw::Broker broker;
  NetEndpoint endpoint;

  explicit WireRig(EndpointOptions options = {})
      : endpoint(&broker, std::move(options)) {}

  ~WireRig() {
    endpoint.Stop();
    broker.Shutdown();
  }

  /// Dials by socketpair: hands one end to the endpoint, one to the caller.
  NetSubscription::SocketFactory Factory() {
    return [this]() -> Result<Socket> {
      TXREP_ASSIGN_OR_RETURN(auto pair, Socket::CreatePair());
      TXREP_RETURN_IF_ERROR(endpoint.ServeSocket(std::move(pair.first)));
      return std::move(pair.second);
    };
  }
};

TEST(NetSessionTest, HandshakeCarriesCatalogAndStreamsInOrder) {
  rel::TxLog log;
  for (int i = 1; i <= 40; ++i) log.Append({MakeOp(i)});

  WireRig rig;
  rig.endpoint.SetCatalog("opaque-catalog-bytes");

  NetSubscription subscription(rig.Factory());
  TXREP_ASSERT_OK(subscription.WaitConnected());
  EXPECT_EQ(subscription.catalog(), "opaque-catalog-bytes");
  EXPECT_EQ(rig.endpoint.live_sessions(), 1u);

  std::vector<uint64_t> received;
  std::mutex mu;
  mw::SubscriberAgent agent(&subscription, [&](rel::LogTransaction txn) {
    std::lock_guard<std::mutex> lock(mu);
    received.push_back(txn.lsn);
    return Status::OK();
  });
  mw::PublisherAgent publisher(&log, &rig.broker,
                               {.topic = "txrep.log", .batch_size = 7,
                                .poll_interval_micros = 100,
                                .start_after_lsn = 0});
  TXREP_ASSERT_OK(publisher.PumpAll());
  ASSERT_TRUE(agent.WaitForLsn(40));
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(received.size(), 40u);
    for (size_t i = 0; i < received.size(); ++i) {
      EXPECT_EQ(received[i], i + 1);
    }
  }
  EXPECT_EQ(rig.endpoint.last_published_lsn(), 40u);
  TXREP_EXPECT_OK(subscription.health());
  subscription.Close();
  agent.Stop();
}

TEST(NetSessionTest, RejectsWrongTopic) {
  WireRig rig;
  NetSubscriptionOptions options;
  options.topic = "not-the-topic";
  NetSubscription subscription(rig.Factory(), options);
  Status status = subscription.WaitConnected();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("unknown topic"), std::string::npos)
      << status.ToString();
}

TEST(NetSessionTest, RejectsResumeBelowRetentionFloor) {
  WireRig rig;
  rig.endpoint.SetRetentionFloor(25);
  NetSubscriptionOptions options;
  options.resume_after_lsn = 10;  // Below the floor: the gap is unservable.
  NetSubscription subscription(rig.Factory(), options);
  Status status = subscription.WaitConnected();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("bootstrap required"), std::string::npos)
      << status.ToString();
  // A resume at the floor itself is fine (everything <= floor is applied).
  NetSubscriptionOptions resumed;
  resumed.resume_after_lsn = 25;
  NetSubscription ok_subscription(rig.Factory(), resumed);
  TXREP_EXPECT_OK(ok_subscription.WaitConnected());
}

TEST(NetSessionTest, CreditWindowBoundsInFlightBatches) {
  rel::TxLog log;
  const int kTxns = 30;
  for (int i = 1; i <= kTxns; ++i) log.Append({MakeOp(i)});

  WireRig rig;
  NetSubscriptionOptions options;
  options.initial_credits = 2;
  options.queue_capacity = 1;
  NetSubscription subscription(rig.Factory(), options);
  TXREP_ASSERT_OK(subscription.WaitConnected());

  mw::PublisherAgent publisher(&log, &rig.broker,
                               {.topic = "txrep.log", .batch_size = 1,
                                .poll_interval_micros = 100,
                                .start_after_lsn = 0});
  TXREP_ASSERT_OK(publisher.PumpAll());

  // Nobody consumes: the client stops crediting once its bounded queue is
  // full, so only the credit window (plus the queue slot) can cross the
  // wire. The other ~25 batches must stay parked server-side.
  SleepForMicros(200'000);
  EXPECT_LE(subscription.delivered_lsn(), 5u);

  // Drain: the credit flow restarts and everything arrives, in order.
  for (int i = 0; i < kTxns; ++i) {
    ASSERT_TRUE(subscription.Pop().has_value()) << "message " << i;
  }
  for (int i = 0; subscription.delivered_lsn() < kTxns && i < 5000; ++i) {
    SleepForMicros(1000);
  }
  EXPECT_EQ(subscription.delivered_lsn(), static_cast<uint64_t>(kTxns));
  TXREP_EXPECT_OK(subscription.health());
}

TEST(NetSessionTest, ServerStopEndsStreamCleanly) {
  rel::TxLog log;
  for (int i = 1; i <= 10; ++i) log.Append({MakeOp(i)});

  auto rig = std::make_unique<WireRig>();
  NetSubscription subscription(rig->Factory());
  TXREP_ASSERT_OK(subscription.WaitConnected());
  mw::PublisherAgent publisher(&log, &rig->broker,
                               {.topic = "txrep.log", .batch_size = 5,
                                .poll_interval_micros = 100,
                                .start_after_lsn = 0});
  TXREP_ASSERT_OK(publisher.PumpAll());
  for (int i = 0; subscription.delivered_lsn() < 10 && i < 5000; ++i) {
    SleepForMicros(1000);
  }
  EXPECT_EQ(subscription.delivered_lsn(), 10u);

  rig->endpoint.Stop();
  // Orderly kBye: queued messages drain, then end-of-stream; healthy still.
  int drained = 0;
  while (subscription.Pop().has_value()) ++drained;
  EXPECT_EQ(drained, 2);  // ceil(10 / 5) batches.
  TXREP_EXPECT_OK(subscription.health());
}

}  // namespace
}  // namespace txrep::net
