#include "sql/parser.h"

#include "gtest/gtest.h"

namespace txrep::sql {
namespace {

using rel::PredicateOp;
using rel::Value;
using rel::ValueType;

TEST(ParserTest, CreateTable) {
  Result<ParsedCommand> cmd = ParseCommand(
      "CREATE TABLE ITEM (I_ID INT PRIMARY KEY, I_TITLE VARCHAR(40), "
      "I_COST DOUBLE)");
  ASSERT_TRUE(cmd.ok()) << cmd.status().ToString();
  auto* create = std::get_if<CreateTableCommand>(&*cmd);
  ASSERT_NE(create, nullptr);
  EXPECT_EQ(create->schema.table_name(), "ITEM");
  EXPECT_EQ(create->schema.num_columns(), 3u);
  EXPECT_EQ(create->schema.pk_column(), "I_ID");
  EXPECT_EQ(create->schema.columns()[1].type, ValueType::kString);
  EXPECT_EQ(create->schema.columns()[2].type, ValueType::kDouble);
}

TEST(ParserTest, CreateTableRequiresPk) {
  EXPECT_FALSE(ParseCommand("CREATE TABLE T (A INT)").ok());
  EXPECT_FALSE(
      ParseCommand("CREATE TABLE T (A INT PRIMARY KEY, B INT PRIMARY KEY)")
          .ok());
}

TEST(ParserTest, CreateIndexes) {
  Result<ParsedCommand> hash = ParseCommand("CREATE INDEX ON ITEM (I_COST)");
  ASSERT_TRUE(hash.ok());
  auto* h = std::get_if<CreateIndexCommand>(&*hash);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->table, "ITEM");
  EXPECT_EQ(h->column, "I_COST");
  EXPECT_FALSE(h->range);

  Result<ParsedCommand> range =
      ParseCommand("CREATE RANGE INDEX ON ITEM (I_COST)");
  ASSERT_TRUE(range.ok());
  EXPECT_TRUE(std::get<CreateIndexCommand>(*range).range);
}

TEST(ParserTest, InsertPlain) {
  Result<ParsedCommand> cmd =
      ParseCommand("INSERT INTO ITEM VALUES (1, 'Item1', 9.99)");
  ASSERT_TRUE(cmd.ok());
  auto& insert = std::get<rel::InsertStatement>(*cmd);
  EXPECT_EQ(insert.table, "ITEM");
  EXPECT_TRUE(insert.columns.empty());
  ASSERT_EQ(insert.values.size(), 3u);
  EXPECT_EQ(insert.values[0], Value::Int(1));
  EXPECT_EQ(insert.values[1], Value::Str("Item1"));
  EXPECT_EQ(insert.values[2], Value::Real(9.99));
}

TEST(ParserTest, InsertWithColumnsAndSigns) {
  Result<ParsedCommand> cmd = ParseCommand(
      "INSERT INTO T (A, B, C) VALUES (-5, +2.5, NULL)");
  ASSERT_TRUE(cmd.ok());
  auto& insert = std::get<rel::InsertStatement>(*cmd);
  EXPECT_EQ(insert.columns,
            (std::vector<std::string>{"A", "B", "C"}));
  EXPECT_EQ(insert.values[0], Value::Int(-5));
  EXPECT_EQ(insert.values[1], Value::Real(2.5));
  EXPECT_TRUE(insert.values[2].is_null());
}

TEST(ParserTest, UpdateWithWhere) {
  Result<ParsedCommand> cmd = ParseCommand(
      "UPDATE ITEM SET I_COST = 5.0, I_TITLE = 'x' WHERE I_ID = 3");
  ASSERT_TRUE(cmd.ok());
  auto& update = std::get<rel::UpdateStatement>(*cmd);
  ASSERT_EQ(update.sets.size(), 2u);
  EXPECT_EQ(update.sets[0].first, "I_COST");
  ASSERT_EQ(update.where.size(), 1u);
  EXPECT_EQ(update.where[0].op, PredicateOp::kEq);
  EXPECT_EQ(update.where[0].operand, Value::Int(3));
}

TEST(ParserTest, DeleteWithConjunction) {
  Result<ParsedCommand> cmd = ParseCommand(
      "DELETE FROM T WHERE A >= 1 AND B < 10 AND C = 'z'");
  ASSERT_TRUE(cmd.ok());
  auto& del = std::get<rel::DeleteStatement>(*cmd);
  ASSERT_EQ(del.where.size(), 3u);
  EXPECT_EQ(del.where[0].op, PredicateOp::kGe);
  EXPECT_EQ(del.where[1].op, PredicateOp::kLt);
  EXPECT_EQ(del.where[2].op, PredicateOp::kEq);
}

TEST(ParserTest, SelectStarAndProjection) {
  Result<ParsedCommand> star = ParseCommand("SELECT * FROM T");
  ASSERT_TRUE(star.ok());
  EXPECT_TRUE(std::get<rel::SelectStatement>(*star).columns.empty());

  Result<ParsedCommand> proj = ParseCommand("SELECT A, B FROM T WHERE A = 1");
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(std::get<rel::SelectStatement>(*proj).columns.size(), 2u);
}

TEST(ParserTest, BetweenPredicate) {
  Result<ParsedCommand> cmd =
      ParseCommand("SELECT * FROM ITEM WHERE I_COST BETWEEN 5.0 AND 10.0");
  ASSERT_TRUE(cmd.ok());
  auto& select = std::get<rel::SelectStatement>(*cmd);
  ASSERT_EQ(select.where.size(), 1u);
  EXPECT_EQ(select.where[0].op, PredicateOp::kBetween);
  EXPECT_EQ(select.where[0].operand, Value::Real(5.0));
  EXPECT_EQ(select.where[0].operand2, Value::Real(10.0));
}

TEST(ParserTest, TrailingSemicolonAllowed) {
  EXPECT_TRUE(ParseCommand("SELECT * FROM T;").ok());
}

TEST(ParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(ParseCommand("SELECT * FROM T garbage").ok());
  EXPECT_FALSE(ParseCommand("SELECT * FROM T; SELECT * FROM U").ok());
}

TEST(ParserTest, ScriptSplitsOnSemicolons) {
  Result<std::vector<ParsedCommand>> cmds = ParseScript(
      "CREATE TABLE T (A INT PRIMARY KEY);;\n"
      "INSERT INTO T VALUES (1);\n"
      "SELECT * FROM T");
  ASSERT_TRUE(cmds.ok()) << cmds.status().ToString();
  EXPECT_EQ(cmds->size(), 3u);
}

TEST(ParserTest, ErrorsCarryContext) {
  Status s = ParseCommand("UPDATE SET A = 1").status();
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("SET"), std::string::npos);
}

TEST(ParserTest, ToStatementRejectsDdl) {
  Result<ParsedCommand> cmd =
      ParseCommand("CREATE TABLE T (A INT PRIMARY KEY)");
  ASSERT_TRUE(cmd.ok());
  EXPECT_TRUE(ToStatement(std::move(*cmd)).status().IsInvalidArgument());
}

TEST(ParserTest, IsDmlClassification) {
  EXPECT_TRUE(IsDml(*ParseCommand("SELECT * FROM T")));
  EXPECT_FALSE(IsDml(*ParseCommand("CREATE TABLE T (A INT PRIMARY KEY)")));
  EXPECT_FALSE(IsDml(*ParseCommand("CREATE INDEX ON T (A)")));
}

TEST(ParserTest, KeywordsCaseInsensitive) {
  EXPECT_TRUE(ParseCommand("select * from T where A = 1").ok());
  EXPECT_TRUE(ParseCommand("Insert Into T Values (1)").ok());
}

TEST(ParserTest, CannotNegateStringsOrNull) {
  EXPECT_FALSE(ParseCommand("INSERT INTO T VALUES (-'x')").ok());
  EXPECT_FALSE(ParseCommand("INSERT INTO T VALUES (-NULL)").ok());
}

}  // namespace
}  // namespace txrep::sql
