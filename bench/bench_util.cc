#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>

#include "common/clock.h"
#include "core/serial_applier.h"
#include "obs/exporters.h"
#include "trace/export.h"
#include "workload/synthetic.h"

namespace txrep::bench {

namespace {
void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench setup: %s failed: %s\n", what,
                 status.ToString().c_str());
    std::abort();
  }
}

// Process-wide --trace-out capture (bench_main sets it before benchmarks
// run; replays append their recorder dumps; MaybeWriteTrace drains it).
std::mutex g_trace_mu;
std::string g_trace_path;
uint64_t g_trace_sample = 0;
std::vector<trace::SpanEvent> g_trace_events;

uint64_t GlobalTraceSample() {
  std::lock_guard<std::mutex> lock(g_trace_mu);
  return g_trace_sample;
}

void AccumulateTraceEvents(std::vector<trace::SpanEvent> events) {
  std::lock_guard<std::mutex> lock(g_trace_mu);
  if (g_trace_path.empty()) return;
  g_trace_events.insert(g_trace_events.end(), events.begin(), events.end());
}

/// Resolves a replay's tracer: an explicit per-call option wins, else the
/// process-wide --trace-out sampling, else no tracer.
std::unique_ptr<trace::Tracer> MakeReplayTracer(trace::TracerOptions trace) {
  if (trace.sample_every == 0) trace.sample_every = GlobalTraceSample();
  if (trace.sample_every == 0) return nullptr;
  return std::make_unique<trace::Tracer>(trace);
}
}  // namespace

void SetTraceOut(std::string path, uint64_t sample_every) {
  std::lock_guard<std::mutex> lock(g_trace_mu);
  g_trace_path = std::move(path);
  g_trace_sample = sample_every;
}

void MaybeWriteTrace() {
  std::string path;
  std::vector<trace::SpanEvent> events;
  {
    std::lock_guard<std::mutex> lock(g_trace_mu);
    if (g_trace_path.empty() || g_trace_events.empty()) return;
    path = g_trace_path;
    events.swap(g_trace_events);
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write trace to %s\n", path.c_str());
    return;
  }
  std::fputs(trace::ToChromeTraceJson(events).c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "bench: wrote %zu trace spans to %s\n", events.size(),
               path.c_str());
}

kv::KvClusterOptions DefaultCluster(int num_nodes) {
  kv::KvClusterOptions options;
  options.num_nodes = num_nodes;
  options.node.service_time_micros = 40;  // Simulated KV round-trip.
  options.node.service_slots = 4;         // "Server threads" per node.
  return options;
}

BenchInput BuildSyntheticLog(int num_items, int hot_range, int txns,
                             uint64_t seed) {
  BenchInput input;
  const workload::SyntheticOptions options{
      .num_items = num_items, .hot_range = hot_range, .seed = seed};

  // Snapshot database: population only (deterministic for the seed).
  input.snapshot = std::make_unique<rel::Database>();
  {
    workload::SyntheticWorkload workload(options);
    CheckOk(workload.CreateSchema(*input.snapshot), "CreateSchema");
    CheckOk(workload.Populate(*input.snapshot), "Populate");
  }
  // Log database: same population, then the update stream; the log is
  // truncated to exactly the stream.
  input.db = std::make_unique<rel::Database>();
  {
    workload::SyntheticWorkload workload(options);
    CheckOk(workload.CreateSchema(*input.db), "CreateSchema");
    CheckOk(workload.Populate(*input.db), "Populate");
    const uint64_t population_lsn = input.db->log().LastLsn();
    CheckOk(workload.Run(*input.db, txns), "Run");
    input.db->log().TruncateUpTo(population_lsn);
    input.writes = txns;
  }
  return input;
}

BenchInput BuildTpcwLog(workload::TpcwMix mix, int interactions,
                        uint64_t seed) {
  BenchInput input;
  workload::TpcwScale scale;
  scale.items = 500;
  scale.customers = 300;
  scale.addresses = 600;
  scale.initial_orders = 100;

  input.snapshot = std::make_unique<rel::Database>();
  {
    workload::TpcwWorkload tpcw(scale, seed);
    CheckOk(tpcw.CreateSchema(*input.snapshot), "CreateSchema");
    CheckOk(tpcw.Populate(*input.snapshot), "Populate");
  }
  input.db = std::make_unique<rel::Database>();
  {
    workload::TpcwWorkload tpcw(scale, seed);
    CheckOk(tpcw.CreateSchema(*input.db), "CreateSchema");
    CheckOk(tpcw.Populate(*input.db), "Populate");
    const uint64_t population_lsn = input.db->log().LastLsn();
    for (int i = 0; i < interactions; ++i) {
      workload::TpcwWorkload::TxnSpec spec = tpcw.NextTransaction(mix);
      if (spec.is_write) {
        CheckOk(input.db->ExecuteTransaction(spec.statements).status(),
                "write txn");
        ++input.writes;
      } else {
        input.read_queries.push_back(std::move(spec.read_query));
      }
    }
    input.db->log().TruncateUpTo(population_lsn);
  }
  return input;
}

BenchInput BuildTpccLog(const workload::TpccOptions& options, int txns) {
  BenchInput input;
  input.snapshot = std::make_unique<rel::Database>();
  {
    workload::TpccWorkload tpcc(options);
    CheckOk(tpcc.CreateSchema(*input.snapshot), "CreateSchema");
    CheckOk(tpcc.Populate(*input.snapshot), "Populate");
  }
  input.db = std::make_unique<rel::Database>();
  {
    workload::TpccWorkload tpcc(options);
    CheckOk(tpcc.CreateSchema(*input.db), "CreateSchema");
    CheckOk(tpcc.Populate(*input.db), "Populate");
    const uint64_t population_lsn = input.db->log().LastLsn();
    CheckOk(tpcc.RunWrites(*input.db, txns), "RunWrites");
    input.db->log().TruncateUpTo(population_lsn);
    input.writes = txns;
  }
  return input;
}

ReplayResult RunSerialReplay(const BenchInput& input,
                             const kv::KvClusterOptions& cluster_options,
                             trace::TracerOptions trace) {
  obs::MetricsRegistry registry;
  qt::QueryTranslator translator(&input.db->catalog(), {});
  kv::KvCluster cluster(cluster_options, &registry);
  CheckOk(translator.LoadSnapshot(&cluster, *input.snapshot), "LoadSnapshot");

  std::unique_ptr<trace::Tracer> tracer = MakeReplayTracer(trace);
  core::SerialApplier applier(&cluster, &translator, &registry,
                              core::BatchDispatchOptions{}, tracer.get());
  std::vector<rel::LogTransaction> log = input.db->log().ReadSince(0);
  if (tracer != nullptr) {
    for (rel::LogTransaction& txn : log) txn.trace = tracer->Mint(txn.lsn);
  }
  Stopwatch sw;
  CheckOk(applier.ApplyBatch(log), "ApplyBatch");
  ReplayResult result;
  result.seconds = sw.ElapsedSeconds();
  result.tx_per_sec = static_cast<double>(log.size()) / result.seconds;
  if (tracer != nullptr) {
    std::vector<trace::SpanEvent> events = tracer->Dump();
    result.trace_spans = static_cast<int64_t>(events.size());
    AccumulateTraceEvents(std::move(events));
  }
  result.metrics_json = obs::ToJson(registry.Snapshot());
  return result;
}

ReplayResult RunConcurrentReplay(const BenchInput& input,
                                 const kv::KvClusterOptions& cluster_options,
                                 int threads, core::TmOptions tm_options,
                                 trace::TracerOptions trace) {
  obs::MetricsRegistry registry;
  qt::QueryTranslator translator(&input.db->catalog(), {});
  kv::KvCluster cluster(cluster_options, &registry);
  CheckOk(translator.LoadSnapshot(&cluster, *input.snapshot), "LoadSnapshot");

  tm_options.top_threads = threads;
  tm_options.bottom_threads = threads;
  std::unique_ptr<trace::Tracer> tracer = MakeReplayTracer(trace);
  std::vector<rel::LogTransaction> log = input.db->log().ReadSince(0);
  if (tracer != nullptr) {
    for (rel::LogTransaction& txn : log) txn.trace = tracer->Mint(txn.lsn);
  }
  ReplayResult result;
  Stopwatch sw;
  {
    core::TransactionManager tm(&cluster, &translator, tm_options, &registry,
                                tracer.get());
    for (rel::LogTransaction& txn : log) {
      tm.SubmitUpdate(std::move(txn));
    }
    CheckOk(tm.WaitIdle(), "WaitIdle");
    result.seconds = sw.ElapsedSeconds();
    result.stats = tm.stats();
  }
  result.tx_per_sec = static_cast<double>(log.size()) / result.seconds;
  result.conflicts = result.stats.conflicts;
  result.restarts = result.stats.restarts;
  if (tracer != nullptr) {
    std::vector<trace::SpanEvent> events = tracer->Dump();
    result.trace_spans = static_cast<int64_t>(events.size());
    AccumulateTraceEvents(std::move(events));
  }
  result.metrics_json = obs::ToJson(registry.Snapshot());
  return result;
}

void WriteMetricsJson(const std::string& bench_name,
                      const ReplayResult& result) {
  if (result.metrics_json.empty()) return;
  const std::string path = bench_name + ".metrics.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fputs(result.metrics_json.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace txrep::bench
