// Paper Fig. 10: replication throughput (transactions/second) for serial
// execution vs. the concurrent TM with 10 and 20 threads, as a function of
// the number of transactions in the replication message.
//
// Expected shape: concurrent beats serial at every size by roughly the
// paper's ~2x factor or more; 20 threads >= 10 threads.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace txrep::bench {
namespace {

constexpr int kItems = 2000;
constexpr uint64_t kSeed = 101;

// args: {num_transactions, threads (0 = serial baseline)}.
void BM_Fig10_Throughput(benchmark::State& state) {
  const int txns = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  BenchInput input = BuildSyntheticLog(kItems, kItems, txns, kSeed);
  ReplayResult last;
  for (auto _ : state) {
    ReplayResult result =
        threads == 0 ? RunSerialReplay(input, DefaultCluster())
                     : RunConcurrentReplay(input, DefaultCluster(), threads);
    state.SetIterationTime(result.seconds);
    state.counters["tx_per_s"] = result.tx_per_sec;
    state.counters["conflicts"] = static_cast<double>(result.conflicts);
    last = std::move(result);
  }
  WriteMetricsJson("fig10_txns" + std::to_string(txns) + "_threads" +
                       std::to_string(threads),
                   last);
  state.SetItemsProcessed(txns);
}

BENCHMARK(BM_Fig10_Throughput)
    ->ArgsProduct({{500, 1000, 2000, 3000}, {0, 10, 20}})
    ->ArgNames({"txns", "threads"})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace txrep::bench
