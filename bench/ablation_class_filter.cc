// Ablation D: the transaction-classes conflict pre-filter (the optimization
// the paper's §7 proposes as future work). Workload: TPC-W ordering mix —
// transactions scatter across ten tables, so many pairwise conflict checks
// are provably unnecessary.
//
// Expected: identical conflict counts (the filter is sound), a large share
// of pairwise checks skipped, and equal-or-better throughput with the
// filter on.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace txrep::bench {
namespace {

constexpr int kInteractions = 1500;
constexpr uint64_t kSeed = 113;

// arg: enable_class_filter (0 or 1).
void BM_AblationClassFilter(benchmark::State& state) {
  const bool filter = state.range(0) != 0;
  BenchInput input =
      BuildTpcwLog(workload::TpcwMix::kOrdering, kInteractions, kSeed);
  for (auto _ : state) {
    core::TmOptions tm_options;
    tm_options.enable_class_filter = filter;
    ReplayResult result =
        RunConcurrentReplay(input, DefaultCluster(), 20, tm_options);
    state.SetIterationTime(result.seconds);
    state.counters["tx_per_s"] = result.tx_per_sec;
    state.counters["conflicts"] = static_cast<double>(result.conflicts);
    state.counters["checks"] =
        static_cast<double>(result.stats.conflict_checks);
    state.counters["skips"] =
        static_cast<double>(result.stats.class_filter_skips);
  }
  state.SetLabel(filter ? "filter_on" : "filter_off");
  state.SetItemsProcessed(input.writes);
}

BENCHMARK(BM_AblationClassFilter)
    ->Arg(1)
    ->Arg(0)
    ->ArgNames({"class_filter"})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace txrep::bench
