// Ablation C: publisher batch size vs. end-to-end replication lag, measured
// through the full pipeline (database -> broker -> subscriber -> TM ->
// replica). Larger batches amortize messages but delay the first
// transaction of each batch.
//
// Expected: mean lag grows with the batch size under a steady commit stream;
// throughput is mostly unaffected (the TM is the bottleneck, not the wire).

#include <benchmark/benchmark.h>

#include "common/clock.h"
#include "txrep/system.h"
#include "workload/synthetic.h"

namespace txrep::bench {
namespace {

constexpr int kUpdates = 800;
constexpr uint64_t kSeed = 112;

// arg: publisher batch size.
void BM_AblationBatchLag(benchmark::State& state) {
  const auto batch = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    TxRepOptions options;
    options.measure_lag = true;
    options.cluster.node.service_time_micros = 40;
    options.cluster.node.service_slots = 4;
    options.publisher.batch_size = batch;
    options.publisher.poll_interval_micros = 300;
    TxRepSystem sys(options);
    workload::SyntheticWorkload workload(
        {.num_items = 2000, .hot_range = 2000, .seed = kSeed});
    if (!workload.CreateSchema(sys.database()).ok() ||
        !workload.Populate(sys.database()).ok() || !sys.Start().ok()) {
      state.SkipWithError("setup failed");
      break;
    }
    Stopwatch sw;
    if (!workload.Run(sys.database(), kUpdates).ok() ||
        !sys.SyncToLatest().ok()) {
      state.SkipWithError("run failed");
      break;
    }
    const double secs = sw.ElapsedSeconds();
    while (sys.lag_histogram().count() < kUpdates) SleepForMicros(2000);
    state.SetIterationTime(secs);
    state.counters["mean_lag_ms"] = sys.lag_histogram().Mean() / 1e3;
    state.counters["p95_lag_ms"] = sys.lag_histogram().Percentile(0.95) / 1e3;
    state.counters["tx_per_s"] = kUpdates / secs;
  }
  state.SetItemsProcessed(kUpdates);
}

BENCHMARK(BM_AblationBatchLag)
    ->Arg(1)
    ->Arg(10)
    ->Arg(100)
    ->ArgNames({"batch"})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace txrep::bench
