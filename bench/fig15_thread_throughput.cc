// Paper Fig. 15: effect of the thread-pool size (2, 5, 10, 15 threads per
// pool) on throughput, with the serial baseline for reference.
//
// Expected shape: throughput rises with threads but saturates around 10–15 —
// the serial conflict evaluation in the controller (and the cluster's
// aggregate service slots) caps the gain, exactly the paper's observation.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace txrep::bench {
namespace {

constexpr int kItems = 2000;
constexpr uint64_t kSeed = 107;

// args: {num_transactions, threads (0 = serial)}.
void BM_Fig15_ThreadThroughput(benchmark::State& state) {
  const int txns = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  BenchInput input = BuildSyntheticLog(kItems, kItems, txns, kSeed);
  ReplayResult last;
  for (auto _ : state) {
    ReplayResult result =
        threads == 0 ? RunSerialReplay(input, DefaultCluster())
                     : RunConcurrentReplay(input, DefaultCluster(), threads);
    state.SetIterationTime(result.seconds);
    state.counters["tx_per_s"] = result.tx_per_sec;
    last = std::move(result);
  }
  WriteMetricsJson("fig15_txns" + std::to_string(txns) + "_threads" +
                       std::to_string(threads),
                   last);
  state.SetItemsProcessed(txns);
}

BENCHMARK(BM_Fig15_ThreadThroughput)
    ->ArgsProduct({{1000, 2000}, {0, 2, 5, 10, 15}})
    ->ArgNames({"txns", "threads"})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace txrep::bench
