// Recovery ablation (DESIGN.md §9): replica MTTR as a function of the
// checkpoint interval. A restarted replica either cold-replays the complete
// log (interval = 0, the baseline) or installs the newest durable checkpoint
// and serially replays only the log tail past its snapshot epoch.
//
// Setup (untimed) plays the normal-operation history: a serial replica
// applies the log in `interval`-sized chunks, checkpointing after each chunk
// boundary short of the log end — so the crash always lands one interval
// after the last checkpoint, the steady-state worst case. The timed region
// is the restart alone: LoadLatestCheckpoint (verify manifest + file
// checksums) + InstallCheckpoint + tail replay.
//
// Expected: MTTR grows roughly linearly with the interval (tail length);
// even the coarsest checkpoint beats cold replay by the ratio of tail to
// full log, at the storage cost of one full-state snapshot per interval.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "core/serial_applier.h"
#include "recov/checkpoint.h"
#include "recov/io.h"

namespace txrep::bench {
namespace {

constexpr int kItems = 2000;
constexpr int kHotRange = 500;
constexpr int kTxns = 4000;
constexpr uint64_t kSeed = 313;

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "ablation_recovery: %s failed: %s\n", what,
                 status.ToString().c_str());
    std::abort();
  }
}

// arg: checkpoint interval in transactions; 0 = cold-replay baseline.
void BM_AblationRecovery(benchmark::State& state) {
  const int interval = static_cast<int>(state.range(0));
  BenchInput input = BuildSyntheticLog(kItems, kHotRange, kTxns, kSeed);
  const std::vector<rel::LogTransaction> log = input.db->log().ReadSince(0);

  const std::string dir = "ablation_recovery.ckpt";
  Check(recov::RemoveDirRecursive(dir), "RemoveDirRecursive");

  // Normal operation: serial replica + periodic checkpoints (untimed).
  int checkpoints = 0;
  uint64_t snap_bytes = 0;
  if (interval > 0) {
    obs::MetricsRegistry registry;
    qt::QueryTranslator translator(&input.db->catalog(), {});
    kv::KvCluster cluster(DefaultCluster(), &registry);
    Check(cluster.init_status(), "init_status");
    Check(translator.LoadSnapshot(&cluster, *input.snapshot), "LoadSnapshot");
    core::SerialApplier applier(&cluster, &translator, &registry);
    recov::CheckpointWriter writer(dir, &registry);
    for (size_t at = 0; at < log.size(); at += static_cast<size_t>(interval)) {
      const size_t end =
          std::min(log.size(), at + static_cast<size_t>(interval));
      Check(applier.ApplyBatch(std::vector<rel::LogTransaction>(
                log.begin() + static_cast<ptrdiff_t>(at),
                log.begin() + static_cast<ptrdiff_t>(end))),
            "ApplyBatch");
      if (end == log.size()) break;  // Crash point: one interval past here.
      Result<recov::CheckpointStats> stats =
          writer.Write(applier.last_applied_lsn(), cluster);
      Check(stats.status(), "Checkpoint");
      snap_bytes = stats->total_bytes;
      ++checkpoints;
    }
  }

  for (auto _ : state) {
    // The restart: everything a fresh process does to serve reads again.
    obs::MetricsRegistry registry;
    qt::QueryTranslator translator(&input.db->catalog(), {});
    kv::KvCluster cluster(DefaultCluster(), &registry);
    Check(cluster.init_status(), "init_status");
    core::SerialApplier applier(&cluster, &translator, &registry);
    size_t replayed = 0;
    Stopwatch sw;
    if (interval > 0) {
      Result<recov::LoadedCheckpoint> loaded =
          recov::LoadLatestCheckpoint(dir, &registry);
      Check(loaded.status(), "LoadLatestCheckpoint");
      Check(recov::InstallCheckpoint(*loaded, cluster), "InstallCheckpoint");
      std::vector<rel::LogTransaction> tail;
      for (const rel::LogTransaction& txn : log) {
        if (txn.lsn > loaded->manifest.snapshot_epoch) tail.push_back(txn);
      }
      replayed = tail.size();
      Check(applier.ApplyBatch(tail), "tail ApplyBatch");
    } else {
      Check(translator.LoadSnapshot(&cluster, *input.snapshot),
            "LoadSnapshot");
      Check(applier.ApplyBatch(log), "cold ApplyBatch");
      replayed = log.size();
    }
    const double seconds = sw.ElapsedSeconds();
    state.SetIterationTime(seconds);
    state.counters["mttr_ms"] = seconds * 1e3;
    state.counters["replayed_txns"] = static_cast<double>(replayed);
    state.counters["checkpoints"] = checkpoints;
    state.counters["snap_mb"] = static_cast<double>(snap_bytes) / 1e6;
  }
  state.SetItemsProcessed(kTxns);
  Check(recov::RemoveDirRecursive(dir), "cleanup");
}

BENCHMARK(BM_AblationRecovery)
    ->Arg(0)  // Cold replay: no checkpoint, full log.
    ->Arg(250)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->ArgNames({"ckpt_interval"})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace txrep::bench
