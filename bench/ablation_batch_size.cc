// Ablation: apply-path batch size vs. replay throughput and replica lag.
//
// Replays a backlog of committed write sets through the BatchDispatcher into
// a simulated cluster (per-op service time 40us, 4 service slots, 4 dispatch
// threads). Each MultiWrite round trip costs one full service time plus a
// marginal per extra entry, so batching amortizes the dominant cost of
// apply. Replica lag is measured against a backlog model: every transaction
// is committed at t=0 and its lag is the wall-clock instant its write set
// finished applying — exactly the drain profile of a replica that fell
// behind. The adaptive setting (arg 0) starts at 1 and resizes from the
// observed lag.
//
// Expected: batch 16 is >= 2x the batch-1 replay throughput (acceptance
// criterion), batch 64 slightly better still, adaptive close to the best
// fixed size without tuning.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "core/batch_dispatcher.h"
#include "kv/kv_cluster.h"

namespace txrep::bench {
namespace {

constexpr int kTxns = 300;
constexpr int kWritesPerTxn = 16;
constexpr uint64_t kSeed = 113;

/// Pre-built committed write sets: the replay input, independent of the
/// batch size under test.
std::vector<kv::KvWriteBatch> BuildWriteSets() {
  Random rng(kSeed);
  std::vector<kv::KvWriteBatch> txns(kTxns);
  for (kv::KvWriteBatch& writes : txns) {
    for (int i = 0; i < kWritesPerTxn; ++i) {
      const std::string key = "item" + std::to_string(rng.Uniform(4000));
      if (rng.Bernoulli(0.1)) {
        writes.push_back(kv::KvWrite::Delete(key));
      } else {
        writes.push_back(kv::KvWrite::Put(key, rng.NextString(24)));
      }
    }
  }
  return txns;
}

// arg: dispatcher batch size; 0 selects the adaptive controller.
void BM_AblationApplyBatchSize(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const std::vector<kv::KvWriteBatch> txns = BuildWriteSets();
  for (auto _ : state) {
    kv::KvClusterOptions cluster_options;
    cluster_options.num_nodes = 4;
    cluster_options.dispatch_threads = 4;
    cluster_options.node.service_time_micros = 40;
    cluster_options.node.service_slots = 4;
    kv::KvCluster cluster(cluster_options);

    core::BatchDispatchOptions dispatch;
    if (batch == 0) {
      dispatch.adaptive = true;
      dispatch.batch_size = 1;  // Cold start: must earn its batch size.
    } else {
      dispatch.batch_size = batch;
    }
    core::BatchDispatcher dispatcher(dispatch);

    // Drain the backlog. All txns are committed at t0; a txn's lag is the
    // instant its write set finished applying.
    int64_t lag_sum = 0;
    int64_t lag_max = 0;
    bool failed = false;
    Stopwatch sw;
    const int64_t t0 = NowMicros();
    for (const kv::KvWriteBatch& writes : txns) {
      if (!dispatcher.Dispatch(&cluster, writes).ok()) {
        failed = true;
        break;
      }
      const int64_t lag = NowMicros() - t0;
      dispatcher.ObserveLag(lag);
      lag_sum += lag;
      lag_max = lag > lag_max ? lag : lag_max;
    }
    if (failed) {
      state.SkipWithError("dispatch failed");
      break;
    }
    const double secs = sw.ElapsedSeconds();
    state.SetIterationTime(secs);
    state.counters["tx_per_s"] = kTxns / secs;
    state.counters["ops_per_s"] = kTxns * kWritesPerTxn / secs;
    state.counters["mean_lag_ms"] = (lag_sum / double{kTxns}) / 1e3;
    state.counters["max_lag_ms"] = lag_max / 1e3;
    state.counters["final_batch"] =
        static_cast<double>(dispatcher.current_batch_size());
  }
  state.SetItemsProcessed(kTxns);
}

BENCHMARK(BM_AblationApplyBatchSize)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(0)  // Adaptive.
    ->ArgNames({"batch"})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace txrep::bench
