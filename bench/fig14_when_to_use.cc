// Paper Fig. 14: "when to use concurrency" — throughput improvement of
// concurrent over serial as a function of the *measured* conflict count,
// locating the crossover below which concurrency stops paying off.
//
// Expected shape: improvement decreasing in the conflict count, crossing 0%
// at a high conflict level (paper: "in case the conflict ratio is too high
// it is better to use the serial execution").

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace txrep::bench {
namespace {

constexpr int kItems = 2000;
constexpr int kTxns = 1200;
constexpr uint64_t kSeed = 106;

// arg: hot_range — a finer sweep than fig13 around the crossover.
void BM_Fig14_WhenToUse(benchmark::State& state) {
  const int hot_range = static_cast<int>(state.range(0));
  BenchInput input = BuildSyntheticLog(kItems, hot_range, kTxns, kSeed);
  for (auto _ : state) {
    ReplayResult serial = RunSerialReplay(input, DefaultCluster());
    ReplayResult concurrent =
        RunConcurrentReplay(input, DefaultCluster(), 20);
    state.SetIterationTime(serial.seconds + concurrent.seconds);
    state.counters["conflicts"] = static_cast<double>(concurrent.conflicts);
    state.counters["improvement_pct"] =
        (concurrent.tx_per_sec - serial.tx_per_sec) / serial.tx_per_sec *
        100.0;
    state.counters["use_concurrency"] =
        concurrent.tx_per_sec > serial.tx_per_sec ? 1.0 : 0.0;
  }
  state.SetItemsProcessed(kTxns);
}

BENCHMARK(BM_Fig14_WhenToUse)
    ->Arg(1000)
    ->Arg(200)
    ->Arg(50)
    ->Arg(10)
    ->Arg(4)
    ->Arg(2)
    ->Arg(1)
    ->ArgNames({"hot_range"})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace txrep::bench
