// Ablation H: frame batch size vs. replay throughput and replica lag across
// the wire boundary. The same publisher -> broker -> subscriber replay runs
// twice per batch size: in-process (broker queue hand-off) and over a
// socketpair (NetEndpoint frames + NetSubscription), so the delta isolates
// what the wire itself costs — encode/checksum/decode per frame plus the
// credit round-trips.
//
// Expected: tiny batches pay per-frame overhead and credit chatter (the wire
// arm trails in-process most at batch=1); large batches close the throughput
// gap but push p99 lag up on both arms — the first transaction of a batch
// waits for the whole batch to ship.

#include <benchmark/benchmark.h>

#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "codec/schema_codec.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "core/serial_applier.h"
#include "kv/inmemory_node.h"
#include "mw/broker.h"
#include "mw/publisher.h"
#include "mw/subscriber.h"
#include "net/endpoint.h"
#include "net/socket.h"
#include "net/subscription.h"
#include "qt/query_translator.h"
#include "rel/database.h"
#include "workload/synthetic.h"

namespace txrep::bench {
namespace {

constexpr int kTxns = 600;
constexpr uint64_t kSeed = 131;
constexpr char kTopic[] = "txrep.log";

/// Publish timestamps, keyed by the shipped-LSN watermark after each pump.
/// The apply sink looks up the pump that shipped a given LSN; publish
/// happens-before delivery, so the mark always exists by the time the
/// transaction reaches the sink.
class PublishClock {
 public:
  void Mark(uint64_t shipped_lsn, int64_t micros) {
    std::lock_guard<std::mutex> lock(mu_);
    marks_.emplace_back(shipped_lsn, micros);
  }

  // Single consumer, LSNs arrive in order: the cursor only moves forward.
  int64_t PublishTimeFor(uint64_t lsn) {
    std::lock_guard<std::mutex> lock(mu_);
    while (idx_ < marks_.size() && marks_[idx_].first < lsn) ++idx_;
    return idx_ < marks_.size() ? marks_[idx_].second : 0;
  }

 private:
  std::mutex mu_;
  std::vector<std::pair<uint64_t, int64_t>> marks_;
  size_t idx_ = 0;
};

void RunReplay(benchmark::State& state, size_t batch, bool wire) {
  for (auto _ : state) {
    rel::Database db;
    workload::SyntheticWorkload workload(
        {.num_items = 2000, .hot_range = 2000, .seed = kSeed});
    if (!workload.CreateSchema(db).ok() || !workload.Populate(db).ok() ||
        !workload.Run(db, kTxns).ok()) {
      state.SkipWithError("workload setup failed");
      break;
    }
    const uint64_t last_lsn = db.log().LastLsn();

    qt::QueryTranslator translator(&db.catalog());
    kv::InMemoryKvNode store;
    core::SerialApplier applier(&store, &translator);
    PublishClock clock;
    Histogram lag;
    auto sink = [&](rel::LogTransaction txn) {
      const uint64_t lsn = txn.lsn;
      Status status = applier.Apply(std::move(txn));
      const int64_t published = clock.PublishTimeFor(lsn);
      if (published != 0) lag.Record(NowMicros() - published);
      return status;
    };

    mw::Broker broker;
    net::NetEndpoint endpoint(&broker, {.topic = kTopic});
    endpoint.SetCatalog(codec::EncodeCatalog(db.catalog()));
    struct Teardown {
      net::NetEndpoint* endpoint;
      mw::Broker* broker;
      ~Teardown() {
        endpoint->Stop();
        broker->Shutdown();
      }
    } teardown{&endpoint, &broker};

    std::unique_ptr<net::NetSubscription> subscription;
    std::unique_ptr<mw::SubscriberAgent> agent;
    if (wire) {
      net::NetSubscriptionOptions sub_options;
      sub_options.topic = kTopic;
      subscription = std::make_unique<net::NetSubscription>(
          [&endpoint]() -> Result<net::Socket> {
            TXREP_ASSIGN_OR_RETURN(auto pair, net::Socket::CreatePair());
            TXREP_RETURN_IF_ERROR(endpoint.ServeSocket(std::move(pair.first)));
            return std::move(pair.second);
          },
          sub_options);
      agent = std::make_unique<mw::SubscriberAgent>(subscription.get(), sink);
    } else {
      agent = std::make_unique<mw::SubscriberAgent>(broker.Subscribe(kTopic),
                                                    sink);
    }

    mw::PublisherAgent publisher(&db.log(), &broker,
                                 {.topic = kTopic, .batch_size = batch,
                                  .poll_interval_micros = 100,
                                  .start_after_lsn = 0});
    Stopwatch sw;
    while (publisher.shipped_lsn() < last_lsn) {
      Result<size_t> shipped = publisher.PumpOnce();
      if (!shipped.ok()) {
        state.SkipWithError("publish failed");
        return;
      }
      if (*shipped > 0) clock.Mark(publisher.shipped_lsn(), NowMicros());
    }
    if (!agent->WaitForLsn(last_lsn)) {
      state.SkipWithError("replica never caught up");
      return;
    }
    const double secs = sw.ElapsedSeconds();

    if (wire) subscription->Close();
    agent->Stop();

    state.SetIterationTime(secs);
    state.counters["tx_per_s"] = static_cast<double>(last_lsn) / secs;
    state.counters["p50_lag_ms"] = lag.Percentile(0.50) / 1e3;
    state.counters["p99_lag_ms"] = lag.Percentile(0.99) / 1e3;
  }
  state.SetItemsProcessed(kTxns);
}

void BM_WireBatchInProcess(benchmark::State& state) {
  RunReplay(state, static_cast<size_t>(state.range(0)), /*wire=*/false);
}

void BM_WireBatchSocketpair(benchmark::State& state) {
  RunReplay(state, static_cast<size_t>(state.range(0)), /*wire=*/true);
}

BENCHMARK(BM_WireBatchInProcess)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->ArgNames({"batch"})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_WireBatchSocketpair)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->ArgNames({"batch"})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace txrep::bench
