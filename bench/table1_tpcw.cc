// Paper Table 1: concurrent replication of the three TPC-W interaction
// mixes — Browsing (5% writes), Shopping (20%), Ordering (50%) — reporting
// the number of write transactions, throughput, execution time and conflict
// count. Read interactions run on the replica as interleaved read-only
// transactions, as in the paper's system.
//
// Expected shape: browsing fastest / fewest conflicts, ordering slowest /
// most conflicts (write volume drives both).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/clock.h"
#include "obs/exporters.h"
#include "qt/replica_reader.h"

namespace txrep::bench {
namespace {

constexpr int kInteractions = 2000;  // Paper used 4000 on an 18-node testbed.
constexpr uint64_t kSeed = 104;

// arg: mix index (0 = Browsing, 1 = Shopping, 2 = Ordering).
void BM_Table1_Tpcw(benchmark::State& state) {
  const auto mix = static_cast<workload::TpcwMix>(state.range(0));
  BenchInput input = BuildTpcwLog(mix, kInteractions, kSeed);
  const auto cluster_options = DefaultCluster();

  ReplayResult last;
  for (auto _ : state) {
    obs::MetricsRegistry registry;
    qt::QueryTranslator translator(&input.db->catalog(), {});
    qt::ReplicaReader reader(&input.db->catalog(), {}, &registry);
    kv::KvCluster cluster(cluster_options, &registry);
    Status s = translator.LoadSnapshot(&cluster, *input.snapshot);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());

    std::vector<rel::LogTransaction> log = input.db->log().ReadSince(0);
    core::TmOptions tm_options;  // Paper defaults: 20 + 20 threads.
    Stopwatch sw;
    core::TmStats stats;
    {
      core::TransactionManager tm(&cluster, &translator, tm_options,
                                  &registry);
      size_t next_read = 0;
      size_t reads_per_write =
          input.writes == 0 ? input.read_queries.size()
                            : input.read_queries.size() / input.writes + 1;
      for (rel::LogTransaction& txn : log) {
        tm.SubmitUpdate(std::move(txn));
        // Interleave the read mix between update transactions.
        for (size_t r = 0;
             r < reads_per_write && next_read < input.read_queries.size();
             ++r, ++next_read) {
          const rel::SelectStatement& query = input.read_queries[next_read];
          tm.SubmitReadOnly([&reader, &query](kv::KvStore* view) {
            return reader.Select(view, query).status();
          });
        }
      }
      Status idle = tm.WaitIdle();
      if (!idle.ok()) state.SkipWithError(idle.ToString().c_str());
      stats = tm.stats();
    }
    const double secs = sw.ElapsedSeconds();
    state.SetIterationTime(secs);
    state.counters["write_txns"] = input.writes;
    state.counters["tx_per_s"] = static_cast<double>(kInteractions) / secs;
    state.counters["exec_ms"] = secs * 1e3;
    state.counters["conflicts"] = static_cast<double>(stats.conflicts);
    last.metrics_json = obs::ToJson(registry.Snapshot());
  }
  WriteMetricsJson(std::string("table1_") + workload::TpcwMixName(mix), last);
  state.SetLabel(workload::TpcwMixName(mix));
  state.SetItemsProcessed(kInteractions);
}

BENCHMARK(BM_Table1_Tpcw)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->ArgNames({"mix"})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace txrep::bench
