// TPC-C-lite replication benches (DESIGN.md §15, EXPERIMENTS.md):
//
//  * BM_TpccThroughput — concurrent replay throughput vs warehouse count.
//    Fewer warehouses concentrate the per-district next_o_id counters, so
//    conflicts rise and throughput falls as warehouses shrink.
//  * BM_TpccSkew — fixed 4 warehouses, rising Zipf theta: skew re-creates
//    the single-warehouse hotspot even at larger scale.
//  * BM_TpccOverloadSlo — open-loop load at a fraction of measured capacity,
//    feeding the replica-lag SLO watchdog: below capacity the lag objective
//    holds; past it the backlog (and the violation fraction) grows without
//    bound. This is the sustained-overload scenario from the loadgen library
//    wired to a live TM.

#include <benchmark/benchmark.h>

#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "core/transaction_manager.h"
#include "obs/exporters.h"
#include "trace/slo.h"
#include "workload/loadgen.h"
#include "workload/tpcc.h"

namespace txrep::bench {
namespace {

constexpr int kTxns = 2000;
constexpr uint64_t kSeed = 110;
constexpr int kThreads = 20;  // Paper default: 20 top + 20 bottom.

workload::TpccOptions OptionsFor(int warehouses, double zipf_theta) {
  workload::TpccOptions options;
  options.seed = kSeed;
  options.scale.warehouses = warehouses;
  options.warehouse_zipf_theta = zipf_theta;
  return options;
}

// arg: warehouse count.
void BM_TpccThroughput(benchmark::State& state) {
  const int warehouses = static_cast<int>(state.range(0));
  BenchInput input = BuildTpccLog(OptionsFor(warehouses, 0.0), kTxns);
  const auto cluster_options = DefaultCluster();

  ReplayResult last;
  for (auto _ : state) {
    last = RunConcurrentReplay(input, cluster_options, kThreads);
    state.SetIterationTime(last.seconds);
    state.counters["tx_per_s"] = last.tx_per_sec;
    state.counters["conflicts"] = static_cast<double>(last.conflicts);
    state.counters["restarts"] = static_cast<double>(last.restarts);
  }
  WriteMetricsJson("tpcc_throughput_w" + std::to_string(warehouses), last);
  state.SetItemsProcessed(kTxns);
}

BENCHMARK(BM_TpccThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgNames({"warehouses"})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// arg: Zipf theta x100 over the warehouse pick (0 = uniform).
void BM_TpccSkew(benchmark::State& state) {
  const double theta = static_cast<double>(state.range(0)) / 100.0;
  BenchInput input = BuildTpccLog(OptionsFor(4, theta), kTxns);
  const auto cluster_options = DefaultCluster();

  for (auto _ : state) {
    const ReplayResult r = RunConcurrentReplay(input, cluster_options,
                                               kThreads);
    state.SetIterationTime(r.seconds);
    state.counters["tx_per_s"] = r.tx_per_sec;
    state.counters["conflicts"] = static_cast<double>(r.conflicts);
  }
  state.SetItemsProcessed(kTxns);
}

BENCHMARK(BM_TpccSkew)
    ->Arg(0)
    ->Arg(50)
    ->Arg(90)
    ->Arg(120)
    ->ArgNames({"theta_x100"})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// arg: offered load as percent of the measured closed-loop capacity.
void BM_TpccOverloadSlo(benchmark::State& state) {
  const double fraction = static_cast<double>(state.range(0)) / 100.0;
  const workload::TpccOptions tpcc_options = OptionsFor(2, 0.0);
  const auto cluster_options = DefaultCluster();

  // Capacity probe: closed-loop concurrent replay rate on the same shape.
  const BenchInput probe = BuildTpccLog(tpcc_options, kTxns);
  const double capacity =
      RunConcurrentReplay(probe, cluster_options, kThreads).tx_per_sec;

  for (auto _ : state) {
    workload::LoadGenOptions load;
    load.base_rate_per_sec = capacity * fraction;
    load.duration_micros = 1'000'000;
    load.seed = kSeed + static_cast<uint64_t>(state.range(0));
    load.drain_timeout_micros = 20'000'000;
    const workload::ArrivalSchedule schedule(load);
    const int needed = static_cast<int>(schedule.offsets().size()) + 1;

    BenchInput input = BuildTpccLog(tpcc_options, needed);
    std::vector<rel::LogTransaction> log = input.db->log().ReadSince(0);

    obs::MetricsRegistry registry;
    qt::QueryTranslator translator(&input.db->catalog(), {});
    kv::KvCluster cluster(cluster_options, &registry);
    const Status snap = translator.LoadSnapshot(&cluster, *input.snapshot);
    if (!snap.ok()) state.SkipWithError(snap.ToString().c_str());

    trace::SloOptions slo;
    slo.enabled = true;
    slo.start_thread = false;  // The runner polls; no background thread.
    slo.lag_objective_micros = 50'000;
    trace::SloWatchdog watchdog(slo);

    core::TmOptions tm_options;
    tm_options.top_threads = kThreads;
    tm_options.bottom_threads = kThreads;
    workload::LoadReport report;
    trace::SloStatus slo_status;
    {
      core::TransactionManager tm(&cluster, &translator, tm_options,
                                  &registry);
      workload::OpenLoopRunner runner(load, &registry, &watchdog);
      size_t next = 0;
      workload::OpenLoopRunner::Hooks hooks;
      hooks.submit = [&]() -> Result<uint64_t> {
        if (next >= log.size()) {
          return Status::ResourceExhausted("pre-generated log exhausted");
        }
        rel::LogTransaction txn = log[next++];
        const uint64_t lsn = txn.lsn;
        tm.SubmitUpdate(std::move(txn));
        return lsn;
      };
      hooks.applied_lsn = [&]() -> uint64_t { return tm.last_applied_lsn(); };
      report = runner.Run(hooks);
      const Status idle = tm.WaitIdle();
      if (!idle.ok()) state.SkipWithError(idle.ToString().c_str());
      slo_status = watchdog.Snapshot();
    }

    state.SetIterationTime(static_cast<double>(report.wall_micros) / 1e6);
    state.counters["offered_per_s"] = report.offered_rate_per_sec;
    state.counters["achieved_per_s"] = report.achieved_rate_per_sec;
    state.counters["lag_p99_ms"] = report.lag.p99 / 1e3;
    state.counters["shed"] = static_cast<double>(report.shed);
    state.counters["slo_violation_frac"] =
        slo_status.observations == 0
            ? 0.0
            : static_cast<double>(slo_status.violations) /
                  static_cast<double>(slo_status.observations);
    state.counters["drained"] = report.drained ? 1.0 : 0.0;
  }
  state.SetLabel("capacity=" + std::to_string(static_cast<int>(capacity)) +
                 "/s");
}

BENCHMARK(BM_TpccOverloadSlo)
    ->Arg(50)
    ->Arg(80)
    ->Arg(100)
    ->Arg(130)
    ->ArgNames({"pct_capacity"})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace txrep::bench
