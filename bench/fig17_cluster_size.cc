// Paper Fig. 17: impact of the key-value cluster size (5, 10, 15 nodes) on
// concurrent replication throughput.
//
// Expected shape: throughput grows with the node count — each node carries a
// smaller share of the ops, so its service slots stop being the bottleneck.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace txrep::bench {
namespace {

// Wide key space: conflicts must stay rare so that per-node capacity — not
// the conflict rate — is the binding resource the sweep varies.
constexpr int kItems = 8000;
constexpr uint64_t kSeed = 109;

// args: {num_transactions, nodes}.
void BM_Fig17_ClusterSize(benchmark::State& state) {
  const int txns = static_cast<int>(state.range(0));
  const int nodes = static_cast<int>(state.range(1));
  BenchInput input = BuildSyntheticLog(kItems, kItems, txns, kSeed);
  // Single-threaded nodes with a heftier per-op service time, so aggregate
  // cluster capacity — the quantity this sweep varies — is what binds
  // (paper: "larger number of nodes ... results in smaller portion of load
  // on each key-value node").
  kv::KvClusterOptions cluster_options = DefaultCluster(nodes);
  cluster_options.node.service_slots = 1;
  cluster_options.node.service_time_micros = 150;
  ReplayResult last;
  for (auto _ : state) {
    ReplayResult result = RunConcurrentReplay(input, cluster_options, 20);
    state.SetIterationTime(result.seconds);
    state.counters["tx_per_s"] = result.tx_per_sec;
    state.counters["nodes"] = nodes;
    last = std::move(result);
  }
  WriteMetricsJson("fig17_txns" + std::to_string(txns) + "_nodes" +
                       std::to_string(nodes),
                   last);
  state.SetItemsProcessed(txns);
}

BENCHMARK(BM_Fig17_ClusterSize)
    ->ArgsProduct({{1000, 2000, 3000}, {5, 10, 15}})
    ->ArgNames({"txns", "nodes"})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace txrep::bench
