// Ablation I: reader scaling of the optimistic version-latched B-link index
// (DESIGN.md §14). Workload: R reader threads run full-range scans against a
// prepopulated tree while two writer threads churn keys (insert + remove,
// forcing splits and latch traffic) and a BatchDispatcher sustains batched
// noise applies against the same simulated KV node — the replica steady
// state: tail replay landing while index readers serve queries.
//
// Expected: aggregate scans/sec grows with R because optimistic readers take
// no latches and their simulated KV round trips (25 µs per node read)
// overlap; the acceptance bar for the latch tentpole is >= 3x aggregate
// throughput at 8 readers vs 1. `p99_us` is per-scan latency; `retries` and
// `restarts` count how often version validation actually made readers redo
// work (zero would mean the bench exercised nothing).

#include <benchmark/benchmark.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "blink/blink_tree.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "core/batch_dispatcher.h"
#include "kv/inmemory_node.h"
#include "kv/kv_types.h"
#include "rel/value.h"

namespace txrep::bench {
namespace {

constexpr int64_t kServiceMicros = 25;  // Per-op KV round trip (paper §6.2).
constexpr int kMaxNodeKeys = 16;
constexpr int kSeedEntries = 300;    // ~20 leaves: a scan is ~22 round trips.
constexpr int kWriters = 2;
constexpr int64_t kRunMicros = 250'000;  // Measured window per iteration.

using rel::Value;

// arg: reader thread count.
void BM_AblationIndexLatch(benchmark::State& state) {
  const int readers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    kv::InMemoryKvNode store({.service_time_micros = kServiceMicros});
    blink::BlinkTree tree(&store, "ITEM", "COST",
                          {.max_node_keys = kMaxNodeKeys});
    if (!tree.Init().ok()) {
      state.SkipWithError("tree init failed");
      break;
    }
    for (int i = 0; i < kSeedEntries; ++i) {
      if (!tree.Insert(Value::Int(i * 10), "seed").ok()) {
        state.SkipWithError("seed insert failed");
        return;
      }
    }

    std::atomic<bool> stop{false};
    std::atomic<int64_t> scans{0};
    std::atomic<int> errors{0};
    Histogram scan_latency;

    // Writers churn odd keys inside the seeded range: every insert/remove
    // pair takes the leaf latch and periodically splits, so readers keep
    // hitting version bumps. The dispatcher lands batched noise writes on
    // the same node, occupying its service capacity like tail replay does.
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&, w] {
        core::BatchDispatcher dispatcher({.batch_size = 8});
        std::vector<kv::KvWrite> noise;
        for (int i = 0; i < 8; ++i) {
          noise.push_back(kv::KvWrite::Put(
              "!noise_" + std::to_string(w) + "_" + std::to_string(i),
              std::string(64, 'x')));
        }
        for (int64_t k = 0; !stop.load(std::memory_order_relaxed); ++k) {
          const int64_t key = (k % kSeedEntries) * 10 + 1 + w;
          if (!tree.Insert(Value::Int(key), "churn").ok() ||
              !tree.Remove(Value::Int(key), "churn").ok() ||
              !dispatcher.Dispatch(&store, noise).ok()) {
            ++errors;
            return;
          }
        }
      });
    }
    for (int r = 0; r < readers; ++r) {
      threads.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          const int64_t begin = NowMicros();
          Result<std::vector<blink::EntryKey>> got =
              tree.RangeScan(Value::Int(0), Value::Int(kSeedEntries * 10));
          if (!got.ok() || got->size() < kSeedEntries) {
            ++errors;
            return;
          }
          scan_latency.Record(NowMicros() - begin);
          scans.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }

    const int64_t start = NowMicros();
    SleepForMicros(kRunMicros);
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : threads) t.join();
    const double seconds = (NowMicros() - start) * 1e-6;

    if (errors.load() != 0) {
      state.SkipWithError("reader or writer thread failed");
      break;
    }
    const blink::BlinkTreeStats stats = tree.stats();
    state.SetIterationTime(seconds);
    state.counters["scans_per_s"] = static_cast<double>(scans.load()) / seconds;
    state.counters["p99_us"] = scan_latency.Percentile(0.99);
    state.counters["retries"] = static_cast<double>(stats.read_retries);
    state.counters["restarts"] = static_cast<double>(stats.read_restarts);
  }
  state.SetLabel(std::to_string(readers) + "_readers");
}

BENCHMARK(BM_AblationIndexLatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgNames({"readers"})
    ->UseManualTime()
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace txrep::bench
