// Paper Fig. 13: impact of conflicts on throughput — improvement percentage
// of concurrent over serial execution for a fixed transaction count, as the
// injected conflict level rises (narrower hot ranges = more conflicts).
//
// Expected shape: a steady large improvement at zero/low conflict, declining
// as conflicts grow, and eventually NEGATIVE (concurrent slower than serial)
// at extreme conflict levels — the paper's 6179-conflict case.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace txrep::bench {
namespace {

constexpr int kItems = 2000;
constexpr int kTxns = 1500;  // Paper used 4500.
constexpr uint64_t kSeed = 105;

// arg: hot_range (smaller -> more conflicts).
void BM_Fig13_ConflictImpact(benchmark::State& state) {
  const int hot_range = static_cast<int>(state.range(0));
  BenchInput input = BuildSyntheticLog(kItems, hot_range, kTxns, kSeed);
  for (auto _ : state) {
    ReplayResult serial = RunSerialReplay(input, DefaultCluster());
    ReplayResult concurrent =
        RunConcurrentReplay(input, DefaultCluster(), 20);
    state.SetIterationTime(serial.seconds + concurrent.seconds);
    const double improvement_pct =
        (concurrent.tx_per_sec - serial.tx_per_sec) / serial.tx_per_sec *
        100.0;
    state.counters["improvement_pct"] = improvement_pct;
    state.counters["conflicts"] = static_cast<double>(concurrent.conflicts);
    state.counters["serial_tx_s"] = serial.tx_per_sec;
    state.counters["concurrent_tx_s"] = concurrent.tx_per_sec;
  }
  state.SetItemsProcessed(kTxns);
}

BENCHMARK(BM_Fig13_ConflictImpact)
    ->Arg(2000)  // Conflict-minimal.
    ->Arg(500)
    ->Arg(100)
    ->Arg(20)
    ->Arg(5)
    ->Arg(2)
    ->Arg(1)     // Every transaction collides.
    ->ArgNames({"hot_range"})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace txrep::bench
