// Custom benchmark entry point: peels off the bench_util trace flags before
// google benchmark sees the argv (benchmark_main rejects unknown flags), runs
// the registered benchmarks, then writes the accumulated Perfetto trace.
//
//   ./build/bench/fig10_throughput --trace-out=fig10.trace.json
//   ./build/bench/table1_tpcw --trace-out=t1.json --trace-sample=10
//
// --trace-out=FILE   capture replay spans and write Chrome trace-event JSON
//                    (load in Perfetto / chrome://tracing) to FILE at exit
// --trace-sample=N   sampling period for the capture (default 100 = 1%)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <benchmark/benchmark.h>

#include "bench_util.h"

int main(int argc, char** argv) {
  std::string trace_out;
  uint64_t trace_sample = 100;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      trace_out = arg + 12;
    } else if (std::strncmp(arg, "--trace-sample=", 15) == 0) {
      const long long parsed = std::atoll(arg + 15);
      if (parsed <= 0) {
        std::fprintf(stderr, "invalid --trace-sample (want a period >= 1)\n");
        return 1;
      }
      trace_sample = static_cast<uint64_t>(parsed);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (!trace_out.empty()) {
    txrep::bench::SetTraceOut(trace_out, trace_sample);
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  txrep::bench::MaybeWriteTrace();
  return 0;
}
