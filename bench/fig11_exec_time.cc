// Paper Fig. 11: total execution time for serial vs. concurrent replay of a
// replication message, as a function of the number of transactions in it.
//
// Expected shape: concurrent is "at least twice as fast" (paper §6.3); the
// gap holds across message sizes.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace txrep::bench {
namespace {

constexpr int kItems = 2000;
constexpr uint64_t kSeed = 102;

// args: {num_transactions, threads (0 = serial baseline)}.
void BM_Fig11_ExecTime(benchmark::State& state) {
  const int txns = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  BenchInput input = BuildSyntheticLog(kItems, kItems, txns, kSeed);
  for (auto _ : state) {
    ReplayResult result =
        threads == 0 ? RunSerialReplay(input, DefaultCluster())
                     : RunConcurrentReplay(input, DefaultCluster(), threads);
    state.SetIterationTime(result.seconds);
    state.counters["exec_ms"] = result.seconds * 1e3;
  }
  state.SetItemsProcessed(txns);
}

BENCHMARK(BM_Fig11_ExecTime)
    ->ArgsProduct({{500, 1000, 2000, 3000}, {0, 10, 20}})
    ->ArgNames({"txns", "threads"})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace txrep::bench
