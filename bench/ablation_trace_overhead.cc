// Ablation H: cost of per-transaction distributed tracing. Workload: TPC-W
// ordering mix replayed through the concurrent TM with tracing off, at 1%
// sampling (the recommended production setting), and tracing every
// transaction.
//
// Expected: <= 5% throughput cost at 1% sampling (the acceptance bar for
// leaving the flight recorder always-on); the every-transaction column bounds
// the worst case. `spans` counts what the flight recorder captured.
//
//   ./build/bench/ablation_trace_overhead --trace-out=overhead.trace.json
// additionally writes the sampled spans as a Perfetto trace.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace txrep::bench {
namespace {

constexpr int kInteractions = 1500;
constexpr uint64_t kSeed = 211;

// arg: sampling period (0 = tracing off, 1 = every txn, 100 = 1%).
void BM_AblationTraceOverhead(benchmark::State& state) {
  const uint64_t sample_every = static_cast<uint64_t>(state.range(0));
  BenchInput input =
      BuildTpcwLog(workload::TpcwMix::kOrdering, kInteractions, kSeed);
  for (auto _ : state) {
    trace::TracerOptions trace;
    trace.sample_every = sample_every;
    ReplayResult result = RunConcurrentReplay(input, DefaultCluster(), 20,
                                              core::TmOptions{}, trace);
    state.SetIterationTime(result.seconds);
    state.counters["tx_per_s"] = result.tx_per_sec;
    state.counters["spans"] = static_cast<double>(result.trace_spans);
  }
  state.SetLabel(sample_every == 0
                     ? "trace_off"
                     : sample_every == 1 ? "trace_all" : "trace_1pct");
  state.SetItemsProcessed(input.writes);
}

BENCHMARK(BM_AblationTraceOverhead)
    ->Arg(0)
    ->Arg(100)
    ->Arg(1)
    ->ArgNames({"sample_every"})
    ->UseManualTime()
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace txrep::bench
