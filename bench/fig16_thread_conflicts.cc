// Paper Fig. 16: effect of the thread count on the number of conflicts —
// more threads means more concurrent overlap, hence more conflicts for the
// same transaction stream.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace txrep::bench {
namespace {

constexpr int kItems = 2000;
constexpr int kHotRange = 200;  // Conflict-prone stream.
constexpr uint64_t kSeed = 108;

// args: {num_transactions, threads}.
void BM_Fig16_ThreadConflicts(benchmark::State& state) {
  const int txns = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  BenchInput input = BuildSyntheticLog(kItems, kHotRange, txns, kSeed);
  for (auto _ : state) {
    ReplayResult result =
        RunConcurrentReplay(input, DefaultCluster(), threads);
    state.SetIterationTime(result.seconds);
    state.counters["conflicts"] = static_cast<double>(result.conflicts);
    state.counters["tx_per_s"] = result.tx_per_sec;
  }
  state.SetItemsProcessed(txns);
}

BENCHMARK(BM_Fig16_ThreadConflicts)
    ->ArgsProduct({{1000, 2000}, {2, 5, 10, 15}})
    ->ArgNames({"txns", "threads"})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace txrep::bench
