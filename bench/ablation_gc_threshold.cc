// Ablation B: Algorithm 2's CompletedTransactionList GC threshold. A tiny
// threshold trims constantly (GC work + short lists to conflict-check); a
// huge one never trims (long completed lists make every commit evaluation
// scan more entries).
//
// Expected: throughput roughly flat across sane thresholds with a measurable
// penalty at the extremes; gc_runs falls as the threshold grows.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace txrep::bench {
namespace {

constexpr int kItems = 2000;
constexpr int kTxns = 2500;
constexpr uint64_t kSeed = 111;

// arg: completed_gc_threshold.
void BM_AblationGcThreshold(benchmark::State& state) {
  const auto threshold = static_cast<size_t>(state.range(0));
  BenchInput input = BuildSyntheticLog(kItems, 500, kTxns, kSeed);
  for (auto _ : state) {
    core::TmOptions tm_options;
    tm_options.completed_gc_threshold = threshold;
    ReplayResult result =
        RunConcurrentReplay(input, DefaultCluster(), 20, tm_options);
    state.SetIterationTime(result.seconds);
    state.counters["tx_per_s"] = result.tx_per_sec;
    state.counters["gc_runs"] = static_cast<double>(result.stats.gc_runs);
    state.counters["gc_removed"] =
        static_cast<double>(result.stats.gc_removed);
  }
  state.SetItemsProcessed(kTxns);
}

BENCHMARK(BM_AblationGcThreshold)
    ->Arg(4)
    ->Arg(64)
    ->Arg(256)
    ->Arg(2048)
    ->Arg(1000000)  // Effectively never GC.
    ->ArgNames({"gc_threshold"})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace txrep::bench
