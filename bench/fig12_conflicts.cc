// Paper Fig. 12: number of conflicts during concurrent replay as a function
// of the number of transactions in the replication message, for 10 and 20
// threads.
//
// Expected shape: conflicts grow with the transaction count, and more
// threads produce more conflicts (more overlap).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace txrep::bench {
namespace {

constexpr int kItems = 2000;
// A narrower hot range than fig10/11 so conflicts are plentiful enough to
// show the trend clearly.
constexpr int kHotRange = 300;
constexpr uint64_t kSeed = 103;

// args: {num_transactions, threads}.
void BM_Fig12_Conflicts(benchmark::State& state) {
  const int txns = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  BenchInput input = BuildSyntheticLog(kItems, kHotRange, txns, kSeed);
  for (auto _ : state) {
    ReplayResult result =
        RunConcurrentReplay(input, DefaultCluster(), threads);
    state.SetIterationTime(result.seconds);
    state.counters["conflicts"] = static_cast<double>(result.conflicts);
    state.counters["restarts"] = static_cast<double>(result.restarts);
  }
  state.SetItemsProcessed(txns);
}

BENCHMARK(BM_Fig12_Conflicts)
    ->ArgsProduct({{500, 1000, 2000, 3000}, {10, 20}})
    ->ArgNames({"txns", "threads"})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace txrep::bench
