#ifndef TXREP_BENCH_BENCH_UTIL_H_
#define TXREP_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/transaction_manager.h"
#include "kv/kv_cluster.h"
#include "obs/metrics.h"
#include "qt/query_translator.h"
#include "rel/database.h"
#include "trace/tracer.h"
#include "workload/tpcc.h"
#include "workload/tpcw.h"

namespace txrep::bench {

/// Shared replica-cluster configuration across all paper benches
/// (§6.2 stand-in: 5 nodes, each a simulated server with a small per-op
/// service time and limited service slots).
kv::KvClusterOptions DefaultCluster(int num_nodes = 5);

/// A prepared replication benchmark input: `db` holds the update stream in
/// its log; `snapshot` is an identical database *before* the stream (built
/// from the same seed), used to seed each replica — exactly the system's
/// snapshot-then-ship bootstrap.
struct BenchInput {
  std::unique_ptr<rel::Database> db;
  std::unique_ptr<rel::Database> snapshot;
  std::vector<rel::SelectStatement> read_queries;  // TPC-W read mix.
  int writes = 0;
};

/// Synthetic conflict-controlled workload (paper §6.1): `txns` single-update
/// transactions over item ids in [1, hot_range].
BenchInput BuildSyntheticLog(int num_items, int hot_range, int txns,
                             uint64_t seed);

/// TPC-W-lite interactions of the given mix; write transactions land in the
/// log, read interactions are returned as replica queries.
BenchInput BuildTpcwLog(workload::TpcwMix mix, int interactions,
                        uint64_t seed);

/// TPC-C-lite write stream (NewOrder/Payment only): `txns` multi-statement
/// write transactions in the log, no read queries. Warehouse count, skew and
/// mix come from `options`.
BenchInput BuildTpccLog(const workload::TpccOptions& options, int txns);

/// Result of replaying one log.
struct ReplayResult {
  double seconds = 0;
  double tx_per_sec = 0;
  int64_t conflicts = 0;  // 0 for serial replay.
  int64_t restarts = 0;
  /// Spans captured by the replay's tracer (0 when tracing was off).
  int64_t trace_spans = 0;
  core::TmStats stats;
  /// Full metrics-registry JSON snapshot of the replay (stage latencies,
  /// per-node KV counters, queue depths, ...).
  std::string metrics_json;
};

/// Writes `result.metrics_json` to "<bench_name>.metrics.json" in the working
/// directory, next to the benchmark's own output. No-op when empty.
void WriteMetricsJson(const std::string& bench_name,
                      const ReplayResult& result);

/// Serial baseline replay of the full log into a fresh snapshot-seeded
/// cluster. `trace` with sample_every > 0 runs the replay under a live
/// tracer (contexts minted per LSN); with sample_every == 0 the replay
/// inherits the process-wide --trace-out sampling, if any.
ReplayResult RunSerialReplay(const BenchInput& input,
                             const kv::KvClusterOptions& cluster_options,
                             trace::TracerOptions trace = {});

/// Concurrent TM replay. `threads` sets both pools (paper default 20).
/// `trace` as in RunSerialReplay.
ReplayResult RunConcurrentReplay(const BenchInput& input,
                                 const kv::KvClusterOptions& cluster_options,
                                 int threads,
                                 core::TmOptions tm_options = {},
                                 trace::TracerOptions trace = {});

/// Process-wide trace capture, set by bench_main from --trace-out=FILE and
/// --trace-sample=N: every replay without an explicit trace option then runs
/// at the given sampling period and its spans accumulate for MaybeWriteTrace.
void SetTraceOut(std::string path, uint64_t sample_every);

/// Writes the accumulated spans of all replays as Chrome trace-event JSON to
/// the --trace-out path (load in Perfetto / chrome://tracing). No-op when
/// --trace-out was not given or nothing was captured. bench_main calls this
/// after the benchmark run; idempotent.
void MaybeWriteTrace();

}  // namespace txrep::bench

#endif  // TXREP_BENCH_BENCH_UTIL_H_
