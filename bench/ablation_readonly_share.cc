// Ablation E: cost of interleaving read-only transactions (the paper's third
// requirement) with the replication stream. Fixed update stream; a growing
// number of read-only point-read transactions interleaved between updates.
//
// Expected: read-only transactions ride the same pipeline (sequence numbers,
// conflict checks) but skip the apply phase, so update throughput degrades
// gracefully — far less than proportionally to the added transactions.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "codec/kv_keys.h"
#include "common/random.h"
#include "common/clock.h"

namespace txrep::bench {
namespace {

constexpr int kItems = 2000;
constexpr int kUpdates = 1000;
constexpr uint64_t kSeed = 115;

// arg: read-only transactions per update transaction.
void BM_AblationReadOnlyShare(benchmark::State& state) {
  const int reads_per_update = static_cast<int>(state.range(0));
  BenchInput input = BuildSyntheticLog(kItems, kItems, kUpdates, kSeed);
  for (auto _ : state) {
    qt::QueryTranslator translator(&input.db->catalog(), {});
    kv::KvCluster cluster(DefaultCluster());
    Status s = translator.LoadSnapshot(&cluster, *input.snapshot);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());

    std::vector<rel::LogTransaction> log = input.db->log().ReadSince(0);
    Stopwatch sw;
    core::TmStats stats;
    {
      core::TransactionManager tm(&cluster, &translator, {});
      Random rng(kSeed);
      for (rel::LogTransaction& txn : log) {
        tm.SubmitUpdate(std::move(txn));
        for (int r = 0; r < reads_per_update; ++r) {
          const kv::Key key = codec::RowKey(
              "QTY_ITEM",
              rel::Value::Int(1 + static_cast<int64_t>(rng.Uniform(kItems))));
          tm.SubmitReadOnly([key](kv::KvStore* view) {
            return view->Get(key).status();
          });
        }
      }
      Status idle = tm.WaitIdle();
      if (!idle.ok()) state.SkipWithError(idle.ToString().c_str());
      stats = tm.stats();
    }
    const double secs = sw.ElapsedSeconds();
    state.SetIterationTime(secs);
    state.counters["update_tx_s"] = kUpdates / secs;
    state.counters["total_tx_s"] =
        static_cast<double>(stats.completed) / secs;
    state.counters["conflicts"] = static_cast<double>(stats.conflicts);
  }
  state.SetItemsProcessed(kUpdates);
}

BENCHMARK(BM_AblationReadOnlyShare)
    ->Arg(0)
    ->Arg(1)
    ->Arg(3)
    ->Arg(9)
    ->ArgNames({"reads_per_update"})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace txrep::bench
