// Related-work comparison (paper §2): three replica-side appliers on the
// same logs —
//   serial      : single-threaded replay (the paper's baseline),
//   ticket 2PL  : Polyzois & García-Molina ticket-ordered locking
//                 (table-granular conflict classes, pessimistic),
//   TxRep TM    : the paper's optimistic concurrency control.
//
// Expected: on the single-table synthetic workload ticket 2PL degenerates to
// serial (one conflict class) while TxRep still overlaps reads/applies; on
// the multi-table TPC-W mix ticket 2PL gains cross-table concurrency but
// TxRep keeps the edge by also overlapping same-table non-conflicting
// transactions.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/clock.h"
#include "core/ticket_applier.h"

namespace txrep::bench {
namespace {

constexpr uint64_t kSeed = 114;

ReplayResult RunTicketReplay(const BenchInput& input,
                             const kv::KvClusterOptions& cluster_options,
                             int threads) {
  qt::QueryTranslator translator(&input.db->catalog(), {});
  kv::KvCluster cluster(cluster_options);
  Status s = translator.LoadSnapshot(&cluster, *input.snapshot);
  if (!s.ok()) std::abort();
  std::vector<rel::LogTransaction> log = input.db->log().ReadSince(0);
  ReplayResult result;
  Stopwatch sw;
  {
    core::TicketApplier applier(&cluster, &translator, {.threads = threads});
    for (rel::LogTransaction& txn : log) applier.Submit(std::move(txn));
    if (!applier.WaitIdle().ok()) std::abort();
  }
  result.seconds = sw.ElapsedSeconds();
  result.tx_per_sec = static_cast<double>(log.size()) / result.seconds;
  return result;
}

// args: {workload (0 = synthetic single-table, 1 = TPC-W ordering),
//        applier (0 = serial, 1 = ticket 2PL, 2 = TxRep TM)}.
void BM_BaselineComparison(benchmark::State& state) {
  const bool tpcw = state.range(0) != 0;
  const int applier = static_cast<int>(state.range(1));
  BenchInput input =
      tpcw ? BuildTpcwLog(workload::TpcwMix::kOrdering, 1500, kSeed)
           : BuildSyntheticLog(2000, 2000, 1200, kSeed);
  static const char* kNames[] = {"serial", "ticket_2pl", "txrep_tm"};
  ReplayResult last;
  for (auto _ : state) {
    ReplayResult result;
    switch (applier) {
      case 0:
        result = RunSerialReplay(input, DefaultCluster());
        break;
      case 1:
        result = RunTicketReplay(input, DefaultCluster(), 20);
        break;
      default:
        result = RunConcurrentReplay(input, DefaultCluster(), 20);
        break;
    }
    state.SetIterationTime(result.seconds);
    state.counters["tx_per_s"] = result.tx_per_sec;
    state.counters["conflicts"] = static_cast<double>(result.conflicts);
    last = std::move(result);
  }
  WriteMetricsJson(std::string("baseline_") + (tpcw ? "tpcw_" : "synthetic_") +
                       kNames[applier],
                   last);
  state.SetLabel(std::string(tpcw ? "tpcw/" : "synthetic/") +
                 kNames[applier]);
}

BENCHMARK(BM_BaselineComparison)
    ->ArgsProduct({{0, 1}, {0, 1, 2}})
    ->ArgNames({"tpcw", "applier"})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace txrep::bench
