// Ablation A (design choice from DESIGN.md): the transaction buffer's
// read-through cache. The paper stores every fetched value in the buffer
// "for future accesses"; disabling the cache forces repeat GETs of the same
// key to hit the store again.
//
// Expected: with the cache, fewer KV GETs and higher throughput on
// transactions that re-read keys (index-maintaining TPC-W transactions);
// identical final state either way.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace txrep::bench {
namespace {

constexpr int kInteractions = 1200;
constexpr uint64_t kSeed = 110;

// arg: read_cache (0 or 1).
void BM_AblationBufferCache(benchmark::State& state) {
  const bool cache = state.range(0) != 0;
  BenchInput input =
      BuildTpcwLog(workload::TpcwMix::kOrdering, kInteractions, kSeed);
  for (auto _ : state) {
    core::TmOptions tm_options;
    tm_options.buffer_read_cache = cache;
    ReplayResult result =
        RunConcurrentReplay(input, DefaultCluster(), 20, tm_options);
    state.SetIterationTime(result.seconds);
    state.counters["tx_per_s"] = result.tx_per_sec;
    state.counters["conflicts"] = static_cast<double>(result.conflicts);
  }
  state.SetLabel(cache ? "cache_on" : "cache_off");
  state.SetItemsProcessed(input.writes);
}

BENCHMARK(BM_AblationBufferCache)
    ->Arg(1)
    ->Arg(0)
    ->ArgNames({"read_cache"})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace txrep::bench
