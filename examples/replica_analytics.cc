// Replica analytics: read-only transactions interleaving with live
// replication (the paper's third requirement). An "analyst" repeatedly runs
// a consistency-sensitive multi-key report on the replica while transfer
// transactions stream in from the database. Because each report runs as ONE
// read-only transaction through the TM, it observes a state equivalent to a
// prefix of the execution-defined order — the invariant (total balance)
// never appears violated, even though the report reads many keys while
// updates race underneath.
//
// Run: ./build/examples/replica_analytics [num_transfers]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/random.h"
#include "sql/interpreter.h"
#include "txrep/system.h"

namespace {

constexpr int kAccounts = 8;
constexpr int64_t kInitialBalance = 1000;

void Check(const txrep::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int num_transfers = argc > 1 ? std::atoi(argv[1]) : 400;

  txrep::TxRepOptions options;
  options.cluster.node.service_time_micros = 40;  // Simulated network hop.
  options.tm.top_threads = 10;
  options.tm.bottom_threads = 10;
  txrep::TxRepSystem sys(options);

  Check(txrep::sql::ExecuteSql(
            sys.database(),
            "CREATE TABLE ACCT (A_ID INT PRIMARY KEY, BAL BIGINT)")
            .status(),
        "schema");
  for (int i = 1; i <= kAccounts; ++i) {
    char sql[96];
    std::snprintf(sql, sizeof(sql), "INSERT INTO ACCT VALUES (%d, %lld)", i,
                  static_cast<long long>(kInitialBalance));
    Check(txrep::sql::ExecuteSql(sys.database(), sql).status(), "populate");
  }
  Check(sys.Start(), "Start");

  txrep::Random rng(7);
  std::vector<int64_t> balances(kAccounts, kInitialBalance);
  int reports = 0, consistent_reports = 0;

  for (int i = 0; i < num_transfers; ++i) {
    // One transfer = one transaction updating two accounts.
    const int from = static_cast<int>(rng.Uniform(kAccounts));
    int to = static_cast<int>(rng.Uniform(kAccounts));
    if (to == from) to = (to + 1) % kAccounts;
    const int64_t amount = static_cast<int64_t>(rng.Uniform(100));
    balances[from] -= amount;
    balances[to] += amount;
    char s1[96], s2[96];
    std::snprintf(s1, sizeof(s1), "UPDATE ACCT SET BAL = %lld WHERE A_ID = %d",
                  static_cast<long long>(balances[from]), from + 1);
    std::snprintf(s2, sizeof(s2), "UPDATE ACCT SET BAL = %lld WHERE A_ID = %d",
                  static_cast<long long>(balances[to]), to + 1);
    Check(txrep::sql::ExecuteSqlTransaction(sys.database(), {s1, s2}).status(),
          "transfer");

    // Every 10th transfer: the analyst's report — one read-only transaction
    // summing every account balance on the replica.
    if (i % 10 != 9) continue;
    int64_t total = 0;
    Check(sys.RunReadOnlyTransaction(
              [&total](txrep::kv::KvStore* view,
                       const txrep::qt::ReplicaReader& reader) {
                total = 0;
                for (int a = 1; a <= kAccounts; ++a) {
                  auto row =
                      reader.GetByPk(view, "ACCT", txrep::rel::Value::Int(a));
                  if (!row.ok()) return row.status();
                  total += (*row)[1].AsInt();
                }
                return txrep::Status::OK();
              }),
          "report");
    ++reports;
    if (total == kAccounts * kInitialBalance) ++consistent_reports;
  }

  Check(sys.SyncToLatest(), "SyncToLatest");
  auto stats = sys.tm_stats();
  std::printf("=== replica analytics summary ===\n");
  std::printf("transfers executed    : %d\n", num_transfers);
  std::printf("reports run           : %d (every report reads %d keys)\n",
              reports, kAccounts);
  std::printf("consistent reports    : %d of %d%s\n", consistent_reports,
              reports,
              consistent_reports == reports ? "  <- invariant held" : "  !!");
  std::printf("TM conflicts/restarts : %lld / %lld\n",
              static_cast<long long>(stats.conflicts),
              static_cast<long long>(stats.restarts));
  std::printf("read-only txns        : %lld\n",
              static_cast<long long>(stats.read_only_submitted));
  return consistent_reports == reports ? 0 : 1;
}
