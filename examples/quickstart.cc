// Quickstart: the whole TxRep pipeline in ~60 lines.
//
//   relational DB  --log-->  publisher --broker--> subscriber
//                                --> Transaction Manager --> KV replica
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "obs/exporters.h"
#include "sql/interpreter.h"
#include "txrep/system.h"

namespace {

void Check(const txrep::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

void PrintRows(const char* label,
               const std::vector<txrep::rel::Row>& rows) {
  std::printf("%s (%zu rows)\n", label, rows.size());
  for (const txrep::rel::Row& row : rows) {
    std::printf("  %s\n", txrep::rel::RowToString(row).c_str());
  }
}

void WriteFile(const char* path, const std::string& content) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fputs(content.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main() {
  // 1. Stand up the hybrid deployment: a relational database plus a
  //    5-node key-value replica, connected by the replication middleware.
  txrep::TxRepOptions options;
  options.cluster.num_nodes = 5;
  txrep::TxRepSystem sys(options);

  // 2. Create schema + initial data on the *database* side (plain SQL).
  Check(txrep::sql::ExecuteSql(sys.database(), R"sql(
      CREATE TABLE ITEM (I_ID INT PRIMARY KEY, I_TITLE VARCHAR(40),
                         I_COST DOUBLE);
      CREATE INDEX ON ITEM (I_TITLE);        -- hash index on the replica
      CREATE RANGE INDEX ON ITEM (I_COST);   -- B-link tree on the replica
      INSERT INTO ITEM VALUES (1, 'Database Systems', 89.50);
      INSERT INTO ITEM VALUES (2, 'Distributed Algorithms', 75.00);
      INSERT INTO ITEM VALUES (3, 'Key-Value Stores', 42.00);
    )sql").status(),
        "schema + population");

  // 3. Start replication: snapshot copy, then continuous log shipping.
  Check(sys.Start(), "Start");

  // 4. Run read/write transactions against the database...
  Check(txrep::sql::ExecuteSql(sys.database(), R"sql(
      UPDATE ITEM SET I_COST = 79.99 WHERE I_ID = 1;
      INSERT INTO ITEM VALUES (4, 'Concurrency Control', 55.25);
      DELETE FROM ITEM WHERE I_ID = 2;
    )sql").status(),
        "write workload");

  // 5. ...drain the pipeline (in production the replica simply lags a bit).
  Check(sys.SyncToLatest(), "SyncToLatest");
  std::printf("replica caught up to LSN %llu; KV store holds %zu objects\n",
              static_cast<unsigned long long>(sys.replica_lsn()),
              sys.replica().Size());

  // 6. Serve the read-only workload from the replica.
  auto by_pk = sys.QueryReplica(txrep::rel::SelectStatement{
      "ITEM",
      {},
      {txrep::rel::Predicate{"I_ID", txrep::rel::PredicateOp::kEq,
                             txrep::rel::Value::Int(1)}}});
  Check(by_pk.status(), "point query");
  PrintRows("point query I_ID = 1", *by_pk);

  auto by_cost = sys.QueryReplica(txrep::rel::SelectStatement{
      "ITEM",
      {},
      {txrep::rel::Predicate{"I_COST", txrep::rel::PredicateOp::kBetween,
                             txrep::rel::Value::Real(40.0),
                             txrep::rel::Value::Real(60.0)}}});
  Check(by_cost.status(), "range query");
  PrintRows("range query 40 <= I_COST <= 60", *by_cost);

  auto stats = sys.tm_stats();
  std::printf(
      "TM stats: %lld update txns completed, %lld conflicts, %lld restarts\n",
      static_cast<long long>(stats.completed),
      static_cast<long long>(stats.conflicts),
      static_cast<long long>(stats.restarts));

  // 7. Observability: every pipeline stage (publish, broker_deliver,
  //    subscriber_recv, execute, commit_eval, apply, e2e) recorded latency
  //    histograms; queue depths and per-node KV op counters ride along.
  //    Same snapshot, three formats.
  const txrep::obs::MetricsSnapshot snapshot = sys.metrics().Snapshot();
  std::printf("\n--- metrics (text) ---\n%s",
              txrep::obs::ToText(snapshot).c_str());
  WriteFile("quickstart.metrics.json", txrep::obs::ToJson(snapshot));
  WriteFile("quickstart.metrics.prom", txrep::obs::ToPrometheus(snapshot));
  return 0;
}
