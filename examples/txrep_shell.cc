// Interactive shell over a TxRep deployment: type SQL, watch it replicate.
//
//   ./build/examples/txrep_shell
//
// Commands:
//   <sql>;            -- CREATE TABLE / CREATE [RANGE] INDEX / INSERT /
//                        UPDATE / DELETE run on the database;
//                        SELECT runs on the database
//   @replica <select>;-- run a SELECT on the key-value replica (transactional)
//   @sync             -- drain the replication pipeline
//   @stats            -- show TM / replica statistics
//   @metrics [json|prom] -- dump the metrics registry (text by default)
//   @quit             -- exit
//
// The replication pipeline starts lazily at the first write, snapshotting
// whatever schema/data exist at that point.

#include <cstdio>
#include <iostream>
#include <string>

#include "obs/exporters.h"
#include "sql/interpreter.h"
#include "sql/parser.h"
#include "txrep/system.h"

namespace {

void PrintRows(const std::vector<txrep::rel::Row>& rows) {
  for (const txrep::rel::Row& row : rows) {
    std::printf("  %s\n", txrep::rel::RowToString(row).c_str());
  }
  std::printf("  (%zu rows)\n", rows.size());
}

}  // namespace

int main() {
  txrep::TxRepOptions options;
  options.cluster.num_nodes = 3;
  txrep::TxRepSystem sys(options);
  bool started = false;

  std::printf(
      "TxRep shell. SQL statements end with ';'. Special commands: "
      "@replica <select>; @sync  @stats  @metrics [json|prom]  @audit  "
      "@quit\n");

  std::string line;
  std::string pending;
  while (true) {
    std::printf(pending.empty() ? "txrep> " : "   ...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;

    // Special commands (no ';' needed except @replica).
    if (pending.empty() && line == "@quit") break;
    if (pending.empty() && line == "@sync") {
      if (!started) {
        std::printf("replication not started yet (no writes so far)\n");
        continue;
      }
      txrep::Status s = sys.SyncToLatest();
      std::printf("%s (replica LSN %llu)\n", s.ToString().c_str(),
                  static_cast<unsigned long long>(sys.replica_lsn()));
      continue;
    }
    if (pending.empty() && line == "@audit") {
      if (!started) {
        std::printf("replication not started yet\n");
        continue;
      }
      auto report = sys.AuditReplica();
      if (!report.ok()) {
        std::printf("audit failed: %s\n", report.status().ToString().c_str());
        continue;
      }
      std::printf("%s\n", report->Summary().c_str());
      for (const std::string& v : report->violations) {
        std::printf("  %s\n", v.c_str());
      }
      continue;
    }
    if (pending.empty() && line == "@stats") {
      auto stats = sys.tm_stats();
      auto kv = started ? sys.replica().TotalStats() : txrep::kv::KvStoreStats{};
      std::printf(
          "TM: submitted=%lld completed=%lld conflicts=%lld restarts=%lld\n"
          "KV: objects=%zu gets=%lld puts=%lld deletes=%lld\n",
          static_cast<long long>(stats.submitted),
          static_cast<long long>(stats.completed),
          static_cast<long long>(stats.conflicts),
          static_cast<long long>(stats.restarts),
          started ? sys.replica().Size() : 0, static_cast<long long>(kv.gets),
          static_cast<long long>(kv.puts), static_cast<long long>(kv.deletes));
      std::printf("(%zu instruments registered; @metrics for the full dump)\n",
                  sys.metrics().InstrumentCount());
      continue;
    }
    if (pending.empty() && line.rfind("@metrics", 0) == 0) {
      const txrep::obs::MetricsSnapshot snapshot = sys.metrics().Snapshot();
      if (line.find("json") != std::string::npos) {
        std::printf("%s\n", txrep::obs::ToJson(snapshot).c_str());
      } else if (line.find("prom") != std::string::npos) {
        std::printf("%s", txrep::obs::ToPrometheus(snapshot).c_str());
      } else {
        std::printf("%s", txrep::obs::ToText(snapshot).c_str());
      }
      continue;
    }

    pending += line;
    pending.push_back('\n');
    if (line.find(';') == std::string::npos) continue;  // Keep accumulating.
    std::string statement;
    statement.swap(pending);

    // Replica query?
    const std::string kReplicaPrefix = "@replica";
    const size_t start_pos = statement.find_first_not_of(" \t\n");
    if (start_pos != std::string::npos &&
        statement.compare(start_pos, kReplicaPrefix.size(), kReplicaPrefix) ==
            0) {
      if (!started) {
        std::printf("replication not started yet; run a write first\n");
        continue;
      }
      const std::string sql = statement.substr(start_pos +
                                               kReplicaPrefix.size());
      auto parsed = txrep::sql::ParseCommand(sql);
      if (!parsed.ok()) {
        std::printf("error: %s\n", parsed.status().ToString().c_str());
        continue;
      }
      auto* select = std::get_if<txrep::rel::SelectStatement>(&*parsed);
      if (select == nullptr) {
        std::printf("error: @replica accepts SELECT only\n");
        continue;
      }
      auto rows = sys.QueryReplica(*select);
      if (!rows.ok()) {
        std::printf("error: %s\n", rows.status().ToString().c_str());
        continue;
      }
      PrintRows(*rows);
      continue;
    }

    // Database side. Start the pipeline lazily before the first DML write so
    // the snapshot covers all DDL/population typed before it.
    auto parsed = txrep::sql::ParseScript(statement);
    if (!parsed.ok()) {
      std::printf("error: %s\n", parsed.status().ToString().c_str());
      continue;
    }
    bool has_write = false;
    for (const auto& cmd : *parsed) {
      if (txrep::sql::IsDml(cmd) &&
          !std::holds_alternative<txrep::rel::SelectStatement>(cmd)) {
        has_write = true;
      }
    }
    if (has_write && !started) {
      txrep::Status s = sys.Start();
      if (!s.ok()) {
        std::printf("error starting replication: %s\n", s.ToString().c_str());
        continue;
      }
      started = true;
      std::printf("-- replication pipeline started\n");
    }
    auto result = txrep::sql::ExecuteSql(sys.database(), statement);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    for (const auto& rows : result->select_results) PrintRows(rows);
    if (result->last_lsn != 0) {
      std::printf("-- committed (LSN %llu)\n",
                  static_cast<unsigned long long>(result->last_lsn));
    }
  }
  std::printf("bye\n");
  return 0;
}
