// Interactive shell over a TxRep deployment: type SQL, watch it replicate.
//
//   ./build/examples/txrep_shell [--disk DIR]
//
// With --disk DIR the replica cluster runs on disk-backed nodes under
// DIR/nodes and checkpoints land in DIR/checkpoints; restarting the shell
// against the same DIR resumes from the newest checkpoint.
//
// Commands:
//   <sql>;            -- CREATE TABLE / CREATE [RANGE] INDEX / INSERT /
//                        UPDATE / DELETE run on the database;
//                        SELECT runs on the database
//   @replica <select>;-- run a SELECT on the key-value replica (transactional)
//   @sync             -- drain the replication pipeline
//   @checkpoint       -- take a durable checkpoint (requires --disk)
//   @compact          -- compact the disk-backed node logs (requires --disk)
//   @stats            -- show TM / replica statistics
//   @metrics [json|prom] -- dump the metrics registry (text by default)
//   @trace [json|crit]-- dump the flight recorder: text timeline by default,
//                        Chrome trace-event JSON (load in Perfetto), or the
//                        critical-path attribution report
//   @slo              -- show the replica-lag SLO watchdog status
//   @serve [port]     -- serve replication over TCP (port 0 = ephemeral);
//                        remote shells @connect here
//   @connect host:port-- become a remote replica of another shell's @serve;
//                        @replica queries then run on the wire-fed replica
//   @quit             -- exit
//
// The replication pipeline starts lazily at the first write, snapshotting
// whatever schema/data exist at that point.

#include <cstdio>
#include <iostream>
#include <string>

#include "obs/exporters.h"
#include "qt/replica_reader.h"
#include "sql/interpreter.h"
#include "sql/parser.h"
#include "trace/export.h"
#include "txrep/remote_replica.h"
#include "txrep/system.h"

namespace {

void PrintRows(const std::vector<txrep::rel::Row>& rows) {
  for (const txrep::rel::Row& row : rows) {
    std::printf("  %s\n", txrep::rel::RowToString(row).c_str());
  }
  std::printf("  (%zu rows)\n", rows.size());
}

}  // namespace

int main(int argc, char** argv) {
  txrep::TxRepOptions options;
  options.cluster.num_nodes = 3;
  // Interactive traffic is light: trace every transaction and keep the SLO
  // watchdog live so @trace / @slo always have something to show.
  options.trace.sample_every = 1;
  options.slo.enabled = true;
  bool on_disk = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--disk" && i + 1 < argc) {
      const std::string dir = argv[++i];
      options.cluster.backend = txrep::kv::KvBackend::kDisk;
      options.cluster.disk_dir = dir + "/nodes";
      options.recovery.checkpoint_dir = dir + "/checkpoints";
      on_disk = true;
    } else {
      std::fprintf(stderr, "usage: %s [--disk DIR]\n", argv[0]);
      return 1;
    }
  }
  txrep::TxRepSystem sys(options);
  bool started = false;
  // @connect mode: a wire-fed replica of another shell's @serve endpoint.
  std::unique_ptr<txrep::RemoteReplica> remote;
  std::unique_ptr<txrep::qt::ReplicaReader> remote_reader;

  std::printf(
      "TxRep shell. SQL statements end with ';'. Special commands: "
      "@replica <select>; @sync  @checkpoint  @compact  @stats  "
      "@metrics [json|prom]  @trace [json|crit]  @slo  @audit  "
      "@serve [port]  @connect host:port  @quit\n");
  if (on_disk) {
    std::printf("-- disk-backed replica under %s\n",
                options.cluster.disk_dir.c_str());
  }

  std::string line;
  std::string pending;
  while (true) {
    std::printf(pending.empty() ? "txrep> " : "   ...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;

    // Special commands (no ';' needed except @replica).
    if (pending.empty() && line == "@quit") break;
    if (pending.empty() && line == "@sync") {
      if (!started) {
        std::printf("replication not started yet (no writes so far)\n");
        continue;
      }
      txrep::Status s = sys.SyncToLatest();
      std::printf("%s (replica LSN %llu)\n", s.ToString().c_str(),
                  static_cast<unsigned long long>(sys.replica_lsn()));
      continue;
    }
    if (pending.empty() && line == "@checkpoint") {
      if (!started) {
        std::printf("replication not started yet (no writes so far)\n");
        continue;
      }
      auto stats = sys.Checkpoint();
      if (!stats.ok()) {
        std::printf("checkpoint failed: %s\n",
                    stats.status().ToString().c_str());
        continue;
      }
      std::printf(
          "-- checkpoint at epoch %llu: %llu records, %llu bytes, %lld us\n",
          static_cast<unsigned long long>(stats->epoch),
          static_cast<unsigned long long>(stats->total_records),
          static_cast<unsigned long long>(stats->total_bytes),
          static_cast<long long>(stats->duration_us));
      continue;
    }
    if (pending.empty() && line == "@compact") {
      if (!started) {
        std::printf("replication not started yet (no writes so far)\n");
        continue;
      }
      txrep::Status s = sys.replica().CompactAll();
      std::printf("%s\n", s.ok() ? "-- node logs compacted"
                                  : s.ToString().c_str());
      continue;
    }
    if (pending.empty() && line == "@audit") {
      if (!started) {
        std::printf("replication not started yet\n");
        continue;
      }
      auto report = sys.AuditReplica();
      if (!report.ok()) {
        std::printf("audit failed: %s\n", report.status().ToString().c_str());
        continue;
      }
      std::printf("%s\n", report->Summary().c_str());
      for (const std::string& v : report->violations) {
        std::printf("  %s\n", v.c_str());
      }
      continue;
    }
    if (pending.empty() && line == "@stats") {
      auto stats = sys.tm_stats();
      auto kv = started ? sys.replica().TotalStats() : txrep::kv::KvStoreStats{};
      std::printf(
          "TM: submitted=%lld completed=%lld conflicts=%lld restarts=%lld\n"
          "KV: objects=%zu gets=%lld puts=%lld deletes=%lld\n",
          static_cast<long long>(stats.submitted),
          static_cast<long long>(stats.completed),
          static_cast<long long>(stats.conflicts),
          static_cast<long long>(stats.restarts),
          started ? sys.replica().Size() : 0, static_cast<long long>(kv.gets),
          static_cast<long long>(kv.puts), static_cast<long long>(kv.deletes));
      std::printf("(%zu instruments registered; @metrics for the full dump)\n",
                  sys.metrics().InstrumentCount());
      continue;
    }
    if (pending.empty() && line.rfind("@trace", 0) == 0) {
      txrep::trace::Tracer* tracer = sys.tracer();
      if (tracer == nullptr) {
        std::printf("tracing is disabled (trace.sample_every = 0)\n");
        continue;
      }
      const std::vector<txrep::trace::SpanEvent> events = tracer->Dump();
      if (events.empty()) {
        std::printf("flight recorder is empty (no traced transactions yet)\n");
        continue;
      }
      if (line.find("json") != std::string::npos) {
        std::printf("%s\n", txrep::trace::ToChromeTraceJson(events).c_str());
      } else if (line.find("crit") != std::string::npos) {
        const auto summaries = txrep::trace::BuildTraceSummaries(events);
        std::printf("%s", txrep::trace::CriticalPathReport(summaries).c_str());
      } else {
        std::printf("%s", txrep::trace::ToTextTimeline(events).c_str());
      }
      continue;
    }
    if (pending.empty() && line == "@slo") {
      txrep::trace::SloWatchdog* slo = sys.slo();
      if (slo == nullptr) {
        std::printf(started
                        ? "SLO watchdog is disabled (slo.enabled = false)\n"
                        : "replication not started yet\n");
        continue;
      }
      std::printf("%s\n", slo->Report().c_str());
      continue;
    }
    if (pending.empty() && line.rfind("@serve", 0) == 0) {
      if (!started) {
        txrep::Status s = sys.Start();
        if (!s.ok()) {
          std::printf("error starting replication: %s\n",
                      s.ToString().c_str());
          continue;
        }
        started = true;
        std::printf("-- replication pipeline started\n");
      }
      int port = 0;
      (void)std::sscanf(line.c_str(), "@serve %d", &port);
      txrep::Status s = sys.ServeReplication(static_cast<uint16_t>(port));
      if (!s.ok()) {
        std::printf("serve failed: %s\n", s.ToString().c_str());
        continue;
      }
      std::printf("-- serving replication on 127.0.0.1:%u\n",
                  sys.net_endpoint()->port());
      continue;
    }
    if (pending.empty() && line.rfind("@connect", 0) == 0) {
      char host[256] = {0};
      int port = 0;
      if (std::sscanf(line.c_str(), "@connect %255[^:]:%d", host, &port) != 2) {
        std::printf("usage: @connect <host>:<port>\n");
        continue;
      }
      txrep::RemoteReplicaOptions ropts;
      ropts.host = host;
      ropts.port = static_cast<uint16_t>(port);
      ropts.subscription.max_connect_attempts = 5;
      remote = std::make_unique<txrep::RemoteReplica>(std::move(ropts));
      txrep::Status s = remote->Start();
      if (!s.ok()) {
        std::printf("connect failed: %s\n", s.ToString().c_str());
        remote.reset();
        continue;
      }
      remote_reader =
          std::make_unique<txrep::qt::ReplicaReader>(&remote->catalog());
      std::printf(
          "-- connected to %s:%d; @replica queries now run on the wire-fed "
          "replica (applied LSN %llu)\n",
          host, port,
          static_cast<unsigned long long>(remote->applied_lsn()));
      continue;
    }
    if (pending.empty() && line.rfind("@metrics", 0) == 0) {
      const txrep::obs::MetricsSnapshot snapshot = sys.metrics().Snapshot();
      if (line.find("json") != std::string::npos) {
        std::printf("%s\n", txrep::obs::ToJson(snapshot).c_str());
      } else if (line.find("prom") != std::string::npos) {
        std::printf("%s", txrep::obs::ToPrometheus(snapshot).c_str());
      } else {
        std::printf("%s", txrep::obs::ToText(snapshot).c_str());
      }
      continue;
    }

    pending += line;
    pending.push_back('\n');
    if (line.find(';') == std::string::npos) continue;  // Keep accumulating.
    std::string statement;
    statement.swap(pending);

    // Replica query?
    const std::string kReplicaPrefix = "@replica";
    const size_t start_pos = statement.find_first_not_of(" \t\n");
    if (start_pos != std::string::npos &&
        statement.compare(start_pos, kReplicaPrefix.size(), kReplicaPrefix) ==
            0) {
      if (remote != nullptr) {
        const std::string sql = statement.substr(start_pos +
                                                 kReplicaPrefix.size());
        auto parsed = txrep::sql::ParseCommand(sql);
        if (!parsed.ok()) {
          std::printf("error: %s\n", parsed.status().ToString().c_str());
          continue;
        }
        auto* select = std::get_if<txrep::rel::SelectStatement>(&*parsed);
        if (select == nullptr) {
          std::printf("error: @replica accepts SELECT only\n");
          continue;
        }
        auto rows = remote_reader->Select(&remote->cluster(), *select);
        if (!rows.ok()) {
          std::printf("error: %s\n", rows.status().ToString().c_str());
          continue;
        }
        PrintRows(*rows);
        continue;
      }
      if (!started) {
        std::printf("replication not started yet; run a write first\n");
        continue;
      }
      const std::string sql = statement.substr(start_pos +
                                               kReplicaPrefix.size());
      auto parsed = txrep::sql::ParseCommand(sql);
      if (!parsed.ok()) {
        std::printf("error: %s\n", parsed.status().ToString().c_str());
        continue;
      }
      auto* select = std::get_if<txrep::rel::SelectStatement>(&*parsed);
      if (select == nullptr) {
        std::printf("error: @replica accepts SELECT only\n");
        continue;
      }
      auto rows = sys.QueryReplica(*select);
      if (!rows.ok()) {
        std::printf("error: %s\n", rows.status().ToString().c_str());
        continue;
      }
      PrintRows(*rows);
      continue;
    }

    // Database side. Start the pipeline lazily before the first DML write so
    // the snapshot covers all DDL/population typed before it.
    auto parsed = txrep::sql::ParseScript(statement);
    if (!parsed.ok()) {
      std::printf("error: %s\n", parsed.status().ToString().c_str());
      continue;
    }
    bool has_write = false;
    for (const auto& cmd : *parsed) {
      if (txrep::sql::IsDml(cmd) &&
          !std::holds_alternative<txrep::rel::SelectStatement>(cmd)) {
        has_write = true;
      }
    }
    if (has_write && !started) {
      txrep::Status s = sys.Start();
      if (!s.ok()) {
        std::printf("error starting replication: %s\n", s.ToString().c_str());
        continue;
      }
      started = true;
      std::printf("-- replication pipeline started\n");
    }
    auto result = txrep::sql::ExecuteSql(sys.database(), statement);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    for (const auto& rows : result->select_results) PrintRows(rows);
    if (result->last_lsn != 0) {
      std::printf("-- committed (LSN %llu)\n",
                  static_cast<unsigned long long>(result->last_lsn));
    }
  }
  std::printf("bye\n");
  return 0;
}
