// Cache accelerator: the memcached-style full-replication cache of the
// paper's introduction (Fig. 1). Shows why concurrent replication matters:
// it measures replica *lag* (DB commit -> visible on the replica) and data
// *staleness* under a steady update stream, for the serial baseline vs. the
// concurrent Transaction Manager.
//
// Run: ./build/examples/cache_accelerator [num_updates]

#include <cstdio>
#include <cstdlib>

#include "common/clock.h"
#include "txrep/system.h"
#include "workload/synthetic.h"

namespace {

void Check(const txrep::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

struct LagReport {
  double mean_ms = 0;
  double p95_ms = 0;
  double max_ms = 0;
  double total_s = 0;
};

LagReport RunOnce(bool concurrent, int num_updates) {
  txrep::TxRepOptions options;
  options.concurrent_replication = concurrent;
  options.measure_lag = true;
  options.cluster.num_nodes = 5;
  options.cluster.node.service_time_micros = 60;  // Simulated network hop.
  options.cluster.node.service_slots = 4;
  options.tm.top_threads = 20;
  options.tm.bottom_threads = 20;
  options.publisher.batch_size = 50;
  options.publisher.poll_interval_micros = 500;
  txrep::TxRepSystem sys(options);

  txrep::workload::SyntheticWorkload workload(
      {.num_items = 2000, .hot_range = 2000, .seed = 17});
  Check(workload.CreateSchema(sys.database()), "CreateSchema");
  Check(workload.Populate(sys.database()), "Populate");
  Check(sys.Start(), "Start");

  txrep::Stopwatch sw;
  Check(workload.Run(sys.database(), num_updates), "update stream");
  Check(sys.SyncToLatest(), "SyncToLatest");
  const double total_s = sw.ElapsedSeconds();

  // Lag probes are recorded asynchronously; wait for them to settle.
  while (sys.lag_histogram().count() < num_updates) {
    txrep::SleepForMicros(2000);
  }
  const txrep::Histogram& lag = sys.lag_histogram();
  return LagReport{lag.Mean() / 1000.0, lag.Percentile(0.95) / 1000.0,
                   static_cast<double>(lag.max()) / 1000.0, total_s};
}

}  // namespace

int main(int argc, char** argv) {
  const int num_updates = argc > 1 ? std::atoi(argv[1]) : 1500;

  std::printf("replaying %d update transactions into the cache replica...\n\n",
              num_updates);
  LagReport serial = RunOnce(/*concurrent=*/false, num_updates);
  LagReport concurrent = RunOnce(/*concurrent=*/true, num_updates);

  std::printf("%-22s %12s %12s\n", "replication lag", "serial", "concurrent");
  std::printf("%-22s %10.2fms %10.2fms\n", "mean", serial.mean_ms,
              concurrent.mean_ms);
  std::printf("%-22s %10.2fms %10.2fms\n", "p95", serial.p95_ms,
              concurrent.p95_ms);
  std::printf("%-22s %10.2fms %10.2fms\n", "max (worst staleness)",
              serial.max_ms, concurrent.max_ms);
  std::printf("%-22s %11.2fs %11.2fs\n", "total catch-up", serial.total_s,
              concurrent.total_s);
  std::printf(
      "\nThe concurrent TM keeps the cache fresher: stale reads are served "
      "for a\nshorter window after each database commit (paper §1: 'shortening "
      "the lag\nfor the replica would significantly reduce the probability of "
      "exposing\nstale data').\n");
  return 0;
}
