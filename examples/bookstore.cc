// Bookstore: the paper's motivating web-application scenario on the TPC-W
// schema. The relational database takes the transactional ordering workload;
// the key-value replica serves the browsing workload, kept in sync by the
// concurrent Transaction Manager.
//
// Run: ./build/examples/bookstore [num_transactions]

#include <cstdio>
#include <cstdlib>

#include "common/clock.h"
#include "txrep/system.h"
#include "workload/tpcw.h"

namespace {

using txrep::workload::TpcwMix;
using txrep::workload::TpcwWorkload;

void Check(const txrep::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int num_txns = argc > 1 ? std::atoi(argv[1]) : 600;

  txrep::TxRepOptions options;
  options.cluster.num_nodes = 5;
  options.cluster.node.service_time_micros = 30;
  options.cluster.node.service_slots = 4;
  options.tm.top_threads = 20;
  options.tm.bottom_threads = 20;
  txrep::TxRepSystem sys(options);

  txrep::workload::TpcwScale scale;
  scale.items = 500;
  scale.customers = 300;
  scale.addresses = 600;
  scale.initial_orders = 100;
  TpcwWorkload tpcw(scale, /*seed=*/42);

  std::printf("creating TPC-W schema and population...\n");
  Check(tpcw.CreateSchema(sys.database()), "CreateSchema");
  Check(tpcw.Populate(sys.database()), "Populate");
  Check(sys.Start(), "Start");

  std::printf("running %d 'Shopping' mix interactions (20%% writes)...\n",
              num_txns);
  txrep::Stopwatch sw;
  int writes = 0, reads = 0, read_rows = 0;
  for (int i = 0; i < num_txns; ++i) {
    TpcwWorkload::TxnSpec spec = tpcw.NextTransaction(TpcwMix::kShopping);
    if (spec.is_write) {
      // Write transactions go to the relational database; the middleware
      // ships their log to the replica automatically.
      Check(sys.database().ExecuteTransaction(spec.statements).status(),
            "write transaction");
      ++writes;
    } else {
      // Read-only transactions hit the key-value replica, interleaved with
      // the ongoing replication by the TM.
      auto rows = sys.QueryReplica(spec.read_query);
      Check(rows.status(), "replica query");
      read_rows += static_cast<int>(rows->size());
      ++reads;
    }
  }
  Check(sys.SyncToLatest(), "SyncToLatest");
  const double secs = sw.ElapsedSeconds();

  auto stats = sys.tm_stats();
  std::printf("\n=== bookstore summary ===\n");
  std::printf("interactions      : %d (%d writes, %d reads)\n", num_txns,
              writes, reads);
  std::printf("rows served       : %d from the replica\n", read_rows);
  std::printf("wall clock        : %.2f s (%.0f interactions/s)\n", secs,
              num_txns / secs);
  std::printf("replica LSN       : %llu\n",
              static_cast<unsigned long long>(sys.replica_lsn()));
  std::printf("TM completed      : %lld (of which %lld read-only)\n",
              static_cast<long long>(stats.completed),
              static_cast<long long>(stats.read_only_submitted));
  std::printf("TM conflicts      : %lld, restarts %lld\n",
              static_cast<long long>(stats.conflicts),
              static_cast<long long>(stats.restarts));
  std::printf("KV ops            : %lld gets, %lld puts\n",
              static_cast<long long>(sys.replica().TotalStats().gets),
              static_cast<long long>(sys.replica().TotalStats().puts));
  return 0;
}
