#!/usr/bin/env bash
# Project-specific lint rules that grep can enforce (no clang-tidy needed):
#
#  1. All locking in src/ goes through the annotated wrappers in
#     src/check/mutex.h. Raw std::mutex & friends defeat both the clang
#     thread-safety analysis and the runtime lock-order registry, so they are
#     forbidden outside src/check/ itself.
#
#  2. Metric name literals ("txrep_...") live only in src/obs/names.h; every
#     other file must use the named constants so dashboards and tests agree
#     on one spelling (DESIGN.md §Observability).
#
#  3. Direct file I/O is confined to src/kv/ (disk-backed nodes) and
#     src/recov/ (checkpoints, manifests, cursors). Everything else goes
#     through those layers, so crash-safety reasoning (fsync ordering, torn
#     writes, tmp-rename commits) lives in exactly two places (DESIGN.md §9).
#
#  4. The apply path ships write sets through the batch API (DESIGN.md §10):
#     the appliers, the TM apply stage, the txn buffer publish and the
#     bootstrap tail replay must not call per-op Put/Delete on the store —
#     one op per round trip forfeits the batching amortization and silently
#     regresses replay throughput.
#
#  5. Span/stage name literals ("span....") live only in src/trace/names.h,
#     the tracing analogue of rule 2: exporters and tests derive display
#     names from the constants so traces, dashboards and docs agree on one
#     spelling (DESIGN.md §11).
#
#  6. Socket / fd syscalls (socket, connect, accept, send, recv, poll, ...)
#     are confined to src/net/. Everything else talks through net::Socket /
#     FrameTransport / NetEndpoint / NetSubscription, so wire-error handling,
#     partial-write loops and EINTR retries live in exactly one layer
#     (DESIGN.md §13).
#
#  7. Raw B-link version-word loads (OptLatch::RawVersionWord) are confined
#     to src/blink/. Outside the index, a raw word peek bypasses the
#     ReadBegin/ReadValidate protocol — it sees lock/obsolete bits without
#     the acquire pairing that makes the node image trustworthy — so every
#     other layer goes through the optimistic read API (DESIGN.md §14).
#
#  8. Stdlib randomness (std::mt19937, std::random_device, rand(), the
#     <random> distributions) is forbidden everywhere in src/. Replay
#     correctness rests on same-seed => byte-identical workload streams
#     (DESIGN.md §15); ambient-seeded or platform-varying RNGs silently
#     break that, and the src/workload/ generators are the most tempting
#     place to reach for one. All randomness goes through txrep::Random /
#     ZipfGenerator (src/common/random.h).
#
# Exits non-zero listing every offending line.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

raw_locks=$(grep -rnE \
  'std::(mutex|shared_mutex|recursive_mutex|condition_variable|condition_variable_any|lock_guard|unique_lock|shared_lock|scoped_lock)' \
  src --include='*.h' --include='*.cc' \
  | grep -v '^src/check/' || true)
if [[ -n "${raw_locks}" ]]; then
  echo "lint: raw std locking outside src/check/ (use check::Mutex et al.):"
  echo "${raw_locks}"
  fail=1
fi

metric_literals=$(grep -rn '"txrep_' \
  src --include='*.h' --include='*.cc' \
  | grep -v '^src/obs/names\.h' || true)
if [[ -n "${metric_literals}" ]]; then
  echo "lint: metric name literals outside src/obs/names.h (use the constants):"
  echo "${metric_literals}"
  fail=1
fi

file_io=$(grep -rnE \
  '\b(fopen|fclose|fread|fwrite|fsync|fdatasync|ftruncate|pread|pwrite|::open\(|openat|creat\(|opendir|readdir|closedir|mkdir\(|rmdir\(|unlink\(|unlinkat|renameat|std::(o|i)?fstream|ofstream|ifstream)\b' \
  src --include='*.h' --include='*.cc' \
  | grep -vE '^src/(kv|recov)/' || true)
if [[ -n "${file_io}" ]]; then
  echo "lint: direct file I/O outside src/kv/ and src/recov/ (route it through those layers):"
  echo "${file_io}"
  fail=1
fi

apply_path_files=(
  src/core/txn_buffer.cc
  src/core/serial_applier.cc
  src/core/ticket_applier.cc
  src/core/transaction_manager.cc
  src/core/batch_dispatcher.cc
  src/txrep/bootstrap.cc
)
per_op_apply=$(grep -nE -- '->(Put|Delete)\(' "${apply_path_files[@]}" || true)
if [[ -n "${per_op_apply}" ]]; then
  echo "lint: per-op Put/Delete on the apply path (batch via MultiWrite / BatchDispatcher):"
  echo "${per_op_apply}"
  fail=1
fi

span_literals=$(grep -rn '"span\.' \
  src --include='*.h' --include='*.cc' \
  | grep -v '^src/trace/names\.h' || true)
if [[ -n "${span_literals}" ]]; then
  echo "lint: span name literals outside src/trace/names.h (use the constants):"
  echo "${span_literals}"
  fail=1
fi

socket_calls=$(grep -rnE \
  '\b(socket|socketpair|connect|accept|accept4|bind|listen|setsockopt|getsockopt|getsockname|getpeername|recv|recvfrom|recvmsg|send|sendto|sendmsg|epoll_create1?|epoll_ctl|epoll_wait|poll|ppoll|getaddrinfo|freeaddrinfo|inet_pton|inet_ntop|htons|ntohs|htonl|ntohl)\s*\(' \
  src --include='*.h' --include='*.cc' \
  | grep -v '^src/net/' || true)
if [[ -n "${socket_calls}" ]]; then
  echo "lint: socket syscalls outside src/net/ (use net::Socket / FrameTransport):"
  echo "${socket_calls}"
  fail=1
fi

version_peeks=$(grep -rn 'RawVersionWord' \
  src --include='*.h' --include='*.cc' \
  | grep -v '^src/blink/' || true)
if [[ -n "${version_peeks}" ]]; then
  echo "lint: raw version-word loads outside src/blink/ (use ReadBegin/ReadValidate):"
  echo "${version_peeks}"
  fail=1
fi

stdlib_random=$(grep -rnE \
  'std::(mt19937(_64)?|minstd_rand0?|ranlux[0-9_]+|knuth_b|random_device|default_random_engine|(uniform_int|uniform_real|normal|bernoulli|poisson|exponential|discrete)_distribution)|\bs?rand(om)?\s*\(' \
  src --include='*.h' --include='*.cc' || true)
if [[ -n "${stdlib_random}" ]]; then
  echo "lint: stdlib randomness in src/ (use txrep::Random / ZipfGenerator from common/random.h):"
  echo "${stdlib_random}"
  fail=1
fi

if [[ "${fail}" -ne 0 ]]; then
  echo "lint: FAILED"
  exit 1
fi
echo "lint: OK"
