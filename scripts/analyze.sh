#!/usr/bin/env bash
# Runs the txrep-analyze suite (tools/analyze/) over src/: determinism audit,
# Status-discard, lock-annotation completeness, blocking-under-lock.
#
# The analyzer is pure Python. Its reference backend is a structural parser
# that needs no compiler; when python3-clang + libclang are installed the
# libclang backend refines declared types from the real AST (--backend auto
# picks it up automatically). A compile_commands.json is used for TU
# discovery when present (pass the build dir as $1 or in TXREP_COMPDB_DIR)
# but is not required.
#
# Exits non-zero listing every diagnostic not covered by
# tools/analyze/baseline.json. See DESIGN.md §12 for the rule catalog,
# waiver syntax, and the baseline ratchet policy.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v python3 >/dev/null 2>&1; then
  echo "analyze: SKIP (python3 not found)"
  exit 0
fi

compdb_dir="${1:-${TXREP_COMPDB_DIR:-build}}"
args=()
if [[ -f "${compdb_dir}/compile_commands.json" ]]; then
  args+=(--compdb "${compdb_dir}")
fi

exec python3 tools/analyze/txrep-analyze "${args[@]}"
