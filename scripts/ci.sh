#!/usr/bin/env bash
# Tier-1 verification, sanitizer passes, and the full correctness matrix.
#
#   scripts/ci.sh            # plain build + full ctest (the tier-1 gate)
#   scripts/ci.sh tsan       # + ThreadSanitizer pass over obs/core/mw tests
#   scripts/ci.sh asan       # + ASan+UBSan pass over the same set
#   scripts/ci.sh all        # plain + tsan + asan
#   scripts/ci.sh --matrix   # every flavor below; fails on the first red
#
# Matrix flavors (DESIGN.md §8):
#   release      plain build, full test suite (the tier-1 gate)
#   tsan         ThreadSanitizer over the concurrency-heavy tests
#   asan-ubsan   AddressSanitizer + UBSanitizer over the same set
#   debug-checks -DTXREP_DEBUG_CHECKS=ON: runtime lock-order registry +
#                TM invariant audits active during the full suite
#   annotations  clang -Werror=thread-safety compile of everything
#                (SKIP when clang++ is not installed)
#   tidy         clang-tidy with the checked-in .clang-tidy
#                (SKIP when clang-tidy is not installed)
#   analyze      tools/analyze/txrep-analyze: determinism audit,
#                Status-discard, lock-annotation completeness,
#                blocking-under-lock + its fixture/lint-regression tests
#                (SKIP when python3 is not installed)
#   lint         scripts/lint.sh (raw-mutex & metric-name rules)
#
# Each flavor builds into its own build-<flavor>/ tree so nothing disturbs
# the primary build/.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-plain}"

# Concurrency-heavy tests worth re-running under a sanitizer: the metrics
# hot paths (sharded counters, gauges, histograms), the TM pools that hammer
# them, the middleware threads that stamp stage latencies, the
# correctness-tooling suites themselves, the crash-recovery suites
# (checkpoint writer + restart + online bootstrap + disk-node torn tails),
# whose raw file I/O and background threads are exactly where ASan/UBSan
# earn their keep, the batched apply pipeline (MultiWrite fan-out
# through the cluster dispatch pool + the adaptive batch dispatcher), and
# the tracing subsystem (the seqlock flight recorder's lock-free writer
# protocol plus the SLO watchdog's poller thread are prime tsan targets),
# and the wire replication boundary (frame codec, socket transport threads,
# endpoint session fan-out, reconnect/dedup races — DESIGN.md §13), and the
# optimistic version-latched B-link index (lock-free readers racing writer
# latch hand-over-hand and version publication — DESIGN.md §14), and the
# TPC-C-lite workload suites (multi-table concurrent-vs-serial equivalence
# replay, the seed-sweep explorer's tpcc mode, and the open-loop load
# generator driving a live TM — DESIGN.md §15).
SANITIZER_TESTS='obs_|core_tm_|mw_|common_histogram|common_thread_pool|common_blocking_queue|common_keyed_mutex|txrep_system|check_|recov_|kv_disk_|kv_batch_|core_batch_|trace_|net_|blink_|workload_'

# Flavor results for the final summary: "name<TAB>PASS|SKIP (reason)".
RESULTS=()

note() { RESULTS+=("$1	$2"); }

print_summary() {
  echo
  echo "=== matrix summary ==="
  printf '%-14s %s\n' "flavor" "result"
  printf '%-14s %s\n' "------" "------"
  for row in "${RESULTS[@]}"; do
    printf '%-14s %s\n' "${row%%	*}" "${row#*	}"
  done
}

run_plain() {
  echo "=== release: plain build + full test suite ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j"$(nproc)"
  (cd build && ctest --output-on-failure -j"$(nproc)")
  note release PASS
}

run_sanitized() {
  local kind="$1" dir="build-$1" label="$2"
  echo "=== ${label}: sanitizer pass (${SANITIZER_TESTS}) ==="
  cmake -B "${dir}" -S . -DTXREP_SANITIZE="${kind}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "${dir}" -j"$(nproc)"
  (cd "${dir}" && ctest --output-on-failure -j"$(nproc)" \
    -R "${SANITIZER_TESTS}")
  note "${label}" PASS
}

run_debug_checks() {
  echo "=== debug-checks: runtime lock-order + invariant checkers ==="
  cmake -B build-debug-checks -S . -DTXREP_DEBUG_CHECKS=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build build-debug-checks -j"$(nproc)"
  (cd build-debug-checks && ctest --output-on-failure -j"$(nproc)")
  note debug-checks PASS
}

run_annotations() {
  echo "=== annotations: clang -Werror=thread-safety ==="
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "annotations: SKIP (clang++ not installed)"
    note annotations "SKIP (no clang++)"
    return 0
  fi
  cmake -B build-annotations -S . \
    -DCMAKE_CXX_COMPILER=clang++ -DTXREP_THREAD_SAFETY_ANALYSIS=ON >/dev/null
  cmake --build build-annotations -j"$(nproc)"
  note annotations PASS
}

run_tidy() {
  echo "=== tidy: clang-tidy over src/ ==="
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "tidy: SKIP (clang-tidy not installed)"
    note tidy "SKIP (no clang-tidy)"
    return 0
  fi
  cmake -B build-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  local files
  files=$(find src -name '*.cc')
  # shellcheck disable=SC2086
  clang-tidy -p build-tidy --quiet ${files}
  note tidy PASS
}

run_analyze() {
  echo "=== analyze: txrep-analyze rule families over src/ ==="
  if ! command -v python3 >/dev/null 2>&1; then
    echo "analyze: SKIP (python3 not installed)"
    note analyze "SKIP (no python3)"
    return 0
  fi
  python3 tools/analyze/tests/run_fixture_tests.py
  python3 tools/analyze/tests/run_lint_regression.py
  scripts/analyze.sh build
  note analyze PASS
}

run_lint() {
  echo "=== lint: project grep rules ==="
  scripts/lint.sh
  note lint PASS
}

run_matrix() {
  run_plain
  run_sanitized thread tsan
  run_sanitized address asan-ubsan
  run_debug_checks
  run_annotations
  run_tidy
  run_analyze
  run_lint
  print_summary
}

case "${MODE}" in
  plain) run_plain ;;
  tsan) run_plain; run_sanitized thread tsan ;;
  asan) run_plain; run_sanitized address asan-ubsan ;;
  all) run_plain; run_sanitized thread tsan; run_sanitized address asan-ubsan ;;
  --matrix|matrix) run_matrix ;;
  *) echo "usage: $0 [plain|tsan|asan|all|--matrix]" >&2; exit 2 ;;
esac

echo "ci: OK (${MODE})"
