#!/usr/bin/env bash
# Tier-1 verification plus optional sanitizer passes.
#
#   scripts/ci.sh            # plain build + full ctest (the tier-1 gate)
#   scripts/ci.sh tsan       # + ThreadSanitizer pass over obs/core/mw tests
#   scripts/ci.sh asan       # + AddressSanitizer pass over the same set
#   scripts/ci.sh all        # plain + tsan + asan
#
# Sanitizer builds go to build-tsan/ / build-asan/ so they never disturb the
# primary build/ tree.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-plain}"

# Concurrency-heavy tests worth re-running under a sanitizer: the metrics
# hot paths (sharded counters, gauges, histograms), the TM pools that hammer
# them, and the middleware threads that stamp stage latencies.
SANITIZER_TESTS='obs_|core_tm_|mw_|common_histogram|common_thread_pool|txrep_system'

run_plain() {
  echo "=== plain build + full test suite ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j"$(nproc)"
  (cd build && ctest --output-on-failure -j"$(nproc)")
}

run_sanitized() {
  local kind="$1" dir="build-$1"
  echo "=== ${kind} sanitizer pass (${SANITIZER_TESTS}) ==="
  cmake -B "${dir}" -S . -DTXREP_SANITIZE="${kind}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "${dir}" -j"$(nproc)"
  (cd "${dir}" && ctest --output-on-failure -j"$(nproc)" \
    -R "${SANITIZER_TESTS}")
}

case "${MODE}" in
  plain) run_plain ;;
  tsan) run_plain; run_sanitized thread ;;
  asan) run_plain; run_sanitized address ;;
  all) run_plain; run_sanitized thread; run_sanitized address ;;
  *) echo "usage: $0 [plain|tsan|asan|all]" >&2; exit 2 ;;
esac

echo "ci: OK (${MODE})"
