file(REMOVE_RECURSE
  "CMakeFiles/replica_analytics.dir/replica_analytics.cc.o"
  "CMakeFiles/replica_analytics.dir/replica_analytics.cc.o.d"
  "replica_analytics"
  "replica_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replica_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
