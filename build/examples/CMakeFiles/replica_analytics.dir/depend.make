# Empty dependencies file for replica_analytics.
# This may be replaced when dependencies are built.
