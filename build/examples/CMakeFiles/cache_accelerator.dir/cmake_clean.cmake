file(REMOVE_RECURSE
  "CMakeFiles/cache_accelerator.dir/cache_accelerator.cc.o"
  "CMakeFiles/cache_accelerator.dir/cache_accelerator.cc.o.d"
  "cache_accelerator"
  "cache_accelerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
