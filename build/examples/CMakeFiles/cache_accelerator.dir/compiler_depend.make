# Empty compiler generated dependencies file for cache_accelerator.
# This may be replaced when dependencies are built.
