file(REMOVE_RECURSE
  "CMakeFiles/txrep_shell.dir/txrep_shell.cc.o"
  "CMakeFiles/txrep_shell.dir/txrep_shell.cc.o.d"
  "txrep_shell"
  "txrep_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txrep_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
