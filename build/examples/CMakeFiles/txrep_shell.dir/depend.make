# Empty dependencies file for txrep_shell.
# This may be replaced when dependencies are built.
