file(REMOVE_RECURSE
  "CMakeFiles/kv_cluster_test.dir/kv_cluster_test.cc.o"
  "CMakeFiles/kv_cluster_test.dir/kv_cluster_test.cc.o.d"
  "kv_cluster_test"
  "kv_cluster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
