# Empty compiler generated dependencies file for sql_interpreter_test.
# This may be replaced when dependencies are built.
