# Empty dependencies file for core_tm_readonly_test.
# This may be replaced when dependencies are built.
