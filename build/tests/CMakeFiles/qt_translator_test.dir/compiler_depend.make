# Empty compiler generated dependencies file for qt_translator_test.
# This may be replaced when dependencies are built.
