file(REMOVE_RECURSE
  "CMakeFiles/qt_translator_test.dir/qt_translator_test.cc.o"
  "CMakeFiles/qt_translator_test.dir/qt_translator_test.cc.o.d"
  "qt_translator_test"
  "qt_translator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qt_translator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
