file(REMOVE_RECURSE
  "CMakeFiles/common_blocking_queue_test.dir/common_blocking_queue_test.cc.o"
  "CMakeFiles/common_blocking_queue_test.dir/common_blocking_queue_test.cc.o.d"
  "common_blocking_queue_test"
  "common_blocking_queue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_blocking_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
