# Empty dependencies file for core_tm_equivalence_test.
# This may be replaced when dependencies are built.
