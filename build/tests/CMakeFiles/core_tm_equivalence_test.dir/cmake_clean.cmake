file(REMOVE_RECURSE
  "CMakeFiles/core_tm_equivalence_test.dir/core_tm_equivalence_test.cc.o"
  "CMakeFiles/core_tm_equivalence_test.dir/core_tm_equivalence_test.cc.o.d"
  "core_tm_equivalence_test"
  "core_tm_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tm_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
