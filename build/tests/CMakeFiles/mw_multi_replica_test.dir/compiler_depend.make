# Empty compiler generated dependencies file for mw_multi_replica_test.
# This may be replaced when dependencies are built.
