file(REMOVE_RECURSE
  "CMakeFiles/mw_multi_replica_test.dir/mw_multi_replica_test.cc.o"
  "CMakeFiles/mw_multi_replica_test.dir/mw_multi_replica_test.cc.o.d"
  "mw_multi_replica_test"
  "mw_multi_replica_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mw_multi_replica_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
