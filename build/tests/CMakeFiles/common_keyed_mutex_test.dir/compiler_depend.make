# Empty compiler generated dependencies file for common_keyed_mutex_test.
# This may be replaced when dependencies are built.
