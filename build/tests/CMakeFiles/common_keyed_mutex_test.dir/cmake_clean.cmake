file(REMOVE_RECURSE
  "CMakeFiles/common_keyed_mutex_test.dir/common_keyed_mutex_test.cc.o"
  "CMakeFiles/common_keyed_mutex_test.dir/common_keyed_mutex_test.cc.o.d"
  "common_keyed_mutex_test"
  "common_keyed_mutex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_keyed_mutex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
