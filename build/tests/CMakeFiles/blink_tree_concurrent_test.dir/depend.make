# Empty dependencies file for blink_tree_concurrent_test.
# This may be replaced when dependencies are built.
