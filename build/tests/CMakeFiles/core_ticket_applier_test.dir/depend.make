# Empty dependencies file for core_ticket_applier_test.
# This may be replaced when dependencies are built.
