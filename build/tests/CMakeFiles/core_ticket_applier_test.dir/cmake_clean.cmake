file(REMOVE_RECURSE
  "CMakeFiles/core_ticket_applier_test.dir/core_ticket_applier_test.cc.o"
  "CMakeFiles/core_ticket_applier_test.dir/core_ticket_applier_test.cc.o.d"
  "core_ticket_applier_test"
  "core_ticket_applier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_ticket_applier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
