# Empty compiler generated dependencies file for blink_tree_fanout_test.
# This may be replaced when dependencies are built.
