file(REMOVE_RECURSE
  "CMakeFiles/rel_database_test.dir/rel_database_test.cc.o"
  "CMakeFiles/rel_database_test.dir/rel_database_test.cc.o.d"
  "rel_database_test"
  "rel_database_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rel_database_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
