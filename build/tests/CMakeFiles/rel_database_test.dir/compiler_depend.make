# Empty compiler generated dependencies file for rel_database_test.
# This may be replaced when dependencies are built.
