# Empty compiler generated dependencies file for core_tm_tpcw_equivalence_test.
# This may be replaced when dependencies are built.
