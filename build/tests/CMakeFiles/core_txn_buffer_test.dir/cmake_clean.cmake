file(REMOVE_RECURSE
  "CMakeFiles/core_txn_buffer_test.dir/core_txn_buffer_test.cc.o"
  "CMakeFiles/core_txn_buffer_test.dir/core_txn_buffer_test.cc.o.d"
  "core_txn_buffer_test"
  "core_txn_buffer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_txn_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
