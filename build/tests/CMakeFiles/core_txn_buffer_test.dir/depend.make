# Empty dependencies file for core_txn_buffer_test.
# This may be replaced when dependencies are built.
