file(REMOVE_RECURSE
  "CMakeFiles/workload_tpcw_test.dir/workload_tpcw_test.cc.o"
  "CMakeFiles/workload_tpcw_test.dir/workload_tpcw_test.cc.o.d"
  "workload_tpcw_test"
  "workload_tpcw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_tpcw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
