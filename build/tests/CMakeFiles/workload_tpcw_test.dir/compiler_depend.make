# Empty compiler generated dependencies file for workload_tpcw_test.
# This may be replaced when dependencies are built.
