file(REMOVE_RECURSE
  "CMakeFiles/rel_txlog_test.dir/rel_txlog_test.cc.o"
  "CMakeFiles/rel_txlog_test.dir/rel_txlog_test.cc.o.d"
  "rel_txlog_test"
  "rel_txlog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rel_txlog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
