# Empty compiler generated dependencies file for rel_txlog_test.
# This may be replaced when dependencies are built.
