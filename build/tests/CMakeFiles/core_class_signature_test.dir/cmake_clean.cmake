file(REMOVE_RECURSE
  "CMakeFiles/core_class_signature_test.dir/core_class_signature_test.cc.o"
  "CMakeFiles/core_class_signature_test.dir/core_class_signature_test.cc.o.d"
  "core_class_signature_test"
  "core_class_signature_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_class_signature_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
