file(REMOVE_RECURSE
  "CMakeFiles/mw_pubsub_test.dir/mw_pubsub_test.cc.o"
  "CMakeFiles/mw_pubsub_test.dir/mw_pubsub_test.cc.o.d"
  "mw_pubsub_test"
  "mw_pubsub_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mw_pubsub_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
