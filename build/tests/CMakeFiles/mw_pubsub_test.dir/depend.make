# Empty dependencies file for mw_pubsub_test.
# This may be replaced when dependencies are built.
