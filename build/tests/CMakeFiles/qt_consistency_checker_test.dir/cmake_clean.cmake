file(REMOVE_RECURSE
  "CMakeFiles/qt_consistency_checker_test.dir/qt_consistency_checker_test.cc.o"
  "CMakeFiles/qt_consistency_checker_test.dir/qt_consistency_checker_test.cc.o.d"
  "qt_consistency_checker_test"
  "qt_consistency_checker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qt_consistency_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
