# Empty compiler generated dependencies file for qt_consistency_checker_test.
# This may be replaced when dependencies are built.
