# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for qt_consistency_checker_test.
