# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for core_txn_buffer_model_test.
