# Empty compiler generated dependencies file for core_txn_buffer_model_test.
# This may be replaced when dependencies are built.
