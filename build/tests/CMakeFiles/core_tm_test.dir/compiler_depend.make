# Empty compiler generated dependencies file for core_tm_test.
# This may be replaced when dependencies are built.
