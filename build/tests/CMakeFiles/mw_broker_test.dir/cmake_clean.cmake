file(REMOVE_RECURSE
  "CMakeFiles/mw_broker_test.dir/mw_broker_test.cc.o"
  "CMakeFiles/mw_broker_test.dir/mw_broker_test.cc.o.d"
  "mw_broker_test"
  "mw_broker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mw_broker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
