# Empty compiler generated dependencies file for mw_broker_test.
# This may be replaced when dependencies are built.
