# Empty dependencies file for qt_reader_test.
# This may be replaced when dependencies are built.
