file(REMOVE_RECURSE
  "CMakeFiles/qt_reader_test.dir/qt_reader_test.cc.o"
  "CMakeFiles/qt_reader_test.dir/qt_reader_test.cc.o.d"
  "qt_reader_test"
  "qt_reader_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qt_reader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
