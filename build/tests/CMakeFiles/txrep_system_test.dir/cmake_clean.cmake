file(REMOVE_RECURSE
  "CMakeFiles/txrep_system_test.dir/txrep_system_test.cc.o"
  "CMakeFiles/txrep_system_test.dir/txrep_system_test.cc.o.d"
  "txrep_system_test"
  "txrep_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txrep_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
