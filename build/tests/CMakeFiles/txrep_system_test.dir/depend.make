# Empty dependencies file for txrep_system_test.
# This may be replaced when dependencies are built.
