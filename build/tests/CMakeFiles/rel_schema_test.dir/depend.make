# Empty dependencies file for rel_schema_test.
# This may be replaced when dependencies are built.
