file(REMOVE_RECURSE
  "CMakeFiles/rel_schema_test.dir/rel_schema_test.cc.o"
  "CMakeFiles/rel_schema_test.dir/rel_schema_test.cc.o.d"
  "rel_schema_test"
  "rel_schema_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rel_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
