file(REMOVE_RECURSE
  "CMakeFiles/blink_node_test.dir/blink_node_test.cc.o"
  "CMakeFiles/blink_node_test.dir/blink_node_test.cc.o.d"
  "blink_node_test"
  "blink_node_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blink_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
