# Empty dependencies file for blink_node_test.
# This may be replaced when dependencies are built.
