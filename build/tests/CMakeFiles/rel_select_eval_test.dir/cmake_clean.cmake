file(REMOVE_RECURSE
  "CMakeFiles/rel_select_eval_test.dir/rel_select_eval_test.cc.o"
  "CMakeFiles/rel_select_eval_test.dir/rel_select_eval_test.cc.o.d"
  "rel_select_eval_test"
  "rel_select_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rel_select_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
