# Empty compiler generated dependencies file for rel_select_eval_test.
# This may be replaced when dependencies are built.
