file(REMOVE_RECURSE
  "CMakeFiles/txrep_test_util.dir/test_util.cc.o"
  "CMakeFiles/txrep_test_util.dir/test_util.cc.o.d"
  "libtxrep_test_util.a"
  "libtxrep_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txrep_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
