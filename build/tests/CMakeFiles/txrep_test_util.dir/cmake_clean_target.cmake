file(REMOVE_RECURSE
  "libtxrep_test_util.a"
)
