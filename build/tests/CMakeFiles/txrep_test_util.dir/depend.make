# Empty dependencies file for txrep_test_util.
# This may be replaced when dependencies are built.
