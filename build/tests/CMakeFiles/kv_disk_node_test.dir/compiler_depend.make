# Empty compiler generated dependencies file for kv_disk_node_test.
# This may be replaced when dependencies are built.
