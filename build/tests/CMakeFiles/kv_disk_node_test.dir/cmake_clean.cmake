file(REMOVE_RECURSE
  "CMakeFiles/kv_disk_node_test.dir/kv_disk_node_test.cc.o"
  "CMakeFiles/kv_disk_node_test.dir/kv_disk_node_test.cc.o.d"
  "kv_disk_node_test"
  "kv_disk_node_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_disk_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
