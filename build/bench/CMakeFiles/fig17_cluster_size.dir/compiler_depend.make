# Empty compiler generated dependencies file for fig17_cluster_size.
# This may be replaced when dependencies are built.
