file(REMOVE_RECURSE
  "CMakeFiles/fig17_cluster_size.dir/fig17_cluster_size.cc.o"
  "CMakeFiles/fig17_cluster_size.dir/fig17_cluster_size.cc.o.d"
  "fig17_cluster_size"
  "fig17_cluster_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_cluster_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
