# Empty dependencies file for table1_tpcw.
# This may be replaced when dependencies are built.
