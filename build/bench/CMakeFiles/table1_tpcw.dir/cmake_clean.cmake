file(REMOVE_RECURSE
  "CMakeFiles/table1_tpcw.dir/table1_tpcw.cc.o"
  "CMakeFiles/table1_tpcw.dir/table1_tpcw.cc.o.d"
  "table1_tpcw"
  "table1_tpcw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_tpcw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
