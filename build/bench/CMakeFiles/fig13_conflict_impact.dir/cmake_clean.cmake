file(REMOVE_RECURSE
  "CMakeFiles/fig13_conflict_impact.dir/fig13_conflict_impact.cc.o"
  "CMakeFiles/fig13_conflict_impact.dir/fig13_conflict_impact.cc.o.d"
  "fig13_conflict_impact"
  "fig13_conflict_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_conflict_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
