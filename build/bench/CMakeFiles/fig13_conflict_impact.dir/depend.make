# Empty dependencies file for fig13_conflict_impact.
# This may be replaced when dependencies are built.
