file(REMOVE_RECURSE
  "libtxrep_bench_util.a"
)
