# Empty dependencies file for txrep_bench_util.
# This may be replaced when dependencies are built.
