file(REMOVE_RECURSE
  "CMakeFiles/txrep_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/txrep_bench_util.dir/bench_util.cc.o.d"
  "libtxrep_bench_util.a"
  "libtxrep_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txrep_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
