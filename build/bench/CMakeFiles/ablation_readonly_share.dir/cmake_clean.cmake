file(REMOVE_RECURSE
  "CMakeFiles/ablation_readonly_share.dir/ablation_readonly_share.cc.o"
  "CMakeFiles/ablation_readonly_share.dir/ablation_readonly_share.cc.o.d"
  "ablation_readonly_share"
  "ablation_readonly_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_readonly_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
