# Empty dependencies file for ablation_readonly_share.
# This may be replaced when dependencies are built.
