file(REMOVE_RECURSE
  "CMakeFiles/fig16_thread_conflicts.dir/fig16_thread_conflicts.cc.o"
  "CMakeFiles/fig16_thread_conflicts.dir/fig16_thread_conflicts.cc.o.d"
  "fig16_thread_conflicts"
  "fig16_thread_conflicts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_thread_conflicts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
