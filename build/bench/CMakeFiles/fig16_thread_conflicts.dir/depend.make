# Empty dependencies file for fig16_thread_conflicts.
# This may be replaced when dependencies are built.
