# Empty compiler generated dependencies file for ablation_buffer_cache.
# This may be replaced when dependencies are built.
