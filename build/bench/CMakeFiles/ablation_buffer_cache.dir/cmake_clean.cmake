file(REMOVE_RECURSE
  "CMakeFiles/ablation_buffer_cache.dir/ablation_buffer_cache.cc.o"
  "CMakeFiles/ablation_buffer_cache.dir/ablation_buffer_cache.cc.o.d"
  "ablation_buffer_cache"
  "ablation_buffer_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_buffer_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
