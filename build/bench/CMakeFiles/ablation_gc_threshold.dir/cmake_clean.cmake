file(REMOVE_RECURSE
  "CMakeFiles/ablation_gc_threshold.dir/ablation_gc_threshold.cc.o"
  "CMakeFiles/ablation_gc_threshold.dir/ablation_gc_threshold.cc.o.d"
  "ablation_gc_threshold"
  "ablation_gc_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gc_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
