file(REMOVE_RECURSE
  "CMakeFiles/fig14_when_to_use.dir/fig14_when_to_use.cc.o"
  "CMakeFiles/fig14_when_to_use.dir/fig14_when_to_use.cc.o.d"
  "fig14_when_to_use"
  "fig14_when_to_use.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_when_to_use.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
