# Empty compiler generated dependencies file for fig14_when_to_use.
# This may be replaced when dependencies are built.
