# Empty dependencies file for fig15_thread_throughput.
# This may be replaced when dependencies are built.
