file(REMOVE_RECURSE
  "CMakeFiles/fig15_thread_throughput.dir/fig15_thread_throughput.cc.o"
  "CMakeFiles/fig15_thread_throughput.dir/fig15_thread_throughput.cc.o.d"
  "fig15_thread_throughput"
  "fig15_thread_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_thread_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
