# Empty compiler generated dependencies file for ablation_class_filter.
# This may be replaced when dependencies are built.
