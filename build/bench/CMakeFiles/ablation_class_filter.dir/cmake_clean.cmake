file(REMOVE_RECURSE
  "CMakeFiles/ablation_class_filter.dir/ablation_class_filter.cc.o"
  "CMakeFiles/ablation_class_filter.dir/ablation_class_filter.cc.o.d"
  "ablation_class_filter"
  "ablation_class_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_class_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
