# Empty compiler generated dependencies file for fig12_conflicts.
# This may be replaced when dependencies are built.
