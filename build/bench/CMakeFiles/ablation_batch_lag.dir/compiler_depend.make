# Empty compiler generated dependencies file for ablation_batch_lag.
# This may be replaced when dependencies are built.
