file(REMOVE_RECURSE
  "CMakeFiles/ablation_batch_lag.dir/ablation_batch_lag.cc.o"
  "CMakeFiles/ablation_batch_lag.dir/ablation_batch_lag.cc.o.d"
  "ablation_batch_lag"
  "ablation_batch_lag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_batch_lag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
