# Empty dependencies file for txrep.
# This may be replaced when dependencies are built.
