file(REMOVE_RECURSE
  "libtxrep.a"
)
