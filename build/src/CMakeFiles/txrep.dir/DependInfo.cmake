
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blink/blink_tree.cc" "src/CMakeFiles/txrep.dir/blink/blink_tree.cc.o" "gcc" "src/CMakeFiles/txrep.dir/blink/blink_tree.cc.o.d"
  "/root/repo/src/blink/node.cc" "src/CMakeFiles/txrep.dir/blink/node.cc.o" "gcc" "src/CMakeFiles/txrep.dir/blink/node.cc.o.d"
  "/root/repo/src/codec/encoding.cc" "src/CMakeFiles/txrep.dir/codec/encoding.cc.o" "gcc" "src/CMakeFiles/txrep.dir/codec/encoding.cc.o.d"
  "/root/repo/src/codec/kv_keys.cc" "src/CMakeFiles/txrep.dir/codec/kv_keys.cc.o" "gcc" "src/CMakeFiles/txrep.dir/codec/kv_keys.cc.o.d"
  "/root/repo/src/codec/log_codec.cc" "src/CMakeFiles/txrep.dir/codec/log_codec.cc.o" "gcc" "src/CMakeFiles/txrep.dir/codec/log_codec.cc.o.d"
  "/root/repo/src/codec/row_codec.cc" "src/CMakeFiles/txrep.dir/codec/row_codec.cc.o" "gcc" "src/CMakeFiles/txrep.dir/codec/row_codec.cc.o.d"
  "/root/repo/src/codec/value_codec.cc" "src/CMakeFiles/txrep.dir/codec/value_codec.cc.o" "gcc" "src/CMakeFiles/txrep.dir/codec/value_codec.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/txrep.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/txrep.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/keyed_mutex.cc" "src/CMakeFiles/txrep.dir/common/keyed_mutex.cc.o" "gcc" "src/CMakeFiles/txrep.dir/common/keyed_mutex.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/txrep.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/txrep.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/txrep.dir/common/random.cc.o" "gcc" "src/CMakeFiles/txrep.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/txrep.dir/common/status.cc.o" "gcc" "src/CMakeFiles/txrep.dir/common/status.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/txrep.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/txrep.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/core/class_signature.cc" "src/CMakeFiles/txrep.dir/core/class_signature.cc.o" "gcc" "src/CMakeFiles/txrep.dir/core/class_signature.cc.o.d"
  "/root/repo/src/core/serial_applier.cc" "src/CMakeFiles/txrep.dir/core/serial_applier.cc.o" "gcc" "src/CMakeFiles/txrep.dir/core/serial_applier.cc.o.d"
  "/root/repo/src/core/ticket_applier.cc" "src/CMakeFiles/txrep.dir/core/ticket_applier.cc.o" "gcc" "src/CMakeFiles/txrep.dir/core/ticket_applier.cc.o.d"
  "/root/repo/src/core/transaction.cc" "src/CMakeFiles/txrep.dir/core/transaction.cc.o" "gcc" "src/CMakeFiles/txrep.dir/core/transaction.cc.o.d"
  "/root/repo/src/core/transaction_manager.cc" "src/CMakeFiles/txrep.dir/core/transaction_manager.cc.o" "gcc" "src/CMakeFiles/txrep.dir/core/transaction_manager.cc.o.d"
  "/root/repo/src/core/txn_buffer.cc" "src/CMakeFiles/txrep.dir/core/txn_buffer.cc.o" "gcc" "src/CMakeFiles/txrep.dir/core/txn_buffer.cc.o.d"
  "/root/repo/src/kv/disk_node.cc" "src/CMakeFiles/txrep.dir/kv/disk_node.cc.o" "gcc" "src/CMakeFiles/txrep.dir/kv/disk_node.cc.o.d"
  "/root/repo/src/kv/inmemory_node.cc" "src/CMakeFiles/txrep.dir/kv/inmemory_node.cc.o" "gcc" "src/CMakeFiles/txrep.dir/kv/inmemory_node.cc.o.d"
  "/root/repo/src/kv/kv_cluster.cc" "src/CMakeFiles/txrep.dir/kv/kv_cluster.cc.o" "gcc" "src/CMakeFiles/txrep.dir/kv/kv_cluster.cc.o.d"
  "/root/repo/src/kv/kv_types.cc" "src/CMakeFiles/txrep.dir/kv/kv_types.cc.o" "gcc" "src/CMakeFiles/txrep.dir/kv/kv_types.cc.o.d"
  "/root/repo/src/mw/broker.cc" "src/CMakeFiles/txrep.dir/mw/broker.cc.o" "gcc" "src/CMakeFiles/txrep.dir/mw/broker.cc.o.d"
  "/root/repo/src/mw/publisher.cc" "src/CMakeFiles/txrep.dir/mw/publisher.cc.o" "gcc" "src/CMakeFiles/txrep.dir/mw/publisher.cc.o.d"
  "/root/repo/src/mw/subscriber.cc" "src/CMakeFiles/txrep.dir/mw/subscriber.cc.o" "gcc" "src/CMakeFiles/txrep.dir/mw/subscriber.cc.o.d"
  "/root/repo/src/qt/consistency_checker.cc" "src/CMakeFiles/txrep.dir/qt/consistency_checker.cc.o" "gcc" "src/CMakeFiles/txrep.dir/qt/consistency_checker.cc.o.d"
  "/root/repo/src/qt/query_translator.cc" "src/CMakeFiles/txrep.dir/qt/query_translator.cc.o" "gcc" "src/CMakeFiles/txrep.dir/qt/query_translator.cc.o.d"
  "/root/repo/src/qt/replica_reader.cc" "src/CMakeFiles/txrep.dir/qt/replica_reader.cc.o" "gcc" "src/CMakeFiles/txrep.dir/qt/replica_reader.cc.o.d"
  "/root/repo/src/rel/database.cc" "src/CMakeFiles/txrep.dir/rel/database.cc.o" "gcc" "src/CMakeFiles/txrep.dir/rel/database.cc.o.d"
  "/root/repo/src/rel/schema.cc" "src/CMakeFiles/txrep.dir/rel/schema.cc.o" "gcc" "src/CMakeFiles/txrep.dir/rel/schema.cc.o.d"
  "/root/repo/src/rel/select_eval.cc" "src/CMakeFiles/txrep.dir/rel/select_eval.cc.o" "gcc" "src/CMakeFiles/txrep.dir/rel/select_eval.cc.o.d"
  "/root/repo/src/rel/statement.cc" "src/CMakeFiles/txrep.dir/rel/statement.cc.o" "gcc" "src/CMakeFiles/txrep.dir/rel/statement.cc.o.d"
  "/root/repo/src/rel/table.cc" "src/CMakeFiles/txrep.dir/rel/table.cc.o" "gcc" "src/CMakeFiles/txrep.dir/rel/table.cc.o.d"
  "/root/repo/src/rel/txlog.cc" "src/CMakeFiles/txrep.dir/rel/txlog.cc.o" "gcc" "src/CMakeFiles/txrep.dir/rel/txlog.cc.o.d"
  "/root/repo/src/rel/value.cc" "src/CMakeFiles/txrep.dir/rel/value.cc.o" "gcc" "src/CMakeFiles/txrep.dir/rel/value.cc.o.d"
  "/root/repo/src/sql/interpreter.cc" "src/CMakeFiles/txrep.dir/sql/interpreter.cc.o" "gcc" "src/CMakeFiles/txrep.dir/sql/interpreter.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/txrep.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/txrep.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/txrep.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/txrep.dir/sql/parser.cc.o.d"
  "/root/repo/src/txrep/system.cc" "src/CMakeFiles/txrep.dir/txrep/system.cc.o" "gcc" "src/CMakeFiles/txrep.dir/txrep/system.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/CMakeFiles/txrep.dir/workload/synthetic.cc.o" "gcc" "src/CMakeFiles/txrep.dir/workload/synthetic.cc.o.d"
  "/root/repo/src/workload/tpcw.cc" "src/CMakeFiles/txrep.dir/workload/tpcw.cc.o" "gcc" "src/CMakeFiles/txrep.dir/workload/tpcw.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
