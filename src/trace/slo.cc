#include "trace/slo.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/clock.h"
#include "common/logging.h"
#include "obs/names.h"
#include "trace/export.h"

namespace txrep::trace {

std::string SloStatus::ToString() const {
  char buf[256];
  snprintf(buf, sizeof(buf),
           "slo: burn=%.2f window=%" PRId64 "/%" PRId64 " lifetime=%" PRId64
           "/%" PRId64 " stalls=%" PRId64 " dumps=%" PRId64,
           burn_rate, window_violations, window_observations, violations,
           observations, stalls, dumps);
  return buf;
}

SloWatchdog::SloWatchdog(SloOptions options, obs::MetricsRegistry* metrics,
                         Tracer* tracer)
    : options_(options), tracer_(tracer) {
  options_.window_buckets = std::max(1, options_.window_buckets);
  options_.window_micros =
      std::max<int64_t>(options_.window_buckets, options_.window_micros);
  buckets_ = std::vector<Bucket>(options_.window_buckets);
  if (metrics != nullptr) {
    c_observations_ = metrics->GetCounter(obs::kSloObservations);
    c_violations_ = metrics->GetCounter(obs::kSloViolations);
    c_stalls_ = metrics->GetCounter(obs::kSloStalls);
    c_dumps_ = metrics->GetCounter(obs::kSloDumps);
    g_burn_permille_ = metrics->GetGauge(obs::kSloBurnRatePermille);
  }
  last_progress_micros_ = NowMicros();
}

SloWatchdog::~SloWatchdog() { Stop(); }

void SloWatchdog::SetProgressProbe(std::function<SloProbe()> probe) {
  check::MutexLock lock(&mu_);
  probe_ = std::move(probe);
}

void SloWatchdog::SetDumpSink(DumpSink sink) {
  check::MutexLock lock(&mu_);
  dump_sink_ = std::move(sink);
}

void SloWatchdog::Start() {
  if (!options_.start_thread || thread_.joinable()) return;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] {
    while (!stop_.load(std::memory_order_relaxed)) {
      Poll();
      // Sleep in small steps so Stop() is prompt even with slow polls.
      int64_t remaining = options_.poll_interval_micros;
      while (remaining > 0 && !stop_.load(std::memory_order_relaxed)) {
        const int64_t step = std::min<int64_t>(remaining, 20'000);
        SleepForMicros(step);
        remaining -= step;
      }
    }
  });
}

void SloWatchdog::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
}

void SloWatchdog::ObserveLag(int64_t lag_micros) {
  const int64_t now = NowMicros();
  const int64_t epoch = now / bucket_width_micros();
  Bucket& bucket = buckets_[epoch % buckets_.size()];
  if (bucket.epoch.load(std::memory_order_acquire) != epoch) {
    // The bucket still holds a past window rotation; reset it once. The
    // mutex only serializes the reset, not the hot-path increments.
    check::MutexLock lock(&rotate_mu_);
    if (bucket.epoch.load(std::memory_order_relaxed) != epoch) {
      bucket.total.store(0, std::memory_order_relaxed);
      bucket.violations.store(0, std::memory_order_relaxed);
      bucket.epoch.store(epoch, std::memory_order_release);
    }
  }
  bucket.total.fetch_add(1, std::memory_order_relaxed);
  observations_.fetch_add(1, std::memory_order_relaxed);
  if (c_observations_ != nullptr) c_observations_->Increment();
  if (lag_micros > options_.lag_objective_micros) {
    bucket.violations.fetch_add(1, std::memory_order_relaxed);
    violations_.fetch_add(1, std::memory_order_relaxed);
    if (c_violations_ != nullptr) c_violations_->Increment();
  }
}

void SloWatchdog::WindowCounts(int64_t* total, int64_t* violations) const {
  *total = 0;
  *violations = 0;
  const int64_t now_epoch = NowMicros() / bucket_width_micros();
  const int64_t oldest =
      now_epoch - static_cast<int64_t>(buckets_.size()) + 1;
  for (const Bucket& bucket : buckets_) {
    const int64_t epoch = bucket.epoch.load(std::memory_order_acquire);
    if (epoch < oldest || epoch > now_epoch) continue;
    *total += bucket.total.load(std::memory_order_relaxed);
    *violations += bucket.violations.load(std::memory_order_relaxed);
  }
}

double SloWatchdog::BurnRate(int64_t total, int64_t violations) const {
  if (total <= 0) return 0.0;
  const double budget = std::max(1e-9, 1.0 - options_.target_fraction);
  return (static_cast<double>(violations) / total) / budget;
}

void SloWatchdog::TriggerDump(const std::string& reason) {
  dumps_.fetch_add(1, std::memory_order_relaxed);
  if (c_dumps_ != nullptr) c_dumps_->Increment();
  std::vector<SpanEvent> events;
  if (tracer_ != nullptr) events = tracer_->Dump();
  DumpSink sink;
  {
    check::MutexLock lock(&mu_);
    sink = dump_sink_;
  }
  if (sink) {
    sink(reason, events);
    return;
  }
  TXREP_LOG(kWarn) << "slo watchdog: " << reason << "\n"
                   << ToTextTimeline(events);
}

void SloWatchdog::Poll() {
  int64_t total = 0;
  int64_t violations = 0;
  WindowCounts(&total, &violations);
  const double burn = BurnRate(total, violations);
  if (g_burn_permille_ != nullptr) {
    g_burn_permille_->Set(static_cast<int64_t>(burn * 1000.0));
  }

  bool warn_burn = false;
  std::string stall_reason;
  {
    check::MutexLock lock(&mu_);
    if (burn >= options_.warn_burn_rate && total > 0) {
      if (!burn_warned_) {
        burn_warned_ = true;
        warn_burn = true;
      }
    } else {
      burn_warned_ = false;
    }

    if (probe_) {
      const SloProbe probe = probe_();
      const int64_t now = NowMicros();
      if (probe.backlog <= 0 || probe.applied_lsn != last_applied_lsn_) {
        last_applied_lsn_ = probe.applied_lsn;
        last_progress_micros_ = now;
        stall_active_ = false;
      } else if (!stall_active_ &&
                 now - last_progress_micros_ >= options_.stall_timeout_micros) {
        stall_active_ = true;
        stalls_.fetch_add(1, std::memory_order_relaxed);
        if (c_stalls_ != nullptr) c_stalls_->Increment();
        char buf[160];
        snprintf(buf, sizeof(buf),
                 "apply stalled: no progress past lsn %" PRIu64 " for %" PRId64
                 "us with backlog %" PRId64,
                 probe.applied_lsn, now - last_progress_micros_, probe.backlog);
        stall_reason = buf;
      }
    }
  }

  if (warn_burn) {
    TXREP_LOG(kWarn) << "slo watchdog: burn rate " << burn
                     << " >= " << options_.warn_burn_rate << " ("
                     << violations << "/" << total << " over window)";
  }
  if (!stall_reason.empty()) TriggerDump(stall_reason);
}

SloStatus SloWatchdog::Snapshot() const {
  SloStatus status;
  status.observations = observations_.load(std::memory_order_relaxed);
  status.violations = violations_.load(std::memory_order_relaxed);
  WindowCounts(&status.window_observations, &status.window_violations);
  status.burn_rate =
      BurnRate(status.window_observations, status.window_violations);
  status.stalls = stalls_.load(std::memory_order_relaxed);
  status.dumps = dumps_.load(std::memory_order_relaxed);
  return status;
}

std::string SloWatchdog::Report() const {
  SloStatus status = Snapshot();
  std::string out = status.ToString();
  char buf[160];
  snprintf(buf, sizeof(buf),
           "\nobjective: lag <= %" PRId64 "us for %.2f%% over %" PRId64
           "s windows",
           options_.lag_objective_micros, 100.0 * options_.target_fraction,
           options_.window_micros / 1'000'000);
  out += buf;
  return out;
}

}  // namespace txrep::trace
