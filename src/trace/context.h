#ifndef TXREP_TRACE_CONTEXT_H_
#define TXREP_TRACE_CONTEXT_H_

#include <cstdint>

namespace txrep::trace {

/// Per-transaction trace identity, minted at DB commit (TxLog::Append) and
/// carried inside the log record across the wire so every downstream hop —
/// publisher, broker, subscriber, TM commit-eval, (batched) apply — can
/// attribute its spans to the same transaction.
///
/// Sampling is deterministic in the LSN (lsn % sample_every == 0), so two
/// replays of the same log sample the same transactions and the schedule
/// explorer can prove byte-equivalence is unperturbed by tracing. A
/// default-constructed context (trace_id 0, unsampled) is what pre-tracing
/// log records decode to.
struct TraceContext {
  /// Stable trace identity; equals the transaction's commit LSN today (ids
  /// only need to be unique within one log's lifetime).
  uint64_t trace_id = 0;
  /// True when this transaction records spans into the flight recorder.
  bool sampled = false;
};

inline bool operator==(const TraceContext& a, const TraceContext& b) {
  return a.trace_id == b.trace_id && a.sampled == b.sampled;
}

}  // namespace txrep::trace

#endif  // TXREP_TRACE_CONTEXT_H_
