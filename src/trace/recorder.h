#ifndef TXREP_TRACE_RECORDER_H_
#define TXREP_TRACE_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "trace/names.h"

namespace txrep::trace {

/// One recorded span: a contiguous wall-clock interval [start, end] of one
/// pipeline hop, with the queue-wait share split out of the total. All
/// timestamps are NowMicros() (steady clock), so intervals of different hops
/// of the same transaction are directly comparable.
struct SpanEvent {
  uint64_t trace_id = 0;
  uint64_t lsn = 0;
  SpanStage stage = SpanStage::kPublish;
  int64_t start_micros = 0;
  int64_t end_micros = 0;
  /// Time spent waiting (log tail, broker queue, commit-req PQ, bottom-pool
  /// queue) before the hop started servicing; <= end - start.
  int64_t queue_micros = 0;

  int64_t duration_micros() const { return end_micros - start_micros; }
  int64_t service_micros() const { return duration_micros() - queue_micros; }
};

struct FlightRecorderOptions {
  /// Total slots across all shards (rounded up to shards). Memory bound:
  /// capacity * sizeof(Slot) ~= capacity * 64 bytes (2 MiB at the default).
  size_t capacity = 32768;
  /// Ring shards; threads spread across them to keep recording contention-
  /// free. Rounded up to a power of two.
  size_t shards = 8;
};

/// Always-on, bounded-memory, lock-free flight recorder: the last N spans of
/// the replication pipeline, dumpable at any instant (on demand, or by the
/// SLO watchdog when apply progress stalls) without stopping writers.
///
/// Design (DESIGN.md §11): sharded rings of seqlock slots. A writer takes a
/// ticket from its shard's monotone counter, claims the target slot by
/// CASing its sequence from "complete" to the odd write-in-progress value,
/// publishes the payload, then releases with the even completion value.
/// A failed claim (another writer still mid-publish on a lapped slot) drops
/// the event — recording never blocks and never tears. Readers accept a slot
/// only when the sequence is even, non-zero and unchanged across the payload
/// read. Payload fields are relaxed atomics; the seqlock's acquire/release
/// pair orders them.
class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options = {});

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Lock-free; drops (and counts) the event instead of ever waiting.
  /// Returns false when the event was dropped.
  bool Record(const SpanEvent& event);

  /// Snapshot of every currently-valid slot, ordered by start time. Safe
  /// concurrently with writers; spans being overwritten mid-read are skipped.
  std::vector<SpanEvent> Dump() const;

  int64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Actual slot capacity after rounding (Dump() never returns more).
  size_t capacity() const { return shards_.size() * slots_per_shard_; }

 private:
  struct Slot {
    /// 0 = never written; odd = write in progress; even > 0 = complete.
    /// Strictly increases across a slot's generations (derived from the
    /// shard ticket), so a reader detects overwrites as a sequence change.
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint64_t> lsn{0};
    std::atomic<uint32_t> stage{0};
    std::atomic<int64_t> start_micros{0};
    std::atomic<int64_t> end_micros{0};
    std::atomic<int64_t> queue_micros{0};
  };

  struct alignas(64) Shard {
    std::atomic<uint64_t> next_ticket{0};
    std::unique_ptr<Slot[]> slots;
  };

  static size_t ShardIndex(size_t num_shards);

  std::vector<Shard> shards_;
  size_t slots_per_shard_ = 0;
  std::atomic<int64_t> recorded_{0};
  std::atomic<int64_t> dropped_{0};
};

}  // namespace txrep::trace

#endif  // TXREP_TRACE_RECORDER_H_
