#ifndef TXREP_TRACE_TRACER_H_
#define TXREP_TRACE_TRACER_H_

#include <array>
#include <cstdint>
#include <vector>

#include "check/mutex.h"
#include "obs/metrics.h"
#include "trace/context.h"
#include "trace/recorder.h"

namespace txrep::trace {

struct TracerOptions {
  /// Sampling period: 0 disables tracing entirely, 1 traces every
  /// transaction, N traces every Nth (lsn % N == 0 — deterministic in the
  /// log position, so replays and the schedule explorer sample identically).
  uint64_t sample_every = 0;

  /// Flight-recorder geometry (bounded memory; see recorder.h).
  FlightRecorderOptions recorder;

  /// Slowest exemplar traces retained per stage (0 disables retention).
  size_t exemplars_per_stage = 4;
};

/// Front door of the tracing subsystem: mints TraceContexts at DB commit,
/// funnels every hop's spans into the flight recorder, mirrors volume
/// counters into the metrics registry and retains the slowest-N exemplar
/// spans per stage. One Tracer serves a whole deployment; every method is
/// thread-safe and RecordSpan() is wait-free for unsampled transactions.
class Tracer {
 public:
  explicit Tracer(TracerOptions options = {},
                  obs::MetricsRegistry* metrics = nullptr);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// True when sampling is configured (sample_every > 0).
  bool enabled() const { return options_.sample_every > 0; }
  uint64_t sample_every() const { return options_.sample_every; }

  /// Mints the context for the transaction committing at `lsn`.
  /// Deterministic: the same lsn always yields the same decision.
  TraceContext Mint(uint64_t lsn);

  /// Records one hop's span for a sampled transaction (no-op otherwise).
  /// `queue_micros` is the waiting share of [start, end]; clamped into
  /// [0, end - start].
  void RecordSpan(const TraceContext& ctx, uint64_t lsn, SpanStage stage,
                  int64_t start_micros, int64_t end_micros,
                  int64_t queue_micros = 0);

  /// Snapshot of the flight recorder (see FlightRecorder::Dump).
  std::vector<SpanEvent> Dump() const { return recorder_.Dump(); }

  /// The slowest exemplar spans retained for `stage`, slowest first.
  std::vector<SpanEvent> Exemplars(SpanStage stage) const;

  const FlightRecorder& recorder() const { return recorder_; }
  const TracerOptions& options() const { return options_; }

 private:
  // analyze: lock-free(set in ctor, immutable afterwards)
  TracerOptions options_;
  // analyze: lock-free(FlightRecorder owns its own mutex)
  FlightRecorder recorder_;

  mutable check::Mutex mu_{"trace.exemplars"};
  /// Per stage, ascending by duration, at most exemplars_per_stage entries.
  std::array<std::vector<SpanEvent>, kNumSpanStages> exemplars_
      TXREP_GUARDED_BY(mu_);

  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_sampled_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_spans_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_spans_dropped_ = nullptr;
};

}  // namespace txrep::trace

#endif  // TXREP_TRACE_TRACER_H_
