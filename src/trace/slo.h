#ifndef TXREP_TRACE_SLO_H_
#define TXREP_TRACE_SLO_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "check/mutex.h"
#include "obs/metrics.h"
#include "trace/recorder.h"
#include "trace/tracer.h"

namespace txrep::trace {

/// Replica-apply progress sample for stall detection (see
/// SloWatchdog::SetProgressProbe).
struct SloProbe {
  /// Highest LSN fully applied on the replica.
  uint64_t applied_lsn = 0;
  /// Committed-but-not-yet-applied transactions (0 = replica caught up).
  int64_t backlog = 0;
};

struct SloOptions {
  /// Master switch (TxRepOptions embeds this struct; off by default).
  bool enabled = false;

  /// The objective: replica lag (DB commit -> replica-visible) at or below
  /// this is a good event; above it is an SLO violation.
  int64_t lag_objective_micros = 50'000;

  /// Target good fraction (0.99 = "99% of transactions within objective").
  double target_fraction = 0.99;

  /// Sliding window the burn rate is computed over, split into
  /// `window_buckets` rotating buckets.
  int64_t window_micros = 60'000'000;
  int window_buckets = 12;

  /// Burn rate >= this logs a warning (1.0 = exactly eating the error
  /// budget; >1 = on track to exhaust it early).
  double warn_burn_rate = 2.0;

  /// No applied-LSN progress for this long while a backlog exists =>
  /// a stall: counted, logged, and the flight recorder is auto-dumped.
  int64_t stall_timeout_micros = 2'000'000;

  /// Watchdog evaluation period.
  int64_t poll_interval_micros = 200'000;

  /// false: no background thread; tests drive Poll() manually.
  bool start_thread = true;
};

/// Point-in-time SLO state (Snapshot()).
struct SloStatus {
  int64_t observations = 0;         // Lifetime lag observations.
  int64_t violations = 0;           // Lifetime objective violations.
  int64_t window_observations = 0;  // Within the sliding window.
  int64_t window_violations = 0;
  double burn_rate = 0.0;  // Error-budget burn over the window.
  int64_t stalls = 0;      // Stall episodes detected.
  int64_t dumps = 0;       // Flight-recorder auto-dumps triggered.

  std::string ToString() const;
};

/// Replica-lag SLO watchdog (DESIGN.md §11): every applied transaction's lag
/// feeds ObserveLag(); a background poller computes the error-budget burn
/// rate over a bucketed sliding window and watches apply progress. When the
/// backlog is non-empty but the applied LSN stops advancing for
/// stall_timeout_micros, the watchdog declares a stall and auto-dumps the
/// flight recorder through the dump sink (default: the warning log), so the
/// post-mortem captures the spans leading INTO the stall.
///
/// Burn rate semantics (SRE convention): violation_fraction / error_budget,
/// where error_budget = 1 - target_fraction. Burn 1.0 = violations arriving
/// exactly at the sustainable rate; 2.0 = budget exhausted twice as fast.
class SloWatchdog {
 public:
  /// `reason` is a human-readable trigger description; `events` the flight-
  /// recorder dump at trigger time (empty when no tracer is attached).
  using DumpSink =
      std::function<void(const std::string& reason,
                         const std::vector<SpanEvent>& events)>;

  SloWatchdog(SloOptions options, obs::MetricsRegistry* metrics = nullptr,
              Tracer* tracer = nullptr);
  ~SloWatchdog();

  SloWatchdog(const SloWatchdog&) = delete;
  SloWatchdog& operator=(const SloWatchdog&) = delete;

  /// Progress source (TxRepSystem wires the applied LSN + backlog here).
  /// Must be set before Start(); called from the watchdog thread only.
  void SetProgressProbe(std::function<SloProbe()> probe);

  /// Replaces the default warning-log dump sink.
  void SetDumpSink(DumpSink sink);

  /// Starts the poller thread (no-op when options.start_thread is false or
  /// already started). Stop() is idempotent and runs in the destructor.
  void Start();
  void Stop();

  /// Feed one applied transaction's replica lag (µs). Thread-safe, cheap.
  void ObserveLag(int64_t lag_micros);

  /// One watchdog evaluation: burn rate + stall check. Public so tests (and
  /// the shell) can run the watchdog without the background thread.
  void Poll();

  SloStatus Snapshot() const;

  /// Human-readable one-call report (status + burn + stall state).
  std::string Report() const;

  const SloOptions& options() const { return options_; }

 private:
  struct Bucket {
    std::atomic<int64_t> epoch{-1};
    std::atomic<int64_t> total{0};
    std::atomic<int64_t> violations{0};
  };

  int64_t bucket_width_micros() const {
    return options_.window_micros / options_.window_buckets;
  }
  void WindowCounts(int64_t* total, int64_t* violations) const;
  double BurnRate(int64_t total, int64_t violations) const;
  void TriggerDump(const std::string& reason);

  // analyze: lock-free(set in ctor, immutable afterwards)
  SloOptions options_;
  // analyze: lock-free(set in ctor, never reseated; pointee has its own synchronization)
  Tracer* tracer_ = nullptr;

  // analyze: lock-free(sized in ctor; per-bucket fields are atomics)
  std::vector<Bucket> buckets_;
  check::Mutex rotate_mu_{"trace.slo_rotate"};

  std::atomic<int64_t> observations_{0};
  std::atomic<int64_t> violations_{0};
  std::atomic<int64_t> stalls_{0};
  std::atomic<int64_t> dumps_{0};

  check::Mutex mu_{"trace.slo"};
  std::function<SloProbe()> probe_ TXREP_GUARDED_BY(mu_);
  DumpSink dump_sink_ TXREP_GUARDED_BY(mu_);
  uint64_t last_applied_lsn_ TXREP_GUARDED_BY(mu_) = 0;
  int64_t last_progress_micros_ TXREP_GUARDED_BY(mu_) = 0;
  bool stall_active_ TXREP_GUARDED_BY(mu_) = false;
  bool burn_warned_ TXREP_GUARDED_BY(mu_) = false;

  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_violations_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_observations_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_stalls_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_dumps_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Gauge* g_burn_permille_ = nullptr;

  std::atomic<bool> stop_{false};
  // analyze: lock-free(thread handle; started once, joined in Stop/dtor only)
  std::thread thread_;
};

}  // namespace txrep::trace

#endif  // TXREP_TRACE_SLO_H_
