#ifndef TXREP_TRACE_NAMES_H_
#define TXREP_TRACE_NAMES_H_

#include <cstdint>

/// Canonical span/stage names of the per-transaction tracing subsystem
/// (DESIGN.md §11). Like obs/names.h for metrics, this header is the ONLY
/// place span names may be defined (scripts/lint.sh rule 5): every name
/// carries the greppable "span." prefix, and exporters derive display names
/// from these constants instead of re-spelling them.
namespace txrep::trace {

/// One hop of a replicated transaction's end-to-end path. Values are stable
/// (they appear in flight-recorder slots) — append only.
enum class SpanStage : uint8_t {
  /// DB commit -> replication message published (publisher pump).
  kPublish = 0,
  /// Message published -> broker delivered it to subscriber queues.
  kBroker = 1,
  /// Broker delivery -> subscriber handed the transaction to the apply sink.
  kReceive = 2,
  /// Sink hand-off -> Algorithm 1 reached the commit decision (TM path).
  kCommitEval = 3,
  /// Commit decision -> buffer fully applied to the key-value replica.
  kApply = 4,
  /// DB commit -> replica-visible (the whole path; equals replica lag).
  kE2e = 5,
};

inline constexpr int kNumSpanStages = 6;

inline constexpr char kSpanPublish[] = "span.publish";
inline constexpr char kSpanBroker[] = "span.broker";
inline constexpr char kSpanReceive[] = "span.recv";
inline constexpr char kSpanCommitEval[] = "span.commit_eval";
inline constexpr char kSpanApply[] = "span.apply";
inline constexpr char kSpanE2e[] = "span.e2e";

/// Full canonical name ("span.publish").
inline const char* SpanStageName(SpanStage stage) {
  switch (stage) {
    case SpanStage::kPublish: return kSpanPublish;
    case SpanStage::kBroker: return kSpanBroker;
    case SpanStage::kReceive: return kSpanReceive;
    case SpanStage::kCommitEval: return kSpanCommitEval;
    case SpanStage::kApply: return kSpanApply;
    case SpanStage::kE2e: return kSpanE2e;
  }
  return "span.unknown";
}

/// Display name without the "span." prefix ("publish"), derived from the
/// canonical constant so exporters never re-spell stage names.
inline const char* SpanStageDisplay(SpanStage stage) {
  return SpanStageName(stage) + 5;
}

}  // namespace txrep::trace

#endif  // TXREP_TRACE_NAMES_H_
