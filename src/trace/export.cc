#include "trace/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>

namespace txrep::trace {

namespace {

void AppendFormat(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<size_t>(n, sizeof(buf) - 1));
}

}  // namespace

std::vector<TraceSummary> BuildTraceSummaries(
    const std::vector<SpanEvent>& events) {
  std::map<uint64_t, TraceSummary> by_trace;
  for (const SpanEvent& event : events) {
    TraceSummary& summary = by_trace[event.trace_id];
    summary.trace_id = event.trace_id;
    summary.lsn = event.lsn;
    const size_t idx = static_cast<size_t>(event.stage);
    if (!summary.has[idx] ||
        event.duration_micros() > summary.spans[idx].duration_micros()) {
      summary.has[idx] = true;
      summary.spans[idx] = event;
    }
  }

  std::vector<TraceSummary> out;
  out.reserve(by_trace.size());
  for (auto& [id, summary] : by_trace) {
    int64_t covered = 0;
    int64_t longest = -1;
    for (int i = 0; i < kNumSpanStages; ++i) {
      if (!summary.has[i] || i == static_cast<int>(SpanStage::kE2e)) continue;
      const int64_t duration = summary.spans[i].duration_micros();
      covered += duration;
      if (duration > longest) {
        longest = duration;
        summary.dominant = static_cast<SpanStage>(i);
      }
    }
    summary.covered_micros = covered;
    const size_t e2e = static_cast<size_t>(SpanStage::kE2e);
    summary.e2e_micros =
        summary.has[e2e] ? summary.spans[e2e].duration_micros() : covered;
    out.push_back(summary);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceSummary& a, const TraceSummary& b) {
              const auto start = [](const TraceSummary& s) {
                const size_t e2e = static_cast<size_t>(SpanStage::kE2e);
                return s.has[e2e] ? s.spans[e2e].start_micros : int64_t{0};
              };
              if (start(a) != start(b)) return start(a) < start(b);
              return a.trace_id < b.trace_id;
            });
  return out;
}

std::string ToChromeTraceJson(const std::vector<SpanEvent>& events) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (int i = 0; i < kNumSpanStages; ++i) {
    if (!first) out += ',';
    first = false;
    AppendFormat(out,
                 "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                 "\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                 i, SpanStageDisplay(static_cast<SpanStage>(i)));
  }
  for (const SpanEvent& event : events) {
    if (!first) out += ',';
    first = false;
    AppendFormat(
        out,
        "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"cat\":\"txrep\","
        "\"name\":\"%s\",\"ts\":%" PRId64 ",\"dur\":%" PRId64
        ",\"args\":{\"lsn\":%" PRIu64 ",\"trace_id\":%" PRIu64
        ",\"queue_us\":%" PRId64 ",\"service_us\":%" PRId64 "}}",
        static_cast<int>(event.stage), SpanStageDisplay(event.stage),
        event.start_micros, event.duration_micros(), event.lsn, event.trace_id,
        event.queue_micros, event.service_micros());
  }
  out += "]}";
  return out;
}

std::string ToTextTimeline(const std::vector<SpanEvent>& events,
                           size_t max_traces) {
  std::vector<TraceSummary> summaries = BuildTraceSummaries(events);
  std::sort(summaries.begin(), summaries.end(),
            [](const TraceSummary& a, const TraceSummary& b) {
              return a.e2e_micros > b.e2e_micros;
            });
  if (summaries.size() > max_traces) summaries.resize(max_traces);

  std::string out;
  AppendFormat(out, "flight recorder: %zu span(s), %zu transaction(s)",
               events.size(), summaries.size());
  out += '\n';
  for (const TraceSummary& summary : summaries) {
    AppendFormat(out,
                 "trace %" PRIu64 " (lsn %" PRIu64 ") e2e=%" PRId64
                 "us dominant=%s coverage=%.1f%%\n",
                 summary.trace_id, summary.lsn, summary.e2e_micros,
                 SpanStageDisplay(summary.dominant),
                 100.0 * summary.coverage());
    int64_t origin = 0;
    const size_t e2e = static_cast<size_t>(SpanStage::kE2e);
    if (summary.has[e2e]) {
      origin = summary.spans[e2e].start_micros;
    } else {
      for (int i = 0; i < kNumSpanStages; ++i) {
        if (summary.has[i]) {
          origin = summary.spans[i].start_micros;
          break;
        }
      }
    }
    for (int i = 0; i < kNumSpanStages; ++i) {
      if (!summary.has[i]) continue;
      const SpanEvent& span = summary.spans[i];
      AppendFormat(out,
                   "  %-12s [%8" PRId64 " +%8" PRId64 "us] queue=%" PRId64
                   "us service=%" PRId64 "us\n",
                   SpanStageDisplay(span.stage), span.start_micros - origin,
                   span.duration_micros(), span.queue_micros,
                   span.service_micros());
    }
  }
  return out;
}

std::string CriticalPathReport(const std::vector<TraceSummary>& summaries,
                               size_t slowest) {
  std::array<int64_t, kNumSpanStages> dominated{};
  for (const TraceSummary& summary : summaries) {
    dominated[static_cast<size_t>(summary.dominant)]++;
  }
  std::string out;
  AppendFormat(out, "critical path over %zu traced transaction(s):\n",
               summaries.size());
  for (int i = 0; i < kNumSpanStages; ++i) {
    if (i == static_cast<int>(SpanStage::kE2e) || dominated[i] == 0) continue;
    AppendFormat(out, "  %-12s dominated %" PRId64 " (%.1f%%)\n",
                 SpanStageDisplay(static_cast<SpanStage>(i)), dominated[i],
                 summaries.empty()
                     ? 0.0
                     : 100.0 * dominated[i] / summaries.size());
  }
  std::vector<TraceSummary> sorted = summaries;
  std::sort(sorted.begin(), sorted.end(),
            [](const TraceSummary& a, const TraceSummary& b) {
              return a.e2e_micros > b.e2e_micros;
            });
  if (sorted.size() > slowest) sorted.resize(slowest);
  if (!sorted.empty()) out += "slowest transactions:\n";
  for (const TraceSummary& summary : sorted) {
    AppendFormat(out,
                 "  lsn %" PRIu64 ": e2e=%" PRId64 "us dominant=%s (%" PRId64
                 "us, queue=%" PRId64 "us)\n",
                 summary.lsn, summary.e2e_micros,
                 SpanStageDisplay(summary.dominant),
                 summary.spans[static_cast<size_t>(summary.dominant)]
                     .duration_micros(),
                 summary.spans[static_cast<size_t>(summary.dominant)]
                     .queue_micros);
  }
  return out;
}

}  // namespace txrep::trace
