#ifndef TXREP_TRACE_EXPORT_H_
#define TXREP_TRACE_EXPORT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/recorder.h"

namespace txrep::trace {

/// Everything the flight recorder captured about ONE transaction, folded by
/// stage, with critical-path attribution: which hop dominated this
/// transaction's end-to-end lag.
struct TraceSummary {
  uint64_t trace_id = 0;
  uint64_t lsn = 0;
  std::array<bool, kNumSpanStages> has{};
  std::array<SpanEvent, kNumSpanStages> spans{};

  /// End-to-end lag: the e2e span when recorded, else the covered sum.
  int64_t e2e_micros = 0;
  /// Sum of the recorded per-hop durations (excluding the e2e span itself).
  int64_t covered_micros = 0;
  /// The longest recorded hop (excluding e2e) — the critical path's head.
  SpanStage dominant = SpanStage::kPublish;

  bool complete() const {
    for (int i = 0; i < kNumSpanStages; ++i) {
      if (i != static_cast<int>(SpanStage::kCommitEval) && !has[i]) {
        return false;
      }
    }
    return true;
  }

  /// Fraction of e2e explained by the recorded hops (1.0 = fully attributed).
  double coverage() const {
    return e2e_micros > 0
               ? static_cast<double>(covered_micros) / e2e_micros
               : 1.0;
  }
};

/// Folds a span dump into per-transaction summaries, ordered by e2e start
/// time. Duplicate (trace, stage) events keep the longest instance.
std::vector<TraceSummary> BuildTraceSummaries(
    const std::vector<SpanEvent>& events);

/// Chrome trace-event JSON (the object form: {"traceEvents":[...]}), loadable
/// in chrome://tracing and Perfetto. Each stage renders as one track ("X"
/// complete events); queue/service split and LSN ride in args.
std::string ToChromeTraceJson(const std::vector<SpanEvent>& events);

/// Human-readable per-transaction timeline (at most `max_traces`
/// transactions, slowest e2e first) for terminal / log consumption.
std::string ToTextTimeline(const std::vector<SpanEvent>& events,
                           size_t max_traces = 32);

/// Aggregate critical-path report over many summaries: how often each hop
/// dominated, plus the slowest transactions with their dominant hop.
std::string CriticalPathReport(const std::vector<TraceSummary>& summaries,
                               size_t slowest = 8);

}  // namespace txrep::trace

#endif  // TXREP_TRACE_EXPORT_H_
