#include "trace/recorder.h"

#include <algorithm>

namespace txrep::trace {

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderOptions options) {
  const size_t num_shards = RoundUpPow2(std::max<size_t>(1, options.shards));
  slots_per_shard_ =
      std::max<size_t>(1, (std::max<size_t>(1, options.capacity) +
                           num_shards - 1) /
                              num_shards);
  shards_ = std::vector<Shard>(num_shards);
  for (Shard& shard : shards_) {
    shard.slots = std::make_unique<Slot[]>(slots_per_shard_);
  }
}

size_t FlightRecorder::ShardIndex(size_t num_shards) {
  static std::atomic<size_t> next{0};
  thread_local const size_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index & (num_shards - 1);  // num_shards is a power of two.
}

bool FlightRecorder::Record(const SpanEvent& event) {
  Shard& shard = shards_[ShardIndex(shards_.size())];
  const uint64_t ticket =
      shard.next_ticket.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = shard.slots[ticket % slots_per_shard_];

  // Claim: complete (even) -> this generation's odd value. A slot still odd
  // belongs to a writer we lapped; losing the CAS means another ticket got
  // here first. Either way the event is dropped, never torn.
  uint64_t expected = slot.seq.load(std::memory_order_relaxed);
  const uint64_t write_seq = 2 * ticket + 1;
  if ((expected & 1) != 0 || expected >= write_seq ||
      !slot.seq.compare_exchange_strong(expected, write_seq,
                                        std::memory_order_acq_rel)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  slot.trace_id.store(event.trace_id, std::memory_order_relaxed);
  slot.lsn.store(event.lsn, std::memory_order_relaxed);
  slot.stage.store(static_cast<uint32_t>(event.stage),
                   std::memory_order_relaxed);
  slot.start_micros.store(event.start_micros, std::memory_order_relaxed);
  slot.end_micros.store(event.end_micros, std::memory_order_relaxed);
  slot.queue_micros.store(event.queue_micros, std::memory_order_relaxed);
  slot.seq.store(write_seq + 1, std::memory_order_release);
  recorded_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::vector<SpanEvent> FlightRecorder::Dump() const {
  std::vector<SpanEvent> out;
  out.reserve(capacity());
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < slots_per_shard_; ++i) {
      const Slot& slot = shard.slots[i];
      const uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
      if (seq_before == 0 || (seq_before & 1) != 0) continue;
      SpanEvent event;
      event.trace_id = slot.trace_id.load(std::memory_order_relaxed);
      event.lsn = slot.lsn.load(std::memory_order_relaxed);
      const uint32_t raw_stage = slot.stage.load(std::memory_order_relaxed);
      event.start_micros = slot.start_micros.load(std::memory_order_relaxed);
      event.end_micros = slot.end_micros.load(std::memory_order_relaxed);
      event.queue_micros = slot.queue_micros.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != seq_before) continue;
      if (raw_stage >= static_cast<uint32_t>(kNumSpanStages)) continue;
      event.stage = static_cast<SpanStage>(raw_stage);
      out.push_back(event);
    }
  }
  std::sort(out.begin(), out.end(), [](const SpanEvent& a, const SpanEvent& b) {
    if (a.start_micros != b.start_micros) {
      return a.start_micros < b.start_micros;
    }
    if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
    return static_cast<uint32_t>(a.stage) < static_cast<uint32_t>(b.stage);
  });
  return out;
}

}  // namespace txrep::trace
