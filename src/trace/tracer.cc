#include "trace/tracer.h"

#include <algorithm>

#include "obs/names.h"

namespace txrep::trace {

Tracer::Tracer(TracerOptions options, obs::MetricsRegistry* metrics)
    : options_(options), recorder_(options.recorder) {
  if (metrics != nullptr) {
    c_sampled_ = metrics->GetCounter(obs::kTraceSampled);
    c_spans_ = metrics->GetCounter(obs::kTraceSpans);
    c_spans_dropped_ = metrics->GetCounter(obs::kTraceSpansDropped);
  }
}

TraceContext Tracer::Mint(uint64_t lsn) {
  TraceContext ctx;
  if (!enabled() || lsn == 0) return ctx;
  ctx.trace_id = lsn;
  ctx.sampled = (lsn % options_.sample_every) == 0;
  if (ctx.sampled && c_sampled_ != nullptr) c_sampled_->Increment();
  return ctx;
}

void Tracer::RecordSpan(const TraceContext& ctx, uint64_t lsn, SpanStage stage,
                        int64_t start_micros, int64_t end_micros,
                        int64_t queue_micros) {
  if (!ctx.sampled) return;
  SpanEvent event;
  event.trace_id = ctx.trace_id;
  event.lsn = lsn;
  event.stage = stage;
  event.start_micros = start_micros;
  event.end_micros = std::max(end_micros, start_micros);
  event.queue_micros =
      std::clamp<int64_t>(queue_micros, 0, event.duration_micros());

  const bool kept = recorder_.Record(event);
  if (c_spans_ != nullptr) c_spans_->Increment();
  if (!kept && c_spans_dropped_ != nullptr) c_spans_dropped_->Increment();

  if (options_.exemplars_per_stage > 0) {
    const size_t idx = static_cast<size_t>(stage);
    check::MutexLock lock(&mu_);
    std::vector<SpanEvent>& top = exemplars_[idx];
    if (top.size() < options_.exemplars_per_stage) {
      top.push_back(event);
      std::sort(top.begin(), top.end(),
                [](const SpanEvent& a, const SpanEvent& b) {
                  return a.duration_micros() < b.duration_micros();
                });
    } else if (event.duration_micros() > top.front().duration_micros()) {
      top.front() = event;
      std::sort(top.begin(), top.end(),
                [](const SpanEvent& a, const SpanEvent& b) {
                  return a.duration_micros() < b.duration_micros();
                });
    }
  }
}

std::vector<SpanEvent> Tracer::Exemplars(SpanStage stage) const {
  check::MutexLock lock(&mu_);
  std::vector<SpanEvent> out = exemplars_[static_cast<size_t>(stage)];
  std::reverse(out.begin(), out.end());  // Slowest first.
  return out;
}

}  // namespace txrep::trace
