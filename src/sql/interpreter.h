#ifndef TXREP_SQL_INTERPRETER_H_
#define TXREP_SQL_INTERPRETER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "rel/database.h"
#include "sql/parser.h"

namespace txrep::sql {

/// Result of running a SQL script: rows produced by each SELECT, in order.
struct ScriptResult {
  std::vector<std::vector<rel::Row>> select_results;

  /// LSN of the last committed write transaction (0 if none).
  uint64_t last_lsn = 0;
};

/// Executes a ';'-separated SQL script against `db`. DDL commands apply
/// immediately; each DML statement runs as its own transaction. Stops at the
/// first error.
Result<ScriptResult> ExecuteSql(rel::Database& db, std::string_view sql);

/// Parses `statements` (each one DML statement) and executes them atomically
/// as a single transaction.
Result<rel::CommitInfo> ExecuteSqlTransaction(
    rel::Database& db, const std::vector<std::string_view>& statements);

}  // namespace txrep::sql

#endif  // TXREP_SQL_INTERPRETER_H_
