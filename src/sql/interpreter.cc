#include "sql/interpreter.h"

namespace txrep::sql {

Result<ScriptResult> ExecuteSql(rel::Database& db, std::string_view sql) {
  TXREP_ASSIGN_OR_RETURN(std::vector<ParsedCommand> commands, ParseScript(sql));
  ScriptResult result;
  bool in_block = false;
  std::vector<rel::Statement> block;

  auto run = [&](const std::vector<rel::Statement>& stmts) -> Status {
    TXREP_ASSIGN_OR_RETURN(rel::CommitInfo info, db.ExecuteTransaction(stmts));
    for (auto& rows : info.select_results) {
      result.select_results.push_back(std::move(rows));
    }
    if (info.lsn != 0) result.last_lsn = info.lsn;
    return Status::OK();
  };

  for (ParsedCommand& command : commands) {
    if (std::holds_alternative<BeginCommand>(command)) {
      if (in_block) {
        return Status::InvalidArgument("nested BEGIN is not supported");
      }
      in_block = true;
      continue;
    }
    if (std::holds_alternative<CommitCommand>(command)) {
      if (!in_block) {
        return Status::InvalidArgument("COMMIT without BEGIN");
      }
      TXREP_RETURN_IF_ERROR(run(block));
      block.clear();
      in_block = false;
      continue;
    }
    if (std::holds_alternative<RollbackCommand>(command)) {
      if (!in_block) {
        return Status::InvalidArgument("ROLLBACK without BEGIN");
      }
      block.clear();
      in_block = false;
      continue;
    }
    if (auto* create = std::get_if<CreateTableCommand>(&command)) {
      if (in_block) {
        return Status::InvalidArgument(
            "DDL inside a transaction block is not supported");
      }
      TXREP_RETURN_IF_ERROR(db.CreateTable(std::move(create->schema)));
      continue;
    }
    if (auto* index = std::get_if<CreateIndexCommand>(&command)) {
      if (in_block) {
        return Status::InvalidArgument(
            "DDL inside a transaction block is not supported");
      }
      if (index->range) {
        TXREP_RETURN_IF_ERROR(db.CreateRangeIndex(index->table, index->column));
      } else {
        TXREP_RETURN_IF_ERROR(db.CreateHashIndex(index->table, index->column));
      }
      continue;
    }
    TXREP_ASSIGN_OR_RETURN(rel::Statement stmt, ToStatement(std::move(command)));
    if (in_block) {
      block.push_back(std::move(stmt));
    } else {
      TXREP_RETURN_IF_ERROR(run({stmt}));
    }
  }
  if (in_block) {
    return Status::InvalidArgument("script ended inside an open BEGIN block");
  }
  return result;
}

Result<rel::CommitInfo> ExecuteSqlTransaction(
    rel::Database& db, const std::vector<std::string_view>& statements) {
  std::vector<rel::Statement> stmts;
  stmts.reserve(statements.size());
  for (std::string_view text : statements) {
    TXREP_ASSIGN_OR_RETURN(ParsedCommand command, ParseCommand(text));
    TXREP_ASSIGN_OR_RETURN(rel::Statement stmt, ToStatement(std::move(command)));
    stmts.push_back(std::move(stmt));
  }
  return db.ExecuteTransaction(stmts);
}

}  // namespace txrep::sql
