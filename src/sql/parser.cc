#include "sql/parser.h"

#include <utility>

#include "sql/lexer.h"

namespace txrep::sql {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedCommand> ParseOne() {
    TXREP_ASSIGN_OR_RETURN(ParsedCommand cmd, ParseCommandInner());
    // Optional trailing semicolon, then end of input.
    if (Peek().IsSymbol(";")) Advance();
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input");
    }
    return cmd;
  }

  Result<std::vector<ParsedCommand>> ParseAll() {
    std::vector<ParsedCommand> commands;
    for (;;) {
      while (Peek().IsSymbol(";")) Advance();
      if (Peek().type == TokenType::kEnd) break;
      TXREP_ASSIGN_OR_RETURN(ParsedCommand cmd, ParseCommandInner());
      commands.push_back(std::move(cmd));
      if (Peek().IsSymbol(";")) {
        Advance();
      } else if (Peek().type != TokenType::kEnd) {
        return Error("expected ';' between statements");
      }
    }
    return commands;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t idx = pos_ + ahead;
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        "parse error at offset " + std::to_string(Peek().offset) + ": " + what +
        (Peek().type == TokenType::kEnd ? " (at end of input)"
                                        : " (near \"" + Peek().text + "\")"));
  }

  Status ExpectKeyword(std::string_view keyword) {
    if (!Peek().IsKeyword(keyword)) {
      return Error("expected " + std::string(keyword));
    }
    Advance();
    return Status::OK();
  }

  Status ExpectSymbol(std::string_view symbol) {
    if (!Peek().IsSymbol(symbol)) {
      return Error("expected '" + std::string(symbol) + "'");
    }
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected identifier");
    }
    return Advance().text;
  }

  Result<rel::Value> ParseLiteral() {
    bool negate = false;
    if (Peek().IsSymbol("-")) {
      negate = true;
      Advance();
    } else if (Peek().IsSymbol("+")) {
      Advance();
    }
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInteger: {
        int64_t v = Advance().int_value;
        return rel::Value::Int(negate ? -v : v);
      }
      case TokenType::kFloat: {
        double v = Advance().float_value;
        return rel::Value::Real(negate ? -v : v);
      }
      case TokenType::kString:
        if (negate) return Error("cannot negate a string literal");
        return rel::Value::Str(Advance().text);
      case TokenType::kIdentifier:
        if (t.IsKeyword("NULL")) {
          if (negate) return Error("cannot negate NULL");
          Advance();
          return rel::Value::Null();
        }
        return Error("expected literal");
      default:
        return Error("expected literal");
    }
  }

  Result<rel::ValueType> ParseColumnType() {
    TXREP_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    rel::ValueType type;
    Token dummy;
    dummy.type = TokenType::kIdentifier;
    dummy.text = name;
    if (dummy.IsKeyword("INT") || dummy.IsKeyword("BIGINT") ||
        dummy.IsKeyword("INTEGER")) {
      type = rel::ValueType::kInt64;
    } else if (dummy.IsKeyword("DOUBLE") || dummy.IsKeyword("FLOAT") ||
               dummy.IsKeyword("REAL")) {
      type = rel::ValueType::kDouble;
    } else if (dummy.IsKeyword("VARCHAR") || dummy.IsKeyword("STRING") ||
               dummy.IsKeyword("TEXT") || dummy.IsKeyword("CHAR")) {
      type = rel::ValueType::kString;
      // Optional length: VARCHAR(40) — parsed and ignored.
      if (Peek().IsSymbol("(")) {
        Advance();
        if (Peek().type != TokenType::kInteger) {
          return Error("expected length after VARCHAR(");
        }
        Advance();
        TXREP_RETURN_IF_ERROR(ExpectSymbol(")"));
      }
    } else {
      return Error("unknown column type \"" + name + "\"");
    }
    return type;
  }

  Result<ParsedCommand> ParseCreate() {
    TXREP_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    if (Peek().IsKeyword("TABLE")) {
      Advance();
      return ParseCreateTable();
    }
    bool range = false;
    if (Peek().IsKeyword("RANGE")) {
      range = true;
      Advance();
    }
    TXREP_RETURN_IF_ERROR(ExpectKeyword("INDEX"));
    TXREP_RETURN_IF_ERROR(ExpectKeyword("ON"));
    CreateIndexCommand cmd;
    cmd.range = range;
    TXREP_ASSIGN_OR_RETURN(cmd.table, ExpectIdentifier());
    TXREP_RETURN_IF_ERROR(ExpectSymbol("("));
    TXREP_ASSIGN_OR_RETURN(cmd.column, ExpectIdentifier());
    TXREP_RETURN_IF_ERROR(ExpectSymbol(")"));
    return ParsedCommand(std::move(cmd));
  }

  Result<ParsedCommand> ParseCreateTable() {
    TXREP_ASSIGN_OR_RETURN(std::string table, ExpectIdentifier());
    TXREP_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<rel::Column> columns;
    std::string pk_column;
    for (;;) {
      TXREP_ASSIGN_OR_RETURN(std::string col_name, ExpectIdentifier());
      TXREP_ASSIGN_OR_RETURN(rel::ValueType type, ParseColumnType());
      if (Peek().IsKeyword("PRIMARY")) {
        Advance();
        TXREP_RETURN_IF_ERROR(ExpectKeyword("KEY"));
        if (!pk_column.empty()) {
          return Error("multiple PRIMARY KEY columns");
        }
        pk_column = col_name;
      }
      columns.push_back(rel::Column{std::move(col_name), type});
      if (Peek().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    TXREP_RETURN_IF_ERROR(ExpectSymbol(")"));
    if (pk_column.empty()) {
      return Error("CREATE TABLE requires a PRIMARY KEY column");
    }
    TXREP_ASSIGN_OR_RETURN(
        rel::TableSchema schema,
        rel::TableSchema::Create(std::move(table), std::move(columns),
                                 std::move(pk_column)));
    return ParsedCommand(CreateTableCommand{std::move(schema)});
  }

  Result<std::vector<rel::Predicate>> ParseWhere() {
    std::vector<rel::Predicate> preds;
    if (!Peek().IsKeyword("WHERE")) return preds;
    Advance();
    for (;;) {
      rel::Predicate pred;
      TXREP_ASSIGN_OR_RETURN(pred.column, ExpectIdentifier());
      if (Peek().IsKeyword("BETWEEN")) {
        Advance();
        pred.op = rel::PredicateOp::kBetween;
        TXREP_ASSIGN_OR_RETURN(pred.operand, ParseLiteral());
        TXREP_RETURN_IF_ERROR(ExpectKeyword("AND"));
        TXREP_ASSIGN_OR_RETURN(pred.operand2, ParseLiteral());
      } else if (Peek().type == TokenType::kSymbol) {
        const std::string op = Advance().text;
        if (op == "=") {
          pred.op = rel::PredicateOp::kEq;
        } else if (op == "<") {
          pred.op = rel::PredicateOp::kLt;
        } else if (op == "<=") {
          pred.op = rel::PredicateOp::kLe;
        } else if (op == ">") {
          pred.op = rel::PredicateOp::kGt;
        } else if (op == ">=") {
          pred.op = rel::PredicateOp::kGe;
        } else {
          return Error("unknown comparison operator '" + op + "'");
        }
        TXREP_ASSIGN_OR_RETURN(pred.operand, ParseLiteral());
      } else {
        return Error("expected comparison operator");
      }
      preds.push_back(std::move(pred));
      if (Peek().IsKeyword("AND")) {
        Advance();
        continue;
      }
      break;
    }
    return preds;
  }

  Result<ParsedCommand> ParseInsert() {
    TXREP_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    TXREP_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    rel::InsertStatement stmt;
    TXREP_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    if (Peek().IsSymbol("(")) {
      Advance();
      for (;;) {
        TXREP_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        stmt.columns.push_back(std::move(col));
        if (Peek().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      TXREP_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    TXREP_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    TXREP_RETURN_IF_ERROR(ExpectSymbol("("));
    for (;;) {
      TXREP_ASSIGN_OR_RETURN(rel::Value v, ParseLiteral());
      stmt.values.push_back(std::move(v));
      if (Peek().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    TXREP_RETURN_IF_ERROR(ExpectSymbol(")"));
    return ParsedCommand(std::move(stmt));
  }

  Result<ParsedCommand> ParseUpdate() {
    TXREP_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
    rel::UpdateStatement stmt;
    TXREP_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    TXREP_RETURN_IF_ERROR(ExpectKeyword("SET"));
    for (;;) {
      TXREP_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      TXREP_RETURN_IF_ERROR(ExpectSymbol("="));
      TXREP_ASSIGN_OR_RETURN(rel::Value v, ParseLiteral());
      stmt.sets.emplace_back(std::move(col), std::move(v));
      if (Peek().IsSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    TXREP_ASSIGN_OR_RETURN(stmt.where, ParseWhere());
    return ParsedCommand(std::move(stmt));
  }

  Result<ParsedCommand> ParseDelete() {
    TXREP_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
    TXREP_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    rel::DeleteStatement stmt;
    TXREP_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    TXREP_ASSIGN_OR_RETURN(stmt.where, ParseWhere());
    return ParsedCommand(std::move(stmt));
  }

  /// Identifier that is an aggregate function name, or nullopt.
  static std::optional<rel::AggregateFn> AggregateFnFor(const Token& t) {
    if (t.IsKeyword("COUNT")) return rel::AggregateFn::kCount;
    if (t.IsKeyword("SUM")) return rel::AggregateFn::kSum;
    if (t.IsKeyword("MIN")) return rel::AggregateFn::kMin;
    if (t.IsKeyword("MAX")) return rel::AggregateFn::kMax;
    if (t.IsKeyword("AVG")) return rel::AggregateFn::kAvg;
    return std::nullopt;
  }

  Result<ParsedCommand> ParseSelect() {
    TXREP_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    rel::SelectStatement stmt;
    if (Peek().IsSymbol("*")) {
      Advance();
    } else {
      for (;;) {
        // Aggregate item? Identifier followed by '(' and a known fn name.
        std::optional<rel::AggregateFn> fn = AggregateFnFor(Peek());
        if (fn.has_value() && Peek(1).IsSymbol("(")) {
          Advance();  // fn name
          Advance();  // '('
          rel::AggregateItem item;
          item.fn = *fn;
          if (Peek().IsSymbol("*")) {
            if (item.fn != rel::AggregateFn::kCount) {
              return Error("only COUNT accepts *");
            }
            Advance();
          } else {
            TXREP_ASSIGN_OR_RETURN(item.column, ExpectIdentifier());
          }
          TXREP_RETURN_IF_ERROR(ExpectSymbol(")"));
          stmt.aggregates.push_back(std::move(item));
        } else {
          TXREP_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
          stmt.columns.push_back(std::move(col));
        }
        if (Peek().IsSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      if (!stmt.aggregates.empty() && !stmt.columns.empty()) {
        return Error("cannot mix aggregates and plain columns (no GROUP BY)");
      }
    }
    TXREP_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    TXREP_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier());
    TXREP_ASSIGN_OR_RETURN(stmt.where, ParseWhere());
    if (Peek().IsKeyword("ORDER")) {
      Advance();
      TXREP_RETURN_IF_ERROR(ExpectKeyword("BY"));
      rel::OrderBy order;
      TXREP_ASSIGN_OR_RETURN(order.column, ExpectIdentifier());
      if (Peek().IsKeyword("DESC")) {
        order.descending = true;
        Advance();
      } else if (Peek().IsKeyword("ASC")) {
        Advance();
      }
      stmt.order_by = std::move(order);
    }
    if (Peek().IsKeyword("LIMIT")) {
      Advance();
      if (Peek().type != TokenType::kInteger || Peek().int_value < 0) {
        return Error("LIMIT requires a non-negative integer");
      }
      stmt.limit = static_cast<size_t>(Advance().int_value);
    }
    return ParsedCommand(std::move(stmt));
  }

  Result<ParsedCommand> ParseCommandInner() {
    const Token& t = Peek();
    if (t.IsKeyword("CREATE")) return ParseCreate();
    if (t.IsKeyword("INSERT")) return ParseInsert();
    if (t.IsKeyword("UPDATE")) return ParseUpdate();
    if (t.IsKeyword("DELETE")) return ParseDelete();
    if (t.IsKeyword("SELECT")) return ParseSelect();
    if (t.IsKeyword("BEGIN")) {
      Advance();
      // Optional noise word: BEGIN TRANSACTION.
      if (Peek().IsKeyword("TRANSACTION")) Advance();
      return ParsedCommand(BeginCommand{});
    }
    if (t.IsKeyword("COMMIT")) {
      Advance();
      return ParsedCommand(CommitCommand{});
    }
    if (t.IsKeyword("ROLLBACK")) {
      Advance();
      return ParsedCommand(RollbackCommand{});
    }
    return Error(
        "expected CREATE, INSERT, UPDATE, DELETE, SELECT, BEGIN, COMMIT or "
        "ROLLBACK");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

bool IsDml(const ParsedCommand& command) {
  return std::holds_alternative<rel::InsertStatement>(command) ||
         std::holds_alternative<rel::UpdateStatement>(command) ||
         std::holds_alternative<rel::DeleteStatement>(command) ||
         std::holds_alternative<rel::SelectStatement>(command);
}

Result<rel::Statement> ToStatement(ParsedCommand command) {
  if (auto* insert = std::get_if<rel::InsertStatement>(&command)) {
    return rel::Statement(std::move(*insert));
  }
  if (auto* update = std::get_if<rel::UpdateStatement>(&command)) {
    return rel::Statement(std::move(*update));
  }
  if (auto* del = std::get_if<rel::DeleteStatement>(&command)) {
    return rel::Statement(std::move(*del));
  }
  if (auto* select = std::get_if<rel::SelectStatement>(&command)) {
    return rel::Statement(std::move(*select));
  }
  return Status::InvalidArgument("DDL command is not a DML statement");
}

Result<ParsedCommand> ParseCommand(std::string_view sql) {
  TXREP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser parser(std::move(tokens));
  return parser.ParseOne();
}

Result<std::vector<ParsedCommand>> ParseScript(std::string_view sql) {
  TXREP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser parser(std::move(tokens));
  return parser.ParseAll();
}

}  // namespace txrep::sql
