#ifndef TXREP_SQL_PARSER_H_
#define TXREP_SQL_PARSER_H_

#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/result.h"
#include "rel/schema.h"
#include "rel/statement.h"

namespace txrep::sql {

/// CREATE TABLE name (col TYPE [PRIMARY KEY], ...).
struct CreateTableCommand {
  rel::TableSchema schema;
};

/// CREATE [RANGE] INDEX ON table (column).
struct CreateIndexCommand {
  std::string table;
  std::string column;
  bool range = false;
};

/// BEGIN — opens an explicit transaction block in a script.
struct BeginCommand {};

/// COMMIT — atomically executes the open block.
struct CommitCommand {};

/// ROLLBACK — discards the open block without executing it.
struct RollbackCommand {};

/// Any parsed SQL command: a DML/query statement, a DDL command or a
/// transaction-control command.
using ParsedCommand =
    std::variant<rel::InsertStatement, rel::UpdateStatement,
                 rel::DeleteStatement, rel::SelectStatement,
                 CreateTableCommand, CreateIndexCommand, BeginCommand,
                 CommitCommand, RollbackCommand>;

/// True for the four DML/query alternatives.
bool IsDml(const ParsedCommand& command);

/// Converts a DML ParsedCommand into a rel::Statement;
/// InvalidArgument for DDL.
Result<rel::Statement> ToStatement(ParsedCommand command);

/// Parses exactly one command (a trailing ';' is allowed).
///
/// Grammar (case-insensitive keywords):
///   CREATE TABLE t (col TYPE [PRIMARY KEY] {, col TYPE [PRIMARY KEY]})
///   CREATE [RANGE] INDEX ON t (col)
///   INSERT INTO t [(cols)] VALUES (literal {, literal})
///   UPDATE t SET col = literal {, col = literal} [WHERE conjuncts]
///   DELETE FROM t [WHERE conjuncts]
///   SELECT select_list FROM t [WHERE conjuncts]
///          [ORDER BY col [ASC|DESC]] [LIMIT n]
///   select_list := * | col {, col} | agg {, agg}
///   agg       := (COUNT | SUM | MIN | MAX | AVG) ( col ) | COUNT(*)
///   conjuncts := pred {AND pred}
///   pred      := col (= | < | <= | > | >=) literal
///              | col BETWEEN literal AND literal
///   TYPE      := INT | BIGINT | DOUBLE | FLOAT | VARCHAR[(n)] | STRING | TEXT
///   literal   := [+|-] number | 'string' | NULL
Result<ParsedCommand> ParseCommand(std::string_view sql);

/// Parses a ';'-separated script into commands (empty statements skipped).
Result<std::vector<ParsedCommand>> ParseScript(std::string_view sql);

}  // namespace txrep::sql

#endif  // TXREP_SQL_PARSER_H_
