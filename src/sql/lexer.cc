#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

namespace txrep::sql {

bool Token::IsKeyword(std::string_view keyword) const {
  if (type != TokenType::kIdentifier) return false;
  if (text.size() != keyword.size()) return false;
  for (size_t i = 0; i < text.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(text[i])) !=
        std::toupper(static_cast<unsigned char>(keyword[i]))) {
      return false;
    }
  }
  return true;
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentBody(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Lex(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();

  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.offset = i;

    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentBody(sql[j])) ++j;
      token.type = TokenType::kIdentifier;
      token.text.assign(sql.substr(i, j - i));
      i = j;
      tokens.push_back(std::move(token));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      if (j < n && sql[j] == '.') {
        is_float = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      }
      if (j < n && (sql[j] == 'e' || sql[j] == 'E')) {
        size_t k = j + 1;
        if (k < n && (sql[k] == '+' || sql[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(sql[k]))) {
          is_float = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
        }
      }
      const std::string text(sql.substr(i, j - i));
      if (is_float) {
        token.type = TokenType::kFloat;
        token.float_value = std::strtod(text.c_str(), nullptr);
      } else {
        token.type = TokenType::kInteger;
        errno = 0;
        token.int_value = std::strtoll(text.c_str(), nullptr, 10);
        if (errno == ERANGE) {
          return Status::InvalidArgument("integer literal out of range at " +
                                         std::to_string(i));
        }
      }
      token.text = text;
      i = j;
      tokens.push_back(std::move(token));
      continue;
    }

    if (c == '\'') {
      std::string contents;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {  // Doubled quote escape.
            contents.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        contents.push_back(sql[j]);
        ++j;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at " +
                                       std::to_string(i));
      }
      token.type = TokenType::kString;
      token.text = std::move(contents);
      i = j;
      tokens.push_back(std::move(token));
      continue;
    }

    // Symbols.
    if (c == '<' || c == '>') {
      token.type = TokenType::kSymbol;
      if (i + 1 < n && sql[i + 1] == '=') {
        token.text = std::string(1, c) + "=";
        i += 2;
      } else {
        token.text = std::string(1, c);
        ++i;
      }
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '(' || c == ')' || c == ',' || c == ';' || c == '*' || c == '=' ||
        c == '-' || c == '+') {
      token.type = TokenType::kSymbol;
      token.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(token));
      continue;
    }

    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at offset " +
                                   std::to_string(i));
  }

  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace txrep::sql
