#ifndef TXREP_SQL_LEXER_H_
#define TXREP_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace txrep::sql {

/// Token categories produced by the lexer.
enum class TokenType : uint8_t {
  kIdentifier,  // Unquoted name (case-preserved; keyword check is separate).
  kInteger,     // 64-bit integer literal.
  kFloat,       // Double literal.
  kString,      // 'quoted' literal with '' escaping; text holds the content.
  kSymbol,      // Punctuation / operator; text holds it, e.g. "<=", "(", ",".
  kEnd,         // End of input.
};

/// One lexed token.
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     // Identifier name, symbol or string contents.
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t offset = 0;    // Byte offset in the input, for error messages.

  /// Case-insensitive keyword test for identifier tokens.
  bool IsKeyword(std::string_view keyword) const;

  /// Exact symbol test.
  bool IsSymbol(std::string_view symbol) const {
    return type == TokenType::kSymbol && text == symbol;
  }
};

/// Tokenizes `sql`. Supports identifiers ([A-Za-z_][A-Za-z0-9_]*), integer
/// and float literals (with optional sign handled by the parser), 'string'
/// literals with doubled-quote escaping, line comments (-- ...), and the
/// symbols ( ) , ; * = < <= > >= .
/// The returned vector always ends with a kEnd token.
Result<std::vector<Token>> Lex(std::string_view sql);

}  // namespace txrep::sql

#endif  // TXREP_SQL_LEXER_H_
