#ifndef TXREP_WORKLOAD_TPCW_H_
#define TXREP_WORKLOAD_TPCW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "rel/database.h"
#include "rel/statement.h"

namespace txrep::workload {

/// Scaled-down population of the paper's modified TPC-W schema (§4, Fig. 4 +
/// the two auxiliary shopping-cart tables of §6.1). The paper used 2,000,000
/// items and ~4M customers; we scale bulk down per the shared workload
/// conventions in DESIGN.md §15 (conflict behaviour and replay equivalence
/// depend on mix ratios, contended-row counts and access skew — all
/// preserved — not on table bulk). All counts configurable.
struct TpcwScale {
  int items = 1000;
  int customers = 1000;
  int authors = 100;
  int addresses = 2000;  // ~2 per customer.
  int countries = 92;
  int initial_orders = 300;
  int max_order_lines = 3;
  int shopping_carts = 200;
};

/// The three TPC-W interaction mixes (paper §6.1): percentage of write
/// transactions.
enum class TpcwMix {
  kBrowsing,  //  5% writes.
  kShopping,  // 20% writes.
  kOrdering,  // 50% writes.
};

/// 0.05 / 0.20 / 0.50.
double WriteFraction(TpcwMix mix);

/// "Browsing", "Shopping" or "Ordering".
const char* TpcwMixName(TpcwMix mix);

/// Generates the TPC-W-lite schema, initial population and transaction
/// stream. Deterministic given the seed.
class TpcwWorkload {
 public:
  /// One emulated browser interaction. Write transactions carry the DB-side
  /// statements (whose log the replica replays); read transactions carry the
  /// SELECT to run as an interleaved read-only transaction on the replica.
  struct TxnSpec {
    bool is_write = false;
    std::vector<rel::Statement> statements;  // For write transactions.
    rel::SelectStatement read_query;         // For read-only transactions.
  };

  explicit TpcwWorkload(TpcwScale scale = {}, uint64_t seed = 7);

  /// Creates the ten tables plus the secondary indexes (hash indexes on
  /// frequently equality-queried attributes; a range index on ITEM.I_COST —
  /// the paper's running example).
  Status CreateSchema(rel::Database& db);

  /// Loads the initial rows. Call once, after CreateSchema.
  Status Populate(rel::Database& db);

  /// Next interaction of the given mix.
  TxnSpec NextTransaction(TpcwMix mix);

  /// Next write transaction (ignoring the mix ratio) — used by benches that
  /// need a pure update stream.
  TxnSpec NextWriteTransaction();

  const TpcwScale& scale() const { return scale_; }

 private:
  // Write interaction bodies.
  TxnSpec NewOrderTxn();
  TxnSpec PaymentTxn();
  TxnSpec CartUpdateTxn();
  TxnSpec PriceChangeTxn();  // Admin repricing: exercises the range index.
  // Read interaction bodies.
  TxnSpec ProductDetailTxn();
  TxnSpec OrdersByCustomerTxn();
  TxnSpec ItemsByCostRangeTxn();
  TxnSpec CustomerByUnameTxn();

  TpcwScale scale_;
  Random rng_;
  // Id allocators continue past the initial population.
  int64_t next_order_id_;
  int64_t next_order_line_id_;
  int64_t next_credit_info_id_;
  int64_t next_cart_line_id_;
};

}  // namespace txrep::workload

#endif  // TXREP_WORKLOAD_TPCW_H_
