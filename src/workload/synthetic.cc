#include "workload/synthetic.h"

namespace txrep::workload {

SyntheticWorkload::SyntheticWorkload(SyntheticOptions options)
    : options_(options), rng_(options.seed) {}

Status SyntheticWorkload::CreateSchema(rel::Database& db) {
  TXREP_ASSIGN_OR_RETURN(
      rel::TableSchema schema,
      rel::TableSchema::Create("QTY_ITEM",
                               {{"I_ID", rel::ValueType::kInt64},
                                {"I_QTY", rel::ValueType::kInt64}},
                               "I_ID"));
  return db.CreateTable(std::move(schema));
}

Status SyntheticWorkload::Populate(rel::Database& db) {
  std::vector<rel::Statement> batch;
  for (int i = 1; i <= options_.num_items; ++i) {
    batch.push_back(rel::InsertStatement{
        "QTY_ITEM", {}, {rel::Value::Int(i), rel::Value::Int(100)}});
    if (batch.size() == 500 || i == options_.num_items) {
      TXREP_ASSIGN_OR_RETURN(rel::CommitInfo info,
                             db.ExecuteTransaction(batch));
      (void)info;
      batch.clear();
    }
  }
  return Status::OK();
}

rel::Statement SyntheticWorkload::NextUpdate() {
  const int64_t id = 1 + static_cast<int64_t>(rng_.Uniform(
                             static_cast<uint64_t>(options_.hot_range)));
  const int64_t qty = static_cast<int64_t>(rng_.Uniform(1000));
  return rel::UpdateStatement{
      "QTY_ITEM",
      {{"I_QTY", rel::Value::Int(qty)}},
      {rel::Predicate{"I_ID", rel::PredicateOp::kEq, rel::Value::Int(id), {}}}};
}

Status SyntheticWorkload::Run(rel::Database& db, int count) {
  for (int i = 0; i < count; ++i) {
    TXREP_ASSIGN_OR_RETURN(rel::CommitInfo info,
                           db.ExecuteTransaction({NextUpdate()}));
    (void)info;
  }
  return Status::OK();
}

}  // namespace txrep::workload
