#include "workload/tpcw.h"

#include <utility>

namespace txrep::workload {

namespace {

using rel::Column;
using rel::DeleteStatement;
using rel::InsertStatement;
using rel::Predicate;
using rel::PredicateOp;
using rel::Row;
using rel::SelectStatement;
using rel::Statement;
using rel::TableSchema;
using rel::UpdateStatement;
using rel::Value;
using rel::ValueType;

Result<TableSchema> Schema(const char* name, std::vector<Column> columns,
                           const char* pk) {
  return TableSchema::Create(name, std::move(columns), pk);
}

Predicate Eq(std::string column, Value v) {
  return Predicate{std::move(column), PredicateOp::kEq, std::move(v), {}};
}

}  // namespace

double WriteFraction(TpcwMix mix) {
  switch (mix) {
    case TpcwMix::kBrowsing:
      return 0.05;
    case TpcwMix::kShopping:
      return 0.20;
    case TpcwMix::kOrdering:
      return 0.50;
  }
  return 0.0;
}

const char* TpcwMixName(TpcwMix mix) {
  switch (mix) {
    case TpcwMix::kBrowsing:
      return "Browsing";
    case TpcwMix::kShopping:
      return "Shopping";
    case TpcwMix::kOrdering:
      return "Ordering";
  }
  return "?";
}

TpcwWorkload::TpcwWorkload(TpcwScale scale, uint64_t seed)
    : scale_(scale),
      rng_(seed),
      next_order_id_(scale.initial_orders + 1),
      next_order_line_id_(
          static_cast<int64_t>(scale.initial_orders) * scale.max_order_lines +
          1),
      next_credit_info_id_(scale.initial_orders + 1),
      next_cart_line_id_(static_cast<int64_t>(scale.shopping_carts) *
                             scale.max_order_lines +
                         1) {}

Status TpcwWorkload::CreateSchema(rel::Database& db) {
  TXREP_ASSIGN_OR_RETURN(
      TableSchema country,
      Schema("COUNTRY",
             {{"CO_ID", ValueType::kInt64}, {"CO_NAME", ValueType::kString}},
             "CO_ID"));
  TXREP_RETURN_IF_ERROR(db.CreateTable(std::move(country)));

  TXREP_ASSIGN_OR_RETURN(
      TableSchema author,
      Schema("AUTHOR",
             {{"A_ID", ValueType::kInt64},
              {"A_FNAME", ValueType::kString},
              {"A_LNAME", ValueType::kString}},
             "A_ID"));
  TXREP_RETURN_IF_ERROR(db.CreateTable(std::move(author)));

  TXREP_ASSIGN_OR_RETURN(
      TableSchema address,
      Schema("ADDRESS",
             {{"ADDR_ID", ValueType::kInt64},
              {"ADDR_STREET", ValueType::kString},
              {"ADDR_CITY", ValueType::kString},
              {"ADDR_CO_ID", ValueType::kInt64}},
             "ADDR_ID"));
  TXREP_RETURN_IF_ERROR(db.CreateTable(std::move(address)));

  TXREP_ASSIGN_OR_RETURN(
      TableSchema customer,
      Schema("CUSTOMER",
             {{"C_ID", ValueType::kInt64},
              {"C_UNAME", ValueType::kString},
              {"C_FNAME", ValueType::kString},
              {"C_LNAME", ValueType::kString},
              {"C_ADDR_ID", ValueType::kInt64},
              {"C_BALANCE", ValueType::kDouble}},
             "C_ID"));
  TXREP_RETURN_IF_ERROR(db.CreateTable(std::move(customer)));

  TXREP_ASSIGN_OR_RETURN(
      TableSchema item,
      Schema("ITEM",
             {{"I_ID", ValueType::kInt64},
              {"I_TITLE", ValueType::kString},
              {"I_A_ID", ValueType::kInt64},
              {"I_COST", ValueType::kDouble},
              {"I_STOCK", ValueType::kInt64}},
             "I_ID"));
  TXREP_RETURN_IF_ERROR(db.CreateTable(std::move(item)));

  TXREP_ASSIGN_OR_RETURN(
      TableSchema orders,
      Schema("ORDERS",
             {{"O_ID", ValueType::kInt64},
              {"O_C_ID", ValueType::kInt64},
              {"O_TOTAL", ValueType::kDouble},
              {"O_STATUS", ValueType::kString}},
             "O_ID"));
  TXREP_RETURN_IF_ERROR(db.CreateTable(std::move(orders)));

  TXREP_ASSIGN_OR_RETURN(
      TableSchema order_line,
      Schema("ORDER_LINE",
             {{"OL_ID", ValueType::kInt64},
              {"OL_O_ID", ValueType::kInt64},
              {"OL_I_ID", ValueType::kInt64},
              {"OL_QTY", ValueType::kInt64}},
             "OL_ID"));
  TXREP_RETURN_IF_ERROR(db.CreateTable(std::move(order_line)));

  TXREP_ASSIGN_OR_RETURN(
      TableSchema credit_info,
      Schema("CREDIT_INFO",
             {{"CI_ID", ValueType::kInt64},
              {"CI_C_ID", ValueType::kInt64},
              {"CI_AMOUNT", ValueType::kDouble}},
             "CI_ID"));
  TXREP_RETURN_IF_ERROR(db.CreateTable(std::move(credit_info)));

  TXREP_ASSIGN_OR_RETURN(
      TableSchema cart,
      Schema("SHOPPING_CART",
             {{"SC_ID", ValueType::kInt64}, {"SC_C_ID", ValueType::kInt64}},
             "SC_ID"));
  TXREP_RETURN_IF_ERROR(db.CreateTable(std::move(cart)));

  TXREP_ASSIGN_OR_RETURN(
      TableSchema cart_line,
      Schema("SHOPPING_CART_LINE",
             {{"SCL_ID", ValueType::kInt64},
              {"SCL_SC_ID", ValueType::kInt64},
              {"SCL_I_ID", ValueType::kInt64},
              {"SCL_QTY", ValueType::kInt64}},
             "SCL_ID"));
  TXREP_RETURN_IF_ERROR(db.CreateTable(std::move(cart_line)));

  // Secondary indexes: equality paths used by the read mix...
  TXREP_RETURN_IF_ERROR(db.CreateHashIndex("CUSTOMER", "C_UNAME"));
  TXREP_RETURN_IF_ERROR(db.CreateHashIndex("ORDERS", "O_C_ID"));
  TXREP_RETURN_IF_ERROR(db.CreateHashIndex("ORDER_LINE", "OL_O_ID"));
  TXREP_RETURN_IF_ERROR(db.CreateHashIndex("SHOPPING_CART_LINE", "SCL_SC_ID"));
  TXREP_RETURN_IF_ERROR(db.CreateHashIndex("ITEM", "I_A_ID"));
  // ...and the paper's running example: cost access via hash (Fig. 7) and
  // range queries via the B-link tree (§4.2).
  TXREP_RETURN_IF_ERROR(db.CreateRangeIndex("ITEM", "I_COST"));
  return Status::OK();
}

Status TpcwWorkload::Populate(rel::Database& db) {
  std::vector<Statement> batch;
  auto flush = [&]() -> Status {
    if (batch.empty()) return Status::OK();
    TXREP_ASSIGN_OR_RETURN(rel::CommitInfo info, db.ExecuteTransaction(batch));
    (void)info;
    batch.clear();
    return Status::OK();
  };
  auto add = [&](InsertStatement stmt) -> Status {
    batch.push_back(std::move(stmt));
    if (batch.size() >= 200) return flush();
    return Status::OK();
  };

  for (int i = 1; i <= scale_.countries; ++i) {
    TXREP_RETURN_IF_ERROR(add(InsertStatement{
        "COUNTRY", {}, {Value::Int(i), Value::Str("Country" +
                                                  std::to_string(i))}}));
  }
  for (int i = 1; i <= scale_.authors; ++i) {
    TXREP_RETURN_IF_ERROR(add(InsertStatement{
        "AUTHOR",
        {},
        {Value::Int(i), Value::Str("First" + std::to_string(i)),
         Value::Str("Last" + std::to_string(i))}}));
  }
  for (int i = 1; i <= scale_.addresses; ++i) {
    TXREP_RETURN_IF_ERROR(add(InsertStatement{
        "ADDRESS",
        {},
        {Value::Int(i), Value::Str(rng_.NextString(12)),
         Value::Str("City" + std::to_string(1 + rng_.Uniform(50))),
         Value::Int(1 + static_cast<int64_t>(
                            rng_.Uniform(scale_.countries)))}}));
  }
  for (int i = 1; i <= scale_.customers; ++i) {
    TXREP_RETURN_IF_ERROR(add(InsertStatement{
        "CUSTOMER",
        {},
        {Value::Int(i), Value::Str("user" + std::to_string(i)),
         Value::Str(rng_.NextString(8)), Value::Str(rng_.NextString(10)),
         Value::Int(1 + static_cast<int64_t>(rng_.Uniform(scale_.addresses))),
         Value::Real(0.0)}}));
  }
  for (int i = 1; i <= scale_.items; ++i) {
    TXREP_RETURN_IF_ERROR(add(InsertStatement{
        "ITEM",
        {},
        {Value::Int(i), Value::Str("Item" + std::to_string(i)),
         Value::Int(1 + static_cast<int64_t>(rng_.Uniform(scale_.authors))),
         Value::Real(1.0 + static_cast<double>(rng_.Uniform(9900)) / 100.0),
         Value::Int(static_cast<int64_t>(10 + rng_.Uniform(90)))}}));
  }
  int64_t ol_id = 1;
  for (int i = 1; i <= scale_.initial_orders; ++i) {
    const int64_t c_id =
        1 + static_cast<int64_t>(rng_.Uniform(scale_.customers));
    TXREP_RETURN_IF_ERROR(add(InsertStatement{
        "ORDERS",
        {},
        {Value::Int(i), Value::Int(c_id),
         Value::Real(static_cast<double>(rng_.Uniform(50000)) / 100.0),
         Value::Str("SHIPPED")}}));
    const int lines = 1 + static_cast<int>(rng_.Uniform(scale_.max_order_lines));
    for (int l = 0; l < lines; ++l) {
      TXREP_RETURN_IF_ERROR(add(InsertStatement{
          "ORDER_LINE",
          {},
          {Value::Int(ol_id++), Value::Int(i),
           Value::Int(1 + static_cast<int64_t>(rng_.Uniform(scale_.items))),
           Value::Int(1 + static_cast<int64_t>(rng_.Uniform(5)))}}));
    }
    TXREP_RETURN_IF_ERROR(add(InsertStatement{
        "CREDIT_INFO",
        {},
        {Value::Int(i), Value::Int(c_id),
         Value::Real(static_cast<double>(rng_.Uniform(50000)) / 100.0)}}));
  }
  next_order_line_id_ = ol_id;
  for (int i = 1; i <= scale_.shopping_carts; ++i) {
    TXREP_RETURN_IF_ERROR(add(InsertStatement{
        "SHOPPING_CART",
        {},
        {Value::Int(i),
         Value::Int(1 + static_cast<int64_t>(rng_.Uniform(scale_.customers)))}}));
  }
  return flush();
}

TpcwWorkload::TxnSpec TpcwWorkload::NewOrderTxn() {
  TxnSpec spec;
  spec.is_write = true;
  const int64_t o_id = next_order_id_++;
  const int64_t c_id = 1 + static_cast<int64_t>(rng_.Uniform(scale_.customers));
  const int lines = 1 + static_cast<int>(rng_.Uniform(scale_.max_order_lines));
  double total = 0.0;
  std::vector<Statement> stmts;
  for (int l = 0; l < lines; ++l) {
    const int64_t i_id = 1 + static_cast<int64_t>(rng_.Uniform(scale_.items));
    const int64_t qty = 1 + static_cast<int64_t>(rng_.Uniform(5));
    total += static_cast<double>(qty);
    stmts.push_back(InsertStatement{
        "ORDER_LINE",
        {},
        {Value::Int(next_order_line_id_++), Value::Int(o_id), Value::Int(i_id),
         Value::Int(qty)}});
    // Decrement stock: the log carries the after-image, so pick a fresh
    // value deterministically (the DB executes SET to a constant).
    stmts.push_back(UpdateStatement{
        "ITEM",
        {{"I_STOCK", Value::Int(static_cast<int64_t>(10 + rng_.Uniform(90)))}},
        {Eq("I_ID", Value::Int(i_id))}});
  }
  stmts.insert(stmts.begin(),
               InsertStatement{"ORDERS",
                               {},
                               {Value::Int(o_id), Value::Int(c_id),
                                Value::Real(total), Value::Str("PENDING")}});
  spec.statements = std::move(stmts);
  return spec;
}

TpcwWorkload::TxnSpec TpcwWorkload::PaymentTxn() {
  TxnSpec spec;
  spec.is_write = true;
  const int64_t c_id = 1 + static_cast<int64_t>(rng_.Uniform(scale_.customers));
  const double amount = static_cast<double>(rng_.Uniform(20000)) / 100.0;
  spec.statements.push_back(UpdateStatement{
      "CUSTOMER",
      {{"C_BALANCE", Value::Real(amount)}},
      {Eq("C_ID", Value::Int(c_id))}});
  spec.statements.push_back(InsertStatement{
      "CREDIT_INFO",
      {},
      {Value::Int(next_credit_info_id_++), Value::Int(c_id),
       Value::Real(amount)}});
  return spec;
}

TpcwWorkload::TxnSpec TpcwWorkload::CartUpdateTxn() {
  TxnSpec spec;
  spec.is_write = true;
  const int64_t sc_id =
      1 + static_cast<int64_t>(rng_.Uniform(scale_.shopping_carts));
  const int64_t i_id = 1 + static_cast<int64_t>(rng_.Uniform(scale_.items));
  spec.statements.push_back(InsertStatement{
      "SHOPPING_CART_LINE",
      {},
      {Value::Int(next_cart_line_id_++), Value::Int(sc_id), Value::Int(i_id),
       Value::Int(1 + static_cast<int64_t>(rng_.Uniform(5)))}});
  return spec;
}

TpcwWorkload::TxnSpec TpcwWorkload::ProductDetailTxn() {
  TxnSpec spec;
  spec.read_query = SelectStatement{
      "ITEM",
      {},
      {Eq("I_ID",
          Value::Int(1 + static_cast<int64_t>(rng_.Uniform(scale_.items))))}};
  return spec;
}

TpcwWorkload::TxnSpec TpcwWorkload::OrdersByCustomerTxn() {
  TxnSpec spec;
  spec.read_query = SelectStatement{
      "ORDERS",
      {},
      {Eq("O_C_ID", Value::Int(1 + static_cast<int64_t>(
                                       rng_.Uniform(scale_.customers))))}};
  return spec;
}

TpcwWorkload::TxnSpec TpcwWorkload::ItemsByCostRangeTxn() {
  TxnSpec spec;
  const double lo = static_cast<double>(rng_.Uniform(9000)) / 100.0;
  spec.read_query = SelectStatement{
      "ITEM",
      {},
      {Predicate{"I_COST", PredicateOp::kBetween, Value::Real(lo),
                 Value::Real(lo + 5.0)}}};
  return spec;
}

TpcwWorkload::TxnSpec TpcwWorkload::CustomerByUnameTxn() {
  TxnSpec spec;
  spec.read_query = SelectStatement{
      "CUSTOMER",
      {},
      {Eq("C_UNAME",
          Value::Str("user" + std::to_string(
                                  1 + rng_.Uniform(scale_.customers))))}};
  return spec;
}

TpcwWorkload::TxnSpec TpcwWorkload::PriceChangeTxn() {
  TxnSpec spec;
  spec.is_write = true;
  const int64_t i_id = 1 + static_cast<int64_t>(rng_.Uniform(scale_.items));
  // Repricing moves the item inside the I_COST hash + B-link indexes.
  spec.statements.push_back(UpdateStatement{
      "ITEM",
      {{"I_COST", Value::Real(1.0 + static_cast<double>(rng_.Uniform(9900)) /
                                        100.0)}},
      {Eq("I_ID", Value::Int(i_id))}});
  return spec;
}

TpcwWorkload::TxnSpec TpcwWorkload::NextWriteTransaction() {
  const uint64_t pick = rng_.Uniform(100);
  if (pick < 50) return NewOrderTxn();
  if (pick < 75) return PaymentTxn();
  if (pick < 90) return CartUpdateTxn();
  return PriceChangeTxn();
}

TpcwWorkload::TxnSpec TpcwWorkload::NextTransaction(TpcwMix mix) {
  if (rng_.Bernoulli(WriteFraction(mix))) {
    return NextWriteTransaction();
  }
  const uint64_t pick = rng_.Uniform(100);
  if (pick < 40) return ProductDetailTxn();
  if (pick < 65) return OrdersByCustomerTxn();
  if (pick < 85) return CustomerByUnameTxn();
  return ItemsByCostRangeTxn();
}

}  // namespace txrep::workload
