#include "workload/tpcc.h"

#include <utility>

namespace txrep::workload {

namespace {

using rel::Column;
using rel::InsertStatement;
using rel::Predicate;
using rel::PredicateOp;
using rel::SelectStatement;
using rel::Statement;
using rel::TableSchema;
using rel::UpdateStatement;
using rel::Value;
using rel::ValueType;

Result<TableSchema> Schema(const char* name, std::vector<Column> columns,
                           const char* pk) {
  return TableSchema::Create(name, std::move(columns), pk);
}

Predicate Eq(std::string column, Value v) {
  return Predicate{std::move(column), PredicateOp::kEq, std::move(v), {}};
}

/// Price / amount values round to cents so double after-images compare
/// exactly across replays.
double Cents(uint64_t cents) { return static_cast<double>(cents) / 100.0; }

}  // namespace

const char* TpccTxnTypeName(TpccTxnType type) {
  switch (type) {
    case TpccTxnType::kNewOrder:
      return "NewOrder";
    case TpccTxnType::kPayment:
      return "Payment";
    case TpccTxnType::kOrderStatus:
      return "OrderStatus";
    case TpccTxnType::kStockLevel:
      return "StockLevel";
  }
  return "?";
}

TpccWorkload::TpccWorkload(TpccOptions options)
    : options_(options),
      rng_(options.seed),
      warehouse_zipf_(
          static_cast<uint64_t>(options.scale.warehouses),
          options.warehouse_zipf_theta > 0.0 ? options.warehouse_zipf_theta
                                             : 0.5,
          options.seed ^ 0x21bfc0de5a1f0c11ULL) {
  const TpccScale& s = options_.scale;
  districts_.resize(static_cast<size_t>(s.warehouses) *
                    s.districts_per_warehouse);
  for (DistrictState& d : districts_) {
    d.next_o_id = s.initial_orders_per_district + 1;
  }
  customers_.resize(districts_.size() *
                    static_cast<size_t>(s.customers_per_district));
  stock_.resize(static_cast<size_t>(s.warehouses) * s.items);
  warehouse_ytd_.assign(static_cast<size_t>(s.warehouses), 0.0);
  // Item prices and initial stock levels come from a dedicated stream so the
  // population is fixed by the seed regardless of how the instance is used.
  Random init_rng(options_.seed ^ 0x7bcc141700a3b5e7ULL);
  item_price_.resize(static_cast<size_t>(s.items) + 1);
  for (int i = 1; i <= s.items; ++i) {
    item_price_[static_cast<size_t>(i)] = Cents(100 + init_rng.Uniform(9900));
  }
  for (StockState& st : stock_) {
    st.quantity = 10 + static_cast<int64_t>(init_rng.Uniform(91));
  }
  next_history_id_ = static_cast<int64_t>(customers_.size()) + 1;
}

size_t TpccWorkload::DistrictIndex(int64_t w, int64_t d) const {
  return static_cast<size_t>((w - 1) * options_.scale.districts_per_warehouse +
                             (d - 1));
}

size_t TpccWorkload::CustomerIndex(int64_t w, int64_t d, int64_t c) const {
  return DistrictIndex(w, d) *
             static_cast<size_t>(options_.scale.customers_per_district) +
         static_cast<size_t>(c - 1);
}

size_t TpccWorkload::StockIndex(int64_t w, int64_t i) const {
  return static_cast<size_t>((w - 1) * options_.scale.items + (i - 1));
}

int64_t TpccWorkload::next_o_id(int64_t w, int64_t d) const {
  return districts_[DistrictIndex(w, d)].next_o_id;
}

Status TpccWorkload::CreateSchema(rel::Database& db) {
  TXREP_ASSIGN_OR_RETURN(
      TableSchema warehouse,
      Schema("WAREHOUSE",
             {{"W_ID", ValueType::kInt64},
              {"W_NAME", ValueType::kString},
              {"W_YTD", ValueType::kDouble}},
             "W_ID"));
  TXREP_RETURN_IF_ERROR(db.CreateTable(std::move(warehouse)));

  TXREP_ASSIGN_OR_RETURN(
      TableSchema district,
      Schema("DISTRICT",
             {{"D_KEY", ValueType::kInt64},
              {"D_W_ID", ValueType::kInt64},
              {"D_ID", ValueType::kInt64},
              {"D_NEXT_O_ID", ValueType::kInt64},
              {"D_YTD", ValueType::kDouble}},
             "D_KEY"));
  TXREP_RETURN_IF_ERROR(db.CreateTable(std::move(district)));

  TXREP_ASSIGN_OR_RETURN(
      TableSchema customer,
      Schema("CUSTOMER",
             {{"C_KEY", ValueType::kInt64},
              {"C_D_KEY", ValueType::kInt64},
              {"C_ID", ValueType::kInt64},
              {"C_NAME", ValueType::kString},
              {"C_BALANCE", ValueType::kDouble},
              {"C_YTD_PAYMENT", ValueType::kDouble},
              {"C_PAYMENT_CNT", ValueType::kInt64}},
             "C_KEY"));
  TXREP_RETURN_IF_ERROR(db.CreateTable(std::move(customer)));

  TXREP_ASSIGN_OR_RETURN(
      TableSchema item,
      Schema("ITEM",
             {{"I_ID", ValueType::kInt64},
              {"I_NAME", ValueType::kString},
              {"I_PRICE", ValueType::kDouble}},
             "I_ID"));
  TXREP_RETURN_IF_ERROR(db.CreateTable(std::move(item)));

  TXREP_ASSIGN_OR_RETURN(
      TableSchema stock,
      Schema("STOCK",
             {{"S_KEY", ValueType::kInt64},
              {"S_W_ID", ValueType::kInt64},
              {"S_I_ID", ValueType::kInt64},
              {"S_QUANTITY", ValueType::kInt64},
              {"S_YTD", ValueType::kInt64},
              {"S_ORDER_CNT", ValueType::kInt64}},
             "S_KEY"));
  TXREP_RETURN_IF_ERROR(db.CreateTable(std::move(stock)));

  TXREP_ASSIGN_OR_RETURN(
      TableSchema orders,
      Schema("ORDERS",
             {{"O_KEY", ValueType::kInt64},
              {"O_D_KEY", ValueType::kInt64},
              {"O_C_KEY", ValueType::kInt64},
              {"O_OL_CNT", ValueType::kInt64},
              {"O_TOTAL", ValueType::kDouble}},
             "O_KEY"));
  TXREP_RETURN_IF_ERROR(db.CreateTable(std::move(orders)));

  TXREP_ASSIGN_OR_RETURN(
      TableSchema order_line,
      Schema("ORDER_LINE",
             {{"OL_KEY", ValueType::kInt64},
              {"OL_O_KEY", ValueType::kInt64},
              {"OL_I_ID", ValueType::kInt64},
              {"OL_SUPPLY_W_ID", ValueType::kInt64},
              {"OL_QTY", ValueType::kInt64},
              {"OL_AMOUNT", ValueType::kDouble}},
             "OL_KEY"));
  TXREP_RETURN_IF_ERROR(db.CreateTable(std::move(order_line)));

  TXREP_ASSIGN_OR_RETURN(
      TableSchema new_order,
      Schema("NEW_ORDER",
             {{"NO_O_KEY", ValueType::kInt64}, {"NO_D_KEY", ValueType::kInt64}},
             "NO_O_KEY"));
  TXREP_RETURN_IF_ERROR(db.CreateTable(std::move(new_order)));

  TXREP_ASSIGN_OR_RETURN(
      TableSchema history,
      Schema("HISTORY",
             {{"H_ID", ValueType::kInt64},
              {"H_C_KEY", ValueType::kInt64},
              {"H_D_KEY", ValueType::kInt64},
              {"H_AMOUNT", ValueType::kDouble}},
             "H_ID"));
  TXREP_RETURN_IF_ERROR(db.CreateTable(std::move(history)));

  // Equality paths of the read mix...
  TXREP_RETURN_IF_ERROR(db.CreateHashIndex("ORDERS", "O_C_KEY"));
  TXREP_RETURN_IF_ERROR(db.CreateHashIndex("ORDER_LINE", "OL_O_KEY"));
  TXREP_RETURN_IF_ERROR(db.CreateHashIndex("NEW_ORDER", "NO_D_KEY"));
  // ...and the range paths: S_QUANTITY is rewritten by every NewOrder line,
  // so the replica's B-link tree churns under exactly the contention the
  // stock-level query scans through; I_PRICE is a static catalog range.
  TXREP_RETURN_IF_ERROR(db.CreateRangeIndex("STOCK", "S_QUANTITY"));
  TXREP_RETURN_IF_ERROR(db.CreateRangeIndex("ITEM", "I_PRICE"));
  return Status::OK();
}

Status TpccWorkload::Populate(rel::Database& db) {
  const TpccScale& s = options_.scale;
  std::vector<Statement> batch;
  auto flush = [&]() -> Status {
    if (batch.empty()) return Status::OK();
    TXREP_RETURN_IF_ERROR(db.ExecuteTransaction(batch).status());
    batch.clear();
    return Status::OK();
  };
  auto add = [&](InsertStatement stmt) -> Status {
    batch.push_back(std::move(stmt));
    if (batch.size() >= 200) return flush();
    return Status::OK();
  };

  for (int64_t w = 1; w <= s.warehouses; ++w) {
    TXREP_RETURN_IF_ERROR(add(InsertStatement{
        "WAREHOUSE",
        {},
        {Value::Int(w), Value::Str("Warehouse" + std::to_string(w)),
         Value::Real(0.0)}}));
  }
  for (int64_t w = 1; w <= s.warehouses; ++w) {
    for (int64_t d = 1; d <= s.districts_per_warehouse; ++d) {
      TXREP_RETURN_IF_ERROR(add(InsertStatement{
          "DISTRICT",
          {},
          {Value::Int(DistrictKey(w, d)), Value::Int(w), Value::Int(d),
           Value::Int(s.initial_orders_per_district + 1), Value::Real(0.0)}}));
    }
  }
  for (int64_t w = 1; w <= s.warehouses; ++w) {
    for (int64_t d = 1; d <= s.districts_per_warehouse; ++d) {
      for (int64_t c = 1; c <= s.customers_per_district; ++c) {
        TXREP_RETURN_IF_ERROR(add(InsertStatement{
            "CUSTOMER",
            {},
            {Value::Int(CustomerKey(w, d, c)), Value::Int(DistrictKey(w, d)),
             Value::Int(c), Value::Str(rng_.NextString(10)), Value::Real(0.0),
             Value::Real(0.0), Value::Int(0)}}));
      }
    }
  }
  for (int64_t i = 1; i <= s.items; ++i) {
    TXREP_RETURN_IF_ERROR(add(InsertStatement{
        "ITEM",
        {},
        {Value::Int(i), Value::Str("Item" + std::to_string(i)),
         Value::Real(item_price_[static_cast<size_t>(i)])}}));
  }
  for (int64_t w = 1; w <= s.warehouses; ++w) {
    for (int64_t i = 1; i <= s.items; ++i) {
      const StockState& st = stock_[StockIndex(w, i)];
      TXREP_RETURN_IF_ERROR(add(InsertStatement{
          "STOCK",
          {},
          {Value::Int(StockKey(w, i)), Value::Int(w), Value::Int(i),
           Value::Int(st.quantity), Value::Int(0), Value::Int(0)}}));
    }
  }
  // Initial order history: orders 1..initial per district, the newest third
  // still queued in NEW_ORDER (the TPC-C "undelivered" tail). Historical
  // orders do not touch STOCK — only live NewOrders move the tracked state.
  for (int64_t w = 1; w <= s.warehouses; ++w) {
    for (int64_t d = 1; d <= s.districts_per_warehouse; ++d) {
      for (int64_t o = 1; o <= s.initial_orders_per_district; ++o) {
        const int64_t c =
            1 + static_cast<int64_t>(rng_.Uniform(
                    static_cast<uint64_t>(s.customers_per_district)));
        const int64_t lines =
            1 + static_cast<int64_t>(
                    rng_.Uniform(static_cast<uint64_t>(s.max_order_lines)));
        double total = 0.0;
        std::vector<InsertStatement> line_stmts;
        for (int64_t l = 1; l <= lines; ++l) {
          const int64_t i =
              1 + static_cast<int64_t>(
                      rng_.Uniform(static_cast<uint64_t>(s.items)));
          const int64_t qty = 1 + static_cast<int64_t>(rng_.Uniform(10));
          const double amount =
              static_cast<double>(qty) * item_price_[static_cast<size_t>(i)];
          total += amount;
          line_stmts.push_back(InsertStatement{
              "ORDER_LINE",
              {},
              {Value::Int(OrderLineKey(w, d, o, l)),
               Value::Int(OrderKey(w, d, o)), Value::Int(i), Value::Int(w),
               Value::Int(qty), Value::Real(amount)}});
        }
        TXREP_RETURN_IF_ERROR(add(InsertStatement{
            "ORDERS",
            {},
            {Value::Int(OrderKey(w, d, o)), Value::Int(DistrictKey(w, d)),
             Value::Int(CustomerKey(w, d, c)), Value::Int(lines),
             Value::Real(total)}}));
        for (InsertStatement& stmt : line_stmts) {
          TXREP_RETURN_IF_ERROR(add(std::move(stmt)));
        }
        if (o > (2 * s.initial_orders_per_district) / 3) {
          TXREP_RETURN_IF_ERROR(add(InsertStatement{
              "NEW_ORDER",
              {},
              {Value::Int(OrderKey(w, d, o)),
               Value::Int(DistrictKey(w, d))}}));
        }
      }
    }
  }
  // One seed HISTORY row per customer (ids 1..customers; the generator's
  // allocator continues past them).
  int64_t h_id = 1;
  for (int64_t w = 1; w <= s.warehouses; ++w) {
    for (int64_t d = 1; d <= s.districts_per_warehouse; ++d) {
      for (int64_t c = 1; c <= s.customers_per_district; ++c) {
        TXREP_RETURN_IF_ERROR(add(InsertStatement{
            "HISTORY",
            {},
            {Value::Int(h_id++), Value::Int(CustomerKey(w, d, c)),
             Value::Int(DistrictKey(w, d)), Value::Real(10.0)}}));
      }
    }
  }
  return flush();
}

int64_t TpccWorkload::PickWarehouse() {
  if (options_.warehouse_zipf_theta > 0.0) {
    // Rank 0 of the Zipf stream is the hottest -> warehouse 1.
    return 1 + static_cast<int64_t>(warehouse_zipf_.Next());
  }
  return 1 + static_cast<int64_t>(
                 rng_.Uniform(static_cast<uint64_t>(options_.scale.warehouses)));
}

TpccWorkload::TxnSpec TpccWorkload::NewOrderTxn() {
  const TpccScale& s = options_.scale;
  TxnSpec spec;
  spec.type = TpccTxnType::kNewOrder;
  spec.is_write = true;

  const int64_t w = PickWarehouse();
  const int64_t d =
      1 + static_cast<int64_t>(
              rng_.Uniform(static_cast<uint64_t>(s.districts_per_warehouse)));
  const int64_t c =
      1 + static_cast<int64_t>(
              rng_.Uniform(static_cast<uint64_t>(s.customers_per_district)));
  DistrictState& district = districts_[DistrictIndex(w, d)];
  const int64_t o = district.next_o_id++;
  const int64_t ol_cnt =
      1 + static_cast<int64_t>(
              rng_.Uniform(static_cast<uint64_t>(s.max_order_lines)));

  // Build the order lines first (the ORDERS row needs the total).
  double total = 0.0;
  std::vector<Statement> line_stmts;
  for (int64_t l = 1; l <= ol_cnt; ++l) {
    const int64_t i = 1 + static_cast<int64_t>(
                              rng_.Uniform(static_cast<uint64_t>(s.items)));
    // TPC-C's remote order line: ~1% of lines are supplied by another
    // warehouse (cross-warehouse conflict edge). Scaled up by default here.
    int64_t supply_w = w;
    if (s.warehouses > 1 && rng_.Bernoulli(options_.remote_line_fraction)) {
      supply_w = 1 + static_cast<int64_t>(rng_.Uniform(
                         static_cast<uint64_t>(s.warehouses - 1)));
      if (supply_w >= w) ++supply_w;
    }
    const int64_t qty = 1 + static_cast<int64_t>(rng_.Uniform(10));
    const double amount =
        static_cast<double>(qty) * item_price_[static_cast<size_t>(i)];
    total += amount;
    // TPC-C stock rule: restock by 91 when the decrement would drop the
    // level below 10. Tracked here so the UPDATE ships the after-image.
    StockState& stock = stock_[StockIndex(supply_w, i)];
    if (stock.quantity - qty >= 10) {
      stock.quantity -= qty;
    } else {
      stock.quantity += 91 - qty;
    }
    stock.ytd += qty;
    stock.order_cnt += 1;
    line_stmts.push_back(InsertStatement{
        "ORDER_LINE",
        {},
        {Value::Int(OrderLineKey(w, d, o, l)), Value::Int(OrderKey(w, d, o)),
         Value::Int(i), Value::Int(supply_w), Value::Int(qty),
         Value::Real(amount)}});
    line_stmts.push_back(UpdateStatement{
        "STOCK",
        {{"S_QUANTITY", Value::Int(stock.quantity)},
         {"S_YTD", Value::Int(stock.ytd)},
         {"S_ORDER_CNT", Value::Int(stock.order_cnt)}},
        {Eq("S_KEY", Value::Int(StockKey(supply_w, i)))}});
  }

  // The contended counter first: every NewOrder in this district rewrites
  // the same DISTRICT row, which is what serializes the order-id sequence.
  spec.statements.push_back(UpdateStatement{
      "DISTRICT",
      {{"D_NEXT_O_ID", Value::Int(district.next_o_id)}},
      {Eq("D_KEY", Value::Int(DistrictKey(w, d)))}});
  spec.statements.push_back(InsertStatement{
      "ORDERS",
      {},
      {Value::Int(OrderKey(w, d, o)), Value::Int(DistrictKey(w, d)),
       Value::Int(CustomerKey(w, d, c)), Value::Int(ol_cnt),
       Value::Real(total)}});
  spec.statements.push_back(InsertStatement{
      "NEW_ORDER",
      {},
      {Value::Int(OrderKey(w, d, o)), Value::Int(DistrictKey(w, d))}});
  for (Statement& stmt : line_stmts) {
    spec.statements.push_back(std::move(stmt));
  }
  return spec;
}

TpccWorkload::TxnSpec TpccWorkload::PaymentTxn() {
  const TpccScale& s = options_.scale;
  TxnSpec spec;
  spec.type = TpccTxnType::kPayment;
  spec.is_write = true;

  const int64_t w = PickWarehouse();
  const int64_t d =
      1 + static_cast<int64_t>(
              rng_.Uniform(static_cast<uint64_t>(s.districts_per_warehouse)));
  const int64_t c =
      1 + static_cast<int64_t>(
              rng_.Uniform(static_cast<uint64_t>(s.customers_per_district)));
  const double amount = Cents(100 + rng_.Uniform(499900));

  warehouse_ytd_[static_cast<size_t>(w - 1)] += amount;
  DistrictState& district = districts_[DistrictIndex(w, d)];
  district.ytd += amount;
  CustomerState& customer = customers_[CustomerIndex(w, d, c)];
  customer.balance -= amount;
  customer.ytd_payment += amount;
  customer.payment_cnt += 1;

  spec.statements.push_back(UpdateStatement{
      "WAREHOUSE",
      {{"W_YTD", Value::Real(warehouse_ytd_[static_cast<size_t>(w - 1)])}},
      {Eq("W_ID", Value::Int(w))}});
  spec.statements.push_back(UpdateStatement{
      "DISTRICT",
      {{"D_YTD", Value::Real(district.ytd)}},
      {Eq("D_KEY", Value::Int(DistrictKey(w, d)))}});
  spec.statements.push_back(UpdateStatement{
      "CUSTOMER",
      {{"C_BALANCE", Value::Real(customer.balance)},
       {"C_YTD_PAYMENT", Value::Real(customer.ytd_payment)},
       {"C_PAYMENT_CNT", Value::Int(customer.payment_cnt)}},
      {Eq("C_KEY", Value::Int(CustomerKey(w, d, c)))}});
  spec.statements.push_back(InsertStatement{
      "HISTORY",
      {},
      {Value::Int(next_history_id_++), Value::Int(CustomerKey(w, d, c)),
       Value::Int(DistrictKey(w, d)), Value::Real(amount)}});
  return spec;
}

TpccWorkload::TxnSpec TpccWorkload::OrderStatusTxn() {
  const TpccScale& s = options_.scale;
  TxnSpec spec;
  spec.type = TpccTxnType::kOrderStatus;
  const int64_t w = PickWarehouse();
  const int64_t d =
      1 + static_cast<int64_t>(
              rng_.Uniform(static_cast<uint64_t>(s.districts_per_warehouse)));
  const int64_t c =
      1 + static_cast<int64_t>(
              rng_.Uniform(static_cast<uint64_t>(s.customers_per_district)));
  spec.read_query = SelectStatement{
      "ORDERS", {}, {Eq("O_C_KEY", Value::Int(CustomerKey(w, d, c)))}};
  return spec;
}

TpccWorkload::TxnSpec TpccWorkload::StockLevelTxn() {
  TxnSpec spec;
  spec.type = TpccTxnType::kStockLevel;
  // Lite stock-level: range-scan the stock below a random threshold (the
  // real query counts distinct below-threshold items of a district's recent
  // orders; the replica-side work — a B-link range scan over a churning
  // index — is the same).
  const int64_t threshold = 10 + static_cast<int64_t>(rng_.Uniform(11));
  spec.read_query = SelectStatement{
      "STOCK",
      {},
      {Predicate{"S_QUANTITY", PredicateOp::kBetween, Value::Int(0),
                 Value::Int(threshold)}}};
  return spec;
}

double TpccWorkload::WriteFraction() const {
  const TpccMixWeights& m = options_.mix;
  const int total = m.new_order + m.payment + m.order_status + m.stock_level;
  if (total <= 0) return 0.0;
  return static_cast<double>(m.new_order + m.payment) /
         static_cast<double>(total);
}

TpccWorkload::TxnSpec TpccWorkload::NextWriteTransaction() {
  const TpccMixWeights& m = options_.mix;
  const int writes = m.new_order + m.payment;
  if (writes <= 0) return NewOrderTxn();
  const uint64_t pick = rng_.Uniform(static_cast<uint64_t>(writes));
  if (pick < static_cast<uint64_t>(m.new_order)) return NewOrderTxn();
  return PaymentTxn();
}

TpccWorkload::TxnSpec TpccWorkload::NextTransaction() {
  const TpccMixWeights& m = options_.mix;
  const int total = m.new_order + m.payment + m.order_status + m.stock_level;
  if (total <= 0) return NewOrderTxn();
  const uint64_t pick = rng_.Uniform(static_cast<uint64_t>(total));
  if (pick < static_cast<uint64_t>(m.new_order)) return NewOrderTxn();
  if (pick < static_cast<uint64_t>(m.new_order + m.payment)) {
    return PaymentTxn();
  }
  if (pick <
      static_cast<uint64_t>(m.new_order + m.payment + m.order_status)) {
    return OrderStatusTxn();
  }
  return StockLevelTxn();
}

Status TpccWorkload::RunWrites(rel::Database& db, int count) {
  for (int t = 0; t < count; ++t) {
    TxnSpec spec = NextWriteTransaction();
    TXREP_RETURN_IF_ERROR(db.ExecuteTransaction(spec.statements).status());
  }
  return Status::OK();
}

}  // namespace txrep::workload
