#include "workload/loadgen.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <sstream>
#include <utility>

#include "common/clock.h"
#include "obs/names.h"

namespace txrep::workload {

double ArrivalSchedule::RateAt(const LoadGenOptions& options,
                               int64_t offset_micros) {
  double rate = options.base_rate_per_sec;
  for (const RateStep& step : options.rate_steps) {
    if (step.at_micros > offset_micros) break;
    rate = step.rate_per_sec;
  }
  return rate;
}

ArrivalSchedule::ArrivalSchedule(const LoadGenOptions& options) {
  Random rng(options.seed);
  int64_t t = 0;
  while (t < options.duration_micros) {
    const double rate = RateAt(options, t);
    if (rate <= 0.0) {
      // Dead air: jump to the next step that turns traffic back on.
      int64_t next = options.duration_micros;
      for (const RateStep& step : options.rate_steps) {
        if (step.at_micros > t && step.rate_per_sec > 0.0) {
          next = step.at_micros;
          break;
        }
      }
      t = next;
      continue;
    }
    const double mean_gap_micros = 1e6 / rate;
    double gap = mean_gap_micros;
    if (options.poisson) {
      // Inverse-CDF exponential. 1 - NextDouble() is in (0, 1], so the log
      // argument never hits zero.
      gap = -std::log(1.0 - rng.NextDouble()) * mean_gap_micros;
    }
    t += static_cast<int64_t>(gap) + 1;  // +1 keeps offsets advancing.
    if (t >= options.duration_micros) break;
    offsets_.push_back(t);
  }
}

std::string LoadReport::ToString() const {
  std::ostringstream os;
  os << "arrivals=" << arrivals << " submitted=" << submitted
     << " shed=" << shed << " submit_failures=" << submit_failures
     << " applied=" << applied << " peak_backlog=" << peak_backlog
     << " drained=" << (drained ? "yes" : "no")
     << " drain_ms=" << drain_micros / 1000
     << " offered/s=" << static_cast<int64_t>(offered_rate_per_sec)
     << " achieved/s=" << static_cast<int64_t>(achieved_rate_per_sec)
     << " lag_p50_us=" << static_cast<int64_t>(lag.p50)
     << " lag_p99_us=" << static_cast<int64_t>(lag.p99)
     << " lag_max_us=" << lag.max
     << " slip_p99_us=" << static_cast<int64_t>(sched_slip.p99);
  return os.str();
}

OpenLoopRunner::OpenLoopRunner(LoadGenOptions options,
                               obs::MetricsRegistry* metrics,
                               trace::SloWatchdog* watchdog)
    : options_(std::move(options)), metrics_(metrics), watchdog_(watchdog) {}

LoadReport OpenLoopRunner::Run(const Hooks& hooks) {
  const ArrivalSchedule schedule(options_);
  LoadReport report;

  obs::Counter* c_arrivals =
      metrics_ ? metrics_->GetCounter(obs::kLoadgenArrivals) : nullptr;
  obs::Counter* c_shed =
      metrics_ ? metrics_->GetCounter(obs::kLoadgenShed) : nullptr;
  obs::Counter* c_failures =
      metrics_ ? metrics_->GetCounter(obs::kLoadgenSubmitFailures) : nullptr;
  Histogram* h_lag =
      metrics_ ? metrics_->GetHistogram(obs::kLoadgenLag) : nullptr;
  Histogram* h_slip =
      metrics_ ? metrics_->GetHistogram(obs::kLoadgenSchedSlip) : nullptr;
  obs::Gauge* g_backlog =
      metrics_ ? metrics_->GetGauge(obs::kLoadgenBacklog) : nullptr;

  Histogram lag_hist;
  Histogram slip_hist;
  std::deque<Outstanding> outstanding;

  const int64_t start = NowMicros();
  auto poll_completions = [&]() {
    if (outstanding.empty()) return;
    const uint64_t applied = hooks.applied_lsn();
    const int64_t now = NowMicros();
    while (!outstanding.empty() && outstanding.front().lsn <= applied) {
      const int64_t lag = now - outstanding.front().submit_micros;
      lag_hist.Record(lag);
      if (h_lag != nullptr) h_lag->Record(lag);
      if (watchdog_ != nullptr) watchdog_->ObserveLag(lag);
      ++report.applied;
      outstanding.pop_front();
    }
    if (g_backlog != nullptr) {
      g_backlog->Set(static_cast<int64_t>(outstanding.size()));
    }
  };

  for (const int64_t offset : schedule.offsets()) {
    // Open loop: pace to the scheduled arrival, polling completions while
    // waiting — never waiting on them.
    const int64_t due = start + offset;
    while (true) {
      const int64_t now = NowMicros();
      if (now >= due) break;
      poll_completions();
      SleepForMicros(std::min<int64_t>(200, due - NowMicros()));
    }
    ++report.arrivals;
    if (c_arrivals != nullptr) c_arrivals->Increment();

    if (static_cast<int64_t>(outstanding.size()) >= options_.max_backlog) {
      ++report.shed;
      if (c_shed != nullptr) c_shed->Increment();
      continue;
    }
    const int64_t submit_time = NowMicros();
    const int64_t slip = submit_time - due;
    slip_hist.Record(slip);
    if (h_slip != nullptr) h_slip->Record(slip);

    Result<uint64_t> lsn = hooks.submit();
    if (!lsn.ok()) {
      ++report.submit_failures;
      if (c_failures != nullptr) c_failures->Increment();
      continue;
    }
    ++report.submitted;
    if (*lsn > 0) {
      outstanding.push_back(Outstanding{*lsn, submit_time});
    }
    report.peak_backlog = std::max(
        report.peak_backlog, static_cast<int64_t>(outstanding.size()));
    poll_completions();
  }

  // Drain: the window is over; give the replica drain_timeout to absorb the
  // backlog. Under sustained overload this is where the debt is visible.
  const int64_t drain_start = NowMicros();
  while (!outstanding.empty() &&
         NowMicros() - drain_start < options_.drain_timeout_micros) {
    poll_completions();
    if (outstanding.empty()) break;
    SleepForMicros(200);
  }
  poll_completions();
  const int64_t end = NowMicros();

  report.drained = outstanding.empty();
  report.drain_micros = end - drain_start;
  report.wall_micros = end - start;
  report.lag = lag_hist.Snapshot();
  report.sched_slip = slip_hist.Snapshot();
  if (options_.duration_micros > 0) {
    report.offered_rate_per_sec = static_cast<double>(report.arrivals) * 1e6 /
                                  static_cast<double>(options_.duration_micros);
  }
  if (report.wall_micros > 0) {
    report.achieved_rate_per_sec = static_cast<double>(report.applied) * 1e6 /
                                   static_cast<double>(report.wall_micros);
  }
  return report;
}

LoadScenario SteadyScenario() {
  LoadScenario s;
  s.name = "steady";
  s.description = "uniform warehouses, constant offered rate";
  s.tpcc.seed = 101;
  s.load.seed = 102;
  s.load.base_rate_per_sec = 2000.0;
  s.load.duration_micros = 1'000'000;
  return s;
}

LoadScenario HotWarehouseScenario() {
  LoadScenario s;
  s.name = "hot_warehouse";
  s.description =
      "Zipf(0.9) warehouse skew: one hot storefront concentrates the "
      "district-counter conflict classes";
  s.tpcc.seed = 201;
  s.tpcc.scale.warehouses = 4;
  s.tpcc.warehouse_zipf_theta = 0.9;
  s.load.seed = 202;
  s.load.base_rate_per_sec = 2000.0;
  s.load.duration_micros = 1'000'000;
  return s;
}

LoadScenario FlashCrowdScenario() {
  LoadScenario s;
  s.name = "flash_crowd";
  s.description = "4x rate step for the middle third of the window";
  s.tpcc.seed = 301;
  s.load.seed = 302;
  s.load.base_rate_per_sec = 1000.0;
  s.load.duration_micros = 1'500'000;
  s.load.rate_steps = {{500'000, 4000.0}, {1'000'000, 1000.0}};
  return s;
}

LoadScenario SustainedOverloadScenario(double rate_per_sec) {
  LoadScenario s;
  s.name = "sustained_overload";
  s.description =
      "offered rate held past apply capacity for the whole window; lag and "
      "SLO burn measure the growing debt";
  s.tpcc.seed = 401;
  s.load.seed = 402;
  s.load.base_rate_per_sec = rate_per_sec;
  s.load.duration_micros = 2'000'000;
  s.load.drain_timeout_micros = 30'000'000;
  return s;
}

std::vector<LoadScenario> StandardScenarios() {
  return {SteadyScenario(), HotWarehouseScenario(), FlashCrowdScenario()};
}

}  // namespace txrep::workload
