#ifndef TXREP_WORKLOAD_SYNTHETIC_H_
#define TXREP_WORKLOAD_SYNTHETIC_H_

#include <cstdint>

#include "common/random.h"
#include "common/status.h"
#include "rel/database.h"
#include "rel/statement.h"

namespace txrep::workload {

/// The paper's synthetic conflict workload (§6.1): "each transaction has
/// only one update statement where we update the quantity of an item ... We
/// control the probability of conflict with selecting the item id value from
/// a predefined range. The smaller the selection range, the higher the
/// probability of conflict."
struct SyntheticOptions {
  /// Total items in the table.
  int num_items = 2000;

  /// Updates pick ids uniformly from [1, hot_range]; hot_range == num_items
  /// means conflict-minimal, hot_range == 1 maximal.
  int hot_range = 2000;

  uint64_t seed = 11;
};

/// Generator for the synthetic workload. The table deliberately has no
/// secondary indexes so that transactions share keys *only* through the row
/// objects — the conflict count is then controlled purely by `hot_range`.
class SyntheticWorkload {
 public:
  explicit SyntheticWorkload(SyntheticOptions options = {});

  /// Creates the QTY_ITEM table.
  Status CreateSchema(rel::Database& db);

  /// Inserts the `num_items` rows.
  Status Populate(rel::Database& db);

  /// One single-update transaction on a random item in the hot range.
  rel::Statement NextUpdate();

  /// Runs `count` update transactions against `db` (each its own commit).
  Status Run(rel::Database& db, int count);

  const SyntheticOptions& options() const { return options_; }

 private:
  SyntheticOptions options_;
  Random rng_;
};

}  // namespace txrep::workload

#endif  // TXREP_WORKLOAD_SYNTHETIC_H_
