#ifndef TXREP_WORKLOAD_TPCC_H_
#define TXREP_WORKLOAD_TPCC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "rel/database.h"
#include "rel/statement.h"

namespace txrep::workload {

/// Scaled-down TPC-C population (shared workload conventions: DESIGN.md §15).
/// The real benchmark uses 10 districts/warehouse, 3,000 customers/district
/// and 100,000 items; conflict behavior depends on the *ratio* of transaction
/// rate to contended counters (one next_o_id per district), not on bulk, so
/// the defaults keep benches fast while preserving the contention shape.
/// All counts configurable.
struct TpccScale {
  int warehouses = 2;
  int districts_per_warehouse = 4;    // TPC-C: 10.
  int customers_per_district = 30;    // TPC-C: 3000.
  int items = 100;                    // TPC-C: 100,000.
  int initial_orders_per_district = 5;
  int max_order_lines = 5;            // TPC-C: 5-15 per order.
};

/// Relative transaction weights (TPC-C §5.2.3 deck: 45/43/4/4/4; Delivery is
/// folded out, its share split across the two read-only transactions).
struct TpccMixWeights {
  int new_order = 45;
  int payment = 43;
  int order_status = 6;   // Read-only.
  int stock_level = 6;    // Read-only.
};

struct TpccOptions {
  TpccScale scale;
  TpccMixWeights mix;
  uint64_t seed = 7;

  /// 0 = warehouses picked uniformly. In (0, 1): Zipf skew over warehouses —
  /// warehouse 1 is the hottest — modeling a flash crowd on one storefront.
  double warehouse_zipf_theta = 0.0;

  /// Probability that an order line is supplied by a *remote* warehouse
  /// (TPC-C: 1%). Higher by default so cross-warehouse stock conflicts show
  /// up at lite scale; ignored with a single warehouse.
  double remote_line_fraction = 0.1;
};

/// The four transaction types of the lite mix.
enum class TpccTxnType {
  kNewOrder,
  kPayment,
  kOrderStatus,  // Read-only.
  kStockLevel,   // Read-only.
};

/// "NewOrder", "Payment", "OrderStatus" or "StockLevel".
const char* TpccTxnTypeName(TpccTxnType type);

/// Generates the TPC-C-lite schema, initial population and transaction
/// stream. Deterministic given the seed: the generator mirrors the database
/// state it mutates (district counters, warehouse/customer balances, stock
/// levels), so every UPDATE ships a constant after-image and the statement
/// stream is byte-identical across runs of the same seed.
///
/// What this adds over TPC-W-lite: cross-table multi-statement writes
/// (NewOrder touches DISTRICT + ORDERS + NEW_ORDER + ORDER_LINE + STOCK in
/// one commit) and *contended counters* — every NewOrder in a district
/// read-modify-writes that district's next_o_id row, and every Payment in a
/// warehouse its W_YTD row — the access pattern that stresses Algorithm 1's
/// conflict classes hardest.
class TpccWorkload {
 public:
  /// One generated transaction. Write transactions carry DB-side statements
  /// (whose log the replica replays); read-only transactions carry the
  /// SELECT to run as an interleaved read-only transaction on the replica.
  struct TxnSpec {
    TpccTxnType type = TpccTxnType::kNewOrder;
    bool is_write = false;
    std::vector<rel::Statement> statements;  // For write transactions.
    rel::SelectStatement read_query;         // For read-only transactions.
  };

  explicit TpccWorkload(TpccOptions options = {});

  /// Composite-key packing: the relational layer has single-column integer
  /// primary keys, so TPC-C's (w, d, ...) keys pack into one int64 with
  /// fixed radixes. Bounds: d < 100, c < 100,000, i < 1,000,000 and
  /// o < 10,000,000 per district.
  static int64_t DistrictKey(int64_t w, int64_t d) { return w * 100 + d; }
  static int64_t CustomerKey(int64_t w, int64_t d, int64_t c) {
    return DistrictKey(w, d) * 100000 + c;
  }
  static int64_t StockKey(int64_t w, int64_t i) { return w * 1000000 + i; }
  static int64_t OrderKey(int64_t w, int64_t d, int64_t o) {
    return DistrictKey(w, d) * 10000000 + o;
  }
  static int64_t OrderLineKey(int64_t w, int64_t d, int64_t o, int64_t l) {
    return OrderKey(w, d, o) * 100 + l;
  }

  /// Creates the nine tables plus secondary indexes: hash indexes on the
  /// equality paths of the read mix (orders by customer, lines by order,
  /// new-order queue by district) and range indexes on STOCK.S_QUANTITY
  /// (churned by every NewOrder — B-link maintenance under contention) and
  /// the static ITEM.I_PRICE catalog.
  Status CreateSchema(rel::Database& db);

  /// Loads the initial rows. Call once, after CreateSchema.
  Status Populate(rel::Database& db);

  /// Next transaction of the configured mix.
  TxnSpec NextTransaction();

  /// Next write transaction (NewOrder/Payment by their relative weights,
  /// ignoring the read share) — for pure update streams.
  TxnSpec NextWriteTransaction();

  /// Executes `count` write transactions against `db`, one commit each.
  Status RunWrites(rel::Database& db, int count);

  /// Fraction of write transactions in the configured mix.
  double WriteFraction() const;

  const TpccScale& scale() const { return options_.scale; }
  const TpccOptions& options() const { return options_; }

  /// Next order id the given district will assign (tests assert the
  /// contended counter advances exactly once per NewOrder).
  int64_t next_o_id(int64_t w, int64_t d) const;

 private:
  // Tracked per-row mirrors of the database state, so updates emit constant
  // after-images (the log ships after-images, not deltas).
  struct DistrictState {
    int64_t next_o_id = 1;
    double ytd = 0.0;
  };
  struct CustomerState {
    double balance = 0.0;
    double ytd_payment = 0.0;
    int64_t payment_cnt = 0;
  };
  struct StockState {
    int64_t quantity = 0;
    int64_t ytd = 0;
    int64_t order_cnt = 0;
  };

  TxnSpec NewOrderTxn();
  TxnSpec PaymentTxn();
  TxnSpec OrderStatusTxn();
  TxnSpec StockLevelTxn();

  /// Warehouse pick: uniform, or Zipf-skewed when warehouse_zipf_theta > 0.
  int64_t PickWarehouse();

  size_t DistrictIndex(int64_t w, int64_t d) const;
  size_t CustomerIndex(int64_t w, int64_t d, int64_t c) const;
  size_t StockIndex(int64_t w, int64_t i) const;

  TpccOptions options_;
  Random rng_;
  /// Skewed warehouse stream (own internal RNG; constructed from the seed).
  ZipfGenerator warehouse_zipf_;

  std::vector<DistrictState> districts_;
  std::vector<CustomerState> customers_;
  std::vector<StockState> stock_;
  std::vector<double> warehouse_ytd_;
  std::vector<double> item_price_;
  int64_t next_history_id_;
};

}  // namespace txrep::workload

#endif  // TXREP_WORKLOAD_TPCC_H_
