#ifndef TXREP_WORKLOAD_LOADGEN_H_
#define TXREP_WORKLOAD_LOADGEN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "common/result.h"
#include "obs/metrics.h"
#include "trace/slo.h"
#include "workload/tpcc.h"

namespace txrep::workload {

/// One step of the offered-rate staircase: from `at_micros` (offset from run
/// start) onward, arrivals are generated at `rate_per_sec`.
struct RateStep {
  int64_t at_micros = 0;
  double rate_per_sec = 0.0;
};

struct LoadGenOptions {
  /// Offered arrival rate before the first RateStep kicks in.
  double base_rate_per_sec = 2000.0;

  /// Length of the arrival window. Arrivals stop here; the runner then
  /// drains the backlog.
  int64_t duration_micros = 1'000'000;

  /// Rate staircase (sorted by at_micros; empty = constant base rate).
  /// A flash crowd is one upward step; overload is a step past capacity.
  std::vector<RateStep> rate_steps;

  /// Seed for the inter-arrival stream. Same seed + same knobs => the same
  /// arrival offsets, byte for byte.
  uint64_t seed = 11;

  /// true: Poisson process (exponential inter-arrival times) — bursty, the
  /// open-system model. false: evenly paced arrivals at the offered rate.
  bool poisson = true;

  /// How long Run() waits after the last arrival for the replica to apply
  /// the backlog before giving up.
  int64_t drain_timeout_micros = 10'000'000;

  /// Submission stops (arrivals are counted as shed) while the backlog of
  /// submitted-but-not-applied transactions is at or above this. Keeps a
  /// sustained-overload run from growing the pipeline queues without bound.
  int64_t max_backlog = 100'000;
};

/// Deterministic open-loop arrival schedule: the offsets (µs from run start)
/// at which transactions arrive, fixed entirely by LoadGenOptions. Built
/// up-front so a run's offered load is reproducible and rate steps land at
/// exactly the configured offsets regardless of service rate.
class ArrivalSchedule {
 public:
  explicit ArrivalSchedule(const LoadGenOptions& options);

  /// Arrival offsets in µs from run start, strictly non-decreasing.
  const std::vector<int64_t>& offsets() const { return offsets_; }

  /// Configured offered rate in force at `offset_micros`.
  static double RateAt(const LoadGenOptions& options, int64_t offset_micros);

 private:
  std::vector<int64_t> offsets_;
};

/// Outcome of one open-loop run.
struct LoadReport {
  int64_t arrivals = 0;         // Scheduled arrivals inside the window.
  int64_t submitted = 0;        // Write transactions committed on the DB.
  int64_t shed = 0;             // Arrivals dropped at the backlog cap.
  int64_t submit_failures = 0;  // ExecuteTransaction errors.
  int64_t applied = 0;          // Confirmed applied on the replica.
  int64_t peak_backlog = 0;     // Max submitted-but-not-applied depth.
  bool drained = false;         // Replica caught up within the timeout.
  int64_t drain_micros = 0;     // Time from last arrival to caught-up.
  int64_t wall_micros = 0;      // Full run wall time incl. drain.

  /// DB commit -> replica applied, per transaction (µs).
  HistogramSnapshot lag;
  /// Actual submit time minus scheduled arrival offset (µs): how far the
  /// single-threaded submitter slipped behind the open-loop clock.
  HistogramSnapshot sched_slip;

  double offered_rate_per_sec = 0.0;   // arrivals / window.
  double achieved_rate_per_sec = 0.0;  // applied / wall time.

  std::string ToString() const;
};

/// Open-loop load runner: walks an ArrivalSchedule in real time, submitting
/// one write transaction per arrival through the `submit` hook and polling
/// the `applied_lsn` hook for replica progress. Arrival times never wait for
/// service completion — when the replica can't keep up, the backlog (and the
/// measured lag) grows, which is exactly the regime closed-loop benches
/// cannot produce.
///
/// Single-threaded by design: the submitter interleaves pacing, submission
/// and completion polling on one thread, so the generator needs no locks and
/// the hooks are called from one thread only.
class OpenLoopRunner {
 public:
  struct Hooks {
    /// Commits one write transaction on the database; returns its log LSN
    /// (0 = the transaction had no replicated effect).
    std::function<Result<uint64_t>()> submit;

    /// Highest LSN fully applied on the replica.
    std::function<uint64_t()> applied_lsn;
  };

  /// `metrics` and `watchdog` are optional; when set, the runner publishes
  /// txrep_loadgen_* instruments and feeds per-transaction lag into the SLO
  /// watchdog as it confirms applies.
  OpenLoopRunner(LoadGenOptions options, obs::MetricsRegistry* metrics = nullptr,
                 trace::SloWatchdog* watchdog = nullptr);

  /// Runs the schedule to completion (arrival window + drain). Blocking.
  LoadReport Run(const Hooks& hooks);

  const LoadGenOptions& options() const { return options_; }

 private:
  struct Outstanding {
    uint64_t lsn = 0;
    int64_t submit_micros = 0;
  };

  LoadGenOptions options_;
  obs::MetricsRegistry* metrics_ = nullptr;
  trace::SloWatchdog* watchdog_ = nullptr;
};

/// A named TPC-C-lite traffic scenario: workload shape + offered load.
/// The scenario library is the adversarial-traffic vocabulary shared by
/// benches and EXPERIMENTS.md (DESIGN.md §15).
struct LoadScenario {
  std::string name;
  std::string description;
  TpccOptions tpcc;
  LoadGenOptions load;
};

/// Uniform warehouses, steady offered rate at roughly half of a small
/// deployment's capacity.
LoadScenario SteadyScenario();

/// Zipf-skewed warehouse pick (theta 0.9): one hot storefront absorbs most
/// of the traffic, concentrating the district counters' conflict classes.
LoadScenario HotWarehouseScenario();

/// Rate staircase: steady base load, then a 4x step for the middle third of
/// the window, then back — the flash-crowd shape.
LoadScenario FlashCrowdScenario();

/// Offered rate deliberately past apply capacity for the whole window;
/// measures how replica lag and the SLO burn rate grow under sustained
/// overload. `rate_per_sec` should be chosen above measured capacity.
LoadScenario SustainedOverloadScenario(double rate_per_sec);

/// The fixed sweep benches iterate: steady, hot-warehouse, flash-crowd.
std::vector<LoadScenario> StandardScenarios();

}  // namespace txrep::workload

#endif  // TXREP_WORKLOAD_LOADGEN_H_
