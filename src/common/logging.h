#ifndef TXREP_COMMON_LOGGING_H_
#define TXREP_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace txrep {

/// Severity levels for the minimal logger.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Returns "DEBUG", "INFO", "WARN" or "ERROR".
const char* LogLevelName(LogLevel level);

/// Receives every emitted (level-passing) log line instead of stderr.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Installs a process-wide sink; pass nullptr to restore stderr output.
/// Level filtering happens before the sink sees anything, which is what the
/// logging tests exercise.
void SetLogSink(LogSink sink);

namespace internal_logging {

/// Stream-style log line; emits on destruction. Use via the TXREP_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// TXREP_LOG(kInfo) << "replayed " << n << " transactions";
#define TXREP_LOG(severity)                                     \
  ::txrep::internal_logging::LogMessage(                        \
      ::txrep::LogLevel::severity, __FILE__, __LINE__)

}  // namespace txrep

#endif  // TXREP_COMMON_LOGGING_H_
