#ifndef TXREP_COMMON_BLOCKING_QUEUE_H_
#define TXREP_COMMON_BLOCKING_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace txrep {

/// Multi-producer multi-consumer FIFO with optional capacity bound and close
/// semantics. Building block for the thread pool and the message broker.
///
/// Close protocol: after Close(), Push returns false; Pop drains remaining
/// items and then returns nullopt.
template <typename T>
class BlockingQueue {
 public:
  /// `capacity` == 0 means unbounded.
  explicit BlockingQueue(size_t capacity = 0)
      : capacity_(capacity), closed_(false) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Blocks while full (bounded queues). Returns false iff the queue is
  /// closed, in which case the item is dropped.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] {
      return closed_ || capacity_ == 0 || items_.size() < capacity_;
    });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false if full or closed.
  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || (capacity_ != 0 && items_.size() >= capacity_)) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Pushes to the FRONT of the queue (consumed before everything already
  /// queued). Blocks while full; false iff closed. For urgent work — e.g.
  /// restarted transactions the whole pipeline is stalled on.
  bool PushFront(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] {
      return closed_ || capacity_ == 0 || items_.size() < capacity_;
    });
    if (closed_) return false;
    items_.push_front(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // Closed and drained.
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Wakes all waiters; subsequent Push calls fail, Pop drains then ends.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  const size_t capacity_;
  bool closed_;
};

}  // namespace txrep

#endif  // TXREP_COMMON_BLOCKING_QUEUE_H_
