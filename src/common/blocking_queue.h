#ifndef TXREP_COMMON_BLOCKING_QUEUE_H_
#define TXREP_COMMON_BLOCKING_QUEUE_H_

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "check/mutex.h"

namespace txrep {

/// Multi-producer multi-consumer FIFO with optional capacity bound and close
/// semantics. Building block for the thread pool and the message broker.
///
/// Close protocol: after Close(), Push returns false; Pop drains remaining
/// items and then returns nullopt. Close() wakes *every* blocked producer and
/// consumer, so no waiter can hang across a shutdown.
template <typename T>
class BlockingQueue {
 public:
  /// `capacity` == 0 means unbounded.
  explicit BlockingQueue(size_t capacity = 0)
      : capacity_(capacity), closed_(false) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Blocks while full (bounded queues). Returns false iff the queue is
  /// closed, in which case the item is dropped.
  bool Push(T item) {
    check::MutexLock lock(&mu_);
    while (!closed_ && capacity_ != 0 && items_.size() >= capacity_) {
      not_full_.Wait();
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  /// Non-blocking push. Returns false if full or closed.
  bool TryPush(T item) {
    check::MutexLock lock(&mu_);
    if (closed_ || (capacity_ != 0 && items_.size() >= capacity_)) return false;
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  /// Pushes to the FRONT of the queue (consumed before everything already
  /// queued). Blocks while full; false iff closed. For urgent work — e.g.
  /// restarted transactions the whole pipeline is stalled on.
  bool PushFront(T item) {
    check::MutexLock lock(&mu_);
    while (!closed_ && capacity_ != 0 && items_.size() >= capacity_) {
      not_full_.Wait();
    }
    if (closed_) return false;
    items_.push_front(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    check::MutexLock lock(&mu_);
    while (!closed_ && items_.empty()) {
      not_empty_.Wait();
    }
    if (items_.empty()) return std::nullopt;  // Closed and drained.
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    check::MutexLock lock(&mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  /// Wakes all waiters; subsequent Push calls fail, Pop drains then ends.
  /// Idempotent.
  void Close() {
    check::MutexLock lock(&mu_);
    closed_ = true;
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  bool closed() const {
    check::MutexLock lock(&mu_);
    return closed_;
  }

  size_t size() const {
    check::MutexLock lock(&mu_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  mutable check::Mutex mu_{"bq.mu"};
  check::CondVar not_empty_{&mu_};
  check::CondVar not_full_{&mu_};
  std::deque<T> items_ TXREP_GUARDED_BY(mu_);
  const size_t capacity_;
  bool closed_ TXREP_GUARDED_BY(mu_);
};

}  // namespace txrep

#endif  // TXREP_COMMON_BLOCKING_QUEUE_H_
