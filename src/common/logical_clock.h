#ifndef TXREP_COMMON_LOGICAL_CLOCK_H_
#define TXREP_COMMON_LOGICAL_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace txrep {

/// Monotonic logical timestamp source.
///
/// Algorithm 1 (line 16) and Algorithm 2 (line 6) of the paper compare
/// transaction start / completion times. Wall clocks can tie or go backwards
/// across threads; a process-wide atomic counter gives a strict total order,
/// which makes the "T_i started before T_j completed" tests exact and the
/// correctness proofs (and tests) deterministic.
class LogicalClock {
 public:
  LogicalClock() : next_(1) {}

  LogicalClock(const LogicalClock&) = delete;
  LogicalClock& operator=(const LogicalClock&) = delete;

  /// Returns a timestamp strictly greater than every previously returned one.
  uint64_t Tick() { return next_.fetch_add(1, std::memory_order_relaxed); }

  /// Last issued timestamp + 1 (i.e., the next value Tick() would return).
  uint64_t Peek() const { return next_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> next_;
};

}  // namespace txrep

#endif  // TXREP_COMMON_LOGICAL_CLOCK_H_
