#include "common/random.h"

#include <cmath>

namespace txrep {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Random::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

int64_t Random::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Random::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextUint64() >> 11) * (1.0 / 9007199254740992.0);
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::string Random::NextString(size_t len) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[Uniform(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : rng_(seed), n_(n), theta_(theta) {
  zetan_ = ZetaStatic(n_, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  const double zeta2 = ZetaStatic(2, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

double ZipfGenerator::ZetaStatic(uint64_t n, double theta) const {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace txrep
