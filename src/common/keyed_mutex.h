#ifndef TXREP_COMMON_KEYED_MUTEX_H_
#define TXREP_COMMON_KEYED_MUTEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>

#include "check/mutex.h"

namespace txrep {

/// Exact per-key mutual exclusion (a small lock manager).
///
/// Unlike a sharded mutex array, two *distinct* keys never contend, so a
/// holder of key A may acquire key B without self-deadlock risk. Used by the
/// B-link tree for its per-node write latches (node key -> latch).
///
/// Not reentrant: locking a key twice from one thread deadlocks.
class KeyedMutex {
 public:
  KeyedMutex() = default;

  KeyedMutex(const KeyedMutex&) = delete;
  KeyedMutex& operator=(const KeyedMutex&) = delete;

  /// Blocks until the key's lock is acquired.
  void Lock(const std::string& key);

  /// Releases a previously acquired key.
  void Unlock(const std::string& key);

  /// RAII guard.
  class Guard {
   public:
    Guard(KeyedMutex& mu, std::string key) : mu_(&mu), key_(std::move(key)) {
      mu_->Lock(key_);
    }
    ~Guard() { Release(); }

    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    /// Movable: the moved-from guard no longer owns the lock.
    Guard(Guard&& other) noexcept
        : mu_(other.mu_), key_(std::move(other.key_)) {
      other.mu_ = nullptr;
    }
    Guard& operator=(Guard&& other) noexcept {
      if (this != &other) {
        Release();
        mu_ = other.mu_;
        key_ = std::move(other.key_);
        other.mu_ = nullptr;
      }
      return *this;
    }

    /// Atomically switches this guard to `new_key` (unlock old, lock new) —
    /// the hand-over-hand "move right" step.
    void MoveTo(std::string new_key) {
      mu_->Unlock(key_);
      key_ = std::move(new_key);
      mu_->Lock(key_);
    }

    /// Early release; the destructor becomes a no-op.
    void Release() {
      if (mu_ != nullptr) {
        mu_->Unlock(key_);
        mu_ = nullptr;
      }
    }

    const std::string& key() const { return key_; }

   private:
    KeyedMutex* mu_;
    std::string key_;
  };

  /// Number of live lock entries (for tests / leak detection).
  size_t ActiveKeys() const;

 private:
  struct Entry {
    bool held = false;
    uint32_t refs = 0;  // Holders + waiters; entry erased at 0.
  };

  mutable check::Mutex master_mu_{"keyed_mutex.master"};
  check::CondVar cv_{&master_mu_};
  std::unordered_map<std::string, Entry> entries_ TXREP_GUARDED_BY(master_mu_);
};

}  // namespace txrep

#endif  // TXREP_COMMON_KEYED_MUTEX_H_
