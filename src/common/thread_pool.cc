#include "common/thread_pool.h"

#include <utility>

namespace txrep {

ThreadPool::ThreadPool(size_t num_threads, std::string name)
    : name_(std::move(name)) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  return SubmitInternal(std::move(task), /*urgent=*/false);
}

bool ThreadPool::SubmitUrgent(std::function<void()> task) {
  return SubmitInternal(std::move(task), /*urgent=*/true);
}

bool ThreadPool::SubmitInternal(std::function<void()> task, bool urgent) {
  if (shutdown_.load(std::memory_order_acquire)) return false;
  {
    check::MutexLock lock(&idle_mu_);
    ++outstanding_;
  }
  const bool pushed =
      urgent ? queue_.PushFront(std::move(task)) : queue_.Push(std::move(task));
  if (!pushed) {
    check::MutexLock lock(&idle_mu_);
    --outstanding_;
    idle_cv_.NotifyAll();
    return false;
  }
  return true;
}

void ThreadPool::Wait() {
  check::MutexLock lock(&idle_mu_);
  while (outstanding_ != 0) idle_cv_.Wait();
}

void ThreadPool::Shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true)) {
    // Another caller already shut us down; still join if needed.
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    return;
  }
  queue_.Close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::optional<std::function<void()>> task = queue_.Pop();
    if (!task.has_value()) return;  // Closed and drained.
    (*task)();
    {
      check::MutexLock lock(&idle_mu_);
      --outstanding_;
      if (outstanding_ == 0) idle_cv_.NotifyAll();
    }
  }
}

}  // namespace txrep
