#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

#include "check/mutex.h"

namespace txrep {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
check::Mutex g_log_mu{"logging.mu"};
LogSink g_sink TXREP_GUARDED_BY(g_log_mu);  // Empty = write to stderr.

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void SetLogSink(LogSink sink) {
  check::MutexLock lock(&g_log_mu);
  g_sink = std::move(sink);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    stream_ << "[" << LogLevelName(level) << " " << Basename(file) << ":"
            << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  check::MutexLock lock(&g_log_mu);
  if (g_sink) {
    g_sink(level_, stream_.str());
    return;
  }
  std::fputs(stream_.str().c_str(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace internal_logging
}  // namespace txrep
