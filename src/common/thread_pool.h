#ifndef TXREP_COMMON_THREAD_POOL_H_
#define TXREP_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "check/mutex.h"
#include "common/blocking_queue.h"

namespace txrep {

/// Fixed-size worker pool.
///
/// The transaction manager owns two of these — the paper's "top" pool
/// (transaction execution / translation) and "bottom" pool (applying committed
/// buffers to the key-value store, Fig. 8). Degree of parallelism is the main
/// tuning knob of the paper's Fig. 15/16 experiments.
class ThreadPool {
 public:
  /// Starts `num_threads` workers immediately. `name` is used in thread
  /// naming for debugging.
  ThreadPool(size_t num_threads, std::string name);

  /// Joins all workers; pending tasks are still executed (drain-then-stop).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Returns false after Shutdown().
  bool Submit(std::function<void()> task);

  /// Enqueues a task ahead of everything already queued (LIFO at the front).
  /// Use for work the rest of the system is blocked on — e.g. the TM's
  /// restarted transactions, which carry the expected sequence number the
  /// controller is stalled at.
  bool SubmitUrgent(std::function<void()> task);

  /// Blocks until every submitted task (including tasks submitted by running
  /// tasks) has finished and the queue is empty.
  void Wait();

  /// Stops accepting tasks, drains the queue, joins workers. Idempotent.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }

  /// Tasks currently queued (not yet picked up by a worker).
  size_t QueueDepth() const { return queue_.size(); }

 private:
  bool SubmitInternal(std::function<void()> task, bool urgent);
  void WorkerLoop();

  // analyze: lock-free(BlockingQueue is internally synchronized)
  BlockingQueue<std::function<void()>> queue_;
  // analyze: lock-free(populated in ctor, joined in Shutdown; workers never touch it)
  std::vector<std::thread> threads_;
  // analyze: lock-free(set in ctor, immutable afterwards)
  std::string name_;

  check::Mutex idle_mu_{"thread_pool.idle"};
  check::CondVar idle_cv_{&idle_mu_};
  /// Queued + running tasks.
  size_t outstanding_ TXREP_GUARDED_BY(idle_mu_) = 0;
  std::atomic<bool> shutdown_{false};
};

}  // namespace txrep

#endif  // TXREP_COMMON_THREAD_POOL_H_
