#ifndef TXREP_COMMON_CLOCK_H_
#define TXREP_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>
#include <thread>

namespace txrep {

/// Microseconds since an arbitrary (steady) epoch. Suitable for measuring
/// durations, not for calendar time.
inline int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Sleeps the calling thread for `micros` microseconds (no-op for values <= 0).
inline void SleepForMicros(int64_t micros) {
  if (micros <= 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

/// Wall-clock stopwatch for benchmarks and lag probes.
class Stopwatch {
 public:
  Stopwatch() : start_(NowMicros()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = NowMicros(); }

  /// Elapsed time since construction or last Reset().
  int64_t ElapsedMicros() const { return NowMicros() - start_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  int64_t start_;
};

}  // namespace txrep

#endif  // TXREP_COMMON_CLOCK_H_
