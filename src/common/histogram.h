#ifndef TXREP_COMMON_HISTOGRAM_H_
#define TXREP_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "check/mutex.h"

namespace txrep {

/// Point-in-time summary of a Histogram: counts, extrema and the standard
/// percentile ladder. The one serialization path shared by the metrics
/// registry exporters and ad-hoc dumps (replication lag, bench output).
struct HistogramSnapshot {
  int64_t count = 0;
  int64_t min = 0;
  int64_t max = 0;
  int64_t sum = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;

  /// Compact JSON object, e.g. {"count":3,"min":1,...,"p999":42}.
  std::string ToJson() const;
};

/// Thread-safe latency/size histogram with power-of-two-ish buckets.
///
/// Used by the KV substrate and the transaction manager to report per-op and
/// per-transaction latency distributions in benchmarks.
class Histogram {
 public:
  Histogram();

  /// Records one sample (values < 0 are clamped to 0).
  void Record(int64_t value);

  /// Merges another histogram's samples into this one.
  void Merge(const Histogram& other);

  /// Clears all samples.
  void Reset();

  int64_t count() const;
  int64_t min() const;
  int64_t max() const;
  double Mean() const;

  /// Approximate quantile in [0, 1] via linear interpolation inside the
  /// containing bucket. Returns 0 when empty.
  double Percentile(double q) const;

  /// Tail-latency shorthand for Percentile(0.999).
  double P999() const { return Percentile(0.999); }

  /// Consistent snapshot of all summary statistics (one lock acquisition).
  HistogramSnapshot Snapshot() const;

  /// Snapshot().ToJson() — the shared serialization path.
  std::string ToJson() const { return Snapshot().ToJson(); }

  /// One-line summary: "count=... mean=... p50=... p99=... max=...".
  std::string ToString() const;

 private:
  static size_t BucketFor(int64_t value);
  double PercentileLocked(double q) const TXREP_REQUIRES(mu_);

  mutable check::Mutex mu_{"histogram.mu"};
  std::vector<int64_t> buckets_ TXREP_GUARDED_BY(mu_);
  int64_t count_ TXREP_GUARDED_BY(mu_);
  int64_t sum_ TXREP_GUARDED_BY(mu_);
  int64_t min_ TXREP_GUARDED_BY(mu_);
  int64_t max_ TXREP_GUARDED_BY(mu_);
};

}  // namespace txrep

#endif  // TXREP_COMMON_HISTOGRAM_H_
