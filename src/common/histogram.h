#ifndef TXREP_COMMON_HISTOGRAM_H_
#define TXREP_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace txrep {

/// Thread-safe latency/size histogram with power-of-two-ish buckets.
///
/// Used by the KV substrate and the transaction manager to report per-op and
/// per-transaction latency distributions in benchmarks.
class Histogram {
 public:
  Histogram();

  /// Records one sample (values < 0 are clamped to 0).
  void Record(int64_t value);

  /// Merges another histogram's samples into this one.
  void Merge(const Histogram& other);

  /// Clears all samples.
  void Reset();

  int64_t count() const;
  int64_t min() const;
  int64_t max() const;
  double Mean() const;

  /// Approximate quantile in [0, 1] via linear interpolation inside the
  /// containing bucket. Returns 0 when empty.
  double Percentile(double q) const;

  /// One-line summary: "count=... mean=... p50=... p99=... max=...".
  std::string ToString() const;

 private:
  static size_t BucketFor(int64_t value);
  double PercentileLocked(double q) const;

  mutable std::mutex mu_;
  std::vector<int64_t> buckets_;
  int64_t count_;
  int64_t sum_;
  int64_t min_;
  int64_t max_;
};

}  // namespace txrep

#endif  // TXREP_COMMON_HISTOGRAM_H_
