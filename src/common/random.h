#ifndef TXREP_COMMON_RANDOM_H_
#define TXREP_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace txrep {

/// Seeded, fast, reproducible PRNG (xoshiro256**). Every workload generator in
/// the repo draws from an explicitly seeded Random so experiments replay
/// bit-identically.
class Random {
 public:
  /// Seeds via SplitMix64 expansion of `seed`.
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform over the full 64-bit range.
  uint64_t NextUint64();

  /// Uniform in [0, n). `n` must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Uniform printable ASCII string of exactly `len` characters.
  std::string NextString(size_t len);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t s_[4];
};

/// Zipf-distributed generator over {0, ..., n-1} with skew `theta` in (0, 1).
/// Implements the Gray et al. quick method used by YCSB; used by the synthetic
/// workload to concentrate accesses for high-conflict configurations.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed);

  /// Next Zipf-distributed value in [0, n).
  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  double ZetaStatic(uint64_t n, double theta) const;

  Random rng_;
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

}  // namespace txrep

#endif  // TXREP_COMMON_RANDOM_H_
