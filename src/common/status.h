#ifndef TXREP_COMMON_STATUS_H_
#define TXREP_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace txrep {

/// Error categories used across the library. Kept deliberately small; the
/// message carries the detail.
enum class StatusCode : int {
  kOk = 0,
  kNotFound = 1,
  kAlreadyExists = 2,
  kInvalidArgument = 3,
  kAborted = 4,
  kUnavailable = 5,
  kCorruption = 6,
  kTimedOut = 7,
  kResourceExhausted = 8,
  kFailedPrecondition = 9,
  kInternal = 10,
};

/// Returns a stable human-readable name ("Ok", "NotFound", ...).
std::string_view StatusCodeName(StatusCode code);

/// Value-semantic error carrier used instead of exceptions (see DESIGN.md §6).
///
/// The OK status carries no allocation; error statuses carry a code and a
/// message. `Status` is cheap to copy for the OK case and small enough to
/// return by value everywhere.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "NotFound: key ITEM_7 missing" or "Ok".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

/// Propagates a non-OK status to the caller. Standard early-return idiom:
///   TXREP_RETURN_IF_ERROR(store->Put(key, value));
#define TXREP_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::txrep::Status _txrep_status = (expr);         \
    if (!_txrep_status.ok()) return _txrep_status;  \
  } while (0)

}  // namespace txrep

#endif  // TXREP_COMMON_STATUS_H_
