#ifndef TXREP_COMMON_RESULT_H_
#define TXREP_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace txrep {

/// Either a value of type `T` or a non-OK `Status` — the library's substitute
/// for throwing constructors/factories (exceptions are banned, DESIGN.md §6).
///
/// Usage:
///   Result<Row> row = table.Lookup(pk);
///   if (!row.ok()) return row.status();
///   Use(row.value());
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value: `return my_row;`
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from an error status: `return Status::NotFound(...);`
  /// Must not be OK (an OK status carries no value).
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }

  /// OK when a value is present, the stored error otherwise.
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

/// Evaluates `expr` (a Result<T>), early-returning its status on error,
/// otherwise assigning the value into `lhs`:
///   TXREP_ASSIGN_OR_RETURN(Row row, table.Lookup(pk));
#define TXREP_ASSIGN_OR_RETURN(lhs, expr)                         \
  TXREP_ASSIGN_OR_RETURN_IMPL_(                                   \
      TXREP_RESULT_CONCAT_(_txrep_result_, __LINE__), lhs, expr)

#define TXREP_RESULT_CONCAT_INNER_(a, b) a##b
#define TXREP_RESULT_CONCAT_(a, b) TXREP_RESULT_CONCAT_INNER_(a, b)
#define TXREP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

}  // namespace txrep

#endif  // TXREP_COMMON_RESULT_H_
