#include "common/histogram.h"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace txrep {

namespace {
// 2 sub-buckets per power of two up to 2^62: bucket index for value v is
// 2*floor(log2(v)) + (second half of the octave ? 1 : 0).
constexpr size_t kNumBuckets = 128;

int64_t BucketLowerBound(size_t bucket) {
  if (bucket == 0) return 0;
  const size_t exp = bucket / 2;
  const int64_t base = int64_t{1} << exp;
  return (bucket % 2 == 0) ? base : base + base / 2;
}
}  // namespace

Histogram::Histogram()
    : buckets_(kNumBuckets, 0),
      count_(0),
      sum_(0),
      min_(std::numeric_limits<int64_t>::max()),
      max_(0) {}

size_t Histogram::BucketFor(int64_t value) {
  if (value <= 0) return 0;
  int exp = 63 - __builtin_clzll(static_cast<uint64_t>(value));
  const int64_t base = int64_t{1} << exp;
  size_t bucket = static_cast<size_t>(exp) * 2;
  if (value >= base + base / 2) ++bucket;
  return std::min(bucket, kNumBuckets - 1);
}

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  check::MutexLock lock(&mu_);
  ++buckets_[BucketFor(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  // Consistent order not needed: callers never merge concurrently in a cycle.
  std::vector<int64_t> other_buckets;
  int64_t other_count, other_sum, other_min, other_max;
  {
    check::MutexLock lock(&other.mu_);
    other_buckets = other.buckets_;
    other_count = other.count_;
    other_sum = other.sum_;
    other_min = other.min_;
    other_max = other.max_;
  }
  check::MutexLock lock(&mu_);
  for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other_buckets[i];
  count_ += other_count;
  sum_ += other_sum;
  min_ = std::min(min_, other_min);
  max_ = std::max(max_, other_max);
}

void Histogram::Reset() {
  check::MutexLock lock(&mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<int64_t>::max();
  max_ = 0;
}

int64_t Histogram::count() const {
  check::MutexLock lock(&mu_);
  return count_;
}

int64_t Histogram::min() const {
  check::MutexLock lock(&mu_);
  return count_ == 0 ? 0 : min_;
}

int64_t Histogram::max() const {
  check::MutexLock lock(&mu_);
  return max_;
}

double Histogram::Mean() const {
  check::MutexLock lock(&mu_);
  return count_ == 0
             ? 0.0
             : static_cast<double>(sum_) / static_cast<double>(count_);
}

double Histogram::PercentileLocked(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  int64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) >= target) {
      const int64_t lo = BucketLowerBound(i);
      const int64_t hi =
          (i + 1 < kNumBuckets) ? BucketLowerBound(i + 1) : max_ + 1;
      // Linear interpolation within the bucket.
      const int64_t in_bucket = buckets_[i];
      const double frac =
          in_bucket == 0
              ? 0.0
              : (target - static_cast<double>(cumulative - in_bucket)) /
                    static_cast<double>(in_bucket);
      double v = static_cast<double>(lo) +
                 frac * static_cast<double>(hi - lo);
      return std::min(v, static_cast<double>(max_));
    }
  }
  return static_cast<double>(max_);
}

double Histogram::Percentile(double q) const {
  check::MutexLock lock(&mu_);
  return PercentileLocked(q);
}

HistogramSnapshot Histogram::Snapshot() const {
  check::MutexLock lock(&mu_);
  HistogramSnapshot s;
  s.count = count_;
  s.min = count_ == 0 ? 0 : min_;
  s.max = max_;
  s.sum = sum_;
  s.mean = count_ == 0
               ? 0.0
               : static_cast<double>(sum_) / static_cast<double>(count_);
  s.p50 = PercentileLocked(0.5);
  s.p90 = PercentileLocked(0.9);
  s.p95 = PercentileLocked(0.95);
  s.p99 = PercentileLocked(0.99);
  s.p999 = PercentileLocked(0.999);
  return s;
}

namespace {
// %.6g keeps integers free of trailing zeros ("5", not "5.000000") so dumps
// stay stable and diffable.
void AppendDouble(std::string& out, const char* key, double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.6g", key, value);
  out += buf;
}

void AppendInt(std::string& out, const char* key, int64_t value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "\"%s\":%lld", key,
                static_cast<long long>(value));
  out += buf;
}
}  // namespace

std::string HistogramSnapshot::ToJson() const {
  std::string out = "{";
  AppendInt(out, "count", count);
  out += ",";
  AppendInt(out, "min", min);
  out += ",";
  AppendInt(out, "max", max);
  out += ",";
  AppendInt(out, "sum", sum);
  out += ",";
  AppendDouble(out, "mean", mean);
  out += ",";
  AppendDouble(out, "p50", p50);
  out += ",";
  AppendDouble(out, "p90", p90);
  out += ",";
  AppendDouble(out, "p95", p95);
  out += ",";
  AppendDouble(out, "p99", p99);
  out += ",";
  AppendDouble(out, "p999", p999);
  out += "}";
  return out;
}

std::string Histogram::ToString() const {
  check::MutexLock lock(&mu_);
  char buf[160];
  const double mean =
      count_ == 0 ? 0.0
                  : static_cast<double>(sum_) / static_cast<double>(count_);
  std::snprintf(buf, sizeof(buf),
                "count=%lld mean=%.1f p50=%.0f p95=%.0f p99=%.0f max=%lld",
                static_cast<long long>(count_), mean, PercentileLocked(0.5),
                PercentileLocked(0.95), PercentileLocked(0.99),
                static_cast<long long>(max_));
  return buf;
}

}  // namespace txrep
