#include "common/keyed_mutex.h"

namespace txrep {

void KeyedMutex::Lock(const std::string& key) {
  std::unique_lock<std::mutex> lock(master_mu_);
  Entry& entry = entries_[key];
  ++entry.refs;
  cv_.wait(lock, [&] { return !entries_[key].held; });
  entries_[key].held = true;
}

void KeyedMutex::Unlock(const std::string& key) {
  std::lock_guard<std::mutex> lock(master_mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;  // Unlock of unheld key: ignore.
  it->second.held = false;
  if (--it->second.refs == 0) {
    entries_.erase(it);
  }
  cv_.notify_all();
}

size_t KeyedMutex::ActiveKeys() const {
  std::lock_guard<std::mutex> lock(master_mu_);
  return entries_.size();
}

}  // namespace txrep
