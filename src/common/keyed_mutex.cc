#include "common/keyed_mutex.h"

namespace txrep {

void KeyedMutex::Lock(const std::string& key) {
  check::MutexLock lock(&master_mu_);
  ++entries_[key].refs;
  // Re-resolve the entry each iteration: the wait releases master_mu_ and
  // other keys' insert/erase may rehash the map under us.
  while (entries_[key].held) cv_.Wait();
  entries_[key].held = true;
}

void KeyedMutex::Unlock(const std::string& key) {
  check::MutexLock lock(&master_mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;  // Unlock of unheld key: ignore.
  it->second.held = false;
  if (--it->second.refs == 0) {
    entries_.erase(it);
  }
  cv_.NotifyAll();
}

size_t KeyedMutex::ActiveKeys() const {
  check::MutexLock lock(&master_mu_);
  return entries_.size();
}

}  // namespace txrep
