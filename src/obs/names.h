#ifndef TXREP_OBS_NAMES_H_
#define TXREP_OBS_NAMES_H_

/// Canonical metric names and label values, so every layer agrees on the
/// naming scheme (documented in DESIGN.md §Observability):
///
///   txrep_<area>_<what>[_total|_us]   {label="value", ...}
///
/// _total suffix = monotonic counter, _us suffix = microsecond latency
/// histogram; everything else is a gauge or a unitless histogram.
namespace txrep::obs {

// --- pipeline stage tracing -------------------------------------------------
/// Per-stage latency histogram (µs), labeled {stage="..."}; the stages cover
/// the full Fig. 3 path of one replicated transaction.
inline constexpr char kStageLatency[] = "txrep_stage_latency_us";
/// DB commit -> replication message published.
inline constexpr char kStagePublish[] = "publish";
/// Message published -> broker handed it to subscriber queues.
inline constexpr char kStageBroker[] = "broker_deliver";
/// Broker delivery -> subscriber agent picked the transaction up.
inline constexpr char kStageReceive[] = "subscriber_recv";
/// One (re-)execution of the transaction body against its buffer.
inline constexpr char kStageExecute[] = "execute";
/// Commit request enqueued -> Algorithm 1 reached a commit decision.
inline constexpr char kStageCommitEval[] = "commit_eval";
/// Buffer apply to the key-value store (bottom pool / serial applier).
inline constexpr char kStageApply[] = "apply";
/// DB commit -> transaction fully applied on the replica (= replica lag).
inline constexpr char kStageE2e[] = "e2e";

// --- per-transaction tracing / SLO (src/trace, DESIGN.md §11) ---------------
/// Transactions minted with sampled=true at DB commit.
inline constexpr char kTraceSampled[] = "txrep_trace_sampled_total";
/// Spans handed to the flight recorder (sampled transactions only).
inline constexpr char kTraceSpans[] = "txrep_trace_spans_total";
/// Spans the flight recorder dropped (claim contention on a lapped slot).
inline constexpr char kTraceSpansDropped[] =
    "txrep_trace_spans_dropped_total";
/// Replica-lag observations fed to the SLO watchdog.
inline constexpr char kSloObservations[] = "txrep_slo_observations_total";
/// Observations above the lag objective.
inline constexpr char kSloViolations[] = "txrep_slo_violations_total";
/// Apply-progress stall episodes detected by the watchdog.
inline constexpr char kSloStalls[] = "txrep_slo_stalls_total";
/// Flight-recorder auto-dumps the watchdog triggered.
inline constexpr char kSloDumps[] = "txrep_slo_dumps_total";
/// Gauge: error-budget burn rate over the sliding window, x1000.
inline constexpr char kSloBurnRatePermille[] = "txrep_slo_burn_rate_permille";

// --- queue depths -----------------------------------------------------------
/// Gauge, labeled {queue="..."}.
inline constexpr char kQueueDepth[] = "txrep_queue_depth";
inline constexpr char kQueueCommitReqPq[] = "commit_req_pq";
inline constexpr char kQueueBroker[] = "broker";
inline constexpr char kQueueTmTop[] = "tm_top_pool";
inline constexpr char kQueueTmBottom[] = "tm_bottom_pool";

// --- transaction manager ----------------------------------------------------
inline constexpr char kTmSubmitted[] = "txrep_tm_submitted_total";
inline constexpr char kTmReadOnlySubmitted[] =
    "txrep_tm_readonly_submitted_total";
inline constexpr char kTmCommitted[] = "txrep_tm_committed_total";
inline constexpr char kTmCompleted[] = "txrep_tm_completed_total";
inline constexpr char kTmConflicts[] = "txrep_tm_conflicts_total";
inline constexpr char kTmRestarts[] = "txrep_tm_restarts_total";
inline constexpr char kTmApplyRetries[] = "txrep_tm_apply_retries_total";
inline constexpr char kTmGcRuns[] = "txrep_tm_gc_runs_total";
inline constexpr char kTmGcRemoved[] = "txrep_tm_gc_removed_total";
inline constexpr char kTmConflictChecks[] = "txrep_tm_conflict_checks_total";
inline constexpr char kTmClassFilterSkips[] =
    "txrep_tm_class_filter_skips_total";
/// Restarts per completed transaction (histogram, unitless).
inline constexpr char kTmTxnRestarts[] = "txrep_tm_txn_restarts";

// --- database / transaction log ---------------------------------------------
inline constexpr char kDbCommits[] = "txrep_db_commits_total";
inline constexpr char kDbCommitLatency[] = "txrep_db_commit_latency_us";
inline constexpr char kDbTxnOps[] = "txrep_db_txn_ops";
inline constexpr char kLogAppended[] = "txrep_log_appended_total";
inline constexpr char kLogSize[] = "txrep_log_size";
inline constexpr char kLogTruncations[] = "txrep_log_truncations_total";
inline constexpr char kLogTruncated[] = "txrep_log_truncated_txns_total";

// --- middleware -------------------------------------------------------------
inline constexpr char kMwMessagesPublished[] =
    "txrep_mw_messages_published_total";
inline constexpr char kMwMessagesDelivered[] =
    "txrep_mw_messages_delivered_total";
inline constexpr char kMwBatchSize[] = "txrep_mw_batch_size";
inline constexpr char kMwTxnsReceived[] = "txrep_mw_txns_received_total";

// --- wire replication (src/net/, DESIGN.md §13) -----------------------------
/// Frames sent / received, labeled {role="server"|"client"}.
inline constexpr char kNetFramesSent[] = "txrep_net_frames_sent_total";
inline constexpr char kNetFramesReceived[] =
    "txrep_net_frames_received_total";
/// Wire bytes (encoded frames incl. header + checksum), same labels.
inline constexpr char kNetBytesSent[] = "txrep_net_bytes_sent_total";
inline constexpr char kNetBytesReceived[] = "txrep_net_bytes_received_total";
/// Times a sender stalled for flow control: credit exhaustion (server
/// session) or a full bounded send queue (transport writer).
inline constexpr char kNetBackpressureStalls[] =
    "txrep_net_backpressure_stalls_total";
/// Successful session (re-)establishments on the subscriber side; the first
/// connect counts, so reconnects = this - 1.
inline constexpr char kNetConnects[] = "txrep_net_connects_total";
/// Live sessions on a NetEndpoint.
inline constexpr char kNetSessions[] = "txrep_net_sessions";
/// Encoded batches currently retained for resume-from-LSN replay.
inline constexpr char kNetRetainedBatches[] = "txrep_net_retained_batches";
/// kQueueDepth label values for the transport queues.
inline constexpr char kQueueNetSend[] = "net_send";
inline constexpr char kQueueNetRecv[] = "net_recv";

// --- key-value substrate ----------------------------------------------------
/// Counter, labeled {node="N", op="get"|"put"|"delete"|"get_miss"}.
inline constexpr char kKvOps[] = "txrep_kv_ops_total";
/// Per-node op latency histogram (µs), labeled {node="N"}.
inline constexpr char kKvOpLatency[] = "txrep_kv_op_latency_us";
/// Service slots currently occupied, labeled {node="N"}.
inline constexpr char kKvSlotsInUse[] = "txrep_kv_slots_in_use";
/// Ops per Multi* batch serviced by a node (histogram, unitless), labeled
/// {node="N"}.
inline constexpr char kKvBatchSize[] = "txrep_kv_batch_size";
/// Cluster fan-out latency of one MultiWrite/MultiGet sub-batch (µs), labeled
/// {node="N"} with the destination node.
inline constexpr char kKvDispatchLatency[] = "txrep_kv_dispatch_latency_us";
/// Time an op/batch waited for a service slot (in-memory node) or the node
/// mutex (disk node) before service began (µs), labeled {node="N"}. Keeps
/// queueing out of the service share of apply-lag attribution.
inline constexpr char kKvQueueWait[] = "txrep_kv_queue_wait_us";

// --- batched apply path -------------------------------------------------
/// Write-set entries per dispatched chunk (histogram, unitless).
inline constexpr char kApplyBatchSize[] = "txrep_apply_batch_size";
/// Round trips saved by coalescing: ops dispatched minus Multi* calls made.
inline constexpr char kApplyCoalescedOps[] = "txrep_apply_coalesced_ops_total";
/// Gauge: latest observed DB-commit -> replica-applied lag (µs); feeds the
/// adaptive batch-size controller.
inline constexpr char kReplicaLag[] = "txrep_replica_lag_us";

// --- recovery / checkpointing -----------------------------------------------
inline constexpr char kRecovCheckpoints[] = "txrep_recov_checkpoints_total";
inline constexpr char kRecovCheckpointFailures[] =
    "txrep_recov_checkpoint_failures_total";
/// Wall time of one checkpoint, barrier to durable cursor (µs).
inline constexpr char kRecovCheckpointLatency[] =
    "txrep_recov_checkpoint_latency_us";
/// Payload bytes of the last completed checkpoint.
inline constexpr char kRecovCheckpointBytes[] = "txrep_recov_checkpoint_bytes";
/// Snapshot epoch (last applied LSN) of the last completed checkpoint.
inline constexpr char kRecovCheckpointEpoch[] = "txrep_recov_checkpoint_epoch";
/// Checkpoints found unusable at recovery (torn manifest, bad file checksum).
inline constexpr char kRecovRejectedCheckpoints[] =
    "txrep_recov_rejected_checkpoints_total";
/// Restarts that found a stale/corrupt/missing cursor and fell back to the
/// manifest scan.
inline constexpr char kRecovCursorFallbacks[] =
    "txrep_recov_cursor_fallbacks_total";
/// Transactions replayed from the log tail during restart or bootstrap.
inline constexpr char kRecovTailTxns[] = "txrep_recov_tail_txns_total";
/// Gauge: LSNs a catching-up replica still trails the primary by.
inline constexpr char kRecovCatchupLag[] = "txrep_recov_catchup_lag";
/// Counter: reads rejected because the catch-up gate was still closed.
inline constexpr char kRecovGateRejects[] = "txrep_recov_gate_rejects_total";

// --- B-link index (src/blink, DESIGN.md §14) --------------------------------
/// Optimistic node reads that failed version validation and re-ran, labeled
/// {index="TABLE.COLUMN"}.
inline constexpr char kBlinkReadRetries[] = "txrep_blink_read_retries_total";
/// Reads that hit an obsolete version word and restarted from the root,
/// same labels.
inline constexpr char kBlinkObsoleteHits[] =
    "txrep_blink_obsolete_hits_total";

// --- open-loop load generator (src/workload/loadgen, DESIGN.md §15) ---------
/// Scheduled arrivals the runner reached (shed or submitted).
inline constexpr char kLoadgenArrivals[] = "txrep_loadgen_arrivals_total";
/// Arrivals dropped at the backlog cap during sustained overload.
inline constexpr char kLoadgenShed[] = "txrep_loadgen_shed_total";
/// Write transactions that failed to commit on the database.
inline constexpr char kLoadgenSubmitFailures[] =
    "txrep_loadgen_submit_failures_total";
/// DB commit -> replica applied, as confirmed by the runner's poller (µs).
inline constexpr char kLoadgenLag[] = "txrep_loadgen_lag_us";
/// Actual submit time minus scheduled arrival offset (µs): open-loop clock
/// slip of the single-threaded submitter.
inline constexpr char kLoadgenSchedSlip[] = "txrep_loadgen_sched_slip_us";
/// Gauge: submitted-but-not-yet-applied transactions.
inline constexpr char kLoadgenBacklog[] = "txrep_loadgen_backlog";

// --- replica read path ------------------------------------------------------
/// SELECT latency on the replica through the reader (µs).
inline constexpr char kQtSelectLatency[] = "txrep_qt_select_latency_us";
/// Counter, labeled {plan="pk"|"hash"|"range"}.
inline constexpr char kQtSelects[] = "txrep_qt_selects_total";
/// Full read-only transaction latency through TxRepSystem (µs).
inline constexpr char kReadOnlyLatency[] = "txrep_readonly_txn_latency_us";

}  // namespace txrep::obs

#endif  // TXREP_OBS_NAMES_H_
