#include "obs/metrics.h"

#include <algorithm>

namespace txrep::obs {

size_t Counter::ShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return index;
}

std::string MetricsRegistry::InstrumentKey(const std::string& name,
                                           const Labels& labels) {
  std::string key = name;
  key += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) key += ',';
    first = false;
    key += k;
    key += "=\"";
    key += v;
    key += '"';
  }
  key += '}';
  return key;
}

template <typename T>
T* MetricsRegistry::GetOrCreate(std::map<std::string, Entry<T>>& entries,
                                const std::string& name, const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  const std::string key = InstrumentKey(name, sorted);
  auto it = entries.find(key);
  if (it == entries.end()) {
    it = entries
             .emplace(key, Entry<T>{name, std::move(sorted),
                                    std::make_unique<T>()})
             .first;
  }
  return it->second.instrument.get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  check::MutexLock lock(&mu_);
  return GetOrCreate(counters_, name, labels);
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels) {
  check::MutexLock lock(&mu_);
  return GetOrCreate(gauges_, name, labels);
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels) {
  check::MutexLock lock(&mu_);
  return GetOrCreate(histograms_, name, labels);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  check::MutexLock lock(&mu_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [key, entry] : counters_) {
    snapshot.counters.push_back(
        MetricPoint{entry.name, entry.labels, entry.instrument->Value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [key, entry] : gauges_) {
    snapshot.gauges.push_back(
        MetricPoint{entry.name, entry.labels, entry.instrument->Value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [key, entry] : histograms_) {
    snapshot.histograms.push_back(
        HistogramPoint{entry.name, entry.labels, entry.instrument->Snapshot()});
  }
  return snapshot;
}

size_t MetricsRegistry::InstrumentCount() const {
  check::MutexLock lock(&mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace txrep::obs
