#ifndef TXREP_OBS_METRICS_H_
#define TXREP_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "check/mutex.h"
#include "common/histogram.h"

namespace txrep::obs {

/// Metric labels as key/value pairs, e.g. {{"stage","apply"},{"node","3"}}.
/// Registries canonicalize them (sorted by key) so label order never
/// distinguishes instruments.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter, sharded across cache lines so hot-path increments from
/// many threads (TM pools, KV nodes) never contend on one line. Value() sums
/// the shards and is exact once the writers have quiesced (or been joined).
class Counter {
 public:
  Counter() = default;

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(int64_t delta = 1) {
    shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  int64_t Value() const {
    int64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr size_t kShards = 16;

  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };

  /// Stable per-thread shard chosen round-robin on first use.
  static size_t ShardIndex();

  std::array<Shard, kShards> shards_;
};

/// Instantaneous value: queue depth, slot occupancy, log size. Last write
/// wins; all accesses relaxed (a gauge is a sample, not a ledger).
class Gauge {
 public:
  Gauge() = default;

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// One scalar instrument in a snapshot.
struct MetricPoint {
  std::string name;
  Labels labels;
  int64_t value = 0;
};

/// One histogram instrument in a snapshot.
struct HistogramPoint {
  std::string name;
  Labels labels;
  HistogramSnapshot snapshot;
};

/// Point-in-time view of a whole registry, ordered deterministically
/// (by name, then by canonical label string). Input to the exporters.
struct MetricsSnapshot {
  std::vector<MetricPoint> counters;
  std::vector<MetricPoint> gauges;
  std::vector<HistogramPoint> histograms;
};

/// Thread-safe, get-or-create registry of named instruments.
///
/// Lookup (GetCounter/GetGauge/GetHistogram) takes a mutex and is meant for
/// wiring time: components resolve their instruments once (constructor) and
/// keep the returned pointers, which stay valid for the registry's lifetime.
/// The instruments themselves are the hot path and are lock-free (counters,
/// gauges) or finely locked (histograms).
///
/// A TxRepSystem owns one registry per deployment; free-standing components
/// (benches, tests) create their own or use Default().
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create; same (name, labels) always returns the same instrument.
  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {});

  /// Consistent-enough snapshot: each instrument is read atomically, the set
  /// of instruments is read under the registry lock.
  MetricsSnapshot Snapshot() const;

  /// Number of registered instruments (all kinds).
  size_t InstrumentCount() const;

  /// Process-wide default registry, for code with no deployment to hang
  /// metrics off.
  static MetricsRegistry& Default();

 private:
  template <typename T>
  struct Entry {
    std::string name;
    Labels labels;
    std::unique_ptr<T> instrument;
  };

  /// "name{k1="v1",k2="v2"}" with labels sorted by key — the map key and the
  /// exporters' display form.
  static std::string InstrumentKey(const std::string& name,
                                   const Labels& labels);

  /// Callers hold mu_ (the maps are guarded and passed by reference, so the
  /// lock must be taken before the reference is formed).
  template <typename T>
  T* GetOrCreate(std::map<std::string, Entry<T>>& entries,
                 const std::string& name, const Labels& labels)
      TXREP_REQUIRES(mu_);

  mutable check::Mutex mu_{"metrics.mu"};
  std::map<std::string, Entry<Counter>> counters_ TXREP_GUARDED_BY(mu_);
  std::map<std::string, Entry<Gauge>> gauges_ TXREP_GUARDED_BY(mu_);
  std::map<std::string, Entry<Histogram>> histograms_ TXREP_GUARDED_BY(mu_);
};

}  // namespace txrep::obs

#endif  // TXREP_OBS_METRICS_H_
