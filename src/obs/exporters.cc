#include "obs/exporters.h"

#include <chrono>
#include <cstdio>
#include <set>

#include "common/logging.h"

namespace txrep::obs {

namespace {

/// Escapes backslash, double quote and control characters for JSON strings
/// and Prometheus label values (the two formats agree on these escapes).
std::string Escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// name{k1="v1",k2="v2"} — empty labels render as name{}.
std::string LabeledName(const MetricPoint& point) {
  std::string out = point.name;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : point.labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += Escape(v);
    out += '"';
  }
  out += '}';
  return out;
}

std::string LabeledName(const HistogramPoint& point) {
  return LabeledName(MetricPoint{point.name, point.labels, 0});
}

std::string FormatDouble(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::string JsonLabels(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += Escape(k);
    out += "\":\"";
    out += Escape(v);
    out += '"';
  }
  out += '}';
  return out;
}

/// Prometheus sample line: name{labels,extra} value. `extra` ("quantile=...")
/// may be empty; omits the braces entirely when there is nothing to print.
std::string PromLine(const std::string& name, const Labels& labels,
                     const std::string& extra, const std::string& value) {
  std::string out = name;
  if (!labels.empty() || !extra.empty()) {
    out += '{';
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) out += ',';
      first = false;
      out += k;
      out += "=\"";
      out += Escape(v);
      out += '"';
    }
    if (!extra.empty()) {
      if (!first) out += ',';
      out += extra;
    }
    out += '}';
  }
  out += ' ';
  out += value;
  out += '\n';
  return out;
}

/// Emits "# TYPE name type" once per metric name.
void MaybeType(std::string& out, std::set<std::string>& typed,
               const std::string& name, const char* type) {
  if (!typed.insert(name).second) return;
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string ToText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const MetricPoint& c : snapshot.counters) {
    out += "counter ";
    out += LabeledName(c);
    out += ' ';
    out += std::to_string(c.value);
    out += '\n';
  }
  for (const MetricPoint& g : snapshot.gauges) {
    out += "gauge ";
    out += LabeledName(g);
    out += ' ';
    out += std::to_string(g.value);
    out += '\n';
  }
  for (const HistogramPoint& h : snapshot.histograms) {
    const HistogramSnapshot& s = h.snapshot;
    out += "histogram ";
    out += LabeledName(h);
    out += " count=" + std::to_string(s.count);
    out += " min=" + std::to_string(s.min);
    out += " max=" + std::to_string(s.max);
    out += " mean=" + FormatDouble(s.mean);
    out += " p50=" + FormatDouble(s.p50);
    out += " p90=" + FormatDouble(s.p90);
    out += " p95=" + FormatDouble(s.p95);
    out += " p99=" + FormatDouble(s.p99);
    out += " p999=" + FormatDouble(s.p999);
    out += '\n';
  }
  return out;
}

std::string ToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": [";
  bool first = true;
  for (const MetricPoint& c : snapshot.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\":\"" + Escape(c.name) + "\",\"labels\":" +
           JsonLabels(c.labels) + ",\"value\":" + std::to_string(c.value) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"gauges\": [";
  first = true;
  for (const MetricPoint& g : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\":\"" + Escape(g.name) + "\",\"labels\":" +
           JsonLabels(g.labels) + ",\"value\":" + std::to_string(g.value) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"histograms\": [";
  first = true;
  for (const HistogramPoint& h : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\":\"" + Escape(h.name) + "\",\"labels\":" +
           JsonLabels(h.labels) + ",\"value\":" + h.snapshot.ToJson() + "}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string ToPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::set<std::string> typed;
  for (const MetricPoint& c : snapshot.counters) {
    MaybeType(out, typed, c.name, "counter");
    out += PromLine(c.name, c.labels, "", std::to_string(c.value));
  }
  for (const MetricPoint& g : snapshot.gauges) {
    MaybeType(out, typed, g.name, "gauge");
    out += PromLine(g.name, g.labels, "", std::to_string(g.value));
  }
  for (const HistogramPoint& h : snapshot.histograms) {
    MaybeType(out, typed, h.name, "summary");
    const HistogramSnapshot& s = h.snapshot;
    out += PromLine(h.name, h.labels, "quantile=\"0.5\"", FormatDouble(s.p50));
    out += PromLine(h.name, h.labels, "quantile=\"0.9\"", FormatDouble(s.p90));
    out += PromLine(h.name, h.labels, "quantile=\"0.99\"", FormatDouble(s.p99));
    out +=
        PromLine(h.name, h.labels, "quantile=\"0.999\"", FormatDouble(s.p999));
    out += PromLine(h.name + "_sum", h.labels, "", std::to_string(s.sum));
    out += PromLine(h.name + "_count", h.labels, "", std::to_string(s.count));
  }
  return out;
}

PeriodicReporter::PeriodicReporter(const MetricsRegistry* registry,
                                   int64_t interval_micros, Sink sink)
    : registry_(registry),
      interval_micros_(interval_micros),
      sink_(std::move(sink)) {
  if (!sink_) {
    sink_ = [](const MetricsSnapshot& snapshot) {
      TXREP_LOG(kInfo) << "metrics snapshot\n" << ToText(snapshot);
    };
  }
  thread_ = std::thread([this] { Loop(); });
}

PeriodicReporter::~PeriodicReporter() { Stop(); }

void PeriodicReporter::Stop() {
  {
    check::MutexLock lock(&mu_);
    if (stop_) return;
    stop_ = true;
    cv_.NotifyAll();
  }
  if (thread_.joinable()) thread_.join();
  // Final flush: a run shorter than the interval would otherwise report
  // nothing, and the tail interval's activity would always be lost.
  sink_(registry_->Snapshot());
}

void PeriodicReporter::Loop() {
  for (;;) {
    {
      check::MutexLock lock(&mu_);
      // A true return means notified (or spurious) with stop_ still unset:
      // keep waiting. A timeout means the interval elapsed: report.
      while (!stop_ && cv_.WaitForMicros(interval_micros_)) {
      }
      if (stop_) return;
    }
    sink_(registry_->Snapshot());
  }
}

}  // namespace txrep::obs
