#ifndef TXREP_OBS_EXPORTERS_H_
#define TXREP_OBS_EXPORTERS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "check/mutex.h"
#include "obs/metrics.h"

namespace txrep::obs {

/// Human-readable dump, one instrument per line:
///   counter txrep_tm_submitted_total{} 42
///   histogram txrep_stage_latency_us{stage="apply"} count=42 mean=103.2 ...
std::string ToText(const MetricsSnapshot& snapshot);

/// JSON document with "counters"/"gauges"/"histograms" arrays; histogram
/// bodies use HistogramSnapshot::ToJson (the shared serialization path).
std::string ToJson(const MetricsSnapshot& snapshot);

/// Prometheus text exposition format (0.0.4). Histograms are exported as
/// summaries (quantile series + _sum + _count) since the internal buckets
/// are power-of-two, not cumulative-le.
std::string ToPrometheus(const MetricsSnapshot& snapshot);

/// Background thread that snapshots a registry every `interval_micros` and
/// hands it to `sink`; with no sink the text dump goes to TXREP_LOG(kInfo).
/// Stop() (or destruction) halts it; the registry must outlive the reporter.
class PeriodicReporter {
 public:
  using Sink = std::function<void(const MetricsSnapshot&)>;

  PeriodicReporter(const MetricsRegistry* registry, int64_t interval_micros,
                   Sink sink = nullptr);
  ~PeriodicReporter();

  PeriodicReporter(const PeriodicReporter&) = delete;
  PeriodicReporter& operator=(const PeriodicReporter&) = delete;

  /// Stops the reporting thread and emits one final snapshot, so runs
  /// shorter than the interval still report the tail's metrics. Idempotent
  /// (the flush happens only on the first call).
  void Stop();

 private:
  void Loop();

  // analyze: lock-free(set in ctor, never reseated; pointee has its own synchronization)
  const MetricsRegistry* registry_;  // Not owned.
  const int64_t interval_micros_;
  // analyze: lock-free(set in ctor, immutable afterwards)
  Sink sink_;

  check::Mutex mu_{"reporter.mu"};
  check::CondVar cv_{&mu_};
  bool stop_ TXREP_GUARDED_BY(mu_) = false;
  // analyze: lock-free(thread handle; started once, joined in Stop/dtor only)
  std::thread thread_;
};

}  // namespace txrep::obs

#endif  // TXREP_OBS_EXPORTERS_H_
