#ifndef TXREP_QT_CONSISTENCY_CHECKER_H_
#define TXREP_QT_CONSISTENCY_CHECKER_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "kv/kv_store.h"
#include "qt/query_translator.h"
#include "rel/database.h"

namespace txrep::qt {

/// Outcome of a full replica audit.
struct ConsistencyReport {
  int64_t rows_checked = 0;
  int64_t hash_postings_checked = 0;
  int64_t range_entries_checked = 0;

  /// Human-readable description of every inconsistency found (empty = clean).
  std::vector<std::string> violations;

  bool consistent() const { return violations.empty(); }

  /// One-line summary.
  std::string Summary() const;
};

/// Audits a replica against the database it replicates: every row object
/// present and byte-equal, hash-index postings exactly the matching row
/// keys, every B-link range index structurally valid and containing exactly
/// the expected entries, and no stray objects in the store.
///
/// Operational tool (run it after a catch-up, before failing reads over to a
/// replica, in tests, ...). Read-only; pair with a quiesced pipeline
/// (SyncToLatest) for a meaningful answer.
Result<ConsistencyReport> CheckReplicaConsistency(
    kv::KvStore& store, rel::Database& db, const QueryTranslator& translator);

}  // namespace txrep::qt

#endif  // TXREP_QT_CONSISTENCY_CHECKER_H_
