#include "qt/query_translator.h"

#include <algorithm>

#include "codec/kv_keys.h"
#include "codec/row_codec.h"

namespace txrep::qt {

QueryTranslator::QueryTranslator(const rel::Catalog* catalog,
                                 blink::BlinkTreeOptions blink_options)
    : catalog_(catalog), blink_options_(blink_options) {}

Status QueryTranslator::InitializeIndexes(kv::KvStore* store) const {
  for (const std::string& table_name : catalog_->TableNames()) {
    TXREP_ASSIGN_OR_RETURN(const rel::TableSchema* schema,
                           catalog_->GetTable(table_name));
    for (size_t col : schema->range_index_columns()) {
      blink::BlinkTree tree(store, table_name, schema->columns()[col].name,
                            blink_options_);
      TXREP_RETURN_IF_ERROR(tree.Init());
    }
  }
  return Status::OK();
}

Status QueryTranslator::HashIndexAdd(kv::KvStore* store,
                                     const std::string& table,
                                     const std::string& column,
                                     const rel::Value& value,
                                     const std::string& row_key) const {
  const kv::Key index_key = codec::HashIndexKey(table, column, value);
  std::vector<std::string> postings;
  Result<kv::Value> existing = store->Get(index_key);
  if (existing.ok()) {
    TXREP_ASSIGN_OR_RETURN(postings, codec::DecodePostings(*existing));
  } else if (!existing.status().IsNotFound()) {
    return existing.status();
  }
  postings.push_back(row_key);
  return store->Put(index_key, codec::EncodePostings(postings));
}

Status QueryTranslator::HashIndexRemove(kv::KvStore* store,
                                        const std::string& table,
                                        const std::string& column,
                                        const rel::Value& value,
                                        const std::string& row_key) const {
  const kv::Key index_key = codec::HashIndexKey(table, column, value);
  Result<kv::Value> existing = store->Get(index_key);
  if (!existing.ok()) {
    if (existing.status().IsNotFound()) {
      // Index entry already gone: tolerated (replay is restart-safe), the
      // row object is the source of truth.
      return Status::OK();
    }
    return existing.status();
  }
  TXREP_ASSIGN_OR_RETURN(std::vector<std::string> postings,
                         codec::DecodePostings(*existing));
  postings.erase(std::remove(postings.begin(), postings.end(), row_key),
                 postings.end());
  if (postings.empty()) {
    return store->Delete(index_key);
  }
  return store->Put(index_key, codec::EncodePostings(postings));
}

Status QueryTranslator::ApplyInsert(kv::KvStore* store,
                                    const rel::TableSchema& schema,
                                    const rel::LogOp& op) const {
  const std::string row_key = codec::RowKey(op.table, op.pk);
  TXREP_RETURN_IF_ERROR(store->Put(row_key, codec::EncodeRow(op.after)));
  for (size_t col : schema.hash_index_columns()) {
    const rel::Value& v = op.after[col];
    if (v.is_null()) continue;
    TXREP_RETURN_IF_ERROR(
        HashIndexAdd(store, op.table, schema.columns()[col].name, v, row_key));
  }
  for (size_t col : schema.range_index_columns()) {
    const rel::Value& v = op.after[col];
    if (v.is_null()) continue;
    blink::BlinkTree tree(store, op.table, schema.columns()[col].name,
                          blink_options_);
    TXREP_RETURN_IF_ERROR(tree.Insert(v, row_key));
  }
  return Status::OK();
}

Status QueryTranslator::ApplyUpdate(kv::KvStore* store,
                                    const rel::TableSchema& schema,
                                    const rel::LogOp& op) const {
  const std::string row_key = codec::RowKey(op.table, op.pk);
  // The old row must be read to maintain the secondary indexes. If the row is
  // not there yet, a predecessor transaction has not been applied: surface
  // the error — under the TM this read conflicts with that predecessor and
  // the transaction restarts.
  TXREP_ASSIGN_OR_RETURN(kv::Value old_bytes, store->Get(row_key));
  TXREP_ASSIGN_OR_RETURN(rel::Row old_row, codec::DecodeRow(old_bytes));

  for (size_t col : schema.hash_index_columns()) {
    const rel::Value& old_v = old_row[col];
    const rel::Value& new_v = op.after[col];
    if (old_v == new_v) continue;
    const std::string& column = schema.columns()[col].name;
    if (!old_v.is_null()) {
      TXREP_RETURN_IF_ERROR(
          HashIndexRemove(store, op.table, column, old_v, row_key));
    }
    if (!new_v.is_null()) {
      TXREP_RETURN_IF_ERROR(
          HashIndexAdd(store, op.table, column, new_v, row_key));
    }
  }
  for (size_t col : schema.range_index_columns()) {
    const rel::Value& old_v = old_row[col];
    const rel::Value& new_v = op.after[col];
    if (old_v == new_v) continue;
    const std::string& column = schema.columns()[col].name;
    blink::BlinkTree tree(store, op.table, column, blink_options_);
    if (!old_v.is_null()) {
      TXREP_RETURN_IF_ERROR(tree.Remove(old_v, row_key));
    }
    if (!new_v.is_null()) {
      TXREP_RETURN_IF_ERROR(tree.Insert(new_v, row_key));
    }
  }
  return store->Put(row_key, codec::EncodeRow(op.after));
}

Status QueryTranslator::ApplyDelete(kv::KvStore* store,
                                    const rel::TableSchema& schema,
                                    const rel::LogOp& op) const {
  const std::string row_key = codec::RowKey(op.table, op.pk);
  TXREP_ASSIGN_OR_RETURN(kv::Value old_bytes, store->Get(row_key));
  TXREP_ASSIGN_OR_RETURN(rel::Row old_row, codec::DecodeRow(old_bytes));

  for (size_t col : schema.hash_index_columns()) {
    const rel::Value& v = old_row[col];
    if (v.is_null()) continue;
    TXREP_RETURN_IF_ERROR(HashIndexRemove(
        store, op.table, schema.columns()[col].name, v, row_key));
  }
  for (size_t col : schema.range_index_columns()) {
    const rel::Value& v = old_row[col];
    if (v.is_null()) continue;
    blink::BlinkTree tree(store, op.table, schema.columns()[col].name,
                          blink_options_);
    TXREP_RETURN_IF_ERROR(tree.Remove(v, row_key));
  }
  return store->Delete(row_key);
}

Status QueryTranslator::ApplyLogOp(kv::KvStore* store,
                                   const rel::LogOp& op) const {
  TXREP_ASSIGN_OR_RETURN(const rel::TableSchema* schema,
                         catalog_->GetTable(op.table));
  switch (op.type) {
    case rel::LogOpType::kInsert:
      return ApplyInsert(store, *schema, op);
    case rel::LogOpType::kUpdate:
      return ApplyUpdate(store, *schema, op);
    case rel::LogOpType::kDelete:
      return ApplyDelete(store, *schema, op);
  }
  return Status::Internal("unreachable log op type");
}

Status QueryTranslator::ApplyTransaction(kv::KvStore* store,
                                         const rel::LogTransaction& txn) const {
  for (const rel::LogOp& op : txn.ops) {
    TXREP_RETURN_IF_ERROR(ApplyLogOp(store, op));
  }
  return Status::OK();
}

Status QueryTranslator::LoadSnapshot(kv::KvStore* store,
                                     const rel::Database& db) const {
  TXREP_RETURN_IF_ERROR(InitializeIndexes(store));
  for (const auto& [table_name, rows] : db.DumpAll()) {
    TXREP_ASSIGN_OR_RETURN(const rel::TableSchema* schema,
                           catalog_->GetTable(table_name));
    for (const rel::Row& row : rows) {
      rel::LogOp op;
      op.type = rel::LogOpType::kInsert;
      op.table = table_name;
      op.pk = row[schema->pk_index()];
      op.after = row;
      TXREP_RETURN_IF_ERROR(ApplyInsert(store, *schema, op));
    }
  }
  return Status::OK();
}

}  // namespace txrep::qt
