#ifndef TXREP_QT_QUERY_TRANSLATOR_H_
#define TXREP_QT_QUERY_TRANSLATOR_H_

#include <string>

#include "blink/blink_tree.h"
#include "common/status.h"
#include "kv/kv_store.h"
#include "rel/database.h"
#include "rel/schema.h"
#include "rel/txlog.h"

namespace txrep::qt {

/// The Query Translator (paper §4): maps relational write statements onto
/// key-value store operations, maintaining the full relational layout on the
/// replica:
///   - one KV object per tuple           (RowKey,        paper Fig. 6)
///   - one KV object per hash-index key  (HashIndexKey,  paper Fig. 7)
///   - one KV object per B-link node     (range indexes, paper §4.2)
///
/// Translation is *executed*, not merely emitted: index maintenance must read
/// current replica state (e.g. the old row of an UPDATE), so each logged op
/// becomes a program of GET/PUT/DELETE against a KvStore. When that store is
/// a transaction buffer (core/TxnBuffer), the reads/writes become the
/// transaction's read/write sets and all conflicts fall out of the TM's
/// concurrency control — exactly the paper's design.
///
/// Stateless and therefore trivially thread-safe; the catalog must outlive it.
class QueryTranslator {
 public:
  explicit QueryTranslator(const rel::Catalog* catalog,
                           blink::BlinkTreeOptions blink_options = {});

  /// Creates empty B-link trees for every declared range index. Call once on
  /// a fresh replica before applying any transaction.
  Status InitializeIndexes(kv::KvStore* store) const;

  /// Applies one logged write op (row object + hash index + range index
  /// maintenance) through `store`.
  Status ApplyLogOp(kv::KvStore* store, const rel::LogOp& op) const;

  /// Applies all ops of one logged transaction, in order.
  Status ApplyTransaction(kv::KvStore* store,
                          const rel::LogTransaction& txn) const;

  /// Bulk-loads a full database snapshot (rows + all index structures) into
  /// an empty replica — the initial copy before log shipping starts.
  Status LoadSnapshot(kv::KvStore* store, const rel::Database& db) const;

  const rel::Catalog& catalog() const { return *catalog_; }
  const blink::BlinkTreeOptions& blink_options() const {
    return blink_options_;
  }

 private:
  Status ApplyInsert(kv::KvStore* store, const rel::TableSchema& schema,
                     const rel::LogOp& op) const;
  Status ApplyUpdate(kv::KvStore* store, const rel::TableSchema& schema,
                     const rel::LogOp& op) const;
  Status ApplyDelete(kv::KvStore* store, const rel::TableSchema& schema,
                     const rel::LogOp& op) const;

  /// Adds `row_key` to the posting list object of (table, column, value).
  Status HashIndexAdd(kv::KvStore* store, const std::string& table,
                      const std::string& column, const rel::Value& value,
                      const std::string& row_key) const;

  /// Removes `row_key` from the posting list (deletes the object when it
  /// becomes empty, keeping the replica layout canonical).
  Status HashIndexRemove(kv::KvStore* store, const std::string& table,
                         const std::string& column, const rel::Value& value,
                         const std::string& row_key) const;

  const rel::Catalog* catalog_;  // Not owned.
  blink::BlinkTreeOptions blink_options_;
};

}  // namespace txrep::qt

#endif  // TXREP_QT_QUERY_TRANSLATOR_H_
