#include "qt/consistency_checker.h"

#include <algorithm>
#include <map>
#include <set>

#include "blink/blink_tree.h"
#include "codec/kv_keys.h"
#include "codec/row_codec.h"
#include "common/logging.h"

namespace txrep::qt {

namespace {
std::string KeyEqualityPair(const rel::Value& a, const rel::Value& b) {
  return a.ToString() + " vs " + b.ToString();
}
}  // namespace

std::string ConsistencyReport::Summary() const {
  std::string out = "rows=" + std::to_string(rows_checked) +
                    " hash_postings=" + std::to_string(hash_postings_checked) +
                    " range_entries=" + std::to_string(range_entries_checked);
  out += violations.empty()
             ? " CONSISTENT"
             : (" INCONSISTENT (" + std::to_string(violations.size()) +
                " violations)");
  return out;
}

Result<ConsistencyReport> CheckReplicaConsistency(
    kv::KvStore& store, rel::Database& db, const QueryTranslator& translator) {
  const rel::Catalog& catalog = translator.catalog();
  ConsistencyReport report;
  std::set<std::string> expected_row_keys;

  for (const auto& [table_name, rows] : db.DumpAll()) {
    TXREP_ASSIGN_OR_RETURN(const rel::TableSchema* schema,
                           catalog.GetTable(table_name));

    std::map<std::pair<size_t, rel::Value>, std::vector<std::string>> postings;
    std::map<size_t, std::vector<std::pair<rel::Value, std::string>>>
        range_entries;

    for (const rel::Row& row : rows) {
      const rel::Value& pk = row[schema->pk_index()];
      const std::string row_key = codec::RowKey(table_name, pk);
      expected_row_keys.insert(row_key);
      ++report.rows_checked;

      Result<kv::Value> bytes = store.Get(row_key);
      if (!bytes.ok()) {
        report.violations.push_back("missing row object " + row_key + ": " +
                                    bytes.status().ToString());
        continue;
      }
      Result<rel::Row> replica_row = codec::DecodeRow(*bytes);
      if (!replica_row.ok()) {
        report.violations.push_back("undecodable row object " + row_key);
        continue;
      }
      if (*replica_row != row) {
        report.violations.push_back(
            "row mismatch at " + row_key + ": replica=" +
            rel::RowToString(*replica_row) + " db=" + rel::RowToString(row));
      }
      for (size_t col : schema->hash_index_columns()) {
        if (!row[col].is_null()) postings[{col, row[col]}].push_back(row_key);
      }
      for (size_t col : schema->range_index_columns()) {
        if (!row[col].is_null()) {
          range_entries[col].emplace_back(row[col], row_key);
        }
      }
    }

    for (auto& [key, expected] : postings) {
      ++report.hash_postings_checked;
      const std::string& column = schema->columns()[key.first].name;
      const kv::Key index_key =
          codec::HashIndexKey(table_name, column, key.second);
      Result<kv::Value> bytes = store.Get(index_key);
      if (!bytes.ok()) {
        report.violations.push_back("missing posting object " + index_key);
        continue;
      }
      Result<std::vector<std::string>> actual = codec::DecodePostings(*bytes);
      if (!actual.ok()) {
        report.violations.push_back("undecodable posting object " + index_key);
        continue;
      }
      std::sort(expected.begin(), expected.end());
      if (*actual != expected) {
        report.violations.push_back(
            "postings mismatch for " + index_key + " (" +
            std::to_string(actual->size()) + " posted, " +
            std::to_string(expected.size()) + " expected, value " +
            KeyEqualityPair(key.second, key.second) + ")");
      }
    }

    for (size_t col : schema->range_index_columns()) {
      const std::string& column = schema->columns()[col].name;
      blink::BlinkTree tree(&store, table_name, column,
                            translator.blink_options());
      Status valid = tree.Validate();
      if (!valid.ok()) {
        report.violations.push_back("range index " + table_name + "." +
                                    column +
                                    " structurally invalid: " +
                                    valid.ToString());
        continue;
      }
      Result<std::vector<blink::EntryKey>> entries =
          tree.RangeScanBounds(std::nullopt, std::nullopt);
      if (!entries.ok()) {
        report.violations.push_back("range index " + table_name + "." +
                                    column + " unscannable");
        continue;
      }
      auto& expected = range_entries[col];
      std::sort(expected.begin(), expected.end(),
                [](const auto& a, const auto& b) {
                  if (a.first != b.first) return a.first < b.first;
                  return a.second < b.second;
                });
      report.range_entries_checked +=
          static_cast<int64_t>(expected.size());
      bool equal = entries->size() == expected.size();
      for (size_t i = 0; equal && i < expected.size(); ++i) {
        equal = (*entries)[i].value == expected[i].first &&
                (*entries)[i].row_key == expected[i].second;
      }
      if (!equal) {
        report.violations.push_back(
            "range index " + table_name + "." + column + " holds " +
            std::to_string(entries->size()) + " entries, expected " +
            std::to_string(expected.size()));
      }
    }
  }

  // Stray object scan: everything in the store must be a known row object, a
  // B-link object, or a posting object referencing known rows.
  for (const auto& [key, value] : store.Dump()) {
    if (key.rfind("!b", 0) == 0) continue;
    if (expected_row_keys.contains(key)) continue;
    Result<std::vector<std::string>> posted = codec::DecodePostings(value);
    if (!posted.ok()) {
      report.violations.push_back("stray undecodable object \"" + key + "\"");
      continue;
    }
    for (const std::string& row_key : *posted) {
      if (!expected_row_keys.contains(row_key)) {
        report.violations.push_back("posting object \"" + key +
                                    "\" references unknown row \"" + row_key +
                                    "\"");
      }
    }
  }
  if (!report.violations.empty()) {
    TXREP_LOG(kWarn) << "replica consistency audit found "
                     << report.violations.size()
                     << " violation(s); first: " << report.violations.front();
  }
  return report;
}

}  // namespace txrep::qt
