#include "qt/replica_reader.h"

#include <algorithm>

#include "codec/kv_keys.h"
#include "codec/row_codec.h"
#include "common/clock.h"
#include "obs/names.h"
#include "rel/select_eval.h"

namespace txrep::qt {

ReplicaReader::ReplicaReader(const rel::Catalog* catalog,
                             blink::BlinkTreeOptions blink_options,
                             obs::MetricsRegistry* metrics)
    : catalog_(catalog), blink_options_(blink_options) {
  if (metrics != nullptr) {
    h_select_latency_ = metrics->GetHistogram(obs::kQtSelectLatency);
    c_plan_pk_ = metrics->GetCounter(obs::kQtSelects, {{"plan", "pk"}});
    c_plan_hash_ = metrics->GetCounter(obs::kQtSelects, {{"plan", "hash"}});
    c_plan_range_ = metrics->GetCounter(obs::kQtSelects, {{"plan", "range"}});
  }
}

Result<rel::Row> ReplicaReader::GetByPk(kv::KvStore* store,
                                        const std::string& table,
                                        const rel::Value& pk) const {
  TXREP_ASSIGN_OR_RETURN(kv::Value bytes,
                         store->Get(codec::RowKey(table, pk)));
  return codec::DecodeRow(bytes);
}

Result<std::vector<rel::Row>> ReplicaReader::FetchRows(
    kv::KvStore* store, const std::vector<std::string>& row_keys) const {
  std::vector<rel::Row> rows;
  rows.reserve(row_keys.size());
  for (const std::string& row_key : row_keys) {
    Result<kv::Value> bytes = store->Get(row_key);
    if (!bytes.ok()) {
      if (bytes.status().IsNotFound()) continue;  // Row deleted concurrently.
      return bytes.status();
    }
    TXREP_ASSIGN_OR_RETURN(rel::Row row, codec::DecodeRow(*bytes));
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<std::vector<rel::Row>> ReplicaReader::GetByAttribute(
    kv::KvStore* store, const std::string& table, const std::string& column,
    const rel::Value& value) const {
  TXREP_ASSIGN_OR_RETURN(const rel::TableSchema* schema,
                         catalog_->GetTable(table));
  TXREP_ASSIGN_OR_RETURN(size_t col, schema->ColumnIndex(column));
  if (!schema->HasHashIndexOn(col)) {
    return Status::FailedPrecondition("no hash index on " + table + "." +
                                      column);
  }
  Result<kv::Value> postings_bytes =
      store->Get(codec::HashIndexKey(table, column, value));
  if (!postings_bytes.ok()) {
    if (postings_bytes.status().IsNotFound()) {
      return std::vector<rel::Row>{};
    }
    return postings_bytes.status();
  }
  TXREP_ASSIGN_OR_RETURN(std::vector<std::string> row_keys,
                         codec::DecodePostings(*postings_bytes));
  return FetchRows(store, row_keys);
}

Result<std::vector<rel::Row>> ReplicaReader::RangeQuery(
    kv::KvStore* store, const std::string& table, const std::string& column,
    const std::optional<rel::Value>& lo,
    const std::optional<rel::Value>& hi) const {
  TXREP_ASSIGN_OR_RETURN(const rel::TableSchema* schema,
                         catalog_->GetTable(table));
  TXREP_ASSIGN_OR_RETURN(size_t col, schema->ColumnIndex(column));
  if (!schema->HasRangeIndexOn(col)) {
    return Status::FailedPrecondition("no range index on " + table + "." +
                                      column);
  }
  blink::BlinkTree tree(store, table, column, blink_options_);
  TXREP_ASSIGN_OR_RETURN(std::vector<blink::EntryKey> entries,
                         tree.RangeScanBounds(lo, hi));
  std::vector<std::string> row_keys;
  row_keys.reserve(entries.size());
  for (blink::EntryKey& e : entries) row_keys.push_back(std::move(e.row_key));
  return FetchRows(store, row_keys);
}

Result<std::vector<rel::Row>> ReplicaReader::Select(
    kv::KvStore* store, const rel::SelectStatement& input) const {
  const int64_t select_start = NowMicros();
  TXREP_ASSIGN_OR_RETURN(const rel::TableSchema* schema,
                         catalog_->GetTable(input.table));
  // Coerce predicate literals to the column types before any index key is
  // built (e.g. `cost = 100` against a DOUBLE column must key as 100.0).
  rel::SelectStatement stmt = input;
  TXREP_RETURN_IF_ERROR(rel::CoercePredicates(*schema, stmt.where));

  // Pick a plan: scan the conjuncts for the best index-backed access path.
  std::vector<rel::Row> rows;
  bool planned = false;

  // Plan 1: primary-key equality.
  for (const rel::Predicate& pred : stmt.where) {
    if (pred.op != rel::PredicateOp::kEq) continue;
    TXREP_ASSIGN_OR_RETURN(size_t col, schema->ColumnIndex(pred.column));
    if (col != schema->pk_index()) continue;
    Result<rel::Row> row = GetByPk(store, stmt.table, pred.operand);
    if (row.ok()) {
      rows.push_back(*std::move(row));
    } else if (!row.status().IsNotFound()) {
      return row.status();
    }
    if (c_plan_pk_ != nullptr) c_plan_pk_->Increment();
    planned = true;
    break;
  }

  // Plan 2: hash-indexed equality.
  if (!planned) {
    for (const rel::Predicate& pred : stmt.where) {
      if (pred.op != rel::PredicateOp::kEq) continue;
      TXREP_ASSIGN_OR_RETURN(size_t col, schema->ColumnIndex(pred.column));
      if (!schema->HasHashIndexOn(col)) continue;
      TXREP_ASSIGN_OR_RETURN(
          rows, GetByAttribute(store, stmt.table, pred.column, pred.operand));
      if (c_plan_hash_ != nullptr) c_plan_hash_->Increment();
      planned = true;
      break;
    }
  }

  // Plan 3: range-indexed range predicate.
  if (!planned) {
    for (const rel::Predicate& pred : stmt.where) {
      TXREP_ASSIGN_OR_RETURN(size_t col, schema->ColumnIndex(pred.column));
      if (!schema->HasRangeIndexOn(col)) continue;
      std::optional<rel::Value> lo, hi;
      switch (pred.op) {
        case rel::PredicateOp::kEq:
          lo = hi = pred.operand;
          break;
        case rel::PredicateOp::kBetween:
          lo = pred.operand;
          hi = pred.operand2;
          break;
        case rel::PredicateOp::kGe:
        case rel::PredicateOp::kGt:  // Residual filter trims the boundary.
          lo = pred.operand;
          break;
        case rel::PredicateOp::kLe:
        case rel::PredicateOp::kLt:
          hi = pred.operand;
          break;
      }
      TXREP_ASSIGN_OR_RETURN(
          rows, RangeQuery(store, stmt.table, pred.column, lo, hi));
      if (c_plan_range_ != nullptr) c_plan_range_->Increment();
      planned = true;
      break;
    }
  }

  if (!planned) {
    return Status::FailedPrecondition(
        "no index-backed plan for query on \"" + stmt.table +
        "\": full key-value scans are not supported (add a hash or range "
        "index, or query by primary key)");
  }

  // Residual filter: every conjunct re-checked against fetched rows.
  std::vector<rel::Row> filtered;
  filtered.reserve(rows.size());
  for (rel::Row& row : rows) {
    bool ok = true;
    for (const rel::Predicate& pred : stmt.where) {
      TXREP_ASSIGN_OR_RETURN(size_t col, schema->ColumnIndex(pred.column));
      if (!pred.Matches(row[col])) {
        ok = false;
        break;
      }
    }
    if (ok) filtered.push_back(std::move(row));
  }

  // Aggregates / ORDER BY / LIMIT / projection — same semantics as the
  // database side (shared evaluator).
  Result<std::vector<rel::Row>> out =
      rel::EvaluateSelectOutput(*schema, std::move(filtered), stmt);
  if (h_select_latency_ != nullptr && out.ok()) {
    h_select_latency_->Record(NowMicros() - select_start);
  }
  return out;
}

}  // namespace txrep::qt
