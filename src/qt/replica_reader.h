#ifndef TXREP_QT_REPLICA_READER_H_
#define TXREP_QT_REPLICA_READER_H_

#include <string>
#include <vector>

#include "blink/blink_tree.h"
#include "common/result.h"
#include "kv/kv_store.h"
#include "obs/metrics.h"
#include "rel/schema.h"
#include "rel/statement.h"

namespace txrep::qt {

/// Read-side of the replica: runs SELECT-shaped queries directly against the
/// key-value layout maintained by the QueryTranslator. This is the paper's
/// "SQL API to the key-value store" (§3), used by the read-only workload.
///
/// Plans, in preference order (full table scans are deliberately unsupported,
/// matching the paper: "usually, we are not allowed to scan the entire
/// table"):
///   1. primary-key equality        -> single row GET
///   2. hash-indexed equality       -> posting-list GET + row GETs
///   3. range-indexed range         -> B-link range scan + row GETs
/// Residual predicates are applied after fetch; projection last.
///
/// Stateless; pass the store explicitly so the same reader works against the
/// raw cluster or a transaction buffer (transactional read-only access).
class ReplicaReader {
 public:
  /// `metrics` (optional, must outlive the reader) receives the SELECT
  /// latency histogram and per-plan counters.
  explicit ReplicaReader(const rel::Catalog* catalog,
                         blink::BlinkTreeOptions blink_options = {},
                         obs::MetricsRegistry* metrics = nullptr);

  /// Fetches one row by primary key (plan 1). NotFound if absent.
  Result<rel::Row> GetByPk(kv::KvStore* store, const std::string& table,
                           const rel::Value& pk) const;

  /// Fetches all rows with `column == value` via the hash index (plan 2).
  /// FailedPrecondition if the column has no hash index.
  Result<std::vector<rel::Row>> GetByAttribute(kv::KvStore* store,
                                               const std::string& table,
                                               const std::string& column,
                                               const rel::Value& value) const;

  /// Fetches all rows with lo <= column <= hi via the B-link index (plan 3).
  /// Open bounds supported. FailedPrecondition if no range index.
  Result<std::vector<rel::Row>> RangeQuery(
      kv::KvStore* store, const std::string& table, const std::string& column,
      const std::optional<rel::Value>& lo,
      const std::optional<rel::Value>& hi) const;

  /// Executes a full SELECT (plan selection + residual filter + projection).
  /// FailedPrecondition when no index-backed plan exists.
  Result<std::vector<rel::Row>> Select(kv::KvStore* store,
                                       const rel::SelectStatement& stmt) const;

 private:
  /// Fetches and decodes the rows behind `row_keys`, skipping keys whose row
  /// object vanished (non-transactional read tolerance).
  Result<std::vector<rel::Row>> FetchRows(
      kv::KvStore* store, const std::vector<std::string>& row_keys) const;

  const rel::Catalog* catalog_;  // Not owned.
  blink::BlinkTreeOptions blink_options_;

  Histogram* h_select_latency_ = nullptr;
  obs::Counter* c_plan_pk_ = nullptr;
  obs::Counter* c_plan_hash_ = nullptr;
  obs::Counter* c_plan_range_ = nullptr;
};

}  // namespace txrep::qt

#endif  // TXREP_QT_REPLICA_READER_H_
