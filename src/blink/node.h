#ifndef TXREP_BLINK_NODE_H_
#define TXREP_BLINK_NODE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "rel/value.h"

namespace txrep::blink {

/// Composite index entry key: (attribute value, row key). Making the row key
/// part of the key keeps duplicate attribute values distinct, so deletions
/// are exact and leaves never grow unbounded posting lists.
struct EntryKey {
  rel::Value value;
  std::string row_key;

  std::string DebugString() const;
};

bool operator==(const EntryKey& a, const EntryKey& b);
bool operator<(const EntryKey& a, const EntryKey& b);
inline bool operator<=(const EntryKey& a, const EntryKey& b) {
  return !(b < a);
}
inline bool operator>(const EntryKey& a, const EntryKey& b) { return b < a; }

/// One B-link tree node, stored as a single key-value object (paper §4.2:
/// "We create a key-value object for each B-link tree node").
///
/// Invariants:
///  - leaf (level 0): `entries` sorted strictly ascending; separators/children
///    empty.
///  - internal (level > 0): `separators` sorted strictly ascending,
///    `children.size() == separators.size() + 1`; child[i] covers keys
///    <= separators[i], child[n] covers the rest (bounded by high_key).
///  - `has_high_key` false only on the rightmost node of its level; otherwise
///    every key in the node is <= high_key and high_key < every key of the
///    right sibling.
struct BlinkNode {
  uint32_t level = 0;  // 0 = leaf.
  bool has_high_key = false;
  EntryKey high_key;
  uint64_t right_id = 0;  // 0 = no right sibling.

  std::vector<EntryKey> entries;     // Leaf payload.
  std::vector<EntryKey> separators;  // Internal routing keys.
  std::vector<uint64_t> children;    // Internal child node ids.

  bool is_leaf() const { return level == 0; }
  size_t KeyCount() const {
    return is_leaf() ? entries.size() : separators.size();
  }

  /// Leaf entries within the node's own key range (<= high_key; all of them
  /// when the node is rightmost). During a split the entries above the high
  /// key have already migrated to the right sibling — a leaf walk that counts
  /// raw `entries.size()` against a torn image counts those twice, once here
  /// and once in the sibling. Counting within the high key is split-safe.
  size_t CountWithinHighKey() const;

  std::string DebugString() const;
};

/// Tree anchor object: current root and the node-id allocator. Stored under
/// BlinkMetaKey so that id allocation and root changes flow through the same
/// key-value (and hence transaction-conflict) machinery as everything else.
struct BlinkMeta {
  uint64_t root_id = 0;
  uint64_t next_id = 1;
};

std::string EncodeBlinkNode(const BlinkNode& node);
Result<BlinkNode> DecodeBlinkNode(std::string_view bytes);

std::string EncodeBlinkMeta(const BlinkMeta& meta);
Result<BlinkMeta> DecodeBlinkMeta(std::string_view bytes);

}  // namespace txrep::blink

#endif  // TXREP_BLINK_NODE_H_
