#include "blink/blink_tree.h"

#include <algorithm>
#include <set>

#include "codec/kv_keys.h"
#include "common/clock.h"

namespace txrep::blink {

namespace {
/// A key lies beyond a node iff the node has a high key and key > high.
bool BeyondNode(const BlinkNode& node, const EntryKey& key) {
  return node.has_high_key && node.high_key < key;
}
}  // namespace

BlinkTree::BlinkTree(kv::KvStore* store, std::string table, std::string column,
                     BlinkTreeOptions options)
    : store_(store),
      table_(std::move(table)),
      column_(std::move(column)),
      options_(options),
      meta_key_(codec::BlinkMetaKey(table_, column_)) {}

std::string BlinkTree::NodeKey(uint64_t id) const {
  return codec::BlinkNodeKey(table_, column_, id);
}

Result<BlinkNode> BlinkTree::ReadNode(uint64_t id) {
  TXREP_ASSIGN_OR_RETURN(kv::Value bytes, store_->Get(NodeKey(id)));
  return DecodeBlinkNode(bytes);
}

Status BlinkTree::WriteNode(uint64_t id, const BlinkNode& node) {
  return store_->Put(NodeKey(id), EncodeBlinkNode(node));
}

Result<BlinkMeta> BlinkTree::ReadMeta() {
  TXREP_ASSIGN_OR_RETURN(kv::Value bytes, store_->Get(meta_key_));
  return DecodeBlinkMeta(bytes);
}

Status BlinkTree::WriteMeta(const BlinkMeta& meta) {
  return store_->Put(meta_key_, EncodeBlinkMeta(meta));
}

Result<uint64_t> BlinkTree::AllocateNodeId() {
  KeyedMutex::Guard guard(latches_, meta_key_);
  TXREP_ASSIGN_OR_RETURN(BlinkMeta meta, ReadMeta());
  const uint64_t id = meta.next_id++;
  TXREP_RETURN_IF_ERROR(WriteMeta(meta));
  return id;
}

Status BlinkTree::Init() {
  KeyedMutex::Guard guard(latches_, meta_key_);
  Result<kv::Value> existing = store_->Get(meta_key_);
  if (existing.ok()) return Status::OK();
  if (!existing.status().IsNotFound()) return existing.status();

  BlinkMeta meta;
  meta.root_id = 1;
  meta.next_id = 2;
  BlinkNode root;  // Empty leaf, no high key, no right sibling.
  TXREP_RETURN_IF_ERROR(WriteNode(meta.root_id, root));
  return WriteMeta(meta);
}

size_t BlinkTree::ChildIndexFor(const BlinkNode& node, const EntryKey& key) {
  // child[i] covers keys <= separators[i]; the last child covers the rest.
  auto it = std::lower_bound(node.separators.begin(), node.separators.end(),
                             key);
  return static_cast<size_t>(it - node.separators.begin());
}

Result<uint64_t> BlinkTree::DescendToLeaf(const EntryKey& key,
                                          std::vector<uint64_t>* path) {
  TXREP_ASSIGN_OR_RETURN(BlinkMeta meta, ReadMeta());
  uint64_t id = meta.root_id;
  for (;;) {
    TXREP_ASSIGN_OR_RETURN(BlinkNode node, ReadNode(id));
    if (BeyondNode(node, key)) {
      if (node.right_id == 0) {
        return Status::Corruption("blink: high key set on rightmost node " +
                                  std::to_string(id));
      }
      id = node.right_id;  // Move right; same level, not recorded on path.
      continue;
    }
    if (node.is_leaf()) return id;
    if (path != nullptr) path->push_back(id);
    id = node.children[ChildIndexFor(node, key)];
  }
}

Result<uint64_t> BlinkTree::DescendToLevel(const EntryKey& key,
                                           uint32_t target_level) {
  TXREP_ASSIGN_OR_RETURN(BlinkMeta meta, ReadMeta());
  uint64_t id = meta.root_id;
  for (;;) {
    TXREP_ASSIGN_OR_RETURN(BlinkNode node, ReadNode(id));
    if (BeyondNode(node, key)) {
      if (node.right_id == 0) {
        return Status::Corruption("blink: high key set on rightmost node");
      }
      id = node.right_id;
      continue;
    }
    if (node.level == target_level) return id;
    if (node.level < target_level) {
      // The tree is shallower than expected (stale path after root change):
      // caller must retry from the (new) root.
      return Status::Internal("blink: level " + std::to_string(target_level) +
                              " not reachable from root");
    }
    id = node.children[ChildIndexFor(node, key)];
  }
}

Result<BlinkTree::LatchedNode> BlinkTree::LatchForKey(
    uint64_t node_id, const EntryKey& key, KeyedMutex::Guard& guard) {
  // The guard already latches node_id. Re-read under the latch and move right
  // while the key lies beyond the node (it may have been split since our
  // lock-free descent).
  for (;;) {
    TXREP_ASSIGN_OR_RETURN(BlinkNode node, ReadNode(node_id));
    if (!BeyondNode(node, key)) {
      return LatchedNode{node_id, std::move(node)};
    }
    if (node.right_id == 0) {
      return Status::Corruption("blink: high key set on rightmost node");
    }
    node_id = node.right_id;
    guard.MoveTo(NodeKey(node_id));
  }
}

Status BlinkTree::Insert(const rel::Value& value, const std::string& row_key) {
  const EntryKey key{value, row_key};
  std::vector<uint64_t> path;
  TXREP_ASSIGN_OR_RETURN(uint64_t leaf_id, DescendToLeaf(key, &path));

  KeyedMutex::Guard guard(latches_, NodeKey(leaf_id));
  TXREP_ASSIGN_OR_RETURN(LatchedNode latched, LatchForKey(leaf_id, key, guard));
  leaf_id = latched.id;
  BlinkNode leaf = std::move(latched.node);

  auto it = std::lower_bound(leaf.entries.begin(), leaf.entries.end(), key);
  if (it != leaf.entries.end() && *it == key) {
    return Status::AlreadyExists("blink entry " + key.DebugString() +
                                 " already present");
  }
  leaf.entries.insert(it, key);

  if (leaf.entries.size() <= options_.max_node_keys) {
    TXREP_RETURN_IF_ERROR(WriteNode(leaf_id, leaf));
    return Status::OK();
  }
  return SplitAndPropagate(leaf_id, std::move(leaf), std::move(guard),
                           std::move(path));
}

Status BlinkTree::SplitAndPropagate(uint64_t node_id, BlinkNode node,
                                    KeyedMutex::Guard guard,
                                    std::vector<uint64_t> path) {
  // Allocate the right sibling's id (meta latch; taken while holding the node
  // latch — meta is always the innermost latch, so this cannot deadlock).
  TXREP_ASSIGN_OR_RETURN(uint64_t right_id, AllocateNodeId());

  BlinkNode right;
  right.level = node.level;
  right.has_high_key = node.has_high_key;
  right.high_key = node.high_key;
  right.right_id = node.right_id;

  EntryKey separator;
  if (node.is_leaf()) {
    const size_t mid = node.entries.size() / 2;
    separator = node.entries[mid - 1];  // Max key staying left.
    right.entries.assign(node.entries.begin() + mid, node.entries.end());
    node.entries.resize(mid);
  } else {
    // Promote the middle separator: it leaves the node and becomes both the
    // left half's high key and the parent's new routing key.
    const size_t mid = node.separators.size() / 2;
    separator = node.separators[mid];
    right.separators.assign(node.separators.begin() + mid + 1,
                            node.separators.end());
    right.children.assign(node.children.begin() + mid + 1,
                          node.children.end());
    node.separators.resize(mid);
    node.children.resize(mid + 1);
  }
  node.has_high_key = true;
  node.high_key = separator;
  node.right_id = right_id;

  // Order matters for lock-free readers: the new right node must exist before
  // the (atomic) overwrite of the left node publishes the link to it.
  TXREP_RETURN_IF_ERROR(WriteNode(right_id, right));
  TXREP_RETURN_IF_ERROR(WriteNode(node_id, node));
  const uint32_t level = node.level;
  guard.Release();

  return InsertIntoParent(node_id, level, separator, right_id,
                          std::move(path));
}

Status BlinkTree::InsertIntoParent(uint64_t left_id, uint32_t left_level,
                                   const EntryKey& separator,
                                   uint64_t right_id,
                                   std::vector<uint64_t> path) {
  // Concurrent split propagations can leave the parent level or the pointer
  // to `left_id` *not yet installed* (a sibling's own InsertIntoParent is
  // still in flight, holding no latches we could wait on). The standard
  // Lehman–Yao answer is to retry the parent location until the in-flight
  // propagation lands; every retry path below is latch-free while sleeping,
  // so the other writer always makes progress.
  // The retry is bounded: when the store is a transaction buffer (TM mode),
  // reads are cached, so a torn cross-key snapshot would never resolve by
  // waiting — returning Unavailable instead lets the TM's conflict/restart
  // machinery re-execute the transaction against fresher state. For direct
  // concurrent use, an in-flight sibling propagation resolves in
  // microseconds, far inside the bound.
  constexpr int kMaxParentRetries = 1000;
  bool first_attempt = true;
  for (int attempt = 0; attempt < kMaxParentRetries; ++attempt) {
    uint64_t parent_id = 0;
    if (first_attempt && !path.empty()) {
      parent_id = path.back();
      path.pop_back();
      first_attempt = false;
    } else {
      first_attempt = false;
      // Left was the root when we descended (or the remembered path went
      // stale). Either it still is the root (grow a new level) or the tree
      // already grew: locate the parent level from the current root.
      KeyedMutex::Guard meta_guard(latches_, meta_key_);
      TXREP_ASSIGN_OR_RETURN(BlinkMeta meta, ReadMeta());
      if (meta.root_id == left_id) {
        BlinkNode new_root;
        new_root.level = left_level + 1;
        new_root.separators = {separator};
        new_root.children = {left_id, right_id};
        const uint64_t new_root_id = meta.next_id++;
        TXREP_RETURN_IF_ERROR(WriteNode(new_root_id, new_root));
        meta.root_id = new_root_id;
        return WriteMeta(meta);
      }
      meta_guard.Release();
      Result<uint64_t> located = DescendToLevel(separator, left_level + 1);
      if (!located.ok()) {
        if (located.status().code() == StatusCode::kInternal) {
          // The parent level does not exist yet: the writer that split the
          // old root has not published the new root. Back off and retry.
          SleepForMicros(50);
          continue;
        }
        return located.status();
      }
      parent_id = *located;
    }

    KeyedMutex::Guard guard(latches_, NodeKey(parent_id));
    TXREP_ASSIGN_OR_RETURN(LatchedNode latched,
                           LatchForKey(parent_id, separator, guard));
    parent_id = latched.id;
    BlinkNode parent = std::move(latched.node);

    // Insert purely by *separator order* (the Lehman–Yao discipline) — never
    // by left_id's position, and without requiring left_id's own pointer to
    // be installed yet:
    //  - if left_id was split again and the newer separator already landed,
    //    position-based insertion would break separator sortedness;
    //  - if left_id's pointer is still in flight (its creator's propagation
    //    has not reached this level), waiting for it can form circular wait
    //    chains between in-flight propagations. Key-ordered insertion is
    //    already correct in that state: keys routed to the stale left
    //    neighbour recover over its right-link, and the in-flight pointer
    //    later lands at its own key position.
    const size_t pos = static_cast<size_t>(
        std::lower_bound(parent.separators.begin(), parent.separators.end(),
                         separator) -
        parent.separators.begin());
    parent.separators.insert(parent.separators.begin() + pos, separator);
    parent.children.insert(parent.children.begin() + pos + 1, right_id);

    if (parent.separators.size() <= options_.max_node_keys) {
      TXREP_RETURN_IF_ERROR(WriteNode(parent_id, parent));
      return Status::OK();
    }
    return SplitAndPropagate(parent_id, std::move(parent), std::move(guard),
                             std::move(path));
  }
  return Status::Unavailable(
      "blink: parent of node " + std::to_string(left_id) +
      " not reachable (in-flight split or stale buffered snapshot)");
}

Status BlinkTree::Remove(const rel::Value& value, const std::string& row_key) {
  const EntryKey key{value, row_key};
  TXREP_ASSIGN_OR_RETURN(uint64_t leaf_id, DescendToLeaf(key, nullptr));

  KeyedMutex::Guard guard(latches_, NodeKey(leaf_id));
  TXREP_ASSIGN_OR_RETURN(LatchedNode latched, LatchForKey(leaf_id, key, guard));
  BlinkNode leaf = std::move(latched.node);

  auto it = std::lower_bound(leaf.entries.begin(), leaf.entries.end(), key);
  if (it == leaf.entries.end() || !(*it == key)) {
    return Status::NotFound("blink entry " + key.DebugString() +
                            " not present");
  }
  leaf.entries.erase(it);
  // B-link simplification: no merge/rebalance; empty leaves are legal and
  // skipped by scans.
  return WriteNode(latched.id, leaf);
}

Result<bool> BlinkTree::Contains(const rel::Value& value,
                                 const std::string& row_key) {
  const EntryKey key{value, row_key};
  TXREP_ASSIGN_OR_RETURN(uint64_t leaf_id, DescendToLeaf(key, nullptr));
  // Lock-free: re-check move-right on the freshly read node.
  uint64_t id = leaf_id;
  for (;;) {
    TXREP_ASSIGN_OR_RETURN(BlinkNode node, ReadNode(id));
    if (BeyondNode(node, key)) {
      id = node.right_id;
      continue;
    }
    return std::binary_search(node.entries.begin(), node.entries.end(), key);
  }
}

Result<std::vector<EntryKey>> BlinkTree::RangeScan(const rel::Value& lo,
                                                   const rel::Value& hi) {
  return RangeScanBounds(lo, hi);
}

Result<std::vector<EntryKey>> BlinkTree::RangeScanBounds(
    const std::optional<rel::Value>& lo, const std::optional<rel::Value>& hi) {
  std::vector<EntryKey> out;
  if (lo.has_value() && hi.has_value() && *hi < *lo) return out;

  uint64_t id;
  std::optional<EntryKey> lo_key;
  if (lo.has_value()) {
    lo_key = EntryKey{*lo, ""};
    TXREP_ASSIGN_OR_RETURN(id, DescendToLeaf(*lo_key, nullptr));
  } else {
    // Leftmost leaf.
    TXREP_ASSIGN_OR_RETURN(BlinkMeta meta, ReadMeta());
    id = meta.root_id;
    for (;;) {
      TXREP_ASSIGN_OR_RETURN(BlinkNode node, ReadNode(id));
      if (node.is_leaf()) break;
      id = node.children.front();
    }
  }
  for (;;) {
    TXREP_ASSIGN_OR_RETURN(BlinkNode node, ReadNode(id));
    if (lo_key.has_value() && BeyondNode(node, *lo_key)) {
      id = node.right_id;
      continue;
    }
    auto it = lo_key.has_value()
                  ? std::lower_bound(node.entries.begin(), node.entries.end(),
                                     *lo_key)
                  : node.entries.begin();
    for (; it != node.entries.end(); ++it) {
      if (hi.has_value() && *hi < it->value) return out;
      out.push_back(*it);
    }
    if (node.right_id == 0) return out;
    // Stop early if everything to the right is beyond hi.
    if (hi.has_value() && node.has_high_key && *hi < node.high_key.value) {
      return out;
    }
    id = node.right_id;
  }
}

Result<std::vector<std::string>> BlinkTree::RangeScanRowKeys(
    const rel::Value& lo, const rel::Value& hi) {
  TXREP_ASSIGN_OR_RETURN(std::vector<EntryKey> entries, RangeScan(lo, hi));
  std::vector<std::string> row_keys;
  row_keys.reserve(entries.size());
  for (EntryKey& e : entries) row_keys.push_back(std::move(e.row_key));
  return row_keys;
}

Result<size_t> BlinkTree::EntryCount() {
  // Walk the leaf level from the leftmost leaf.
  TXREP_ASSIGN_OR_RETURN(BlinkMeta meta, ReadMeta());
  uint64_t id = meta.root_id;
  for (;;) {
    TXREP_ASSIGN_OR_RETURN(BlinkNode node, ReadNode(id));
    if (node.is_leaf()) break;
    id = node.children.front();
  }
  size_t count = 0;
  for (;;) {
    TXREP_ASSIGN_OR_RETURN(BlinkNode node, ReadNode(id));
    count += node.entries.size();
    if (node.right_id == 0) return count;
    id = node.right_id;
  }
}

Status BlinkTree::Validate() {
  TXREP_ASSIGN_OR_RETURN(BlinkMeta meta, ReadMeta());
  // Walk each level via the leftmost spine; validate every node on the level.
  uint64_t level_head = meta.root_id;
  std::set<uint64_t> seen;
  int64_t expected_level = -1;
  for (;;) {
    TXREP_ASSIGN_OR_RETURN(BlinkNode head, ReadNode(level_head));
    if (expected_level == -1) {
      expected_level = head.level;
    } else if (head.level != expected_level) {
      return Status::Corruption("blink: level mismatch on leftmost spine");
    }
    uint64_t id = level_head;
    for (;;) {
      TXREP_ASSIGN_OR_RETURN(BlinkNode node, ReadNode(id));
      if (!seen.insert(id).second) {
        return Status::Corruption("blink: node " + std::to_string(id) +
                                  " reachable twice (right-link cycle?)");
      }
      if (node.level != head.level) {
        return Status::Corruption("blink: right chain crosses levels at " +
                                  std::to_string(id));
      }
      const auto& keys = node.is_leaf() ? node.entries : node.separators;
      for (size_t i = 0; i + 1 < keys.size(); ++i) {
        if (!(keys[i] < keys[i + 1])) {
          return Status::Corruption("blink: unsorted keys in node " +
                                    std::to_string(id));
        }
      }
      if (!node.is_leaf() &&
          node.children.size() != node.separators.size() + 1) {
        return Status::Corruption("blink: bad fanout arity in node " +
                                  std::to_string(id));
      }
      if (node.has_high_key) {
        for (const EntryKey& k : keys) {
          if (node.high_key < k) {
            return Status::Corruption("blink: key above high key in node " +
                                      std::to_string(id));
          }
        }
        if (node.right_id == 0) {
          return Status::Corruption(
              "blink: high key set on rightmost node " + std::to_string(id));
        }
      } else if (node.right_id != 0) {
        return Status::Corruption("blink: rightmost-looking node " +
                                  std::to_string(id) + " has right sibling");
      }
      if (!node.is_leaf()) {
        // Children must live exactly one level down.
        for (uint64_t child : node.children) {
          TXREP_ASSIGN_OR_RETURN(BlinkNode child_node, ReadNode(child));
          if (child_node.level + 1 != node.level) {
            return Status::Corruption("blink: child level gap under node " +
                                      std::to_string(id));
          }
        }
      }
      if (node.right_id == 0) break;
      id = node.right_id;
    }
    if (head.is_leaf()) return Status::OK();
    level_head = head.children.front();
    expected_level = static_cast<int64_t>(head.level) - 1;
  }
}

}  // namespace txrep::blink
