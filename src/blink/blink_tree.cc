#include "blink/blink_tree.h"

#include <algorithm>
#include <set>

#include "codec/kv_keys.h"
#include "common/clock.h"
#include "obs/names.h"

namespace txrep::blink {

namespace {
/// A key lies beyond a node iff the node has a high key and key > high.
bool BeyondNode(const BlinkNode& node, const EntryKey& key) {
  return node.has_high_key && node.high_key < key;
}

/// Backoff between parent-level retry rounds (DescendToLevel waiting out an
/// in-flight root publication).
constexpr int64_t kParentWaitMicros = 50;
}  // namespace

BlinkTree::BlinkTree(kv::KvStore* store, std::string table, std::string column,
                     BlinkTreeOptions options)
    : store_(store),
      table_(std::move(table)),
      column_(std::move(column)),
      options_(options),
      meta_key_(codec::BlinkMetaKey(table_, column_)) {
  if (options_.metrics != nullptr) {
    const obs::Labels labels = {{"index", table_ + "." + column_}};
    c_read_retries_ =
        options_.metrics->GetCounter(obs::kBlinkReadRetries, labels);
    c_obsolete_hits_ =
        options_.metrics->GetCounter(obs::kBlinkObsoleteHits, labels);
  }
}

std::string BlinkTree::NodeKey(uint64_t id) const {
  return codec::BlinkNodeKey(table_, column_, id);
}

Result<BlinkNode> BlinkTree::ReadNode(uint64_t id) {
  TXREP_ASSIGN_OR_RETURN(kv::Value bytes, store_->Get(NodeKey(id)));
  return DecodeBlinkNode(bytes);
}

Result<BlinkNode> BlinkTree::ReadNodeOpt(uint64_t id) {
  // Ids beyond the latch table would force a giant segment allocation; a
  // well-formed tree never produces them (AllocateNodeId bounds the counter),
  // so treat them as corrupt pointers before touching the table.
  if (id == 0 || id >= OptLatchTable::kCapacity) {
    return Status::Corruption("blink: node id " + std::to_string(id) +
                              " outside latch-table range");
  }
  OptLatch& latch = latches_.Get(id);
  SpinBackoff backoff;
  for (int attempt = 0; attempt < options_.max_read_attempts; ++attempt) {
    int spins = 0;
    const uint64_t snapshot = latch.ReadBegin(&spins);
    if (spins > 0) read_spins_.fetch_add(spins, std::memory_order_relaxed);
    if (OptLatch::IsObsolete(snapshot)) {
      obsolete_hits_.fetch_add(1, std::memory_order_relaxed);
      if (c_obsolete_hits_ != nullptr) c_obsolete_hits_->Increment();
      return Status::Aborted("blink: node " + std::to_string(id) +
                             " is obsolete; restart from root");
    }
    Result<kv::Value> bytes = store_->Get(NodeKey(id));
    if (bytes.ok()) {
      Result<BlinkNode> node = DecodeBlinkNode(*bytes);
      if (latch.ReadValidate(snapshot)) {
        // No writer overlapped the GET+decode: a decode failure here is real
        // corruption, not a torn read.
        return node;
      }
    } else if (!bytes.status().IsNotFound()) {
      return bytes.status();
    } else if (latch.ReadValidate(snapshot)) {
      // The snapshot genuinely lacks this object — a pointer dangled into a
      // stale buffered view. Poison the latch so every later reader restarts
      // from the root immediately instead of re-fetching.
      latch.MarkObsolete();
      obsolete_hits_.fetch_add(1, std::memory_order_relaxed);
      if (c_obsolete_hits_ != nullptr) c_obsolete_hits_->Increment();
      return Status::Aborted("blink: node " + std::to_string(id) +
                             " missing from snapshot");
    }
    read_retries_.fetch_add(1, std::memory_order_relaxed);
    if (c_read_retries_ != nullptr) c_read_retries_->Increment();
    backoff.Pause();
  }
  return Status::Aborted("blink: node " + std::to_string(id) +
                         " read did not stabilize after " +
                         std::to_string(options_.max_read_attempts) +
                         " attempts");
}

Status BlinkTree::WriteNode(uint64_t id, const BlinkNode& node) {
  return store_->Put(NodeKey(id), EncodeBlinkNode(node));
}

Result<BlinkMeta> BlinkTree::ReadMeta() {
  TXREP_ASSIGN_OR_RETURN(kv::Value bytes, store_->Get(meta_key_));
  return DecodeBlinkMeta(bytes);
}

Status BlinkTree::WriteMeta(const BlinkMeta& meta) {
  return store_->Put(meta_key_, EncodeBlinkMeta(meta));
}

Result<uint64_t> BlinkTree::AllocateNodeId() {
  OptGuard guard(&meta_latch_);
  TXREP_ASSIGN_OR_RETURN(BlinkMeta meta, ReadMeta());
  const uint64_t id = meta.next_id++;
  if (id >= OptLatchTable::kCapacity) {
    return Status::Corruption("blink: node id space exhausted at " +
                              std::to_string(id));
  }
  Status put = WriteMeta(meta);
  guard.PublishAndRelease();  // The store may hold the new counter on error.
  TXREP_RETURN_IF_ERROR(put);
  return id;
}

Status BlinkTree::Init() {
  OptGuard guard(&meta_latch_);
  Result<kv::Value> existing = store_->Get(meta_key_);
  if (existing.ok()) return Status::OK();
  if (!existing.status().IsNotFound()) return existing.status();

  BlinkMeta meta;
  meta.root_id = 1;
  meta.next_id = 2;
  BlinkNode root;  // Empty leaf, no high key, no right sibling.
  TXREP_RETURN_IF_ERROR(WriteNode(meta.root_id, root));
  Status put = WriteMeta(meta);
  guard.PublishAndRelease();
  return put;
}

size_t BlinkTree::ChildIndexFor(const BlinkNode& node, const EntryKey& key) {
  // child[i] covers keys <= separators[i]; the last child covers the rest.
  auto it = std::lower_bound(node.separators.begin(), node.separators.end(),
                             key);
  return static_cast<size_t>(it - node.separators.begin());
}

Result<BlinkTree::LeafView> BlinkTree::DescendToLeafView(
    const EntryKey& key, std::vector<uint64_t>* path) {
  for (int restart = 0;; ++restart) {
    if (restart > 0) {
      read_restarts_.fetch_add(1, std::memory_order_relaxed);
      if (restart >= options_.max_read_restarts) {
        return Status::Aborted("blink: descent to leaf did not stabilize "
                               "after " +
                               std::to_string(options_.max_read_restarts) +
                               " restarts");
      }
      if (path != nullptr) path->clear();
    }
    // The meta read needs no validation: a stale root is still a correct
    // entry point — right-links and extra descent steps repair the rest.
    TXREP_ASSIGN_OR_RETURN(BlinkMeta meta, ReadMeta());
    uint64_t id = meta.root_id;
    int hops = 0;
    bool from_root = false;
    while (!from_root) {
      Result<BlinkNode> node = ReadNodeOpt(id);
      if (!node.ok()) {
        if (node.status().IsAborted()) {
          from_root = true;  // Obsolete/unstable node: restart the descent.
          break;
        }
        return node.status();
      }
      if (BeyondNode(*node, key)) {
        if (node->right_id == 0) {
          return Status::Corruption("blink: high key set on rightmost node " +
                                    std::to_string(id));
        }
        move_rights_.fetch_add(1, std::memory_order_relaxed);
        if (++hops >= options_.max_move_right) {
          from_root = true;  // Runaway right chain: restart the descent.
          break;
        }
        id = node->right_id;  // Move right; same level, not recorded on path.
        continue;
      }
      if (node->is_leaf()) return LeafView{id, *std::move(node)};
      if (path != nullptr) path->push_back(id);
      id = node->children[ChildIndexFor(*node, key)];
    }
  }
}

Result<uint64_t> BlinkTree::DescendToLeaf(const EntryKey& key,
                                          std::vector<uint64_t>* path) {
  TXREP_ASSIGN_OR_RETURN(LeafView view, DescendToLeafView(key, path));
  return view.id;
}

Result<uint64_t> BlinkTree::LeftmostLeaf() {
  for (int restart = 0;; ++restart) {
    if (restart > 0) {
      read_restarts_.fetch_add(1, std::memory_order_relaxed);
      if (restart >= options_.max_read_restarts) {
        return Status::Aborted("blink: leftmost-leaf descent did not "
                               "stabilize after " +
                               std::to_string(options_.max_read_restarts) +
                               " restarts");
      }
    }
    TXREP_ASSIGN_OR_RETURN(BlinkMeta meta, ReadMeta());
    uint64_t id = meta.root_id;
    bool again = false;
    while (!again) {
      Result<BlinkNode> node = ReadNodeOpt(id);
      if (!node.ok()) {
        if (node.status().IsAborted()) {
          again = true;
          break;
        }
        return node.status();
      }
      if (node->is_leaf()) return id;
      id = node->children.front();
    }
  }
}

Result<uint64_t> BlinkTree::DescendToLevel(const EntryKey& key,
                                           uint32_t target_level) {
  for (int attempt = 0; attempt < options_.max_parent_retries; ++attempt) {
    if (attempt > 0) {
      // A shallow root or an aborted read means a concurrent split's
      // publication is in flight; we hold no latches here, so the other
      // writer always makes progress. Wait it out (bounded).
      parent_waits_.fetch_add(1, std::memory_order_relaxed);
      SleepForMicros(kParentWaitMicros);
    }
    // Re-read the meta each round: the retry exists precisely to observe a
    // root the previous round could not see yet.
    TXREP_ASSIGN_OR_RETURN(BlinkMeta meta, ReadMeta());
    uint64_t id = meta.root_id;
    int hops = 0;
    bool retry = false;
    while (!retry) {
      Result<BlinkNode> node = ReadNodeOpt(id);
      if (!node.ok()) {
        if (node.status().IsAborted()) {
          retry = true;
          break;
        }
        return node.status();
      }
      if (BeyondNode(*node, key)) {
        if (node->right_id == 0) {
          return Status::Corruption("blink: high key set on rightmost node");
        }
        move_rights_.fetch_add(1, std::memory_order_relaxed);
        if (++hops >= options_.max_move_right) {
          retry = true;
          break;
        }
        id = node->right_id;
        continue;
      }
      if (node->level == target_level) return id;
      if (node->level < target_level) {
        // The root is shallower than the level we need: the writer splitting
        // the old root has not published the new one. Retry from the (next)
        // root instead of erroring — against a live store the new root lands
        // within microseconds.
        retry = true;
        break;
      }
      id = node->children[ChildIndexFor(*node, key)];
    }
  }
  return Status::Aborted(
      "blink: level " + std::to_string(target_level) +
      " not reachable after " + std::to_string(options_.max_parent_retries) +
      " attempts (in-flight split or stale buffered snapshot)");
}

Result<BlinkTree::LatchedNode> BlinkTree::LatchForKey(uint64_t node_id,
                                                      const EntryKey& key,
                                                      OptGuard& guard) {
  // The guard already latches node_id. Re-read under the latch — raw, not
  // optimistic: ReadNodeOpt would spin forever on our own lock bit — and
  // move right while the key lies beyond the node (it may have been split
  // since our lock-free descent).
  for (int hops = 0;; ++hops) {
    if (hops >= options_.max_move_right) {
      return Status::Aborted("blink: move-right from node " +
                             std::to_string(node_id) + " did not terminate");
    }
    TXREP_ASSIGN_OR_RETURN(BlinkNode node, ReadNode(node_id));
    if (!BeyondNode(node, key)) {
      return LatchedNode{node_id, std::move(node)};
    }
    if (node.right_id == 0) {
      return Status::Corruption("blink: high key set on rightmost node");
    }
    if (node.right_id >= OptLatchTable::kCapacity) {
      return Status::Corruption("blink: node id " +
                                std::to_string(node.right_id) +
                                " outside latch-table range");
    }
    move_rights_.fetch_add(1, std::memory_order_relaxed);
    node_id = node.right_id;
    guard.MoveTo(&latches_.Get(node_id));
  }
}

Status BlinkTree::Insert(const rel::Value& value, const std::string& row_key) {
  const EntryKey key{value, row_key};
  std::vector<uint64_t> path;
  TXREP_ASSIGN_OR_RETURN(uint64_t leaf_id, DescendToLeaf(key, &path));

  OptGuard guard(&latches_.Get(leaf_id));
  TXREP_ASSIGN_OR_RETURN(LatchedNode latched, LatchForKey(leaf_id, key, guard));
  leaf_id = latched.id;
  BlinkNode leaf = std::move(latched.node);

  auto it = std::lower_bound(leaf.entries.begin(), leaf.entries.end(), key);
  if (it != leaf.entries.end() && *it == key) {
    // Untouched node: the guard's destructor releases without a version bump.
    return Status::AlreadyExists("blink entry " + key.DebugString() +
                                 " already present");
  }
  leaf.entries.insert(it, key);

  if (leaf.entries.size() <= options_.max_node_keys) {
    Status put = WriteNode(leaf_id, leaf);
    guard.PublishAndRelease();
    return put;
  }
  return SplitAndPropagate(leaf_id, std::move(leaf), std::move(guard),
                           std::move(path));
}

Status BlinkTree::SplitAndPropagate(uint64_t node_id, BlinkNode node,
                                    OptGuard guard,
                                    std::vector<uint64_t> path) {
  // Allocate the right sibling's id (meta latch; taken while holding the node
  // latch — meta is always the innermost latch, so this cannot deadlock).
  TXREP_ASSIGN_OR_RETURN(uint64_t right_id, AllocateNodeId());

  BlinkNode right;
  right.level = node.level;
  right.has_high_key = node.has_high_key;
  right.high_key = node.high_key;
  right.right_id = node.right_id;

  EntryKey separator;
  if (node.is_leaf()) {
    const size_t mid = node.entries.size() / 2;
    separator = node.entries[mid - 1];  // Max key staying left.
    right.entries.assign(node.entries.begin() + mid, node.entries.end());
    node.entries.resize(mid);
  } else {
    // Promote the middle separator: it leaves the node and becomes both the
    // left half's high key and the parent's new routing key.
    const size_t mid = node.separators.size() / 2;
    separator = node.separators[mid];
    right.separators.assign(node.separators.begin() + mid + 1,
                            node.separators.end());
    right.children.assign(node.children.begin() + mid + 1,
                          node.children.end());
    node.separators.resize(mid);
    node.children.resize(mid + 1);
  }
  node.has_high_key = true;
  node.high_key = separator;
  node.right_id = right_id;

  // Order matters for lock-free readers: the new right node must exist before
  // the (atomic) overwrite of the left node publishes the link to it. The
  // right write needs no bump — its latch word was never handed to a reader
  // (the id is unpublished until the left write lands).
  TXREP_RETURN_IF_ERROR(WriteNode(right_id, right));
  Status left_put = WriteNode(node_id, node);
  // Bump even if the left write errored: the store may hold a torn image.
  const uint32_t level = node.level;
  guard.PublishAndRelease();
  TXREP_RETURN_IF_ERROR(left_put);

  return InsertIntoParent(node_id, level, separator, right_id,
                          std::move(path));
}

Status BlinkTree::InsertIntoParent(uint64_t left_id, uint32_t left_level,
                                   const EntryKey& separator,
                                   uint64_t right_id,
                                   std::vector<uint64_t> path) {
  uint64_t parent_id = 0;
  if (!path.empty()) {
    parent_id = path.back();
    path.pop_back();
  } else {
    // Left was the root when we descended (or the remembered path went
    // stale). Either it still is the root (grow a new level) or the tree
    // already grew: locate the parent level from the current root.
    {
      OptGuard meta_guard(&meta_latch_);
      TXREP_ASSIGN_OR_RETURN(BlinkMeta meta, ReadMeta());
      if (meta.root_id == left_id) {
        BlinkNode new_root;
        new_root.level = left_level + 1;
        new_root.separators = {separator};
        new_root.children = {left_id, right_id};
        const uint64_t new_root_id = meta.next_id++;
        if (new_root_id >= OptLatchTable::kCapacity) {
          return Status::Corruption("blink: node id space exhausted at " +
                                    std::to_string(new_root_id));
        }
        TXREP_RETURN_IF_ERROR(WriteNode(new_root_id, new_root));
        meta.root_id = new_root_id;
        Status put = WriteMeta(meta);
        meta_guard.PublishAndRelease();
        return put;
      }
    }
    // The tree grew past us: locate the parent level from the current root.
    // DescendToLevel retries internally while the new root's publication is
    // in flight; exhaustion means this snapshot will never show the level.
    Result<uint64_t> located = DescendToLevel(separator, left_level + 1);
    if (!located.ok()) {
      if (located.status().IsAborted()) {
        return Status::Aborted(
            "blink: parent of node " + std::to_string(left_id) +
            " not reachable (in-flight split or stale buffered snapshot)");
      }
      return located.status();
    }
    parent_id = *located;
  }

  OptGuard guard(&latches_.Get(parent_id));
  TXREP_ASSIGN_OR_RETURN(LatchedNode latched,
                         LatchForKey(parent_id, separator, guard));
  parent_id = latched.id;
  BlinkNode parent = std::move(latched.node);

  // Insert purely by *separator order* (the Lehman–Yao discipline) — never
  // by left_id's position, and without requiring left_id's own pointer to
  // be installed yet:
  //  - if left_id was split again and the newer separator already landed,
  //    position-based insertion would break separator sortedness;
  //  - if left_id's pointer is still in flight (its creator's propagation
  //    has not reached this level), waiting for it can form circular wait
  //    chains between in-flight propagations. Key-ordered insertion is
  //    already correct in that state: keys routed to the stale left
  //    neighbour recover over its right-link, and the in-flight pointer
  //    later lands at its own key position.
  const size_t pos = static_cast<size_t>(
      std::lower_bound(parent.separators.begin(), parent.separators.end(),
                       separator) -
      parent.separators.begin());
  parent.separators.insert(parent.separators.begin() + pos, separator);
  parent.children.insert(parent.children.begin() + pos + 1, right_id);

  if (parent.separators.size() <= options_.max_node_keys) {
    Status put = WriteNode(parent_id, parent);
    guard.PublishAndRelease();
    return put;
  }
  return SplitAndPropagate(parent_id, std::move(parent), std::move(guard),
                           std::move(path));
}

Status BlinkTree::Remove(const rel::Value& value, const std::string& row_key) {
  const EntryKey key{value, row_key};
  TXREP_ASSIGN_OR_RETURN(uint64_t leaf_id, DescendToLeaf(key, nullptr));

  OptGuard guard(&latches_.Get(leaf_id));
  TXREP_ASSIGN_OR_RETURN(LatchedNode latched, LatchForKey(leaf_id, key, guard));
  BlinkNode leaf = std::move(latched.node);

  auto it = std::lower_bound(leaf.entries.begin(), leaf.entries.end(), key);
  if (it == leaf.entries.end() || !(*it == key)) {
    return Status::NotFound("blink entry " + key.DebugString() +
                            " not present");
  }
  leaf.entries.erase(it);
  // B-link simplification: no merge/rebalance; empty leaves are legal and
  // skipped by scans.
  Status put = WriteNode(latched.id, leaf);
  guard.PublishAndRelease();
  return put;
}

Result<bool> BlinkTree::Contains(const rel::Value& value,
                                 const std::string& row_key) {
  const EntryKey key{value, row_key};
  // The descent already validated the leaf image and moved right past any
  // concurrent splits, so the image is authoritative for `key`.
  TXREP_ASSIGN_OR_RETURN(LeafView view, DescendToLeafView(key, nullptr));
  return std::binary_search(view.node.entries.begin(), view.node.entries.end(),
                            key);
}

Result<std::vector<EntryKey>> BlinkTree::RangeScan(const rel::Value& lo,
                                                   const rel::Value& hi) {
  return RangeScanBounds(lo, hi);
}

Result<std::vector<EntryKey>> BlinkTree::RangeScanBounds(
    const std::optional<rel::Value>& lo, const std::optional<rel::Value>& hi) {
  std::vector<EntryKey> out;
  if (lo.has_value() && hi.has_value() && *hi < *lo) return out;

  std::optional<EntryKey> lo_key;
  if (lo.has_value()) lo_key = EntryKey{*lo, ""};

  for (int restart = 0;; ++restart) {
    if (restart > 0) {
      read_restarts_.fetch_add(1, std::memory_order_relaxed);
      if (restart >= options_.max_read_restarts) {
        return Status::Aborted("blink: range scan did not stabilize after " +
                               std::to_string(options_.max_read_restarts) +
                               " restarts");
      }
      out.clear();  // Partial output from the torn walk is discarded.
    }

    uint64_t id = 0;
    {
      Result<uint64_t> start = lo_key.has_value()
                                   ? DescendToLeaf(*lo_key, nullptr)
                                   : LeftmostLeaf();
      if (!start.ok()) {
        if (start.status().IsAborted()) continue;
        return start.status();
      }
      id = *start;
    }

    int hops = 0;
    bool again = false;
    while (!again) {
      Result<BlinkNode> node_or = ReadNodeOpt(id);
      if (!node_or.ok()) {
        if (node_or.status().IsAborted()) {
          again = true;
          break;
        }
        return node_or.status();
      }
      BlinkNode node = *std::move(node_or);
      if (lo_key.has_value() && BeyondNode(node, *lo_key)) {
        if (node.right_id == 0) {
          return Status::Corruption("blink: high key set on rightmost node " +
                                    std::to_string(id));
        }
        move_rights_.fetch_add(1, std::memory_order_relaxed);
        if (++hops >= options_.max_move_right) {
          again = true;
          break;
        }
        id = node.right_id;
        continue;
      }
      auto it = lo_key.has_value()
                    ? std::lower_bound(node.entries.begin(),
                                       node.entries.end(), *lo_key)
                    : node.entries.begin();
      for (; it != node.entries.end(); ++it) {
        // Entries above the high key have migrated to the right sibling;
        // emit them there, never twice (split-torn images only — a validated
        // image already satisfies the bound, this guards raw snapshots).
        if (node.has_high_key && node.high_key < *it) break;
        if (hi.has_value() && *hi < it->value) return out;
        out.push_back(*it);
      }
      if (node.right_id == 0) return out;
      // Stop early if everything to the right is beyond hi.
      if (hi.has_value() && node.has_high_key && *hi < node.high_key.value) {
        return out;
      }
      if (++hops >= options_.max_move_right) {
        again = true;
        break;
      }
      id = node.right_id;
    }
  }
}

Result<std::vector<std::string>> BlinkTree::RangeScanRowKeys(
    const rel::Value& lo, const rel::Value& hi) {
  TXREP_ASSIGN_OR_RETURN(std::vector<EntryKey> entries, RangeScan(lo, hi));
  std::vector<std::string> row_keys;
  row_keys.reserve(entries.size());
  for (EntryKey& e : entries) row_keys.push_back(std::move(e.row_key));
  return row_keys;
}

Result<size_t> BlinkTree::EntryCount() {
  for (int restart = 0;; ++restart) {
    if (restart > 0) {
      read_restarts_.fetch_add(1, std::memory_order_relaxed);
      if (restart >= options_.max_read_restarts) {
        return Status::Aborted("blink: entry count did not stabilize after " +
                               std::to_string(options_.max_read_restarts) +
                               " restarts");
      }
    }
    Result<uint64_t> start = LeftmostLeaf();
    if (!start.ok()) {
      if (start.status().IsAborted()) continue;
      return start.status();
    }
    uint64_t id = *start;
    size_t count = 0;  // A restart resets the accumulator.
    int hops = 0;
    bool again = false;
    while (!again) {
      Result<BlinkNode> node = ReadNodeOpt(id);
      if (!node.ok()) {
        if (node.status().IsAborted()) {
          again = true;
          break;
        }
        return node.status();
      }
      // Count only entries within the node's own key range: during a split
      // the tail above the high key already lives in the right sibling, and
      // a raw size() would count it twice.
      count += node->CountWithinHighKey();
      if (node->right_id == 0) return count;
      if (++hops >= options_.max_move_right) {
        again = true;
        break;
      }
      id = node->right_id;
    }
  }
}

Status BlinkTree::Validate() {
  TXREP_ASSIGN_OR_RETURN(BlinkMeta meta, ReadMeta());
  // Walk each level via the leftmost spine; validate every node on the level.
  uint64_t level_head = meta.root_id;
  std::set<uint64_t> seen;
  int64_t expected_level = -1;
  for (;;) {
    TXREP_ASSIGN_OR_RETURN(BlinkNode head, ReadNode(level_head));
    if (expected_level == -1) {
      expected_level = head.level;
    } else if (head.level != expected_level) {
      return Status::Corruption("blink: level mismatch on leftmost spine");
    }
    uint64_t id = level_head;
    for (;;) {
      TXREP_ASSIGN_OR_RETURN(BlinkNode node, ReadNode(id));
      if (!seen.insert(id).second) {
        return Status::Corruption("blink: node " + std::to_string(id) +
                                  " reachable twice (right-link cycle?)");
      }
      if (node.level != head.level) {
        return Status::Corruption("blink: right chain crosses levels at " +
                                  std::to_string(id));
      }
      const auto& keys = node.is_leaf() ? node.entries : node.separators;
      for (size_t i = 0; i + 1 < keys.size(); ++i) {
        if (!(keys[i] < keys[i + 1])) {
          return Status::Corruption("blink: unsorted keys in node " +
                                    std::to_string(id));
        }
      }
      if (!node.is_leaf() &&
          node.children.size() != node.separators.size() + 1) {
        return Status::Corruption("blink: bad fanout arity in node " +
                                  std::to_string(id));
      }
      if (node.has_high_key) {
        for (const EntryKey& k : keys) {
          if (node.high_key < k) {
            return Status::Corruption("blink: key above high key in node " +
                                      std::to_string(id));
          }
        }
        if (node.right_id == 0) {
          return Status::Corruption(
              "blink: high key set on rightmost node " + std::to_string(id));
        }
      } else if (node.right_id != 0) {
        return Status::Corruption("blink: rightmost-looking node " +
                                  std::to_string(id) + " has right sibling");
      }
      if (!node.is_leaf()) {
        // Children must live exactly one level down.
        for (uint64_t child : node.children) {
          TXREP_ASSIGN_OR_RETURN(BlinkNode child_node, ReadNode(child));
          if (child_node.level + 1 != node.level) {
            return Status::Corruption("blink: child level gap under node " +
                                      std::to_string(id));
          }
        }
      }
      if (node.right_id == 0) break;
      id = node.right_id;
    }
    if (head.is_leaf()) return Status::OK();
    level_head = head.children.front();
    expected_level = static_cast<int64_t>(head.level) - 1;
  }
}

Status BlinkTree::AuditLatches() {
  if (OptLatch::IsLocked(meta_latch_.RawVersionWord())) {
    return Status::FailedPrecondition(
        "blink: meta latch held on quiesced tree");
  }
  TXREP_ASSIGN_OR_RETURN(BlinkMeta meta, ReadMeta());
  uint64_t level_head = meta.root_id;
  std::set<uint64_t> seen;
  for (;;) {
    TXREP_ASSIGN_OR_RETURN(BlinkNode head, ReadNode(level_head));
    uint64_t id = level_head;
    for (;;) {
      if (!seen.insert(id).second) {
        return Status::Corruption("blink: node " + std::to_string(id) +
                                  " reachable twice (right-link cycle?)");
      }
      TXREP_ASSIGN_OR_RETURN(BlinkNode node, ReadNode(id));
      if (id >= OptLatchTable::kCapacity) {
        return Status::Corruption("blink: node id " + std::to_string(id) +
                                  " outside latch-table range");
      }
      const uint64_t word = latches_.Get(id).RawVersionWord();
      if (OptLatch::IsLocked(word)) {
        return Status::FailedPrecondition("blink: node " + std::to_string(id) +
                                          " latch held on quiesced tree");
      }
      if (OptLatch::IsObsolete(word)) {
        return Status::FailedPrecondition("blink: reachable node " +
                                          std::to_string(id) +
                                          " marked obsolete");
      }
      if (node.right_id == 0) break;
      id = node.right_id;
    }
    if (head.is_leaf()) return Status::OK();
    level_head = head.children.front();
  }
}

BlinkTreeStats BlinkTree::stats() const {
  BlinkTreeStats s;
  s.read_retries = read_retries_.load(std::memory_order_relaxed);
  s.read_spins = read_spins_.load(std::memory_order_relaxed);
  s.obsolete_hits = obsolete_hits_.load(std::memory_order_relaxed);
  s.read_restarts = read_restarts_.load(std::memory_order_relaxed);
  s.move_rights = move_rights_.load(std::memory_order_relaxed);
  s.parent_waits = parent_waits_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace txrep::blink
