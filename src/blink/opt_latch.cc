#include "blink/opt_latch.h"

#include <bit>

namespace txrep::blink {

namespace {

/// Segment index for `id`: segment s covers ids
/// [(2^s - 1) << kBlockBits, (2^(s+1) - 1) << kBlockBits) and holds
/// 2^s << kBlockBits latches.
size_t SegmentFor(uint64_t id, uint64_t* offset, uint64_t* capacity) {
  const uint64_t block = (id >> OptLatchTable::kBlockBits) + 1;
  const size_t s = static_cast<size_t>(std::bit_width(block)) - 1;
  const uint64_t base = ((uint64_t{1} << s) - 1) << OptLatchTable::kBlockBits;
  *capacity = uint64_t{1} << (s + OptLatchTable::kBlockBits);
  *offset = id - base;
  return s;
}

}  // namespace

OptLatchTable::~OptLatchTable() {
  for (std::atomic<OptLatch*>& slot : segments_) {
    delete[] slot.load(std::memory_order_acquire);
  }
}

OptLatch& OptLatchTable::Get(uint64_t id) {
  uint64_t offset = 0;
  uint64_t capacity = 0;
  const size_t s = SegmentFor(id, &offset, &capacity);
  // Callers bound ids by kCapacity, which the last segment's end equals, so
  // s < kSegments always holds here.
  OptLatch* segment = segments_[s].load(std::memory_order_acquire);
  if (segment == nullptr) {
    OptLatch* fresh = new OptLatch[capacity];
    OptLatch* expected = nullptr;
    if (segments_[s].compare_exchange_strong(expected, fresh,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
      segment = fresh;
    } else {
      delete[] fresh;  // Another thread won the install race.
      segment = expected;
    }
  }
  return segment[offset];
}

size_t OptLatchTable::AllocatedSegments() const {
  size_t count = 0;
  for (const std::atomic<OptLatch*>& slot : segments_) {
    if (slot.load(std::memory_order_acquire) != nullptr) ++count;
  }
  return count;
}

}  // namespace txrep::blink
