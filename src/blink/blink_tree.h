#ifndef TXREP_BLINK_BLINK_TREE_H_
#define TXREP_BLINK_BLINK_TREE_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "blink/node.h"
#include "blink/opt_latch.h"
#include "common/result.h"
#include "common/status.h"
#include "kv/kv_store.h"
#include "obs/metrics.h"
#include "rel/value.h"

namespace txrep::blink {

/// Tuning knobs for a B-link tree.
struct BlinkTreeOptions {
  /// Maximum keys per node before a split; split yields two ~half-full nodes.
  size_t max_node_keys = 32;

  /// Bounded wait for a parent level a concurrent split has not published
  /// yet (attempts x 50µs backoff). Exhaustion surfaces as Aborted — against
  /// a live store the level lands within microseconds; against a stale
  /// buffered snapshot it never will, and the TM's restart machinery picks
  /// the Aborted up.
  int max_parent_retries = 256;

  /// Full traversal restarts from the root after an optimistic read hit an
  /// obsolete node or a runaway right chain.
  int max_read_restarts = 64;

  /// Right-sibling hops one traversal may take before the chain is declared
  /// runaway (a cycle or a wedged snapshot).
  int max_move_right = 1 << 16;

  /// Optimistic re-reads of a single node (version mismatch) before the
  /// read gives up with Aborted.
  int max_read_attempts = 4096;

  /// Optional registry (must outlive the tree) receiving the read-retry /
  /// obsolete-hit counters, labeled {index="TABLE.COLUMN"}. The stats()
  /// snapshot works with or without it.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Contention counters of one BlinkTree instance (snapshot via stats()).
struct BlinkTreeStats {
  /// Version validation failed after decoding a node; the read re-ran.
  int64_t read_retries = 0;
  /// Backoff rounds readers spent waiting out a writer's lock bit.
  int64_t read_spins = 0;
  /// Reads that hit an obsolete version word (node left the snapshot).
  int64_t obsolete_hits = 0;
  /// Traversals restarted from the root.
  int64_t read_restarts = 0;
  /// Right-sibling hops taken to repair concurrent splits.
  int64_t move_rights = 0;
  /// Backoff rounds writers spent waiting for a parent level to publish.
  int64_t parent_waits = 0;
};

/// Lehman–Yao B-link tree mapped onto key-value objects (paper §4.2).
///
/// Every node is one KV object (`!b_TABLE_COLUMN_id`); the anchor (root
/// pointer + node-id allocator) is one KV object (`!bmeta_TABLE_COLUMN`).
/// Because all state lives in the store:
///  - lookups and range scans take **no locks** — each node visit is one
///    atomic GET validated against the node's optimistic version latch, and
///    the right-sibling links repair any concurrent split (the paper's
///    property (2): "read-only transactions can access the B-link tree ...
///    without being blocked by updates");
///  - when the "store" is a transaction buffer, the node reads/writes become
///    ordinary key conflicts handled by the TM (the paper's property (1)).
///
/// Synchronization (DESIGN.md §14) is an in-process optimistic version latch
/// per node: a 64-bit word holding lock bit + obsolete bit + version counter
/// (blink::OptLatch). Readers snapshot the word before the GET and
/// re-validate after decoding — on mismatch they retry the node, on an
/// obsolete word they restart from the root. Writers spin-acquire the lock
/// bit, hold at most one node latch at a time (hand-over-hand during
/// move-right, plus briefly the meta latch, which is always innermost — so
/// the latch order is deadlock-free), and bump the version when they unlatch
/// after a modification. Deletion follows the usual B-link simplification:
/// underfull/empty nodes are allowed and skipped by scans, no merging.
///
/// Thread-compatible: concurrent Insert/Remove/scans on one BlinkTree over a
/// shared concrete store are safe; two BlinkTree instances over the same
/// store+table+column must share... nothing (latches are per-instance), so
/// create one instance per shared store, or rely on the TM's conflict
/// detection when going through transaction buffers.
class BlinkTree {
 public:
  BlinkTree(kv::KvStore* store, std::string table, std::string column,
            BlinkTreeOptions options = {});

  BlinkTree(const BlinkTree&) = delete;
  BlinkTree& operator=(const BlinkTree&) = delete;

  /// Creates the meta + empty root objects if the tree does not exist yet.
  /// Idempotent.
  Status Init();

  /// Inserts (value, row_key). AlreadyExists if the exact pair is present.
  Status Insert(const rel::Value& value, const std::string& row_key);

  /// Removes (value, row_key). NotFound if absent.
  Status Remove(const rel::Value& value, const std::string& row_key);

  /// True iff the exact (value, row_key) pair is present. Lock-free.
  Result<bool> Contains(const rel::Value& value, const std::string& row_key);

  /// All entries with lo <= value <= hi, in key order. Lock-free.
  Result<std::vector<EntryKey>> RangeScan(const rel::Value& lo,
                                          const rel::Value& hi);

  /// Open-bounded variant: a missing `lo` means scan from the smallest entry,
  /// a missing `hi` means scan to the largest. Lock-free.
  Result<std::vector<EntryKey>> RangeScanBounds(
      const std::optional<rel::Value>& lo, const std::optional<rel::Value>& hi);

  /// Row keys of RangeScan (the common caller shape).
  Result<std::vector<std::string>> RangeScanRowKeys(const rel::Value& lo,
                                                    const rel::Value& hi);

  /// Total live entries (walks the leaf level). Split-safe: each leaf
  /// contributes only entries within its high key, so entries mid-migration
  /// to a fresh right sibling are never counted twice, and a walk that hits
  /// an obsolete node restarts with a clean accumulator.
  Result<size_t> EntryCount();

  /// Checks structural invariants of every reachable node (sortedness,
  /// fanout arity, level monotonicity, high-key bounds, right-chain
  /// termination). For tests; OK when the tree is well-formed. Run on a
  /// quiesced tree.
  Status Validate();

  /// Audits the version words of every reachable node on a quiesced tree:
  /// no latch may be held and no reachable node may be obsolete. Catches
  /// leaked lock bits (a writer path that returned without unlatching) and
  /// wrongly-obsoleted live nodes.
  Status AuditLatches();

  /// Contention counters accumulated by this instance.
  BlinkTreeStats stats() const;

  const std::string& table() const { return table_; }
  const std::string& column() const { return column_; }

 private:
  friend struct BlinkTreeTestPeer;

  /// RAII writer latch. Default release (destructor, error paths) does not
  /// bump the version — correct when the node was not modified, and when a
  /// store write failed before touching state. After a WriteNode attempt,
  /// release via PublishAndRelease() so overlapping optimistic readers
  /// retry.
  class OptGuard {
   public:
    explicit OptGuard(OptLatch* latch) : latch_(latch) { latch_->Lock(); }
    ~OptGuard() {
      if (latch_ != nullptr) latch_->UnlockNoBump();
    }

    OptGuard(OptGuard&& other) noexcept : latch_(other.latch_) {
      other.latch_ = nullptr;
    }
    OptGuard& operator=(OptGuard&&) = delete;
    OptGuard(const OptGuard&) = delete;
    OptGuard& operator=(const OptGuard&) = delete;

    /// Unlock + version bump: the node was (possibly) modified.
    void PublishAndRelease() {
      latch_->Unlock();
      latch_ = nullptr;
    }

    /// Unlock without a bump: the node is untouched.
    void Release() {
      latch_->UnlockNoBump();
      latch_ = nullptr;
    }

    /// Hand-over-hand move-right: acquire `next`, then release the current
    /// latch (left-to-right acquisition along one level never cycles).
    void MoveTo(OptLatch* next) {
      next->Lock();
      latch_->UnlockNoBump();
      latch_ = next;
    }

   private:
    OptLatch* latch_;
  };

  // -- node/meta IO ---------------------------------------------------------
  std::string NodeKey(uint64_t id) const;
  /// Raw node read, no version validation: for writers holding the node's
  /// latch (ReadNodeOpt would spin forever on our own lock bit) and for
  /// quiesced audits.
  Result<BlinkNode> ReadNode(uint64_t id);
  /// Optimistic node read: ReadBegin -> GET -> decode -> ReadValidate, with
  /// bounded retry on version mismatch. Obsolete nodes return Aborted (the
  /// caller restarts from the root); a validated NotFound marks the node
  /// obsolete (the snapshot never had it) and propagates.
  Result<BlinkNode> ReadNodeOpt(uint64_t id);
  Status WriteNode(uint64_t id, const BlinkNode& node);
  Result<BlinkMeta> ReadMeta();
  Status WriteMeta(const BlinkMeta& meta);

  /// Allocates a fresh node id via read-modify-write on the meta object,
  /// under the meta latch.
  Result<uint64_t> AllocateNodeId();

  // -- traversal ------------------------------------------------------------
  /// Child pointer covering `key` within an internal node.
  static size_t ChildIndexFor(const BlinkNode& node, const EntryKey& key);

  /// A leaf id together with the validated image the descent saw.
  struct LeafView {
    uint64_t id = 0;
    BlinkNode node;
  };

  /// Descends lock-free from the root to the leaf that should hold `key`,
  /// recording the node id entered at each internal level (for split
  /// back-propagation). Performs move-right at every level; restarts from
  /// the root (bounded) when a read aborts on an obsolete node.
  Result<LeafView> DescendToLeafView(const EntryKey& key,
                                     std::vector<uint64_t>* path);
  Result<uint64_t> DescendToLeaf(const EntryKey& key,
                                 std::vector<uint64_t>* path);

  /// Leftmost leaf of the tree (scan/count entry point), restart-aware.
  Result<uint64_t> LeftmostLeaf();

  /// Lock-free descent from the current root to the node at `target_level`
  /// responsible for `key` (used when the recorded path is stale). A root
  /// shallower than `target_level` is transient — the writer splitting the
  /// old root has not published the new one yet — so the descent retries
  /// internally (bounded, 50µs backoff) instead of erroring to the caller;
  /// exhaustion surfaces as Aborted.
  Result<uint64_t> DescendToLevel(const EntryKey& key, uint32_t target_level);

  // -- write path -----------------------------------------------------------
  /// Latches `node_id` (moving right as needed for `key`, bounded), then
  /// returns the node read under the latch. Used by Insert and Remove.
  struct LatchedNode {
    uint64_t id = 0;
    BlinkNode node;
  };
  Result<LatchedNode> LatchForKey(uint64_t node_id, const EntryKey& key,
                                  OptGuard& guard);

  /// Splits the latched, overflowing `node` (id `node_id`), writes both
  /// halves, releases the latch (version bump), and propagates the separator
  /// upward. `path` holds the remembered ancestors (deepest last).
  Status SplitAndPropagate(uint64_t node_id, BlinkNode node, OptGuard guard,
                           std::vector<uint64_t> path);

  /// Inserts (separator -> right_id) next to `left_id` at level
  /// `left_level + 1`, splitting upward as needed.
  Status InsertIntoParent(uint64_t left_id, uint32_t left_level,
                          const EntryKey& separator, uint64_t right_id,
                          std::vector<uint64_t> path);

  kv::KvStore* store_;  // Not owned.
  const std::string table_;
  const std::string column_;
  const BlinkTreeOptions options_;
  const std::string meta_key_;

  /// Per-node optimistic version latches, indexed by node id; the meta
  /// object gets its own dedicated latch (node ids start at 1).
  OptLatchTable latches_;
  OptLatch meta_latch_;

  // Contention counters (relaxed; exact once writers quiesce).
  // analyze: lock-free(monotonic relaxed counters; stats() is a snapshot)
  std::atomic<int64_t> read_retries_{0};
  // analyze: lock-free(monotonic relaxed counters; stats() is a snapshot)
  std::atomic<int64_t> read_spins_{0};
  // analyze: lock-free(monotonic relaxed counters; stats() is a snapshot)
  std::atomic<int64_t> obsolete_hits_{0};
  // analyze: lock-free(monotonic relaxed counters; stats() is a snapshot)
  std::atomic<int64_t> read_restarts_{0};
  // analyze: lock-free(monotonic relaxed counters; stats() is a snapshot)
  std::atomic<int64_t> move_rights_{0};
  // analyze: lock-free(monotonic relaxed counters; stats() is a snapshot)
  std::atomic<int64_t> parent_waits_{0};

  // Registry instruments (null when the tree runs unobserved).
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_read_retries_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_obsolete_hits_ = nullptr;
};

}  // namespace txrep::blink

#endif  // TXREP_BLINK_BLINK_TREE_H_
