#ifndef TXREP_BLINK_BLINK_TREE_H_
#define TXREP_BLINK_BLINK_TREE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "blink/node.h"
#include "common/keyed_mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "kv/kv_store.h"
#include "rel/value.h"

namespace txrep::blink {

/// Tuning knobs for a B-link tree.
struct BlinkTreeOptions {
  /// Maximum keys per node before a split; split yields two ~half-full nodes.
  size_t max_node_keys = 32;
};

/// Lehman–Yao B-link tree mapped onto key-value objects (paper §4.2).
///
/// Every node is one KV object (`!b_TABLE_COLUMN_id`); the anchor (root
/// pointer + node-id allocator) is one KV object (`!bmeta_TABLE_COLUMN`).
/// Because all state lives in the store:
///  - lookups and range scans take **no locks** — each node visit is one
///    atomic GET, and the right-sibling links repair any concurrent split
///    (the paper's property (2): "read-only transactions can access the
///    B-link tree ... without being blocked by updates");
///  - when the "store" is a transaction buffer, the node reads/writes become
///    ordinary key conflicts handled by the TM (the paper's property (1)).
///
/// Writers take short per-node latches from an in-process KeyedMutex, at most
/// one node latch at a time (plus, briefly, the meta latch, which is always
/// acquired last — so the latch order is deadlock-free). Deletion follows the
/// usual B-link simplification: underfull/empty nodes are allowed and skipped
/// by scans, no merging.
///
/// Thread-compatible: concurrent Insert/Remove/scans on one BlinkTree over a
/// shared concrete store are safe; two BlinkTree instances over the same
/// store+table+column must share... nothing (latches are per-instance), so
/// create one instance per shared store, or rely on the TM's conflict
/// detection when going through transaction buffers.
class BlinkTree {
 public:
  BlinkTree(kv::KvStore* store, std::string table, std::string column,
            BlinkTreeOptions options = {});

  BlinkTree(const BlinkTree&) = delete;
  BlinkTree& operator=(const BlinkTree&) = delete;

  /// Creates the meta + empty root objects if the tree does not exist yet.
  /// Idempotent.
  Status Init();

  /// Inserts (value, row_key). AlreadyExists if the exact pair is present.
  Status Insert(const rel::Value& value, const std::string& row_key);

  /// Removes (value, row_key). NotFound if absent.
  Status Remove(const rel::Value& value, const std::string& row_key);

  /// True iff the exact (value, row_key) pair is present. Lock-free.
  Result<bool> Contains(const rel::Value& value, const std::string& row_key);

  /// All entries with lo <= value <= hi, in key order. Lock-free.
  Result<std::vector<EntryKey>> RangeScan(const rel::Value& lo,
                                          const rel::Value& hi);

  /// Open-bounded variant: a missing `lo` means scan from the smallest entry,
  /// a missing `hi` means scan to the largest. Lock-free.
  Result<std::vector<EntryKey>> RangeScanBounds(
      const std::optional<rel::Value>& lo, const std::optional<rel::Value>& hi);

  /// Row keys of RangeScan (the common caller shape).
  Result<std::vector<std::string>> RangeScanRowKeys(const rel::Value& lo,
                                                    const rel::Value& hi);

  /// Total live entries (walks the leaf level).
  Result<size_t> EntryCount();

  /// Checks structural invariants of every reachable node (sortedness,
  /// fanout arity, level monotonicity, high-key bounds, right-chain
  /// termination). For tests; OK when the tree is well-formed.
  Status Validate();

  const std::string& table() const { return table_; }
  const std::string& column() const { return column_; }

 private:
  // -- node/meta IO ---------------------------------------------------------
  std::string NodeKey(uint64_t id) const;
  Result<BlinkNode> ReadNode(uint64_t id);
  Status WriteNode(uint64_t id, const BlinkNode& node);
  Result<BlinkMeta> ReadMeta();
  Status WriteMeta(const BlinkMeta& meta);

  /// Allocates a fresh node id via read-modify-write on the meta object,
  /// under the meta latch.
  Result<uint64_t> AllocateNodeId();

  // -- traversal ------------------------------------------------------------
  /// Child pointer covering `key` within an internal node.
  static size_t ChildIndexFor(const BlinkNode& node, const EntryKey& key);

  /// Descends lock-free from the root to the leaf that should hold `key`,
  /// recording the node id entered at each internal level (for split
  /// back-propagation). Performs move-right at every level.
  Result<uint64_t> DescendToLeaf(const EntryKey& key,
                                 std::vector<uint64_t>* path);

  /// Lock-free descent from the current root to the node at `target_level`
  /// responsible for `key` (used when the recorded path is stale).
  Result<uint64_t> DescendToLevel(const EntryKey& key, uint32_t target_level);

  // -- write path -----------------------------------------------------------
  /// Latches `node_id` (moving right as needed for `key`), then runs the
  /// leaf-level mutation. Used by Insert and Remove.
  struct LatchedNode {
    uint64_t id = 0;
    BlinkNode node;
  };
  Result<LatchedNode> LatchForKey(uint64_t node_id, const EntryKey& key,
                                  KeyedMutex::Guard& guard);

  /// Splits the latched, overflowing `node` (id `node_id`), writes both
  /// halves, releases the latch, and propagates the separator upward.
  /// `path` holds the remembered ancestors (deepest last).
  Status SplitAndPropagate(uint64_t node_id, BlinkNode node,
                           KeyedMutex::Guard guard,
                           std::vector<uint64_t> path);

  /// Inserts (separator -> right_id) next to `left_id` at level
  /// `left_level + 1`, splitting upward as needed.
  Status InsertIntoParent(uint64_t left_id, uint32_t left_level,
                          const EntryKey& separator, uint64_t right_id,
                          std::vector<uint64_t> path);

  kv::KvStore* store_;  // Not owned.
  const std::string table_;
  const std::string column_;
  const BlinkTreeOptions options_;
  const std::string meta_key_;
  KeyedMutex latches_;
};

}  // namespace txrep::blink

#endif  // TXREP_BLINK_BLINK_TREE_H_
