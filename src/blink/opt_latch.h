#ifndef TXREP_BLINK_OPT_LATCH_H_
#define TXREP_BLINK_OPT_LATCH_H_

#include <atomic>
#include <cstdint>
#include <thread>

#include "common/clock.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace txrep::blink {

/// One CPU spin-wait hint (`_mm_pause` on x86, `yield` on arm). Keeps a
/// spinning reader from starving the store-port pipeline of the writer it is
/// waiting on.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

/// Escalating spin backoff: a burst of pause hints, then scheduler yields,
/// then real sleeps. The sleep tier matters on machines with fewer cores than
/// spinning threads — a pure pause loop would livelock against a preempted
/// lock holder (and trips TSan's deadlock heuristics).
class SpinBackoff {
 public:
  void Pause() {
    ++spins_;
    if (spins_ <= kPauseSpins) {
      CpuRelax();
    } else if (spins_ <= kPauseSpins + kYieldSpins) {
      std::this_thread::yield();
    } else {
      SleepForMicros(kSleepMicros);
    }
  }

  int spins() const { return spins_; }

 private:
  static constexpr int kPauseSpins = 64;
  static constexpr int kYieldSpins = 32;
  static constexpr int64_t kSleepMicros = 50;
  int spins_ = 0;
};

/// Optimistic version latch (the huayichai/blink-tree / Blink-hash
/// `node_optimized` scheme): one 64-bit word per node holding
///
///   bit 0   obsolete — the node left the tree (or its object vanished from
///           the snapshot); readers must restart from the root, never retry.
///   bit 1   lock     — a writer owns the node.
///   bits 2+ version  — bumped on every unlock that published a modification.
///
/// Readers take no locks: snapshot the word before decoding the node
/// (ReadBegin spins past the lock bit), re-validate it after (ReadValidate),
/// and retry the node read on mismatch. Writers spin-acquire the lock bit;
/// Unlock() clears it and bumps the version in one atomic add, so a reader
/// that overlapped the write can never validate successfully.
class OptLatch {
 public:
  static constexpr uint64_t kObsoleteBit = 1;
  static constexpr uint64_t kLockBit = 2;
  static constexpr uint64_t kVersionStep = 4;

  OptLatch() = default;

  OptLatch(const OptLatch&) = delete;
  OptLatch& operator=(const OptLatch&) = delete;

  static bool IsObsolete(uint64_t word) { return (word & kObsoleteBit) != 0; }
  static bool IsLocked(uint64_t word) { return (word & kLockBit) != 0; }

  /// Reader entry: returns a word with the lock bit clear, spinning while a
  /// writer holds the node. An obsolete word is returned immediately (the
  /// caller restarts from the root; waiting cannot help). `spins`, when
  /// non-null, is incremented by the number of backoff rounds taken.
  uint64_t ReadBegin(int* spins = nullptr) const {
    SpinBackoff backoff;
    for (;;) {
      const uint64_t word = word_.load(std::memory_order_acquire);
      if (!IsLocked(word) || IsObsolete(word)) {
        if (spins != nullptr) *spins += backoff.spins();
        return word;
      }
      backoff.Pause();
    }
  }

  /// Reader exit: true iff the word is still exactly `snapshot` — no writer
  /// acquired, published, or obsoleted the node since ReadBegin.
  bool ReadValidate(uint64_t snapshot) const {
    return word_.load(std::memory_order_acquire) == snapshot;
  }

  /// Writer entry: spin-acquires the lock bit (obsolete nodes can still be
  /// latched; the caller's under-latch read is authoritative).
  void Lock() {
    SpinBackoff backoff;
    for (;;) {
      if (TryLock()) return;
      backoff.Pause();
    }
  }

  bool TryLock() {
    uint64_t expected = word_.load(std::memory_order_relaxed);
    if (IsLocked(expected)) return false;
    return word_.compare_exchange_weak(expected, expected | kLockBit,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed);
  }

  /// Writer exit after publishing a modification: clears the lock bit and
  /// bumps the version in one atomic add (locked word + (step - lock) =
  /// next version, unlocked), invalidating every overlapping reader.
  void Unlock() {
    word_.fetch_add(kVersionStep - kLockBit, std::memory_order_release);
  }

  /// Writer exit without a modification (move-right hand-off, no-op paths):
  /// clears the lock bit only, so overlapping readers still validate.
  void UnlockNoBump() {
    word_.fetch_sub(kLockBit, std::memory_order_release);
  }

  /// Marks the node dead: every subsequent ReadBegin/ReadValidate fails
  /// permanently and traversals restart from the root. Sticky.
  void MarkObsolete() {
    word_.fetch_or(kObsoleteBit, std::memory_order_release);
  }

  /// Writer exit for a node that left the tree: obsolete + unlock + bump.
  void UnlockObsolete() {
    MarkObsolete();
    Unlock();
  }

  /// Raw word for structural audits (invariant checks on a quiesced tree).
  /// Lint rule 7 confines this accessor to src/blink/ — every other layer
  /// must go through the reader/writer protocol above.
  uint64_t RawVersionWord() const {
    return word_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<uint64_t> word_{0};
};

/// Lock-free, lazily-grown array of OptLatches indexed by node id.
///
/// Node ids are allocated densely from the tree's meta object, so segment s
/// covers ids [(2^s - 1) * 512, (2^(s+1) - 1) * 512) — geometric blocks that
/// reach kCapacity ids with a handful of pointers. Construction allocates
/// nothing (the query path creates a BlinkTree per statement, so an empty
/// table must cost a few hundred bytes); a segment materializes on first
/// touch via CAS, losers free their copy. Latches are never invalidated or
/// moved for the table's lifetime.
class OptLatchTable {
 public:
  static constexpr size_t kBlockBits = 9;  // Segment 0: 512 latches.
  static constexpr size_t kSegments = 14;

  /// Ids must be < kCapacity (~8.4M nodes); the tree rejects out-of-range
  /// ids as corruption before they reach the table.
  static constexpr uint64_t kCapacity = ((uint64_t{1} << kSegments) - 1)
                                        << kBlockBits;

  OptLatchTable() = default;
  ~OptLatchTable();

  OptLatchTable(const OptLatchTable&) = delete;
  OptLatchTable& operator=(const OptLatchTable&) = delete;

  /// The latch for `id`. Requires id < kCapacity. Thread-safe.
  OptLatch& Get(uint64_t id);

  /// Segments materialized so far (tests/diagnostics).
  size_t AllocatedSegments() const;

 private:
  // analyze: lock-free(CAS-installed segment pointers; entries immutable once set)
  std::atomic<OptLatch*> segments_[kSegments] = {};
};

}  // namespace txrep::blink

#endif  // TXREP_BLINK_OPT_LATCH_H_
