#include "blink/node.h"

#include <algorithm>

#include "codec/encoding.h"
#include "codec/value_codec.h"

namespace txrep::blink {

namespace {

void AppendEntryKey(std::string& dst, const EntryKey& key) {
  codec::AppendValue(dst, key.value);
  codec::AppendLengthPrefixed(dst, key.row_key);
}

bool GetEntryKey(std::string_view* src, EntryKey* key) {
  if (!codec::GetValue(src, &key->value)) return false;
  std::string_view row_key;
  if (!codec::GetLengthPrefixed(src, &row_key)) return false;
  key->row_key.assign(row_key);
  return true;
}

}  // namespace

std::string EntryKey::DebugString() const {
  return "(" + value.ToString() + ", \"" + row_key + "\")";
}

bool operator==(const EntryKey& a, const EntryKey& b) {
  return a.value == b.value && a.row_key == b.row_key;
}

bool operator<(const EntryKey& a, const EntryKey& b) {
  if (a.value != b.value) return a.value < b.value;
  return a.row_key < b.row_key;
}

size_t BlinkNode::CountWithinHighKey() const {
  if (!has_high_key) return entries.size();
  auto it = std::upper_bound(entries.begin(), entries.end(), high_key);
  return static_cast<size_t>(it - entries.begin());
}

std::string BlinkNode::DebugString() const {
  std::string out = is_leaf() ? "leaf" : "internal";
  out += " level=" + std::to_string(level);
  out += " right=" + std::to_string(right_id);
  out += has_high_key ? (" high=" + high_key.DebugString()) : " high=+inf";
  out += " keys=" + std::to_string(KeyCount());
  return out;
}

std::string EncodeBlinkNode(const BlinkNode& node) {
  std::string out;
  codec::AppendVarint64(out, node.level);
  out.push_back(node.has_high_key ? 1 : 0);
  if (node.has_high_key) AppendEntryKey(out, node.high_key);
  codec::AppendVarint64(out, node.right_id);
  if (node.is_leaf()) {
    codec::AppendVarint64(out, node.entries.size());
    for (const EntryKey& e : node.entries) AppendEntryKey(out, e);
  } else {
    codec::AppendVarint64(out, node.separators.size());
    for (const EntryKey& s : node.separators) AppendEntryKey(out, s);
    for (uint64_t child : node.children) codec::AppendVarint64(out, child);
  }
  return out;
}

Result<BlinkNode> DecodeBlinkNode(std::string_view bytes) {
  BlinkNode node;
  uint64_t level = 0;
  if (!codec::GetVarint64(&bytes, &level) || bytes.empty()) {
    return Status::Corruption("blink node: bad header");
  }
  node.level = static_cast<uint32_t>(level);
  node.has_high_key = bytes[0] != 0;
  bytes.remove_prefix(1);
  if (node.has_high_key && !GetEntryKey(&bytes, &node.high_key)) {
    return Status::Corruption("blink node: bad high key");
  }
  if (!codec::GetVarint64(&bytes, &node.right_id)) {
    return Status::Corruption("blink node: bad right pointer");
  }
  uint64_t count = 0;
  if (!codec::GetVarint64(&bytes, &count)) {
    return Status::Corruption("blink node: bad key count");
  }
  if (node.is_leaf()) {
    node.entries.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      EntryKey e;
      if (!GetEntryKey(&bytes, &e)) {
        return Status::Corruption("blink node: bad entry");
      }
      node.entries.push_back(std::move(e));
    }
  } else {
    node.separators.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      EntryKey s;
      if (!GetEntryKey(&bytes, &s)) {
        return Status::Corruption("blink node: bad separator");
      }
      node.separators.push_back(std::move(s));
    }
    node.children.reserve(count + 1);
    for (uint64_t i = 0; i < count + 1; ++i) {
      uint64_t child = 0;
      if (!codec::GetVarint64(&bytes, &child)) {
        return Status::Corruption("blink node: bad child id");
      }
      node.children.push_back(child);
    }
  }
  if (!bytes.empty()) {
    return Status::Corruption("blink node: trailing bytes");
  }
  return node;
}

std::string EncodeBlinkMeta(const BlinkMeta& meta) {
  std::string out;
  codec::AppendVarint64(out, meta.root_id);
  codec::AppendVarint64(out, meta.next_id);
  return out;
}

Result<BlinkMeta> DecodeBlinkMeta(std::string_view bytes) {
  BlinkMeta meta;
  if (!codec::GetVarint64(&bytes, &meta.root_id) ||
      !codec::GetVarint64(&bytes, &meta.next_id) || !bytes.empty()) {
    return Status::Corruption("blink meta: malformed");
  }
  return meta;
}

}  // namespace txrep::blink
