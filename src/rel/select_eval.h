#ifndef TXREP_REL_SELECT_EVAL_H_
#define TXREP_REL_SELECT_EVAL_H_

#include <vector>

#include "common/result.h"
#include "rel/schema.h"
#include "rel/statement.h"
#include "rel/value.h"

namespace txrep::rel {

/// Shared back half of SELECT execution, used identically by the relational
/// engine (Database) and the replica-side reader (qt::ReplicaReader) so that
/// the same query means the same thing on both sides of the hybrid
/// deployment.
///
/// Takes the rows that already matched the WHERE clause (full rows in schema
/// order) and applies, in SQL order: aggregation (if any — returns one row),
/// ORDER BY, LIMIT, and projection.
Result<std::vector<Row>> EvaluateSelectOutput(const TableSchema& schema,
                                              std::vector<Row> matching,
                                              const SelectStatement& stmt);

/// Coerces predicate operands to their column's type, in place:
///  - INT literal against a DOUBLE column widens to DOUBLE (the common SQL
///    spelling `WHERE cost > 100` — without this it would silently never
///    match, since Value comparison is type-strict);
///  - integral DOUBLE literal against an INT column narrows to INT;
///  - anything else that mismatches is an InvalidArgument error (explicit
///    beats silently-empty results).
/// Called by the engine and the replica reader before evaluating/keying.
Status CoercePredicates(const TableSchema& schema,
                        std::vector<Predicate>& predicates);

}  // namespace txrep::rel

#endif  // TXREP_REL_SELECT_EVAL_H_
