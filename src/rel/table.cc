#include "rel/table.h"

#include <algorithm>

namespace txrep::rel {

Table::Table(const TableSchema* schema) : schema_(schema) {
  hash_indexes_.resize(schema_->hash_index_columns().size());
}

void Table::IndexAdd(const Row& row) {
  const auto& cols = schema_->hash_index_columns();
  for (size_t i = 0; i < cols.size(); ++i) {
    const Value& v = row[cols[i]];
    if (!v.is_null()) hash_indexes_[i][v].insert(row[schema_->pk_index()]);
  }
}

void Table::IndexRemove(const Row& row) {
  const auto& cols = schema_->hash_index_columns();
  for (size_t i = 0; i < cols.size(); ++i) {
    const Value& v = row[cols[i]];
    if (v.is_null()) continue;
    auto it = hash_indexes_[i].find(v);
    if (it == hash_indexes_[i].end()) continue;
    it->second.erase(row[schema_->pk_index()]);
    if (it->second.empty()) hash_indexes_[i].erase(it);
  }
}

Status Table::Insert(Row row) {
  TXREP_RETURN_IF_ERROR(schema_->ValidateAndCoerceRow(row));
  const Value& pk = row[schema_->pk_index()];
  if (rows_.contains(pk)) {
    return Status::AlreadyExists("duplicate primary key " + pk.ToString() +
                                 " in table \"" + schema_->table_name() + "\"");
  }
  IndexAdd(row);
  rows_.emplace(pk, std::move(row));
  return Status::OK();
}

Status Table::Update(const Value& pk, Row new_row) {
  TXREP_RETURN_IF_ERROR(schema_->ValidateAndCoerceRow(new_row));
  auto it = rows_.find(pk);
  if (it == rows_.end()) {
    return Status::NotFound("no row with primary key " + pk.ToString() +
                            " in table \"" + schema_->table_name() + "\"");
  }
  if (new_row[schema_->pk_index()] != pk) {
    return Status::InvalidArgument(
        "UPDATE must not change the primary key (table \"" +
        schema_->table_name() + "\")");
  }
  IndexRemove(it->second);
  it->second = std::move(new_row);
  IndexAdd(it->second);
  return Status::OK();
}

Status Table::Delete(const Value& pk) {
  auto it = rows_.find(pk);
  if (it == rows_.end()) {
    return Status::NotFound("no row with primary key " + pk.ToString() +
                            " in table \"" + schema_->table_name() + "\"");
  }
  IndexRemove(it->second);
  rows_.erase(it);
  return Status::OK();
}

Result<Row> Table::Lookup(const Value& pk) const {
  auto it = rows_.find(pk);
  if (it == rows_.end()) {
    return Status::NotFound("no row with primary key " + pk.ToString() +
                            " in table \"" + schema_->table_name() + "\"");
  }
  return it->second;
}

Result<bool> Table::RowMatches(const Row& row,
                               const std::vector<Predicate>& where) const {
  for (const Predicate& pred : where) {
    TXREP_ASSIGN_OR_RETURN(size_t col, schema_->ColumnIndex(pred.column));
    if (!pred.Matches(row[col])) return false;
  }
  return true;
}

Result<std::vector<Value>> Table::ScanKeys(
    const std::vector<Predicate>& where) const {
  std::vector<Value> keys;

  // Fast path 1: equality on the primary key.
  for (const Predicate& pred : where) {
    if (pred.op != PredicateOp::kEq) continue;
    TXREP_ASSIGN_OR_RETURN(size_t col, schema_->ColumnIndex(pred.column));
    if (col != schema_->pk_index()) continue;
    auto it = rows_.find(pred.operand);
    if (it == rows_.end()) return keys;
    TXREP_ASSIGN_OR_RETURN(bool match, RowMatches(it->second, where));
    if (match) keys.push_back(it->first);
    return keys;
  }

  // Fast path 2: equality on a hash-indexed column.
  const auto& index_cols = schema_->hash_index_columns();
  for (const Predicate& pred : where) {
    if (pred.op != PredicateOp::kEq) continue;
    TXREP_ASSIGN_OR_RETURN(size_t col, schema_->ColumnIndex(pred.column));
    auto pos = std::find(index_cols.begin(), index_cols.end(), col);
    if (pos == index_cols.end()) continue;
    const auto& index = hash_indexes_[pos - index_cols.begin()];
    auto bucket = index.find(pred.operand);
    if (bucket == index.end()) return keys;
    for (const Value& pk : bucket->second) {
      auto it = rows_.find(pk);
      if (it == rows_.end()) continue;
      TXREP_ASSIGN_OR_RETURN(bool match, RowMatches(it->second, where));
      if (match) keys.push_back(pk);
    }
    return keys;
  }

  // Slow path: full scan.
  for (const auto& [pk, row] : rows_) {
    TXREP_ASSIGN_OR_RETURN(bool match, RowMatches(row, where));
    if (match) keys.push_back(pk);
  }
  return keys;
}

Result<std::vector<Row>> Table::Scan(
    const std::vector<Predicate>& where) const {
  TXREP_ASSIGN_OR_RETURN(std::vector<Value> keys, ScanKeys(where));
  std::vector<Row> out;
  out.reserve(keys.size());
  for (const Value& pk : keys) out.push_back(rows_.at(pk));
  return out;
}

void Table::RebuildIndexes() {
  hash_indexes_.clear();
  hash_indexes_.resize(schema_->hash_index_columns().size());
  for (const auto& [pk, row] : rows_) IndexAdd(row);
}

std::vector<Row> Table::ScanAll() const {
  std::vector<Row> out;
  out.reserve(rows_.size());
  for (const auto& [pk, row] : rows_) out.push_back(row);
  return out;
}

}  // namespace txrep::rel
