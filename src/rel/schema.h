#ifndef TXREP_REL_SCHEMA_H_
#define TXREP_REL_SCHEMA_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rel/value.h"

namespace txrep::rel {

/// One column definition.
struct Column {
  std::string name;
  ValueType type = ValueType::kInt64;
};

/// Schema of a table: columns, a single-column primary key (as in the paper's
/// key construction "RELATION_pk"), plus declared secondary indexes.
///
/// - `hash_index_columns`: attributes with a hash index on the replica
///   (paper §4.1, Fig. 7) and in the relational engine.
/// - `range_index_columns`: attributes with a B-link-tree range index on the
///   replica (paper §4.2).
class TableSchema {
 public:
  TableSchema() = default;

  /// `pk_column` must name one of `columns`; its type must be INT or STRING.
  static Result<TableSchema> Create(std::string table_name,
                                    std::vector<Column> columns,
                                    std::string pk_column);

  const std::string& table_name() const { return table_name_; }
  const std::vector<Column>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  size_t pk_index() const { return pk_index_; }
  const std::string& pk_column() const { return columns_[pk_index_].name; }

  /// Index of `name`, or NotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Declares a hash (equality) secondary index on `column`.
  Status AddHashIndex(const std::string& column);

  /// Declares a B-link-tree (range) secondary index on `column`.
  Status AddRangeIndex(const std::string& column);

  const std::vector<size_t>& hash_index_columns() const {
    return hash_index_columns_;
  }
  const std::vector<size_t>& range_index_columns() const {
    return range_index_columns_;
  }
  bool HasHashIndexOn(size_t column) const;
  bool HasRangeIndexOn(size_t column) const;

  /// Type-checks a full row against the schema (arity, per-column type or
  /// NULL, non-NULL PK, INT widening to DOUBLE applied in place).
  Status ValidateAndCoerceRow(Row& row) const;

  /// Display form: CREATE TABLE-ish single line.
  std::string ToString() const;

 private:
  std::string table_name_;
  std::vector<Column> columns_;
  size_t pk_index_ = 0;
  std::vector<size_t> hash_index_columns_;
  std::vector<size_t> range_index_columns_;
};

/// Named collection of table schemas shared by the relational engine, the
/// query translator and the replica read API.
class Catalog {
 public:
  Catalog() = default;

  /// Fails with AlreadyExists on duplicate table names.
  Status AddTable(TableSchema schema);

  /// NotFound if absent.
  Result<const TableSchema*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;
  size_t size() const { return tables_.size(); }

  /// Mutable access for declaring indexes after creation.
  Result<TableSchema*> GetMutableTable(const std::string& name);

 private:
  std::map<std::string, TableSchema> tables_;
};

}  // namespace txrep::rel

#endif  // TXREP_REL_SCHEMA_H_
