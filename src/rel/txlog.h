#ifndef TXREP_REL_TXLOG_H_
#define TXREP_REL_TXLOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "check/mutex.h"
#include "obs/metrics.h"
#include "rel/value.h"
#include "trace/context.h"

namespace txrep::trace {
class Tracer;
}  // namespace txrep::trace

namespace txrep::rel {

/// Kind of a logged write operation.
enum class LogOpType : uint8_t { kInsert = 0, kUpdate = 1, kDelete = 2 };

/// Returns "INSERT", "UPDATE" or "DELETE".
const char* LogOpTypeName(LogOpType type);

/// One logical write in the transaction log, in *after-image* form: the log
/// carries deterministic values, never expressions, so replay needs no
/// re-evaluation (paper §3: "the transaction log only includes write
/// statements").
struct LogOp {
  LogOpType type = LogOpType::kInsert;
  std::string table;
  Value pk;
  Row after;  // Full row after the write; empty for kDelete.

  std::string DebugString() const;
};

bool operator==(const LogOp& a, const LogOp& b);

/// One committed transaction's writes, stamped with its commit LSN. LSNs are
/// dense (1, 2, 3, ...) and define the execution-defined order the replica
/// must reproduce.
struct LogTransaction {
  uint64_t lsn = 0;
  /// Commit instant on the database side (steady-clock micros); the replica
  /// side uses it to measure replication lag / staleness.
  int64_t commit_micros = 0;
  /// Trace identity minted at commit (zero / unsampled unless a tracer is
  /// attached); travels with the record across the wire so every hop
  /// attributes its spans to the same transaction.
  trace::TraceContext trace;
  std::vector<LogOp> ops;
};

/// Append-only, commit-ordered transaction log. Thread-safe. The publisher
/// agent tails it with ReadSince().
class TxLog {
 public:
  TxLog() = default;

  TxLog(const TxLog&) = delete;
  TxLog& operator=(const TxLog&) = delete;

  /// Appends the ops of one committed transaction; returns its LSN.
  /// Transactions with no write ops are not logged (returns 0).
  uint64_t Append(std::vector<LogOp> ops);

  /// Returns up to `max_transactions` transactions with lsn > `after_lsn`
  /// in LSN order. `max_transactions` == 0 means no limit.
  std::vector<LogTransaction> ReadSince(uint64_t after_lsn,
                                        size_t max_transactions = 0) const;

  /// LSN of the most recently appended transaction (0 when empty).
  uint64_t LastLsn() const;

  /// Number of logged transactions.
  size_t size() const;

  /// Drops transactions with lsn <= `up_to_lsn` (log truncation after the
  /// replica acknowledged them). Reads of truncated ranges return nothing.
  void TruncateUpTo(uint64_t up_to_lsn);

  /// Publishes append/size/truncation metrics into `metrics` (must outlive
  /// the log).
  void EnableMetrics(obs::MetricsRegistry* metrics);

  /// Mints a TraceContext for every subsequent Append() via `tracer` (must
  /// outlive the log; null disables). This is the trace origin: the sampling
  /// decision is taken here, at DB commit, and carried downstream.
  void EnableTracing(trace::Tracer* tracer);

 private:
  mutable check::Mutex mu_{"rel.txlog"};
  /// entries_[i].lsn strictly increasing.
  std::vector<LogTransaction> entries_ TXREP_GUARDED_BY(mu_);
  uint64_t next_lsn_ TXREP_GUARDED_BY(mu_) = 1;

  trace::Tracer* tracer_ TXREP_GUARDED_BY(mu_) = nullptr;

  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_appended_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_truncations_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_truncated_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Gauge* g_size_ = nullptr;
};

}  // namespace txrep::rel

#endif  // TXREP_REL_TXLOG_H_
