#include "rel/txlog.h"

#include <algorithm>

#include "common/clock.h"
#include "obs/names.h"
#include "trace/tracer.h"

namespace txrep::rel {

const char* LogOpTypeName(LogOpType type) {
  switch (type) {
    case LogOpType::kInsert:
      return "INSERT";
    case LogOpType::kUpdate:
      return "UPDATE";
    case LogOpType::kDelete:
      return "DELETE";
  }
  return "?";
}

std::string LogOp::DebugString() const {
  std::string out = LogOpTypeName(type);
  out += " ";
  out += table;
  out += " pk=";
  out += pk.ToString();
  if (type != LogOpType::kDelete) {
    out += " after=";
    out += RowToString(after);
  }
  return out;
}

bool operator==(const LogOp& a, const LogOp& b) {
  return a.type == b.type && a.table == b.table && a.pk == b.pk &&
         a.after == b.after;
}

void TxLog::EnableMetrics(obs::MetricsRegistry* metrics) {
  check::MutexLock lock(&mu_);
  c_appended_ = metrics->GetCounter(obs::kLogAppended);
  c_truncations_ = metrics->GetCounter(obs::kLogTruncations);
  c_truncated_ = metrics->GetCounter(obs::kLogTruncated);
  g_size_ = metrics->GetGauge(obs::kLogSize);
}

void TxLog::EnableTracing(trace::Tracer* tracer) {
  check::MutexLock lock(&mu_);
  tracer_ = tracer;
}

uint64_t TxLog::Append(std::vector<LogOp> ops) {
  if (ops.empty()) return 0;
  check::MutexLock lock(&mu_);
  LogTransaction entry;
  entry.lsn = next_lsn_++;
  entry.commit_micros = NowMicros();
  if (tracer_ != nullptr) entry.trace = tracer_->Mint(entry.lsn);
  entry.ops = std::move(ops);
  entries_.push_back(std::move(entry));
  if (c_appended_ != nullptr) c_appended_->Increment();
  if (g_size_ != nullptr) g_size_->Set(static_cast<int64_t>(entries_.size()));
  return entries_.back().lsn;
}

std::vector<LogTransaction> TxLog::ReadSince(uint64_t after_lsn,
                                             size_t max_transactions) const {
  check::MutexLock lock(&mu_);
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), after_lsn,
      [](uint64_t lsn, const LogTransaction& t) { return lsn < t.lsn; });
  std::vector<LogTransaction> out;
  for (; it != entries_.end(); ++it) {
    if (max_transactions != 0 && out.size() >= max_transactions) break;
    out.push_back(*it);
  }
  return out;
}

uint64_t TxLog::LastLsn() const {
  check::MutexLock lock(&mu_);
  return entries_.empty() ? next_lsn_ - 1 : entries_.back().lsn;
}

size_t TxLog::size() const {
  check::MutexLock lock(&mu_);
  return entries_.size();
}

void TxLog::TruncateUpTo(uint64_t up_to_lsn) {
  check::MutexLock lock(&mu_);
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), up_to_lsn,
      [](uint64_t lsn, const LogTransaction& t) { return lsn < t.lsn; });
  const int64_t dropped = std::distance(entries_.begin(), it);
  entries_.erase(entries_.begin(), it);
  if (c_truncations_ != nullptr) c_truncations_->Increment();
  if (c_truncated_ != nullptr) c_truncated_->Increment(dropped);
  if (g_size_ != nullptr) g_size_->Set(static_cast<int64_t>(entries_.size()));
}

}  // namespace txrep::rel
