#ifndef TXREP_REL_TABLE_H_
#define TXREP_REL_TABLE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rel/schema.h"
#include "rel/statement.h"
#include "rel/value.h"

namespace txrep::rel {

/// Heap storage for one table: rows ordered by primary key, plus maintained
/// secondary equality indexes (one per declared hash-index column).
///
/// Not internally synchronized — the owning Database serializes access.
class Table {
 public:
  explicit Table(const TableSchema* schema);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const TableSchema& schema() const { return *schema_; }

  /// Inserts a validated row; AlreadyExists on duplicate primary key.
  Status Insert(Row row);

  /// Replaces the row with primary key `pk` by `new_row` (same pk required);
  /// NotFound if absent.
  Status Update(const Value& pk, Row new_row);

  /// Removes the row; NotFound if absent.
  Status Delete(const Value& pk);

  /// Returns a copy of the row, or NotFound.
  Result<Row> Lookup(const Value& pk) const;

  bool Contains(const Value& pk) const { return rows_.contains(pk); }
  size_t size() const { return rows_.size(); }

  /// Rows matching the conjunction of `where` (all must match), in primary
  /// key order. Uses a secondary index for a leading equality conjunct on an
  /// indexed column, or the PK directly; falls back to a scan otherwise.
  Result<std::vector<Row>> Scan(const std::vector<Predicate>& where) const;

  /// Primary keys matching `where`, in PK order (used to drive UPDATE/DELETE).
  Result<std::vector<Value>> ScanKeys(const std::vector<Predicate>& where) const;

  /// All rows in PK order (full state dump for equivalence checks).
  std::vector<Row> ScanAll() const;

  /// Re-derives secondary index storage from the schema, backfilling from the
  /// current rows. Call after declaring a new index on a populated table.
  void RebuildIndexes();

 private:
  /// Evaluates the full conjunction against a row.
  Result<bool> RowMatches(const Row& row,
                          const std::vector<Predicate>& where) const;

  void IndexAdd(const Row& row);
  void IndexRemove(const Row& row);

  const TableSchema* schema_;  // Owned by the Catalog; outlives the table.
  std::map<Value, Row> rows_;
  // One map per declared hash index, parallel to schema().hash_index_columns().
  std::vector<std::map<Value, std::set<Value>>> hash_indexes_;
};

}  // namespace txrep::rel

#endif  // TXREP_REL_TABLE_H_
