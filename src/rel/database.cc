#include "rel/database.h"

#include <algorithm>

#include "common/clock.h"
#include "obs/names.h"
#include "rel/select_eval.h"

namespace txrep::rel {

void Database::EnableMetrics(obs::MetricsRegistry* metrics) {
  check::MutexLock lock(&mu_);
  c_commits_ = metrics->GetCounter(obs::kDbCommits);
  h_commit_latency_ = metrics->GetHistogram(obs::kDbCommitLatency);
  h_txn_ops_ = metrics->GetHistogram(obs::kDbTxnOps);
  log_.EnableMetrics(metrics);
}

Status Database::CreateTable(TableSchema schema) {
  check::MutexLock lock(&mu_);
  const std::string name = schema.table_name();
  TXREP_RETURN_IF_ERROR(catalog_.AddTable(std::move(schema)));
  TXREP_ASSIGN_OR_RETURN(const TableSchema* stored, catalog_.GetTable(name));
  tables_.emplace(name, std::make_unique<Table>(stored));
  return Status::OK();
}

Status Database::CreateHashIndex(const std::string& table,
                                 const std::string& column) {
  check::MutexLock lock(&mu_);
  TXREP_ASSIGN_OR_RETURN(TableSchema * schema,
                         catalog_.GetMutableTable(table));
  TXREP_RETURN_IF_ERROR(schema->AddHashIndex(column));
  tables_.at(table)->RebuildIndexes();
  return Status::OK();
}

Status Database::CreateRangeIndex(const std::string& table,
                                  const std::string& column) {
  check::MutexLock lock(&mu_);
  TXREP_ASSIGN_OR_RETURN(TableSchema * schema,
                         catalog_.GetMutableTable(table));
  return schema->AddRangeIndex(column);
}

Result<Table*> Database::GetTableLocked(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table \"" + name + "\"");
  }
  return it->second.get();
}

Status Database::ApplyInsert(const InsertStatement& stmt,
                             std::vector<LogOp>& log_ops,
                             std::vector<UndoRecord>& undo) {
  TXREP_ASSIGN_OR_RETURN(Table * table, GetTableLocked(stmt.table));
  const TableSchema& schema = table->schema();

  Row row;
  if (stmt.columns.empty()) {
    row = stmt.values;
  } else {
    if (stmt.columns.size() != stmt.values.size()) {
      return Status::InvalidArgument(
          "INSERT column list and VALUES arity differ");
    }
    row.assign(schema.num_columns(), Value::Null());
    for (size_t i = 0; i < stmt.columns.size(); ++i) {
      TXREP_ASSIGN_OR_RETURN(size_t col, schema.ColumnIndex(stmt.columns[i]));
      row[col] = stmt.values[i];
    }
  }
  TXREP_RETURN_IF_ERROR(table->Insert(row));
  // Re-read to pick up coercions applied by the table.
  const Value pk = row[schema.pk_index()];
  TXREP_ASSIGN_OR_RETURN(Row stored, table->Lookup(pk));
  undo.push_back(UndoRecord{LogOpType::kInsert, table, pk, {}});
  log_ops.push_back(LogOp{LogOpType::kInsert, stmt.table, pk,
                          std::move(stored)});
  return Status::OK();
}

Status Database::ApplyUpdate(const UpdateStatement& stmt,
                             std::vector<LogOp>& log_ops,
                             std::vector<UndoRecord>& undo) {
  TXREP_ASSIGN_OR_RETURN(Table * table, GetTableLocked(stmt.table));
  const TableSchema& schema = table->schema();

  // Resolve SET columns once.
  std::vector<std::pair<size_t, Value>> sets;
  sets.reserve(stmt.sets.size());
  for (const auto& [col_name, value] : stmt.sets) {
    TXREP_ASSIGN_OR_RETURN(size_t col, schema.ColumnIndex(col_name));
    sets.emplace_back(col, value);
  }

  std::vector<Predicate> where = stmt.where;
  TXREP_RETURN_IF_ERROR(CoercePredicates(schema, where));
  TXREP_ASSIGN_OR_RETURN(std::vector<Value> keys, table->ScanKeys(where));
  for (const Value& pk : keys) {
    TXREP_ASSIGN_OR_RETURN(Row before, table->Lookup(pk));
    Row after = before;
    for (const auto& [col, value] : sets) after[col] = value;
    TXREP_RETURN_IF_ERROR(table->Update(pk, after));
    TXREP_ASSIGN_OR_RETURN(Row stored, table->Lookup(pk));
    undo.push_back(UndoRecord{LogOpType::kUpdate, table, pk, std::move(before)});
    log_ops.push_back(LogOp{LogOpType::kUpdate, stmt.table, pk,
                            std::move(stored)});
  }
  return Status::OK();
}

Status Database::ApplyDelete(const DeleteStatement& stmt,
                             std::vector<LogOp>& log_ops,
                             std::vector<UndoRecord>& undo) {
  TXREP_ASSIGN_OR_RETURN(Table * table, GetTableLocked(stmt.table));
  std::vector<Predicate> where = stmt.where;
  TXREP_RETURN_IF_ERROR(CoercePredicates(table->schema(), where));
  TXREP_ASSIGN_OR_RETURN(std::vector<Value> keys, table->ScanKeys(where));
  for (const Value& pk : keys) {
    TXREP_ASSIGN_OR_RETURN(Row before, table->Lookup(pk));
    TXREP_RETURN_IF_ERROR(table->Delete(pk));
    undo.push_back(UndoRecord{LogOpType::kDelete, table, pk, std::move(before)});
    log_ops.push_back(LogOp{LogOpType::kDelete, stmt.table, pk, {}});
  }
  return Status::OK();
}

Status Database::ApplySelect(const SelectStatement& stmt,
                             std::vector<Row>& out) {
  TXREP_ASSIGN_OR_RETURN(Table * table, GetTableLocked(stmt.table));
  std::vector<Predicate> where = stmt.where;
  TXREP_RETURN_IF_ERROR(CoercePredicates(table->schema(), where));
  TXREP_ASSIGN_OR_RETURN(std::vector<Row> rows, table->Scan(where));
  TXREP_ASSIGN_OR_RETURN(
      out, EvaluateSelectOutput(table->schema(), std::move(rows), stmt));
  return Status::OK();
}

void Database::Rollback(std::vector<UndoRecord>& undo) {
  for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
    switch (it->type) {
      case LogOpType::kInsert:
        // analyze: discard(rollback must unwind every record; a failed undo means state already diverged)
        (void)it->table->Delete(it->pk);
        break;
      case LogOpType::kUpdate:
        // analyze: discard(restoring pre-image; rollback keeps going past a failed restore)
        (void)it->table->Update(it->pk, std::move(it->before));
        break;
      case LogOpType::kDelete:
        // analyze: discard(re-inserting the deleted row; see kInsert above)
        (void)it->table->Insert(std::move(it->before));
        break;
    }
  }
  undo.clear();
}

Result<CommitInfo> Database::ExecuteTransaction(
    const std::vector<Statement>& statements) {
  const int64_t start = NowMicros();
  check::MutexLock lock(&mu_);
  std::vector<LogOp> log_ops;
  std::vector<UndoRecord> undo;
  CommitInfo info;

  for (const Statement& stmt : statements) {
    Status s;
    if (const auto* insert = std::get_if<InsertStatement>(&stmt)) {
      s = ApplyInsert(*insert, log_ops, undo);
    } else if (const auto* update = std::get_if<UpdateStatement>(&stmt)) {
      s = ApplyUpdate(*update, log_ops, undo);
    } else if (const auto* del = std::get_if<DeleteStatement>(&stmt)) {
      s = ApplyDelete(*del, log_ops, undo);
    } else {
      std::vector<Row> rows;
      s = ApplySelect(std::get<SelectStatement>(stmt), rows);
      if (s.ok()) info.select_results.push_back(std::move(rows));
    }
    if (!s.ok()) {
      Rollback(undo);
      return s;
    }
  }

  const int64_t num_ops = static_cast<int64_t>(log_ops.size());
  info.lsn = log_.Append(std::move(log_ops));
  if (c_commits_ != nullptr) c_commits_->Increment();
  if (h_commit_latency_ != nullptr) h_commit_latency_->Record(NowMicros() - start);
  if (h_txn_ops_ != nullptr) h_txn_ops_->Record(num_ops);
  return info;
}

Result<std::vector<Row>> Database::Query(const SelectStatement& select) {
  check::MutexLock lock(&mu_);
  std::vector<Row> rows;
  TXREP_RETURN_IF_ERROR(ApplySelect(select, rows));
  return rows;
}

Result<size_t> Database::TableSize(const std::string& table) const {
  check::MutexLock lock(&mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("no table \"" + table + "\"");
  }
  return it->second->size();
}

std::map<std::string, std::vector<Row>> Database::DumpAll() const {
  check::MutexLock lock(&mu_);
  std::map<std::string, std::vector<Row>> out;
  for (const auto& [name, table] : tables_) out[name] = table->ScanAll();
  return out;
}

}  // namespace txrep::rel
