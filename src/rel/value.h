#ifndef TXREP_REL_VALUE_H_
#define TXREP_REL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace txrep::rel {

/// Column/value types supported by the relational engine. Deliberately the
/// small set the TPC-W schema needs.
enum class ValueType : uint8_t {
  kNull = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
};

/// Returns "NULL", "INT", "DOUBLE" or "STRING".
const char* ValueTypeName(ValueType type);

/// A typed SQL value. Value is a regular value type: copyable, totally
/// ordered (ordering is by type tag first, then by payload), hashable via its
/// encoded form in codec/. NULL compares equal to NULL and before everything
/// else — sufficient for index keys; the engine forbids NULL primary keys.
class Value {
 public:
  /// Constructs SQL NULL.
  Value() : payload_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Payload(v)); }
  static Value Real(double v) { return Value(Payload(v)); }
  static Value Str(std::string v) { return Value(Payload(std::move(v))); }

  ValueType type() const {
    return static_cast<ValueType>(payload_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors; the caller must check type() first (asserted in debug).
  int64_t AsInt() const { return std::get<int64_t>(payload_); }
  double AsDouble() const { return std::get<double>(payload_); }
  const std::string& AsString() const { return std::get<std::string>(payload_); }

  /// Numeric value widened to double (INT or DOUBLE only).
  double AsNumeric() const {
    return type() == ValueType::kInt64 ? static_cast<double>(AsInt())
                                       : AsDouble();
  }

  /// Display form: NULL, 42, 3.5, 'text'.
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.payload_ == b.payload_;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return a.payload_ < b.payload_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator>(const Value& a, const Value& b) { return b < a; }
  friend bool operator<=(const Value& a, const Value& b) { return !(b < a); }
  friend bool operator>=(const Value& a, const Value& b) { return !(a < b); }

 private:
  using Payload = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Payload payload) : payload_(std::move(payload)) {}

  Payload payload_;
};

/// A tuple of column values, in schema column order.
using Row = std::vector<Value>;

/// Display form: (1, 'Item1', 100).
std::string RowToString(const Row& row);

}  // namespace txrep::rel

#endif  // TXREP_REL_VALUE_H_
