#include "rel/select_eval.h"

#include <algorithm>

namespace txrep::rel {

namespace {

/// Computes one aggregate over the matching rows.
Result<Value> ComputeAggregate(const TableSchema& schema,
                               const std::vector<Row>& rows,
                               const AggregateItem& item) {
  if (item.column.empty()) {
    if (item.fn != AggregateFn::kCount) {
      return Status::InvalidArgument(std::string(AggregateFnName(item.fn)) +
                                     "(*) is not valid; only COUNT(*)");
    }
    return Value::Int(static_cast<int64_t>(rows.size()));
  }
  TXREP_ASSIGN_OR_RETURN(size_t col, schema.ColumnIndex(item.column));
  const ValueType type = schema.columns()[col].type;

  switch (item.fn) {
    case AggregateFn::kCount: {
      int64_t count = 0;
      for (const Row& row : rows) {
        if (!row[col].is_null()) ++count;
      }
      return Value::Int(count);
    }
    case AggregateFn::kMin:
    case AggregateFn::kMax: {
      const Value* best = nullptr;
      for (const Row& row : rows) {
        if (row[col].is_null()) continue;
        if (best == nullptr ||
            (item.fn == AggregateFn::kMin ? row[col] < *best
                                          : *best < row[col])) {
          best = &row[col];
        }
      }
      return best == nullptr ? Value::Null() : *best;
    }
    case AggregateFn::kSum:
    case AggregateFn::kAvg: {
      if (type != ValueType::kInt64 && type != ValueType::kDouble) {
        return Status::InvalidArgument(
            std::string(AggregateFnName(item.fn)) + "(" + item.column +
            ") requires a numeric column");
      }
      double sum = 0;
      int64_t int_sum = 0;
      int64_t count = 0;
      for (const Row& row : rows) {
        if (row[col].is_null()) continue;
        sum += row[col].AsNumeric();
        if (type == ValueType::kInt64) int_sum += row[col].AsInt();
        ++count;
      }
      if (item.fn == AggregateFn::kAvg) {
        return count == 0
                   ? Value::Null()
                   : Value::Real(sum / static_cast<double>(count));
      }
      if (count == 0) return Value::Null();
      // SUM keeps the column's type (SQL convention for integer sums).
      return type == ValueType::kInt64 ? Value::Int(int_sum)
                                       : Value::Real(sum);
    }
  }
  return Status::Internal("unreachable aggregate function");
}

}  // namespace

namespace {

Status CoerceOperand(const TableSchema& schema, const std::string& column,
                     ValueType column_type, Value& operand) {
  if (operand.is_null()) return Status::OK();  // NULL never matches anyway.
  if (operand.type() == column_type) return Status::OK();
  if (column_type == ValueType::kDouble &&
      operand.type() == ValueType::kInt64) {
    operand = Value::Real(static_cast<double>(operand.AsInt()));
    return Status::OK();
  }
  if (column_type == ValueType::kInt64 &&
      operand.type() == ValueType::kDouble) {
    const double d = operand.AsDouble();
    const auto as_int = static_cast<int64_t>(d);
    if (static_cast<double>(as_int) == d) {
      operand = Value::Int(as_int);
      return Status::OK();
    }
    return Status::InvalidArgument(
        "fractional literal " + operand.ToString() +
        " cannot be compared against INT column \"" + column + "\" of \"" +
        schema.table_name() + "\"");
  }
  return Status::InvalidArgument(
      "predicate literal " + operand.ToString() + " does not match type " +
      ValueTypeName(column_type) + " of column \"" + column + "\"");
}

}  // namespace

Status CoercePredicates(const TableSchema& schema,
                        std::vector<Predicate>& predicates) {
  for (Predicate& pred : predicates) {
    TXREP_ASSIGN_OR_RETURN(size_t col, schema.ColumnIndex(pred.column));
    const ValueType type = schema.columns()[col].type;
    TXREP_RETURN_IF_ERROR(
        CoerceOperand(schema, pred.column, type, pred.operand));
    if (pred.op == PredicateOp::kBetween) {
      TXREP_RETURN_IF_ERROR(
          CoerceOperand(schema, pred.column, type, pred.operand2));
    }
  }
  return Status::OK();
}

Result<std::vector<Row>> EvaluateSelectOutput(const TableSchema& schema,
                                              std::vector<Row> matching,
                                              const SelectStatement& stmt) {
  // Aggregation: one output row, no ORDER BY / LIMIT / projection semantics.
  if (!stmt.aggregates.empty()) {
    if (!stmt.columns.empty()) {
      return Status::InvalidArgument(
          "SELECT cannot mix plain columns with aggregates (no GROUP BY)");
    }
    Row out;
    out.reserve(stmt.aggregates.size());
    for (const AggregateItem& item : stmt.aggregates) {
      TXREP_ASSIGN_OR_RETURN(Value v,
                             ComputeAggregate(schema, matching, item));
      out.push_back(std::move(v));
    }
    return std::vector<Row>{std::move(out)};
  }

  if (stmt.order_by.has_value()) {
    TXREP_ASSIGN_OR_RETURN(size_t col,
                           schema.ColumnIndex(stmt.order_by->column));
    const bool desc = stmt.order_by->descending;
    std::stable_sort(matching.begin(), matching.end(),
                     [col, desc](const Row& a, const Row& b) {
                       return desc ? b[col] < a[col] : a[col] < b[col];
                     });
  }
  if (stmt.limit != 0 && matching.size() > stmt.limit) {
    matching.resize(stmt.limit);
  }
  if (stmt.columns.empty()) return matching;

  std::vector<size_t> projection;
  projection.reserve(stmt.columns.size());
  for (const std::string& name : stmt.columns) {
    TXREP_ASSIGN_OR_RETURN(size_t col, schema.ColumnIndex(name));
    projection.push_back(col);
  }
  std::vector<Row> projected;
  projected.reserve(matching.size());
  for (const Row& row : matching) {
    Row out;
    out.reserve(projection.size());
    for (size_t col : projection) out.push_back(row[col]);
    projected.push_back(std::move(out));
  }
  return projected;
}

}  // namespace txrep::rel
