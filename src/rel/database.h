#ifndef TXREP_REL_DATABASE_H_
#define TXREP_REL_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "rel/schema.h"
#include "rel/statement.h"
#include "rel/table.h"
#include "rel/txlog.h"
#include "rel/value.h"

namespace txrep::rel {

/// Result of executing one transaction.
struct CommitInfo {
  /// Commit LSN assigned in the transaction log; 0 for read-only transactions
  /// (they are not logged).
  uint64_t lsn = 0;

  /// One entry per SELECT statement, in statement order.
  std::vector<std::vector<Row>> select_results;
};

/// The "original database" of the paper's architecture (Fig. 3): an embedded
/// relational engine that executes transactional read/write workloads and
/// emits a commit-ordered transaction log of write after-images, which the
/// replication middleware ships to the key-value replica.
///
/// Transactions execute atomically under a commit mutex, so the log order is
/// by construction the serialization order — the *execution-defined order*
/// the replica must reproduce. Failed transactions are rolled back via undo
/// records and leave no log entry.
///
/// Thread-safe: any number of threads may call ExecuteTransaction/Query.
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Registers a table (with its index declarations) and allocates storage.
  Status CreateTable(TableSchema schema);

  /// Declares a hash index on an existing table and backfills it.
  Status CreateHashIndex(const std::string& table, const std::string& column);

  /// Declares a range index on an existing table. Range indexes only exist on
  /// the replica (B-link tree, paper §4.2); the declaration is carried in the
  /// catalog so the query translator maintains them.
  Status CreateRangeIndex(const std::string& table, const std::string& column);

  /// Executes `statements` as one atomic transaction. On success, write
  /// after-images are appended to the log as one commit. On any statement
  /// error the transaction is fully rolled back and the error returned.
  Result<CommitInfo> ExecuteTransaction(const std::vector<Statement>& statements);

  /// Convenience read-only query (equivalent to a one-SELECT transaction).
  Result<std::vector<Row>> Query(const SelectStatement& select);

  const Catalog& catalog() const { return catalog_; }
  TxLog& log() { return log_; }

  /// Publishes commit counters/latency (and the log's metrics) into `metrics`
  /// (must outlive the database).
  void EnableMetrics(obs::MetricsRegistry* metrics);

  /// Row count of `table`, or NotFound.
  Result<size_t> TableSize(const std::string& table) const;

  /// Full database state: table name -> rows in PK order. Used by the
  /// equivalence tests to compare against the replica via the QT mapping.
  std::map<std::string, std::vector<Row>> DumpAll() const;

 private:
  struct UndoRecord {
    LogOpType type;  // What was done (so undo does the inverse).
    Table* table;
    Value pk;
    Row before;  // Pre-image for kUpdate / kDelete.
  };

  Result<Table*> GetTableLocked(const std::string& name) TXREP_REQUIRES(mu_);

  /// Per-statement executors; append to `log_ops`/`undo` as they apply.
  Status ApplyInsert(const InsertStatement& stmt, std::vector<LogOp>& log_ops,
                     std::vector<UndoRecord>& undo) TXREP_REQUIRES(mu_);
  Status ApplyUpdate(const UpdateStatement& stmt, std::vector<LogOp>& log_ops,
                     std::vector<UndoRecord>& undo) TXREP_REQUIRES(mu_);
  Status ApplyDelete(const DeleteStatement& stmt, std::vector<LogOp>& log_ops,
                     std::vector<UndoRecord>& undo) TXREP_REQUIRES(mu_);
  Status ApplySelect(const SelectStatement& stmt, std::vector<Row>& out)
      TXREP_REQUIRES(mu_);

  void Rollback(std::vector<UndoRecord>& undo) TXREP_REQUIRES(mu_);

  // Serializes transactions (commit order == log order).
  mutable check::Mutex mu_{"rel.db"};
  /// Written only by Create*() during single-threaded setup; the catalog()
  /// accessor hands out a bare reference afterwards, so it is deliberately
  /// not guarded (guarding it would make that read unannotatable).
  // analyze: lock-free(tables created before concurrent use; Table owns its own mutex)
  Catalog catalog_;
  std::map<std::string, std::unique_ptr<Table>> tables_ TXREP_GUARDED_BY(mu_);
  // analyze: lock-free(TxLog owns its own mutex)
  TxLog log_;

  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_commits_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  Histogram* h_commit_latency_ = nullptr;
  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  Histogram* h_txn_ops_ = nullptr;
};

}  // namespace txrep::rel

#endif  // TXREP_REL_DATABASE_H_
