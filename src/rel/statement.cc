#include "rel/statement.h"

namespace txrep::rel {

const char* PredicateOpName(PredicateOp op) {
  switch (op) {
    case PredicateOp::kEq:
      return "=";
    case PredicateOp::kLt:
      return "<";
    case PredicateOp::kLe:
      return "<=";
    case PredicateOp::kGt:
      return ">";
    case PredicateOp::kGe:
      return ">=";
    case PredicateOp::kBetween:
      return "BETWEEN";
  }
  return "?";
}

bool Predicate::Matches(const Value& value) const {
  // SQL semantics: comparisons against NULL are never true.
  if (value.is_null() || operand.is_null()) return false;
  switch (op) {
    case PredicateOp::kEq:
      return value == operand;
    case PredicateOp::kLt:
      return value < operand;
    case PredicateOp::kLe:
      return value <= operand;
    case PredicateOp::kGt:
      return value > operand;
    case PredicateOp::kGe:
      return value >= operand;
    case PredicateOp::kBetween:
      if (operand2.is_null()) return false;
      return operand <= value && value <= operand2;
  }
  return false;
}

std::string Predicate::ToString() const {
  if (op == PredicateOp::kBetween) {
    return column + " BETWEEN " + operand.ToString() + " AND " +
           operand2.ToString();
  }
  return column + " " + PredicateOpName(op) + " " + operand.ToString();
}

const char* AggregateFnName(AggregateFn fn) {
  switch (fn) {
    case AggregateFn::kCount:
      return "COUNT";
    case AggregateFn::kSum:
      return "SUM";
    case AggregateFn::kMin:
      return "MIN";
    case AggregateFn::kMax:
      return "MAX";
    case AggregateFn::kAvg:
      return "AVG";
  }
  return "?";
}

std::string AggregateItem::ToString() const {
  return std::string(AggregateFnName(fn)) + "(" +
         (column.empty() ? "*" : column) + ")";
}

namespace {

std::string WhereToString(const std::vector<Predicate>& where) {
  if (where.empty()) return "";
  std::string out = " WHERE ";
  for (size_t i = 0; i < where.size(); ++i) {
    if (i > 0) out += " AND ";
    out += where[i].ToString();
  }
  return out;
}

struct ToStringVisitor {
  std::string operator()(const InsertStatement& s) const {
    std::string out = "INSERT INTO " + s.table;
    if (!s.columns.empty()) {
      out += " (";
      for (size_t i = 0; i < s.columns.size(); ++i) {
        if (i > 0) out += ", ";
        out += s.columns[i];
      }
      out += ")";
    }
    out += " VALUES ";
    out += RowToString(s.values);
    return out;
  }
  std::string operator()(const UpdateStatement& s) const {
    std::string out = "UPDATE " + s.table + " SET ";
    for (size_t i = 0; i < s.sets.size(); ++i) {
      if (i > 0) out += ", ";
      out += s.sets[i].first + " = " + s.sets[i].second.ToString();
    }
    out += WhereToString(s.where);
    return out;
  }
  std::string operator()(const DeleteStatement& s) const {
    return "DELETE FROM " + s.table + WhereToString(s.where);
  }
  std::string operator()(const SelectStatement& s) const {
    std::string out = "SELECT ";
    if (!s.aggregates.empty()) {
      for (size_t i = 0; i < s.aggregates.size(); ++i) {
        if (i > 0) out += ", ";
        out += s.aggregates[i].ToString();
      }
    } else if (s.columns.empty()) {
      out += "*";
    } else {
      for (size_t i = 0; i < s.columns.size(); ++i) {
        if (i > 0) out += ", ";
        out += s.columns[i];
      }
    }
    out += " FROM " + s.table + WhereToString(s.where);
    if (s.order_by.has_value()) {
      out += " ORDER BY " + s.order_by->column;
      if (s.order_by->descending) out += " DESC";
    }
    if (s.limit != 0) out += " LIMIT " + std::to_string(s.limit);
    return out;
  }
};

struct TableVisitor {
  const std::string& operator()(const InsertStatement& s) const {
    return s.table;
  }
  const std::string& operator()(const UpdateStatement& s) const {
    return s.table;
  }
  const std::string& operator()(const DeleteStatement& s) const {
    return s.table;
  }
  const std::string& operator()(const SelectStatement& s) const {
    return s.table;
  }
};

}  // namespace

bool IsWriteStatement(const Statement& stmt) {
  return !std::holds_alternative<SelectStatement>(stmt);
}

const std::string& StatementTable(const Statement& stmt) {
  return std::visit(TableVisitor{}, stmt);
}

std::string StatementToString(const Statement& stmt) {
  return std::visit(ToStringVisitor{}, stmt);
}

}  // namespace txrep::rel
