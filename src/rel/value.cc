#include "rel/value.h"

#include <cstdio>

namespace txrep::rel {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case ValueType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace txrep::rel
