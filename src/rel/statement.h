#ifndef TXREP_REL_STATEMENT_H_
#define TXREP_REL_STATEMENT_H_

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "rel/value.h"

namespace txrep::rel {

/// Comparison operators usable in WHERE clauses.
enum class PredicateOp : uint8_t {
  kEq = 0,
  kLt = 1,
  kLe = 2,
  kGt = 3,
  kGe = 4,
  kBetween = 5,  // operand <= col <= operand2
};

/// Returns "=", "<", "<=", ">", ">=" or "BETWEEN".
const char* PredicateOpName(PredicateOp op);

/// One conjunct of a WHERE clause: `column op operand [AND operand2]`.
struct Predicate {
  std::string column;
  PredicateOp op = PredicateOp::kEq;
  Value operand;
  Value operand2;  // Only for kBetween (upper bound, inclusive).

  /// Evaluates the predicate against `value` (the column's value).
  bool Matches(const Value& value) const;

  std::string ToString() const;
};

/// INSERT INTO table [(columns)] VALUES (values).
/// When `columns` is empty the values are in schema order.
struct InsertStatement {
  std::string table;
  std::vector<std::string> columns;
  Row values;
};

/// UPDATE table SET col=value, ... WHERE conjuncts.
struct UpdateStatement {
  std::string table;
  std::vector<std::pair<std::string, Value>> sets;
  std::vector<Predicate> where;
};

/// DELETE FROM table WHERE conjuncts.
struct DeleteStatement {
  std::string table;
  std::vector<Predicate> where;
};

/// Aggregate functions usable in a SELECT list.
enum class AggregateFn : uint8_t {
  kCount = 0,  // COUNT(col) counts non-NULL; COUNT(*) counts rows.
  kSum = 1,
  kMin = 2,
  kMax = 3,
  kAvg = 4,
};

/// Returns "COUNT", "SUM", "MIN", "MAX" or "AVG".
const char* AggregateFnName(AggregateFn fn);

/// One aggregate of the SELECT list: fn(column) or COUNT(*) (empty column).
struct AggregateItem {
  AggregateFn fn = AggregateFn::kCount;
  std::string column;  // Empty only for COUNT(*).

  std::string ToString() const;
};

/// ORDER BY column [DESC].
struct OrderBy {
  std::string column;
  bool descending = false;
};

/// SELECT columns|aggregates FROM table WHERE conjuncts
///   [ORDER BY col [ASC|DESC]] [LIMIT n].
/// Empty `columns` and empty `aggregates` means `*`. When `aggregates` is
/// non-empty the query returns exactly one row (no GROUP BY support).
struct SelectStatement {
  std::string table;
  std::vector<std::string> columns;
  std::vector<Predicate> where;
  std::vector<AggregateItem> aggregates;
  std::optional<OrderBy> order_by;
  size_t limit = 0;  // 0 = no limit.
};

/// Any executable statement.
using Statement = std::variant<InsertStatement, UpdateStatement,
                               DeleteStatement, SelectStatement>;

/// True for INSERT/UPDATE/DELETE — the statement kinds that reach the
/// transaction log and the replica.
bool IsWriteStatement(const Statement& stmt);

/// Table the statement targets.
const std::string& StatementTable(const Statement& stmt);

/// SQL-ish rendering for logs and debugging.
std::string StatementToString(const Statement& stmt);

}  // namespace txrep::rel

#endif  // TXREP_REL_STATEMENT_H_
