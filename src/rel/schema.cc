#include "rel/schema.h"

#include <algorithm>
#include <set>

namespace txrep::rel {

Result<TableSchema> TableSchema::Create(std::string table_name,
                                        std::vector<Column> columns,
                                        std::string pk_column) {
  if (table_name.empty()) {
    return Status::InvalidArgument("table name must not be empty");
  }
  if (columns.empty()) {
    return Status::InvalidArgument("table \"" + table_name +
                                   "\" must have at least one column");
  }
  std::set<std::string> seen;
  for (const Column& c : columns) {
    if (c.name.empty()) {
      return Status::InvalidArgument("column names must not be empty");
    }
    if (c.type == ValueType::kNull) {
      return Status::InvalidArgument("column \"" + c.name +
                                     "\" cannot have type NULL");
    }
    if (!seen.insert(c.name).second) {
      return Status::InvalidArgument("duplicate column \"" + c.name + "\"");
    }
  }
  TableSchema schema;
  schema.table_name_ = std::move(table_name);
  schema.columns_ = std::move(columns);
  auto it = std::find_if(
      schema.columns_.begin(), schema.columns_.end(),
      [&](const Column& c) { return c.name == pk_column; });
  if (it == schema.columns_.end()) {
    return Status::InvalidArgument("primary key column \"" + pk_column +
                                   "\" is not a column of \"" +
                                   schema.table_name_ + "\"");
  }
  if (it->type == ValueType::kDouble) {
    return Status::InvalidArgument(
        "primary key column must be INT or STRING, not DOUBLE");
  }
  schema.pk_index_ = static_cast<size_t>(it - schema.columns_.begin());
  return schema;
}

Result<size_t> TableSchema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column \"" + name + "\" in table \"" +
                          table_name_ + "\"");
}

Status TableSchema::AddHashIndex(const std::string& column) {
  TXREP_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(column));
  if (HasHashIndexOn(idx)) {
    return Status::AlreadyExists("hash index on \"" + column +
                                 "\" already declared");
  }
  hash_index_columns_.push_back(idx);
  return Status::OK();
}

Status TableSchema::AddRangeIndex(const std::string& column) {
  TXREP_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(column));
  if (HasRangeIndexOn(idx)) {
    return Status::AlreadyExists("range index on \"" + column +
                                 "\" already declared");
  }
  range_index_columns_.push_back(idx);
  return Status::OK();
}

bool TableSchema::HasHashIndexOn(size_t column) const {
  return std::find(hash_index_columns_.begin(), hash_index_columns_.end(),
                   column) != hash_index_columns_.end();
}

bool TableSchema::HasRangeIndexOn(size_t column) const {
  return std::find(range_index_columns_.begin(), range_index_columns_.end(),
                   column) != range_index_columns_.end();
}

Status TableSchema::ValidateAndCoerceRow(Row& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match table \"" +
        table_name_ + "\" arity " + std::to_string(columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) {
      if (i == pk_index_) {
        return Status::InvalidArgument("primary key \"" + columns_[i].name +
                                       "\" must not be NULL");
      }
      continue;
    }
    if (row[i].type() == columns_[i].type) continue;
    // The only implicit coercion: INT literal into a DOUBLE column.
    if (columns_[i].type == ValueType::kDouble &&
        row[i].type() == ValueType::kInt64) {
      row[i] = Value::Real(static_cast<double>(row[i].AsInt()));
      continue;
    }
    return Status::InvalidArgument(
        "type mismatch for column \"" + columns_[i].name + "\": expected " +
        ValueTypeName(columns_[i].type) + ", got " +
        ValueTypeName(row[i].type()));
  }
  return Status::OK();
}

std::string TableSchema::ToString() const {
  std::string out = table_name_ + "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += ValueTypeName(columns_[i].type);
    if (i == pk_index_) out += " PRIMARY KEY";
  }
  out += ")";
  return out;
}

Status Catalog::AddTable(TableSchema schema) {
  const std::string name = schema.table_name();
  if (tables_.contains(name)) {
    return Status::AlreadyExists("table \"" + name + "\" already exists");
  }
  tables_.emplace(name, std::move(schema));
  return Status::OK();
}

Result<const TableSchema*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table \"" + name + "\"");
  }
  return &it->second;
}

Result<TableSchema*> Catalog::GetMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table \"" + name + "\"");
  }
  return &it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.contains(name);
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, schema] : tables_) names.push_back(name);
  return names;
}

}  // namespace txrep::rel
