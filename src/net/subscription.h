#ifndef TXREP_NET_SUBSCRIPTION_H_
#define TXREP_NET_SUBSCRIPTION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "check/mutex.h"
#include "common/blocking_queue.h"
#include "common/result.h"
#include "common/status.h"
#include "mw/broker.h"
#include "mw/message_source.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/transport.h"
#include "obs/metrics.h"

namespace txrep::net {

/// NetSubscription knobs.
struct NetSubscriptionOptions {
  /// Topic to subscribe (must match the endpoint's).
  std::string topic = "txrep.log";

  /// Transactions with lsn <= this are already applied locally; the stream
  /// starts after them.
  uint64_t resume_after_lsn = 0;

  /// Flow-control window, in batches: granted at subscribe, topped up one
  /// credit per batch consumed, so the server never has more than this many
  /// batches in flight.
  uint64_t initial_credits = 64;

  /// Bound on the delivered-message queue (0 = unbounded, like the broker's
  /// default). A bounded queue propagates local apply backpressure onto the
  /// wire: the receive loop stops crediting, the server stalls.
  size_t queue_capacity = 0;

  /// Wait between reconnect attempts.
  int64_t reconnect_backoff_micros = 20'000;

  /// Give up after this many consecutive failed connect attempts
  /// (0 = retry until Close()). A successful handshake resets the count.
  int max_connect_attempts = 0;

  /// Transport queues of each connection.
  TransportOptions transport;
};

/// Replica-side wire subscriber: connects to a NetEndpoint, performs the
/// kSubscribe handshake, and turns the credit-gated kBatch stream back into
/// mw::Messages — a drop-in MessageSource for SubscriberAgent, so the whole
/// replica pipeline runs unchanged across a process boundary.
///
/// Reconnect: when the transport drops mid-stream (reset, kill, endpoint
/// DropSessions), the subscription re-dials and resumes from its high-water
/// LSN. Fully-duplicate batches are discarded here; a batch straddling the
/// resume point is passed through whole and deduped per-transaction by the
/// agent. A gap (next batch's min LSN above high-water + 1) is unrecoverable
/// Corruption — dense LSNs are the ordering invariant, mirroring recovery's
/// gap detection.
class NetSubscription : public mw::MessageSource {
 public:
  /// Dials the server; called for the initial connection and every
  /// reconnect. Tests hand out socketpair ends; production wraps
  /// Socket::Connect(host, port).
  using SocketFactory = std::function<Result<Socket>()>;

  /// Starts the connection thread immediately. `metrics` (optional, must
  /// outlive the subscription) receives the connects counter and client-role
  /// transport counters.
  explicit NetSubscription(SocketFactory factory,
                           NetSubscriptionOptions options = {},
                           obs::MetricsRegistry* metrics = nullptr);

  ~NetSubscription() override;

  NetSubscription(const NetSubscription&) = delete;
  NetSubscription& operator=(const NetSubscription&) = delete;

  // MessageSource:
  std::optional<mw::Message> Pop() override { return queue_.Pop(); }
  std::optional<mw::Message> TryPop() override { return queue_.TryPop(); }
  /// Ends the stream and the connection thread. Idempotent.
  void Close() override;
  size_t Pending() const override { return queue_.size(); }

  /// Blocks until the first handshake completed, then returns OK — or the
  /// sticky error when the subscription failed first (resume gap, protocol
  /// mismatch, connect attempts exhausted).
  Status WaitConnected();

  /// Encoded catalog (codec::EncodeCatalog bytes) from the kSubscribeAck;
  /// empty before the first handshake.
  std::string catalog() const;

  /// Sticky fatal error; OK while healthy (transient drops reconnect and
  /// stay OK).
  Status health() const;

  /// High-water mark: max LSN handed into the queue (or resumed past).
  uint64_t delivered_lsn() const;

  /// Successful handshakes, so reconnects = connects() - 1.
  int64_t connects() const;

  /// Test hook: hard-aborts the live connection, as if the network died.
  /// The connection thread notices and re-dials.
  void InjectDisconnect();

 private:
  void ConnectLoop();

  /// One dial + handshake + receive session. Returns true to reconnect,
  /// false to end the stream for good.
  bool RunOnce(Socket socket);

  void Fail(const Status& status);

  // analyze: lock-free(set in ctor, immutable afterwards)
  const SocketFactory factory_;
  const NetSubscriptionOptions options_;
  // analyze: lock-free(set in ctor, never reseated; pointee has its own synchronization)
  obs::MetricsRegistry* metrics_;  // Not owned; may be null.

  // analyze: lock-free(BlockingQueue is internally synchronized)
  BlockingQueue<mw::Message> queue_;

  mutable check::Mutex mu_{"net.subscription.mu"};
  check::CondVar cv_{&mu_};
  Status health_ TXREP_GUARDED_BY(mu_) = Status::OK();
  std::string catalog_ TXREP_GUARDED_BY(mu_);
  uint64_t delivered_lsn_ TXREP_GUARDED_BY(mu_) = 0;
  int64_t connects_ TXREP_GUARDED_BY(mu_) = 0;
  bool connected_once_ TXREP_GUARDED_BY(mu_) = false;
  bool ended_ TXREP_GUARDED_BY(mu_) = false;
  /// Live transport of the current session, for InjectDisconnect; owned by
  /// the connection thread, which nulls it (under mu_) before destruction.
  FrameTransport* transport_ TXREP_GUARDED_BY(mu_) = nullptr;

  std::atomic<bool> running_{true};
  // analyze: lock-free(thread handle; started once, joined in Stop/dtor only)
  std::thread connect_thread_;

  // analyze: lock-free(registry-owned metric; set once in ctor, internally synchronized)
  obs::Counter* c_connects_ = nullptr;
};

}  // namespace txrep::net

#endif  // TXREP_NET_SUBSCRIPTION_H_
