#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace txrep::net {

namespace {

Status ErrnoStatus(const char* op) {
  return Status::Unavailable(std::string(op) + " failed: " +
                             std::strerror(errno));
}

/// poll() with EINTR retry. Returns the revents of the fd (0 on timeout).
Result<short> PollOne(int fd, short events, int64_t timeout_micros) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  // Round sub-millisecond timeouts up so a positive timeout never busy-spins.
  int timeout_millis = static_cast<int>((timeout_micros + 999) / 1000);
  if (timeout_micros < 0) timeout_millis = -1;
  for (;;) {
    const int n = ::poll(&pfd, 1, timeout_millis);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("poll");
    }
    return static_cast<short>(n == 0 ? 0 : pfd.revents);
  }
}

}  // namespace

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_), local_port_(other.local_port_) {
  other.fd_ = -1;
  other.local_port_ = 0;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    local_port_ = other.local_port_;
    other.fd_ = -1;
    other.local_port_ = 0;
  }
  return *this;
}

Status Socket::MakeNonBlocking() {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)");
  if (::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(F_SETFL)");
  }
  return Status::OK();
}

Result<std::pair<Socket, Socket>> Socket::CreatePair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) < 0) {
    return ErrnoStatus("socketpair");
  }
  Socket a(fds[0]);
  Socket b(fds[1]);
  TXREP_RETURN_IF_ERROR(a.MakeNonBlocking());
  TXREP_RETURN_IF_ERROR(b.MakeNonBlocking());
  return std::make_pair(std::move(a), std::move(b));
}

Result<Socket> Socket::Listen(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  Socket sock(fd);
  const int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
    return ErrnoStatus("setsockopt(SO_REUSEADDR)");
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return ErrnoStatus("bind");
  }
  if (::listen(fd, 16) < 0) return ErrnoStatus("listen");
  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) < 0) {
    return ErrnoStatus("getsockname");
  }
  sock.local_port_ = ntohs(bound.sin_port);
  TXREP_RETURN_IF_ERROR(sock.MakeNonBlocking());
  return sock;
}

Result<Socket> Socket::Accept(int64_t timeout_micros) {
  if (!valid()) return Status::Unavailable("accept on closed socket");
  TXREP_ASSIGN_OR_RETURN(short revents,
                         PollOne(fd_, POLLIN, timeout_micros));
  if (revents == 0) return Status::TimedOut("accept timed out");
  if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
    return Status::Unavailable("listening socket closed");
  }
  for (;;) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::TimedOut("accept raced the connection away");
      }
      return ErrnoStatus("accept");
    }
    Socket sock(client);
    const int one = 1;
    // Replication batches are latency-sensitive; never Nagle-delay a frame.
    (void)::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    TXREP_RETURN_IF_ERROR(sock.MakeNonBlocking());
    return sock;
  }
}

Result<Socket> Socket::Connect(const std::string& host, uint16_t port) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("connect: bad IPv4 address \"" + host +
                                   "\"");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  Socket sock(fd);
  for (;;) {
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("connect");
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  TXREP_RETURN_IF_ERROR(sock.MakeNonBlocking());
  return sock;
}

Result<size_t> Socket::Send(std::string_view bytes) {
  if (!valid()) return Status::Unavailable("send on closed socket");
  for (;;) {
    // MSG_NOSIGNAL: a vanished peer must surface as a Status, not SIGPIPE.
    const ssize_t n = ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return static_cast<size_t>(0);
    return ErrnoStatus("send");
  }
}

Result<size_t> Socket::Recv(char* buf, size_t len, bool* eof) {
  *eof = false;
  if (!valid()) return Status::Unavailable("recv on closed socket");
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, len, 0);
    if (n > 0) return static_cast<size_t>(n);
    if (n == 0) {
      *eof = true;
      return static_cast<size_t>(0);
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return static_cast<size_t>(0);
    return ErrnoStatus("recv");
  }
}

Status Socket::WaitReadable(int64_t timeout_micros) {
  if (!valid()) return Status::Unavailable("wait on closed socket");
  TXREP_ASSIGN_OR_RETURN(short revents, PollOne(fd_, POLLIN, timeout_micros));
  if (revents == 0) return Status::TimedOut("socket not readable");
  // POLLHUP/POLLERR still deliver the pending EOF/reset through Recv — let
  // the caller read it out rather than losing buffered bytes.
  return Status::OK();
}

Status Socket::WaitWritable(int64_t timeout_micros) {
  if (!valid()) return Status::Unavailable("wait on closed socket");
  TXREP_ASSIGN_OR_RETURN(short revents, PollOne(fd_, POLLOUT, timeout_micros));
  if (revents == 0) return Status::TimedOut("socket not writable");
  if ((revents & (POLLERR | POLLNVAL)) != 0) {
    return Status::Unavailable("socket in error state");
  }
  return Status::OK();
}

void Socket::ShutdownBoth() {
  if (valid()) (void)::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (valid()) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

}  // namespace txrep::net
